package swim

import (
	"sort"
	"sync"
	"testing"

	"swim/internal/data"
	"swim/internal/models"
	"swim/internal/nn"
	"swim/internal/rng"
	"swim/internal/train"
)

// Pruning depends on the OBD convergence assumption (Eq. 3: df/dw ≈ 0), so
// these tests use a properly converged workload, cached across the package's
// prune tests.
var (
	pruneOnce sync.Once
	pruneNet  *nn.Network
	pruneDS   *data.Dataset
	pruneHess []float64
)

func prunedWorkload(t *testing.T) (*nn.Network, *data.Dataset, []float64) {
	t.Helper()
	pruneOnce.Do(func() {
		pruneDS = data.MNISTLike(1000, 400, 1)
		r := rng.New(2)
		pruneNet = models.LeNet(10, 4, r)
		cfg := train.DefaultConfig()
		cfg.Epochs = 5
		cfg.QATBits = 4
		train.SGD(pruneNet, pruneDS, cfg, r)
		cx, cy := data.Subset(pruneDS.TrainX, pruneDS.TrainY, 512)
		pruneHess = Sensitivity(pruneNet, cx, cy, 64)
	})
	return pruneNet, pruneDS, pruneHess
}

func TestPruneBySensitivityZeroesRequestedFraction(t *testing.T) {
	net, _, hess := prunedWorkload(t)
	clone := net.Clone()
	pruned := PruneBySensitivity(clone, hess, 0.3)
	if pruned == 0 {
		t.Fatal("nothing pruned")
	}
	sp := SparsityOf(clone)
	if sp < 0.28 || sp > 0.5 { // quantized nets already hold some zeros
		t.Fatalf("sparsity after 30%% prune = %.3f", sp)
	}
	if SparsityOf(net) > sp/2 {
		t.Fatal("pruning mutated the original network")
	}
}

func TestPruneLowSaliencyBarelyHurtsAccuracy(t *testing.T) {
	// The OBD premise the paper builds on: at a converged optimum,
	// low-saliency weights can be removed almost for free, while removing
	// the same number of weights picked against the saliency ordering is
	// clearly worse.
	net, ds, hess := prunedWorkload(t)
	clean := train.Evaluate(net, ds.TestX, ds.TestY, 64)

	low := net.Clone()
	PruneBySensitivity(low, hess, 0.5)
	lowAcc := train.Evaluate(low, ds.TestX, ds.TestY, 64)

	// Adversarial prune: zero the TOP half by the same OBD saliency.
	saliency := make([]float64, len(hess))
	flat := 0
	for _, p := range net.MappedParams() {
		for _, w := range p.Data.Data {
			saliency[flat] = 0.5 * hess[flat] * w * w
			flat++
		}
	}
	idx := make([]int, len(saliency))
	for i := range idx {
		idx[i] = i
	}
	sortBySaliencyDesc(idx, saliency)
	high := net.Clone()
	kill := make(map[int]bool, len(idx)/2)
	for _, i := range idx[:len(idx)/2] {
		kill[i] = true
	}
	flat = 0
	for _, p := range high.MappedParams() {
		for off := range p.Data.Data {
			if kill[flat] {
				p.Data.Data[off] = 0
			}
			flat++
		}
	}
	highAcc := train.Evaluate(high, ds.TestX, ds.TestY, 64)

	if clean-lowAcc > 3 {
		t.Fatalf("pruning the bottom half by saliency cost %.1f pp (clean %.1f, pruned %.1f)",
			clean-lowAcc, clean, lowAcc)
	}
	if lowAcc <= highAcc {
		t.Fatalf("saliency ordering has no effect: low=%.2f high=%.2f", lowAcc, highAcc)
	}
}

func sortBySaliencyDesc(idx []int, saliency []float64) {
	sort.SliceStable(idx, func(a, b int) bool { return saliency[idx[a]] > saliency[idx[b]] })
}

func TestPruneBounds(t *testing.T) {
	net, _, hess := prunedWorkload(t)
	if PruneBySensitivity(net.Clone(), hess, 0) != 0 {
		t.Fatal("frac=0 pruned something")
	}
	full := net.Clone()
	PruneBySensitivity(full, hess, 2.0) // clamps to 1
	if SparsityOf(full) != 1 {
		t.Fatal("frac>1 should prune everything")
	}
}

func TestPrunePanicsOnLengthMismatch(t *testing.T) {
	net, _, hess := prunedWorkload(t)
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch not caught")
		}
	}()
	PruneBySensitivity(net.Clone(), hess[:10], 0.5)
}
