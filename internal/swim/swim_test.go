package swim

import (
	"testing"
	"testing/quick"

	"swim/internal/data"
	"swim/internal/device"
	"swim/internal/mapping"
	"swim/internal/models"
	"swim/internal/nn"
	"swim/internal/rng"
	"swim/internal/train"
)

// mustMap programs net onto dm, failing the test on a constructor error.
func mustMap(t *testing.T, net *nn.Network, dm device.Model, table []float64, r *rng.Source) *mapping.Mapped {
	t.Helper()
	mp, err := mapping.New(net, dm, table, r)
	if err != nil {
		t.Fatal(err)
	}
	return mp
}

// smallWorkload trains a tiny LeNet so selection has real sensitivities.
func smallWorkload(t *testing.T) (*nn.Network, *data.Dataset, []float64, []float64) {
	t.Helper()
	ds := data.MNISTLike(400, 200, 1)
	r := rng.New(2)
	net := models.LeNet(10, 4, r)
	cfg := train.DefaultConfig()
	cfg.Epochs = 2
	cfg.QATBits = 4
	train.SGD(net, ds, cfg, r)
	cx, cy := data.Subset(ds.TrainX, ds.TrainY, 128)
	hess := Sensitivity(net, cx, cy, 64)
	return net, ds, hess, FlatWeights(net)
}

func TestSensitivityShapeAndSign(t *testing.T) {
	net, _, hess, weights := smallWorkload(t)
	if len(hess) != net.NumMappedWeights() || len(weights) != len(hess) {
		t.Fatalf("lengths: hess=%d weights=%d mapped=%d", len(hess), len(weights), net.NumMappedWeights())
	}
	sum := 0.0
	for _, h := range hess {
		if h < 0 {
			t.Fatalf("negative sensitivity %v (CE second derivatives are non-negative)", h)
		}
		sum += h
	}
	if sum == 0 {
		t.Fatal("all sensitivities zero")
	}
}

func TestSelectorsProducePermutations(t *testing.T) {
	_, _, hess, weights := smallWorkload(t)
	n := len(hess)
	sels := []Selector{
		NewSWIMSelector(hess, weights),
		NewMagnitudeSelector(weights),
		NewRandomSelector(n),
	}
	for _, sel := range sels {
		order := sel.Order(rng.New(5))
		seen := make([]bool, n)
		for _, idx := range order {
			if idx < 0 || idx >= n || seen[idx] {
				t.Fatalf("%s produced a non-permutation", sel.Name())
			}
			seen[idx] = true
		}
		if len(order) != n {
			t.Fatalf("%s order length %d != %d", sel.Name(), len(order), n)
		}
	}
}

func TestSWIMOrderIsDescendingInHess(t *testing.T) {
	hess := []float64{0.5, 3, 0.5, 7, 0}
	weights := []float64{9, 1, 2, 1, 5}
	order := NewSWIMSelector(hess, weights).Order(nil)
	// Expected: idx 3 (h=7), idx 1 (h=3), then h=0.5 pair tie-broken by |w|
	// (idx 0 w=9 before idx 2 w=2), then idx 4.
	want := []int{3, 1, 0, 2, 4}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestMagnitudeOrder(t *testing.T) {
	weights := []float64{0.1, 5, 3, 4}
	order := NewMagnitudeSelector(weights).Order(nil)
	want := []int{1, 3, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRandomSelectorVariesPerTrial(t *testing.T) {
	sel := NewRandomSelector(50)
	a := sel.Order(rng.New(1))
	b := sel.Order(rng.New(2))
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("random selector did not reshuffle across trials")
	}
}

func TestSelectorPermutationProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		order := NewRandomSelector(64).Order(rng.New(seed))
		seen := make([]bool, 64)
		for _, v := range order {
			if v < 0 || v >= 64 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteVerifyToNWCRespectsBudget(t *testing.T) {
	net, _, hess, weights := smallWorkload(t)
	dm := device.Default(4, 0.5)
	table := dm.CycleTable(50, rng.New(3))
	r := rng.New(4)
	mp := mustMap(t, net, dm, table, r)
	sel := NewSWIMSelector(hess, weights)
	n := WriteVerifyToNWC(mp, sel.Order(r), 0.2, r)
	if n == 0 {
		t.Fatal("no weights verified at NWC 0.2")
	}
	got := mp.NWC()
	if got < 0.15 || got > 0.3 {
		t.Fatalf("NWC = %.3f, want ~0.2", got)
	}
	if WriteVerifyToNWC(mp, sel.Order(r), 0, r) != 0 {
		t.Fatal("zero budget must verify nothing")
	}
}

func TestAlgorithm1StopsAtTarget(t *testing.T) {
	net, ds, hess, weights := smallWorkload(t)
	clean := train.Evaluate(net, ds.TestX, ds.TestY, 64)
	dm := device.Default(4, 0.5)
	table := dm.CycleTable(50, rng.New(5))
	r := rng.New(6)
	mp := mustMap(t, net, dm, table, r)
	res := Algorithm1(mp, NewSWIMSelector(hess, weights), 0.05, clean, 2.0,
		ds.TestX, ds.TestY, 64, r)
	if len(res.Steps) == 0 {
		t.Fatal("no steps recorded")
	}
	last := res.Steps[len(res.Steps)-1]
	if res.Achieved && clean-last.Accuracy > 2.0+1e-9 {
		t.Fatalf("claimed achieved but drop is %.2f", clean-last.Accuracy)
	}
	// Steps must be monotone in verified fraction.
	for i := 1; i < len(res.Steps); i++ {
		if res.Steps[i].FractionVerified < res.Steps[i-1].FractionVerified {
			t.Fatal("verified fraction not monotone")
		}
	}
}

func TestAlgorithm1GranularityValidation(t *testing.T) {
	net, ds, hess, weights := smallWorkload(t)
	dm := device.Default(4, 0.5)
	mp := mustMap(t, net, dm, dm.CycleTable(20, rng.New(1)), rng.New(2))
	defer func() {
		if recover() == nil {
			t.Fatal("granularity 0 accepted")
		}
	}()
	Algorithm1(mp, NewSWIMSelector(hess, weights), 0, 99, 1, ds.TestX, ds.TestY, 64, rng.New(3))
}

func TestInSituStepBillsOneWritePerMappedWeight(t *testing.T) {
	net, ds, _, _ := smallWorkload(t)
	dm := device.Default(4, 0.5)
	r := rng.New(7)
	mp := mustMap(t, net, dm, dm.CycleTable(50, rng.New(8)), r)
	InSituStep(mp, ds.TrainX, ds.TrainY, 0, DefaultInSitu(), r)
	if int(mp.CyclesUsed) != mp.TotalWeights() {
		t.Fatalf("one in-situ iteration billed %v cycles, want %d", mp.CyclesUsed, mp.TotalWeights())
	}
}

func TestInSituImprovesNoisyNetwork(t *testing.T) {
	net, ds, _, _ := smallWorkload(t)
	dm := device.Default(4, 1.2) // heavy noise so there is room to recover
	table := dm.CycleTable(50, rng.New(9))
	r := rng.New(10)
	mp := mustMap(t, net, dm, table, r)
	before := mp.Accuracy(ds.TestX, ds.TestY, 64)
	InSituToNWC(mp, ds.TrainX, ds.TrainY, 1.0, DefaultInSitu(), r)
	after := mp.Accuracy(ds.TestX, ds.TestY, 64)
	if after < before-2 {
		t.Fatalf("in-situ training degraded accuracy: %.2f -> %.2f", before, after)
	}
	if mp.NWC() < 1.0 {
		t.Fatalf("in-situ NWC %.2f below requested budget", mp.NWC())
	}
}

func TestInSituBatchCycling(t *testing.T) {
	net, ds, _, _ := smallWorkload(t)
	dm := device.Default(4, 0.5)
	r := rng.New(11)
	mp := mustMap(t, net, dm, dm.CycleTable(50, rng.New(12)), r)
	cfg := DefaultInSitu()
	start := 0
	seen := map[int]bool{}
	for i := 0; i < 20; i++ {
		seen[start] = true
		start = InSituStep(mp, ds.TrainX, ds.TrainY, start, cfg, r)
	}
	if !seen[0] || len(seen) < 2 {
		t.Fatalf("batch cursor did not cycle: %v", seen)
	}
}

func TestSWIMBeatsRandomAtLowNWC(t *testing.T) {
	// The paper's central claim, pinned as a regression test at small scale:
	// at a 10% write budget SWIM should preserve clearly more accuracy than
	// random selection under heavy device noise.
	net, ds, hess, weights := smallWorkload(t)
	dm := device.Default(4, 1.2)
	table := dm.CycleTable(50, rng.New(13))
	mean := func(sel Selector, seed uint64) float64 {
		base := rng.New(seed)
		total := 0.0
		const trials = 6
		for i := 0; i < trials; i++ {
			r := base.Split()
			mp := mustMap(t, net, dm, table, r)
			WriteVerifyToNWC(mp, sel.Order(r), 0.1, r)
			total += mp.Accuracy(ds.TestX, ds.TestY, 64)
		}
		return total / trials
	}
	sw := mean(NewSWIMSelector(hess, weights), 100)
	rd := mean(NewRandomSelector(net.NumMappedWeights()), 100)
	if sw <= rd {
		t.Fatalf("SWIM (%.2f) did not beat random (%.2f) at NWC=0.1", sw, rd)
	}
}

func TestSensitivityConcentration(t *testing.T) {
	// SWIM works because sensitivity is heavy-tailed: the top 10% of weights
	// should hold a disproportionate share (>30%) of total sensitivity.
	_, _, hess, weights := smallWorkload(t)
	order := NewSWIMSelector(hess, weights).Order(nil)
	total := 0.0
	for _, h := range hess {
		total += h
	}
	top := 0.0
	k := len(order) / 10
	for _, idx := range order[:k] {
		top += hess[idx]
	}
	if frac := top / total; frac < 0.3 {
		t.Fatalf("top-10%% sensitivity share = %.2f, expected heavy tail > 0.3", frac)
	}
}
