package swim

import "testing"

func TestFisherSensitivityShape(t *testing.T) {
	net, ds, _, weights := smallWorkload(t)
	fisher := FisherSensitivity(net, ds.TrainX, ds.TrainY, 64)
	if len(fisher) != net.NumMappedWeights() {
		t.Fatalf("fisher length %d != %d", len(fisher), net.NumMappedWeights())
	}
	sum := 0.0
	for _, f := range fisher {
		if f < 0 {
			t.Fatal("squared gradients cannot be negative")
		}
		sum += f
	}
	if sum == 0 {
		t.Fatal("fisher all zero")
	}
	sel := NewFisherSelector(fisher, weights)
	order := sel.Order(nil)
	if len(order) != len(fisher) {
		t.Fatal("selector order length wrong")
	}
	// Highest-Fisher weight must come first.
	best, bi := -1.0, -1
	for i, f := range fisher {
		if f > best {
			best, bi = f, i
		}
	}
	if order[0] != bi {
		t.Fatalf("order[0] = %d, want argmax %d", order[0], bi)
	}
}

func TestFisherDoesNotMutateNetwork(t *testing.T) {
	net, ds, _, _ := smallWorkload(t)
	before := net.MappedParams()[0].Data.Clone()
	FisherSensitivity(net, ds.TrainX, ds.TrainY, 64)
	after := net.MappedParams()[0].Data
	for i := range before.Data {
		if before.Data[i] != after.Data[i] {
			t.Fatal("fisher computation changed weights")
		}
	}
}
