package swim

import (
	"swim/internal/data"
	"swim/internal/nn"
	"swim/internal/tensor"
)

// FisherSensitivity computes the empirical-Fisher alternative to SWIM's
// Hessian diagonal: the per-weight squared gradient accumulated over the
// calibration set, E[(df/dw)²]. It is a popular curvature proxy in the
// pruning/quantization literature and an obvious rival ranking, so the
// repository ships it as an extension selector for ablations.
//
// At a true optimum the averaged gradient vanishes while its per-sample
// square does not; the Fisher therefore captures curvature information of
// the *loss distribution*, whereas Eq. 8–10 propagate the curvature of the
// loss itself. The ablation benchmark compares the two.
//
// The result is flattened in MappedParams order, like Sensitivity.
func FisherSensitivity(net *nn.Network, x *tensor.Tensor, y []int, batch int) []float64 {
	params := net.MappedParams()
	total := 0
	for _, p := range params {
		total += p.Size()
	}
	fisher := make([]float64, total)
	for _, b := range data.Batches(x, y, batch) {
		net.ZeroGrad()
		net.LossGrad(b.X, b.Y, false)
		flat := 0
		for _, p := range params {
			for _, g := range p.Grad.Data {
				fisher[flat] += g * g
				flat++
			}
		}
	}
	return fisher
}

// NewFisherSelector builds a selector ranking by empirical Fisher with the
// same magnitude tie-break as SWIM.
func NewFisherSelector(fisher, weights []float64) *SWIMSelector {
	sel := NewSWIMSelector(fisher, weights)
	return sel
}
