// Package swim implements the paper's contribution: selective write-verify
// for computing-in-memory neural accelerators.
//
// The pipeline is:
//
//  1. Sensitivity — one forward + one second-derivative backward pass over a
//     calibration set yields the Hessian diagonal ∂²f/∂w² for every mapped
//     weight (paper §3.3). Eq. 5 shows the expected loss increase from
//     value-independent device noise is ½·Σ H_ii·Δw², so H_ii ranks how much
//     write-verifying weight i helps.
//  2. Selection — weights are ordered by a Selector: SWIM (Hessian diagonal,
//     magnitude tie-break), Magnitude (the intuitive baseline Fig. 1a
//     debunks), or Random.
//  3. Programming — Algorithm 1 write-verifies the ordered weights in
//     granules of p·|W0| until the accuracy drop is within budget, or the
//     fixed-budget variant write-verifies until a target NWC is spent.
//
// The in-situ training baseline (paper refs [13]) is also here: on-chip SGD
// against the noisy programmed weights with unverified writes.
package swim

import (
	"math"
	"sort"

	"swim/internal/data"
	"swim/internal/mapping"
	"swim/internal/nn"
	"swim/internal/rng"
	"swim/internal/tensor"
)

// Sensitivity computes the Hessian-diagonal sensitivity of every mapped
// weight of net over the calibration set (x, y), flattened in MappedParams
// order — the same order package mapping indexes weights. This is the
// paper's single-pass second-derivative computation: its cost equals one
// gradient epoch over the calibration set.
func Sensitivity(net *nn.Network, x *tensor.Tensor, y []int, batch int) []float64 {
	net.ZeroHess()
	for _, b := range data.Batches(x, y, batch) {
		net.AccumulateHessian(b.X, b.Y)
	}
	var out []float64
	for _, p := range net.MappedParams() {
		out = append(out, p.Hess.Data...)
	}
	return out
}

// FlatWeights returns |w| of every mapped weight in MappedParams order
// (magnitudes are what both the magnitude baseline and the SWIM tie-break
// use).
func FlatWeights(net *nn.Network) []float64 {
	var out []float64
	for _, p := range net.MappedParams() {
		for _, v := range p.Data.Data {
			out = append(out, math.Abs(v))
		}
	}
	return out
}

// Selector produces a write-verify priority order (most critical first).
type Selector interface {
	// Name identifies the selector in reports.
	Name() string
	// Order returns the priority permutation of [0, n). The rng lets
	// stochastic selectors (Random) reshuffle per Monte-Carlo trial;
	// deterministic selectors ignore it.
	Order(r *rng.Source) []int
}

// SWIMSelector ranks by second derivative, breaking ties by |w| (paper
// §3.2: "when two weights have the same second derivative, we use their
// magnitudes as the tie-breaker").
type SWIMSelector struct {
	Hess    []float64
	Weights []float64
}

// NewSWIMSelector builds the paper's selector from precomputed sensitivities
// and weight magnitudes.
func NewSWIMSelector(hess, weights []float64) *SWIMSelector {
	if len(hess) != len(weights) {
		panic("swim: hess/weights length mismatch")
	}
	return &SWIMSelector{Hess: hess, Weights: weights}
}

// Name implements Selector.
func (s *SWIMSelector) Name() string { return "swim" }

// Order implements Selector.
func (s *SWIMSelector) Order(*rng.Source) []int {
	idx := identityPerm(len(s.Hess))
	sort.SliceStable(idx, func(a, b int) bool {
		ha, hb := s.Hess[idx[a]], s.Hess[idx[b]]
		if ha != hb {
			return ha > hb
		}
		return s.Weights[idx[a]] > s.Weights[idx[b]]
	})
	return idx
}

// MagnitudeSelector ranks by |w| descending — the heuristic baseline the
// paper compares against.
type MagnitudeSelector struct {
	Weights []float64
}

// NewMagnitudeSelector builds the magnitude baseline selector.
func NewMagnitudeSelector(weights []float64) *MagnitudeSelector {
	return &MagnitudeSelector{Weights: weights}
}

// Name implements Selector.
func (s *MagnitudeSelector) Name() string { return "magnitude" }

// Order implements Selector.
func (s *MagnitudeSelector) Order(*rng.Source) []int {
	idx := identityPerm(len(s.Weights))
	sort.SliceStable(idx, func(a, b int) bool {
		return s.Weights[idx[a]] > s.Weights[idx[b]]
	})
	return idx
}

// RandomSelector write-verifies weights in a fresh random order per trial.
type RandomSelector struct {
	N int
}

// NewRandomSelector builds the random baseline selector over n weights.
func NewRandomSelector(n int) *RandomSelector { return &RandomSelector{N: n} }

// Name implements Selector.
func (s *RandomSelector) Name() string { return "random" }

// Order implements Selector.
func (s *RandomSelector) Order(r *rng.Source) []int { return r.Perm(s.N) }

func identityPerm(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// WriteVerifyToNWC write-verifies weights along order until the trial's NWC
// meets target (or the order is exhausted), and returns the number of
// weights verified. This is the fixed-budget programming primitive behind
// Table 1 and Fig. 2, where each grid point fixes the write budget rather
// than the accuracy target.
func WriteVerifyToNWC(mp *mapping.Mapped, order []int, target float64, r *rng.Source) int {
	if target <= 0 {
		return 0
	}
	budget := target * mp.BaselineCycles()
	verified := 0
	for _, idx := range order {
		if mp.CyclesUsed >= budget {
			break
		}
		if !mp.Verified[idx] {
			mp.WriteVerifyAt(idx, r)
			verified++
		}
	}
	return verified
}

// Step records one granule of Algorithm 1.
type Step struct {
	FractionVerified float64
	NWC              float64
	Accuracy         float64
}

// Alg1Result is the outcome of the accuracy-targeted Algorithm 1 run.
type Alg1Result struct {
	Steps    []Step
	Achieved bool // accuracy drop ≤ maxDrop when the loop stopped
}

// Algorithm1 is the paper's Algorithm 1: write-verify the weights in
// priority order, a granule of granularity·|W0| at a time, re-evaluating the
// mapped accuracy after each granule and stopping as soon as the drop from
// baseAcc is at most maxDrop (percentage points). The paper uses granularity
// p = 5% as "sufficient ... while also avoiding too frequent evaluation".
func Algorithm1(mp *mapping.Mapped, sel Selector, granularity, baseAcc, maxDrop float64,
	evalX *tensor.Tensor, evalY []int, batch int, r *rng.Source) Alg1Result {

	if granularity <= 0 || granularity > 1 {
		panic("swim: granularity must be in (0, 1]")
	}
	order := sel.Order(r)
	n := mp.TotalWeights()
	granule := int(math.Ceil(granularity * float64(n)))
	var res Alg1Result

	// Step 0: accuracy right after the parallel (unverified) programming.
	acc := mp.Accuracy(evalX, evalY, batch)
	res.Steps = append(res.Steps, Step{0, mp.NWC(), acc})
	if baseAcc-acc <= maxDrop {
		res.Achieved = true
		return res
	}
	for done := 0; done < n; {
		end := done + granule
		if end > n {
			end = n
		}
		mp.WriteVerifyPrefix(order, end, r)
		done = end
		acc = mp.Accuracy(evalX, evalY, batch)
		res.Steps = append(res.Steps, Step{float64(done) / float64(n), mp.NWC(), acc})
		if baseAcc-acc <= maxDrop {
			res.Achieved = true
			break
		}
	}
	return res
}

// InSituConfig controls the on-chip training baseline.
type InSituConfig struct {
	LR    float64
	Batch int
}

// DefaultInSitu returns the in-situ baseline configuration.
func DefaultInSitu() InSituConfig { return InSituConfig{LR: 0.005, Batch: 32} }

// InSituStep performs one iteration of on-chip in-situ training: a
// forward/backward pass under the currently programmed (noisy) weights on
// one training batch, followed by an unverified noisy write of every mapped
// weight (one write cycle each) and a free digital update of unmapped
// parameters. batchStart cycles through the training set.
func InSituStep(mp *mapping.Mapped, trainX *tensor.Tensor, trainY []int, batchStart int,
	cfg InSituConfig, r *rng.Source) (nextStart int) {

	n := trainX.Shape[0]
	sample := trainX.Size() / n
	end := batchStart + cfg.Batch
	if end > n {
		end = n
	}
	shape := append([]int{end - batchStart}, trainX.Shape[1:]...)
	bx := tensor.FromSlice(trainX.Data[batchStart*sample:end*sample], shape...)
	by := trainY[batchStart:end]

	net := mp.Net
	net.ZeroGrad()
	net.LossGrad(bx, by, true)

	// Mapped weights: apply one incremental (unverified) update pulse per
	// weight — one write cycle each, per the paper's in-situ accounting.
	flat := 0
	for _, p := range net.MappedParams() {
		for off := range p.Data.Data {
			mp.IncrementAt(flat, -cfg.LR*p.Grad.Data[off], r)
			flat++
		}
	}
	// Digital parameters (biases, batch-norm affine) update exactly.
	for _, p := range net.Params() {
		if p.Mapped {
			continue
		}
		p.Data.AddScaled(-cfg.LR, p.Grad)
	}
	if end == n {
		return 0
	}
	return end
}

// InSituToNWC runs in-situ iterations until the write bill reaches target
// NWC, returning the number of iterations performed. NWC may exceed 1.0 for
// in-situ training (paper §4.2).
func InSituToNWC(mp *mapping.Mapped, trainX *tensor.Tensor, trainY []int, target float64,
	cfg InSituConfig, r *rng.Source) int {

	budget := target * mp.BaselineCycles()
	iters := 0
	start := 0
	for mp.CyclesUsed < budget {
		start = InSituStep(mp, trainX, trainY, start, cfg, r)
		iters++
	}
	return iters
}
