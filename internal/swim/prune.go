package swim

import (
	"sort"

	"swim/internal/nn"
)

// PruneBySensitivity is the Optimal-Brain-Damage-style extension of SWIM's
// sensitivity metric (the paper's §3.2 analysis is "inspired by [LeCun et
// al., Optimal Brain Damage]"): weights whose loss Hessian diagonal — scaled
// by their own magnitude per OBD's saliency ½·H_ii·w_i² — is smallest can be
// removed outright. On an nvCiM platform pruned weights need no device at
// all, compounding SWIM's programming-time savings with area and energy
// savings.
//
// It zeroes the fraction frac of mapped weights with the lowest saliency and
// returns the number pruned. hess must be in MappedParams order (as returned
// by Sensitivity).
func PruneBySensitivity(net *nn.Network, hess []float64, frac float64) int {
	if frac <= 0 {
		return 0
	}
	if frac > 1 {
		frac = 1
	}
	params := net.MappedParams()
	total := 0
	for _, p := range params {
		total += p.Size()
	}
	if len(hess) != total {
		panic("swim: hess length does not match mapped weights")
	}

	// OBD saliency: ½·H_ii·w_i².
	saliency := make([]float64, total)
	flat := 0
	for _, p := range params {
		for _, w := range p.Data.Data {
			saliency[flat] = 0.5 * hess[flat] * w * w
			flat++
		}
	}
	idx := make([]int, total)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return saliency[idx[a]] < saliency[idx[b]] })

	k := int(frac * float64(total))
	pruneSet := make([]bool, total)
	for _, i := range idx[:k] {
		pruneSet[i] = true
	}
	flat = 0
	pruned := 0
	for _, p := range params {
		for off := range p.Data.Data {
			if pruneSet[flat] {
				if p.Data.Data[off] != 0 {
					pruned++
				}
				p.Data.Data[off] = 0
			}
			flat++
		}
	}
	return pruned
}

// SparsityOf reports the fraction of exactly-zero mapped weights.
func SparsityOf(net *nn.Network) float64 {
	zero, total := 0, 0
	for _, p := range net.MappedParams() {
		for _, w := range p.Data.Data {
			if w == 0 {
				zero++
			}
			total++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(zero) / float64(total)
}
