package nonideal

import (
	"math"
	"strings"
	"testing"

	"swim/internal/device"
	"swim/internal/rng"
)

func testModel() device.Model { return device.Default(8, 0.5) } // 2 bit-slices

// Every registered model must round-trip its full spec through Parse and
// yield the identical configured value.
func TestSpecRoundTrip(t *testing.T) {
	for _, name := range Registered() {
		b, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		n, err := b(nil)
		if err != nil {
			t.Fatalf("%s: defaults rejected: %v", name, err)
		}
		again, err := Parse(n.String())
		if err != nil {
			t.Fatalf("%s: spec %q does not re-parse: %v", name, n.String(), err)
		}
		if again.String() != n.String() {
			t.Fatalf("%s: round-trip changed spec: %q -> %q", name, n.String(), again.String())
		}
		if n.Name() != name {
			t.Fatalf("Name() = %q, registered as %q", n.Name(), name)
		}
	}
}

func TestParseStack(t *testing.T) {
	models, err := ParseStack("drift:nu=0.05+stuckat:p=0.01,high=1")
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 || models[0].Name() != "drift" || models[1].Name() != "stuckat" {
		t.Fatalf("unexpected stack: %v", Names(models))
	}
	if got := StackString(models); got != "drift:nu=0.05,nustd=0.005,t0=1+stuckat:p=0.01,high=1" {
		t.Fatalf("StackString = %q", got)
	}
	for _, empty := range []string{"", "none", "  none  "} {
		if ms, err := ParseStack(empty); err != nil || len(ms) != 0 {
			t.Fatalf("ParseStack(%q) = %v, %v; want empty", empty, ms, err)
		}
	}
	if StackString(nil) != "none" {
		t.Fatalf("StackString(nil) = %q", StackString(nil))
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"warp",                 // unknown model
		"drift:nu",             // malformed parameter
		"drift:nu=x",           // bad value
		"drift:frequency=3",    // unknown parameter
		"stuckat:p=2",          // out of range
		"quantlevels:bits=0.5", // non-integer bits
	} {
		if _, err := ParseStack(spec); err == nil {
			t.Errorf("ParseStack(%q) succeeded, want error", spec)
		}
	}
}

// Apply must be pure and independent of read order: reading devices in any
// order, any number of times, yields the same per-device values.
func TestReadOrderInvariance(t *testing.T) {
	m := testModel()
	models, err := ParseStack("drift:nu=0.05,nustd=0.02+retention:tau=1e4+stuckat:p=0.2+d2d:spread=0.5+quantlevels:bits=4")
	if err != nil {
		t.Fatal(err)
	}
	const n, tRead = 64, 3600.0
	forward := NewTrials(models, m, rng.New(7))
	backward := NewTrials(models, m, rng.New(7))
	a := make([]float64, n)
	for dev := 0; dev < n; dev++ {
		a[dev] = forward.Apply(dev, 7.5, tRead)
	}
	for dev := n - 1; dev >= 0; dev-- {
		if got := backward.Apply(dev, 7.5, tRead); got != a[dev] {
			t.Fatalf("device %d: reverse read %v != forward read %v", dev, got, a[dev])
		}
		// Re-reading must also be stable (no hidden stream state).
		if got := backward.Apply(dev, 7.5, tRead); got != a[dev] {
			t.Fatalf("device %d: second read diverged", dev)
		}
	}
}

// Two trials with different streams must differ; the same stream must agree.
func TestTrialDeterminism(t *testing.T) {
	m := testModel()
	models, _ := ParseStack("stuckat:p=0.5")
	a := NewTrials(models, m, rng.New(1))
	b := NewTrials(models, m, rng.New(1))
	c := NewTrials(models, m, rng.New(2))
	same, diff := true, false
	for dev := 0; dev < 256; dev++ {
		if a.Apply(dev, 3, 0) != b.Apply(dev, 3, 0) {
			same = false
		}
		if a.Apply(dev, 3, 0) != c.Apply(dev, 3, 0) {
			diff = true
		}
	}
	if !same {
		t.Fatal("identical seeds produced different trials")
	}
	if !diff {
		t.Fatal("distinct seeds produced identical stuck-fault patterns")
	}
}

func TestDriftDecaysMonotonically(t *testing.T) {
	d := Drift{Nu: 0.05, NuStd: 0, T0: 1}
	in := d.NewTrial(testModel(), rng.New(3))
	g := 10.0
	prev := in.Apply(0, g, 0)
	if prev != g {
		t.Fatalf("drift at t<=t0 must be identity, got %v", prev)
	}
	for _, tt := range []float64{10, 3600, 86400} {
		cur := in.Apply(0, g, tt)
		if cur >= prev || cur <= 0 {
			t.Fatalf("drift not decaying: g(%g)=%v after %v", tt, cur, prev)
		}
		prev = cur
	}
	// ν = 0.05 over a day: 10 · (86400)^-0.05 ≈ 5.67.
	want := g * math.Pow(86400, -0.05)
	if got := in.Apply(0, g, 86400); math.Abs(got-want) > 1e-12 {
		t.Fatalf("drift(1d) = %v, want %v", got, want)
	}
}

func TestRetentionRelaxesTowardReset(t *testing.T) {
	d := Retention{Tau: 100, Spread: 0}
	in := d.NewTrial(testModel(), rng.New(4))
	if got := in.Apply(0, 8, 0); got != 8 {
		t.Fatalf("retention at t=0 must be identity, got %v", got)
	}
	got := in.Apply(0, 8, 100)
	want := 8 * math.Exp(-1)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("retention(tau) = %v, want %v", got, want)
	}
}

func TestStuckAtRateAndValues(t *testing.T) {
	m := testModel()
	in := StuckAt{P: 0.25, High: 1}.NewTrial(m, rng.New(5))
	stuck := 0
	const n = 4000
	for dev := 0; dev < n; dev++ {
		got := in.Apply(dev, 3.3, 0)
		if got != 3.3 {
			stuck++
			if want := float64(m.DeviceLevels(sliceOf(m, dev))); got != want {
				t.Fatalf("high-stuck device %d reads %v, want full scale %v", dev, got, want)
			}
		}
	}
	if rate := float64(stuck) / n; math.Abs(rate-0.25) > 0.03 {
		t.Fatalf("stuck rate %v, want ~0.25", rate)
	}
	low := StuckAt{P: 1, High: 0}.NewTrial(m, rng.New(6))
	if got := low.Apply(0, 9, 0); got != 0 {
		t.Fatalf("low-stuck device reads %v, want 0", got)
	}
}

func TestD2DOffsetsAreStaticPerDevice(t *testing.T) {
	m := testModel()
	in := D2D{Spread: 0.3}.NewTrial(m, rng.New(8))
	var sum, sumSq float64
	const n = 4000
	for dev := 0; dev < n; dev++ {
		off := in.Apply(dev, 5, 0) - 5
		if off != in.Apply(dev, 5, 1e6)-5 {
			t.Fatalf("device %d offset is time-dependent", dev)
		}
		sum += off
		sumSq += off * off
	}
	mean, std := sum/n, math.Sqrt(sumSq/n)
	if math.Abs(mean) > 0.05 {
		t.Fatalf("d2d offsets biased: mean %v", mean)
	}
	// Offsets ~ N(0, (σ·|1+N(0,0.3)|)²): std ≈ σ·sqrt(E[s²]) = 0.5·sqrt(1.09).
	if want := m.Sigma * math.Sqrt(1+0.3*0.3); math.Abs(std-want) > 0.05 {
		t.Fatalf("d2d offset std %v, want ~%v", std, want)
	}
}

func TestQuantLevelsSnapsAndClamps(t *testing.T) {
	m := testModel()
	in := QuantLevels{Bits: 2}.NewTrial(m, rng.New(9))
	full := float64(m.DeviceLevels(0)) // 15 levels, 2-bit snap: 0, 5, 10, 15
	for g, want := range map[float64]float64{0: 0, 2.4: 0, 2.6: full / 3, 7.6: full / 3 * 2, 14: full, 99: full, -1: 0} {
		if got := in.Apply(0, g, 0); math.Abs(got-want) > 1e-12 {
			t.Fatalf("quantlevels(%v) = %v, want %v", g, got, want)
		}
	}
}

// Stacking must compose left to right.
func TestStackComposition(t *testing.T) {
	m := testModel()
	stack := Stack{
		QuantLevels{Bits: 4}.NewTrial(m, rng.New(10)),
		Drift{Nu: 0.1, NuStd: 0, T0: 1}.NewTrial(m, rng.New(11)),
	}
	g, tRead := 7.3, 100.0
	want := stack[1].Apply(3, stack[0].Apply(3, g, tRead), tRead)
	if got := stack.Apply(3, g, tRead); got != want {
		t.Fatalf("stack composition: %v != %v", got, want)
	}
}

// NewTrials must consume a fixed amount of the parent stream per model so
// sibling streams never shift when a model changes its internal draws.
func TestNewTrialsStreamDiscipline(t *testing.T) {
	m := testModel()
	one, _ := ParseStack("drift")
	two, _ := ParseStack("quantlevels:bits=3+drift")
	rA, rB := rng.New(42), rng.New(42)
	NewTrials(one, m, rA)
	NewTrials(two, m, rB)
	// After minting, both parents must have advanced by len(models) splits.
	a, b := rA.Uint64(), rB.Uint64()
	if a == b {
		t.Fatal("parent streams advanced identically for different stack sizes")
	}
	rC, rD := rng.New(42), rng.New(42)
	NewTrials(one, m, rC)
	other, _ := ParseStack("retention") // different model, same stack size
	NewTrials(other, m, rD)
	if rC.Uint64() != rD.Uint64() {
		t.Fatal("equal-size stacks consumed different amounts of the parent stream")
	}
}

func TestLookupErrorListsRegistered(t *testing.T) {
	_, err := Lookup("bogus")
	if err == nil || !strings.Contains(err.Error(), "drift") {
		t.Fatalf("Lookup error should list registered models, got: %v", err)
	}
}
