package nonideal

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Params carries the numeric parameters of one model spec (e.g.
// {"nu": 0.05} for "drift:nu=0.05"). Builders reject unknown keys so a
// mistyped parameter reads as a usage error, not a silent default.
type Params map[string]float64

// Builder constructs a configured Nonideality from parameters. Missing keys
// take the model's defaults; unknown keys are an error.
type Builder func(p Params) (Nonideality, error)

var (
	regMu    sync.RWMutex
	registry = map[string]Builder{}
)

// Register adds a model builder under name. Registering a name twice is an
// error, mirroring the program-policy registry: silently replacing a model
// would make scenario specs depend on package-initialization order.
func Register(name string, b Builder) error {
	if b == nil {
		return fmt.Errorf("nonideal: register nil builder")
	}
	if name == "" {
		return fmt.Errorf("nonideal: register builder with empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("nonideal: model %q already registered", name)
	}
	registry[name] = b
	return nil
}

// MustRegister is Register for package-init use; it panics on error.
func MustRegister(name string, b Builder) {
	if err := Register(name, b); err != nil {
		panic(err)
	}
}

// Lookup resolves a model builder by name. Unknown names return an error
// listing what is registered, so a mistyped -nonideal flag reads as a usage
// hint.
func Lookup(name string) (Builder, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("nonideal: unknown model %q (registered: %v)", name, registeredLocked())
	}
	return b, nil
}

// Registered returns the registered model names, sorted.
func Registered() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return registeredLocked()
}

func registeredLocked() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Parse builds one model from a spec string: a registered name optionally
// followed by colon-separated parameters, e.g. "drift" or
// "drift:nu=0.05,nustd=0.01". Every built-in's String() round-trips through
// Parse.
func Parse(spec string) (Nonideality, error) {
	name, rest, _ := strings.Cut(strings.TrimSpace(spec), ":")
	b, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	p := Params{}
	if rest != "" {
		for _, kv := range strings.Split(rest, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("nonideal: bad parameter %q in spec %q (want key=value)", kv, spec)
			}
			f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			if err != nil {
				return nil, fmt.Errorf("nonideal: bad value for %q in spec %q: %v", k, spec, err)
			}
			p[strings.TrimSpace(k)] = f
		}
	}
	n, err := b(p)
	if err != nil {
		return nil, fmt.Errorf("nonideal: spec %q: %w", spec, err)
	}
	return n, nil
}

// ParseStack parses a '+'-joined stack of model specs, applied in order at
// read time, e.g. "quantlevels+drift:nu=0.05+stuckat:p=0.001". The empty
// string and the literal "none" yield an empty stack (the ideal-device
// baseline), so scenario lists can include the control case.
func ParseStack(spec string) ([]Nonideality, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return nil, nil
	}
	var out []Nonideality
	for _, one := range strings.Split(spec, "+") {
		n, err := Parse(one)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

// FromFlag resolves the CLIs' shared -nonideal flag convention: the
// literal "list" requests the registered-model listing (returned in
// listing, with no models); anything else parses as a '+'-stacked
// scenario via ParseStack. Keeping the convention here means every binary
// stays in sync when the grammar grows.
func FromFlag(spec string) (models []Nonideality, listing string, err error) {
	if strings.TrimSpace(spec) == "list" {
		return nil, strings.Join(Registered(), "\n"), nil
	}
	models, err = ParseStack(spec)
	return models, "", err
}

// StackString renders a model stack back to its '+'-joined spec ("none" for
// an empty stack) — the inverse of ParseStack.
func StackString(models []Nonideality) string {
	if len(models) == 0 {
		return "none"
	}
	return strings.Join(Names(models), "+")
}

// pick reads one parameter with a default, recording consumption so the
// builder can reject leftovers.
func pick(p Params, used map[string]bool, key string, def float64) float64 {
	used[key] = true
	if v, ok := p[key]; ok {
		return v
	}
	return def
}

// leftover returns an error naming any parameter the builder did not
// consume.
func leftover(name string, p Params, used map[string]bool) error {
	for k := range p {
		if !used[k] {
			return fmt.Errorf("unknown parameter %q for model %q", k, name)
		}
	}
	return nil
}

func init() {
	MustRegister("drift", func(p Params) (Nonideality, error) {
		used := map[string]bool{}
		d := Drift{
			Nu:    pick(p, used, "nu", 0.02),
			NuStd: pick(p, used, "nustd", 0.005),
			T0:    pick(p, used, "t0", 1),
		}
		if err := leftover("drift", p, used); err != nil {
			return nil, err
		}
		if d.Nu < 0 || d.NuStd < 0 || d.T0 <= 0 {
			return nil, fmt.Errorf("drift needs nu >= 0, nustd >= 0, t0 > 0 (got nu=%g nustd=%g t0=%g)", d.Nu, d.NuStd, d.T0)
		}
		return d, nil
	})
	MustRegister("retention", func(p Params) (Nonideality, error) {
		used := map[string]bool{}
		d := Retention{
			Tau:    pick(p, used, "tau", 1e6),
			Spread: pick(p, used, "spread", 0.5),
		}
		if err := leftover("retention", p, used); err != nil {
			return nil, err
		}
		if d.Tau <= 0 || d.Spread < 0 {
			return nil, fmt.Errorf("retention needs tau > 0 and spread >= 0 (got tau=%g spread=%g)", d.Tau, d.Spread)
		}
		return d, nil
	})
	MustRegister("stuckat", func(p Params) (Nonideality, error) {
		used := map[string]bool{}
		d := StuckAt{
			P:    pick(p, used, "p", 1e-3),
			High: pick(p, used, "high", 0.5),
		}
		if err := leftover("stuckat", p, used); err != nil {
			return nil, err
		}
		if d.P < 0 || d.P > 1 || d.High < 0 || d.High > 1 {
			return nil, fmt.Errorf("stuckat needs p and high in [0, 1] (got p=%g high=%g)", d.P, d.High)
		}
		return d, nil
	})
	MustRegister("d2d", func(p Params) (Nonideality, error) {
		used := map[string]bool{}
		d := D2D{Spread: pick(p, used, "spread", 0.3)}
		if err := leftover("d2d", p, used); err != nil {
			return nil, err
		}
		if d.Spread < 0 {
			return nil, fmt.Errorf("d2d needs spread >= 0 (got %g)", d.Spread)
		}
		return d, nil
	})
	MustRegister("quantlevels", func(p Params) (Nonideality, error) {
		used := map[string]bool{}
		bits := pick(p, used, "bits", 4)
		if err := leftover("quantlevels", p, used); err != nil {
			return nil, err
		}
		if bits < 1 || bits != float64(int(bits)) || bits > 16 {
			return nil, fmt.Errorf("quantlevels needs integer bits in [1, 16] (got %g)", bits)
		}
		return QuantLevels{Bits: int(bits)}, nil
	})
}
