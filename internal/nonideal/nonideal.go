// Package nonideal models post-programming device nonidealities — the
// effects the SWIM paper's Gaussian programming-noise model (Eq. 15–16)
// deliberately leaves out but real nvCiM deployments face: conductance
// drift, retention loss, stuck-at faults, device-to-device variation and
// conductance-level quantization.
//
// The package mirrors the program.Policy pattern: a Nonideality is a named,
// configured model resolved through a string registry (Register / Lookup /
// Parse), and every Monte-Carlo trial mints its own Instance from the
// trial's pre-split RNG stream. Instances are applied at READ time: the
// mapping and crossbar layers keep the programmed (time-0) conductance of
// every bit-slice device and pass it through Instance.Apply whenever the
// network is evaluated, so write-verify interacts correctly with
// post-programming degradation: programming (the whole pass, verification
// included) happens at t = 0 and every device then degrades for the full
// read time, verified or not — write-verify helps because the conductance
// that subsequently degrades carries a far smaller programming error, not
// because verification restarts any clock.
//
// # Determinism
//
// Per-device randomness (a stuck fault, a device's drift coefficient) must
// not depend on the order devices are read in, or results would vary with
// evaluation order and worker scheduling. Every Instance therefore draws a
// single 64-bit trial key from the stream it is minted from and derives each
// device's randomness by mixing the key with the device index
// (splitmix-style), never by consuming a shared stream at read time. Reads
// are pure: Apply(dev, g, t) is a function of (trial key, dev, g, t).
package nonideal

import (
	"swim/internal/device"
	"swim/internal/rng"
)

// Nonideality is a named, configured device-nonideality model. Values are
// immutable and safe for concurrent use; all per-trial randomness lives in
// the Instance minted by NewTrial.
type Nonideality interface {
	// Name returns the registry name the model was built from (e.g.
	// "drift") — the key Lookup resolves.
	Name() string
	// String returns the full spec, parameters included (e.g.
	// "drift:nu=0.02,nustd=0.005"), suitable for Parse round-tripping and
	// for recording in a program.Result.
	String() string
	// NewTrial samples the per-trial state for one Monte-Carlo trial on
	// devices of model m. It must consume a fixed amount of randomness from
	// r (the built-ins draw exactly one Uint64 key), so that stacking
	// models keeps every stream assignment deterministic.
	NewTrial(m device.Model, r *rng.Source) Instance
}

// Instance is one trial's sampled nonideality state. Apply must be pure and
// read-order invariant: the same (dev, g, t) always yields the same value
// within a trial, regardless of how many devices were read before it.
type Instance interface {
	// Apply returns the conductance observed when reading device dev at t
	// seconds after programming, given its programmed conductance g.
	// Both g and the result are magnitudes in device-level units; the
	// caller owns the differential-pair sign. dev is the global flat
	// device index (weight index × devices-per-weight + slice).
	Apply(dev int, g float64, t float64) float64
}

// Stack composes instances applied in order: the output conductance of one
// model is the input of the next, so e.g. quantized levels can then drift.
type Stack []Instance

// Apply runs the stacked instances in order.
func (s Stack) Apply(dev int, g float64, t float64) float64 {
	for _, inst := range s {
		g = inst.Apply(dev, g, t)
	}
	return g
}

// NewTrials mints one Instance per model, each from its own child stream
// split off r, and returns them as a Stack. Splitting per model keeps the
// parent stream's consumption fixed (len(models) splits) no matter how much
// randomness each model draws.
func NewTrials(models []Nonideality, m device.Model, r *rng.Source) Stack {
	out := make(Stack, len(models))
	for i, n := range models {
		out[i] = n.NewTrial(m, r.Split())
	}
	return out
}

// Names returns the configured models' full specs (String), in order — the
// form program.Result records.
func Names(models []Nonideality) []string {
	out := make([]string, len(models))
	for i, n := range models {
		out[i] = n.String()
	}
	return out
}

// devKey derives the deterministic per-device seed from a trial key: one
// extra splitmix mixing step over key+dev so adjacent device indices
// decorrelate. The per-device stream is rng.NewLocal(devKey(key, dev)).
func devKey(key uint64, dev int) uint64 {
	z := key + 0x9e3779b97f4a7c15*uint64(dev+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// sliceOf maps a global flat device index to its bit-slice position within
// the weight, matching the mapping/crossbar layout (dev = weight*nd +
// slice).
func sliceOf(m device.Model, dev int) int {
	nd := m.NumDevices()
	if nd < 1 {
		return 0
	}
	return dev % nd
}
