package nonideal

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"swim/internal/device"
	"swim/internal/rng"
)

// Drift is the power-law conductance decay ubiquitous in phase-change and
// filamentary memories: a device read t seconds after programming returns
//
//	g(t) = g0 · (t / t0)^(−ν)       for t > t0, else g0
//
// with drift coefficient ν drawn once per device per trial from
// N(Nu, NuStd²) clamped at 0. Registry name "drift"; parameters nu, nustd,
// t0 (seconds).
type Drift struct {
	// Nu is the mean drift coefficient (typical PCM values are 0.005–0.1).
	Nu float64
	// NuStd is the per-device spread of the drift coefficient.
	NuStd float64
	// T0 is the reference time the power law is anchored at, in seconds.
	T0 float64
}

// fnum renders a spec parameter value. It is %g with one amendment: the
// '+' that %g writes into large exponents ("1e+06") is dropped ("1e06"),
// because '+' is the stack separator in ParseStack's grammar and a
// canonical spec must re-parse to itself.
func fnum(v float64) string {
	return strings.ReplaceAll(strconv.FormatFloat(v, 'g', -1, 64), "e+", "e")
}

// Name implements Nonideality.
func (d Drift) Name() string { return "drift" }

// String implements Nonideality.
func (d Drift) String() string {
	return fmt.Sprintf("drift:nu=%s,nustd=%s,t0=%s", fnum(d.Nu), fnum(d.NuStd), fnum(d.T0))
}

// NewTrial implements Nonideality: one key draw, per-device ν by hashing.
func (d Drift) NewTrial(_ device.Model, r *rng.Source) Instance {
	return driftInstance{cfg: d, key: r.Uint64()}
}

type driftInstance struct {
	cfg Drift
	key uint64
}

func (in driftInstance) Apply(dev int, g float64, t float64) float64 {
	if t <= in.cfg.T0 || g == 0 {
		return g
	}
	s := rng.NewLocal(devKey(in.key, dev))
	nu := in.cfg.Nu + in.cfg.NuStd*s.Norm()
	if nu <= 0 {
		return g
	}
	return g * math.Pow(t/in.cfg.T0, -nu)
}

// Retention models charge/filament relaxation toward the reset state as an
// exponential decay: g(t) = g0 · exp(−t/τ), with the time constant τ drawn
// once per device per trial from a lognormal around Tau (multiplicative
// spread exp(N(0, Spread²))). Registry name "retention"; parameters tau
// (seconds), spread.
type Retention struct {
	// Tau is the median retention time constant in seconds.
	Tau float64
	// Spread is the lognormal σ of the per-device time constant.
	Spread float64
}

// Name implements Nonideality.
func (d Retention) Name() string { return "retention" }

// String implements Nonideality.
func (d Retention) String() string {
	return fmt.Sprintf("retention:tau=%s,spread=%s", fnum(d.Tau), fnum(d.Spread))
}

// NewTrial implements Nonideality.
func (d Retention) NewTrial(_ device.Model, r *rng.Source) Instance {
	return retentionInstance{cfg: d, key: r.Uint64()}
}

type retentionInstance struct {
	cfg Retention
	key uint64
}

func (in retentionInstance) Apply(dev int, g float64, t float64) float64 {
	if t <= 0 || g == 0 {
		return g
	}
	s := rng.NewLocal(devKey(in.key, dev))
	tau := in.cfg.Tau * math.Exp(in.cfg.Spread*s.Norm())
	return g * math.Exp(-t/tau)
}

// StuckAt injects hard faults: each device is independently stuck with
// probability P, at full scale (its bit-slice's maximum level) with
// probability High, otherwise at zero — whatever was programmed. Faults are
// drawn once per device per trial and are time-invariant. Registry name
// "stuckat"; parameters p, high.
type StuckAt struct {
	// P is the per-device fault probability.
	P float64
	// High is the fraction of faults stuck at full scale (the rest stick
	// at zero).
	High float64
}

// Name implements Nonideality.
func (d StuckAt) Name() string { return "stuckat" }

// String implements Nonideality.
func (d StuckAt) String() string { return fmt.Sprintf("stuckat:p=%s,high=%s", fnum(d.P), fnum(d.High)) }

// NewTrial implements Nonideality.
func (d StuckAt) NewTrial(m device.Model, r *rng.Source) Instance {
	return stuckAtInstance{cfg: d, m: m, key: r.Uint64()}
}

type stuckAtInstance struct {
	cfg StuckAt
	m   device.Model
	key uint64
}

func (in stuckAtInstance) Apply(dev int, g float64, _ float64) float64 {
	s := rng.NewLocal(devKey(in.key, dev))
	if s.Float64() >= in.cfg.P {
		return g
	}
	if s.Float64() < in.cfg.High {
		return float64(in.m.DeviceLevels(sliceOf(in.m, dev)))
	}
	return 0
}

// D2D is device-to-device variation of the programming noise: each device's
// σ (device.Model.Sigma) is rescaled once per trial by |1 + N(0, Spread²)|
// and the device carries a static read offset drawn from the rescaled noise,
// N(0, (σ·scale)²). Devices that happened to be fabricated noisy therefore
// stay noisy for the whole trial — unlike the i.i.d. per-write noise of
// Eq. 15. Registry name "d2d"; parameter spread.
type D2D struct {
	// Spread is the relative spread of the per-device σ scaling.
	Spread float64
}

// Name implements Nonideality.
func (d D2D) Name() string { return "d2d" }

// String implements Nonideality.
func (d D2D) String() string { return fmt.Sprintf("d2d:spread=%s", fnum(d.Spread)) }

// NewTrial implements Nonideality.
func (d D2D) NewTrial(m device.Model, r *rng.Source) Instance {
	return d2dInstance{cfg: d, sigma: m.Sigma, key: r.Uint64()}
}

type d2dInstance struct {
	cfg   D2D
	sigma float64
	key   uint64
}

func (in d2dInstance) Apply(dev int, g float64, _ float64) float64 {
	s := rng.NewLocal(devKey(in.key, dev))
	scale := math.Abs(1 + in.cfg.Spread*s.Norm())
	// Clamp at the reset state: conductances are magnitudes (the Instance
	// contract) and a physical device cannot read below zero, so an offset
	// that would push a near-reset device negative saturates instead.
	return math.Max(0, g+in.sigma*scale*s.Norm())
}

// QuantLevels snaps the programmed analog conductance to 2^Bits uniform
// levels over the device's full scale, clamping to [0, full scale] — the
// finite-resolution programming of multi-level cells. Deterministic: no
// per-trial randomness. Registry name "quantlevels"; parameter bits.
type QuantLevels struct {
	// Bits is the stored resolution: conductance snaps to 2^Bits levels.
	Bits int
}

// Name implements Nonideality.
func (d QuantLevels) Name() string { return "quantlevels" }

// String implements Nonideality.
func (d QuantLevels) String() string { return fmt.Sprintf("quantlevels:bits=%d", d.Bits) }

// NewTrial implements Nonideality. It still consumes one key draw so that
// swapping models in a stack never shifts a sibling model's stream.
func (d QuantLevels) NewTrial(m device.Model, r *rng.Source) Instance {
	r.Uint64()
	return quantInstance{cfg: d, m: m}
}

type quantInstance struct {
	cfg QuantLevels
	m   device.Model
}

func (in quantInstance) Apply(dev int, g float64, _ float64) float64 {
	full := float64(in.m.DeviceLevels(sliceOf(in.m, dev)))
	if full <= 0 {
		return 0
	}
	steps := float64(int(1)<<in.cfg.Bits - 1)
	q := math.Round(g/full*steps) / steps * full
	return math.Min(math.Max(q, 0), full)
}
