package nonideal

import "testing"

// FuzzParseStack drives the '+'-stacked spec grammar with arbitrary input.
// Two properties must hold: no input panics the parser, and any accepted
// input reaches a canonical form — StackString of the parsed stack reparses
// to byte-identical StackString (the fixed point every CLI flag and cache
// key relies on).
func FuzzParseStack(f *testing.F) {
	f.Add("")
	f.Add("none")
	f.Add("drift")
	f.Add("drift:nu=0.05,nustd=0.005,t0=1")
	f.Add("quantlevels+drift:nu=0.05+stuckat:p=0.001")
	f.Add("d2d:spread=0.1+retention")
	f.Add("drift:nu=")
	f.Add("+")
	f.Add("drift:nu=0.05;stuckat")
	f.Add("stuckat:p=1e309")
	f.Fuzz(func(t *testing.T, spec string) {
		models, err := ParseStack(spec)
		if err != nil {
			return
		}
		canon := StackString(models)
		again, err := ParseStack(canon)
		if err != nil {
			t.Fatalf("canonical form %q (of %q) rejected: %v", canon, spec, err)
		}
		if got := StackString(again); got != canon {
			t.Fatalf("canonical form not a fixed point: %q reparsed to %q", canon, got)
		}
	})
}
