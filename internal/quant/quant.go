// Package quant implements the uniform weight quantization used when mapping
// DNNs onto nvCiM crossbars (paper §4: "All models ... are quantized to the
// proper data precision", 4-bit for LeNet, 6-bit for ConvNet/ResNet-18).
//
// A weight tensor is quantized symmetrically to sign + M-bit magnitude:
//
//	q = clamp(round(|w| / scale), 0, 2^M − 1),   scale = max|w| / (2^M − 1)
//
// The integer magnitude q is what Eq. 14 of the paper programs bit-serially
// onto K-bit devices; the sign selects the column of a differential crossbar
// pair. Dequantization is w ≈ sign · q · scale.
package quant

import (
	"fmt"
	"math"

	"swim/internal/tensor"
)

// Config describes a weight-quantization setting.
type Config struct {
	// WeightBits is M, the magnitude precision of each weight.
	WeightBits int
	// ActBits is the activation precision (used by models when inserting
	// fake-quantization layers; recorded here so experiments can report it).
	ActBits int
}

// Levels returns the largest representable magnitude 2^M − 1.
func (c Config) Levels() int { return (1 << c.WeightBits) - 1 }

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.WeightBits < 1 || c.WeightBits > 16 {
		return fmt.Errorf("quant: weight bits %d out of range [1,16]", c.WeightBits)
	}
	if c.ActBits < 1 || c.ActBits > 16 {
		return fmt.Errorf("quant: act bits %d out of range [1,16]", c.ActBits)
	}
	return nil
}

// ScaleFor returns the per-tensor quantization step for the given weights.
// A zero tensor gets scale 1 so that dequantization stays well defined.
func ScaleFor(w *tensor.Tensor, bits int) float64 {
	m := w.AbsMax()
	if m == 0 {
		return 1
	}
	return m / float64(int(1)<<bits-1)
}

// QuantizeInt returns the integer magnitudes and signs of w under the given
// step. Magnitudes are clamped to [0, levels].
func QuantizeInt(w *tensor.Tensor, scale float64, bits int) (mags []int, signs []float64) {
	levels := (1 << bits) - 1
	mags = make([]int, len(w.Data))
	signs = make([]float64, len(w.Data))
	for i, v := range w.Data {
		s := 1.0
		if v < 0 {
			s = -1
		}
		q := int(math.Round(math.Abs(v) / scale))
		if q > levels {
			q = levels
		}
		mags[i] = q
		signs[i] = s
	}
	return mags, signs
}

// Dequantize reconstructs float weights from integer magnitudes and signs.
func Dequantize(mags []int, signs []float64, scale float64) []float64 {
	out := make([]float64, len(mags))
	for i, q := range mags {
		out[i] = signs[i] * float64(q) * scale
	}
	return out
}

// FakeQuantize rounds w in place to its quantized grid (straight-through
// forward used during quantization-aware training) and returns the scale.
func FakeQuantize(w *tensor.Tensor, bits int) float64 {
	scale := ScaleFor(w, bits)
	levels := float64(int(1)<<bits - 1)
	for i, v := range w.Data {
		q := math.Round(math.Abs(v) / scale)
		if q > levels {
			q = levels
		}
		if v < 0 {
			w.Data[i] = -q * scale
		} else {
			w.Data[i] = q * scale
		}
	}
	return scale
}

// Error returns the max absolute quantization error of representing w on the
// grid defined by bits (useful for tests and reports).
func Error(w *tensor.Tensor, bits int) float64 {
	scale := ScaleFor(w, bits)
	levels := float64(int(1)<<bits - 1)
	worst := 0.0
	for _, v := range w.Data {
		q := math.Round(math.Abs(v) / scale)
		if q > levels {
			q = levels
		}
		e := math.Abs(math.Abs(v) - q*scale)
		if e > worst {
			worst = e
		}
	}
	return worst
}
