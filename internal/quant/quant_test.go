package quant

import (
	"math"
	"testing"
	"testing/quick"

	"swim/internal/rng"
	"swim/internal/tensor"
)

func randWeights(seed uint64, n int) *tensor.Tensor {
	r := rng.New(seed)
	w := tensor.New(n)
	for i := range w.Data {
		w.Data[i] = r.Gauss(0, 0.5)
	}
	return w
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{WeightBits: 4, ActBits: 4}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Config{WeightBits: 0, ActBits: 4}).Validate(); err == nil {
		t.Fatal("accepted 0 weight bits")
	}
	if err := (Config{WeightBits: 4, ActBits: 99}).Validate(); err == nil {
		t.Fatal("accepted 99 act bits")
	}
	if (Config{WeightBits: 4}).Levels() != 15 {
		t.Fatal("levels wrong")
	}
}

func TestRoundTripErrorBound(t *testing.T) {
	// Round-tripping through the integer grid never errs more than half a
	// step for in-range weights.
	if err := quick.Check(func(seed uint64) bool {
		w := randWeights(seed, 64)
		scale := ScaleFor(w, 6)
		mags, signs := QuantizeInt(w, scale, 6)
		back := Dequantize(mags, signs, scale)
		for i, v := range w.Data {
			if math.Abs(back[i]-v) > scale/2+1e-12 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeIntRange(t *testing.T) {
	w := tensor.FromSlice([]float64{-3, -0.1, 0, 0.1, 3}, 5)
	scale := ScaleFor(w, 4)
	mags, signs := QuantizeInt(w, scale, 4)
	for i, q := range mags {
		if q < 0 || q > 15 {
			t.Fatalf("mag out of range: %d", q)
		}
		if w.Data[i] < 0 && signs[i] != -1 {
			t.Fatal("sign wrong")
		}
	}
	if mags[0] != 15 || mags[4] != 15 {
		t.Fatalf("extremes should hit full scale: %v", mags)
	}
	if mags[2] != 0 {
		t.Fatal("zero should quantize to 0")
	}
}

func TestScaleForZeroTensor(t *testing.T) {
	if s := ScaleFor(tensor.New(4), 4); s != 1 {
		t.Fatalf("zero tensor scale = %v, want 1", s)
	}
}

func TestFakeQuantizeIdempotent(t *testing.T) {
	w := randWeights(3, 100)
	FakeQuantize(w, 4)
	once := w.Clone()
	FakeQuantize(w, 4)
	for i := range w.Data {
		if math.Abs(w.Data[i]-once.Data[i]) > 1e-12 {
			t.Fatal("fake-quantize is not idempotent")
		}
	}
}

func TestFakeQuantizeGridSize(t *testing.T) {
	w := randWeights(4, 500)
	FakeQuantize(w, 3)
	grid := map[float64]bool{}
	for _, v := range w.Data {
		grid[math.Abs(v)] = true
	}
	if len(grid) > 8 { // 2^3 magnitudes including zero
		t.Fatalf("3-bit quantization produced %d distinct magnitudes", len(grid))
	}
}

func TestErrorShrinksWithBits(t *testing.T) {
	w := randWeights(5, 256)
	e4, e8 := Error(w, 4), Error(w, 8)
	if e8 >= e4 {
		t.Fatalf("error did not shrink with precision: e4=%v e8=%v", e4, e8)
	}
}
