package kernel

import "testing"

// FuzzParse drives the kernel-backend spec grammar with arbitrary input:
// no input may panic, and every accepted spec must canonicalize — Spec()
// of the parsed backend reparses to a byte-identical Spec().
func FuzzParse(f *testing.F) {
	f.Add("scalar")
	f.Add("blocked")
	f.Add("parallel:workers=4")
	f.Add("parallel:workers=0")
	f.Add("parallel")
	f.Add("scalar:extra=1")
	f.Add("parallel:workers=-3")
	f.Add("parallel:workers=2.5")
	f.Fuzz(func(t *testing.T, spec string) {
		k, err := Parse(spec)
		if err != nil {
			return
		}
		canon := k.Spec()
		again, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q (of %q) rejected: %v", canon, spec, err)
		}
		if got := again.Spec(); got != canon {
			t.Fatalf("canonical form not a fixed point: %q reparsed to %q", canon, got)
		}
	})
}
