package kernel

import (
	"swim/internal/tensor"
)

// blocked is the cache/register-tiled backend. Its matmul kernels compute
// each destination row in register-resident tiles of output columns, with
// the k-loop innermost: every output element still accumulates its k-terms
// in ascending order with the scalar backend's zero-skip, so results are
// bit-identical to scalar, but the partial sums live in registers instead of
// round-tripping through the destination row on every k step, and one loaded
// operand feeds several independent accumulator chains. Its convolution is
// direct and sparse: an input-stationary walk that reads each input pixel
// once and scatters only the nonzero ones — padding, and the exact zeros
// ReLU and quantization leave in roughly half of every hidden feature map,
// multiply against literal zeros in the lowered matmul and are skipped here
// (a bitwise no-op for finite operands, since an accumulator that starts at
// +0 can never reach -0).
type blocked struct{}

var _ Backend = blocked{}

// Name implements Backend.
func (blocked) Name() string { return "blocked" }

// Spec implements Backend.
func (blocked) Spec() string { return "blocked" }

// UsesIm2Col implements Backend: the blocked convolution consumes the cols
// workspace — not as an im2col lowering, but as the packing panel its
// register tiles read weights from.
func (blocked) UsesIm2Col() bool { return true }

// MatMul implements Backend.
func (blocked) MatMul(c, a, b *tensor.Tensor, accumulate bool) {
	m, k, n := matMulDims(c, a, b)
	for i := 0; i < m; i++ {
		matMulRowBlocked(c.Data[i*n:(i+1)*n], a.Data[i*k:(i+1)*k], b.Data, k, n, accumulate)
	}
}

// MatMulTransA implements Backend.
func (blocked) MatMulTransA(c, a, b *tensor.Tensor, accumulate bool) {
	m, k, n := matMulTransADims(c, a, b)
	for i := 0; i < m; i++ {
		matMulTransARowBlocked(c.Data[i*n:(i+1)*n], a.Data, i, m, b.Data, k, n, accumulate)
	}
}

// MatMulTransB implements Backend.
func (blocked) MatMulTransB(c, a, b *tensor.Tensor, accumulate bool) {
	m, k, n := matMulTransBDims(c, a, b)
	for i := 0; i < m; i++ {
		matMulTransBRowBlocked(c.Data[i*n:(i+1)*n], a.Data[i*k:(i+1)*k], b.Data, k, n, accumulate)
	}
}

// Linear implements Backend.
func (blocked) Linear(dst, x, w *tensor.Tensor, bias []float64) {
	linearCheck(dst, x, w, bias)
	m, k := x.Shape[0], x.Shape[1]
	n := w.Shape[0]
	for i := 0; i < m; i++ {
		linearRowBlocked(dst.Data[i*n:(i+1)*n], x.Data[i*k:(i+1)*k], w.Data, bias, k, n)
	}
}

// Im2Col implements Backend by delegating to the tensor lowering.
func (blocked) Im2Col(g tensor.Conv2DGeom, cols *tensor.Tensor, x []float64) {
	g.Im2ColInto(cols, x)
}

// Conv2D implements Backend with the sparse direct convolution in
// output-channel tiles. Each tile's weight rows are transposed once into a
// p-major panel carved from the cols workspace — one pack amortized over
// every sample of the batch — and each sample makes an input-stationary pass
// that skips its exactly-zero activations. Without a workspace (or with one
// too narrow to hold a panel) the per-sample walk packs on the stack instead;
// both paths are bit-identical.
func (blocked) Conv2D(g tensor.Conv2DGeom, outC int, dst, x, w *tensor.Tensor, bias []float64, cols *tensor.Tensor) {
	conv2DCheck(g, outC, dst, x, w, bias)
	b := x.Shape[0]
	sampleIn := g.InC * g.InH * g.InW
	hw := g.OutH * g.OutW
	sampleOut := outC * hw
	if cols == nil || g.ColCols() < 8 {
		for bi := 0; bi < b; bi++ {
			convSampleBlocked(g, outC, dst.Data[bi*sampleOut:(bi+1)*sampleOut],
				x.Data[bi*sampleIn:(bi+1)*sampleIn], w.Data, bias)
		}
		return
	}
	kr := g.ColRows()
	wpk := cols.Data
	oc := 0
	for ; oc+8 <= outC; oc += 8 {
		packPanel(w.Data[oc*kr:(oc+8)*kr], kr, 8, wpk)
		for bi := 0; bi < b; bi++ {
			convSP8(g, dst.Data[bi*sampleOut+oc*hw:bi*sampleOut+(oc+8)*hw],
				x.Data[bi*sampleIn:(bi+1)*sampleIn], wpk, bias[oc:oc+8], hw)
		}
	}
	if oc+4 <= outC {
		packPanel(w.Data[oc*kr:(oc+4)*kr], kr, 4, wpk)
		for bi := 0; bi < b; bi++ {
			convSP4(g, dst.Data[bi*sampleOut+oc*hw:bi*sampleOut+(oc+4)*hw],
				x.Data[bi*sampleIn:(bi+1)*sampleIn], wpk, bias[oc:oc+4], hw)
		}
		oc += 4
	}
	if oc+2 <= outC {
		packPanel(w.Data[oc*kr:(oc+2)*kr], kr, 2, wpk)
		for bi := 0; bi < b; bi++ {
			convSP2(g, dst.Data[bi*sampleOut+oc*hw:bi*sampleOut+(oc+2)*hw],
				x.Data[bi*sampleIn:(bi+1)*sampleIn], wpk, bias[oc:oc+2], hw)
		}
		oc += 2
	}
	if oc < outC {
		for bi := 0; bi < b; bi++ {
			convSP1(g, dst.Data[bi*sampleOut+oc*hw:bi*sampleOut+(oc+1)*hw],
				x.Data[bi*sampleIn:(bi+1)*sampleIn], w.Data[oc*kr:(oc+1)*kr], bias[oc], hw)
		}
	}
}

// packPanel transposes lanes weight rows (each kr long) into the p-major
// panel wpk[p*lanes+l], so a register tile's inner loop loads its lane
// weights from consecutive memory.
func packPanel(wt []float64, kr, lanes int, wpk []float64) {
	for l := 0; l < lanes; l++ {
		wrow := wt[l*kr : (l+1)*kr]
		for p, wv := range wrow {
			wpk[p*lanes+l] = wv
		}
	}
}

// matMulDims validates C = A·B shapes and returns (m, k, n).
func matMulDims(c, a, b *tensor.Tensor) (m, k, n int) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || len(c.Shape) != 2 {
		panic("kernel: MatMul requires rank-2 operands")
	}
	m, k = a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 || c.Shape[0] != m || c.Shape[1] != n {
		panic("kernel: MatMul shape mismatch")
	}
	return m, k, n
}

// matMulTransADims validates C = Aᵀ·B shapes and returns (m, k, n).
func matMulTransADims(c, a, b *tensor.Tensor) (m, k, n int) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || len(c.Shape) != 2 {
		panic("kernel: MatMulTransA requires rank-2 operands")
	}
	k, m = a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 || c.Shape[0] != m || c.Shape[1] != n {
		panic("kernel: MatMulTransA shape mismatch")
	}
	return m, k, n
}

// matMulTransBDims validates C = A·Bᵀ shapes and returns (m, k, n).
func matMulTransBDims(c, a, b *tensor.Tensor) (m, k, n int) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || len(c.Shape) != 2 {
		panic("kernel: MatMulTransB requires rank-2 operands")
	}
	m, k = a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 || c.Shape[0] != m || c.Shape[1] != n {
		panic("kernel: MatMulTransB shape mismatch")
	}
	return m, k, n
}

// matMulRowBlocked computes one row of C = A·B (crow = arow·B), eight output
// columns per register tile, k innermost with the scalar zero-skip. bd is
// the k×n right-hand matrix, flat.
func matMulRowBlocked(crow, arow, bd []float64, k, n int, accumulate bool) {
	j := 0
	for ; j+8 <= n; j += 8 {
		var s0, s1, s2, s3, s4, s5, s6, s7 float64
		if accumulate {
			s0, s1, s2, s3 = crow[j], crow[j+1], crow[j+2], crow[j+3]
			s4, s5, s6, s7 = crow[j+4], crow[j+5], crow[j+6], crow[j+7]
		}
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			bq := bd[p*n+j : p*n+j+8]
			s0 += av * bq[0]
			s1 += av * bq[1]
			s2 += av * bq[2]
			s3 += av * bq[3]
			s4 += av * bq[4]
			s5 += av * bq[5]
			s6 += av * bq[6]
			s7 += av * bq[7]
		}
		crow[j], crow[j+1], crow[j+2], crow[j+3] = s0, s1, s2, s3
		crow[j+4], crow[j+5], crow[j+6], crow[j+7] = s4, s5, s6, s7
	}
	for ; j < n; j++ {
		s := 0.0
		if accumulate {
			s = crow[j]
		}
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			s += av * bd[p*n+j]
		}
		crow[j] = s
	}
}

// matMulTransARowBlocked computes row i of C = Aᵀ·B, reading column i of the
// k×m matrix A. Same tiling and element-level term order as the plain kernel.
func matMulTransARowBlocked(crow, ad []float64, i, m int, bd []float64, k, n int, accumulate bool) {
	j := 0
	for ; j+8 <= n; j += 8 {
		var s0, s1, s2, s3, s4, s5, s6, s7 float64
		if accumulate {
			s0, s1, s2, s3 = crow[j], crow[j+1], crow[j+2], crow[j+3]
			s4, s5, s6, s7 = crow[j+4], crow[j+5], crow[j+6], crow[j+7]
		}
		for p := 0; p < k; p++ {
			av := ad[p*m+i]
			if av == 0 {
				continue
			}
			bq := bd[p*n+j : p*n+j+8]
			s0 += av * bq[0]
			s1 += av * bq[1]
			s2 += av * bq[2]
			s3 += av * bq[3]
			s4 += av * bq[4]
			s5 += av * bq[5]
			s6 += av * bq[6]
			s7 += av * bq[7]
		}
		crow[j], crow[j+1], crow[j+2], crow[j+3] = s0, s1, s2, s3
		crow[j+4], crow[j+5], crow[j+6], crow[j+7] = s4, s5, s6, s7
	}
	for ; j < n; j++ {
		s := 0.0
		if accumulate {
			s = crow[j]
		}
		for p := 0; p < k; p++ {
			av := ad[p*m+i]
			if av == 0 {
				continue
			}
			s += av * bd[p*n+j]
		}
		crow[j] = s
	}
}

// matMulTransBRowBlocked computes one row of C = A·Bᵀ: four dot products at
// a time against consecutive rows of B, giving four independent accumulator
// chains where the scalar kernel has one. Each dot product runs in the same
// ascending-k order (and, like the scalar kernel, without a zero-skip).
func matMulTransBRowBlocked(crow, arow, bd []float64, k, n int, accumulate bool) {
	j := 0
	for ; j+4 <= n; j += 4 {
		b0 := bd[j*k : (j+1)*k]
		b1 := bd[(j+1)*k : (j+2)*k]
		b2 := bd[(j+2)*k : (j+3)*k]
		b3 := bd[(j+3)*k : (j+4)*k]
		var s0, s1, s2, s3 float64
		for p, av := range arow {
			s0 += av * b0[p]
			s1 += av * b1[p]
			s2 += av * b2[p]
			s3 += av * b3[p]
		}
		if accumulate {
			crow[j] += s0
			crow[j+1] += s1
			crow[j+2] += s2
			crow[j+3] += s3
		} else {
			crow[j] = s0
			crow[j+1] = s1
			crow[j+2] = s2
			crow[j+3] = s3
		}
	}
	for ; j < n; j++ {
		brow := bd[j*k : (j+1)*k]
		s := 0.0
		for p, av := range arow {
			s += av * brow[p]
		}
		if accumulate {
			crow[j] += s
		} else {
			crow[j] = s
		}
	}
}

// linearRowBlocked is matMulTransBRowBlocked with the bias folded into the
// final store and a zero-skip on the input activation: every dot product
// starts from +0 and can never become -0, so dropping the av == 0 terms
// (about half of a post-ReLU, post-quantization feature vector) only ever
// skips adding ±0 — bitwise the scalar fused Linear for finite inputs.
func linearRowBlocked(crow, arow, wd, bias []float64, k, n int) {
	j := 0
	for ; j+4 <= n; j += 4 {
		b0 := wd[j*k : (j+1)*k]
		b1 := wd[(j+1)*k : (j+2)*k]
		b2 := wd[(j+2)*k : (j+3)*k]
		b3 := wd[(j+3)*k : (j+4)*k]
		var s0, s1, s2, s3 float64
		for p, av := range arow {
			if av == 0 {
				continue
			}
			s0 += av * b0[p]
			s1 += av * b1[p]
			s2 += av * b2[p]
			s3 += av * b3[p]
		}
		crow[j] = s0 + bias[j]
		crow[j+1] = s1 + bias[j+1]
		crow[j+2] = s2 + bias[j+2]
		crow[j+3] = s3 + bias[j+3]
	}
	for ; j < n; j++ {
		brow := wd[j*k : (j+1)*k]
		s := 0.0
		for p, av := range arow {
			if av == 0 {
				continue
			}
			s += av * brow[p]
		}
		crow[j] = s + bias[j]
	}
}

// panelMaxKR bounds the kernel-position count (inC·kh·kw) for which the
// per-sample walk packs weight panels on the stack; larger geometries fall
// back to the unpacked single-channel kernel.
const panelMaxKR = 512

// convSampleBlocked computes the sparse direct convolution of one sample:
// out ([outC, OutH, OutW] flat) from xs ([InC, InH, InW] flat) and wd
// ([outC, inC*kh*kw] flat). Each eight- (then four-, two-) channel tile packs
// its weight rows into a stack-resident p-major panel and runs the same
// scatter kernels as the batched path, so callers without a cols workspace —
// the parallel backend's per-sample units, plans whose output map is too
// narrow to hold a panel — lose only the cross-batch pack amortization.
func convSampleBlocked(g tensor.Conv2DGeom, outC int, out, xs, wd, bias []float64) {
	hw := g.OutH * g.OutW
	kr := g.ColRows()
	if kr > panelMaxKR {
		for oc := 0; oc < outC; oc++ {
			convSP1(g, out[oc*hw:(oc+1)*hw], xs, wd[oc*kr:(oc+1)*kr], bias[oc], hw)
		}
		return
	}
	var panel [8 * panelMaxKR]float64
	oc := 0
	for ; oc+8 <= outC; oc += 8 {
		wpk := panel[: 8*kr : 8*kr]
		packPanel(wd[oc*kr:(oc+8)*kr], kr, 8, wpk)
		convSP8(g, out[oc*hw:(oc+8)*hw], xs, wpk, bias[oc:oc+8], hw)
	}
	if oc+4 <= outC {
		wpk := panel[: 4*kr : 4*kr]
		packPanel(wd[oc*kr:(oc+4)*kr], kr, 4, wpk)
		convSP4(g, out[oc*hw:(oc+4)*hw], xs, wpk, bias[oc:oc+4], hw)
		oc += 4
	}
	if oc+2 <= outC {
		wpk := panel[: 2*kr : 2*kr]
		packPanel(wd[oc*kr:(oc+2)*kr], kr, 2, wpk)
		convSP2(g, out[oc*hw:(oc+2)*hw], xs, wpk, bias[oc:oc+2], hw)
		oc += 2
	}
	if oc < outC {
		convSP1(g, out[oc*hw:(oc+1)*hw], xs, wd[oc*kr:(oc+1)*kr], bias[oc], hw)
	}
}

// outSpan returns the inclusive output-coordinate range [lo, hi] reached by
// padded input coordinate v (= in + pad) through a kernel of extent k over n
// outputs: output o covers v via kernel offset v-stride·o, valid when that
// offset lies in [0, k). Iterating o from hi down to lo walks the kernel
// offsets in ascending order, which is what keeps per-element accumulation in
// im2col row order. An empty range comes back with lo > hi.
func outSpan(v, k, n, stride int) (lo, hi int) {
	if stride == 1 {
		lo, hi = v-k+1, v
	} else {
		// ceil((v-k+1)/stride): exact for positive numerators; negative
		// ones truncate toward zero but land at ≤ 0 and clamp below.
		lo, hi = (v-k+stride)/stride, v/stride
	}
	if lo < 0 {
		lo = 0
	}
	if hi > n-1 {
		hi = n - 1
	}
	return lo, hi
}

// convSP8 computes eight output channels of one sample's convolution from the
// p-major packed panel wpk (wpk[p*8+l] is lane l's weight at kernel position
// p), walking the *input* instead of the output: each input pixel is loaded
// and tested once and — when nonzero — scattered through every kernel
// position it feeds, eight channel lanes per position. Zero pixels cost one
// compare: padding never enters the loops at all, and the post-ReLU /
// post-quantization zeros that make up roughly half of every hidden feature
// map skip kh·kw·8 multiply-adds per compare, so the (unpredictable) branch
// is amortized instead of paying a misprediction per kernel position the way
// an output-stationary skip does. For any fixed output element the visits
// arrive in ascending (c, ii, jj) — which is ascending im2col p order — each
// adding one term to an accumulator that starts at +0 and can never become
// -0, so after the trailing bias pass the result is bitwise the im2col +
// matmul + bias sequence for finite inputs. Any stride.
func convSP8(g tensor.Conv2DGeom, out, xs, wpk, bias []float64, hw int) {
	for i := range out {
		out[i] = 0
	}
	o0, o1, o2, o3 := out[0*hw:1*hw], out[1*hw:2*hw], out[2*hw:3*hw], out[3*hw:4*hw]
	o4, o5, o6, o7 := out[4*hw:5*hw], out[5*hw:6*hw], out[6*hw:7*hw], out[7*hw:8*hw]
	ihw := g.InH * g.InW
	s := g.Stride
	kw8 := g.KW * 8
	for c := 0; c < g.InC; c++ {
		plane := xs[c*ihw : (c+1)*ihw]
		cbase := c * g.KH * kw8
		for ii := 0; ii < g.InH; ii++ {
			a := ii + g.Pad
			oiMin, oiMax := outSpan(a, g.KH, g.OutH, s)
			if oiMax < oiMin {
				continue
			}
			row := plane[ii*g.InW : (ii+1)*g.InW]
			for jj, xv := range row {
				if xv == 0 {
					continue
				}
				b := jj + g.Pad
				ojMin, ojMax := outSpan(b, g.KW, g.OutW, s)
				if ojMax < ojMin {
					continue
				}
				// Within one pixel's scatter every output element
				// receives exactly one term, so the walk order over
				// (oi, oj) is bitwise irrelevant — free rein to pair
				// adjacent output pixels: their kernel offsets are
				// adjacent too, so one sixteen-wide panel load feeds
				// both and the loop overhead halves.
				for oi := oiMax; oi >= oiMin; oi-- {
					wb := cbase + (a-s*oi)*kw8 + (b-s*ojMax)*8
					q := oi*g.OutW + ojMax
					oj := ojMax
					if s == 1 {
						for ; oj > ojMin; oj -= 2 {
							wq := wpk[wb : wb+16]
							o0[q] += wq[0] * xv
							o1[q] += wq[1] * xv
							o2[q] += wq[2] * xv
							o3[q] += wq[3] * xv
							o4[q] += wq[4] * xv
							o5[q] += wq[5] * xv
							o6[q] += wq[6] * xv
							o7[q] += wq[7] * xv
							o0[q-1] += wq[8] * xv
							o1[q-1] += wq[9] * xv
							o2[q-1] += wq[10] * xv
							o3[q-1] += wq[11] * xv
							o4[q-1] += wq[12] * xv
							o5[q-1] += wq[13] * xv
							o6[q-1] += wq[14] * xv
							o7[q-1] += wq[15] * xv
							wb += 16
							q -= 2
						}
					}
					for ; oj >= ojMin; oj-- {
						wq := wpk[wb : wb+8]
						o0[q] += wq[0] * xv
						o1[q] += wq[1] * xv
						o2[q] += wq[2] * xv
						o3[q] += wq[3] * xv
						o4[q] += wq[4] * xv
						o5[q] += wq[5] * xv
						o6[q] += wq[6] * xv
						o7[q] += wq[7] * xv
						wb += 8 * s
						q--
					}
				}
			}
		}
	}
	for l, bv := range bias {
		seg := out[l*hw : (l+1)*hw]
		for q := range seg {
			seg[q] += bv
		}
	}
}

// convSP4 is convSP8 at four packed lanes, covering the narrow models (the
// CIFAR ResNet's early stages run four channels total).
func convSP4(g tensor.Conv2DGeom, out, xs, wpk, bias []float64, hw int) {
	for i := range out {
		out[i] = 0
	}
	o0, o1, o2, o3 := out[0*hw:1*hw], out[1*hw:2*hw], out[2*hw:3*hw], out[3*hw:4*hw]
	ihw := g.InH * g.InW
	s := g.Stride
	kw4 := g.KW * 4
	for c := 0; c < g.InC; c++ {
		plane := xs[c*ihw : (c+1)*ihw]
		cbase := c * g.KH * kw4
		for ii := 0; ii < g.InH; ii++ {
			a := ii + g.Pad
			oiMin, oiMax := outSpan(a, g.KH, g.OutH, s)
			if oiMax < oiMin {
				continue
			}
			row := plane[ii*g.InW : (ii+1)*g.InW]
			for jj, xv := range row {
				if xv == 0 {
					continue
				}
				b := jj + g.Pad
				ojMin, ojMax := outSpan(b, g.KW, g.OutW, s)
				if ojMax < ojMin {
					continue
				}
				for oi := oiMax; oi >= oiMin; oi-- {
					wb := cbase + (a-s*oi)*kw4 + (b-s*ojMax)*4
					q := oi*g.OutW + ojMax
					oj := ojMax
					if s == 1 {
						for ; oj > ojMin; oj -= 2 {
							wq := wpk[wb : wb+8]
							o0[q] += wq[0] * xv
							o1[q] += wq[1] * xv
							o2[q] += wq[2] * xv
							o3[q] += wq[3] * xv
							o0[q-1] += wq[4] * xv
							o1[q-1] += wq[5] * xv
							o2[q-1] += wq[6] * xv
							o3[q-1] += wq[7] * xv
							wb += 8
							q -= 2
						}
					}
					for ; oj >= ojMin; oj-- {
						wq := wpk[wb : wb+4]
						o0[q] += wq[0] * xv
						o1[q] += wq[1] * xv
						o2[q] += wq[2] * xv
						o3[q] += wq[3] * xv
						wb += 4 * s
						q--
					}
				}
			}
		}
	}
	for l, bv := range bias {
		seg := out[l*hw : (l+1)*hw]
		for q := range seg {
			seg[q] += bv
		}
	}
}

// convSP2 is convSP8 at two packed lanes, for the channel-count remainders.
func convSP2(g tensor.Conv2DGeom, out, xs, wpk, bias []float64, hw int) {
	for i := range out {
		out[i] = 0
	}
	o0, o1 := out[0*hw:1*hw], out[1*hw:2*hw]
	ihw := g.InH * g.InW
	s := g.Stride
	kw2 := g.KW * 2
	for c := 0; c < g.InC; c++ {
		plane := xs[c*ihw : (c+1)*ihw]
		cbase := c * g.KH * kw2
		for ii := 0; ii < g.InH; ii++ {
			a := ii + g.Pad
			oiMin, oiMax := outSpan(a, g.KH, g.OutH, s)
			if oiMax < oiMin {
				continue
			}
			row := plane[ii*g.InW : (ii+1)*g.InW]
			for jj, xv := range row {
				if xv == 0 {
					continue
				}
				b := jj + g.Pad
				ojMin, ojMax := outSpan(b, g.KW, g.OutW, s)
				if ojMax < ojMin {
					continue
				}
				for oi := oiMax; oi >= oiMin; oi-- {
					wkbase := cbase + (a-s*oi)*kw2
					obase := oi * g.OutW
					for oj := ojMax; oj >= ojMin; oj-- {
						q := obase + oj
						wb := wkbase + (b-s*oj)*2
						wq := wpk[wb : wb+2]
						o0[q] += wq[0] * xv
						o1[q] += wq[1] * xv
					}
				}
			}
		}
	}
	for l, bv := range bias {
		seg := out[l*hw : (l+1)*hw]
		for q := range seg {
			seg[q] += bv
		}
	}
}

// convSP1 is the single-channel remainder of the output-channel tiling: the
// same input-stationary scatter, reading the channel's weight row in place —
// at one lane there is nothing for packing to make contiguous.
func convSP1(g tensor.Conv2DGeom, out, xs, wrow []float64, bv float64, hw int) {
	for i := range out {
		out[i] = 0
	}
	ihw := g.InH * g.InW
	s := g.Stride
	for c := 0; c < g.InC; c++ {
		plane := xs[c*ihw : (c+1)*ihw]
		cbase := c * g.KH * g.KW
		for ii := 0; ii < g.InH; ii++ {
			a := ii + g.Pad
			oiMin, oiMax := outSpan(a, g.KH, g.OutH, s)
			if oiMax < oiMin {
				continue
			}
			row := plane[ii*g.InW : (ii+1)*g.InW]
			for jj, xv := range row {
				if xv == 0 {
					continue
				}
				b := jj + g.Pad
				ojMin, ojMax := outSpan(b, g.KW, g.OutW, s)
				if ojMax < ojMin {
					continue
				}
				for oi := oiMax; oi >= oiMin; oi-- {
					wkbase := cbase + (a-s*oi)*g.KW
					obase := oi * g.OutW
					for oj := ojMax; oj >= ojMin; oj-- {
						out[obase+oj] += wrow[wkbase+b-s*oj] * xv
					}
				}
			}
		}
	}
	for q := range out {
		out[q] += bv
	}
}
