package kernel

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"testing"

	"swim/internal/rng"
	"swim/internal/tensor"
)

// fill populates t with Gaussian values, planting exact zeros (to exercise
// the zero-skip) and negative zeros (to exercise signed-zero accumulation).
func fill(t *tensor.Tensor, r *rng.Source) {
	for i := range t.Data {
		switch r.Intn(8) {
		case 0:
			t.Data[i] = 0
		case 1:
			t.Data[i] = math.Copysign(0, -1)
		default:
			t.Data[i] = r.Gauss(0, 1)
		}
	}
}

// bitsEqual reports whether a and b hold bit-identical data.
func bitsEqual(a, b *tensor.Tensor) (int, bool) {
	for i := range a.Data {
		if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
			return i, false
		}
	}
	return 0, true
}

// variants returns the non-scalar backends under test, including parallel at
// 1 worker and at all CPUs.
func variants(t *testing.T) []Backend {
	t.Helper()
	specs := []string{"blocked", "parallel:workers=1", "parallel"}
	out := make([]Backend, 0, len(specs))
	for _, s := range specs {
		b, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		out = append(out, b)
	}
	return out
}

func TestMatMulVariantsBitIdentical(t *testing.T) {
	r := rng.New(7)
	sizes := []struct{ m, k, n int }{
		{1, 1, 1}, {1, 2, 3}, {2, 13, 4}, {3, 5, 7}, {5, 9, 8},
		{4, 16, 9}, {7, 31, 17}, {16, 24, 33}, {64, 36, 40},
	}
	for _, sz := range sizes {
		for _, acc := range []bool{false, true} {
			a := tensor.New(sz.m, sz.k)
			b := tensor.New(sz.k, sz.n)
			fill(a, r)
			fill(b, r)
			seed := tensor.New(sz.m, sz.n)
			fill(seed, r)
			want := seed.Clone()
			tensor.MatMulInto(want, a, b, acc)
			for _, back := range variants(t) {
				got := seed.Clone()
				back.MatMul(got, a, b, acc)
				if i, ok := bitsEqual(want, got); !ok {
					t.Fatalf("%s MatMul %dx%dx%d acc=%v: bit mismatch at %d: %g vs %g",
						back.Spec(), sz.m, sz.k, sz.n, acc, i, want.Data[i], got.Data[i])
				}
			}
		}
	}
}

func TestMatMulTransAVariantsBitIdentical(t *testing.T) {
	r := rng.New(11)
	sizes := []struct{ m, k, n int }{
		{1, 1, 1}, {3, 2, 5}, {5, 13, 9}, {8, 7, 16}, {17, 31, 23},
	}
	for _, sz := range sizes {
		for _, acc := range []bool{false, true} {
			a := tensor.New(sz.k, sz.m)
			b := tensor.New(sz.k, sz.n)
			fill(a, r)
			fill(b, r)
			seed := tensor.New(sz.m, sz.n)
			fill(seed, r)
			want := seed.Clone()
			tensor.MatMulTransAInto(want, a, b, acc)
			for _, back := range variants(t) {
				got := seed.Clone()
				back.MatMulTransA(got, a, b, acc)
				if i, ok := bitsEqual(want, got); !ok {
					t.Fatalf("%s MatMulTransA %dx%dx%d acc=%v: bit mismatch at %d",
						back.Spec(), sz.m, sz.k, sz.n, acc, i)
				}
			}
		}
	}
}

func TestMatMulTransBVariantsBitIdentical(t *testing.T) {
	r := rng.New(13)
	sizes := []struct{ m, k, n int }{
		{1, 1, 1}, {2, 3, 2}, {4, 13, 5}, {7, 8, 11}, {32, 25, 10},
	}
	for _, sz := range sizes {
		for _, acc := range []bool{false, true} {
			a := tensor.New(sz.m, sz.k)
			b := tensor.New(sz.n, sz.k)
			fill(a, r)
			fill(b, r)
			seed := tensor.New(sz.m, sz.n)
			fill(seed, r)
			want := seed.Clone()
			tensor.MatMulTransBInto(want, a, b, acc)
			for _, back := range variants(t) {
				got := seed.Clone()
				back.MatMulTransB(got, a, b, acc)
				if i, ok := bitsEqual(want, got); !ok {
					t.Fatalf("%s MatMulTransB %dx%dx%d acc=%v: bit mismatch at %d",
						back.Spec(), sz.m, sz.k, sz.n, acc, i)
				}
			}
		}
	}
}

// TestLinearFusedMatchesUnfused pins the fused bias+matmul against the
// historical two-pass sequence (matmul into a zeroed destination, then a
// bias sweep) for every backend including scalar.
func TestLinearFusedMatchesUnfused(t *testing.T) {
	r := rng.New(17)
	sizes := []struct{ m, k, n int }{
		{1, 1, 1}, {2, 5, 3}, {7, 13, 9}, {32, 400, 120}, {5, 84, 10},
	}
	for _, sz := range sizes {
		x := tensor.New(sz.m, sz.k)
		w := tensor.New(sz.n, sz.k)
		fill(x, r)
		fill(w, r)
		bias := make([]float64, sz.n)
		for i := range bias {
			if r.Intn(6) == 0 {
				bias[i] = math.Copysign(0, -1)
			} else {
				bias[i] = r.Gauss(0, 1)
			}
		}
		want := tensor.New(sz.m, sz.n)
		tensor.MatMulTransBInto(want, x, w, false)
		for bi := 0; bi < sz.m; bi++ {
			row := want.Data[bi*sz.n : (bi+1)*sz.n]
			for j := range row {
				row[j] += bias[j]
			}
		}
		backends := append([]Backend{Default()}, variants(t)...)
		for _, back := range backends {
			got := tensor.New(sz.m, sz.n)
			fill(got, r) // dst may hold garbage on entry
			back.Linear(got, x, w, bias)
			if i, ok := bitsEqual(want, got); !ok {
				t.Fatalf("%s Linear %dx%dx%d: bit mismatch at %d: %g vs %g",
					back.Spec(), sz.m, sz.k, sz.n, i, want.Data[i], got.Data[i])
			}
		}
	}
}

// convGeoms covers stride-1 and strided convolutions, 1x1 and wide kernels,
// zero and fat padding, and geometries where padding dominates entire rows.
var convGeoms = []struct {
	inC, inH, inW, outC, kh, kw, stride, pad int
}{
	{1, 5, 5, 2, 3, 3, 1, 1},
	{3, 8, 9, 4, 3, 3, 1, 1},
	{2, 7, 7, 3, 5, 5, 1, 2},
	{1, 6, 6, 2, 1, 1, 1, 0},
	{2, 28, 28, 6, 5, 5, 1, 2},
	{3, 9, 9, 5, 3, 3, 2, 1},
	{2, 8, 8, 4, 3, 3, 2, 0},
	{4, 16, 16, 8, 3, 3, 1, 1},
	{1, 4, 4, 2, 3, 3, 1, 2},
	{2, 5, 3, 3, 3, 3, 2, 1},
}

// referenceConv is the historical conv forward: im2col, MatMulInto, bias
// broadcast.
func referenceConv(g tensor.Conv2DGeom, outC int, dst, x, w *tensor.Tensor, bias []float64) {
	b := x.Shape[0]
	cols := tensor.New(g.ColRows(), g.ColCols())
	sampleIn := g.InC * g.InH * g.InW
	sampleOut := outC * g.ColCols()
	for bi := 0; bi < b; bi++ {
		g.Im2ColInto(cols, x.Data[bi*sampleIn:(bi+1)*sampleIn])
		om := tensor.FromSlice(dst.Data[bi*sampleOut:(bi+1)*sampleOut], outC, g.ColCols())
		tensor.MatMulInto(om, w, cols, false)
	}
	hw := g.OutH * g.OutW
	for bi := 0; bi < b; bi++ {
		for oc := 0; oc < outC; oc++ {
			bv := bias[oc]
			seg := dst.Data[(bi*outC+oc)*hw : (bi*outC+oc+1)*hw]
			for i := range seg {
				seg[i] += bv
			}
		}
	}
}

func TestConv2DVariantsBitIdentical(t *testing.T) {
	r := rng.New(23)
	for _, cg := range convGeoms {
		g := tensor.NewConv2DGeom(cg.inC, cg.inH, cg.inW, cg.kh, cg.kw, cg.stride, cg.pad)
		for _, batch := range []int{1, 3} {
			x := tensor.New(batch, g.InC, g.InH, g.InW)
			w := tensor.New(cg.outC, g.ColRows())
			fill(x, r)
			fill(w, r)
			bias := make([]float64, cg.outC)
			for i := range bias {
				bias[i] = r.Gauss(0, 1)
			}
			want := tensor.New(batch, cg.outC, g.OutH, g.OutW)
			referenceConv(g, cg.outC, want, x, w, bias)
			cols := tensor.New(g.ColRows(), g.ColCols())
			backends := append([]Backend{Default()}, variants(t)...)
			for _, back := range backends {
				got := tensor.New(batch, cg.outC, g.OutH, g.OutW)
				fill(got, r)
				var ws *tensor.Tensor
				if back.UsesIm2Col() {
					ws = cols
				}
				back.Conv2D(g, cg.outC, got, x, w, bias, ws)
				if i, ok := bitsEqual(want, got); !ok {
					t.Fatalf("%s Conv2D %+v batch=%d: bit mismatch at %d: %g vs %g",
						back.Spec(), cg, batch, i, want.Data[i], got.Data[i])
				}
			}
		}
	}
}

// TestParallelConcurrentCallers drives the shared pool from many goroutines
// at once: contended dispatches fall back to the serial path, and every
// caller must still produce bit-identical results.
func TestParallelConcurrentCallers(t *testing.T) {
	back, err := Parse("parallel")
	if err != nil {
		t.Fatal(err)
	}
	g := tensor.NewConv2DGeom(3, 16, 16, 3, 3, 1, 1)
	const outC = 8
	r := rng.New(31)
	x := tensor.New(4, g.InC, g.InH, g.InW)
	w := tensor.New(outC, g.ColRows())
	fill(x, r)
	fill(w, r)
	bias := make([]float64, outC)
	for i := range bias {
		bias[i] = r.Gauss(0, 1)
	}
	want := tensor.New(4, outC, g.OutH, g.OutW)
	referenceConv(g, outC, want, x, w, bias)

	const callers = 8
	outs := make([]*tensor.Tensor, callers)
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		outs[c] = tensor.New(4, outC, g.OutH, g.OutW)
		wg.Add(1)
		go func(dst *tensor.Tensor) {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				back.Conv2D(g, outC, dst, x, w, bias, nil)
			}
		}(outs[c])
	}
	wg.Wait()
	for c, got := range outs {
		if i, ok := bitsEqual(want, got); !ok {
			t.Fatalf("caller %d: bit mismatch at %d", c, i)
		}
	}
}

func TestRegistry(t *testing.T) {
	names := Registered()
	for _, want := range []string{"scalar", "blocked", "parallel"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("Registered() = %v, missing %q", names, want)
		}
	}
	if err := Register("", nil); err == nil {
		t.Fatal("Register with empty name and nil builder should fail")
	}
	if err := Register("scalar", func(Params) (Backend, error) { return Default(), nil }); err == nil {
		t.Fatal("duplicate Register should fail")
	}
	if _, err := Parse("nope"); err == nil || !strings.Contains(err.Error(), "registered") {
		t.Fatalf("Parse unknown backend: got %v, want listing hint", err)
	}
	if _, err := Parse("parallel:bogus=1"); err == nil {
		t.Fatal("unknown parameter should fail")
	}
	if _, err := Parse("parallel:workers=1.5"); err == nil {
		t.Fatal("fractional workers should fail")
	}
	if _, err := Parse("parallel:workers"); err == nil {
		t.Fatal("parameter without value should fail")
	}
}

func TestSpecRoundTrip(t *testing.T) {
	for _, spec := range []string{"scalar", "blocked", "parallel", "parallel:workers=3"} {
		b, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if b.Spec() != spec {
			t.Fatalf("Parse(%q).Spec() = %q", spec, b.Spec())
		}
		b2, err := Parse(b.Spec())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", b.Spec(), err)
		}
		if b2.Spec() != b.Spec() {
			t.Fatalf("Spec round trip: %q -> %q", b.Spec(), b2.Spec())
		}
	}
	// workers=0 canonicalizes to the bare name (machine-independent spec).
	b, err := Parse("parallel:workers=0")
	if err != nil {
		t.Fatal(err)
	}
	if b.Spec() != "parallel" {
		t.Fatalf("parallel:workers=0 should render as %q, got %q", "parallel", b.Spec())
	}
}

func TestFromFlag(t *testing.T) {
	b, listing, err := FromFlag("")
	if err != nil || listing != "" || b == nil || b.Name() != "scalar" {
		t.Fatalf("FromFlag(\"\") = %v, %q, %v; want scalar default", b, listing, err)
	}
	b, listing, err = FromFlag("list")
	if err != nil || b != nil {
		t.Fatalf("FromFlag(list) = %v, %v", b, err)
	}
	for _, want := range []string{"scalar", "blocked", "parallel"} {
		if !strings.Contains(listing, want) {
			t.Fatalf("listing %q missing %q", listing, want)
		}
	}
	if _, _, err = FromFlag("nope"); err == nil {
		t.Fatal("FromFlag(nope) should fail")
	}
	b, _, err = FromFlag(fmt.Sprintf("parallel:workers=%d", runtime.NumCPU()))
	if err != nil || b.Name() != "parallel" {
		t.Fatalf("FromFlag(parallel:workers=N) = %v, %v", b, err)
	}
}
