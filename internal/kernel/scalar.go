package kernel

import (
	"swim/internal/tensor"
)

// scalar is the reference backend: the single-threaded loops this repository
// has always run, extracted verbatim from package tensor and the Linear /
// Conv2D forward passes. Every other backend is pinned bit-for-bit against
// it, and it is the default wherever no backend is selected.
type scalar struct{}

// scalarBackend is the shared stateless instance behind Default().
var scalarBackend = scalar{}

// Name implements Backend.
func (scalar) Name() string { return "scalar" }

// Spec implements Backend.
func (scalar) Spec() string { return "scalar" }

// UsesIm2Col implements Backend: the scalar convolution is the historical
// im2col + matmul lowering.
func (scalar) UsesIm2Col() bool { return true }

// MatMul implements Backend by delegating to the tensor kernel.
func (scalar) MatMul(c, a, b *tensor.Tensor, accumulate bool) {
	tensor.MatMulInto(c, a, b, accumulate)
}

// MatMulTransA implements Backend by delegating to the tensor kernel.
func (scalar) MatMulTransA(c, a, b *tensor.Tensor, accumulate bool) {
	tensor.MatMulTransAInto(c, a, b, accumulate)
}

// MatMulTransB implements Backend by delegating to the tensor kernel.
func (scalar) MatMulTransB(c, a, b *tensor.Tensor, accumulate bool) {
	tensor.MatMulTransBInto(c, a, b, accumulate)
}

// Linear implements Backend. The loop is MatMulTransBInto's dot-product
// kernel with the bias folded into the final store: each element's k-sum s
// accumulates exactly as before, and s + bias[j] is bitwise the historical
// (0 + s) + bias[j] of the separate matmul and bias passes, because s can
// never be -0 (a sum starting from +0 only turns negative through a nonzero
// term).
func (scalar) Linear(dst, x, w *tensor.Tensor, bias []float64) {
	linearCheck(dst, x, w, bias)
	m, k := x.Shape[0], x.Shape[1]
	n := w.Shape[0]
	ad, bd, cd := x.Data, w.Data, dst.Data
	for i := 0; i < m; i++ {
		arow := ad[i*k : (i+1)*k]
		crow := cd[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := bd[j*k : (j+1)*k]
			s := 0.0
			for p, av := range arow {
				s += av * brow[p]
			}
			crow[j] = s + bias[j]
		}
	}
}

// Im2Col implements Backend by delegating to the tensor lowering.
func (scalar) Im2Col(g tensor.Conv2DGeom, cols *tensor.Tensor, x []float64) {
	g.Im2ColInto(cols, x)
}

// Conv2D implements Backend: per-sample im2col followed by the MatMulInto
// i-k-j loop over the lowered matrix, then the bias broadcast over spatial
// positions — the historical Conv2D.ForwardInto sequence, element for
// element. The matmul runs inline on raw slices so no tensor headers are
// allocated per call.
func (scalar) Conv2D(g tensor.Conv2DGeom, outC int, dst, x, w *tensor.Tensor, bias []float64, cols *tensor.Tensor) {
	conv2DCheck(g, outC, dst, x, w, bias)
	b := x.Shape[0]
	kr, nc := g.ColRows(), g.ColCols()
	sampleIn := g.InC * g.InH * g.InW
	sampleOut := outC * nc
	wd := w.Data
	for bi := 0; bi < b; bi++ {
		g.Im2ColInto(cols, x.Data[bi*sampleIn:(bi+1)*sampleIn])
		out := dst.Data[bi*sampleOut : (bi+1)*sampleOut]
		for i := range out {
			out[i] = 0
		}
		cd := cols.Data
		for i := 0; i < outC; i++ {
			arow := wd[i*kr : (i+1)*kr]
			crow := out[i*nc : (i+1)*nc]
			for p := 0; p < kr; p++ {
				av := arow[p]
				if av == 0 {
					continue
				}
				brow := cd[p*nc : (p+1)*nc]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	}
	// Broadcast bias across spatial positions.
	hw := g.OutH * g.OutW
	for bi := 0; bi < b; bi++ {
		for oc := 0; oc < outC; oc++ {
			bv := bias[oc]
			seg := dst.Data[(bi*outC+oc)*hw : (bi*outC+oc+1)*hw]
			for i := range seg {
				seg[i] += bv
			}
		}
	}
}

// linearCheck validates the fused fully connected shapes: dst [B, out],
// x [B, in], w [out, in], bias [out].
func linearCheck(dst, x, w *tensor.Tensor, bias []float64) {
	if len(x.Shape) != 2 || len(w.Shape) != 2 || len(dst.Shape) != 2 {
		panic("kernel: Linear requires rank-2 operands")
	}
	m, k := x.Shape[0], x.Shape[1]
	n, k2 := w.Shape[0], w.Shape[1]
	if k != k2 || dst.Shape[0] != m || dst.Shape[1] != n || len(bias) != n {
		panic("kernel: Linear shape mismatch")
	}
}

// conv2DCheck validates the batched convolution shapes against the geometry.
func conv2DCheck(g tensor.Conv2DGeom, outC int, dst, x, w *tensor.Tensor, bias []float64) {
	if len(x.Shape) != 4 || x.Shape[1] != g.InC || x.Shape[2] != g.InH || x.Shape[3] != g.InW {
		panic("kernel: Conv2D input shape mismatch")
	}
	if len(dst.Shape) != 4 || dst.Shape[0] != x.Shape[0] || dst.Shape[1] != outC ||
		dst.Shape[2] != g.OutH || dst.Shape[3] != g.OutW {
		panic("kernel: Conv2D output shape mismatch")
	}
	if len(w.Shape) != 2 || w.Shape[0] != outC || w.Shape[1] != g.ColRows() || len(bias) != outC {
		panic("kernel: Conv2D weight shape mismatch")
	}
}
