package kernel

import (
	"fmt"
	"testing"

	"swim/internal/rng"
	"swim/internal/tensor"
)

// convShapes are the four ResNet stage geometries (equal flops per shape at
// width 4 — channels double as the map halves) plus the LeNet stem, so the
// per-shape numbers show where a backend's convolution wins or loses.
var convShapes = []struct {
	inC, outC, h, w, kh, kw, stride, pad int
}{
	{3, 4, 32, 32, 3, 3, 1, 1}, // resnet stem
	{4, 4, 32, 32, 3, 3, 1, 1}, // stage 1
	{8, 8, 16, 16, 3, 3, 1, 1}, // stage 2
	{16, 16, 8, 8, 3, 3, 1, 1}, // stage 3
	{32, 32, 4, 4, 3, 3, 1, 1}, // stage 4
	{1, 6, 28, 28, 5, 5, 1, 2}, // lenet stem
	{4, 8, 32, 32, 3, 3, 2, 1}, // strided downsample
}

// BenchmarkConv2DBackends measures one batched Conv2D call per backend and
// shape (batch 8), isolating the convolution kernels from the rest of the
// plan. SetBytes carries the flop-proportional volume so ns/op comparisons
// across shapes stay meaningful.
func BenchmarkConv2DBackends(b *testing.B) {
	for _, back := range []Backend{Default(), blocked{}} {
		for _, s := range convShapes {
			g := tensor.NewConv2DGeom(s.inC, s.h, s.w, s.kh, s.kw, s.stride, s.pad)
			const batch = 8
			r := rng.New(11)
			x := tensor.New(batch, s.inC, s.h, s.w)
			w := tensor.New(s.outC, g.ColRows())
			fill(x, r)
			// Hidden feature maps arrive post-ReLU/post-quantization with
			// roughly half their entries exactly zero; rectify the input so
			// the sparse backends are measured in the regime they target.
			for i, v := range x.Data {
				if v < 0 {
					x.Data[i] = 0
				}
			}
			fill(w, r)
			bias := make([]float64, s.outC)
			for i := range bias {
				bias[i] = r.Gauss(0, 1)
			}
			dst := tensor.New(batch, s.outC, g.OutH, g.OutW)
			var cols *tensor.Tensor
			if back.UsesIm2Col() {
				cols = tensor.New(g.ColRows(), g.ColCols())
			}
			name := fmt.Sprintf("%s/c%d-%d_%dx%d_s%d", back.Name(), s.inC, s.outC, s.h, s.w, s.stride)
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					back.Conv2D(g, s.outC, dst, x, w, bias, cols)
				}
				b.SetBytes(int64(8 * batch * s.outC * g.ColRows() * g.OutH * g.OutW))
			})
		}
	}
}

// BenchmarkMatMulBackends measures the plain matmul orientation at the
// register-tiling sweet spot and at a skinny shape.
func BenchmarkMatMulBackends(b *testing.B) {
	sizes := []struct{ m, k, n int }{{64, 128, 128}, {64, 512, 10}}
	for _, back := range []Backend{Default(), blocked{}} {
		for _, sz := range sizes {
			r := rng.New(13)
			a := tensor.New(sz.m, sz.k)
			bb := tensor.New(sz.k, sz.n)
			c := tensor.New(sz.m, sz.n)
			fill(a, r)
			fill(bb, r)
			b.Run(fmt.Sprintf("%s/%dx%dx%d", back.Name(), sz.m, sz.k, sz.n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					back.MatMul(c, a, bb, false)
				}
				b.SetBytes(int64(8 * sz.m * sz.k * sz.n))
			})
		}
	}
}
