// Package kernel implements the pluggable dense-compute backends behind the
// compiled evaluation tier. PR 3's plans drove Monte-Carlo evaluation to zero
// steady-state allocations, which leaves the forward pass pure compute: every
// serving-side trial is dominated by the matmul and im2col-convolution loops
// in package tensor. This package separates that operator contract from the
// loops that execute it, the same operator/backend split the photonic and
// CIM simulators in the related work use, so the hot loops can be swapped
// without touching any layer arithmetic.
//
// A Backend implements the dense primitives the plan tier needs: the three
// matmul orientations (plain, Aᵀ, Bᵀ) with accumulate variants, a fused
// bias+matmul for fully connected layers, im2col lowering, and a batched
// (optionally im2col-free) convolution. Three backends ship:
//
//   - "scalar": today's single-threaded loops, extracted verbatim from
//     package tensor and internal/nn. This is the default everywhere and the
//     reference the other backends are pinned against.
//   - "blocked": register-tiled matmul loops and a sparse direct
//     convolution that skips the exact zeros ReLU and quantization leave in
//     hidden feature maps. Same accumulation order per output element, so
//     results are bit-identical to scalar.
//   - "parallel": batch-row parallelism over a bounded shared worker pool,
//     with the blocked loop bodies inside each unit of work. Batch rows are
//     written to disjoint destination regions, so results are bit-identical
//     to scalar at any worker count.
//
// # Determinism contract
//
// Every backend must produce bit-for-bit the results of the scalar backend
// for finite inputs. The scalar loops fix the observable floating-point
// behavior: each output element accumulates its k-terms in ascending k
// order, terms whose left-hand (weight) operand is exactly zero are skipped,
// and fused bias is added after the full k-sum. Backends may re-tile loops,
// hold accumulators in registers, partition independent output regions
// across goroutines, or skip any term whose product is exactly ±0 — padding,
// zero weights, zero activations — because a non-accumulating element's sum
// is seeded at +0 and under round-to-nearest can never become -0, making a
// ±0 term a bitwise no-op (this does not hold for accumulate variants, whose
// seed may be -0). None of that changes any per-element operation sequence;
// backends must not split an element's accumulation into partial sums or
// reorder its terms. The
// cross-backend tests in this package and in package eval pin the contract
// for every model in internal/models, digital and analog.
//
// Because backends are bit-identical, the choice of backend is an execution
// hint, not a computation axis: swim-serve records it in the request record
// but excludes it from cache keys (see internal/serialize).
//
// A future GOAMD64/assembly backend slots in behind the same interface via
// Register, exactly like the nonideality and cost-model registries.
package kernel

import (
	"swim/internal/tensor"
)

// Backend executes the dense primitives behind the compiled evaluation tier.
// Implementations must satisfy the package-level determinism contract:
// bit-identical results to the scalar backend for finite inputs. Backends
// must be safe for concurrent use by independent callers (the Monte-Carlo
// pipeline shares one backend across its workers); the tensors passed to any
// single call are only touched by that call.
type Backend interface {
	// Name returns the registered backend name (e.g. "scalar").
	Name() string
	// Spec renders the backend back to its canonical parse spec — Name
	// plus any non-default parameters — so Parse(b.Spec()) reproduces it.
	Spec() string
	// MatMul computes C = A·B (or C += A·B when accumulate is true) with
	// A m×k, B k×n, C m×n.
	MatMul(c, a, b *tensor.Tensor, accumulate bool)
	// MatMulTransA computes C = Aᵀ·B (or += when accumulate) with A k×m,
	// B k×n, C m×n.
	MatMulTransA(c, a, b *tensor.Tensor, accumulate bool)
	// MatMulTransB computes C = A·Bᵀ (or += when accumulate) with A m×k,
	// B n×k, C m×n.
	MatMulTransB(c, a, b *tensor.Tensor, accumulate bool)
	// Linear computes the fused fully connected forward dst = x·wᵀ + bias
	// for x [B, in], w [out, in], bias [out] — the bias is added after each
	// element's full k-sum, matching the unfused matmul-then-bias passes
	// bit for bit.
	Linear(dst, x, w *tensor.Tensor, bias []float64)
	// Im2Col lowers one image x (inC×inH×inW, flat) into cols
	// (ColRows × ColCols) for the geometry g, padding with zeros.
	Im2Col(g tensor.Conv2DGeom, cols *tensor.Tensor, x []float64)
	// Conv2D computes the batched convolution forward dst = conv(x, w) +
	// bias for x [B, inC, inH, inW], w [outC, inC*kh*kw], bias [outC].
	// cols is the caller-provided im2col workspace (ColRows × ColCols);
	// backends that are im2col-free (UsesIm2Col() == false) receive nil.
	Conv2D(g tensor.Conv2DGeom, outC int, dst, x, w *tensor.Tensor, bias []float64, cols *tensor.Tensor)
	// UsesIm2Col reports whether Conv2D consumes the cols workspace, so
	// callers with im2col-free backends can skip carving it from scratch
	// arenas entirely.
	UsesIm2Col() bool
}

// Default returns the default backend, scalar — the reference loops every
// other backend is pinned against. It is the backend used anywhere no
// explicit selection is threaded through.
func Default() Backend { return scalarBackend }
