package kernel

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Params carries the numeric parameters of one backend spec (e.g.
// {"workers": 4} for "parallel:workers=4"). Builders reject unknown keys so
// a mistyped parameter reads as a usage error, not a silent default.
type Params map[string]float64

// Builder constructs a configured Backend from parameters. Missing keys take
// the backend's defaults; unknown keys are an error.
type Builder func(p Params) (Backend, error)

var (
	regMu    sync.RWMutex
	registry = map[string]Builder{}
)

// Register adds a backend builder under name. Registering a name twice is an
// error, mirroring the nonideality and cost-model registries: silently
// replacing a backend would make kernel specs depend on package-
// initialization order.
func Register(name string, b Builder) error {
	if b == nil {
		return fmt.Errorf("kernel: register nil builder")
	}
	if name == "" {
		return fmt.Errorf("kernel: register builder with empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("kernel: backend %q already registered", name)
	}
	registry[name] = b
	return nil
}

// MustRegister is Register for package-init use; it panics on error.
func MustRegister(name string, b Builder) {
	if err := Register(name, b); err != nil {
		panic(err)
	}
}

// Lookup resolves a backend builder by name. Unknown names return an error
// listing what is registered, so a mistyped -kernel flag reads as a usage
// hint.
func Lookup(name string) (Builder, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("kernel: unknown backend %q (registered: %v)", name, registeredLocked())
	}
	return b, nil
}

// Registered returns the registered backend names, sorted.
func Registered() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return registeredLocked()
}

func registeredLocked() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Parse builds one backend from a spec string: a registered name optionally
// followed by colon-separated parameters, e.g. "blocked" or
// "parallel:workers=4". Every built-in's Spec() round-trips through Parse.
func Parse(spec string) (Backend, error) {
	name, rest, _ := strings.Cut(strings.TrimSpace(spec), ":")
	b, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	p := Params{}
	if rest != "" {
		for _, kv := range strings.Split(rest, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("kernel: bad parameter %q in spec %q (want key=value)", kv, spec)
			}
			f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			if err != nil {
				return nil, fmt.Errorf("kernel: bad value for %q in spec %q: %v", k, spec, err)
			}
			p[strings.TrimSpace(k)] = f
		}
	}
	k, err := b(p)
	if err != nil {
		return nil, fmt.Errorf("kernel: spec %q: %w", spec, err)
	}
	return k, nil
}

// FromFlag resolves the CLIs' shared -kernel flag convention: the literal
// "list" requests the registered-backend listing (returned in listing, with
// no backend); the empty string selects the scalar default; anything else
// parses as a backend spec. Keeping the convention here means every binary
// stays in sync when the grammar grows.
func FromFlag(spec string) (k Backend, listing string, err error) {
	switch strings.TrimSpace(spec) {
	case "list":
		return nil, strings.Join(Registered(), "\n"), nil
	case "":
		return Default(), "", nil
	}
	k, err = Parse(spec)
	return k, "", err
}

// pick reads one parameter with a default, recording consumption so the
// builder can reject leftovers.
func pick(p Params, used map[string]bool, key string, def float64) float64 {
	used[key] = true
	if v, ok := p[key]; ok {
		return v
	}
	return def
}

// leftover returns an error naming any parameter the builder did not
// consume.
func leftover(name string, p Params, used map[string]bool) error {
	for k := range p {
		if !used[k] {
			return fmt.Errorf("unknown parameter %q for backend %q", k, name)
		}
	}
	return nil
}

func init() {
	MustRegister("scalar", func(p Params) (Backend, error) {
		if err := leftover("scalar", p, map[string]bool{}); err != nil {
			return nil, err
		}
		return scalarBackend, nil
	})
	MustRegister("blocked", func(p Params) (Backend, error) {
		if err := leftover("blocked", p, map[string]bool{}); err != nil {
			return nil, err
		}
		return blocked{}, nil
	})
	MustRegister("parallel", func(p Params) (Backend, error) {
		used := map[string]bool{}
		w := pick(p, used, "workers", 0)
		if err := leftover("parallel", p, used); err != nil {
			return nil, err
		}
		if w < 0 || w != float64(int(w)) || w > 1<<16 {
			return nil, fmt.Errorf("parallel needs integer workers in [0, 65536], 0 = all CPUs (got %g)", w)
		}
		return &parallel{workers: int(w)}, nil
	})
}
