package kernel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"swim/internal/tensor"
)

// parallel executes independent output regions — batch samples of a
// convolution, destination rows of a matmul — across a bounded worker pool,
// running the blocked loop bodies inside each unit of work. Every unit
// writes a disjoint destination region and each element's accumulation stays
// inside one unit, so results are bit-identical to scalar at any worker
// count and under any scheduling.
//
// All parallel instances share one process-wide pool of NumCPU-1 persistent
// goroutines (the calling goroutine is the remaining lane). Dispatch is a
// struct assignment, a channel token per woken worker and an atomic work
// cursor — no per-call closures or allocations, preserving the plan tier's
// zero-allocation steady state. When the pool is busy (another evaluator
// mid-dispatch) or the job is too small to pay the wake-up cost, the call
// runs serially inline with identical results.
type parallel struct {
	// workers caps the lanes used per call, including the caller; 0 means
	// all CPUs.
	workers int
}

var _ Backend = (*parallel)(nil)

// Name implements Backend.
func (*parallel) Name() string { return "parallel" }

// Spec implements Backend.
func (p *parallel) Spec() string {
	if p.workers <= 0 {
		return "parallel"
	}
	return fmt.Sprintf("parallel:workers=%d", p.workers)
}

// UsesIm2Col implements Backend: the per-sample bodies are the direct
// convolution, so no lowered matrix is ever materialized.
func (*parallel) UsesIm2Col() bool { return false }

// lanes resolves the per-call lane cap (0 = all CPUs). The resolution stays
// out of Spec so a spec written on one machine means "all CPUs" on another.
func (p *parallel) lanes() int {
	if p.workers > 0 {
		return p.workers
	}
	return runtime.NumCPU()
}

// minParallelFlops is the smallest job (in multiply-adds) worth waking the
// pool for; anything smaller runs inline on the caller.
const minParallelFlops = 1 << 15

// MatMul implements Backend.
func (p *parallel) MatMul(c, a, b *tensor.Tensor, accumulate bool) {
	m, k, n := matMulDims(c, a, b)
	j := pjob{kind: jobMatMul, units: m, cd: c.Data, ad: a.Data, bd: b.Data, m: m, k: k, n: n, acc: accumulate}
	if m*k*n < minParallelFlops || !sharedPool.run(p.lanes(), j) {
		runSerial(&j)
	}
}

// MatMulTransA implements Backend.
func (p *parallel) MatMulTransA(c, a, b *tensor.Tensor, accumulate bool) {
	m, k, n := matMulTransADims(c, a, b)
	j := pjob{kind: jobTransA, units: m, cd: c.Data, ad: a.Data, bd: b.Data, m: m, k: k, n: n, acc: accumulate}
	if m*k*n < minParallelFlops || !sharedPool.run(p.lanes(), j) {
		runSerial(&j)
	}
}

// MatMulTransB implements Backend.
func (p *parallel) MatMulTransB(c, a, b *tensor.Tensor, accumulate bool) {
	m, k, n := matMulTransBDims(c, a, b)
	j := pjob{kind: jobTransB, units: m, cd: c.Data, ad: a.Data, bd: b.Data, m: m, k: k, n: n, acc: accumulate}
	if m*k*n < minParallelFlops || !sharedPool.run(p.lanes(), j) {
		runSerial(&j)
	}
}

// Linear implements Backend.
func (p *parallel) Linear(dst, x, w *tensor.Tensor, bias []float64) {
	linearCheck(dst, x, w, bias)
	m, k := x.Shape[0], x.Shape[1]
	n := w.Shape[0]
	j := pjob{kind: jobLinear, units: m, cd: dst.Data, ad: x.Data, bd: w.Data, bias: bias, m: m, k: k, n: n}
	if m*k*n < minParallelFlops || !sharedPool.run(p.lanes(), j) {
		runSerial(&j)
	}
}

// Im2Col implements Backend by delegating to the tensor lowering.
func (*parallel) Im2Col(g tensor.Conv2DGeom, cols *tensor.Tensor, x []float64) {
	g.Im2ColInto(cols, x)
}

// Conv2D implements Backend: one unit of work per batch sample, each running
// the direct convolution.
func (p *parallel) Conv2D(g tensor.Conv2DGeom, outC int, dst, x, w *tensor.Tensor, bias []float64, _ *tensor.Tensor) {
	conv2DCheck(g, outC, dst, x, w, bias)
	b := x.Shape[0]
	j := pjob{kind: jobConv, units: b, cd: dst.Data, ad: x.Data, bd: w.Data, bias: bias, g: g, outC: outC}
	if b*outC*g.ColRows()*g.ColCols() < minParallelFlops || !sharedPool.run(p.lanes(), j) {
		runSerial(&j)
	}
}

// jobKind selects the loop body a pool unit runs.
type jobKind uint8

const (
	jobMatMul jobKind = iota
	jobTransA
	jobTransB
	jobLinear
	jobConv
)

// pjob describes one dispatched kernel call: plain data fields only, so
// handing it to the pool is a struct copy, never a closure allocation.
type pjob struct {
	kind    jobKind
	units   int
	cd      []float64 // destination
	ad      []float64 // left operand (input image for jobConv)
	bd      []float64 // right operand (weights for jobLinear/jobConv)
	bias    []float64
	m, k, n int
	acc     bool
	g       tensor.Conv2DGeom
	outC    int
}

// runUnit executes unit u of job j: one destination row for the matmul
// kinds, one batch sample for the convolution.
func runUnit(j *pjob, u int) {
	switch j.kind {
	case jobMatMul:
		matMulRowBlocked(j.cd[u*j.n:(u+1)*j.n], j.ad[u*j.k:(u+1)*j.k], j.bd, j.k, j.n, j.acc)
	case jobTransA:
		matMulTransARowBlocked(j.cd[u*j.n:(u+1)*j.n], j.ad, u, j.m, j.bd, j.k, j.n, j.acc)
	case jobTransB:
		matMulTransBRowBlocked(j.cd[u*j.n:(u+1)*j.n], j.ad[u*j.k:(u+1)*j.k], j.bd, j.k, j.n, j.acc)
	case jobLinear:
		linearRowBlocked(j.cd[u*j.n:(u+1)*j.n], j.ad[u*j.k:(u+1)*j.k], j.bd, j.bias, j.k, j.n)
	case jobConv:
		si := j.g.InC * j.g.InH * j.g.InW
		so := j.outC * j.g.OutH * j.g.OutW
		convSampleBlocked(j.g, j.outC, j.cd[u*so:(u+1)*so], j.ad[u*si:(u+1)*si], j.bd, j.bias)
	}
}

// runSerial executes every unit of j on the calling goroutine.
func runSerial(j *pjob) {
	for u := 0; u < j.units; u++ {
		runUnit(j, u)
	}
}

// sharedPool is the process-wide worker pool behind every parallel backend
// instance. Sharing one pool bounds the goroutine count no matter how many
// pipelines parse "parallel" specs (a long-running swim-serve daemon parses
// one per job), and the TryLock dispatch degrades concurrent users to the
// serial path instead of oversubscribing cores.
var sharedPool pool

// pool runs pjobs across persistent worker goroutines, started on first use.
type pool struct {
	mu    sync.Mutex // held for the duration of one dispatched job
	start sync.Once
	wake  chan struct{}
	lanes int // worker goroutines, excluding the caller's lane
	job   pjob
	next  atomic.Int64
	wg    sync.WaitGroup
}

func (pl *pool) init() {
	pl.lanes = runtime.NumCPU() - 1
	if pl.lanes < 0 {
		pl.lanes = 0
	}
	pl.wake = make(chan struct{}, pl.lanes)
	for i := 0; i < pl.lanes; i++ {
		go pl.serve()
	}
}

// serve is one worker goroutine: wait for a wake token, drain the work
// cursor, signal completion, repeat. The channel receive orders the job
// fields written by run before any read here; wg.Done orders every
// destination write before run's return.
func (pl *pool) serve() {
	for range pl.wake {
		pl.work()
		pl.wg.Done()
	}
}

// work claims units off the shared cursor until the job is drained.
func (pl *pool) work() {
	for {
		u := int(pl.next.Add(1)) - 1
		if u >= pl.job.units {
			return
		}
		runUnit(&pl.job, u)
	}
}

// run executes j's units across up to lanes goroutines (the caller included)
// and returns once all units are done. It returns false without touching j's
// destination when the pool is busy or parallelism cannot help; the caller
// then runs serially — results are identical either way.
func (pl *pool) run(lanes int, j pjob) bool {
	if lanes < 2 || j.units < 2 {
		return false
	}
	if !pl.mu.TryLock() {
		return false
	}
	pl.start.Do(pl.init)
	if pl.lanes == 0 {
		pl.mu.Unlock()
		return false
	}
	pl.job = j
	pl.next.Store(0)
	n := lanes - 1
	if n > pl.lanes {
		n = pl.lanes
	}
	if n > j.units-1 {
		n = j.units - 1
	}
	pl.wg.Add(n)
	for i := 0; i < n; i++ {
		pl.wake <- struct{}{}
	}
	pl.work()
	pl.wg.Wait()
	pl.mu.Unlock()
	return true
}
