package device

import (
	"math"
	"testing"
	"testing/quick"

	"swim/internal/rng"
)

func TestValidate(t *testing.T) {
	if err := Default(4, 0.1).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Default(4, 0.1)
	bad.Tolerance = 0
	if bad.Validate() == nil {
		t.Fatal("accepted zero tolerance")
	}
	bad = Default(0, 0.1)
	if bad.Validate() == nil {
		t.Fatal("accepted zero weight bits")
	}
	bad = Default(4, -1)
	if bad.Validate() == nil {
		t.Fatal("accepted negative sigma")
	}
}

func TestNumDevices(t *testing.T) {
	cases := []struct{ m, k, want int }{
		{4, 4, 1}, {6, 4, 2}, {8, 4, 2}, {8, 2, 4}, {5, 4, 2}, {1, 4, 1},
	}
	for _, c := range cases {
		mod := Default(c.m, 0.1)
		mod.DeviceBits = c.k
		if got := mod.NumDevices(); got != c.want {
			t.Fatalf("M=%d K=%d devices=%d, want %d", c.m, c.k, got, c.want)
		}
	}
}

func TestSliceMagnitudeReconstructs(t *testing.T) {
	// Property: Σ slice_i · 2^(iK) == mag for any representable magnitude.
	if err := quick.Check(func(raw uint8, kSel uint8) bool {
		m := Default(8, 0.1)
		m.DeviceBits = []int{1, 2, 4, 8}[int(kSel)%4]
		mag := int(raw)
		slices := m.SliceMagnitude(mag)
		sum := 0
		for i, s := range slices {
			if s < 0 || s >= int(1)<<m.DeviceBits {
				return false
			}
			sum += s << (i * m.DeviceBits)
		}
		return sum == mag
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNoiseStdMatchesEq16(t *testing.T) {
	m := Default(4, 0.1) // single device
	if math.Abs(m.NoiseStd()-0.1) > 1e-12 {
		t.Fatalf("M=4 noise std = %v, want 0.1", m.NoiseStd())
	}
	m6 := Default(8, 0.1) // two devices: sqrt(1 + 256)·σ
	want := 0.1 * math.Sqrt(257)
	if math.Abs(m6.NoiseStd()-want) > 1e-12 {
		t.Fatalf("M=8 noise std = %v, want %v", m6.NoiseStd(), want)
	}
}

func TestProgramNoVerifyMatchesNoiseStd(t *testing.T) {
	m := Default(6, 0.15)
	r := rng.New(1)
	var sumSq float64
	const n = 100000
	for i := 0; i < n; i++ {
		e := m.ProgramNoVerify(r)
		sumSq += e * e
	}
	got := math.Sqrt(sumSq / n)
	if math.Abs(got-m.NoiseStd()) > 0.05*m.NoiseStd() {
		t.Fatalf("empirical unverified std %v vs analytic %v", got, m.NoiseStd())
	}
}

func TestWriteVerifyResidualWithinTolerancePerDevice(t *testing.T) {
	m := Default(4, 0.2)
	r := rng.New(2)
	for i := 0; i < 5000; i++ {
		res, cycles := m.WriteVerify(r.Intn(16), r)
		if math.Abs(res) > m.Tolerance+1e-12 {
			t.Fatalf("residual %v exceeds tolerance (single device)", res)
		}
		if cycles < 0 || cycles > m.MaxPulses {
			t.Fatalf("cycle count %d out of range", cycles)
		}
	}
}

func TestWriteVerifyZeroTargetIsFree(t *testing.T) {
	m := Default(4, 0.1)
	r := rng.New(3)
	res, cycles := m.WriteVerify(0, r)
	if res != 0 || cycles != 0 {
		t.Fatalf("zero magnitude cost %d cycles with residual %v", cycles, res)
	}
}

func TestWriteVerifyCyclesGrowWithTarget(t *testing.T) {
	m := Default(4, 0.1)
	meanCycles := func(mag int) float64 {
		r := rng.New(uint64(40 + mag))
		total := 0
		for i := 0; i < 2000; i++ {
			_, c := m.WriteVerify(mag, r)
			total += c
		}
		return float64(total) / 2000
	}
	low, high := meanCycles(2), meanCycles(15)
	if high <= low {
		t.Fatalf("coarse ramp should make large targets cost more: low=%v high=%v", low, high)
	}
}

// The two anchor statistics the paper takes from Shim et al.: roughly ten
// write cycles per weight on average, and a post-write-verify residual spread
// of about σ = 0.03.
func TestCalibrationMatchesPaperAnchors(t *testing.T) {
	m := Default(4, 0.1)
	s := m.Calibrate(50000, rng.New(4))
	if s.MeanCycles < 8 || s.MeanCycles > 14 {
		t.Fatalf("uniform-target mean cycles = %.2f, want ~10 (8..14)", s.MeanCycles)
	}
	if s.ResidualStd < 0.025 || s.ResidualStd > 0.04 {
		t.Fatalf("residual std = %.4f, want ~0.03 (0.025..0.04)", s.ResidualStd)
	}
	g := m.CalibrateGaussian(50000, rng.New(5))
	if g.MeanCycles < 5 || g.MeanCycles > 12 {
		t.Fatalf("gaussian-weight mean cycles = %.2f, want 5..12", g.MeanCycles)
	}
}

func TestResidualStdStableAcrossSigma(t *testing.T) {
	// Write-verify pins the residual near the tolerance regardless of the
	// raw device σ — that is its entire point, and why the paper's Table 1
	// converges to the same accuracy at NWC = 1.0 for every σ.
	var stds []float64
	for i, sigma := range []float64{0.1, 0.15, 0.2} {
		s := Default(4, sigma).Calibrate(30000, rng.New(uint64(10+i)))
		stds = append(stds, s.ResidualStd)
	}
	for _, v := range stds {
		if math.Abs(v-stds[0]) > 0.005 {
			t.Fatalf("residual stds vary with sigma: %v", stds)
		}
	}
}

func TestVerifiedBeatsUnverified(t *testing.T) {
	m := Default(4, 0.1)
	s := m.Calibrate(20000, rng.New(6))
	if s.ResidualStd >= m.NoiseStd() {
		t.Fatalf("write-verify residual %v not better than raw noise %v", s.ResidualStd, m.NoiseStd())
	}
}

func TestMultiDeviceResidualScales(t *testing.T) {
	// With M=8, K=4 the high device's residual is amplified by 16 in LSB
	// units; overall residual should be ~16x the single-device case.
	s4 := Default(4, 0.1).Calibrate(20000, rng.New(7))
	s8 := Default(8, 0.1).Calibrate(20000, rng.New(8))
	ratio := s8.ResidualStd / s4.ResidualStd
	if ratio < 10 || ratio > 22 {
		t.Fatalf("multi-device residual ratio = %.2f, want ~16", ratio)
	}
}

func TestCycleTableMonotoneInMagnitude(t *testing.T) {
	m := Default(4, 0.1)
	table := m.CycleTable(2000, rng.New(20))
	if len(table) != 16 {
		t.Fatalf("table length %d, want 16", len(table))
	}
	if table[0] != 0 {
		t.Fatalf("zero magnitude should cost 0 cycles, got %v", table[0])
	}
	// The coarse ramp makes expected cycles grow with the target level.
	if table[15] <= table[1] {
		t.Fatalf("cycle cost should grow with magnitude: t[1]=%v t[15]=%v", table[1], table[15])
	}
	for mag, c := range table {
		if c < 0 || c > float64(m.MaxPulses) {
			t.Fatalf("table[%d] = %v out of range", mag, c)
		}
	}
}

func TestIncrementStatistics(t *testing.T) {
	m := Default(4, 0.1)
	r := rng.New(21)
	const delta = 0.5
	var sum, sumSq float64
	const n = 50000
	for i := 0; i < n; i++ {
		v := m.Increment(delta, r)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-delta) > 0.01 {
		t.Fatalf("increment mean = %v, want ~%v (unbiased pulses)", mean, delta)
	}
	// Variance combines relative jitter (delta·IncJitter) and the additive
	// floor (IncNoise).
	want := math.Sqrt(delta*delta*m.IncJitter*m.IncJitter + m.IncNoise*m.IncNoise)
	if math.Abs(std-want) > 0.01 {
		t.Fatalf("increment std = %v, want ~%v", std, want)
	}
}
