// Package device models the non-volatile memory devices an nvCiM crossbar is
// built from, following §4.1 of the SWIM paper.
//
// An M-bit weight magnitude W_des = Σ m_i·2^i (Eq. 14) is split across
// ⌈M/K⌉ devices of K bits each; device i stores the bit group starting at
// bit i·K, and its programmed conductance is a Gaussian around the desired
// value with a value-independent standard deviation σ (Eq. 15, following
// Feinberg et al.). The weight-level programming error without verification
// is therefore
//
//	W_map − W_des ~ N(0, σ²·Σ_i 4^{i·K})     (Eq. 16)
//
// in integer units of the weight's LSB.
//
// Write-verify follows the two-step scheme of Shim et al. (the paper's
// ref. [8], from which it takes its two anchor statistics): a device is first
// ramped from its reset state toward the target with coarse incremental
// pulses, then re-programmed with fine pulses, reading back after each, until
// the conductance is within the acceptance tolerance (0.06 device levels).
// With the default parameters this reproduces the paper's anchors — roughly
// ten write cycles per weight on average and a post-verify residual spread of
// σ ≈ 0.03 — see cmd/swim-calibrate and calibrate tests.
package device

import (
	"fmt"
	"math"

	"swim/internal/rng"
)

// Model describes one device technology + programming policy.
type Model struct {
	// WeightBits is M, bits per weight magnitude.
	WeightBits int
	// DeviceBits is K, bits stored per device (paper uses K = 4).
	DeviceBits int
	// Sigma is the programming noise std per device in device-level units,
	// value-independent per Feinberg et al. It governs both the
	// unverified parallel write (Eq. 15) and each fine write-verify pulse.
	Sigma float64
	// Tolerance is the write-verify acceptance margin in device-level units
	// (paper: 0.06).
	Tolerance float64
	// CoarseStep is the mean conductance increment of one coarse ramp pulse,
	// in device levels.
	CoarseStep float64
	// CoarseJitter is the relative (multiplicative) noise of a coarse pulse.
	CoarseJitter float64
	// MaxPulses caps the total pulses per device (safety bound; the
	// defaults converge far earlier with overwhelming probability).
	MaxPulses int
	// IncJitter and IncNoise model a small *incremental* (unverified)
	// update pulse, as used by on-chip in-situ training (Yao et al., the
	// paper's ref. [13]): a requested conductance change Δ lands as
	// Δ·(1 + N(0, IncJitter)) + N(0, IncNoise). Small pulses have small
	// absolute variability, unlike a full re-program whose error is σ.
	IncJitter float64
	IncNoise  float64
}

// Default returns the calibrated model used throughout the reproduction:
// K = 4 (paper §4.1), 0.06 acceptance tolerance, and a coarse step chosen so
// that full write-verify averages ≈10 cycles per weight.
func Default(weightBits int, sigma float64) Model {
	return Model{
		WeightBits:   weightBits,
		DeviceBits:   4,
		Sigma:        sigma,
		Tolerance:    0.06,
		CoarseStep:   0.75,
		CoarseJitter: 0.2,
		MaxPulses:    500,
		IncJitter:    0.2,
		IncNoise:     0.05,
	}
}

// Increment simulates one unverified incremental update pulse requesting a
// conductance change of delta (weight-LSB units) and returns the change that
// actually lands. One such pulse is one write cycle in the paper's in-situ
// cost accounting.
func (m Model) Increment(delta float64, r *rng.Source) float64 {
	return delta*(1+r.Gauss(0, m.IncJitter)) + r.Gauss(0, m.IncNoise)
}

// Validate checks the model parameters.
func (m Model) Validate() error {
	switch {
	case m.WeightBits < 1:
		return fmt.Errorf("device: weight bits %d < 1", m.WeightBits)
	case m.DeviceBits < 1:
		return fmt.Errorf("device: device bits %d < 1", m.DeviceBits)
	case m.Sigma < 0:
		return fmt.Errorf("device: negative sigma %v", m.Sigma)
	case m.Tolerance <= 0:
		return fmt.Errorf("device: non-positive tolerance %v", m.Tolerance)
	case m.CoarseStep <= 0:
		return fmt.Errorf("device: non-positive coarse step %v", m.CoarseStep)
	case m.MaxPulses < 1:
		return fmt.Errorf("device: max pulses %d < 1", m.MaxPulses)
	}
	return nil
}

// NumDevices returns ⌈M/K⌉, the devices holding one weight magnitude.
func (m Model) NumDevices() int {
	return (m.WeightBits + m.DeviceBits - 1) / m.DeviceBits
}

// DeviceLevels returns the level count of device i (the top device of a
// non-multiple M holds fewer bits). It is the full-scale conductance of that
// bit-slice in device-level units — the range nonideality models clamp to.
func (m Model) DeviceLevels(i int) int {
	bits := m.DeviceBits
	if rem := m.WeightBits - i*m.DeviceBits; rem < bits {
		bits = rem
	}
	return int(1)<<bits - 1
}

// SliceMagnitude splits an integer weight magnitude into per-device targets
// (device i holds bits [i·K, (i+1)·K)).
func (m Model) SliceMagnitude(mag int) []int {
	n := m.NumDevices()
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = (mag >> (i * m.DeviceBits)) & (int(1)<<m.DeviceBits - 1)
	}
	return out
}

// NoiseStd returns the std of the weight-level programming error without
// verification, in weight-LSB units: σ·sqrt(Σ_i 4^{i·K}) (Eq. 16).
func (m Model) NoiseStd() float64 {
	sum := 0.0
	for i := 0; i < m.NumDevices(); i++ {
		sum += math.Pow(4, float64(i*m.DeviceBits))
	}
	return m.Sigma * math.Sqrt(sum)
}

// ProgramNoVerify simulates programming one weight without verification
// (the massively parallel initial write) and returns the signed error in
// weight-LSB units. Per Eq. 15 the error is value-independent, so no target
// is needed.
func (m Model) ProgramNoVerify(r *rng.Source) float64 {
	return m.ProgramNoVerifyDevices(r, nil)
}

// ProgramNoVerifyDevices is ProgramNoVerify exposing the constituent
// per-device errors: when perDev is non-nil (length NumDevices) it receives
// device i's error in device-level units. The stream consumption and the
// returned aggregate are bit-identical to ProgramNoVerify — the per-device
// view exists so the mapping layer can track bit-slice conductances for
// read-time nonideality models (package nonideal).
func (m Model) ProgramNoVerifyDevices(r *rng.Source, perDev []float64) float64 {
	e := 0.0
	for i := 0; i < m.NumDevices(); i++ {
		g := r.Gauss(0, m.Sigma)
		if perDev != nil {
			perDev[i] = g
		}
		e += math.Pow(2, float64(i*m.DeviceBits)) * g
	}
	return e
}

// WriteVerify simulates write-verifying one weight with integer magnitude
// mag: every constituent device ramps from reset toward its bit-group target
// and fine-tunes until within tolerance. It returns the residual weight
// error in weight-LSB units and the total write cycles spent across the
// weight's devices (the quantity NWC normalizes). Cycle counts are
// value-dependent — "some may not need rewrite at all; while others need a
// lot" (§4.1) — zero targets cost nothing because a reset device already
// stores zero.
func (m Model) WriteVerify(mag int, r *rng.Source) (residual float64, cycles int) {
	return m.WriteVerifyDevices(mag, r, nil)
}

// WriteVerifyDevices is WriteVerify exposing the constituent per-device
// residuals: when perDev is non-nil (length NumDevices) it receives device
// i's post-verify residual in device-level units. Stream consumption and the
// aggregate are bit-identical to WriteVerify; the per-device view feeds the
// mapping layer's conductance tracking for read-time nonidealities.
func (m Model) WriteVerifyDevices(mag int, r *rng.Source, perDev []float64) (residual float64, cycles int) {
	for i, target := range m.SliceMagnitude(mag) {
		e, c := m.writeVerifyDevice(float64(target), r)
		if perDev != nil {
			perDev[i] = e
		}
		residual += math.Pow(2, float64(i*m.DeviceBits)) * e
		cycles += c
	}
	return residual, cycles
}

// writeVerifyDevice runs the two-phase loop for one device and returns its
// residual error (device-level units) and cycle count.
func (m Model) writeVerifyDevice(target float64, r *rng.Source) (float64, int) {
	cycles := 0
	v := 0.0 // reset state
	// Coarse ramp: incremental set pulses until within one step of target.
	for target-v > m.CoarseStep && cycles < m.MaxPulses {
		v += m.CoarseStep * (1 + r.Gauss(0, m.CoarseJitter))
		cycles++
	}
	if target == 0 && cycles == 0 {
		return 0, 0
	}
	// Fine phase: re-program around the target (error N(0, σ)), read back,
	// repeat until within tolerance.
	e := r.Gauss(0, m.Sigma)
	cycles++
	for math.Abs(e) > m.Tolerance && cycles < m.MaxPulses {
		e = r.Gauss(0, m.Sigma)
		cycles++
	}
	return e, cycles
}

// CostModel converts write-cycle counts into wall-clock programming time and
// energy, the units behind the paper's motivation ("programming even a
// ResNet-18 for CIFAR-10 to an nvCiM platform can take more than one
// week"). Defaults follow the RRAM programming literature: ~100 ns set/reset
// pulses at ~10 pJ each, with a read (verify) costing ~10 ns — reads are
// "much shorter ... than write" (§3.1), which is also why Algorithm 1's
// accuracy evaluations are treated as free.
type CostModel struct {
	// PulseTime is the duration of one write pulse.
	PulseTimeNS float64
	// VerifyTimeNS is the read-back per verify iteration.
	VerifyTimeNS float64
	// PulseEnergyPJ is the energy of one write pulse.
	PulseEnergyPJ float64
	// Parallelism is how many devices program concurrently (write-verify is
	// per-device sequential within a column driver; 1 models the paper's
	// fully serial accounting).
	Parallelism int
}

// DefaultCost returns the literature-typical cost model.
func DefaultCost() CostModel {
	return CostModel{PulseTimeNS: 100, VerifyTimeNS: 10, PulseEnergyPJ: 10, Parallelism: 1}
}

// TimeSeconds converts a write-cycle count into seconds (each cycle is one
// pulse plus one verify read).
func (c CostModel) TimeSeconds(cycles float64) float64 {
	p := float64(c.Parallelism)
	if p < 1 {
		p = 1
	}
	return cycles * (c.PulseTimeNS + c.VerifyTimeNS) * 1e-9 / p
}

// EnergyJoules converts a write-cycle count into Joules.
func (c CostModel) EnergyJoules(cycles float64) float64 {
	return cycles * c.PulseEnergyPJ * 1e-12
}

// Stats summarizes Monte-Carlo statistics of the write-verify loop.
type Stats struct {
	MeanCycles  float64
	ResidualStd float64
	MaxCycles   int
	Samples     int
}

// Calibrate measures write-verify behaviour over n weights with magnitudes
// drawn uniformly over the representable range. cmd/swim-calibrate prints
// this against the paper's anchors (≈10 cycles, σ_post ≈ 0.03).
func (m Model) Calibrate(n int, r *rng.Source) Stats {
	levels := int(1)<<m.WeightBits - 1
	var s Stats
	s.Samples = n
	var sumCycles, sumSq float64
	for i := 0; i < n; i++ {
		res, c := m.WriteVerify(r.Intn(levels+1), r)
		sumCycles += float64(c)
		if c > s.MaxCycles {
			s.MaxCycles = c
		}
		sumSq += res * res
	}
	s.MeanCycles = sumCycles / float64(n)
	s.ResidualStd = math.Sqrt(sumSq / float64(n))
	return s
}

// CycleTable returns the Monte-Carlo expected write-verify cycle count for
// every representable magnitude (index = magnitude). The mapping layer sums
// this table over a network's weights to get the NWC denominator — the cost
// of write-verifying all the weights — without simulating the full pass in
// every trial.
func (m Model) CycleTable(trialsPerLevel int, r *rng.Source) []float64 {
	levels := int(1)<<m.WeightBits - 1
	table := make([]float64, levels+1)
	for mag := 0; mag <= levels; mag++ {
		total := 0
		for t := 0; t < trialsPerLevel; t++ {
			_, c := m.WriteVerify(mag, r)
			total += c
		}
		table[mag] = float64(total) / float64(trialsPerLevel)
	}
	return table
}

// CalibrateGaussian measures write-verify behaviour for magnitudes following
// the |N(0, 1)| weight distribution typical of trained networks (quantized to
// the full-scale grid), which weights the cycle count the way a real mapping
// pass would.
func (m Model) CalibrateGaussian(n int, r *rng.Source) Stats {
	levels := float64(int(1)<<m.WeightBits - 1)
	var s Stats
	s.Samples = n
	var sumCycles, sumSq float64
	for i := 0; i < n; i++ {
		// Trained weights: |w| ~ |N(0, 1)| clipped at 3σ = full scale.
		mag := int(math.Round(math.Min(math.Abs(r.Gauss(0, 1)), 3) / 3 * levels))
		res, c := m.WriteVerify(mag, r)
		sumCycles += float64(c)
		if c > s.MaxCycles {
			s.MaxCycles = c
		}
		sumSq += res * res
	}
	s.MeanCycles = sumCycles / float64(n)
	s.ResidualStd = math.Sqrt(sumSq / float64(n))
	return s
}
