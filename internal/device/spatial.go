package device

import (
	"math"

	"swim/internal/rng"
)

// SpatialConfig parameterizes the §2.1 spatial-variation extension: "spatial
// variations result from fabrication defects and have both local and global
// correlations". The paper evaluates temporal variation only and notes the
// framework "can also be extended to other sources of variations"; this is
// that extension. A chip instance draws one global offset plus a smooth
// locally-correlated field over the crossbar plane; every device adds the
// field value at its coordinates to its programming error. Because
// write-verify reads back the actual conductance, verifying a weight
// compensates spatial error exactly like temporal error — which is why SWIM
// keeps working under combined variation (see the ablation benchmark).
type SpatialConfig struct {
	// GlobalStd is the per-chip constant offset spread (device levels).
	GlobalStd float64
	// LocalStd is the spread of the locally-correlated component.
	LocalStd float64
	// CorrLength is the correlation length of the local field, in device
	// pitches: features of the field vary over roughly this many cells.
	CorrLength float64
	// Rows, Cols bound the modeled crossbar plane.
	Rows, Cols int
}

// DefaultSpatial returns a moderate fabrication-variation setting.
func DefaultSpatial(rows, cols int) SpatialConfig {
	return SpatialConfig{GlobalStd: 0.05, LocalStd: 0.1, CorrLength: 16, Rows: rows, Cols: cols}
}

// SpatialField is one sampled chip instance.
type SpatialField struct {
	cfg    SpatialConfig
	global float64
	// coarse grid of the local component, bilinearly interpolated.
	gridRows, gridCols int
	grid               []float64
}

// NewSpatialField samples a chip instance from the configuration.
func NewSpatialField(cfg SpatialConfig, r *rng.Source) *SpatialField {
	if cfg.Rows < 1 || cfg.Cols < 1 {
		panic("device: spatial field needs positive dimensions")
	}
	cl := cfg.CorrLength
	if cl < 1 {
		cl = 1
	}
	f := &SpatialField{
		cfg:      cfg,
		global:   r.Gauss(0, cfg.GlobalStd),
		gridRows: int(math.Ceil(float64(cfg.Rows)/cl)) + 2,
		gridCols: int(math.Ceil(float64(cfg.Cols)/cl)) + 2,
	}
	f.grid = make([]float64, f.gridRows*f.gridCols)
	for i := range f.grid {
		f.grid[i] = r.Gauss(0, cfg.LocalStd)
	}
	return f
}

// At returns the spatial error component (device levels) at crossbar
// coordinates (row, col). Coordinates outside the configured plane clamp to
// its border, so callers may map flat weight indices with a simple
// row-major fold.
func (f *SpatialField) At(row, col int) float64 {
	cl := f.cfg.CorrLength
	if cl < 1 {
		cl = 1
	}
	y := math.Min(math.Max(float64(row)/cl, 0), float64(f.gridRows-2))
	x := math.Min(math.Max(float64(col)/cl, 0), float64(f.gridCols-2))
	y0, x0 := int(y), int(x)
	fy, fx := y-float64(y0), x-float64(x0)
	g := func(r, c int) float64 { return f.grid[r*f.gridCols+c] }
	local := g(y0, x0)*(1-fy)*(1-fx) +
		g(y0, x0+1)*(1-fy)*fx +
		g(y0+1, x0)*fy*(1-fx) +
		g(y0+1, x0+1)*fy*fx
	return f.global + local
}

// AtFlat folds a flat weight index onto the plane row-major and returns the
// spatial component, matching how package mapping lays out weights.
func (f *SpatialField) AtFlat(i int) float64 {
	return f.At(i/f.cfg.Cols, i%f.cfg.Cols)
}
