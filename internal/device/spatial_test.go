package device

import (
	"math"
	"testing"

	"swim/internal/rng"
	"swim/internal/stat"
)

func TestSpatialFieldDeterministicPerSeed(t *testing.T) {
	cfg := DefaultSpatial(64, 64)
	a := NewSpatialField(cfg, rng.New(1))
	b := NewSpatialField(cfg, rng.New(1))
	for i := 0; i < 100; i++ {
		if a.AtFlat(i) != b.AtFlat(i) {
			t.Fatal("same seed produced different fields")
		}
	}
	c := NewSpatialField(cfg, rng.New(2))
	if a.At(3, 3) == c.At(3, 3) && a.At(40, 40) == c.At(40, 40) {
		t.Fatal("different seeds produced identical fields")
	}
}

func TestSpatialFieldLocalCorrelation(t *testing.T) {
	// Neighbouring devices must see nearly the same field; devices far apart
	// (≫ correlation length) must decorrelate.
	cfg := SpatialConfig{GlobalStd: 0, LocalStd: 0.2, CorrLength: 16, Rows: 256, Cols: 256}
	var nearDiff, farDiff stat.Welford
	base := rng.New(3)
	for trial := 0; trial < 40; trial++ {
		f := NewSpatialField(cfg, base.Split())
		nearDiff.Add(math.Abs(f.At(100, 100) - f.At(100, 101)))
		farDiff.Add(math.Abs(f.At(10, 10) - f.At(200, 200)))
	}
	if nearDiff.Mean() >= farDiff.Mean()/2 {
		t.Fatalf("field not locally correlated: near %.4f vs far %.4f",
			nearDiff.Mean(), farDiff.Mean())
	}
}

func TestSpatialFieldGlobalOffsetShared(t *testing.T) {
	cfg := SpatialConfig{GlobalStd: 1.0, LocalStd: 0.0, CorrLength: 8, Rows: 32, Cols: 32}
	f := NewSpatialField(cfg, rng.New(4))
	v := f.At(0, 0)
	if v == 0 {
		t.Fatal("global offset missing")
	}
	for i := 0; i < 200; i++ {
		if f.AtFlat(i) != v {
			t.Fatal("pure-global field must be constant across the chip")
		}
	}
}

func TestSpatialFieldBoundsClamp(t *testing.T) {
	f := NewSpatialField(DefaultSpatial(16, 16), rng.New(5))
	// Out-of-plane coordinates clamp instead of panicking.
	_ = f.At(-5, -5)
	_ = f.At(1000, 1000)
	_ = f.AtFlat(16*16 + 999)
}

func TestCostModelConversions(t *testing.T) {
	c := DefaultCost()
	// 1e9 cycles at 110 ns each = 110 s.
	if got := c.TimeSeconds(1e9); math.Abs(got-110) > 1e-9 {
		t.Fatalf("time = %v, want 110", got)
	}
	if got := c.EnergyJoules(1e12); math.Abs(got-10) > 1e-9 {
		t.Fatalf("energy = %v, want 10 J", got)
	}
	c.Parallelism = 10
	if got := c.TimeSeconds(1e9); math.Abs(got-11) > 1e-9 {
		t.Fatalf("parallel time = %v, want 11", got)
	}
}

func TestCostModelSpeedupProportionality(t *testing.T) {
	// SWIM's value proposition in time/energy units: a 10x write-cycle
	// reduction is exactly a 10x programming-time and 10x energy reduction,
	// whatever the per-pulse constants (published full-system numbers are
	// far larger than raw pulse widths — the paper quotes "more than one
	// week" for ResNet-18 — but the ratio is what SWIM controls).
	c := DefaultCost()
	full, reduced := 1.12e8, 1.12e7
	if r := c.TimeSeconds(full) / c.TimeSeconds(reduced); math.Abs(r-10) > 1e-9 {
		t.Fatalf("time ratio %v, want 10", r)
	}
	if r := c.EnergyJoules(full) / c.EnergyJoules(reduced); math.Abs(r-10) > 1e-9 {
		t.Fatalf("energy ratio %v, want 10", r)
	}
}
