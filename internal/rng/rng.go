// Package rng provides a deterministic, splittable pseudo-random number
// source used by every stochastic component in this repository (device
// variation sampling, dataset synthesis, Monte-Carlo trials, weight
// initialization).
//
// All experiment randomness flows from explicit seeds so that every table and
// figure regenerates bit-identically. The generator is SplitMix64 followed by
// a xorshift* scramble: tiny, fast, and good enough statistical quality for
// simulation (it passes the equidistribution sanity tests in rng_test.go).
// math/rand is deliberately not used so that splitting (deriving independent
// child streams for parallel trials) is explicit and stable across Go
// versions.
package rng

import "math"

// Source is a deterministic 64-bit PRNG stream. The zero value is a valid
// stream seeded with 0; prefer New.
type Source struct {
	state uint64
}

// New returns a stream seeded from seed. Distinct seeds give streams that are
// independent for simulation purposes.
func New(seed uint64) *Source {
	s := &Source{state: seed}
	// Warm up so that small adjacent seeds decorrelate immediately.
	s.Uint64()
	s.Uint64()
	return s
}

// NewLocal returns a stream seeded from seed as a value rather than a
// pointer, for callers that mint many short-lived streams on a hot path
// (e.g. per-device nonideality draws keyed by device index): a local value
// whose address never escapes stays on the stack, so no allocation occurs.
// The warm-up matches New, so NewLocal(s) and *New(s) are the same stream.
func NewLocal(seed uint64) Source {
	s := Source{state: seed}
	s.Uint64()
	s.Uint64()
	return s
}

// Split derives an independent child stream. The parent advances, so
// successive Split calls yield distinct children.
func (s *Source) Split() *Source {
	return New(s.Uint64() ^ 0x9e3779b97f4a7c15)
}

// SplitN derives n independent child streams.
func (s *Source) SplitN(n int) []*Source {
	out := make([]*Source, n)
	for i := range out {
		out[i] = s.Split()
	}
	return out
}

// Uint64 returns the next raw 64-bit value (SplitMix64 step).
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Modulo bias is below 2^-40 for every n used in this repo; acceptable
	// for simulation.
	return int(s.Uint64() % uint64(n))
}

// Norm returns a standard normal sample (Box–Muller, polar-free form using
// both uniforms directly; adequate tail behaviour for simulation).
func (s *Source) Norm() float64 {
	// Guard against log(0).
	u1 := s.Float64()
	for u1 == 0 {
		u1 = s.Float64()
	}
	u2 := s.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Gauss returns a normal sample with the given mean and standard deviation.
func (s *Source) Gauss(mean, std float64) float64 {
	return mean + std*s.Norm()
}

// TruncGauss returns a sample from N(mean, std^2) conditioned on
// |x - mean| <= bound, via rejection. It panics if bound <= 0. This models a
// write-verified device value: the residual error after verification is a
// truncated Gaussian within the verify tolerance.
func (s *Source) TruncGauss(mean, std, bound float64) float64 {
	if bound <= 0 {
		panic("rng: TruncGauss with non-positive bound")
	}
	if std == 0 {
		return mean
	}
	for {
		d := std * s.Norm()
		if math.Abs(d) <= bound {
			return mean + d
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher–Yates).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes indices [0, n) via the provided swap function.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
