package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds produced %d identical outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		s := New(seed)
		for i := 0; i < 100; i++ {
			v := s.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(7)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %.4f, want ~0.5", mean)
	}
}

func TestNormMoments(t *testing.T) {
	s := New(11)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := s.Norm()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean = %.4f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance = %.4f, want ~1", variance)
	}
}

func TestGauss(t *testing.T) {
	s := New(3)
	const n = 100000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := s.Gauss(5, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean-5) > 0.05 || math.Abs(std-2) > 0.05 {
		t.Fatalf("Gauss(5,2): mean=%.3f std=%.3f", mean, std)
	}
}

func TestTruncGaussBound(t *testing.T) {
	s := New(9)
	for i := 0; i < 10000; i++ {
		v := s.TruncGauss(1.5, 0.1, 0.06)
		if math.Abs(v-1.5) > 0.06 {
			t.Fatalf("TruncGauss escaped bound: %v", v)
		}
	}
}

func TestTruncGaussZeroStd(t *testing.T) {
	s := New(9)
	if v := s.TruncGauss(2, 0, 0.06); v != 2 {
		t.Fatalf("TruncGauss with std=0 = %v, want exact mean", v)
	}
}

func TestTruncGaussStdShrinks(t *testing.T) {
	// Residual std of N(0, 0.1) truncated at ±0.06 should be ~0.034 — the
	// property the device model relies on for its post-write-verify spread.
	s := New(13)
	var sumsq float64
	const n = 50000
	for i := 0; i < n; i++ {
		v := s.TruncGauss(0, 0.1, 0.06)
		sumsq += v * v
	}
	std := math.Sqrt(sumsq / n)
	if std < 0.030 || std > 0.040 {
		t.Fatalf("truncated std = %.4f, want ~0.034", std)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(17)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[s.Intn(10)]++
	}
	for v, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("Intn(10) bucket %d count %d is not near-uniform", v, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		p := New(seed).Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(100)
	a := parent.Split()
	b := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("sibling streams collided %d times", same)
	}
}

func TestSplitN(t *testing.T) {
	kids := New(5).SplitN(8)
	if len(kids) != 8 {
		t.Fatalf("SplitN returned %d streams", len(kids))
	}
	seen := map[uint64]bool{}
	for _, k := range kids {
		v := k.Uint64()
		if seen[v] {
			t.Fatal("SplitN children produced identical first outputs")
		}
		seen[v] = true
	}
}

func TestShuffle(t *testing.T) {
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	New(21).Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, v := range xs {
		sum += v
	}
	if sum != 28 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}
