package crossbar

import (
	"math"
	"testing"

	"swim/internal/device"
	"swim/internal/nonideal"
	"swim/internal/rng"
	"swim/internal/tensor"
)

func testArray(t *testing.T) *Array {
	t.Helper()
	w := tensor.New(4, 6)
	r := rng.New(3)
	for i := range w.Data {
		w.Data[i] = r.Gauss(0, 1)
	}
	a, err := NewArray(DefaultConfig(device.Default(8, 0.1)), w, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestArrayStuckAtLowZeroesOutput(t *testing.T) {
	a := testArray(t)
	x := []float64{1, -0.5, 0.25, 1, 0.75, -1}
	a.SetNonideal(nonideal.StuckAt{P: 1, High: 0}.NewTrial(device.Default(8, 0.1), rng.New(5)), 0)
	for _, y := range a.MatVec(x) {
		if y != 0 {
			t.Fatalf("all-stuck-low array produced nonzero output %v", y)
		}
	}
	// Clearing the instance must restore ideal reads exactly.
	ideal := func() []float64 { return a.MatVec(x) }
	a.SetNonideal(nil, 0)
	got := ideal()
	b := testArray(t)
	want := b.MatVec(x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output %d after clearing nonideality: %v != %v", i, got[i], want[i])
		}
	}
}

func TestArrayDriftShrinksOutput(t *testing.T) {
	a := testArray(t)
	x := []float64{1, 1, 1, 1, 1, 1}
	base := a.MatVec(x)
	a.SetNonideal(nonideal.Drift{Nu: 0.1, NuStd: 0, T0: 1}.NewTrial(device.Default(8, 0.1), rng.New(6)), 86400)
	day := a.MatVec(x)
	var baseN, dayN float64
	for i := range base {
		baseN += base[i] * base[i]
		dayN += day[i] * day[i]
	}
	if !(math.Sqrt(dayN) < math.Sqrt(baseN)) {
		t.Fatalf("drifted output norm %v not below ideal %v", math.Sqrt(dayN), math.Sqrt(baseN))
	}
}

// Write-verifying a weight under drift must reset its devices: the refreshed
// effective conductances are re-degraded from the new programmed state, not
// left at their stale values.
func TestArrayWriteVerifyRefreshesEffective(t *testing.T) {
	a := testArray(t)
	inst := nonideal.Drift{Nu: 0.05, NuStd: 0, T0: 1}.NewTrial(device.Default(8, 0.1), rng.New(7))
	a.SetNonideal(inst, 3600)
	a.WriteVerify(1, 2, rng.New(8))
	i := 1*a.in + 2
	for d := range a.conduct {
		g, sign := a.conduct[d][i], 1.0
		if g < 0 {
			sign, g = -1, -g
		}
		want := sign * inst.Apply(i*len(a.conduct)+d, g, 3600)
		if a.eff[d][i] != want {
			t.Fatalf("slice %d effective %v, want re-degraded %v", d, a.eff[d][i], want)
		}
	}
}
