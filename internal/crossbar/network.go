package crossbar

import (
	"fmt"

	"swim/internal/nn"
	"swim/internal/rng"
	"swim/internal/tensor"
)

// The analog layers satisfy the compiled-evaluation contract so plan-based
// inference (package eval) reuses the per-worker scratch arena for analog
// networks too.
var (
	_ nn.PlanLayer = (*AnalogLinear)(nil)
	_ nn.PlanLayer = (*AnalogConv2D)(nil)
)

// AnalogLinear is an inference-only fully connected layer whose weights live
// on a crossbar Array; the bias adds digitally in the peripheral, as on real
// nvCiM parts.
type AnalogLinear struct {
	name string
	arr  *Array
	bias []float64
}

// Name implements nn.Layer.
func (a *AnalogLinear) Name() string { return a.name }

// Forward implements nn.Layer as a thin wrapper over ForwardInto.
func (a *AnalogLinear) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	out, _ := a.arr.Shape()
	y := tensor.New(x.Shape[0], out)
	a.ForwardInto(y, x, nil)
	return y
}

// OutShape implements nn.PlanLayer.
func (a *AnalogLinear) OutShape(in []int) ([]int, error) {
	out, fanIn := a.arr.Shape()
	if len(in) != 2 || in[1] != fanIn {
		return nil, fmt.Errorf("%s: want input shape [B %d], got %v", a.name, fanIn, in)
	}
	return []int{in[0], out}, nil
}

// ForwardInto implements nn.PlanLayer: analog inference with the DAC scratch
// and output rows carved from the arena (heap when scratch is nil), so plan
// execution over the crossbar fabric stays allocation-free.
func (a *AnalogLinear) ForwardInto(dst, x *tensor.Tensor, s *tensor.Arena) {
	b := x.Shape[0]
	out, in := a.arr.Shape()
	xq := tensor.ScratchFloats(s, in)
	for bi := 0; bi < b; bi++ {
		row := dst.Data[bi*out : (bi+1)*out]
		a.arr.MatVecInto(row, x.Data[bi*in:(bi+1)*in], xq)
		for j := range row {
			row[j] += a.bias[j]
		}
	}
}

// Backward implements nn.Layer (analog arrays are inference-only here).
func (a *AnalogLinear) Backward(*tensor.Tensor) *tensor.Tensor {
	panic("crossbar: analog layers are inference-only")
}

// BackwardSecond implements nn.Layer.
func (a *AnalogLinear) BackwardSecond(*tensor.Tensor) *tensor.Tensor {
	panic("crossbar: analog layers are inference-only")
}

// Params implements nn.Layer.
func (a *AnalogLinear) Params() []*nn.Param { return nil }

// Clone implements nn.Layer (shares the programmed array: cloning a chip
// does not refabricate it).
func (a *AnalogLinear) Clone() nn.Layer { return a }

// AnalogConv2D runs a convolution by streaming im2col patches through the
// crossbar (each output pixel is one analog matrix-vector product), exactly
// the dataflow of ISAAC-style accelerators.
type AnalogConv2D struct {
	name string
	arr  *Array
	geom tensor.Conv2DGeom
	outC int
	bias []float64
	cols *tensor.Tensor
}

// Name implements nn.Layer.
func (a *AnalogConv2D) Name() string { return a.name }

// Forward implements nn.Layer as a thin wrapper over ForwardInto.
func (a *AnalogConv2D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	g := a.geom
	out := tensor.New(x.Shape[0], a.outC, g.OutH, g.OutW)
	a.ForwardInto(out, x, nil)
	return out
}

// OutShape implements nn.PlanLayer.
func (a *AnalogConv2D) OutShape(in []int) ([]int, error) {
	g := a.geom
	if len(in) != 4 || in[1] != g.InC || in[2] != g.InH || in[3] != g.InW {
		return nil, fmt.Errorf("%s: want input shape [B %d %d %d], got %v", a.name, g.InC, g.InH, g.InW, in)
	}
	return []int{in[0], a.outC, g.OutH, g.OutW}, nil
}

// ForwardInto implements nn.PlanLayer: every im2col patch streams through
// the crossbar with all temporaries (lowered columns, patch vector, DAC
// scratch, ADC output row) carved from the arena.
func (a *AnalogConv2D) ForwardInto(dst, x *tensor.Tensor, s *tensor.Arena) {
	b := x.Shape[0]
	g := a.geom
	var cols *tensor.Tensor
	if s != nil {
		cols = s.Alloc(g.ColRows(), g.ColCols())
	} else {
		if a.cols == nil {
			a.cols = tensor.New(g.ColRows(), g.ColCols())
		}
		cols = a.cols
	}
	sampleIn := g.InC * g.InH * g.InW
	patch := tensor.ScratchFloats(s, g.ColRows())
	xq := tensor.ScratchFloats(s, g.ColRows())
	y := tensor.ScratchFloats(s, a.outC)
	nc := g.ColCols()
	for bi := 0; bi < b; bi++ {
		g.Im2ColInto(cols, x.Data[bi*sampleIn:(bi+1)*sampleIn])
		for p := 0; p < nc; p++ {
			for r := 0; r < g.ColRows(); r++ {
				patch[r] = cols.Data[r*nc+p]
			}
			a.arr.MatVecInto(y, patch, xq)
			for oc := 0; oc < a.outC; oc++ {
				dst.Data[((bi*a.outC+oc)*g.OutH*g.OutW)+p] = y[oc] + a.bias[oc]
			}
		}
	}
}

// Backward implements nn.Layer.
func (a *AnalogConv2D) Backward(*tensor.Tensor) *tensor.Tensor {
	panic("crossbar: analog layers are inference-only")
}

// BackwardSecond implements nn.Layer.
func (a *AnalogConv2D) BackwardSecond(*tensor.Tensor) *tensor.Tensor {
	panic("crossbar: analog layers are inference-only")
}

// Params implements nn.Layer.
func (a *AnalogConv2D) Params() []*nn.Param { return nil }

// Clone implements nn.Layer.
func (a *AnalogConv2D) Clone() nn.Layer { return a }

// BuildAnalog constructs an inference-only analog twin of net: every Linear
// and Conv2D moves onto crossbar arrays programmed with unverified writes
// under cfg's device model, while activation, pooling, normalization and
// quantization layers stay digital. The returned network shares no weight
// state with the original. Total tiles used is also reported.
//
// An invalid fabric configuration or an unexpected trunk shape is returned
// as an error so callers driving builds from Monte-Carlo workers can fail
// the trial instead of the process.
func BuildAnalog(net *nn.Network, cfg Config, r *rng.Source) (*nn.Network, int, error) {
	tiles := 0
	var convert func(l nn.Layer) (nn.Layer, error)
	convert = func(l nn.Layer) (nn.Layer, error) {
		switch v := l.(type) {
		case *nn.Sequential:
			out := make([]nn.Layer, len(v.Layers))
			for i, child := range v.Layers {
				c, err := convert(child)
				if err != nil {
					return nil, err
				}
				out[i] = c
			}
			return nn.NewSequential(v.Name(), out...), nil
		case *nn.Residual:
			var short nn.Layer
			if v.Shortcut != nil {
				s, err := convert(v.Shortcut)
				if err != nil {
					return nil, err
				}
				short = s
			}
			body, err := convert(v.Body)
			if err != nil {
				return nil, err
			}
			return nn.NewResidual(v.Name(), body, short), nil
		case *nn.Linear:
			arr, err := NewArray(cfg, v.W.Data, r)
			if err != nil {
				return nil, fmt.Errorf("layer %s: %w", v.Name(), err)
			}
			tiles += arr.Tiles()
			return &AnalogLinear{
				name: v.Name() + ".analog",
				arr:  arr,
				bias: append([]float64(nil), v.B.Data.Data...),
			}, nil
		case *nn.Conv2D:
			arr, err := NewArray(cfg, v.W.Data, r)
			if err != nil {
				return nil, fmt.Errorf("layer %s: %w", v.Name(), err)
			}
			tiles += arr.Tiles()
			return &AnalogConv2D{
				name: v.Name() + ".analog",
				arr:  arr,
				geom: v.Geom,
				outC: v.OutC,
				bias: append([]float64(nil), v.B.Data.Data...),
			}, nil
		default:
			return l.Clone(), nil
		}
	}
	converted, err := convert(net.Trunk)
	if err != nil {
		return nil, 0, fmt.Errorf("crossbar: building analog twin of %s: %w", net.Name, err)
	}
	trunk, ok := converted.(*nn.Sequential)
	if !ok {
		return nil, 0, fmt.Errorf("crossbar: unexpected trunk type %T", net.Trunk)
	}
	return nn.NewNetwork(net.Name+"-analog", trunk, nn.NewSoftmaxCrossEntropy()), tiles, nil
}
