package crossbar

import (
	"testing"

	"swim/internal/data"
	"swim/internal/device"
	"swim/internal/eval"
	"swim/internal/models"
	"swim/internal/rng"
	"swim/internal/train"
)

func TestBuildAnalogLeNetMatchesDigitalAtLowNoise(t *testing.T) {
	ds := data.MNISTLike(400, 150, 1)
	r := rng.New(2)
	net := models.LeNet(10, 4, r)
	cfg := train.DefaultConfig()
	cfg.Epochs = 2
	cfg.QATBits = 4
	train.SGD(net, ds, cfg, r)
	digital := train.Evaluate(net, ds.TestX, ds.TestY, 64)

	dev := device.Default(4, 0.02) // near-ideal devices
	fab := DefaultConfig(dev)
	fab.DACBits, fab.ADCBits = 10, 12
	analog, tiles, err := BuildAnalog(net, fab, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if tiles <= 0 {
		t.Fatal("no tiles allocated")
	}
	aAcc := train.Evaluate(analog, ds.TestX, ds.TestY, 16)
	if digital-aAcc > 3 {
		t.Fatalf("analog twin %.2f%% far below digital %.2f%% at near-zero noise", aAcc, digital)
	}
}

func TestBuildAnalogNoiseHurts(t *testing.T) {
	ds := data.MNISTLike(400, 120, 1)
	r := rng.New(2)
	net := models.LeNet(10, 4, r)
	cfg := train.DefaultConfig()
	cfg.Epochs = 2
	cfg.QATBits = 4
	train.SGD(net, ds, cfg, r)

	acc := func(sigma float64) float64 {
		dev := device.Default(4, sigma)
		analog, _, err := BuildAnalog(net, DefaultConfig(dev), rng.New(4))
		if err != nil {
			t.Fatal(err)
		}
		return train.Evaluate(analog, ds.TestX, ds.TestY, 16)
	}
	if lo, hi := acc(2.5), acc(0.05); lo >= hi {
		t.Fatalf("heavy device noise should hurt analog accuracy: %.2f vs %.2f", lo, hi)
	}
}

func TestAnalogLayersRefuseTraining(t *testing.T) {
	dev := device.Default(4, 0.1)
	r := rng.New(5)
	net := models.LeNet(10, 4, r)
	analog, _, err := BuildAnalog(net, DefaultConfig(dev), r)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("backward through analog layer should panic")
		}
	}()
	x := data.MNISTLike(4, 4, 9).TrainX
	analog.LossGrad(x, []int{0, 1, 2, 3}, false)
}

func TestBuildAnalogSharesNoState(t *testing.T) {
	dev := device.Default(4, 0.1)
	r := rng.New(6)
	net := models.LeNet(10, 4, r)
	before := net.MappedParams()[0].Data.Clone()
	if _, _, err := BuildAnalog(net, DefaultConfig(dev), r); err != nil {
		t.Fatal(err)
	}
	after := net.MappedParams()[0].Data
	for i := range before.Data {
		if before.Data[i] != after.Data[i] {
			t.Fatal("building the analog twin mutated the source network")
		}
	}
}

// TestAnalogPlanMatchesLegacyForward pins compiled-plan evaluation of an
// analog network bit-for-bit against the legacy per-layer Forward: the
// analog layers implement the same PlanLayer contract as the digital ones,
// so crossbar inference reuses the scratch arena too.
func TestAnalogPlanMatchesLegacyForward(t *testing.T) {
	dev := device.Default(4, 0.1)
	r := rng.New(8)
	net := models.LeNet(10, 4, r)
	analog, _, err := BuildAnalog(net, DefaultConfig(dev), r)
	if err != nil {
		t.Fatal(err)
	}
	full := data.MNISTLike(20, 20, 12).TrainX
	x, _ := data.Subset(full, make([]int, full.Shape[0]), 7) // odd batch

	plan, err := eval.Compile(analog, x.Shape, nil)
	if err != nil {
		t.Fatalf("Compile(analog): %v", err)
	}
	want := analog.Forward(x, false)
	got := plan.Forward(x)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("analog logit [%d] = %v, legacy %v", i, got.Data[i], want.Data[i])
		}
	}
	if allocs := testing.AllocsPerRun(5, func() { plan.Forward(x) }); allocs != 0 {
		t.Fatalf("analog Plan.Forward allocates %v times per call, want 0", allocs)
	}
}
