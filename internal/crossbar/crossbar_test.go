package crossbar

import (
	"math"
	"testing"

	"swim/internal/device"
	"swim/internal/rng"
	"swim/internal/tensor"
)

func mustArray(t *testing.T, cfg Config, w *tensor.Tensor, r *rng.Source) *Array {
	t.Helper()
	a, err := NewArray(cfg, w, r)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func randMat(r *rng.Source, m, n int) *tensor.Tensor {
	t := tensor.New(m, n)
	for i := range t.Data {
		t.Data[i] = r.Gauss(0, 0.5)
	}
	return t
}

func TestValidate(t *testing.T) {
	cfg := DefaultConfig(device.Default(6, 0.1))
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.TileRows = 0
	if bad.Validate() == nil {
		t.Fatal("accepted zero tile rows")
	}
	bad = cfg
	bad.ADCBits = 0
	if bad.Validate() == nil {
		t.Fatal("accepted zero ADC bits")
	}
}

func TestTileCount(t *testing.T) {
	cfg := DefaultConfig(device.Default(6, 0.05))
	cfg.TileRows, cfg.TileCols = 64, 64
	r := rng.New(1)
	a := mustArray(t, cfg, randMat(r, 100, 200), r)
	// 100 outs over 64-wide cols = 2; 200 ins over 64 rows = 4.
	if a.Tiles() != 8 {
		t.Fatalf("tiles = %d, want 8", a.Tiles())
	}
	out, in := a.Shape()
	if out != 100 || in != 200 {
		t.Fatalf("shape = %d,%d", out, in)
	}
}

func TestMatVecApproximatesIdeal(t *testing.T) {
	// With tiny device noise and generous converters, the analog MVM should
	// track the exact product closely (relative error of a few percent).
	dev := device.Default(6, 0.01)
	cfg := DefaultConfig(dev)
	cfg.DACBits, cfg.ADCBits = 10, 12
	r := rng.New(2)
	w := randMat(r, 16, 32)
	a := mustArray(t, cfg, w, r)
	x := make([]float64, 32)
	for i := range x {
		x[i] = r.Gauss(0, 1)
	}
	got := a.MatVec(x)
	var refNorm, errNorm float64
	for o := 0; o < 16; o++ {
		ref := 0.0
		for i := 0; i < 32; i++ {
			ref += w.At(o, i) * x[i]
		}
		refNorm += ref * ref
		d := got[o] - ref
		errNorm += d * d
	}
	if rel := math.Sqrt(errNorm / refNorm); rel > 0.08 {
		t.Fatalf("analog MVM relative error %.3f too large", rel)
	}
}

func TestNoiseDegradesWithSigma(t *testing.T) {
	r := rng.New(3)
	w := randMat(r, 12, 24)
	x := make([]float64, 24)
	for i := range x {
		x[i] = r.Gauss(0, 1)
	}
	relErr := func(sigma float64, seed uint64) float64 {
		dev := device.Default(6, sigma)
		cfg := DefaultConfig(dev)
		cfg.DACBits, cfg.ADCBits = 12, 14
		rr := rng.New(seed)
		var errNorm, refNorm float64
		for trial := 0; trial < 10; trial++ {
			a, err := NewArray(cfg, w, rr)
			if err != nil {
				panic(err)
			}
			got := a.MatVec(x)
			for o := 0; o < 12; o++ {
				ref := 0.0
				for i := 0; i < 24; i++ {
					ref += w.At(o, i) * x[i]
				}
				d := got[o] - ref
				errNorm += d * d
				refNorm += ref * ref
			}
		}
		return math.Sqrt(errNorm / refNorm)
	}
	if relErr(0.3, 4) <= relErr(0.02, 5) {
		t.Fatal("larger device sigma should mean larger MVM error")
	}
}

func TestWriteVerifyImprovesAccuracyOfStoredWeights(t *testing.T) {
	dev := device.Default(8, 0.3)
	cfg := DefaultConfig(dev)
	r := rng.New(6)
	w := randMat(r, 8, 8)
	a := mustArray(t, cfg, w, r)
	cycles := 0
	for o := 0; o < 8; o++ {
		for i := 0; i < 8; i++ {
			cycles += a.WriteVerify(o, i, r)
		}
	}
	if cycles == 0 {
		t.Fatal("write-verify billed no cycles")
	}
	// After verification every stored bit-slice is within tolerance of an
	// integer level.
	for d := range a.conduct {
		for _, v := range a.conduct[d] {
			frac := math.Abs(v - math.Round(v))
			if frac > dev.Tolerance+1e-9 {
				t.Fatalf("slice %d value %v off-level by %v", d, v, frac)
			}
		}
	}
}

func TestDACZeroInput(t *testing.T) {
	dev := device.Default(4, 0.05)
	r := rng.New(7)
	a := mustArray(t, DefaultConfig(dev), randMat(r, 4, 6), r)
	out := a.MatVec(make([]float64, 6))
	for _, v := range out {
		if v != 0 {
			t.Fatalf("zero input produced non-zero output %v", out)
		}
	}
}

func TestMatVecPanicsOnBadLength(t *testing.T) {
	dev := device.Default(4, 0.05)
	r := rng.New(8)
	a := mustArray(t, DefaultConfig(dev), randMat(r, 4, 6), r)
	defer func() {
		if recover() == nil {
			t.Fatal("accepted wrong input length")
		}
	}()
	a.MatVec(make([]float64, 5))
}

func TestNewArrayRejectsInvalidInputs(t *testing.T) {
	dev := device.Default(4, 0.1)
	r := rng.New(9)
	// Rank-3 weights are not a matrix.
	if _, err := NewArray(DefaultConfig(dev), tensor.New(2, 3, 4), r); err == nil {
		t.Fatal("rank-3 weights accepted")
	}
	bad := DefaultConfig(dev)
	bad.TileRows = 0
	if _, err := NewArray(bad, randMat(r, 4, 6), r); err == nil {
		t.Fatal("invalid fabric accepted")
	}
}
