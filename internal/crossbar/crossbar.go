// Package crossbar implements the resistive crossbar array compute engine of
// §2.1: weight matrices are stored as conductances at the cross points of a
// device array and matrix-vector multiplication happens in the analog domain,
// with DACs driving the word lines and ADCs reading the bit lines.
//
// The engine complements the behavioural weight-noise model in package
// mapping with a structural simulation: weights are bit-sliced across K-bit
// devices in differential pairs (positive/negative columns), inputs are
// quantized by the DAC, each tile computes Σ g·v per column, and the ADC
// quantizes the accumulated currents. This is the substrate the
// crossbar_inference example runs a whole network on, demonstrating that the
// behavioural and structural models agree.
package crossbar

import (
	"fmt"
	"math"

	"swim/internal/calib"
	"swim/internal/device"
	"swim/internal/nonideal"
	"swim/internal/quant"
	"swim/internal/rng"
	"swim/internal/tensor"
)

// Config describes the crossbar fabric.
type Config struct {
	// TileRows/TileCols bound one physical array (a large weight matrix is
	// partitioned across tiles; 128×128 is a common size in the literature,
	// e.g. ISAAC).
	TileRows, TileCols int
	// DACBits quantizes word-line inputs; ADCBits quantizes column outputs.
	DACBits, ADCBits int
	// Device is the NVM device model used for the stored conductances.
	Device device.Model
}

// DefaultConfig mirrors the paper's setting (K = 4 devices) on 128×128 tiles
// with 6-bit converters.
func DefaultConfig(dev device.Model) Config {
	return Config{TileRows: 128, TileCols: 128, DACBits: 6, ADCBits: 8, Device: dev}
}

// Validate checks the fabric parameters.
func (c Config) Validate() error {
	if c.TileRows < 1 || c.TileCols < 1 {
		return fmt.Errorf("crossbar: bad tile geometry %dx%d", c.TileRows, c.TileCols)
	}
	if c.DACBits < 1 || c.ADCBits < 1 {
		return fmt.Errorf("crossbar: bad converter precision dac=%d adc=%d", c.DACBits, c.ADCBits)
	}
	return c.Device.Validate()
}

// Array is one weight matrix programmed onto crossbar tiles. It stores, for
// every logical weight, the analog conductance of each bit-slice device of
// the differential pair — exactly what a write-verify pass would measure.
type Array struct {
	cfg     Config
	out, in int
	scale   float64
	// conduct[d] holds the per-device analog values for bit-slice d, signed
	// by the differential pair (+g on the positive column, −g on the
	// negative column collapse to one signed number per device).
	conduct [][]float64
	tiles   int

	// Read-time nonideality state: when inst is set, MatVec reads eff —
	// the degraded view of conduct at readTime — instead of the programmed
	// conductances. conduct stays the ground truth so WriteVerify keeps
	// correcting the true device state (and resets its degradation).
	inst     nonideal.Instance
	readTime float64
	eff      [][]float64

	// Calibration state (SetCalibration): corrW holds the digitally
	// corrected aggregate weights (bit-slices summed with their 2^(d·K)
	// significance) the calibrated MatVec path reads instead of the
	// per-slice view; calDes/calRaw are fit scratch.
	cal            *calib.Calibrator
	corrW          []float64
	calDes, calRaw []float64
}

// NewArray programs weight matrix w ([out, in]) onto the fabric with
// unverified writes. Use WriteVerify afterwards to refine chosen weights.
// Invalid fabric parameters or a non-matrix weight tensor are reported as
// errors: NewArray is called from builder code (BuildAnalog) that may run
// inside Monte-Carlo workers, where a panic would take down the pool.
func NewArray(cfg Config, w *tensor.Tensor, r *rng.Source) (*Array, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("crossbar: invalid fabric: %w", err)
	}
	if len(w.Shape) != 2 {
		return nil, fmt.Errorf("crossbar: weights must be rank 2, got shape %v", w.Shape)
	}
	out, in := w.Shape[0], w.Shape[1]
	a := &Array{
		cfg: cfg, out: out, in: in,
		scale: quant.ScaleFor(w, cfg.Device.WeightBits),
	}
	a.tiles = ((out + cfg.TileCols - 1) / cfg.TileCols) * ((in + cfg.TileRows - 1) / cfg.TileRows)
	nd := cfg.Device.NumDevices()
	a.conduct = make([][]float64, nd)
	for d := range a.conduct {
		a.conduct[d] = make([]float64, out*in)
	}
	mags, signs := quant.QuantizeInt(w, a.scale, cfg.Device.WeightBits)
	for i, mag := range mags {
		for d, target := range cfg.Device.SliceMagnitude(mag) {
			a.conduct[d][i] = signs[i] * (float64(target) + r.Gauss(0, cfg.Device.Sigma))
		}
	}
	return a, nil
}

// SetNonideal installs a read-time nonideality instance: every subsequent
// MatVec observes the degraded conductances at readTime seconds after
// programming. The device index passed to the instance is weight-major
// within this array (arrayWeight·NumDevices + slice) — array-local, not
// network-global, so an instance shared across the arrays of a multi-layer
// network draws per-device randomness independently per array rather than
// reproducing the mapping layer's global indexing. A nil inst restores
// ideal reads.
func (a *Array) SetNonideal(inst nonideal.Instance, readTime float64) {
	a.inst, a.readTime = inst, readTime
	if inst == nil {
		a.eff = nil
		return
	}
	a.eff = make([][]float64, len(a.conduct))
	for d := range a.conduct {
		a.eff[d] = make([]float64, len(a.conduct[d]))
		for i := range a.conduct[d] {
			a.refreshEff(d, i)
		}
	}
	a.recalibrate()
}

// SetCalibration installs a per-trial calibration instance (package calib):
// every subsequent MatVec reads digitally corrected aggregate weights — the
// calibrator's affine fit of the degraded read-out against the programmed
// (write-time ground truth) conductances, the pairs a hardware probe read at
// t = 0 versus the current read time reveals. The correction refits after
// SetNonideal and after every WriteVerify, so it always reflects the current
// device state. A nil c restores raw reads.
func (a *Array) SetCalibration(c *calib.Calibrator) {
	a.cal = c
	if c == nil {
		a.corrW = nil
		return
	}
	a.recalibrate()
}

// recalibrate refits the correction from the current read view and rebuilds
// the corrected aggregate weights. A no-op without SetCalibration.
func (a *Array) recalibrate() {
	if a.cal == nil {
		return
	}
	n := a.out * a.in
	if a.corrW == nil {
		a.corrW = make([]float64, n)
		a.calDes = make([]float64, n)
		a.calRaw = make([]float64, n)
	}
	read := a.conduct
	if a.eff != nil {
		read = a.eff
	}
	for i := 0; i < n; i++ {
		a.calDes[i], a.calRaw[i] = 0, 0
	}
	for d := range a.conduct {
		weight := math.Pow(2, float64(d*a.cfg.Device.DeviceBits))
		for i, g := range a.conduct[d] {
			a.calDes[i] += weight * g
		}
		for i, g := range read[d] {
			a.calRaw[i] += weight * g
		}
	}
	corr := a.cal.Fit(0, a.calDes, a.calRaw, a.out, a.in)
	for i, v := range a.calRaw {
		a.corrW[i] = corr.Apply(i, v)
	}
}

// refreshEff recomputes the degraded view of one device from its programmed
// conductance.
func (a *Array) refreshEff(d, i int) {
	g, sign := a.conduct[d][i], 1.0
	if g < 0 {
		sign, g = -1, -g
	}
	a.eff[d][i] = sign * a.inst.Apply(i*len(a.conduct)+d, g, a.readTime)
}

// Tiles returns how many physical tiles the matrix occupies.
func (a *Array) Tiles() int { return a.tiles }

// Shape returns (out, in).
func (a *Array) Shape() (int, int) { return a.out, a.in }

// WriteVerify re-programs logical weight (row, col) with the iterative
// write-verify loop and returns the write cycles spent. The desired level of
// each bit-slice is re-derived from the stored value by rounding: with the
// default σ the write noise is far below half a level, so the recovery is
// exact with overwhelming probability.
func (a *Array) WriteVerify(row, col int, r *rng.Source) int {
	i := row*a.in + col
	total := 0
	single := a.cfg.Device
	single.WeightBits = single.DeviceBits // verify one bit-slice at a time
	for d := range a.conduct {
		sign := 1.0
		if a.conduct[d][i] < 0 {
			sign = -1
		}
		target := math.Round(math.Abs(a.conduct[d][i]))
		res, cycles := single.WriteVerify(int(target), r)
		a.conduct[d][i] = sign * (target + res)
		if a.eff != nil {
			a.refreshEff(d, i) // re-degrade from the new programmed state
		}
		total += cycles
	}
	a.recalibrate()
	return total
}

// MatVec computes y = W·x in the analog domain: the DAC quantizes x, every
// device contributes g·v to its column current, and the ADC quantizes the
// result. Reconstruction weighs slice d by 2^(d·K) and rescales by the
// quantization step.
func (a *Array) MatVec(x []float64) []float64 {
	y := make([]float64, a.out)
	a.MatVecInto(y, x, make([]float64, a.in))
	return y
}

// MatVecInto is the allocation-free MatVec: y receives the result (length
// out) and xq is caller-provided scratch for the DAC-quantized input (length
// in). The arithmetic is identical to MatVec.
func (a *Array) MatVecInto(y, x, xq []float64) {
	if len(x) != a.in {
		panic(fmt.Sprintf("crossbar: input length %d, want %d", len(x), a.in))
	}
	if len(y) != a.out || len(xq) != a.in {
		panic(fmt.Sprintf("crossbar: MatVecInto buffers %d/%d, want %d/%d", len(y), len(xq), a.out, a.in))
	}
	a.dacInto(xq, x)
	for o := range y {
		y[o] = 0
	}
	if a.corrW != nil {
		// Calibrated read: the digital correction operates on the ADC-side
		// aggregate, so the calibrated path sums the corrected weights in one
		// pass instead of per bit-slice.
		for o := 0; o < a.out; o++ {
			row := a.corrW[o*a.in : (o+1)*a.in]
			s := 0.0
			for i, v := range xq {
				s += row[i] * v
			}
			y[o] = s * a.scale
		}
		a.adc(y)
		return
	}
	slices := a.conduct
	if a.eff != nil {
		slices = a.eff
	}
	for d := range slices {
		weight := math.Pow(2, float64(d*a.cfg.Device.DeviceBits))
		cd := slices[d]
		for o := 0; o < a.out; o++ {
			row := cd[o*a.in : (o+1)*a.in]
			s := 0.0
			for i, v := range xq {
				s += row[i] * v
			}
			y[o] += weight * s
		}
	}
	for o := range y {
		y[o] *= a.scale
	}
	a.adc(y)
}

// dacInto quantizes the input vector to DACBits uniform levels over its
// range, writing into dst.
func (a *Array) dacInto(dst, x []float64) {
	maxAbs := 0.0
	for _, v := range x {
		if m := math.Abs(v); m > maxAbs {
			maxAbs = m
		}
	}
	if maxAbs == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	levels := float64(int(1)<<a.cfg.DACBits - 1)
	step := maxAbs / levels
	for i, v := range x {
		dst[i] = math.Round(v/step) * step
	}
}

// adc quantizes the output currents to ADCBits uniform levels over range.
func (a *Array) adc(y []float64) []float64 {
	maxAbs := 0.0
	for _, v := range y {
		if m := math.Abs(v); m > maxAbs {
			maxAbs = m
		}
	}
	if maxAbs == 0 {
		return y
	}
	levels := float64(int(1)<<a.cfg.ADCBits - 1)
	step := maxAbs / levels
	for i, v := range y {
		y[i] = math.Round(v/step) * step
	}
	return y
}
