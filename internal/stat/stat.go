// Package stat provides the statistical helpers used by the experiment
// harnesses: streaming mean/variance (Welford), Pearson correlation,
// Spearman rank correlation, quantiles and simple histograms.
package stat

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates mean and variance in a single numerically stable pass.
// The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Merge folds another accumulator into w using the Chan et al. pairwise
// combination: the merged mean and M2 are exactly those of the concatenated
// streams up to rounding, and the update is numerically stable for any split
// sizes. Merging per-chunk accumulators of a partitioned stream in a fixed
// chunk order therefore yields results that do not depend on how the chunks
// were scheduled across workers (package mc relies on this). o is left
// unmodified.
func (w *Welford) Merge(o *Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.mean += d * float64(o.n) / float64(n)
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.n = n
}

// MergeObs folds one observation into w as a singleton Merge — the
// reduction the mc engine applies to per-trial accumulators. Add's
// incremental update computes the same statistics through a different
// rounding sequence, so code that must reproduce an engine fold bit for bit
// (shard merging, trace re-aggregation) uses MergeObs, never Add.
func (w *Welford) MergeObs(x float64) {
	var s Welford
	s.Add(x)
	w.Merge(&s)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// M2 returns the running sum of squared deviations from the mean — the
// accumulator's third sufficient statistic, exposed so aggregates can be
// serialized losslessly (package serialize) and rebuilt with FromMoments.
func (w *Welford) M2() float64 { return w.m2 }

// FromMoments reconstructs an accumulator from its sufficient statistics
// (N, Mean, M2), the exact inverse of reading them off: merging or adding
// onto the result behaves as if the original observations had been
// replayed.
func FromMoments(n int, mean, m2 float64) *Welford {
	return &Welford{n: n, mean: mean, m2: m2}
}

// Mean returns the running mean (0 if empty).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the sample variance (0 if fewer than two observations).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// String formats as "mean ± std", the format used in the paper's Table 1.
func (w *Welford) String() string {
	return fmt.Sprintf("%.2f ± %.2f", w.Mean(), w.Std())
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the sample standard deviation of xs.
func Std(xs []float64) float64 {
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return w.Std()
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It panics if the lengths differ and returns 0 when either series is
// constant (correlation undefined).
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stat: Pearson length mismatch")
	}
	n := len(xs)
	if n < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation between xs and ys: the
// Pearson correlation of the rank vectors, with average ranks for ties.
func Spearman(xs, ys []float64) float64 {
	return Pearson(Ranks(xs), Ranks(ys))
}

// Ranks returns the 1-based fractional ranks of xs (ties share the average
// rank), leaving xs unmodified.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It panics on an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stat: Quantile of empty slice")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Histogram is a fixed-width bin histogram over [Min, Max].
type Histogram struct {
	Min, Max float64
	Counts   []int
	total    int
}

// NewHistogram builds a histogram with n bins spanning [min, max].
func NewHistogram(min, max float64, n int) *Histogram {
	if n <= 0 || max <= min {
		panic("stat: invalid histogram bounds")
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, n)}
}

// Add records one observation; out-of-range values clamp to the edge bins.
func (h *Histogram) Add(x float64) {
	n := len(h.Counts)
	i := int(float64(n) * (x - h.Min) / (h.Max - h.Min))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int { return h.total }

// Fraction returns the fraction of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}
