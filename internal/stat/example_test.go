package stat_test

import (
	"fmt"

	"swim/internal/stat"
)

// Monte-Carlo aggregation as used by every experiment in this repository:
// stream trial results into a Welford accumulator and report mean ± std.
func ExampleWelford() {
	var w stat.Welford
	for _, acc := range []float64{96.2, 95.8, 96.0, 96.4, 95.6} {
		w.Add(acc)
	}
	fmt.Println(w.String())
	// Output: 96.00 ± 0.32
}

// Fig. 1's headline statistic: correlation between a candidate sensitivity
// metric and the observed accuracy drop.
func ExamplePearson() {
	hess := []float64{0.1, 0.5, 0.9, 1.5, 2.0}
	drop := []float64{0.0, 0.2, 0.5, 0.8, 1.1}
	fmt.Printf("%.3f\n", stat.Pearson(hess, drop))
	// Output: 0.998
}
