package stat

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestWelfordMatchesDirect(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if !almost(w.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %v", w.Mean())
	}
	// Sample variance of this classic dataset is 32/7.
	if !almost(w.Var(), 32.0/7.0, 1e-12) {
		t.Fatalf("var = %v", w.Var())
	}
	if w.N() != len(xs) {
		t.Fatalf("n = %d", w.N())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.Std() != 0 {
		t.Fatal("empty Welford should be all zero")
	}
	w.Add(3)
	if w.Mean() != 3 || w.Var() != 0 {
		t.Fatal("single-sample Welford wrong")
	}
}

func TestWelfordNumericalStability(t *testing.T) {
	// Large offset should not destroy the variance estimate.
	var w Welford
	for i := 0; i < 1000; i++ {
		w.Add(1e9 + float64(i%2))
	}
	if !almost(w.Var(), 0.25025, 1e-3) {
		t.Fatalf("var under large offset = %v", w.Var())
	}
}

func TestWelfordMergeMatchesSingleStream(t *testing.T) {
	// Property: for any data and any split point, Add-ing the two halves into
	// separate accumulators and merging equals Add-ing the whole stream, up to
	// floating-point rounding.
	prop := func(seed int64, cut uint8) bool {
		xs := quickSample(seed, 3+int(cut%97))
		k := int(cut) % len(xs)
		var whole, a, b Welford
		for _, x := range xs {
			whole.Add(x)
		}
		for _, x := range xs[:k] {
			a.Add(x)
		}
		for _, x := range xs[k:] {
			b.Add(x)
		}
		a.Merge(&b)
		return a.N() == whole.N() &&
			almost(a.Mean(), whole.Mean(), 1e-9*(1+math.Abs(whole.Mean()))) &&
			almost(a.Var(), whole.Var(), 1e-9*(1+whole.Var()))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMergeEdgeCases(t *testing.T) {
	var a, b Welford
	a.Merge(&b) // empty into empty
	if a.N() != 0 || a.Mean() != 0 {
		t.Fatal("empty merge changed the accumulator")
	}
	b.Add(2)
	b.Add(4)
	a.Merge(&b) // non-empty into empty copies exactly
	if a.N() != 2 || a.Mean() != b.Mean() || a.Var() != b.Var() {
		t.Fatal("merge into empty should copy")
	}
	var empty Welford
	before := a
	a.Merge(&empty) // empty into non-empty is a no-op
	if a != before {
		t.Fatal("merging an empty accumulator changed the result")
	}
	if b.N() != 2 || b.Mean() != 3 {
		t.Fatal("merge modified its argument")
	}
}

func TestWelfordMergeFoldOrderFixedIsDeterministic(t *testing.T) {
	// Folding the same chunk accumulators in the same order must be
	// bit-for-bit reproducible — the invariant the parallel Monte-Carlo
	// engine's schedule independence rests on.
	xs := quickSample(42, 257)
	fold := func() (float64, float64) {
		var total Welford
		for c := 0; c < len(xs); c += 16 {
			hi := c + 16
			if hi > len(xs) {
				hi = len(xs)
			}
			var chunk Welford
			for _, x := range xs[c:hi] {
				chunk.Add(x)
			}
			total.Merge(&chunk)
		}
		return total.Mean(), total.Std()
	}
	m1, s1 := fold()
	m2, s2 := fold()
	if m1 != m2 || s1 != s2 {
		t.Fatal("identical fold produced different bits")
	}
}

// quickSample derives a deterministic pseudo-random sample from a seed
// without pulling in package rng (stat must stay dependency-free).
func quickSample(seed int64, n int) []float64 {
	s := uint64(seed)*0x9e3779b97f4a7c15 + 0x1234
	xs := make([]float64, n)
	for i := range xs {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		xs[i] = 1e3*(float64(s>>11)/(1<<53)) - 500
	}
	return xs
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if r := Pearson(xs, ys); !almost(r, 1, 1e-12) {
		t.Fatalf("r = %v, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if r := Pearson(xs, neg); !almost(r, -1, 1e-12) {
		t.Fatalf("r = %v, want -1", r)
	}
}

func TestPearsonConstantSeries(t *testing.T) {
	if r := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); r != 0 {
		t.Fatalf("constant series should give r=0, got %v", r)
	}
}

func TestPearsonSymmetryAndRange(t *testing.T) {
	if err := quick.Check(func(a, b, c, d, e, f float64) bool {
		xs := []float64{a, b, c}
		ys := []float64{d, e, f}
		for _, v := range append(xs, ys...) {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true // skip degenerate inputs
			}
		}
		r1, r2 := Pearson(xs, ys), Pearson(ys, xs)
		return almost(r1, r2, 1e-9) && r1 >= -1-1e-9 && r1 <= 1+1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := []float64{1, 8, 27, 64, 125, 216} // monotone but nonlinear
	if r := Spearman(xs, ys); !almost(r, 1, 1e-12) {
		t.Fatalf("Spearman of monotone data = %v, want 1", r)
	}
}

func TestRanksTies(t *testing.T) {
	r := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", r, want)
		}
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Fatalf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Fatalf("median = %v", q)
	}
	if q := Quantile(xs, 0.25); q != 2 {
		t.Fatalf("q25 = %v", q)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Quantile mutated input: %v", xs)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i%10) + 0.5)
	}
	for i := 0; i < 10; i++ {
		if h.Counts[i] != 10 {
			t.Fatalf("bin %d = %d, want 10", i, h.Counts[i])
		}
		if !almost(h.Fraction(i), 0.1, 1e-12) {
			t.Fatalf("fraction %d = %v", i, h.Fraction(i))
		}
	}
	h.Add(-5) // clamps low
	h.Add(99) // clamps high
	if h.Counts[0] != 11 || h.Counts[9] != 11 {
		t.Fatal("out-of-range values did not clamp to edge bins")
	}
	if h.Total() != 102 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestMeanStd(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if !almost(Mean([]float64{1, 2, 3}), 2, 1e-12) {
		t.Fatal("Mean wrong")
	}
	if !almost(Std([]float64{2, 4, 4, 4, 5, 5, 7, 9}), math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatal("Std wrong")
	}
}
