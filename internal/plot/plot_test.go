package plot

import (
	"strings"
	"testing"
)

func TestRenderBasicChart(t *testing.T) {
	c := Chart{
		Title: "accuracy vs NWC", XLabel: "NWC", YLabel: "acc",
		Width: 40, Height: 10,
		Series: []Series{
			{Name: "swim", X: []float64{0, 0.5, 1}, Y: []float64{90, 95, 96}},
			{Name: "random", X: []float64{0, 0.5, 1}, Y: []float64{90, 92, 96}},
		},
	}
	out := c.Render()
	for _, want := range []string{"accuracy vs NWC", "* swim", "o random", "legend"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + height rows + axis + x labels + xy label line + legend.
	if len(lines) != 1+10+1+1+1+1 {
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestRenderErrorBands(t *testing.T) {
	c := Chart{
		Width: 30, Height: 12,
		Series: []Series{{
			Name: "s", X: []float64{0, 1}, Y: []float64{50, 60}, Err: []float64{5, 5},
		}},
	}
	out := c.Render()
	if !strings.Contains(out, ":") {
		t.Fatalf("error band glyph missing:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	c := Chart{Title: "t"}
	if out := c.Render(); !strings.Contains(out, "empty chart") {
		t.Fatalf("empty chart not handled: %q", out)
	}
}

func TestRenderConstantSeries(t *testing.T) {
	c := Chart{
		Width: 20, Height: 6,
		Series: []Series{{Name: "flat", X: []float64{0, 1, 2}, Y: []float64{5, 5, 5}}},
	}
	out := c.Render() // must not divide by zero
	if !strings.Contains(out, "*") {
		t.Fatalf("points missing:\n%s", out)
	}
}

func TestScatterHasNoConnectingDots(t *testing.T) {
	out := Scatter("fig1", "h", "drop", []float64{0, 1, 2, 3}, []float64{0, 3, 1, 2}, 30, 10)
	// Points render as '*'; the interior must not contain line dots. The
	// axis labels legitimately contain '.', so inspect only plot rows.
	for _, line := range strings.Split(out, "\n") {
		if i := strings.IndexByte(line, '|'); i >= 0 {
			if strings.Contains(line[i:], ".") {
				t.Fatalf("scatter drew connecting line:\n%s", out)
			}
		}
	}
	if !strings.Contains(out, "*") {
		t.Fatalf("scatter points missing:\n%s", out)
	}
}

func TestMarkersStayInBounds(t *testing.T) {
	// Extreme values must clamp, not panic.
	c := Chart{
		Width: 10, Height: 4,
		Series: []Series{{Name: "s", X: []float64{0, 1e9}, Y: []float64{-1e9, 1e9}}},
	}
	_ = c.Render()
}
