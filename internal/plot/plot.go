// Package plot renders the paper's figures as ASCII charts so that the
// cmd/ binaries and the benchmark harness can regenerate Fig. 1 and Fig. 2
// as actual pictures, not just tables, in any terminal or log file.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	X, Y []float64
	// Err, when non-nil, draws a ±Err band marker at each point (the shaded
	// std regions of the paper's Fig. 2).
	Err []float64
}

// Chart is an ASCII line chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot area columns (default 60)
	Height int // plot area rows (default 18)
	// NoLines suppresses the connecting segments (scatter mode, Fig. 1).
	NoLines bool
	Series  []Series
}

// markers cycles through per-series point glyphs.
var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Render draws the chart.
func (c *Chart) Render() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 60
	}
	if h <= 0 {
		h = 18
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			lo, hi := s.Y[i], s.Y[i]
			if s.Err != nil {
				lo -= s.Err[i]
				hi += s.Err[i]
			}
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, lo)
			maxY = math.Max(maxY, hi)
		}
	}
	if math.IsInf(minX, 1) {
		return c.Title + "\n(empty chart)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	// A little headroom.
	pad := (maxY - minY) * 0.05
	minY -= pad
	maxY += pad

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	col := func(x float64) int {
		p := int(math.Round((x - minX) / (maxX - minX) * float64(w-1)))
		return clamp(p, 0, w-1)
	}
	row := func(y float64) int {
		p := int(math.Round((maxY - y) / (maxY - minY) * float64(h-1)))
		return clamp(p, 0, h-1)
	}

	for si, s := range c.Series {
		mark := markers[si%len(markers)]
		// Error bands first so points overwrite them.
		if s.Err != nil {
			for i := range s.X {
				cx := col(s.X[i])
				top, bot := row(s.Y[i]+s.Err[i]), row(s.Y[i]-s.Err[i])
				for r := top; r <= bot; r++ {
					if grid[r][cx] == ' ' {
						grid[r][cx] = ':'
					}
				}
			}
		}
		if !c.NoLines {
			for i := 0; i+1 < len(s.X); i++ {
				x0, y0 := col(s.X[i]), row(s.Y[i])
				x1, y1 := col(s.X[i+1]), row(s.Y[i+1])
				drawLine(grid, x0, y0, x1, y1, '.')
			}
		}
		for i := range s.X {
			grid[row(s.Y[i])][col(s.X[i])] = mark
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	yTop := fmt.Sprintf("%.1f", maxY)
	yBot := fmt.Sprintf("%.1f", minY)
	margin := len(yTop)
	if len(yBot) > margin {
		margin = len(yBot)
	}
	for r := 0; r < h; r++ {
		label := strings.Repeat(" ", margin)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", margin, yTop)
		case h - 1:
			label = fmt.Sprintf("%*s", margin, yBot)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", margin), strings.Repeat("-", w))
	fmt.Fprintf(&b, "%s  %-*.*g%*s\n", strings.Repeat(" ", margin), 8, 3, minX, w-8, fmt.Sprintf("%.3g", maxX))
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s   y: %s\n", strings.Repeat(" ", margin), c.XLabel, c.YLabel)
	}
	var legend []string
	for si, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	fmt.Fprintf(&b, "%s  legend: %s\n", strings.Repeat(" ", margin), strings.Join(legend, "   "))
	return b.String()
}

func drawLine(grid [][]byte, x0, y0, x1, y1 int, ch byte) {
	dx, dy := abs(x1-x0), -abs(y1-y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		if grid[y0][x0] == ' ' || grid[y0][x0] == ':' {
			grid[y0][x0] = ch
		}
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Scatter renders a scatter chart (Fig. 1 style): points only, no lines.
func Scatter(title, xLabel, yLabel string, xs, ys []float64, width, height int) string {
	c := Chart{
		Title: title, XLabel: xLabel, YLabel: yLabel,
		Width: width, Height: height, NoLines: true,
		Series: []Series{{Name: "samples", X: xs, Y: ys}},
	}
	return c.Render()
}
