// Package mc runs the Monte-Carlo trials behind every number the paper
// reports ("all results ... are obtained over 3,000 Monte Carlo runs ... and
// both mean and standard deviation are reported"). Each trial receives an
// independent child RNG stream split from the experiment seed, so results
// are reproducible regardless of trial count.
//
// # Parallel execution
//
// Trials are embarrassingly parallel: one trial programs one simulated device
// instance and never touches another trial's state. The engine pre-splits one
// child stream per trial with rng.Source.SplitN, fans the trials out over a
// worker pool (SWIM_WORKERS / -workers / runtime.NumCPU), and keeps one
// stat.Welford accumulator per trial, folding them together afterwards with
// Welford.Merge in trial order.
//
// Determinism contract: the trial streams depend only on (seed, trials), and
// the merge order depends only on the trial indices — never on which worker
// ran which trial or when it finished. Means and standard deviations are
// therefore bit-for-bit identical for every worker count, including 1 (the
// serial path). Note that per-worker accumulators merged in completion order
// would NOT have this property; per-trial accumulators merged in index order
// are what makes the reduction schedule-independent.
//
// For multi-tenant callers (the serving daemon), a run can additionally
// carry a cooperative worker cap — a Gate consulted between trials — so
// concurrent runs split the machine instead of each claiming every CPU
// (RunSeriesGate, MapGate). The same contract makes gates result-neutral.
package mc

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"swim/internal/rng"
	"swim/internal/stat"
)

// Trials returns the Monte-Carlo trial count: def unless the SWIM_MC
// environment variable overrides it. The paper uses 3,000; the defaults here
// are sized for a single-core machine and the harness always reports the
// std so the precision of the mean is visible.
func Trials(def int) int {
	if v := os.Getenv("SWIM_MC"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// EvalSize returns the evaluation-set size: def unless SWIM_EVAL overrides.
func EvalSize(def int) int {
	if v := os.Getenv("SWIM_EVAL"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// Fast reports whether SWIM_FAST is set, asking harnesses to shrink
// everything (used by CI-style runs of the benchmark suite).
func Fast() bool { return os.Getenv("SWIM_FAST") != "" }

// forcedWorkers, when positive, overrides SWIM_WORKERS and runtime.NumCPU.
// The cmd binaries set it from their -workers flag.
var forcedWorkers atomic.Int64

// SetWorkers pins the default worker count used by Run, RunSeries and Map.
// n <= 0 restores the SWIM_WORKERS / runtime.NumCPU default.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	forcedWorkers.Store(int64(n))
}

// Workers returns the default Monte-Carlo worker count: SetWorkers if pinned,
// else the SWIM_WORKERS environment variable, else runtime.NumCPU.
func Workers() int {
	if n := int(forcedWorkers.Load()); n > 0 {
		return n
	}
	if v := os.Getenv("SWIM_WORKERS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return runtime.NumCPU()
}

// Gate is a cooperative per-run worker cap. The engine consults it between
// trials: at any moment only the first Limit() of a run's worker goroutines
// pick up new trials; the rest idle until the returned channel signals a
// limit change. A serving layer hands each concurrent job a Gate backed by a
// fair-share budgeter, so jobs split the machine instead of each grabbing
// every CPU (the process-global mc.SetWorkers cannot express that).
//
// Gates never affect results: trial streams and the trial-order merge are
// schedule-independent, so any Limit sequence yields bit-identical output.
type Gate interface {
	// Limit returns how many of the run's workers may process trials right
	// now (values below 1 act as 1), plus a channel that is closed when the
	// limit next changes so idled workers wake without polling.
	Limit() (int, <-chan struct{})
}

// Observer is an optional extension of Gate: a gate that also implements
// Observer receives out-of-band engine events. All methods are observe-only —
// the engine calls them after the fact and ignores any effect they might
// have, so an Observer can never perturb trial order, RNG streams, or
// results. Implementations must be safe for concurrent use and should be
// cheap (atomic counter updates); they run on worker goroutines.
type Observer interface {
	// TrialDone reports that trial t (absolute index within the run's trial
	// space) completed successfully. Calls may arrive out of trial order, but
	// all of them happen before the run returns.
	TrialDone(t int)
	// WorkerParked reports that a worker goroutine started blocking on the
	// gate (its index reached the admission limit).
	WorkerParked()
	// WorkerWoke reports that a previously parked worker resumed (admitted,
	// drained, or cancelled). Parks and wakes are balanced per run.
	WorkerWoke()
}

// awaitGate blocks worker w until the gate admits it (w < Limit), the feed
// channel is drained (parked workers must not deadlock run teardown — they
// proceed to observe the closed channel and exit), or the run context is
// cancelled. It reports whether the worker should proceed to the feed. A
// non-nil obsv is notified when the worker parks and again when it wakes.
func awaitGate(ctx context.Context, w int, gate Gate, drained <-chan struct{}, obsv Observer) bool {
	parked := false
	defer func() {
		if parked && obsv != nil {
			obsv.WorkerWoke()
		}
	}()
	for {
		limit, changed := gate.Limit()
		if limit < 1 {
			limit = 1
		}
		if w < limit {
			return true
		}
		if !parked && obsv != nil {
			parked = true
			obsv.WorkerParked()
		}
		select {
		case <-changed:
		case <-drained:
			return true
		case <-ctx.Done():
			return false
		}
	}
}

// trialFn evaluates one trial from its pre-split stream. agg holds the
// trial's point accumulators (len points; nil when the caller aggregates
// nothing). A non-nil error aborts the whole run.
type trialFn func(t int, r *rng.Source, agg []*stat.Welford) error

func newAgg(points int) []*stat.Welford {
	agg := make([]*stat.Welford, points)
	for i := range agg {
		agg[i] = &stat.Welford{}
	}
	return agg
}

// runTrials is the engine shared by Run, RunSeries and Map: it executes the
// full trial range and folds the per-trial accumulators in trial order (see
// the package comment for why this — and not per-worker folding — keeps
// results worker-count invariant). A non-nil gate cooperatively caps how
// many of the workers are active at once; workers is the ceiling the gate
// can admit up to.
func runTrials(ctx context.Context, seed uint64, trials, points, workers int, gate Gate, trial trialFn) ([]*stat.Welford, error) {
	perTrial, err := runTrialRange(ctx, seed, trials, 0, trials, points, workers, gate, trial)
	if err != nil {
		return nil, err
	}
	out := newAgg(points)
	// No trial errored and the parent context is live, so every trial ran to
	// completion. Fold in trial order.
	for _, agg := range perTrial {
		for i := range out {
			out[i].Merge(agg[i])
		}
	}
	return out, nil
}

// runTrialRange pre-splits one stream per trial of the full (seed, trials)
// space, executes only the trials in [lo, hi) on workers goroutines, and
// returns their accumulators in trial order (index t-lo). Trial t's stream
// depends only on (seed, trials, t) — never on the range boundaries — which
// is what lets a distributed coordinator partition the trial space across
// machines and still merge bit-identical aggregates.
func runTrialRange(ctx context.Context, seed uint64, trials, lo, hi, points, workers int, gate Gate, trial trialFn) ([][]*stat.Welford, error) {
	if trials < 0 {
		return nil, fmt.Errorf("mc: negative trial count %d", trials)
	}
	if lo < 0 || hi > trials || lo > hi {
		return nil, fmt.Errorf("mc: trial range [%d,%d) outside [0,%d)", lo, hi, trials)
	}
	count := hi - lo
	if workers <= 0 {
		workers = Workers()
	}
	if workers > count {
		workers = count
	}
	if count == 0 {
		return nil, ctx.Err()
	}

	streams := rng.New(seed).SplitN(trials)
	perTrial := make([][]*stat.Welford, count)
	errs := make([]error, count)
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// A gate that also implements Observer receives per-trial completion and
	// park/wake events. Strictly observe-only: the engine never reads anything
	// back, so results stay bit-identical with or without an observer.
	obsv, _ := gate.(Observer)

	next := make(chan int)
	drained := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				// Re-check admission before every trial: a fair-share gate
				// shrinks when other jobs arrive, and surplus workers must
				// yield the CPU between trials, not mid-trial.
				if gate != nil && !awaitGate(runCtx, w, gate, drained, obsv) {
					return
				}
				t, ok := <-next
				if !ok {
					return
				}
				if runCtx.Err() != nil {
					return
				}
				agg := newAgg(points)
				if err := safeTrial(trial, t, streams[t], agg); err != nil {
					errs[t-lo] = err
					cancel()
					return
				}
				perTrial[t-lo] = agg
				if obsv != nil {
					obsv.TrialDone(t)
				}
			}
		}(w)
	}
feed:
	for t := lo; t < hi; t++ {
		select {
		case next <- t:
		case <-runCtx.Done():
			break feed
		}
	}
	close(next)
	close(drained)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return perTrial, nil
}

// safeTrial runs one trial, converting a panic in the trial body into an
// error. Trials execute on worker goroutines, where an unrecovered panic
// would kill the whole process and bypass the caller's deferred cleanup;
// surfacing it through the error path keeps long sweeps failing cleanly.
func safeTrial(trial trialFn, t int, r *rng.Source, agg []*stat.Welford) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("mc: trial %d panicked: %v", t, p)
		}
	}()
	return trial(t, r, agg)
}

// Run executes trials Monte-Carlo trials of f, each with an independent
// stream split from seed, and returns the aggregated statistics of the
// returned metric. Trials run on Workers() goroutines; the aggregate is
// bit-for-bit independent of the worker count.
func Run(seed uint64, trials int, f func(r *rng.Source) float64) *stat.Welford {
	w, err := RunCtx(context.Background(), seed, trials, 0, f)
	if err != nil {
		// Unreachable: a scalar trial cannot mismatch and the background
		// context cannot be cancelled.
		panic(err)
	}
	return w
}

// RunCtx is Run with an explicit context and worker count (0 = Workers()).
// It returns the context's error if the run is cancelled mid-flight.
func RunCtx(ctx context.Context, seed uint64, trials, workers int, f func(r *rng.Source) float64) (*stat.Welford, error) {
	agg, err := runTrials(ctx, seed, trials, 1, workers, nil, func(t int, r *rng.Source, agg []*stat.Welford) error {
		agg[0].Add(f(r))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return agg[0], nil
}

// RunSeries executes trials Monte-Carlo trials of f, where each trial
// returns one value per series point (e.g. accuracy at every NWC grid
// value), and aggregates each point separately. All points within a trial
// share the trial's stream, mirroring the paper's protocol in which one
// Monte-Carlo run programs one device instance and measures the whole
// sweep on it.
//
// A trial returning the wrong number of values aborts the run with a
// descriptive error (long sweeps must not panic mid-experiment).
func RunSeries(seed uint64, trials, points int, f func(r *rng.Source) []float64) ([]*stat.Welford, error) {
	return RunSeriesCtx(context.Background(), seed, trials, points, 0, f)
}

// RunSeriesCtx is RunSeries with an explicit context and worker count
// (0 = Workers()). Cancelling the context aborts outstanding trials and
// returns the context's error.
func RunSeriesCtx(ctx context.Context, seed uint64, trials, points, workers int, f func(r *rng.Source) []float64) ([]*stat.Welford, error) {
	return RunSeriesGate(ctx, seed, trials, points, workers, nil, f)
}

// RunSeriesGate is RunSeriesCtx with a cooperative worker Gate: up to workers
// goroutines are spawned, but only Gate.Limit() of them pick up trials at any
// moment (nil gate = no cap). Results are bit-identical whatever the gate
// does — see the Gate contract.
func RunSeriesGate(ctx context.Context, seed uint64, trials, points, workers int, gate Gate, f func(r *rng.Source) []float64) ([]*stat.Welford, error) {
	if points < 0 {
		return nil, fmt.Errorf("mc: negative series length %d", points)
	}
	return runTrials(ctx, seed, trials, points, workers, gate, func(t int, r *rng.Source, agg []*stat.Welford) error {
		vals := f(r)
		if len(vals) != points {
			return fmt.Errorf("mc: trial %d returned %d series values, want %d", t, len(vals), points)
		}
		for i, v := range vals {
			agg[i].Add(v)
		}
		return nil
	})
}

// Map evaluates f(i, stream_i) for i in [0, n) on Workers() goroutines and
// returns the results in index order. Each item owns an independent pre-split
// stream, so the output is deterministic in seed and independent of the
// worker count — the parallel-map counterpart of Run for experiments that
// need per-item results rather than an aggregate (e.g. Fig. 1's per-weight
// perturbation study).
func Map[T any](seed uint64, n int, f func(i int, r *rng.Source) T) []T {
	out, err := MapCtx(context.Background(), seed, n, 0, f)
	if err != nil {
		panic(err) // unreachable: background context, no trial errors
	}
	return out
}

// MapCtx is Map with an explicit context and worker count (0 = Workers()).
func MapCtx[T any](ctx context.Context, seed uint64, n, workers int, f func(i int, r *rng.Source) T) ([]T, error) {
	return MapGate(ctx, seed, n, workers, nil, f)
}

// MapGate is MapCtx with a cooperative worker Gate (see RunSeriesGate).
func MapGate[T any](ctx context.Context, seed uint64, n, workers int, gate Gate, f func(i int, r *rng.Source) T) ([]T, error) {
	out := make([]T, n)
	_, err := runTrials(ctx, seed, n, 0, workers, gate, func(t int, r *rng.Source, _ []*stat.Welford) error {
		out[t] = f(t, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunSeriesShard executes only the trial range [lo, hi) of the full
// (seed, trials) series run and returns the raw per-trial series values in
// trial order: rows[t-lo][i] is trial t's i-th series value. Trial streams
// depend only on (seed, trials, t), never on the range boundaries, so the
// rows of any partition of [0, trials), concatenated in trial order and
// folded with FoldSeriesRows, reproduce RunSeriesGate's aggregates bit for
// bit — the primitive behind distributed trial-range sharding: each shard
// is a serializable slice of per-trial observations (singleton Welford
// moments), and the coordinator replays the engine's exact reduction.
func RunSeriesShard(ctx context.Context, seed uint64, trials, lo, hi, points, workers int, gate Gate, f func(r *rng.Source) []float64) ([][]float64, error) {
	if points < 0 {
		return nil, fmt.Errorf("mc: negative series length %d", points)
	}
	if lo < 0 || hi > trials || lo > hi {
		return nil, fmt.Errorf("mc: trial range [%d,%d) outside [0,%d)", lo, hi, trials)
	}
	rows := make([][]float64, hi-lo)
	_, err := runTrialRange(ctx, seed, trials, lo, hi, 0, workers, gate, func(t int, r *rng.Source, _ []*stat.Welford) error {
		vals := f(r)
		if len(vals) != points {
			return fmt.Errorf("mc: trial %d returned %d series values, want %d", t, len(vals), points)
		}
		rows[t-lo] = vals
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FoldSeriesRows folds per-trial series rows — a full trial space's rows
// concatenated in trial order — into per-point aggregates, using the same
// reduction the engine applies (a singleton Merge per trial, never Add), so
// the result is bit-identical to the RunSeriesGate aggregates of the run
// the rows came from. Every row must have exactly points values.
func FoldSeriesRows(points int, rows [][]float64) ([]*stat.Welford, error) {
	out := newAgg(points)
	for t, row := range rows {
		if len(row) != points {
			return nil, fmt.Errorf("mc: row %d has %d series values, want %d", t, len(row), points)
		}
		for i, v := range row {
			out[i].MergeObs(v)
		}
	}
	return out, nil
}
