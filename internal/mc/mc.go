// Package mc runs the Monte-Carlo trials behind every number the paper
// reports ("all results ... are obtained over 3,000 Monte Carlo runs ... and
// both mean and standard deviation are reported"). Each trial receives an
// independent child RNG stream split from the experiment seed, so results
// are reproducible regardless of trial count.
package mc

import (
	"os"
	"strconv"

	"swim/internal/rng"
	"swim/internal/stat"
)

// Trials returns the Monte-Carlo trial count: def unless the SWIM_MC
// environment variable overrides it. The paper uses 3,000; the defaults here
// are sized for a single-core machine and the harness always reports the
// std so the precision of the mean is visible.
func Trials(def int) int {
	if v := os.Getenv("SWIM_MC"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// EvalSize returns the evaluation-set size: def unless SWIM_EVAL overrides.
func EvalSize(def int) int {
	if v := os.Getenv("SWIM_EVAL"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// Fast reports whether SWIM_FAST is set, asking harnesses to shrink
// everything (used by CI-style runs of the benchmark suite).
func Fast() bool { return os.Getenv("SWIM_FAST") != "" }

// Run executes trials Monte-Carlo trials of f, each with an independent
// stream split from seed, and returns the aggregated statistics of the
// returned metric.
func Run(seed uint64, trials int, f func(r *rng.Source) float64) *stat.Welford {
	base := rng.New(seed)
	var w stat.Welford
	for t := 0; t < trials; t++ {
		w.Add(f(base.Split()))
	}
	return &w
}

// RunSeries executes trials Monte-Carlo trials of f, where each trial
// returns one value per series point (e.g. accuracy at every NWC grid
// value), and aggregates each point separately. All points within a trial
// share the trial's stream, mirroring the paper's protocol in which one
// Monte-Carlo run programs one device instance and measures the whole
// sweep on it.
func RunSeries(seed uint64, trials, points int, f func(r *rng.Source) []float64) []*stat.Welford {
	base := rng.New(seed)
	agg := make([]*stat.Welford, points)
	for i := range agg {
		agg[i] = &stat.Welford{}
	}
	for t := 0; t < trials; t++ {
		vals := f(base.Split())
		if len(vals) != points {
			panic("mc: series length mismatch")
		}
		for i, v := range vals {
			agg[i].Add(v)
		}
	}
	return agg
}
