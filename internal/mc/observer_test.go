package mc

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"swim/internal/rng"
)

// obsGate wraps a Gate with Observer bookkeeping for tests.
type obsGate struct {
	Gate
	mu     sync.Mutex
	trials map[int]int
	parks  atomic.Int64
	wakes  atomic.Int64
}

func newObsGate(inner Gate) *obsGate {
	return &obsGate{Gate: inner, trials: make(map[int]int)}
}

func (g *obsGate) TrialDone(t int) {
	g.mu.Lock()
	g.trials[t]++
	g.mu.Unlock()
}

func (g *obsGate) WorkerParked() { g.parks.Add(1) }
func (g *obsGate) WorkerWoke()   { g.wakes.Add(1) }

// TestObserverEvents pins the Observer contract: every trial reports exactly
// one TrialDone before the run returns, parks balance wakes, and the
// observed run's aggregates are bit-identical to an unobserved serial run.
func TestObserverEvents(t *testing.T) {
	const trials = 25
	f := func(r *rng.Source) []float64 {
		return []float64{r.Norm(), r.Float64()}
	}
	serial, err := RunSeriesCtx(context.Background(), 91, trials, 2, 1, f)
	if err != nil {
		t.Fatal(err)
	}
	g := newObsGate(newFlappyGate(4))
	observed, err := RunSeriesGate(context.Background(), 91, trials, 2, 4, g, f)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i].Mean() != observed[i].Mean() || serial[i].Std() != observed[i].Std() {
			t.Fatalf("point %d: observed run diverged from serial", i)
		}
	}
	if len(g.trials) != trials {
		t.Fatalf("TrialDone covered %d distinct trials, want %d", len(g.trials), trials)
	}
	for tr, n := range g.trials {
		if n != 1 {
			t.Fatalf("trial %d reported done %d times, want 1", tr, n)
		}
	}
	if g.parks.Load() != g.wakes.Load() {
		t.Fatalf("parks (%d) != wakes (%d)", g.parks.Load(), g.wakes.Load())
	}
}

// TestObserverShardOffsets: TrialDone reports absolute trial indices even on
// a sub-range run, matching the coordinator's trial accounting.
func TestObserverShardOffsets(t *testing.T) {
	g := newObsGate(&fixedGate{limit: 2, ch: make(chan struct{})})
	_, err := RunSeriesShard(context.Background(), 7, 10, 4, 7, 1, 2, g,
		func(r *rng.Source) []float64 { return []float64{r.Float64()} })
	if err != nil {
		t.Fatal(err)
	}
	if len(g.trials) != 3 {
		t.Fatalf("shard [4,7) reported %d trials, want 3", len(g.trials))
	}
	for tr := 4; tr < 7; tr++ {
		if g.trials[tr] != 1 {
			t.Fatalf("absolute trial %d not reported exactly once: %v", tr, g.trials)
		}
	}
}
