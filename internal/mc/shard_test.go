package mc

import (
	"context"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"swim/internal/rng"
)

// randomPartition cuts [0, n) into contiguous non-empty ranges at random
// boundaries (r drives the cut count and positions).
func randomPartition(r *rand.Rand, n int) [][2]int {
	cuts := map[int]bool{0: true, n: true}
	for i := 0; i < r.Intn(n); i++ {
		cuts[1+r.Intn(n-1)] = true
	}
	var bounds []int
	for b := range cuts {
		bounds = append(bounds, b)
	}
	// insertion sort: tiny slices, no extra imports
	for i := 1; i < len(bounds); i++ {
		for j := i; j > 0 && bounds[j] < bounds[j-1]; j-- {
			bounds[j], bounds[j-1] = bounds[j-1], bounds[j]
		}
	}
	var parts [][2]int
	for i := 1; i < len(bounds); i++ {
		parts = append(parts, [2]int{bounds[i-1], bounds[i]})
	}
	return parts
}

// The distributed-execution contract at the engine layer: the rows of ANY
// contiguous partition of the trial space, computed at any worker counts,
// fold back into the exact bits the single-node gated path produces.
func TestRunSeriesShardPartitionBitIdentity(t *testing.T) {
	const seed, trials, points = 91, 57, 3
	f := func(r *rng.Source) []float64 {
		return []float64{r.Float64(), r.Gauss(2, 3), r.Norm() * r.Norm()}
	}
	want, err := RunSeriesGate(context.Background(), seed, trials, points, 1, nil, f)
	if err != nil {
		t.Fatal(err)
	}

	r := rand.New(rand.NewSource(7))
	for round := 0; round < 5; round++ {
		parts := randomPartition(r, trials)
		rows := make([][]float64, 0, trials)
		for i, p := range parts {
			workers := 1
			if i%2 == 1 {
				workers = runtime.NumCPU()
			}
			part, err := RunSeriesShard(context.Background(), seed, trials, p[0], p[1], points, workers, nil, f)
			if err != nil {
				t.Fatal(err)
			}
			if len(part) != p[1]-p[0] {
				t.Fatalf("round %d: shard [%d,%d) returned %d rows", round, p[0], p[1], len(part))
			}
			rows = append(rows, part...)
		}
		got, err := FoldSeriesRows(points, rows)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i].Mean() != want[i].Mean() || got[i].Std() != want[i].Std() || got[i].N() != want[i].N() {
				t.Fatalf("round %d (%d parts) point %d: (%v, %v, n=%d) != single-node (%v, %v, n=%d)",
					round, len(parts), i, got[i].Mean(), got[i].Std(), got[i].N(),
					want[i].Mean(), want[i].Std(), want[i].N())
			}
		}
	}
}

// Recomputing the same range must reproduce the same rows bit for bit —
// what makes coordinator-side retry/reassignment safe.
func TestRunSeriesShardRecomputeBitIdentity(t *testing.T) {
	f := func(r *rng.Source) []float64 { return []float64{r.Gauss(0, 1), r.Float64()} }
	a, err := RunSeriesShard(context.Background(), 5, 40, 11, 29, 2, 1, nil, f)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSeriesShard(context.Background(), 5, 40, 11, 29, 2, runtime.NumCPU(), nil, f)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("row %d value %d: %v != %v", i, j, a[i][j], b[i][j])
			}
		}
	}
}

func TestRunSeriesShardValidation(t *testing.T) {
	f := func(r *rng.Source) []float64 { return []float64{1} }
	for _, c := range [][2]int{{-1, 3}, {4, 2}, {0, 11}} {
		if _, err := RunSeriesShard(context.Background(), 1, 10, c[0], c[1], 1, 1, nil, f); err == nil {
			t.Errorf("range [%d,%d) of 10 trials accepted", c[0], c[1])
		}
	}
	// The empty range is a degenerate but valid shard: zero rows.
	if rows, err := RunSeriesShard(context.Background(), 1, 10, 3, 3, 1, 1, nil, f); err != nil || len(rows) != 0 {
		t.Errorf("empty range: rows=%d err=%v", len(rows), err)
	}
	if _, err := FoldSeriesRows(2, [][]float64{{1, 2}, {3}}); err == nil || !strings.Contains(err.Error(), "want 2") {
		t.Errorf("short row accepted: %v", err)
	}
}
