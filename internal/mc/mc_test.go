package mc

import (
	"math"
	"os"
	"testing"

	"swim/internal/rng"
)

func TestTrialsDefaultAndOverride(t *testing.T) {
	os.Unsetenv("SWIM_MC")
	if Trials(7) != 7 {
		t.Fatal("default not honoured")
	}
	os.Setenv("SWIM_MC", "42")
	defer os.Unsetenv("SWIM_MC")
	if Trials(7) != 42 {
		t.Fatal("override not honoured")
	}
	os.Setenv("SWIM_MC", "bogus")
	if Trials(7) != 7 {
		t.Fatal("bogus override should fall back to default")
	}
}

func TestEvalSize(t *testing.T) {
	os.Unsetenv("SWIM_EVAL")
	if EvalSize(300) != 300 {
		t.Fatal("default not honoured")
	}
	os.Setenv("SWIM_EVAL", "123")
	defer os.Unsetenv("SWIM_EVAL")
	if EvalSize(300) != 123 {
		t.Fatal("override not honoured")
	}
}

func TestFast(t *testing.T) {
	os.Unsetenv("SWIM_FAST")
	if Fast() {
		t.Fatal("fast without env")
	}
	os.Setenv("SWIM_FAST", "1")
	defer os.Unsetenv("SWIM_FAST")
	if !Fast() {
		t.Fatal("fast not detected")
	}
}

func TestRunAggregates(t *testing.T) {
	w := Run(1, 2000, func(r *rng.Source) float64 { return r.Gauss(5, 1) })
	if w.N() != 2000 {
		t.Fatalf("n = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 0.1 || math.Abs(w.Std()-1) > 0.1 {
		t.Fatalf("mean=%.3f std=%.3f", w.Mean(), w.Std())
	}
}

func TestRunDeterministicInSeed(t *testing.T) {
	f := func(r *rng.Source) float64 { return r.Float64() }
	a := Run(9, 50, f)
	b := Run(9, 50, f)
	if a.Mean() != b.Mean() {
		t.Fatal("same seed gave different aggregate")
	}
	c := Run(10, 50, f)
	if a.Mean() == c.Mean() {
		t.Fatal("different seed gave identical aggregate")
	}
}

func TestRunSeries(t *testing.T) {
	agg := RunSeries(3, 100, 3, func(r *rng.Source) []float64 {
		return []float64{1, r.Float64(), 10}
	})
	if agg[0].Mean() != 1 || agg[2].Mean() != 10 {
		t.Fatal("constant series points wrong")
	}
	if agg[1].Mean() < 0.3 || agg[1].Mean() > 0.7 {
		t.Fatalf("uniform point mean = %v", agg[1].Mean())
	}
	if agg[0].N() != 100 {
		t.Fatalf("n = %d", agg[0].N())
	}
}

func TestRunSeriesLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch not caught")
		}
	}()
	RunSeries(1, 2, 3, func(r *rng.Source) []float64 { return []float64{1} })
}
