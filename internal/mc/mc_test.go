package mc

import (
	"context"
	"errors"
	"math"
	"os"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"swim/internal/rng"
)

func TestTrialsDefaultAndOverride(t *testing.T) {
	os.Unsetenv("SWIM_MC")
	if Trials(7) != 7 {
		t.Fatal("default not honoured")
	}
	os.Setenv("SWIM_MC", "42")
	defer os.Unsetenv("SWIM_MC")
	if Trials(7) != 42 {
		t.Fatal("override not honoured")
	}
	os.Setenv("SWIM_MC", "bogus")
	if Trials(7) != 7 {
		t.Fatal("bogus override should fall back to default")
	}
}

func TestEvalSize(t *testing.T) {
	os.Unsetenv("SWIM_EVAL")
	if EvalSize(300) != 300 {
		t.Fatal("default not honoured")
	}
	os.Setenv("SWIM_EVAL", "123")
	defer os.Unsetenv("SWIM_EVAL")
	if EvalSize(300) != 123 {
		t.Fatal("override not honoured")
	}
}

func TestFast(t *testing.T) {
	os.Unsetenv("SWIM_FAST")
	if Fast() {
		t.Fatal("fast without env")
	}
	os.Setenv("SWIM_FAST", "1")
	defer os.Unsetenv("SWIM_FAST")
	if !Fast() {
		t.Fatal("fast not detected")
	}
}

func TestWorkersEnvAndOverride(t *testing.T) {
	os.Unsetenv("SWIM_WORKERS")
	SetWorkers(0)
	if Workers() != runtime.NumCPU() {
		t.Fatalf("default workers = %d, want NumCPU %d", Workers(), runtime.NumCPU())
	}
	t.Setenv("SWIM_WORKERS", "3")
	if Workers() != 3 {
		t.Fatalf("SWIM_WORKERS not honoured: %d", Workers())
	}
	SetWorkers(5)
	if Workers() != 5 {
		t.Fatalf("SetWorkers not honoured: %d", Workers())
	}
	SetWorkers(0)
	if Workers() != 3 {
		t.Fatal("SetWorkers(0) should restore the environment default")
	}
	t.Setenv("SWIM_WORKERS", "bogus")
	if Workers() != runtime.NumCPU() {
		t.Fatal("bogus SWIM_WORKERS should fall back to NumCPU")
	}
}

func TestRunAggregates(t *testing.T) {
	w := Run(1, 2000, func(r *rng.Source) float64 { return r.Gauss(5, 1) })
	if w.N() != 2000 {
		t.Fatalf("n = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 0.1 || math.Abs(w.Std()-1) > 0.1 {
		t.Fatalf("mean=%.3f std=%.3f", w.Mean(), w.Std())
	}
}

func TestRunDeterministicInSeed(t *testing.T) {
	f := func(r *rng.Source) float64 { return r.Float64() }
	a := Run(9, 50, f)
	b := Run(9, 50, f)
	if a.Mean() != b.Mean() {
		t.Fatal("same seed gave different aggregate")
	}
	c := Run(10, 50, f)
	if a.Mean() == c.Mean() {
		t.Fatal("different seed gave identical aggregate")
	}
}

// TestRunWorkerCountInvariance is the engine's core contract: the mean and
// std are bit-for-bit identical for every worker count, including the serial
// path (workers = 1).
func TestRunWorkerCountInvariance(t *testing.T) {
	f := func(r *rng.Source) float64 {
		s := 0.0
		for i := 0; i < 50; i++ {
			s += r.Norm()
		}
		return s
	}
	serial, err := RunCtx(context.Background(), 11, 300, 1, f)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, runtime.NumCPU()} {
		w, err := RunCtx(context.Background(), 11, 300, workers, f)
		if err != nil {
			t.Fatal(err)
		}
		if w.Mean() != serial.Mean() || w.Std() != serial.Std() || w.N() != serial.N() {
			t.Fatalf("workers=%d: mean/std (%v, %v) != serial (%v, %v)",
				workers, w.Mean(), w.Std(), serial.Mean(), serial.Std())
		}
	}
}

// TestRunHonoursSWIMWorkers pins the acceptance criterion: SWIM_WORKERS=4
// through the public Run must match the serial path bit for bit.
func TestRunHonoursSWIMWorkers(t *testing.T) {
	f := func(r *rng.Source) float64 { return r.Gauss(0, 1) }
	t.Setenv("SWIM_WORKERS", "1")
	serial := Run(7, 257, f)
	t.Setenv("SWIM_WORKERS", "4")
	parallel := Run(7, 257, f)
	if serial.Mean() != parallel.Mean() || serial.Std() != parallel.Std() {
		t.Fatalf("SWIM_WORKERS=4 (%v, %v) != serial (%v, %v)",
			parallel.Mean(), parallel.Std(), serial.Mean(), serial.Std())
	}
}

func TestRunSeries(t *testing.T) {
	agg, err := RunSeries(3, 100, 3, func(r *rng.Source) []float64 {
		return []float64{1, r.Float64(), 10}
	})
	if err != nil {
		t.Fatal(err)
	}
	if agg[0].Mean() != 1 || agg[2].Mean() != 10 {
		t.Fatal("constant series points wrong")
	}
	if agg[1].Mean() < 0.3 || agg[1].Mean() > 0.7 {
		t.Fatalf("uniform point mean = %v", agg[1].Mean())
	}
	if agg[0].N() != 100 {
		t.Fatalf("n = %d", agg[0].N())
	}
}

func TestRunSeriesWorkerCountInvariance(t *testing.T) {
	f := func(r *rng.Source) []float64 {
		return []float64{r.Float64(), r.Gauss(2, 3), r.Norm() * r.Norm()}
	}
	serial, err := RunSeriesCtx(context.Background(), 21, 211, 3, 1, f)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{3, runtime.NumCPU()} {
		agg, err := RunSeriesCtx(context.Background(), 21, 211, 3, workers, f)
		if err != nil {
			t.Fatal(err)
		}
		for i := range agg {
			if agg[i].Mean() != serial[i].Mean() || agg[i].Std() != serial[i].Std() {
				t.Fatalf("workers=%d point %d: (%v, %v) != serial (%v, %v)",
					workers, i, agg[i].Mean(), agg[i].Std(), serial[i].Mean(), serial[i].Std())
			}
		}
	}
}

func TestRunSeriesLengthMismatchError(t *testing.T) {
	_, err := RunSeries(1, 8, 3, func(r *rng.Source) []float64 { return []float64{1} })
	if err == nil {
		t.Fatal("length mismatch not reported")
	}
	want := "returned 1 series values, want 3"
	if got := err.Error(); !strings.Contains(got, want) {
		t.Fatalf("error %q does not describe the mismatch (want substring %q)", got, want)
	}
}

func TestRunSeriesCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	_, err := RunSeriesCtx(ctx, 1, 10000, 1, 2, func(r *rng.Source) []float64 {
		if calls.Add(1) == 5 {
			cancel()
		}
		return []float64{r.Float64()}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
	if n := calls.Load(); n >= 10000 {
		t.Fatalf("cancellation did not stop the run (%d trials executed)", n)
	}
}

func TestTrialPanicBecomesError(t *testing.T) {
	// Trials execute on worker goroutines, where an unrecovered panic would
	// kill the process; the engine must convert it into a returned error.
	_, err := RunSeriesCtx(context.Background(), 1, 20, 1, 2, func(r *rng.Source) []float64 {
		panic("device model exploded")
	})
	if err == nil || !strings.Contains(err.Error(), "device model exploded") {
		t.Fatalf("trial panic not converted to a descriptive error: %v", err)
	}
}

func TestRunSeriesCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunSeriesCtx(ctx, 1, 10, 1, 2, func(r *rng.Source) []float64 {
		return []float64{1}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run returned %v", err)
	}
}

func TestRunZeroTrials(t *testing.T) {
	w := Run(1, 0, func(r *rng.Source) float64 { t.Fatal("trial ran"); return 0 })
	if w.N() != 0 || w.Mean() != 0 {
		t.Fatalf("zero-trial aggregate: n=%d mean=%v", w.N(), w.Mean())
	}
}

func TestMapOrderAndDeterminism(t *testing.T) {
	f := func(i int, r *rng.Source) float64 { return float64(i) + r.Float64() }
	serial, err := MapCtx(context.Background(), 5, 100, 1, f)
	if err != nil {
		t.Fatal(err)
	}
	// Values are in index order: integer part recovers the index.
	for i, v := range serial {
		if int(v) != i {
			t.Fatalf("out[%d] = %v not in index order", i, v)
		}
	}
	// And each item's stream matches a direct SplitN derivation.
	streams := rng.New(5).SplitN(100)
	for i, v := range serial {
		if want := float64(i) + streams[i].Float64(); v != want {
			t.Fatalf("item %d = %v, want %v from pre-split stream", i, v, want)
		}
	}
	parallel, err := MapCtx(context.Background(), 5, 100, runtime.NumCPU(), f)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("item %d differs across worker counts", i)
		}
	}
}

func TestMapGenericType(t *testing.T) {
	words := Map(1, 3, func(i int, r *rng.Source) string {
		return string(rune('a' + i))
	})
	if words[0] != "a" || words[1] != "b" || words[2] != "c" {
		t.Fatalf("words = %v", words)
	}
}

// flappyGate alternates its limit between 1 and max on every Limit() call,
// exercising worker parking/waking mid-run.
type flappyGate struct {
	max   int
	calls atomic.Int64
	ch    chan struct{}
}

func newFlappyGate(max int) *flappyGate {
	g := &flappyGate{max: max, ch: make(chan struct{})}
	close(g.ch) // always "changed": parked workers re-check immediately
	return g
}

func (g *flappyGate) Limit() (int, <-chan struct{}) {
	if g.calls.Add(1)%2 == 0 {
		return 1, g.ch
	}
	return g.max, g.ch
}

// TestGateInvariance pins the Gate contract: a run whose worker admission
// flaps arbitrarily yields bit-identical aggregates to the serial run.
func TestGateInvariance(t *testing.T) {
	f := func(r *rng.Source) []float64 {
		return []float64{r.Norm(), r.Float64()}
	}
	serial, err := RunSeriesCtx(context.Background(), 77, 25, 2, 1, f)
	if err != nil {
		t.Fatal(err)
	}
	gated, err := RunSeriesGate(context.Background(), 77, 25, 2, 4, newFlappyGate(4), f)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i].Mean() != gated[i].Mean() || serial[i].Std() != gated[i].Std() {
			t.Fatalf("point %d: gated (%v, %v) != serial (%v, %v)",
				i, gated[i].Mean(), gated[i].Std(), serial[i].Mean(), serial[i].Std())
		}
	}
}

// fixedGate admits a constant number of workers and never signals a change.
type fixedGate struct {
	limit int
	ch    chan struct{}
}

func (g *fixedGate) Limit() (int, <-chan struct{}) { return g.limit, g.ch }

// TestGateSingleWorkerProgress verifies a gate stuck at limit 1 still drains
// the whole run (the surplus workers park; the admitted one does all trials).
func TestGateSingleWorkerProgress(t *testing.T) {
	var ran atomic.Int64
	out, err := MapGate(context.Background(), 3, 12, 4, &fixedGate{limit: 1, ch: make(chan struct{})},
		func(i int, r *rng.Source) int {
			ran.Add(1)
			return i * i
		})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 12 || len(out) != 12 || out[5] != 25 {
		t.Fatalf("gated map incomplete: ran=%d out=%v", ran.Load(), out)
	}
}

// TestGateCancellation: a gated run cancelled mid-flight (one worker parked,
// one mid-trial) must tear down cleanly and return the context error.
func TestGateCancellation(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var once atomic.Bool
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := MapGate(ctx, 5, 8, 2, &fixedGate{limit: 1, ch: make(chan struct{})},
			func(i int, r *rng.Source) int {
				if once.CompareAndSwap(false, true) {
					close(started)
					<-release
				}
				return i
			})
		done <- err
	}()
	<-started
	cancel()
	close(release)
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
