package serve

// Tests for the /v1 API conventions: the uniform typed error envelope
// (including route/method fallthroughs), job-list pagination and filtering,
// terminal-job TTL eviction, and single-flight submit coalescing.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"swim/internal/experiments"
	"swim/internal/serialize"
)

// errorCode performs a request and decodes the /v1 error envelope,
// asserting status and typed code.
func errorCode(t *testing.T, method, url string, body string, wantStatus int, wantCode string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s → %d, want %d", method, url, resp.StatusCode, wantStatus)
	}
	env, err := serialize.DecodeError(resp.Body)
	if err != nil {
		t.Fatalf("%s %s: response is not the /v1 error envelope: %v", method, url, err)
	}
	if env.Error.Code != wantCode {
		t.Fatalf("%s %s → code %q, want %q", method, url, env.Error.Code, wantCode)
	}
	if env.Error.Message == "" {
		t.Fatalf("%s %s: empty error message", method, url)
	}
	return resp
}

// Every non-2xx response — handler rejections AND mux fallthroughs for
// unknown routes or wrong verbs — must carry the typed error envelope.
func TestErrorEnvelopeShapes(t *testing.T) {
	release := make(chan struct{})
	_, ts := newTestServer(t, Config{TotalWorkers: 1, Workloads: map[string]func() *experiments.Workload{
		"test": func() *experiments.Workload { <-release; return tinyWorkload() },
	}})

	errorCode(t, http.MethodGet, ts.URL+"/no/such/route", "", http.StatusNotFound, serialize.ErrNotFound)
	errorCode(t, http.MethodGet, ts.URL+"/v2/jobs", "", http.StatusNotFound, serialize.ErrNotFound)
	errorCode(t, http.MethodGet, ts.URL+"/v1/jobs/ghost", "", http.StatusNotFound, serialize.ErrNotFound)
	errorCode(t, http.MethodGet, ts.URL+"/v1/jobs/ghost/result", "", http.StatusNotFound, serialize.ErrNotFound)
	errorCode(t, http.MethodPost, ts.URL+"/v1/jobs/ghost/cancel", "", http.StatusNotFound, serialize.ErrNotFound)
	errorCode(t, http.MethodPost, ts.URL+"/v1/jobs", "not json", http.StatusBadRequest, serialize.ErrBadRequest)
	errorCode(t, http.MethodPost, ts.URL+"/v1/shards", "not json", http.StatusBadRequest, serialize.ErrBadRequest)

	resp := errorCode(t, http.MethodDelete, ts.URL+"/v1/jobs", "", http.StatusMethodNotAllowed, serialize.ErrMethodNotAllowed)
	if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "POST") || !strings.Contains(allow, "GET") {
		t.Fatalf("Allow header = %q", allow)
	}
	errorCode(t, http.MethodPut, ts.URL+"/healthz", "", http.StatusMethodNotAllowed, serialize.ErrMethodNotAllowed)
	errorCode(t, http.MethodGet, ts.URL+"/v1/shards", "", http.StatusMethodNotAllowed, serialize.ErrMethodNotAllowed)
	errorCode(t, http.MethodDelete, ts.URL+"/v1/jobs/ghost/cancel", "", http.StatusMethodNotAllowed, serialize.ErrMethodNotAllowed)

	// Conflict: a result fetched before the job is done (the workload gate
	// keeps it non-terminal until released).
	rec, code := submit(t, ts, testRequest(601, ""))
	if code != http.StatusAccepted {
		t.Fatalf("submit code %d", code)
	}
	errorCode(t, http.MethodGet, ts.URL+"/v1/jobs/"+rec.ID+"/result", "", http.StatusConflict, serialize.ErrConflict)
	close(release)
	await(t, ts, rec.ID)

	// List parameter validation.
	errorCode(t, http.MethodGet, ts.URL+"/v1/jobs?status=bogus", "", http.StatusBadRequest, serialize.ErrBadRequest)
	errorCode(t, http.MethodGet, ts.URL+"/v1/jobs?limit=0", "", http.StatusBadRequest, serialize.ErrBadRequest)
	errorCode(t, http.MethodGet, ts.URL+"/v1/jobs?limit=nope", "", http.StatusBadRequest, serialize.ErrBadRequest)
	errorCode(t, http.MethodGet, ts.URL+"/v1/jobs?page_token=xyz", "", http.StatusBadRequest, serialize.ErrBadRequest)
}

// fastRequest is a minimal one-trial request; distinct seeds defeat the
// cache so each submission really runs.
func fastRequest(seed uint64) *serialize.RequestRecord {
	return &serialize.RequestRecord{
		Version: serialize.RequestVersion, Kind: serialize.KindSweep, Workload: "test",
		Sigmas: []float64{1.0}, Policies: []string{"noverify"},
		NWCs: []float64{0}, Times: []float64{0},
		Seed: seed, Trials: 1, EvalBatch: 32,
	}
}

type listPage struct {
	Jobs          []serialize.JobRecord `json:"jobs"`
	NextPageToken string                `json:"next_page_token"`
}

func fetchList(t *testing.T, ts *httptest.Server, query string) listPage {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list %q → %d", query, resp.StatusCode)
	}
	var page listPage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	return page
}

func TestListPaginationAndFilter(t *testing.T) {
	_, ts := newTestServer(t, Config{TotalWorkers: 2, MaxConcurrent: 2})
	var ids []string
	for seed := uint64(1); seed <= 5; seed++ {
		rec, code := submit(t, ts, fastRequest(seed))
		if code != http.StatusAccepted {
			t.Fatalf("submit %d → %d", seed, code)
		}
		ids = append(ids, rec.ID)
	}
	for _, id := range ids {
		if rec := await(t, ts, id); rec.Status != serialize.JobDone {
			t.Fatalf("job %s: %s (%s)", id, rec.Status, rec.Error)
		}
	}

	// Walk the pages: stable submit order, two per page.
	var walked []string
	query := "?limit=2"
	for {
		page := fetchList(t, ts, query)
		for _, j := range page.Jobs {
			walked = append(walked, j.ID)
		}
		if page.NextPageToken == "" {
			break
		}
		if len(page.Jobs) != 2 {
			t.Fatalf("non-final page holds %d jobs", len(page.Jobs))
		}
		query = "?limit=2&page_token=" + page.NextPageToken
	}
	if fmt.Sprint(walked) != fmt.Sprint(ids) {
		t.Fatalf("paged walk %v != submit order %v", walked, ids)
	}

	if page := fetchList(t, ts, "?status=done"); len(page.Jobs) != 5 {
		t.Fatalf("status=done → %d jobs", len(page.Jobs))
	}
	if page := fetchList(t, ts, "?status=running"); len(page.Jobs) != 0 {
		t.Fatalf("status=running → %d jobs", len(page.Jobs))
	}
	if page := fetchList(t, ts, "?status=done&limit=3&page_token=0"); len(page.Jobs) != 3 || page.NextPageToken == "" {
		t.Fatalf("filtered page: %d jobs, token %q", len(page.Jobs), page.NextPageToken)
	}
}

func TestJobTTLEviction(t *testing.T) {
	_, ts := newTestServer(t, Config{TotalWorkers: 1, JobTTL: 20 * time.Millisecond})
	req := fastRequest(41)
	rec, _ := submit(t, ts, req)
	if done := await(t, ts, rec.ID); done.Status != serialize.JobDone {
		t.Fatalf("job: %s (%s)", done.Status, done.Error)
	}
	time.Sleep(60 * time.Millisecond)
	if page := fetchList(t, ts, ""); len(page.Jobs) != 0 {
		t.Fatalf("terminal job survived its TTL: %+v", page.Jobs)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted job still resolvable: %d", resp.StatusCode)
	}
	// Eviction clears the job table, never the result cache.
	again, code := submit(t, ts, req)
	if code != http.StatusOK || !again.Cached {
		t.Fatalf("resubmit after eviction not served from cache: %d %+v", code, again)
	}
}

func TestSubmitCoalescing(t *testing.T) {
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{TotalWorkers: 2, MaxConcurrent: 2, Workloads: map[string]func() *experiments.Workload{
		"test": func() *experiments.Workload { <-release; return tinyWorkload() },
	}})
	req := testRequest(701, "")
	first, code := submit(t, ts, req)
	if code != http.StatusAccepted || first.Coalesced {
		t.Fatalf("first submit: %d, coalesced %v", code, first.Coalesced)
	}
	second, code := submit(t, ts, req)
	if code != http.StatusAccepted || !second.Coalesced {
		t.Fatalf("identical in-flight submit not coalesced: %d, %+v", code, second)
	}
	// A different request must NOT coalesce.
	other, code := submit(t, ts, testRequest(702, ""))
	if code != http.StatusAccepted || other.Coalesced {
		t.Fatalf("distinct request coalesced: %d, %+v", code, other)
	}
	close(release)
	d1, d2 := await(t, ts, first.ID), await(t, ts, second.ID)
	if d1.Status != serialize.JobDone || d2.Status != serialize.JobDone {
		t.Fatalf("jobs: %s (%s), %s (%s)", d1.Status, d1.Error, d2.Status, d2.Error)
	}
	await(t, ts, other.ID)
	if b1, b2 := fetchResult(t, ts, first.ID), fetchResult(t, ts, second.ID); !bytes.Equal(b1, b2) {
		t.Fatal("coalesced results differ")
	}
	if n := s.met.executed.Load(); n != 2 { // first + other; the follower rode along
		t.Fatalf("executed = %d, want 2 (coalesced submit recomputed)", n)
	}
}
