package serve

// End-to-end tests of the distributed tier: coordinator-merged envelopes
// must be byte-identical to single-node execution, failed shards must move
// to surviving workers, and the shard journal must make restarts resume
// instead of recompute.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"swim/internal/experiments"
	"swim/internal/serialize"
)

// testWorkloads is the workload table shared by worker and coordinator
// servers (the coordinator only needs the name for normalization — it
// never builds the workload).
func testWorkloads() map[string]func() *experiments.Workload {
	return map[string]func() *experiments.Workload{"test": tinyWorkload}
}

// newWorker starts one plain daemon to serve /v1/shards.
func newWorker(t *testing.T) *httptest.Server {
	t.Helper()
	_, ts := newTestServer(t, Config{TotalWorkers: 2, Workloads: testWorkloads()})
	return ts
}

func healthz(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	return stats
}

// The distributed acceptance bar: a job sharded across two workers merges
// into the exact bytes the single-node (and CLI) path produces.
func TestCoordinatorByteIdentity(t *testing.T) {
	w1, w2 := newWorker(t), newWorker(t)
	_, coord := newTestServer(t, Config{
		WorkerURLs:  []string{w1.URL, w2.URL},
		ShardTrials: 2,
		Workloads:   testWorkloads(),
	})

	req := testRequest(301, "stuckat:p=0.05")
	req.Cost = "rram" // the cost axis must survive the shard round trip too
	want := referenceEnvelope(t, req)
	rec, code := submit(t, coord, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit code %d", code)
	}
	done := await(t, coord, rec.ID)
	if done.Status != serialize.JobDone {
		t.Fatalf("coordinator job: %s (%s)", done.Status, done.Error)
	}
	if got := fetchResult(t, coord, rec.ID); !bytes.Equal(got, want) {
		t.Errorf("merged result differs from single-node:\ncoord: %s\ncli:   %s", got, want)
	}

	// 5 trials at 2 per shard = 3 shards, all computed by the pool.
	total := healthz(t, w1.URL)["shards_executed"].(float64) + healthz(t, w2.URL)["shards_executed"].(float64)
	if total != 3 {
		t.Errorf("pool computed %v shards, want 3", total)
	}
	if mode := healthz(t, coord.URL)["mode"]; mode != "coordinator" {
		t.Errorf("coordinator healthz mode = %v", mode)
	}
}

// A worker that always fails must lose its shards to the surviving worker
// without corrupting the merged result.
func TestCoordinatorReassignsFailedShards(t *testing.T) {
	good := newWorker(t)
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusInternalServerError, serialize.ErrInternal, "injected failure")
	}))
	t.Cleanup(bad.Close)

	_, coord := newTestServer(t, Config{
		WorkerURLs:  []string{bad.URL, good.URL},
		ShardTrials: 1, // five shards: plenty of reassignment traffic
		Workloads:   testWorkloads(),
	})
	req := testRequest(302, "drift:nu=0.1")
	want := referenceEnvelope(t, req)
	rec, _ := submit(t, coord, req)
	done := await(t, coord, rec.ID)
	if done.Status != serialize.JobDone {
		t.Fatalf("job with one dead worker: %s (%s)", done.Status, done.Error)
	}
	if got := fetchResult(t, coord, rec.ID); !bytes.Equal(got, want) {
		t.Error("reassigned result differs from single-node")
	}
}

// With the whole pool failing the job must fail — with the worker error
// surfaced, not a hang.
func TestCoordinatorFailsWhenPoolLost(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusInternalServerError, serialize.ErrInternal, "injected failure")
	}))
	t.Cleanup(bad.Close)
	_, coord := newTestServer(t, Config{
		WorkerURLs: []string{bad.URL},
		Workloads:  testWorkloads(),
	})
	rec, _ := submit(t, coord, testRequest(303, ""))
	done := await(t, coord, rec.ID)
	if done.Status != serialize.JobFailed {
		t.Fatalf("job against a dead pool: %s", done.Status)
	}
	if done.Error == "" {
		t.Fatal("failed job carries no error")
	}
}

// countingProxy forwards /v1/shards calls to a worker, counting them.
func countingProxy(t *testing.T, target string, calls *atomic.Int64) *httptest.Server {
	t.Helper()
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/shards" {
			calls.Add(1)
		}
		req, err := http.NewRequestWithContext(r.Context(), r.Method, target+r.URL.Path, r.Body)
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		req.Header = r.Header.Clone()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
	}))
	t.Cleanup(proxy.Close)
	return proxy
}

// The checkpoint/resume contract: a coordinator restarted mid-job (here:
// journal with one shard deleted and no result marker) re-enqueues the
// journalled job at startup and recomputes ONLY the missing range.
func TestCoordinatorJournalResume(t *testing.T) {
	state := t.TempDir()
	worker := newWorker(t)
	var calls atomic.Int64
	proxy := countingProxy(t, worker.URL, &calls)

	cfg := Config{
		WorkerURLs:  []string{proxy.URL},
		ShardTrials: 2,
		StateDir:    state,
		Workloads:   testWorkloads(),
	}
	req := testRequest(304, "stuckat:p=0.05")
	want := referenceEnvelope(t, req)

	s1, coord1 := newTestServer(t, cfg)
	rec, _ := submit(t, coord1, req)
	if done := await(t, coord1, rec.ID); done.Status != serialize.JobDone {
		t.Fatalf("first run: %s (%s)", done.Status, done.Error)
	}
	if got := fetchResult(t, coord1, rec.ID); !bytes.Equal(got, want) {
		t.Fatal("first run result differs from single-node")
	}
	firstCalls := calls.Load()
	if firstCalls != 3 { // 5 trials at 2 per shard
		t.Fatalf("first run dispatched %d shards, want 3", firstCalls)
	}
	coord1.Close()
	s1.Drain(2 * time.Second)

	// Simulate a coordinator killed mid-job: one shard checkpoint missing,
	// no result marker.
	dirs, err := filepath.Glob(filepath.Join(state, "coord", "*"))
	if err != nil || len(dirs) != 1 {
		t.Fatalf("journal dirs: %v (%v)", dirs, err)
	}
	if err := os.Remove(filepath.Join(dirs[0], "result.json")); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dirs[0], "shard-000002-000004.json")); err != nil {
		t.Fatal(err)
	}

	// A restarted coordinator picks the journalled job back up on its own.
	_, coord2 := newTestServer(t, cfg)
	deadline := time.Now().Add(30 * time.Second)
	var resumed serialize.JobRecord
	for {
		page := fetchList(t, coord2, "?status=done")
		if len(page.Jobs) == 1 {
			resumed = page.Jobs[0]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("journalled job never resumed: %+v", fetchList(t, coord2, ""))
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := fetchResult(t, coord2, resumed.ID); !bytes.Equal(got, want) {
		t.Fatal("resumed result differs from single-node")
	}
	if delta := calls.Load() - firstCalls; delta != 1 {
		t.Fatalf("resume dispatched %d shards, want 1 (only the deleted range)", delta)
	}
	if _, err := os.Stat(filepath.Join(dirs[0], "result.json")); err != nil {
		t.Fatalf("resumed job left no result marker: %v", err)
	}
}

// The worker endpoint itself: validation errors carry typed codes, and a
// valid shard request returns the right range of rows.
func TestShardEndpoint(t *testing.T) {
	worker := newWorker(t)
	post := func(body []byte) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(worker.URL+"/v1/shards", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		payload, _ := io.ReadAll(resp.Body)
		return resp, payload
	}

	req := testRequest(305, "")
	for name, sr := range map[string]*serialize.ShardRequest{
		"no request":     {Version: serialize.ShardVersion, Lo: 0, Hi: 1},
		"inverted range": {Version: serialize.ShardVersion, Request: req, Lo: 3, Hi: 1},
		"range too wide": {Version: serialize.ShardVersion, Request: req, Lo: 0, Hi: 99},
		"bad version":    {Version: 42, Request: req, Lo: 0, Hi: 1},
	} {
		body, _ := json.Marshal(sr)
		resp, payload := post(body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s → %d (%s)", name, resp.StatusCode, payload)
		}
		if env, err := serialize.DecodeError(bytes.NewReader(payload)); err != nil || env.Error.Code != serialize.ErrBadRequest {
			t.Errorf("%s: not a typed bad_request envelope: %s", name, payload)
		}
	}

	body, _ := json.Marshal(&serialize.ShardRequest{Version: serialize.ShardVersion, Request: req, Lo: 1, Hi: 4})
	resp, payload := post(body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid shard → %d (%s)", resp.StatusCode, payload)
	}
	rec, err := serialize.DecodeShard(bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Lo != 1 || rec.Hi != 4 || rec.Trials != req.Trials {
		t.Fatalf("shard metadata: %+v", rec)
	}
	// testRequest: 2 policies × 1 sigma × 1 scenario × 1 time = 2 cells,
	// each carrying hi-lo rows of 3×len(NWCs) values (accuracy, NWC spent,
	// raw write-verify cycles).
	if len(rec.Cells) != 2 {
		t.Fatalf("cells = %d", len(rec.Cells))
	}
	for _, cell := range rec.Cells {
		if len(cell.Rows) != 3 {
			t.Fatalf("cell rows = %d, want 3", len(cell.Rows))
		}
		for _, row := range cell.Rows {
			if len(row) != 3*len(req.NWCs) {
				t.Fatalf("row width = %d, want %d", len(row), 3*len(req.NWCs))
			}
		}
	}
}
