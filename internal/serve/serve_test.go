package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"swim/internal/data"
	"swim/internal/experiments"
	"swim/internal/models"
	"swim/internal/program"
	"swim/internal/rng"
	"swim/internal/serialize"
	"swim/internal/swim"
	"swim/internal/train"
)

// tinyWorkload is a deliberately small trained workload (one epoch, 100
// training samples) shared by every test — built once, exactly like the
// registry builders build theirs.
var (
	tinyOnce sync.Once
	tinyW    *experiments.Workload
)

func tinyWorkload() *experiments.Workload {
	tinyOnce.Do(func() {
		ds := data.MNISTLike(100, 50, 5)
		net := models.LeNet(10, 4, rng.New(5))
		cfg := train.DefaultConfig()
		cfg.Epochs = 1
		cfg.LRDecayEvery = 1
		cfg.QATBits = 4
		train.SGD(net, ds, cfg, rng.New(6))
		cx, cy := data.Subset(ds.TrainX, ds.TrainY, 64)
		tinyW = &experiments.Workload{
			Name: "tiny-serve", Net: net, DS: ds, WeightBits: 4,
			CleanAcc: train.Evaluate(net, ds.TestX, ds.TestY, 32),
			Hess:     swim.Sensitivity(net, cx, cy, 32),
			Weights:  swim.FlatWeights(net),
		}
	})
	return tinyW
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Workloads == nil {
		cfg.Workloads = map[string]func() *experiments.Workload{"test": tinyWorkload}
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Drain(2 * time.Second)
	})
	return s, ts
}

// testRequest returns a fully specified small request; explicit fields keep
// the reference computation and the normalized server request identical.
func testRequest(seed uint64, scenarios string) *serialize.RequestRecord {
	return &serialize.RequestRecord{
		Version: serialize.RequestVersion, Kind: serialize.KindSweep, Workload: "test",
		Sigmas: []float64{1.0}, Policies: []string{"noverify", "swim"},
		NWCs: []float64{0, 0.1}, Scenarios: scenarios, Times: []float64{0},
		Seed: seed, Trials: 5, EvalBatch: 32,
	}
}

func submit(t *testing.T, ts *httptest.Server, req *serialize.RequestRecord) (*serialize.JobRecord, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 400 {
		return nil, resp.StatusCode
	}
	var rec serialize.JobRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		t.Fatalf("submit response %s: %v", payload, err)
	}
	return &rec, resp.StatusCode
}

func await(t *testing.T, ts *httptest.Server, id string) *serialize.JobRecord {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rec serialize.JobRecord
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	return &rec
}

func fetchResult(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result fetch: %d %s", resp.StatusCode, body)
	}
	return body
}

// referenceEnvelope computes the request the way the CLI path does —
// sequentially, one worker, no gate — and serializes it, byte-for-byte as
// the daemon's result endpoint would.
func referenceEnvelope(t *testing.T, req *serialize.RequestRecord) []byte {
	t.Helper()
	scenarios, err := experiments.ParseScenarios(req.Scenarios)
	if err != nil {
		t.Fatal(err)
	}
	cfg := experiments.ScenarioConfig{
		NWCs: req.NWCs, Times: req.Times, Policies: req.Policies,
		Trials: req.Trials, Seed: req.Seed, EvalBatch: req.EvalBatch,
		Cost: req.Cost, Calib: req.Calib,
	}
	env := &serialize.ResultEnvelope{}
	for _, sigma := range req.Sigmas {
		results, err := experiments.ScenarioResults(context.Background(), tinyWorkload(), sigma, scenarios, cfg,
			program.WithWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		env.Cells = append(env.Cells, experiments.EnvelopeCells(req.Workload, sigma, results)...)
	}
	var buf bytes.Buffer
	if err := serialize.EncodeEnvelope(&buf, env); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The acceptance bar of the serving tier: two jobs submitted concurrently,
// splitting the worker budget through the fair share, each return results
// bit-identical to the sequential single-worker CLI path.
func TestServeDeterminismUnderConcurrentJobs(t *testing.T) {
	_, ts := newTestServer(t, Config{TotalWorkers: 4, MaxConcurrent: 2})
	reqA := testRequest(101, "stuckat:p=0.05")
	reqB := testRequest(202, "drift:nu=0.1")
	wantA := referenceEnvelope(t, reqA)
	wantB := referenceEnvelope(t, reqB)

	recA, codeA := submit(t, ts, reqA)
	recB, codeB := submit(t, ts, reqB)
	if codeA != http.StatusAccepted || codeB != http.StatusAccepted {
		t.Fatalf("submit codes = %d, %d", codeA, codeB)
	}
	doneA := await(t, ts, recA.ID)
	doneB := await(t, ts, recB.ID)
	if doneA.Status != serialize.JobDone || doneB.Status != serialize.JobDone {
		t.Fatalf("jobs did not finish: %s=%s (%s), %s=%s (%s)",
			doneA.ID, doneA.Status, doneA.Error, doneB.ID, doneB.Status, doneB.Error)
	}
	if got := fetchResult(t, ts, recA.ID); !bytes.Equal(got, wantA) {
		t.Errorf("job A result differs from the CLI path:\nhttp: %s\ncli:  %s", got, wantA)
	}
	if got := fetchResult(t, ts, recB.ID); !bytes.Equal(got, wantB) {
		t.Errorf("job B result differs from the CLI path:\nhttp: %s\ncli:  %s", got, wantB)
	}
}

func TestServeCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Config{TotalWorkers: 2})
	req := testRequest(55, "")
	first, code := submit(t, ts, req)
	if code != http.StatusAccepted || first.Cached {
		t.Fatalf("first submit: code %d cached %v", code, first.Cached)
	}
	if rec := await(t, ts, first.ID); rec.Status != serialize.JobDone {
		t.Fatalf("first job %s: %s", rec.Status, rec.Error)
	}
	b1 := fetchResult(t, ts, first.ID)
	if n := s.met.executed.Load(); n != 1 {
		t.Fatalf("executed = %d after one job", n)
	}

	second, code := submit(t, ts, req)
	if code != http.StatusOK || !second.Cached || second.Status != serialize.JobDone {
		t.Fatalf("repeat submit not served from cache: code %d, %+v", code, second)
	}
	if b2 := fetchResult(t, ts, second.ID); !bytes.Equal(b1, b2) {
		t.Fatal("cached result differs from the computed one")
	}
	if n := s.met.executed.Load(); n != 1 {
		t.Fatalf("cache hit recomputed: executed = %d", n)
	}
}

func TestServeCancelMidJob(t *testing.T) {
	_, ts := newTestServer(t, Config{TotalWorkers: 1, MaxConcurrent: 1})
	long := testRequest(77, "")
	long.Trials = 20000 // far longer than the test will wait
	rec, code := submit(t, ts, long)
	if code != http.StatusAccepted {
		t.Fatalf("submit code %d", code)
	}
	// Wait until it is actually running so the cancel exercises the
	// mid-pipeline context path, not the queued shortcut.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + rec.ID)
		if err != nil {
			t.Fatal(err)
		}
		var j serialize.JobRecord
		if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if j.Status == serialize.JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started running (status %s)", j.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs/"+rec.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	done := await(t, ts, rec.ID)
	if done.Status != serialize.JobCancelled {
		t.Fatalf("status after cancel = %s (%s)", done.Status, done.Error)
	}
	// The result must not exist for a cancelled job.
	rr, err := http.Get(ts.URL + "/v1/jobs/" + rec.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusConflict {
		t.Fatalf("result fetch for cancelled job = %d, want 409", rr.StatusCode)
	}
}

func TestServeCancelQueuedJob(t *testing.T) {
	_, ts := newTestServer(t, Config{TotalWorkers: 1, MaxConcurrent: 1})
	blocker := testRequest(88, "")
	blocker.Trials = 20000
	brec, _ := submit(t, ts, blocker)
	queued := testRequest(89, "")
	qrec, _ := submit(t, ts, queued)

	resp, err := http.Post(ts.URL+"/v1/jobs/"+qrec.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var cancelled serialize.JobRecord
	if err := json.NewDecoder(resp.Body).Decode(&cancelled); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if cancelled.Status != serialize.JobCancelled {
		t.Fatalf("queued job after cancel = %s", cancelled.Status)
	}
	// Unblock the dispatcher for cleanup.
	resp, err = http.Post(ts.URL+"/v1/jobs/"+brec.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	await(t, ts, brec.ID)
}

func TestServeGracefulDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{TotalWorkers: 2, MaxConcurrent: 1})
	req := testRequest(66, "")
	rec, code := submit(t, ts, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit code %d", code)
	}
	// Drain must let the in-flight job finish, then refuse new work while
	// keeping completed results fetchable.
	s.Drain(30 * time.Second)
	if _, code := submit(t, ts, testRequest(67, "")); code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", code)
	}
	done := await(t, ts, rec.ID)
	if done.Status != serialize.JobDone {
		t.Fatalf("drained job status = %s (%s)", done.Status, done.Error)
	}
	if got := fetchResult(t, ts, rec.ID); len(got) == 0 {
		t.Fatal("result unavailable after drain")
	}
	var health map[string]any
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "draining" {
		t.Fatalf("healthz status = %v, want draining", health["status"])
	}
}

func TestServeValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{TotalWorkers: 1})
	cases := []string{
		`{"kind": "sweep", "workload": "nope"}`,
		`{"kind": "mystery", "workload": "test"}`,
		`{"kind": "sweep", "workload": "test", "nwcs": [0.3, 0.1]}`,
		`{"kind": "sweep", "workload": "test", "policies": ["bogus"]}`,
		`{"kind": "sweep", "workload": "test", "scenarios": "warpfield"}`,
		`{"kind": "sweep", "workload": "test", "future_knob": true}`,
		`{"kind": "sweep", "workload": "test", "trials": 100000000}`,
		`not json`,
	}
	for _, body := range cases {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		payload, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %s → %d (%s), want 400", body, resp.StatusCode, payload)
		}
	}
}

func TestServeHealthAndList(t *testing.T) {
	_, ts := newTestServer(t, Config{TotalWorkers: 1})
	rec, _ := submit(t, ts, testRequest(91, ""))
	await(t, ts, rec.ID)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "ok" {
		t.Fatalf("healthz = %v", health)
	}
	if wl, ok := health["workloads"].([]any); !ok || len(wl) != 1 || wl[0] != "test" {
		t.Fatalf("healthz workloads = %v", health["workloads"])
	}

	resp, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []serialize.JobRecord `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Jobs) != 1 || list.Jobs[0].ID != rec.ID {
		t.Fatalf("job list = %+v", list.Jobs)
	}
}

// Normalization must produce identical canonical keys for a defaulted
// request and its explicit spelling — the cache contract.
func TestNormalizeCanonicalKeys(t *testing.T) {
	s, _ := newTestServer(t, Config{TotalWorkers: 1})
	short, err := s.normalize(&serialize.RequestRecord{Kind: serialize.KindScenario, Workload: "test", Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	def := experiments.DefaultScenarioConfig()
	explicit, err := s.normalize(&serialize.RequestRecord{
		Version: serialize.RequestVersion, Kind: serialize.KindScenario, Workload: "test",
		Sigmas: []float64{experiments.SigmaHigh}, Policies: def.Policies,
		NWCs: def.NWCs, Scenarios: "none", Times: def.Times,
		Seed: 9, Trials: def.Trials, EvalBatch: def.EvalBatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	k1, err := short.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := explicit.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("defaulted and explicit requests hash differently:\n%+v\n%+v", short, explicit)
	}
	// Scenario spelling variants normalize to one canonical spec.
	a, err := s.normalize(&serialize.RequestRecord{Kind: serialize.KindSweep, Workload: "test", Scenarios: "stuckat"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.normalize(&serialize.RequestRecord{Kind: serialize.KindSweep, Workload: "test", Scenarios: "stuckat:p=0.001,high=0.5"})
	if err != nil {
		t.Fatal(err)
	}
	ka, _ := a.CanonicalKey()
	kb, _ := b.CanonicalKey()
	if ka != kb {
		t.Fatalf("scenario spellings hash differently: %q vs %q", a.Scenarios, b.Scenarios)
	}
}

func TestNormalizeKindDefaults(t *testing.T) {
	s, _ := newTestServer(t, Config{TotalWorkers: 1, Workloads: map[string]func() *experiments.Workload{
		"test": tinyWorkload, "lenet": tinyWorkload, "convnet": tinyWorkload,
	}})
	table1, err := s.normalize(&serialize.RequestRecord{Kind: serialize.KindTable1})
	if err != nil {
		t.Fatal(err)
	}
	if table1.Workload != "lenet" || len(table1.Sigmas) != 3 || len(table1.Policies) != len(experiments.Methods) {
		t.Fatalf("table1 defaults: %+v", table1)
	}
	fig2, err := s.normalize(&serialize.RequestRecord{Kind: serialize.KindFig2})
	if err != nil {
		t.Fatal(err)
	}
	if fig2.Workload != "convnet" || len(fig2.Sigmas) != 1 {
		t.Fatalf("fig2 defaults: %+v", fig2)
	}
}

// BenchmarkServeThroughput measures end-to-end jobs/s at several
// concurrency levels (distinct seeds defeat the cache); the EXPERIMENTS.md
// serving table comes from this benchmark.
func BenchmarkServeThroughput(b *testing.B) {
	tinyWorkload()
	for _, conc := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("jobs=%d", conc), func(b *testing.B) {
			s := New(Config{
				TotalWorkers: 4, MaxConcurrent: conc, QueueDepth: 1024,
				Workloads: map[string]func() *experiments.Workload{"test": tinyWorkload},
			})
			ts := httptest.NewServer(s.Handler())
			defer func() {
				ts.Close()
				s.Drain(time.Second)
			}()
			seed := uint64(1)
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for c := 0; c < conc; c++ {
					seed++
					req := testRequest(seed, "")
					body, _ := json.Marshal(req)
					resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
					if err != nil {
						b.Fatal(err)
					}
					var rec serialize.JobRecord
					if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
						b.Fatal(err)
					}
					resp.Body.Close()
					wg.Add(1)
					go func(id string) {
						defer wg.Done()
						resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "?wait=1")
						if err == nil {
							_, _ = io.Copy(io.Discard, resp.Body)
							resp.Body.Close()
						}
					}(rec.ID)
				}
				wg.Wait()
			}
			b.ReportMetric(float64(b.N*conc)/time.Since(start).Seconds(), "jobs/s")
		})
	}
}
