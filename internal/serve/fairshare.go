package serve

import "sync"

// fairShare splits a fixed Monte-Carlo worker budget evenly across the jobs
// running at any moment. Each running job holds one Share, whose mc.Gate
// limit is total ÷ active (never below 1); when a job starts or finishes,
// every share's limit changes and parked engine workers are woken through
// the change channel. This replaces the process-global mc.SetWorkers, which
// a concurrent server cannot use: every job would claim the whole machine
// (or race on the global).
//
// The split is cooperative and approximate — a worker checks its admission
// between trials, not mid-trial — but results never depend on it: the mc
// determinism contract makes any admission schedule bit-identical.
type fairShare struct {
	total int
	met   *serverMetrics // engine-event sink; nil in bare tests

	mu      sync.Mutex
	active  int
	changed chan struct{}
}

func newFairShare(total int, met *serverMetrics) *fairShare {
	if total < 1 {
		total = 1
	}
	return &fairShare{total: total, met: met, changed: make(chan struct{})}
}

// notifyLocked wakes everything parked on the previous change channel.
func (f *fairShare) notifyLocked() {
	close(f.changed)
	f.changed = make(chan struct{})
}

// Share is one running job's slice of the worker budget; it implements
// mc.Gate. Obtain with acquire, return with release.
type Share struct {
	f        *fairShare
	released bool
}

// acquire registers one more running job and returns its gate.
func (f *fairShare) acquire() *Share {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.active++
	f.notifyLocked()
	return &Share{f: f}
}

// release returns the share to the pool; the remaining jobs' limits grow.
// Safe to call more than once.
func (s *Share) release() {
	s.f.mu.Lock()
	defer s.f.mu.Unlock()
	if s.released {
		return
	}
	s.released = true
	s.f.active--
	s.f.notifyLocked()
}

// Limit implements mc.Gate: the per-job worker cap under the current load,
// plus the channel signalling the next load change.
func (s *Share) Limit() (int, <-chan struct{}) {
	s.f.mu.Lock()
	defer s.f.mu.Unlock()
	active := s.f.active
	if active < 1 {
		active = 1
	}
	limit := s.f.total / active
	if limit < 1 {
		limit = 1
	}
	return limit, s.f.changed
}

// TrialDone implements mc.Observer: every trial the engine completes behind
// this share bumps the process-wide trial counter. Observe-only — the
// engine ignores the call entirely, so results stay bit-identical.
func (s *Share) TrialDone(int) {
	if s.f.met != nil {
		s.f.met.trials.Inc()
	}
}

// WorkerParked implements mc.Observer: an engine worker started blocking on
// this share's admission limit.
func (s *Share) WorkerParked() {
	if s.f.met != nil {
		s.f.met.parks.Inc()
	}
}

// WorkerWoke implements mc.Observer: a parked engine worker resumed.
func (s *Share) WorkerWoke() {
	if s.f.met != nil {
		s.f.met.wakes.Inc()
	}
}
