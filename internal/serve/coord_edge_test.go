package serve

// Failure-edge tests of the distributed tier — the paths the happy-path
// distributed tests never exercise: per-job worker eviction healing on the
// next job, journal resume over a corrupt checkpoint file, and the
// calibration axis surviving the full coordinator round trip bit for bit.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"swim/internal/serialize"
)

// The calibration acceptance bar at the serve layer: a calib+cost request
// sharded across two workers merges into the exact bytes single-node
// execution produces, with the probe budgets drawn per trial rather than
// per shard.
func TestCoordinatorCalibByteIdentity(t *testing.T) {
	w1, w2 := newWorker(t), newWorker(t)
	_, coord := newTestServer(t, Config{
		WorkerURLs:  []string{w1.URL, w2.URL},
		ShardTrials: 2,
		Workloads:   testWorkloads(),
	})

	req := testRequest(306, "drift:nu=0.1")
	req.Cost = "rram"
	req.Calib = "gainoffset:probes=4"
	// The reference runs the normalized request (the daemon hashes and
	// executes the canonical spelled-out calib spec, not the client's).
	norm := *req
	norm.Calib = "gainoffset:probes=4" // already canonical for this model
	want := referenceEnvelope(t, &norm)

	rec, code := submit(t, coord, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit code %d", code)
	}
	done := await(t, coord, rec.ID)
	if done.Status != serialize.JobDone {
		t.Fatalf("calibrated coordinator job: %s (%s)", done.Status, done.Error)
	}
	if done.Request.Calib != "gainoffset:probes=4" {
		t.Fatalf("normalized request calib = %q", done.Request.Calib)
	}
	if got := fetchResult(t, coord, rec.ID); !bytes.Equal(got, want) {
		t.Errorf("calibrated merged result differs from single-node:\ncoord: %s\ncli:   %s", got, want)
	}
}

// A request spelling the calibration model loosely must normalize to the
// canonical spec, and a calibrated request must never share a cache key
// with its uncalibrated twin (unlike the kernel axis).
func TestCalibAxisNormalizedAndKeyed(t *testing.T) {
	s, _ := newTestServer(t, Config{Workloads: testWorkloads()})
	base := testRequest(307, "")
	norm, err := s.normalize(base)
	if err != nil {
		t.Fatal(err)
	}
	with := testRequest(307, "")
	with.Calib = "gainoffset"
	normWith, err := s.normalize(with)
	if err != nil {
		t.Fatal(err)
	}
	if normWith.Calib == "gainoffset" || normWith.Calib == "" {
		t.Fatalf("calib spec not canonicalized: %q", normWith.Calib)
	}
	k1, err := norm.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := normWith.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Fatal("calibrated and uncalibrated requests share a canonical key")
	}
	none := testRequest(307, "")
	none.Calib = "none"
	normNone, err := s.normalize(none)
	if err != nil {
		t.Fatal(err)
	}
	k3, err := normNone.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	if k3 != k1 {
		t.Fatal(`calib "none" does not share the disabled form's key`)
	}
	bad := testRequest(307, "")
	bad.Calib = "gainoffset:probes=1"
	if _, err := s.normalize(bad); err == nil {
		t.Fatal("invalid calib spec normalized")
	}
}

// flakyProxy forwards /v1/shards to a worker but fails every call while
// broken is set.
func flakyProxy(t *testing.T, target string, broken *atomic.Bool, calls *atomic.Int64) *httptest.Server {
	t.Helper()
	inner := countingProxy(t, target, calls)
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if broken.Load() {
			calls.Add(1) // count the refused attempt too
			writeError(w, http.StatusInternalServerError, serialize.ErrInternal, "injected outage")
			return
		}
		http.Redirect(w, r, inner.URL+r.URL.Path, http.StatusTemporaryRedirect)
	}))
	t.Cleanup(proxy.Close)
	return proxy
}

// Worker eviction is per job, not per daemon: a worker abandoned after
// maxWorkerFails consecutive failures in one job must be re-admitted to the
// pool for the next job once it heals.
func TestWorkerReadmittedAfterEviction(t *testing.T) {
	good := newWorker(t)
	var broken atomic.Bool
	var flakyCalls atomic.Int64
	broken.Store(true)
	flaky := flakyProxy(t, good.URL, &broken, &flakyCalls)

	_, coord := newTestServer(t, Config{
		WorkerURLs:  []string{flaky.URL, good.URL},
		ShardTrials: 1,
		Workloads:   testWorkloads(),
	})

	// Job 1: the flaky worker fails until evicted; the job still completes
	// on the survivor.
	rec, _ := submit(t, coord, testRequest(308, "stuckat:p=0.05"))
	if done := await(t, coord, rec.ID); done.Status != serialize.JobDone {
		t.Fatalf("job with a broken worker: %s (%s)", done.Status, done.Error)
	}
	resp, err := http.Get(coord.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if evicted, _ := metrics["workers_evicted"].(float64); evicted != 1 {
		t.Fatalf("workers_evicted = %v, want 1", metrics["workers_evicted"])
	}
	failedCalls := flakyCalls.Load()
	if failedCalls < maxWorkerFails {
		t.Fatalf("flaky worker saw %d calls before eviction, want >= %d", failedCalls, maxWorkerFails)
	}

	// Job 2 after the worker heals: the coordinator must dispatch to it
	// again — eviction does not outlive the job that observed the failures.
	broken.Store(false)
	rec2, _ := submit(t, coord, testRequest(309, "stuckat:p=0.05"))
	if done := await(t, coord, rec2.ID); done.Status != serialize.JobDone {
		t.Fatalf("job after heal: %s (%s)", done.Status, done.Error)
	}
	if flakyCalls.Load() <= failedCalls {
		t.Fatal("healed worker was never re-admitted to the pool")
	}
}

// A corrupt journal checkpoint (torn write, bit rot) must not poison resume:
// the bad file's range recomputes, the valid checkpoints are reused, and the
// merged bytes still match single-node execution.
func TestCoordinatorJournalResumeCorruptShard(t *testing.T) {
	state := t.TempDir()
	worker := newWorker(t)
	var calls atomic.Int64
	proxy := countingProxy(t, worker.URL, &calls)

	cfg := Config{
		WorkerURLs:  []string{proxy.URL},
		ShardTrials: 2,
		StateDir:    state,
		Workloads:   testWorkloads(),
	}
	req := testRequest(310, "stuckat:p=0.05")
	want := referenceEnvelope(t, req)

	s1, coord1 := newTestServer(t, cfg)
	rec, _ := submit(t, coord1, req)
	if done := await(t, coord1, rec.ID); done.Status != serialize.JobDone {
		t.Fatalf("first run: %s (%s)", done.Status, done.Error)
	}
	firstCalls := calls.Load()
	coord1.Close()
	s1.Drain(2 * time.Second)

	dirs, err := filepath.Glob(filepath.Join(state, "coord", "*"))
	if err != nil || len(dirs) != 1 {
		t.Fatalf("journal dirs: %v (%v)", dirs, err)
	}
	if err := os.Remove(filepath.Join(dirs[0], "result.json")); err != nil {
		t.Fatal(err)
	}
	// Corrupt one checkpoint instead of deleting it: truncated JSON is the
	// torn-write shape writeAtomic exists to prevent elsewhere.
	corrupt := filepath.Join(dirs[0], "shard-000002-000004.json")
	if err := os.WriteFile(corrupt, []byte(`{"version":1,"key":"`), 0o644); err != nil {
		t.Fatal(err)
	}

	_, coord2 := newTestServer(t, cfg)
	deadline := time.Now().Add(30 * time.Second)
	var resumed serialize.JobRecord
	for {
		page := fetchList(t, coord2, "?status=done")
		if len(page.Jobs) == 1 {
			resumed = page.Jobs[0]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("journalled job never resumed: %+v", fetchList(t, coord2, ""))
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := fetchResult(t, coord2, resumed.ID); !bytes.Equal(got, want) {
		t.Fatal("resumed result differs from single-node")
	}
	if delta := calls.Load() - firstCalls; delta != 1 {
		t.Fatalf("resume dispatched %d shards, want 1 (only the corrupt range)", delta)
	}
}
