// Package serve is the sweep-serving daemon behind cmd/swim-serve: a
// long-running HTTP/JSON service that owns trained workloads and answers
// sweep/scenario/table1/fig2 requests — the step from the research CLIs to a
// system that fronts heavy traffic.
//
// Requests arrive as serialize.RequestRecord JSON and run asynchronously on
// a bounded job queue; responses are serialize result envelopes whose cells
// wrap the same versioned result records the CLIs emit. Three properties
// make it a *deterministic* serving tier:
//
//   - Bit-identical answers. A job executes through the same
//     experiments.ScenarioResults path as the CLIs, and the mc determinism
//     contract makes its results independent of worker count and scheduling
//     — so an HTTP answer is byte-for-byte the swim-scenario -json output
//     for the equivalent invocation, no matter what else the daemon was
//     doing at the time.
//
//   - Fair-share worker budgeting. Concurrent jobs split a fixed
//     Monte-Carlo worker budget (total ÷ running jobs, re-balanced as jobs
//     start and finish) through cooperative mc.Gate shares, instead of each
//     job claiming every CPU via the process-global mc.SetWorkers.
//
//   - Canonical result caching. Requests are normalized (defaults filled,
//     scenario specs re-rendered) and hashed (serialize.CanonicalKey);
//     determinism makes equal keys interchangeable, so a repeated request
//     is served from cache without recomputation, and identical in-flight
//     requests coalesce onto a single execution (single-flight).
//
// The same determinism contract scales the daemon horizontally: any /v1
// daemon doubles as a shard worker (POST /v1/shards computes a trial range
// of a request as raw per-trial rows), and a daemon configured with
// Config.WorkerURLs runs as a coordinator — it splits each job into
// trial-range shards, farms them out, retries failures onto surviving
// workers, journals completed shards under the state directory (killed
// runs resume without recomputation) and merges the rows back into a
// result envelope byte-identical to single-node execution.
//
// Endpoints (see docs/ARCHITECTURE.md for the full reference):
//
//	POST /v1/jobs              submit a request → job envelope (202; 200 on cache hit)
//	GET  /v1/jobs              list job envelopes (?status=, ?limit=, ?page_token=)
//	GET  /v1/jobs/{id}         one job envelope (?wait=1 long-polls until terminal)
//	GET  /v1/jobs/{id}/result  completed job's result envelope
//	GET  /v1/jobs/{id}/events  SSE stream of the job's progress events (replay + live)
//	POST /v1/jobs/{id}/cancel  cancel a queued or running job
//	POST /v1/shards            compute one trial-range shard (worker API)
//	GET  /v1/metrics           metrics: flat JSON snapshot, or Prometheus text via content negotiation
//	GET  /healthz              liveness + queue/cache statistics
//
// Every non-2xx response carries the uniform /v1 error envelope
// {"error":{"code":...,"message":...}} with a typed serialize.Err* code —
// including 404s for unknown routes and 405s for wrong verbs.
//
// Shutdown is a graceful drain: intake stops (submits get 503), queued and
// running jobs finish, and past the drain timeout the remaining jobs are
// cancelled via context cancellation flowing through program.Pipeline.Run.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"swim/internal/eval"
	"swim/internal/experiments"
	"swim/internal/serialize"
)

// Config parameterizes a Server. The zero value serves the four registry
// workloads with NumCPU worker goroutines, two concurrent jobs and a
// 64-deep queue.
type Config struct {
	// MaxConcurrent is how many jobs execute at once (default 2). Each
	// running job receives total ÷ running workers through its fair share.
	MaxConcurrent int
	// QueueDepth bounds the submitted-but-not-running backlog (default 64);
	// submissions beyond it are rejected with 503.
	QueueDepth int
	// TotalWorkers is the Monte-Carlo worker budget split across running
	// jobs (default runtime.NumCPU()).
	TotalWorkers int
	// MaxTrials caps the per-request trial count (default 100000), keeping
	// one request from monopolizing the daemon for hours.
	MaxTrials int
	// Workloads maps request workload names to builders (default: the four
	// registry workloads lenet/convnet/resnet/tiny). Builders run at most
	// once per process, lazily, on first request — or restore instantly
	// from a state directory (experiments.SetStateDir).
	Workloads map[string]func() *experiments.Workload
	// DrainTimeout bounds graceful shutdown: once it expires, still-running
	// jobs are cancelled through their contexts (default 30s).
	DrainTimeout time.Duration
	// WorkerURLs switches the daemon into coordinator mode: each job is
	// split into trial-range shards dispatched to these /v1 base URLs
	// (plain daemons — every swim-serve is also a shard worker), with
	// failed shards retried on surviving workers and the merged envelope
	// byte-identical to single-node execution. Empty = standalone.
	WorkerURLs []string
	// ShardTrials sizes the coordinator's trial ranges (default: the job's
	// trial count split into about three waves per worker, minimum 1).
	ShardTrials int
	// JobTTL evicts terminal jobs (done/failed/cancelled) from the job
	// table this long after they finish (default 1h; negative disables
	// eviction). The canonical-key result cache is unaffected.
	JobTTL time.Duration
	// StateDir is the daemon's state directory. The coordinator journals
	// completed shards under StateDir/coord/<request key>/ so a killed run
	// resumes from its checkpoint instead of recomputing; unfinished
	// journalled jobs found at startup are re-enqueued automatically.
	StateDir string
	// Kernel is the daemon-default kernel-backend spec applied to requests
	// that leave their kernel axis empty ("" = scalar). Backends are
	// bit-identical and the axis is excluded from canonical keys, so the
	// default changes throughput only — never results or cache identity.
	Kernel string
	// CacheMaxEntries bounds the canonical-key result cache's entry count
	// (0 = unbounded). Least-recently-used entries are evicted first; the
	// newest result is always retained.
	CacheMaxEntries int
	// CacheMaxBytes bounds the result cache's total encoded size in bytes
	// (0 = unbounded), with the same LRU policy.
	CacheMaxBytes int64
	// ShardTarget steers the coordinator's latency-driven shard autotuner:
	// once enough shard round trips have been observed, shard sizes are
	// chosen so one shard takes about this long (default 1s; negative
	// disables autotuning; Config.ShardTrials overrides it entirely). Shard
	// size never affects result bytes — heterogeneous shards merge
	// identically — so tuning is journal-compatible and invisible to
	// clients.
	ShardTarget time.Duration
	// SSEHeartbeat is the idle-comment interval on /v1/jobs/{id}/events
	// streams (default 15s).
	SSEHeartbeat time.Duration
}

// DefaultWorkloads returns the standard registry workload set served by
// swim-serve: the paper's four model/task pairs, keyed by the same names
// the CLIs use.
func DefaultWorkloads() map[string]func() *experiments.Workload {
	return map[string]func() *experiments.Workload{
		"lenet":   experiments.LeNetMNIST,
		"convnet": experiments.ConvNetCIFAR,
		"resnet":  experiments.ResNetCIFAR,
		"tiny":    experiments.ResNetTiny,
	}
}

// workloadEntry lazily builds one workload exactly once, without holding
// the server mutex across a (potentially minutes-long) training run.
type workloadEntry struct {
	once  sync.Once
	build func() *experiments.Workload
	w     *experiments.Workload
}

// Server is the daemon: a workload registry, a bounded job queue executed
// by MaxConcurrent dispatchers under a fair-share worker budget, and a
// canonical-key result cache. Create with New, expose via Handler or Run.
type Server struct {
	cfg       Config
	budget    *fairShare
	mux       *http.ServeMux
	workloads map[string]*workloadEntry
	coord     *coordinator // non-nil in coordinator mode

	baseCtx   context.Context // parent of every job context
	cancelAll context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // submission order, for listing and pagination
	queued   chan *job
	draining bool
	cache    *resultCache
	inflight map[string]*job // canonical key → primary queued/running job
	nextSeq  int64           // job sequence; assigned under mu for stable order

	shardMu    sync.Mutex
	shardCalls map[string]*shardCall // shard key → in-flight shard execution

	// met is the daemon's metrics registry; every operational counter the
	// old ad-hoc atomic struct carried now lives here (see metrics.go).
	met *serverMetrics
	wg  sync.WaitGroup // dispatcher goroutines
}

// New builds a Server and starts its dispatcher pool. In coordinator mode
// (Config.WorkerURLs non-empty) it also re-enqueues any unfinished
// journalled jobs found under the state directory.
func New(cfg Config) *Server {
	if cfg.MaxConcurrent < 1 {
		cfg.MaxConcurrent = 2
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 64
	}
	if cfg.TotalWorkers < 1 {
		cfg.TotalWorkers = runtime.NumCPU()
	}
	if cfg.MaxTrials < 1 {
		cfg.MaxTrials = 100000
	}
	if cfg.Workloads == nil {
		cfg.Workloads = DefaultWorkloads()
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 30 * time.Second
	}
	s := &Server{
		cfg:        cfg,
		workloads:  make(map[string]*workloadEntry, len(cfg.Workloads)),
		jobs:       make(map[string]*job),
		queued:     make(chan *job, cfg.QueueDepth),
		inflight:   make(map[string]*job),
		shardCalls: make(map[string]*shardCall),
	}
	s.met = newServerMetrics(s)
	s.budget = newFairShare(cfg.TotalWorkers, s.met)
	s.cache = newResultCache(cfg.CacheMaxEntries, cfg.CacheMaxBytes, s.met)
	// The daemon owns the process, so it owns the process-global eval hook:
	// per-backend compiled-plan latency flows into the registry. (Embedded
	// test servers share the hook; the most recent daemon wins, which only
	// redirects observability, never results.)
	eval.SetPlanObserver(s.met)
	s.baseCtx, s.cancelAll = context.WithCancel(context.Background())
	for name, build := range cfg.Workloads {
		s.workloads[name] = &workloadEntry{build: build}
	}
	if len(cfg.WorkerURLs) > 0 {
		s.coord = newCoordinator(s, cfg)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("POST /v1/shards", s.handleShard)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	// JSON fallthroughs: unmatched paths get the /v1 404 envelope, known
	// paths hit with the wrong verb the 405 one (the method-specific
	// patterns above take precedence when the verb matches).
	s.mux.HandleFunc("/", s.handleNotFound)
	s.mux.HandleFunc("/v1/jobs", methodNotAllowed("GET, POST"))
	s.mux.HandleFunc("/v1/jobs/{id}", methodNotAllowed("GET"))
	s.mux.HandleFunc("/v1/jobs/{id}/result", methodNotAllowed("GET"))
	s.mux.HandleFunc("/v1/jobs/{id}/events", methodNotAllowed("GET"))
	s.mux.HandleFunc("/v1/jobs/{id}/cancel", methodNotAllowed("POST"))
	s.mux.HandleFunc("/v1/shards", methodNotAllowed("POST"))
	s.mux.HandleFunc("/v1/metrics", methodNotAllowed("GET"))
	s.mux.HandleFunc("/healthz", methodNotAllowed("GET"))
	for i := 0; i < cfg.MaxConcurrent; i++ {
		s.wg.Add(1)
		go s.dispatch()
	}
	if s.coord != nil {
		s.coord.resumePending()
	}
	return s
}

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// workloadNames lists the served workloads, sorted.
func (s *Server) workloadNames() []string {
	names := make([]string, 0, len(s.workloads))
	for name := range s.workloads {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// workload resolves (building or restoring on first use) a registry
// workload.
func (s *Server) workload(name string) (*experiments.Workload, error) {
	e, ok := s.workloads[name]
	if !ok {
		return nil, fmt.Errorf("serve: unknown workload %q", name)
	}
	e.once.Do(func() { e.w = e.build() })
	if e.w == nil {
		return nil, fmt.Errorf("serve: workload %q failed to build", name)
	}
	return e.w, nil
}

// Run serves the API on l until ctx is cancelled, then drains gracefully
// and shuts the listener down. It returns the first serve error, or nil
// after a clean drain.
func (s *Server) Run(ctx context.Context, l net.Listener) error {
	srv := &http.Server{Handler: s.mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.Drain(s.cfg.DrainTimeout)
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return srv.Shutdown(shutCtx)
}

// Drain stops intake (submissions are rejected with 503), lets queued and
// running jobs finish, and cancels whatever is still running once timeout
// expires — the cancellation reaches trial bodies through
// program.Pipeline.Run's context. Idempotent; subsequent calls just wait.
func (s *Server) Drain(timeout time.Duration) {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queued) // dispatchers exit once the backlog is drained
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(timeout):
		s.cancelAll()
		<-drained
	}
}

// jobTTL resolves the configured terminal-job retention (0 = disabled).
func (s *Server) jobTTL() time.Duration {
	switch {
	case s.cfg.JobTTL < 0:
		return 0
	case s.cfg.JobTTL == 0:
		return time.Hour
	default:
		return s.cfg.JobTTL
	}
}

// evictLocked drops terminal jobs older than the TTL from the job table
// (the result cache is untouched — results stay cheap to re-serve). Called
// lazily from the submit/list/health paths, under the server mutex.
func (s *Server) evictLocked(now int64) {
	ttl := s.jobTTL()
	if ttl == 0 || len(s.order) == 0 {
		return
	}
	cutoff := now - ttl.Milliseconds()
	keep := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		if j.terminal() && j.finished > 0 && j.finished <= cutoff {
			delete(s.jobs, id)
			s.met.jobsEvicted.Inc()
			continue
		}
		keep = append(keep, id)
	}
	s.order = keep
}

// --- HTTP handlers -------------------------------------------------------

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // encode error means the client went away
}

// writeError emits the uniform /v1 error envelope with a typed code.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, &serialize.ErrorEnvelope{
		Error: serialize.ErrorRecord{Code: code, Message: fmt.Sprintf(format, args...)},
	})
}

// handleNotFound is the catch-all route: the /v1 404 envelope.
func (s *Server) handleNotFound(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusNotFound, serialize.ErrNotFound, "no route %s", r.URL.Path)
}

// methodNotAllowed builds the per-path wrong-verb fallthrough handler.
func methodNotAllowed(allow string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allow)
		writeError(w, http.StatusMethodNotAllowed, serialize.ErrMethodNotAllowed,
			"method %s not allowed on %s (allow %s)", r.Method, r.URL.Path, allow)
	}
}

// handleSubmit accepts one request record, normalizes it and either serves
// it from the cache (200, Cached: true), coalesces it onto an identical
// in-flight job (202, Coalesced: true) or enqueues a new job (202).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req, err := serialize.DecodeRequest(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, serialize.ErrBadRequest, "%v", err)
		return
	}
	norm, err := s.normalize(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, serialize.ErrBadRequest, "%v", err)
		return
	}
	key, err := norm.CanonicalKey()
	if err != nil {
		writeError(w, http.StatusInternalServerError, serialize.ErrInternal, "%v", err)
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, serialize.ErrUnavailable, "draining: no new jobs accepted")
		return
	}
	s.evictLocked(nowMS())
	s.nextSeq++
	j := &job{
		id:        fmt.Sprintf("job-%d", s.nextSeq),
		seq:       s.nextSeq,
		key:       key,
		req:       norm,
		status:    serialize.JobQueued,
		submitted: nowMS(),
		done:      make(chan struct{}),
	}
	if env, ok := s.cache.get(key); ok {
		s.met.cacheHits.Inc()
		j.status = serialize.JobDone
		j.cached = true
		j.result = env
		j.started, j.finished = j.submitted, j.submitted
		// A cached job's event stream is just the terminal replay.
		j.feed = newFeedFor(norm)
		j.feed.finish(serialize.JobDone)
		close(j.done)
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		rec := j.record()
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, rec)
		return
	}
	if p := s.inflight[key]; p != nil {
		// Single-flight: attach to the identical in-flight job instead of
		// computing the same answer twice; the primary's completion
		// finishes every attached follower. Followers share the primary's
		// progress feed — it is the same execution.
		j.coalesced = true
		j.feed = p.feed
		p.followers = append(p.followers, j)
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		rec := j.record()
		s.mu.Unlock()
		writeJSON(w, http.StatusAccepted, rec)
		return
	}
	j.feed = newFeedFor(norm)
	select {
	case s.queued <- j:
	default:
		s.nextSeq-- // the job was never admitted
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, serialize.ErrUnavailable, "queue full (%d queued)", s.cfg.QueueDepth)
		return
	}
	s.met.cacheMisses.Inc()
	s.inflight[key] = j
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	rec := j.record()
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, rec)
}

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// handleStatus reports one job envelope; with ?wait=1 it long-polls until
// the job reaches a terminal status or the client goes away.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, serialize.ErrNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if r.URL.Query().Get("wait") != "" {
		select {
		case <-j.done:
		case <-r.Context().Done():
			return
		}
	}
	s.mu.Lock()
	rec := j.record()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, rec)
}

// listLimit parses the ?limit= query (default 100, capped at 1000).
func listLimit(raw string) (int, error) {
	if raw == "" {
		return 100, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("limit must be a positive integer, got %q", raw)
	}
	if n > 1000 {
		n = 1000
	}
	return n, nil
}

// handleList reports job envelopes in stable submit-time order, paginated.
// ?status= filters by lifecycle status, ?limit= bounds the page (default
// 100, max 1000) and ?page_token= resumes after a previous page's token;
// the response carries next_page_token while more jobs remain.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	status := q.Get("status")
	switch status {
	case "", serialize.JobQueued, serialize.JobRunning, serialize.JobDone, serialize.JobFailed, serialize.JobCancelled:
	default:
		writeError(w, http.StatusBadRequest, serialize.ErrBadRequest, "unknown status filter %q", status)
		return
	}
	limit, err := listLimit(q.Get("limit"))
	if err != nil {
		writeError(w, http.StatusBadRequest, serialize.ErrBadRequest, "%v", err)
		return
	}
	var after int64
	if tok := q.Get("page_token"); tok != "" {
		after, err = strconv.ParseInt(tok, 10, 64)
		if err != nil || after < 0 {
			writeError(w, http.StatusBadRequest, serialize.ErrBadRequest, "malformed page token %q", tok)
			return
		}
	}

	s.mu.Lock()
	s.evictLocked(nowMS())
	recs := make([]*serialize.JobRecord, 0, limit)
	var last int64
	next := ""
	for _, id := range s.order {
		j := s.jobs[id]
		if j.seq <= after || (status != "" && j.status != status) {
			continue
		}
		if len(recs) == limit {
			next = strconv.FormatInt(last, 10)
			break
		}
		recs = append(recs, j.record())
		last = j.seq
	}
	s.mu.Unlock()
	body := map[string]any{"jobs": recs}
	if next != "" {
		body["next_page_token"] = next
	}
	writeJSON(w, http.StatusOK, body)
}

// handleResult streams a completed job's result envelope — the bytes the
// equivalent CLI invocation would print with -json.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, serialize.ErrNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	s.mu.Lock()
	status, env := j.status, j.result
	s.mu.Unlock()
	if env == nil {
		writeError(w, http.StatusConflict, serialize.ErrConflict, "job %s is %s, not done", j.id, status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = serialize.EncodeEnvelope(w, env) // encode error means the client went away
}

// handleCancel cancels a queued or running job (terminal jobs are left
// untouched and reported as-is). Cancelling a primary job also cancels the
// coalesced followers riding its execution.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, serialize.ErrNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	s.mu.Lock()
	switch j.status {
	case serialize.JobQueued:
		// The dispatcher will skip it when it surfaces from the queue.
		j.finishLocked(serialize.JobCancelled, nil, "")
		if s.inflight[j.key] == j {
			// A cancelled primary never runs: release the single-flight
			// slot and cancel the followers that were riding it.
			delete(s.inflight, j.key)
			for _, f := range j.followers {
				if f.status == serialize.JobQueued {
					f.finishLocked(serialize.JobCancelled, nil, "cancelled with primary job "+j.id)
				}
			}
		}
	case serialize.JobRunning:
		j.cancel() // runJob records the terminal status
	}
	rec := j.record()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, rec)
}

// handleHealth reports liveness plus queue/cache statistics.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	status := "ok"
	if s.draining {
		status = "draining"
	}
	s.evictLocked(nowMS())
	var queued, running int
	for _, j := range s.jobs {
		switch j.status {
		case serialize.JobQueued:
			queued++
		case serialize.JobRunning:
			running++
		}
	}
	stats := map[string]any{
		"status":          status,
		"mode":            "standalone",
		"jobs_total":      len(s.jobs),
		"jobs_queued":     queued,
		"jobs_running":    running,
		"executed":        s.met.executed.Load(),
		"shards_executed": s.met.shards.Load(),
		"cache_entries":   s.cache.len(),
		"workers_total":   s.cfg.TotalWorkers,
		"workloads":       s.workloadNames(),
	}
	if s.coord != nil {
		stats["mode"] = "coordinator"
		stats["coordinator_workers"] = s.coord.workerURLs()
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, stats)
}

// handleMetrics reports the daemon's operational metrics. The default
// representation is the original flat JSON snapshot (unchanged keys, so
// pre-existing clients keep parsing it); a client preferring text/plain or
// OpenMetrics — or asking with ?format=prometheus — gets the full registry
// in the Prometheus text exposition format, histograms included. Counters
// are monotonic over the process lifetime; gauges are instantaneous.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsPrometheus(r) {
		// The registry's live gauges take the server mutex themselves; no
		// lock may be held here.
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.met.reg.WritePrometheus(w) // write error means the client went away
		return
	}
	s.mu.Lock()
	s.evictLocked(nowMS())
	status := "ok"
	if s.draining {
		status = "draining"
	}
	var queued, running int
	for _, j := range s.jobs {
		switch j.status {
		case serialize.JobQueued:
			queued++
		case serialize.JobRunning:
			running++
		}
	}
	queueDepth := len(s.queued)
	jobsTotal := len(s.jobs)
	inflight := len(s.inflight)
	cacheEntries := s.cache.len()
	cacheBytes := s.cache.bytes
	s.mu.Unlock()
	s.shardMu.Lock()
	shardsInflight := len(s.shardCalls)
	s.shardMu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":            status,
		"queue_depth":       queueDepth,
		"jobs_total":        jobsTotal,
		"jobs_queued":       queued,
		"jobs_running":      running,
		"jobs_inflight":     inflight,
		"jobs_evicted":      s.met.jobsEvicted.Load(),
		"executed":          s.met.executed.Load(),
		"cache_hits":        s.met.cacheHits.Load(),
		"cache_misses":      s.met.cacheMisses.Load(),
		"cache_entries":     cacheEntries,
		"cache_evictions":   s.met.cacheEvictions.Load(),
		"cache_bytes":       cacheBytes,
		"shards_executed":   s.met.shards.Load(),
		"shards_inflight":   shardsInflight,
		"shards_dispatched": s.met.shardsDispatched.Load(),
		"shard_retries":     s.met.shardRetries.Load(),
		"workers_evicted":   s.met.workersEvicted.Load(),
		"workers_total":     s.cfg.TotalWorkers,
	})
}
