// Package serve is the sweep-serving daemon behind cmd/swim-serve: a
// long-running HTTP/JSON service that owns trained workloads and answers
// sweep/scenario/table1/fig2 requests — the step from the research CLIs to a
// system that fronts heavy traffic.
//
// Requests arrive as serialize.RequestRecord JSON and run asynchronously on
// a bounded job queue; responses are serialize result envelopes whose cells
// wrap the same versioned result records the CLIs emit. Three properties
// make it a *deterministic* serving tier:
//
//   - Bit-identical answers. A job executes through the same
//     experiments.ScenarioResults path as the CLIs, and the mc determinism
//     contract makes its results independent of worker count and scheduling
//     — so an HTTP answer is byte-for-byte the swim-scenario -json output
//     for the equivalent invocation, no matter what else the daemon was
//     doing at the time.
//
//   - Fair-share worker budgeting. Concurrent jobs split a fixed
//     Monte-Carlo worker budget (total ÷ running jobs, re-balanced as jobs
//     start and finish) through cooperative mc.Gate shares, instead of each
//     job claiming every CPU via the process-global mc.SetWorkers.
//
//   - Canonical result caching. Requests are normalized (defaults filled,
//     scenario specs re-rendered) and hashed (serialize.CanonicalKey);
//     determinism makes equal keys interchangeable, so a repeated request
//     is served from cache without recomputation.
//
// Endpoints (see docs/ARCHITECTURE.md for the full reference):
//
//	POST /v1/jobs              submit a request → job envelope (202; 200 on cache hit)
//	GET  /v1/jobs              list job envelopes
//	GET  /v1/jobs/{id}         one job envelope (?wait=1 long-polls until terminal)
//	GET  /v1/jobs/{id}/result  completed job's result envelope
//	POST /v1/jobs/{id}/cancel  cancel a queued or running job
//	GET  /healthz              liveness + queue/cache statistics
//
// Shutdown is a graceful drain: intake stops (submits get 503), queued and
// running jobs finish, and past the drain timeout the remaining jobs are
// cancelled via context cancellation flowing through program.Pipeline.Run.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"swim/internal/experiments"
	"swim/internal/serialize"
)

// Config parameterizes a Server. The zero value serves the four registry
// workloads with NumCPU worker goroutines, two concurrent jobs and a
// 64-deep queue.
type Config struct {
	// MaxConcurrent is how many jobs execute at once (default 2). Each
	// running job receives total ÷ running workers through its fair share.
	MaxConcurrent int
	// QueueDepth bounds the submitted-but-not-running backlog (default 64);
	// submissions beyond it are rejected with 503.
	QueueDepth int
	// TotalWorkers is the Monte-Carlo worker budget split across running
	// jobs (default runtime.NumCPU()).
	TotalWorkers int
	// MaxTrials caps the per-request trial count (default 100000), keeping
	// one request from monopolizing the daemon for hours.
	MaxTrials int
	// Workloads maps request workload names to builders (default: the four
	// registry workloads lenet/convnet/resnet/tiny). Builders run at most
	// once per process, lazily, on first request — or restore instantly
	// from a state directory (experiments.SetStateDir).
	Workloads map[string]func() *experiments.Workload
	// DrainTimeout bounds graceful shutdown: once it expires, still-running
	// jobs are cancelled through their contexts (default 30s).
	DrainTimeout time.Duration
}

// DefaultWorkloads returns the standard registry workload set served by
// swim-serve: the paper's four model/task pairs, keyed by the same names
// the CLIs use.
func DefaultWorkloads() map[string]func() *experiments.Workload {
	return map[string]func() *experiments.Workload{
		"lenet":   experiments.LeNetMNIST,
		"convnet": experiments.ConvNetCIFAR,
		"resnet":  experiments.ResNetCIFAR,
		"tiny":    experiments.ResNetTiny,
	}
}

// workloadEntry lazily builds one workload exactly once, without holding
// the server mutex across a (potentially minutes-long) training run.
type workloadEntry struct {
	once  sync.Once
	build func() *experiments.Workload
	w     *experiments.Workload
}

// Server is the daemon: a workload registry, a bounded job queue executed
// by MaxConcurrent dispatchers under a fair-share worker budget, and a
// canonical-key result cache. Create with New, expose via Handler or Run.
type Server struct {
	cfg       Config
	budget    *fairShare
	mux       *http.ServeMux
	workloads map[string]*workloadEntry

	baseCtx   context.Context // parent of every job context
	cancelAll context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // submission order, for listing
	queued   chan *job
	draining bool
	cache    map[string]*serialize.ResultEnvelope

	executed atomic.Int64 // jobs actually computed (cache misses)
	seq      atomic.Int64
	wg       sync.WaitGroup // dispatcher goroutines
}

// New builds a Server and starts its dispatcher pool.
func New(cfg Config) *Server {
	if cfg.MaxConcurrent < 1 {
		cfg.MaxConcurrent = 2
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 64
	}
	if cfg.TotalWorkers < 1 {
		cfg.TotalWorkers = runtime.NumCPU()
	}
	if cfg.MaxTrials < 1 {
		cfg.MaxTrials = 100000
	}
	if cfg.Workloads == nil {
		cfg.Workloads = DefaultWorkloads()
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 30 * time.Second
	}
	s := &Server{
		cfg:       cfg,
		budget:    newFairShare(cfg.TotalWorkers),
		workloads: make(map[string]*workloadEntry, len(cfg.Workloads)),
		jobs:      make(map[string]*job),
		queued:    make(chan *job, cfg.QueueDepth),
		cache:     make(map[string]*serialize.ResultEnvelope),
	}
	s.baseCtx, s.cancelAll = context.WithCancel(context.Background())
	for name, build := range cfg.Workloads {
		s.workloads[name] = &workloadEntry{build: build}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	for i := 0; i < cfg.MaxConcurrent; i++ {
		s.wg.Add(1)
		go s.dispatch()
	}
	return s
}

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// workloadNames lists the served workloads, sorted.
func (s *Server) workloadNames() []string {
	names := make([]string, 0, len(s.workloads))
	for name := range s.workloads {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// workload resolves (building or restoring on first use) a registry
// workload.
func (s *Server) workload(name string) (*experiments.Workload, error) {
	e, ok := s.workloads[name]
	if !ok {
		return nil, fmt.Errorf("serve: unknown workload %q", name)
	}
	e.once.Do(func() { e.w = e.build() })
	if e.w == nil {
		return nil, fmt.Errorf("serve: workload %q failed to build", name)
	}
	return e.w, nil
}

// Run serves the API on l until ctx is cancelled, then drains gracefully
// and shuts the listener down. It returns the first serve error, or nil
// after a clean drain.
func (s *Server) Run(ctx context.Context, l net.Listener) error {
	srv := &http.Server{Handler: s.mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.Drain(s.cfg.DrainTimeout)
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return srv.Shutdown(shutCtx)
}

// Drain stops intake (submissions are rejected with 503), lets queued and
// running jobs finish, and cancels whatever is still running once timeout
// expires — the cancellation reaches trial bodies through
// program.Pipeline.Run's context. Idempotent; subsequent calls just wait.
func (s *Server) Drain(timeout time.Duration) {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queued) // dispatchers exit once the backlog is drained
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(timeout):
		s.cancelAll()
		<-drained
	}
}

// --- HTTP handlers -------------------------------------------------------

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // encode error means the client went away
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSubmit accepts one request record, normalizes it and either serves
// it from the cache (200, Cached: true) or enqueues a job (202).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req, err := serialize.DecodeRequest(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	norm, err := s.normalize(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key, err := norm.CanonicalKey()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}

	j := &job{
		id:        fmt.Sprintf("job-%d", s.seq.Add(1)),
		key:       key,
		req:       norm,
		status:    serialize.JobQueued,
		submitted: nowMS(),
		done:      make(chan struct{}),
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "draining: no new jobs accepted")
		return
	}
	if env, ok := s.cache[key]; ok {
		j.status = serialize.JobDone
		j.cached = true
		j.result = env
		j.started, j.finished = j.submitted, j.submitted
		close(j.done)
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		rec := j.record()
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, rec)
		return
	}
	select {
	case s.queued <- j:
	default:
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "queue full (%d queued)", s.cfg.QueueDepth)
		return
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	rec := j.record()
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, rec)
}

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// handleStatus reports one job envelope; with ?wait=1 it long-polls until
// the job reaches a terminal status or the client goes away.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if r.URL.Query().Get("wait") != "" {
		select {
		case <-j.done:
		case <-r.Context().Done():
			return
		}
	}
	s.mu.Lock()
	rec := j.record()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, rec)
}

// handleList reports every job envelope in submission order.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	recs := make([]*serialize.JobRecord, 0, len(s.order))
	for _, id := range s.order {
		recs = append(recs, s.jobs[id].record())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": recs})
}

// handleResult streams a completed job's result envelope — the bytes the
// equivalent CLI invocation would print with -json.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	s.mu.Lock()
	status, env := j.status, j.result
	s.mu.Unlock()
	if env == nil {
		writeError(w, http.StatusConflict, "job %s is %s, not done", j.id, status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = serialize.EncodeEnvelope(w, env) // encode error means the client went away
}

// handleCancel cancels a queued or running job (terminal jobs are left
// untouched and reported as-is).
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	s.mu.Lock()
	switch j.status {
	case serialize.JobQueued:
		// The dispatcher will skip it when it surfaces from the queue.
		j.status = serialize.JobCancelled
		j.finished = nowMS()
		close(j.done)
	case serialize.JobRunning:
		j.cancel() // runJob records the terminal status
	}
	rec := j.record()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, rec)
}

// handleHealth reports liveness plus queue/cache statistics.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	status := "ok"
	if s.draining {
		status = "draining"
	}
	var queued, running int
	for _, j := range s.jobs {
		switch j.status {
		case serialize.JobQueued:
			queued++
		case serialize.JobRunning:
			running++
		}
	}
	stats := map[string]any{
		"status":        status,
		"jobs_total":    len(s.jobs),
		"jobs_queued":   queued,
		"jobs_running":  running,
		"executed":      s.executed.Load(),
		"cache_entries": len(s.cache),
		"workers_total": s.cfg.TotalWorkers,
		"workloads":     s.workloadNames(),
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, stats)
}
