package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"swim/internal/serialize"
)

func getMetrics(t *testing.T, url, accept, query string) (string, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url+"/v1/metrics"+query, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: http %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp.Header.Get("Content-Type")
}

// TestMetricsPrometheusExposition scrapes the registry after a real job:
// counters, live gauges and histograms all render in the text format, under
// both negotiation paths.
func TestMetricsPrometheusExposition(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	rec, _ := submit(t, ts, testRequest(51, ""))
	if got := await(t, ts, rec.ID).Status; got != serialize.JobDone {
		t.Fatalf("job finished %s", got)
	}

	body, ct := getMetrics(t, ts.URL, "text/plain", "")
	if !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE swim_jobs_executed_total counter",
		"swim_jobs_executed_total 1",
		"# TYPE swim_job_seconds histogram",
		"swim_job_seconds_bucket{le=\"+Inf\"} 1",
		"swim_job_seconds_count 1",
		"# TYPE swim_shard_latency_seconds histogram",
		"swim_shard_latency_seconds_count 0",
		"# TYPE swim_eval_plan_seconds histogram",
		"swim_eval_plan_seconds_bucket{backend=\"scalar\",le=\"+Inf\"}",
		"# TYPE swim_cache_entries gauge",
		"swim_cache_entries 1",
		"swim_mc_trials_total 10", // 5 trials × 2 cells
		"swim_queue_depth 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}

	qBody, qCT := getMetrics(t, ts.URL, "", "?format=prometheus")
	if !strings.HasPrefix(qCT, "text/plain; version=0.0.4") {
		t.Fatalf("?format=prometheus Content-Type = %q", qCT)
	}
	if !strings.Contains(qBody, "swim_jobs_executed_total") {
		t.Fatal("?format=prometheus did not render the text exposition")
	}

	// The engine's park/wake accounting must stay balanced.
	if parks, wakes := s.met.parks.Load(), s.met.wakes.Load(); parks != wakes {
		t.Fatalf("parks %d != wakes %d", parks, wakes)
	}
}

// TestMetricsJSONBackCompat pins the legacy flat-JSON snapshot: every
// pre-existing key survives (clients grep these), with the new cache fields
// alongside.
func TestMetricsJSONBackCompat(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	rec, _ := submit(t, ts, testRequest(52, ""))
	await(t, ts, rec.ID)

	body, ct := getMetrics(t, ts.URL, "", "")
	if !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("default Content-Type = %q, want JSON", ct)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"status", "queue_depth", "jobs_total", "jobs_queued", "jobs_running",
		"jobs_inflight", "jobs_evicted", "executed", "cache_hits", "cache_misses",
		"cache_entries", "cache_evictions", "cache_bytes", "shards_executed",
		"shards_inflight", "shards_dispatched", "shard_retries",
		"workers_evicted", "workers_total",
	} {
		if _, ok := m[key]; !ok {
			t.Fatalf("JSON metrics missing key %q", key)
		}
	}
	if got := m["executed"].(float64); got != 1 {
		t.Fatalf("executed = %v, want 1", got)
	}
}
