package serve

// The coordinator half of the distributed tier. A daemon configured with
// Config.WorkerURLs never computes jobs locally: it splits each job's trial
// space [0, trials) into contiguous ranges, dispatches them as POST
// /v1/shards calls across the worker pool, retries failed shards on
// surviving workers (a worker is abandoned after a few consecutive
// failures), and merges the returned per-trial rows — in trial order,
// through the engine's exact reduction — into a result envelope
// byte-identical to single-node execution.
//
// Completed shards are journalled under StateDir/coord/<request key>/ the
// moment they arrive, so the checkpoint IS the shard wire format: a
// coordinator killed mid-job resumes by loading the journalled ranges and
// dispatching only the gaps, and unfinished journalled jobs found at
// startup are re-enqueued automatically.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"swim/internal/obs"
	"swim/internal/serialize"
)

// maxWorkerFails is how many consecutive shard failures abandon a worker.
const maxWorkerFails = 3

// autotuneMinObs is how many shard round trips the autotuner wants before
// trusting the latency median; earlier jobs fall back to the static
// heuristic.
const autotuneMinObs = 3

// defaultShardTarget is the autotuner's target shard duration when
// Config.ShardTarget is unset.
const defaultShardTarget = time.Second

// trialRange is one half-open slice [lo, hi) of a job's trial space.
type trialRange struct{ lo, hi int }

// coordWorker is one worker endpoint's dispatch state within a single job:
// failures must be consecutive to kill it, and any success resets the
// count.
type coordWorker struct {
	url   string
	fails int
}

// coordinator schedules trial-range shards across a worker pool.
type coordinator struct {
	s           *Server
	urls        []string
	shardTrials int
	target      time.Duration  // autotuner shard-duration target (0 = disabled)
	perTrial    *obs.Histogram // observed per-trial shard seconds (autotuner input)
	dir         string         // journal root ("" disables checkpointing)
	client      *http.Client
}

func newCoordinator(s *Server, cfg Config) *coordinator {
	urls := make([]string, 0, len(cfg.WorkerURLs))
	for _, u := range cfg.WorkerURLs {
		urls = append(urls, strings.TrimRight(u, "/"))
	}
	dir := ""
	if cfg.StateDir != "" {
		dir = filepath.Join(cfg.StateDir, "coord")
	}
	target := cfg.ShardTarget
	switch {
	case target == 0:
		target = defaultShardTarget
	case target < 0:
		target = 0 // explicit opt-out
	}
	return &coordinator{
		s: s, urls: urls, shardTrials: cfg.ShardTrials,
		target: target, perTrial: s.met.shardTrialSecs,
		dir: dir, client: &http.Client{},
	}
}

// workerURLs lists the configured worker endpoints (for healthz).
func (c *coordinator) workerURLs() []string {
	return append([]string(nil), c.urls...)
}

// rangeSize resolves the shard size for a job. Precedence: the configured
// ShardTrials pin wins outright; otherwise, once the autotuner has seen
// enough shard round trips, the size targets Config.ShardTarget per shard
// using the running median per-trial latency (clamped to [1, trials ÷
// workers] so every worker still gets work); before that — or with
// autotuning disabled — the static heuristic of about three dispatch waves
// per worker applies, so a lost worker costs at most a third of one
// worker's share. Shard size never affects result bytes: heterogeneous
// shards merge bit-identically, and journalled shards from a differently
// sized earlier run remain valid checkpoints.
func (c *coordinator) rangeSize(trials int) int {
	if c.shardTrials > 0 {
		return c.shardTrials
	}
	if c.target > 0 && c.perTrial.Count() >= autotuneMinObs {
		if med := c.perTrial.Quantile(0.5); med > 0 {
			size := int(c.target.Seconds() / med)
			if size < 1 {
				size = 1
			}
			if cap := trials / len(c.urls); cap >= 1 && size > cap {
				size = cap
			}
			return size
		}
	}
	size := trials / (3 * len(c.urls))
	if size < 1 {
		size = 1
	}
	return size
}

// splitRange cuts [lo, hi) into contiguous ranges of at most size trials.
func splitRange(lo, hi, size int) []trialRange {
	var out []trialRange
	for lo < hi {
		end := lo + size
		if end > hi {
			end = hi
		}
		out = append(out, trialRange{lo, end})
		lo = end
	}
	return out
}

// run executes one job by sharding its trial space across the worker pool
// and merging the rows back together. key is the job's canonical request
// hash; the journalled checkpoint lives under it. A non-nil feed is
// re-planned in shard units — one granule per shard, journalled shards
// counted up front — and advanced as shards land.
func (c *coordinator) run(ctx context.Context, key string, req *serialize.RequestRecord, feed *progressFeed) (*serialize.ResultEnvelope, error) {
	done, err := c.loadJournal(key, req)
	if err != nil {
		return nil, err
	}
	c.journalRequest(key, req)

	todo := c.missingRanges(req.Trials, done)
	cells := cellCount(req)
	covered := 0
	for _, sh := range done {
		covered += sh.Hi - sh.Lo
	}
	feed.setPlan(len(done), len(done)+len(todo), covered*cells)
	if len(todo) > 0 {
		fresh, err := c.dispatch(ctx, key, req, todo, feed, cells)
		if err != nil {
			return nil, err
		}
		done = append(done, fresh...)
	}
	env, err := serialize.MergeShards(req.Trials, done)
	if err != nil {
		return nil, err
	}
	c.journalResult(key, env)
	return env, nil
}

// missingRanges computes the trial ranges not covered by journalled
// shards, split to the job's shard size. Journalled coverage is contiguous
// non-overlapping by construction (gaps are only ever filled, never
// re-dispatched), so a simple sweep finds the holes.
func (c *coordinator) missingRanges(trials int, done []*serialize.ShardRecord) []trialRange {
	size := c.rangeSize(trials)
	sorted := append([]*serialize.ShardRecord(nil), done...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Lo < sorted[j].Lo })
	var todo []trialRange
	next := 0
	for _, sh := range sorted {
		if sh.Lo > next {
			todo = append(todo, splitRange(next, sh.Lo, size)...)
		}
		if sh.Hi > next {
			next = sh.Hi
		}
	}
	if next < trials {
		todo = append(todo, splitRange(next, trials, size)...)
	}
	return todo
}

// dispatch farms the given ranges out across the worker pool: each worker
// goroutine pulls ranges from a shared queue, failed ranges are requeued
// for surviving workers, and a worker is abandoned after maxWorkerFails
// consecutive failures. It returns once every range has a shard record, or
// fails when the whole pool is lost or ctx is cancelled.
func (c *coordinator) dispatch(ctx context.Context, key string, req *serialize.RequestRecord, todo []trialRange, feed *progressFeed, cells int) ([]*serialize.ShardRecord, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Requeues never exceed the range count (a range is queued, in flight,
	// or done), so the buffer makes every send non-blocking.
	work := make(chan trialRange, len(todo))
	for _, r := range todo {
		work <- r
	}

	var (
		mu        sync.Mutex
		recs      []*serialize.ShardRecord
		journErr  error
		remaining = len(todo)
		lastErr   atomic.Value
		aliveN    atomic.Int64
		wg        sync.WaitGroup
	)
	aliveN.Store(int64(len(c.urls)))

	for _, u := range c.urls {
		wg.Add(1)
		go func(cw *coordWorker) {
			defer wg.Done()
			for {
				var r trialRange
				var ok bool
				select {
				case r, ok = <-work:
					if !ok {
						return
					}
				case <-ctx.Done():
					return
				}
				c.s.met.shardsDispatched.Inc()
				t0 := time.Now()
				rec, err := c.callShard(ctx, cw.url, key, req, r)
				if err != nil {
					work <- r // hand the range to a surviving worker
					if ctx.Err() != nil {
						return
					}
					c.s.met.shardRetries.Inc()
					lastErr.Store(fmt.Errorf("worker %s shard [%d,%d): %w", cw.url, r.lo, r.hi, err))
					cw.fails++
					if cw.fails >= maxWorkerFails {
						if aliveN.Add(-1) == 0 {
							cancel() // whole pool lost: fail the job
						}
						c.s.met.workersEvicted.Inc()
						return
					}
					continue
				}
				sec := time.Since(t0).Seconds()
				c.s.met.shardLatency.Observe(sec)
				c.s.met.workerShardLat.With(cw.url).Observe(sec)
				c.perTrial.Observe(sec / float64(r.hi-r.lo))
				cw.fails = 0
				mu.Lock()
				if err := c.journalShard(key, rec); err != nil && journErr == nil {
					journErr = err
				}
				recs = append(recs, rec)
				remaining--
				if remaining == 0 {
					close(work) // all ranges computed: release the pool
				}
				mu.Unlock()
				feed.advance((r.hi - r.lo) * cells)
			}
		}(&coordWorker{url: u})
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if journErr != nil {
		return nil, journErr
	}
	if remaining > 0 {
		if err, _ := lastErr.Load().(error); err != nil {
			return nil, fmt.Errorf("serve: %d shard(s) unassigned, all %d workers failed; last: %w", remaining, len(c.urls), err)
		}
		return nil, fmt.Errorf("serve: %d shard(s) unassigned: %w", remaining, ctx.Err())
	}
	return recs, nil
}

// callShard asks one worker for one trial range and validates the reply
// against the canonical shard key.
func (c *coordinator) callShard(ctx context.Context, workerURL, key string, req *serialize.RequestRecord, r trialRange) (*serialize.ShardRecord, error) {
	body, err := json.Marshal(&serialize.ShardRequest{Version: serialize.ShardVersion, Request: req, Lo: r.lo, Hi: r.hi})
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, workerURL+"/v1/shards", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		if env, derr := serialize.DecodeError(resp.Body); derr == nil {
			return nil, fmt.Errorf("%s: %s", env.Error.Code, env.Error.Message)
		}
		return nil, fmt.Errorf("http %d", resp.StatusCode)
	}
	rec, err := serialize.DecodeShard(resp.Body)
	if err != nil {
		return nil, err
	}
	if err := rec.Validate(key, req.Trials); err != nil {
		return nil, err
	}
	return rec, nil
}

// --- shard journal -------------------------------------------------------

// jobDir returns the journal directory of one request key ("" when
// checkpointing is disabled).
func (c *coordinator) jobDir(key string) string {
	if c.dir == "" {
		return ""
	}
	return filepath.Join(c.dir, key)
}

// writeAtomic writes data to path via a same-directory temp file + rename,
// so the journal never holds a torn record.
func writeAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// journalShard checkpoints one completed shard under the job's directory.
func (c *coordinator) journalShard(key string, rec *serialize.ShardRecord) error {
	dir := c.jobDir(key)
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := serialize.EncodeShard(&buf, rec); err != nil {
		return err
	}
	return writeAtomic(filepath.Join(dir, fmt.Sprintf("shard-%06d-%06d.json", rec.Lo, rec.Hi)), buf.Bytes())
}

// journalRequest records the normalized request driving a job, both for
// startup resume and for debugging a checkpoint by hand. Best-effort: a
// failed write only disables resume, never the job.
func (c *coordinator) journalRequest(key string, req *serialize.RequestRecord) {
	dir := c.jobDir(key)
	if dir == "" {
		return
	}
	path := filepath.Join(dir, "request.json")
	if _, err := os.Stat(path); err == nil {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	if data, err := json.MarshalIndent(req, "", "  "); err == nil {
		_ = writeAtomic(path, data)
	}
}

// journalResult marks a job's checkpoint finished (startup resume skips
// it) and records the merged envelope. Best-effort.
func (c *coordinator) journalResult(key string, env *serialize.ResultEnvelope) {
	dir := c.jobDir(key)
	if dir == "" {
		return
	}
	var buf bytes.Buffer
	if err := serialize.EncodeEnvelope(&buf, env); err != nil {
		return
	}
	_ = writeAtomic(filepath.Join(dir, "result.json"), buf.Bytes())
}

// loadJournal returns the valid journalled shards of a request key.
// Unreadable or mismatched files are skipped — their ranges simply
// recompute.
func (c *coordinator) loadJournal(key string, req *serialize.RequestRecord) ([]*serialize.ShardRecord, error) {
	dir := c.jobDir(key)
	if dir == "" {
		return nil, nil
	}
	matches, err := filepath.Glob(filepath.Join(dir, "shard-*.json"))
	if err != nil {
		return nil, err
	}
	var out []*serialize.ShardRecord
	for _, path := range matches {
		f, err := os.Open(path)
		if err != nil {
			continue
		}
		rec, err := serialize.DecodeShard(f)
		f.Close()
		if err != nil || rec.Validate(key, req.Trials) != nil {
			continue
		}
		out = append(out, rec)
	}
	return out, nil
}

// resumePending re-enqueues unfinished journalled jobs (request.json
// without result.json) found at startup, so a coordinator killed mid-job
// picks its checkpoints back up without waiting for a client to resubmit.
func (c *coordinator) resumePending() {
	if c.dir == "" {
		return
	}
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(c.dir, e.Name())
		if _, err := os.Stat(filepath.Join(dir, "result.json")); err == nil {
			continue // finished before the restart
		}
		f, err := os.Open(filepath.Join(dir, "request.json"))
		if err != nil {
			continue
		}
		req, err := serialize.DecodeRequest(f)
		f.Close()
		if err != nil {
			continue
		}
		norm, err := c.s.normalize(req)
		if err != nil {
			continue
		}
		key, err := norm.CanonicalKey()
		if err != nil || key != e.Name() {
			continue // journal directory does not match its request
		}
		c.s.enqueueResume(key, norm)
	}
}

// enqueueResume admits one journalled request as a fresh job (used only at
// startup, before the listener is up).
func (s *Server) enqueueResume(key string, req *serialize.RequestRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.inflight[key] != nil {
		return
	}
	if _, ok := s.cache.get(key); ok {
		return
	}
	s.nextSeq++
	j := &job{
		id:        fmt.Sprintf("job-%d", s.nextSeq),
		seq:       s.nextSeq,
		key:       key,
		req:       req,
		status:    serialize.JobQueued,
		submitted: nowMS(),
		feed:      newFeedFor(req),
		done:      make(chan struct{}),
	}
	select {
	case s.queued <- j:
	default:
		s.nextSeq--
		return
	}
	s.inflight[key] = j
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
}
