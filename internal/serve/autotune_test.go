package serve

import (
	"testing"
	"time"

	"swim/internal/obs"
)

func testTuner(target time.Duration, workers int) *coordinator {
	urls := make([]string, workers)
	for i := range urls {
		urls[i] = "http://worker"
	}
	reg := obs.NewRegistry()
	return &coordinator{
		urls:     urls,
		target:   target,
		perTrial: reg.Histogram("test_shard_trial_seconds", "test", nil),
	}
}

func TestRangeSizeFallbackBeforeObservations(t *testing.T) {
	c := testTuner(time.Second, 2)
	if got := c.rangeSize(60); got != 10 { // 60 ÷ (3 waves × 2 workers)
		t.Fatalf("cold rangeSize = %d, want static heuristic 10", got)
	}
	c.perTrial.Observe(0.05)
	c.perTrial.Observe(0.05)
	if got := c.rangeSize(60); got != 10 {
		t.Fatalf("rangeSize with %d observations = %d, want heuristic until %d seen",
			c.perTrial.Count(), got, autotuneMinObs)
	}
}

func TestRangeSizeAutotunes(t *testing.T) {
	c := testTuner(time.Second, 2)
	for i := 0; i < 10; i++ {
		c.perTrial.Observe(0.05) // ≈20 trials per 1s shard
	}
	med := c.perTrial.Quantile(0.5)
	if med <= 0 {
		t.Fatalf("median = %g", med)
	}
	want := int(c.target.Seconds() / med)
	got := c.rangeSize(1000)
	if got != want {
		t.Fatalf("tuned rangeSize = %d, want target/median = %d", got, want)
	}
	// Bucket interpolation is coarse, but the answer must land near the
	// ideal 20 and far from the static heuristic 166.
	if got < 5 || got > 80 {
		t.Fatalf("tuned rangeSize = %d, implausible for 0.05 s/trial at a 1s target", got)
	}

	// Small jobs clamp so every worker still receives work.
	if got := c.rangeSize(10); got != 5 {
		t.Fatalf("clamped rangeSize = %d, want trials ÷ workers = 5", got)
	}
}

func TestRangeSizePinnedAndDisabled(t *testing.T) {
	c := testTuner(time.Second, 2)
	for i := 0; i < 10; i++ {
		c.perTrial.Observe(0.05)
	}
	c.shardTrials = 7
	if got := c.rangeSize(1000); got != 7 {
		t.Fatalf("pinned rangeSize = %d, want ShardTrials 7", got)
	}
	c.shardTrials = 0
	c.target = 0 // Config.ShardTarget < 0 resolves to disabled
	if got := c.rangeSize(60); got != 10 {
		t.Fatalf("disabled rangeSize = %d, want static heuristic 10", got)
	}
}

func TestNewCoordinatorTargetResolution(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	cases := []struct {
		in   time.Duration
		want time.Duration
	}{
		{0, defaultShardTarget},
		{-1, 0},
		{250 * time.Millisecond, 250 * time.Millisecond},
	}
	for _, tc := range cases {
		c := newCoordinator(s, Config{WorkerURLs: []string{"http://w"}, ShardTarget: tc.in})
		if c.target != tc.want {
			t.Fatalf("ShardTarget %v resolved to %v, want %v", tc.in, c.target, tc.want)
		}
		if c.perTrial == nil {
			t.Fatal("coordinator missing its autotuner histogram")
		}
	}
}
