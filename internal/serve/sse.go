package serve

// Job-progress streaming: every job owns a progressFeed — an append-only
// event log fed out-of-band by program.WithProgress (standalone mode) or by
// the coordinator's shard accounting (distributed mode). The feed backs both
// the progress block in GET /v1/jobs/{id} and the SSE stream on
// GET /v1/jobs/{id}/events, which replays the log from the start for late
// subscribers and then follows it live until the terminal done event.
//
// Progress is measured in trial-execution units: a job's trial space is
// req.Trials × cells, where cells is the scenario × read-time × policy ×
// sigma cross product (each cell re-runs every trial). Granules are cells in
// standalone mode and shards under a coordinator. The feed is strictly a
// consumer of observe-only callbacks — it can never influence trial order,
// RNG streams, or result bytes (see program.ProgressFunc).

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"swim/internal/program"
	"swim/internal/serialize"
)

// defaultSSEHeartbeat keeps idle streams alive through proxies between
// events.
const defaultSSEHeartbeat = 15 * time.Second

// cellCount returns how many pipeline cells a normalized request expands
// into. normalize guarantees every axis is non-empty (Scenarios is "none" or
// a ';'-joined list), so the product is always ≥ 1.
func cellCount(req *serialize.RequestRecord) int {
	scenarios := strings.Count(req.Scenarios, ";") + 1
	return len(req.Sigmas) * scenarios * len(req.Times) * len(req.Policies)
}

// progressFeed is one job's append-only progress-event log plus the running
// counters behind it. Safe for concurrent use; the server mutex may be held
// while calling into it (lock order: server mutex → feed mutex, never the
// reverse).
type progressFeed struct {
	mu      sync.Mutex
	events  []serialize.ProgressEvent
	changed chan struct{} // closed and replaced on every append
	closed  bool          // terminal event emitted; the log is final

	trialsTotal   int
	granulesTotal int
	trialsDone    int // trials credited by completed granules
	granule       int // completed granules
	cellTrials    int // max trials observed within the current cell (standalone)
}

// newProgressFeed builds a feed for a job spanning trialsTotal trial
// executions across granulesTotal granules.
func newProgressFeed(trialsTotal, granulesTotal int) *progressFeed {
	return &progressFeed{
		trialsTotal:   trialsTotal,
		granulesTotal: granulesTotal,
		changed:       make(chan struct{}),
	}
}

// newFeedFor sizes a feed from a normalized request: cells × trials units,
// one granule per cell (the coordinator re-plans granules as shards via
// setPlan once it knows the shard split).
func newFeedFor(req *serialize.RequestRecord) *progressFeed {
	cells := cellCount(req)
	return newProgressFeed(req.Trials*cells, cells)
}

// emitLocked appends one event snapshotting the current counters and wakes
// the streams. Call with f.mu held.
func (f *progressFeed) emitLocked(typ, status string) {
	f.events = append(f.events, serialize.ProgressEvent{
		Seq:           len(f.events),
		Type:          typ,
		Status:        status,
		TrialsDone:    f.trialsDone + f.cellTrials,
		TrialsTotal:   f.trialsTotal,
		Granule:       f.granule,
		GranulesTotal: f.granulesTotal,
	})
	close(f.changed)
	f.changed = make(chan struct{})
}

// observe is the program.ProgressFunc for standalone execution. Trial
// events from concurrent engine workers may arrive out of order, so the
// within-cell counter keeps the running maximum; the cell transition happens
// only on the pipeline's final Complete event, which is ordered after every
// trial event of its run.
func (f *progressFeed) observe(p program.Progress) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	switch {
	case p.Complete:
		f.trialsDone += p.TrialsTotal
		f.granule++
		f.cellTrials = 0
		f.emitLocked(serialize.EventGranule, "")
	case p.TrialDone:
		if p.TrialsDone > f.cellTrials {
			f.cellTrials = p.TrialsDone
			f.emitLocked(serialize.EventProgress, "")
		}
	}
}

// setPlan re-plans the feed's granule accounting for coordinator execution:
// granulesTotal shards, of which granulesDone (journalled before this run)
// already cover trialsDone trial executions. Emits one progress event so
// subscribers see the resumed baseline.
func (f *progressFeed) setPlan(granulesDone, granulesTotal, trialsDone int) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.granule = granulesDone
	f.granulesTotal = granulesTotal
	f.trialsDone = trialsDone
	f.cellTrials = 0
	f.emitLocked(serialize.EventProgress, "")
}

// advance credits one completed coordinator shard spanning the given number
// of trial executions.
func (f *progressFeed) advance(trials int) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.trialsDone += trials
	f.granule++
	f.emitLocked(serialize.EventGranule, "")
}

// finish emits the stream's terminal done event carrying the job's final
// status and seals the log. Idempotent. A successful job snaps the counters
// to their totals (cache/coalesce/journal-resume paths may have skipped
// intermediate events).
func (f *progressFeed) finish(status string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	if status == serialize.JobDone {
		f.trialsDone = f.trialsTotal
		f.granule = f.granulesTotal
	}
	f.cellTrials = 0
	f.emitLocked(serialize.EventDone, status)
	f.closed = true
}

// snapshot returns the feed's counters as the job-record progress block.
func (f *progressFeed) snapshot() *serialize.ProgressRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return &serialize.ProgressRecord{
		TrialsDone:    f.trialsDone + f.cellTrials,
		TrialsTotal:   f.trialsTotal,
		Granule:       f.granule,
		GranulesTotal: f.granulesTotal,
	}
}

// after returns a copy of the events from index i on, whether the log is
// sealed, and the channel signalling the next append. When sealed is true
// the returned slice completes the log.
func (f *progressFeed) after(i int) (tail []serialize.ProgressEvent, sealed bool, changed <-chan struct{}) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if i < len(f.events) {
		tail = append(tail, f.events[i:]...)
	}
	return tail, f.closed, f.changed
}

// writeSSE renders one event as an SSE frame: event type, id (the sequence
// number, so clients can detect gaps) and the JSON payload.
func writeSSE(w io.Writer, ev *serialize.ProgressEvent) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", ev.Type, ev.Seq, data)
	return err
}

// sseHeartbeat resolves the configured heartbeat interval.
func (s *Server) sseHeartbeat() time.Duration {
	if s.cfg.SSEHeartbeat > 0 {
		return s.cfg.SSEHeartbeat
	}
	return defaultSSEHeartbeat
}

// handleEvents streams a job's progress events as Server-Sent Events. The
// full log replays from the start (late subscribers see every event), then
// the stream follows live appends, emits comment heartbeats while idle, and
// ends after the terminal done event — or when the client disconnects or
// the daemon shuts down. Terminal jobs replay instantly and close.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, serialize.ErrNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, serialize.ErrInternal, "streaming unsupported by this connection")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	s.met.sseClients.Add(1)
	defer s.met.sseClients.Add(-1)

	ticker := time.NewTicker(s.sseHeartbeat())
	defer ticker.Stop()
	next := 0
	for {
		tail, sealed, changed := j.feed.after(next)
		for i := range tail {
			if err := writeSSE(w, &tail[i]); err != nil {
				return // client went away
			}
		}
		if len(tail) > 0 {
			next += len(tail)
			flusher.Flush()
		}
		if sealed {
			return
		}
		select {
		case <-changed:
		case <-ticker.C:
			if _, err := io.WriteString(w, ": heartbeat\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		case <-s.baseCtx.Done():
			return
		}
	}
}
