package serve

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"swim/internal/calib"
	"swim/internal/cost"
	"swim/internal/experiments"
	"swim/internal/kernel"
	"swim/internal/mc"
	"swim/internal/program"
	"swim/internal/serialize"
)

// normalize validates a client request and fills every defaulted field, so
// the canonical key is computed over the fully explicit computation. A
// request and its explicit normalization therefore share a cache entry, and
// the daemon refuses what it cannot faithfully execute (unknown kinds,
// workloads, policies, future fields).
func (s *Server) normalize(req *serialize.RequestRecord) (*serialize.RequestRecord, error) {
	n := *req // shallow copy; slices are replaced wholesale below when defaulted
	if len(n.Extra) > 0 {
		keys := make([]string, 0, len(n.Extra))
		for k := range n.Extra {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return nil, fmt.Errorf("unknown request fields %v (daemon speaks request version %d)",
			keys, serialize.RequestVersion)
	}
	if n.Version == 0 {
		n.Version = serialize.RequestVersion
	}
	if n.Version != serialize.RequestVersion {
		return nil, fmt.Errorf("unsupported request version %d (daemon speaks %d)", n.Version, serialize.RequestVersion)
	}
	if n.Kind == "" {
		n.Kind = serialize.KindSweep
	}
	if n.Workload == "" {
		if n.Kind == serialize.KindFig2 {
			n.Workload = "convnet"
		} else {
			n.Workload = "lenet"
		}
	}
	if _, ok := s.workloads[n.Workload]; !ok {
		return nil, fmt.Errorf("unknown workload %q (serving: %s)", n.Workload, strings.Join(s.workloadNames(), ", "))
	}

	def := experiments.DefaultScenarioConfig()
	switch n.Kind {
	case serialize.KindSweep:
		n.Sigmas = defaultFloats(n.Sigmas, []float64{experiments.SigmaHigh})
		n.Policies = defaultStrings(n.Policies, []string{"swim"})
		n.NWCs = defaultFloats(n.NWCs, def.NWCs)
		n.Times = defaultFloats(n.Times, []float64{0})
	case serialize.KindScenario:
		n.Sigmas = defaultFloats(n.Sigmas, []float64{experiments.SigmaHigh})
		n.Policies = defaultStrings(n.Policies, def.Policies)
		n.NWCs = defaultFloats(n.NWCs, def.NWCs)
		n.Times = defaultFloats(n.Times, def.Times)
	case serialize.KindTable1:
		n.Sigmas = defaultFloats(n.Sigmas, experiments.SigmaGrid())
		n.Policies = defaultStrings(n.Policies, experiments.Methods)
		n.NWCs = defaultFloats(n.NWCs, experiments.DefaultNWCs())
		n.Times = defaultFloats(n.Times, []float64{0})
	case serialize.KindFig2:
		n.Sigmas = defaultFloats(n.Sigmas, []float64{experiments.SigmaHigh})
		n.Policies = defaultStrings(n.Policies, experiments.Methods)
		n.NWCs = defaultFloats(n.NWCs, experiments.DefaultNWCs())
		n.Times = defaultFloats(n.Times, []float64{0})
	default:
		return nil, fmt.Errorf("unknown request kind %q (want %s, %s, %s or %s)", n.Kind,
			serialize.KindSweep, serialize.KindScenario, serialize.KindTable1, serialize.KindFig2)
	}
	if n.Seed == 0 {
		n.Seed = def.Seed
	}
	if n.Trials <= 0 {
		n.Trials = def.Trials
	}
	if n.Trials > s.cfg.MaxTrials {
		return nil, fmt.Errorf("trials %d exceeds the daemon's cap %d", n.Trials, s.cfg.MaxTrials)
	}
	if n.EvalBatch <= 0 {
		n.EvalBatch = def.EvalBatch
	}

	for _, sigma := range n.Sigmas {
		if sigma <= 0 {
			return nil, fmt.Errorf("device sigma must be positive, got %g", sigma)
		}
	}
	prev := 0.0
	for _, nwc := range n.NWCs {
		if nwc < 0 || nwc < prev {
			return nil, fmt.Errorf("nwcs must be non-negative and non-decreasing, got %v", n.NWCs)
		}
		prev = nwc
	}
	for _, t := range n.Times {
		if t < 0 {
			return nil, fmt.Errorf("read times must be non-negative, got %v", n.Times)
		}
	}
	for _, p := range n.Policies {
		if _, err := program.Lookup(p); err != nil {
			return nil, err
		}
	}
	// Re-render the scenario list canonically (defaults filled in, "none"
	// spelled out) so spelling variants of the same stack share a key.
	scenarios, err := experiments.ParseScenarios(n.Scenarios)
	if err != nil {
		return nil, err
	}
	if len(scenarios) == 0 {
		n.Scenarios = "none"
	} else {
		specs := make([]string, len(scenarios))
		for i, sc := range scenarios {
			specs[i] = sc.Spec
		}
		n.Scenarios = strings.Join(specs, ";")
	}
	// Canonicalize the cost axis the same way: "none" collapses to the
	// empty (disabled) form, anything else re-renders as the fully
	// spelled-out model spec, so "rram" and its explicit form share a key
	// while every distinct model gets its own.
	switch c := strings.TrimSpace(n.Cost); c {
	case "", "none":
		n.Cost = ""
	default:
		m, err := cost.Parse(c)
		if err != nil {
			return nil, err
		}
		n.Cost = m.Spec()
	}
	// Canonicalize the calibration axis like the cost axis: "none" collapses
	// to the empty (disabled) form, anything else re-renders fully spelled
	// out. Unlike kernel, calib DOES enter the canonical key — corrected
	// read-outs are a different computation.
	switch c := strings.TrimSpace(n.Calib); c {
	case "", "none":
		n.Calib = ""
	default:
		m, err := calib.Parse(c)
		if err != nil {
			return nil, err
		}
		n.Calib = m.Spec()
	}
	// Canonicalize the kernel axis: an empty request inherits the daemon
	// default, then "" and "scalar" collapse to the empty (default) form
	// and anything else re-renders through the registry. The spec is
	// recorded in the job's request for observability, but it never enters
	// the canonical key — backends are bit-identical, so requests differing
	// only here share a cache entry (see RequestRecord.Kernel).
	if strings.TrimSpace(n.Kernel) == "" {
		n.Kernel = s.cfg.Kernel
	}
	switch k := strings.TrimSpace(n.Kernel); k {
	case "", "scalar":
		n.Kernel = ""
	default:
		kb, err := kernel.Parse(k)
		if err != nil {
			return nil, err
		}
		n.Kernel = kb.Spec()
	}
	return &n, nil
}

func defaultFloats(v, def []float64) []float64 {
	if len(v) > 0 {
		return v
	}
	return append([]float64(nil), def...)
}

func defaultStrings(v, def []string) []string {
	if len(v) > 0 {
		return v
	}
	return append([]string(nil), def...)
}

// execute runs one normalized request to completion: the workload is built
// (or restored) once and cached, then every σ-slice of the request grid runs
// through experiments.ScenarioResults with the job's fair-share worker gate.
// A non-nil feed observes per-trial and per-cell progress out-of-band via
// program.WithProgress. The resulting envelope is bit-identical to the
// equivalent CLI invocation at any worker split, by the mc determinism
// contract — progress observation cannot perturb it (see
// program.ProgressFunc).
func (s *Server) execute(ctx context.Context, req *serialize.RequestRecord, gate mc.Gate, feed *progressFeed) (*serialize.ResultEnvelope, error) {
	w, err := s.workload(req.Workload)
	if err != nil {
		return nil, err
	}
	scenarios, err := experiments.ParseScenarios(req.Scenarios)
	if err != nil {
		return nil, err
	}
	cfg := experiments.ScenarioConfig{
		NWCs:      req.NWCs,
		Times:     req.Times,
		Policies:  req.Policies,
		Trials:    req.Trials,
		Seed:      req.Seed,
		EvalBatch: req.EvalBatch,
		Cost:      req.Cost,
		Calib:     req.Calib,
		Kernel:    req.Kernel,
	}
	opts := []program.Option{
		program.WithWorkers(s.cfg.TotalWorkers),
		program.WithWorkerGate(gate),
	}
	if feed != nil {
		opts = append(opts, program.WithProgress(feed.observe))
	}
	env := &serialize.ResultEnvelope{}
	for _, sigma := range req.Sigmas {
		results, err := experiments.ScenarioResults(ctx, w, sigma, scenarios, cfg, opts...)
		if err != nil {
			return nil, err
		}
		env.Cells = append(env.Cells, experiments.EnvelopeCells(req.Workload, sigma, results)...)
	}
	return env, nil
}
