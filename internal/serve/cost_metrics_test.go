package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"swim/internal/cost"
	"swim/internal/serialize"
)

// TestServeCostAxis pins the cost tier end to end over HTTP: a cost-bearing
// sweep request returns an envelope byte-identical to the CLI path running
// the same cost model, and the envelope actually carries cost blocks.
func TestServeCostAxis(t *testing.T) {
	_, ts := newTestServer(t, Config{TotalWorkers: 2})
	req := testRequest(303, "")
	req.Cost = "rram"
	want := referenceEnvelope(t, req)
	if !bytes.Contains(want, []byte(`"cost"`)) {
		t.Fatalf("reference envelope carries no cost block:\n%s", want)
	}

	rec, code := submit(t, ts, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit code %d", code)
	}
	if done := await(t, ts, rec.ID); done.Status != serialize.JobDone {
		t.Fatalf("job %s (%s)", done.Status, done.Error)
	}
	if got := fetchResult(t, ts, rec.ID); !bytes.Equal(got, want) {
		t.Errorf("cost-bearing result differs from the CLI path:\nhttp: %s\ncli:  %s", got, want)
	}
}

// TestNormalizeCostCanonical pins the cache contract on the cost axis: a
// preset name and its fully spelled-out spec normalize to the same canonical
// key, "none" collapses to the disabled form, distinct models get distinct
// keys, and a malformed spec is rejected at submission.
func TestNormalizeCostCanonical(t *testing.T) {
	s, _ := newTestServer(t, Config{TotalWorkers: 1})
	key := func(c string) string {
		t.Helper()
		n, err := s.normalize(&serialize.RequestRecord{Kind: serialize.KindSweep, Workload: "test", Cost: c})
		if err != nil {
			t.Fatal(err)
		}
		k, err := n.CanonicalKey()
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	m, err := cost.Parse("rram")
	if err != nil {
		t.Fatal(err)
	}
	if key("rram") != key(m.Spec()) {
		t.Error("preset name and spelled-out spec hash differently")
	}
	if key("") != key("none") {
		t.Error(`"" and "none" hash differently`)
	}
	if key("rram") == key("") {
		t.Error("cost axis does not participate in the canonical key")
	}
	if key("rram") == key("ramwich") {
		t.Error("distinct cost models share a canonical key")
	}
	if _, err := s.normalize(&serialize.RequestRecord{Kind: serialize.KindSweep, Workload: "test", Cost: "warpcore"}); err == nil {
		t.Error("unknown cost model accepted")
	}
}

// TestServeMetrics exercises the /v1/metrics snapshot: counters reflect a
// computed job and its cache hit, the shard-dispatch counters are present
// (zero in standalone mode), and the wrong verb gets the 405 envelope.
func TestServeMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{TotalWorkers: 1})
	req := testRequest(404, "")
	first, _ := submit(t, ts, req)
	await(t, ts, first.ID)
	if second, code := submit(t, ts, req); code != http.StatusOK || !second.Cached {
		t.Fatalf("repeat submit not cached: %d %+v", code, second)
	}

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	want := map[string]float64{
		"cache_hits": 1, "cache_misses": 1, "executed": 1, "cache_entries": 1,
		"jobs_total": 2, "jobs_queued": 0, "jobs_running": 0, "queue_depth": 0,
		"shards_dispatched": 0, "shard_retries": 0, "workers_evicted": 0,
	}
	for k, v := range want {
		got, ok := m[k].(float64)
		if !ok || got != v {
			t.Errorf("metrics[%q] = %v, want %g (all: %v)", k, m[k], v, m)
		}
	}
	if m["status"] != "ok" {
		t.Errorf("metrics status = %v", m["status"])
	}

	post, err := http.Post(ts.URL+"/v1/metrics", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/metrics = %d, want 405", post.StatusCode)
	}
}
