package serve

// The daemon's observability surface: every operational counter lives in one
// obs.Registry, exposed on GET /v1/metrics as Prometheus text or as the
// original flat JSON snapshot via content negotiation. The registry replaces
// the ad-hoc atomic counter struct the server used to carry; instruments are
// shared by reference with the subsystems that update them (fair-share gate,
// coordinator, cache).

import (
	"net/http"
	"strings"

	"swim/internal/obs"
	"swim/internal/serialize"
)

// serverMetrics bundles the daemon's registry and the instruments updated on
// hot paths. It implements eval.PlanObserver, wiring per-plan-execution
// latency into the per-backend histogram vector.
type serverMetrics struct {
	reg *obs.Registry

	executed       *obs.Counter // jobs actually computed (cache misses that ran)
	shards         *obs.Counter // trial-range shards computed by this worker
	cacheHits      *obs.Counter // submissions answered straight from the cache
	cacheMisses    *obs.Counter // submissions that enqueued a fresh computation
	cacheEvictions *obs.Counter // result-cache entries evicted by the LRU bounds
	cacheBytes     *obs.Gauge   // encoded bytes held by the result cache
	jobsEvicted    *obs.Counter // terminal jobs dropped by the TTL sweep
	// Coordinator-mode dispatch counters (zero in standalone mode).
	shardsDispatched *obs.Counter // shard calls attempted against workers
	shardRetries     *obs.Counter // failed shard calls requeued elsewhere
	workersEvicted   *obs.Counter // workers abandoned after repeated failures
	// Engine-level events reported through the fair-share gate's Observer.
	trials *obs.Counter // Monte-Carlo trials completed in this process
	parks  *obs.Counter // engine workers parked by the fair-share gate
	wakes  *obs.Counter // parked engine workers resumed

	sseClients *obs.Gauge // currently connected /v1/jobs/{id}/events streams

	jobStage       *obs.Stage        // wall-clock of each executed job
	shardLatency   *obs.Histogram    // coordinator-observed shard round trips
	shardTrialSecs *obs.Histogram    // shard round trip ÷ trial count (autotuner input)
	workerShardLat *obs.HistogramVec // shard round trips by worker URL
	planLatency    *obs.HistogramVec // compiled-plan batch executions by kernel backend
}

// newServerMetrics builds the daemon's registry: counters and histograms the
// subsystems update directly, plus live gauges computed from server state at
// exposition time. The gauge functions take the server mutex, so exposition
// must never run while it is held.
func newServerMetrics(s *Server) *serverMetrics {
	r := obs.NewRegistry()
	m := &serverMetrics{
		reg:              r,
		executed:         r.Counter("swim_jobs_executed_total", "jobs computed to completion (cache misses that ran)"),
		jobsEvicted:      r.Counter("swim_jobs_evicted_total", "terminal jobs dropped by the TTL sweep"),
		cacheHits:        r.Counter("swim_cache_hits_total", "submissions answered from the canonical-key result cache"),
		cacheMisses:      r.Counter("swim_cache_misses_total", "submissions that enqueued a fresh computation"),
		cacheEvictions:   r.Counter("swim_cache_evictions_total", "result-cache entries evicted by the LRU bounds"),
		cacheBytes:       r.Gauge("swim_cache_bytes", "encoded result bytes held by the cache"),
		shards:           r.Counter("swim_shards_executed_total", "trial-range shards computed by this worker"),
		shardsDispatched: r.Counter("swim_shards_dispatched_total", "shard calls attempted against workers"),
		shardRetries:     r.Counter("swim_shard_retries_total", "failed shard calls requeued onto surviving workers"),
		workersEvicted:   r.Counter("swim_workers_evicted_total", "workers abandoned after repeated shard failures"),
		trials:           r.Counter("swim_mc_trials_total", "Monte-Carlo trials completed in this process"),
		parks:            r.Counter("swim_mc_worker_parks_total", "engine workers parked by the fair-share gate"),
		wakes:            r.Counter("swim_mc_worker_wakes_total", "parked engine workers resumed"),
		sseClients:       r.Gauge("swim_sse_clients", "connected job-event SSE streams"),
	}
	m.jobStage = &obs.Stage{H: r.Histogram("swim_job_seconds", "wall-clock seconds per executed job", nil)}
	m.shardLatency = r.Histogram("swim_shard_latency_seconds", "coordinator-observed shard round-trip seconds", nil)
	m.shardTrialSecs = r.Histogram("swim_shard_trial_seconds", "shard round-trip seconds per trial (autotuner input)", nil)
	m.workerShardLat = r.HistogramVec("swim_worker_shard_latency_seconds", "shard round-trip seconds by worker", "worker", nil)
	m.planLatency = r.HistogramVec("swim_eval_plan_seconds", "compiled-plan batch execution seconds by kernel backend", "backend", nil)

	r.GaugeFunc("swim_queue_depth", "jobs waiting in the submission queue", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.queued))
	})
	r.GaugeFunc("swim_jobs_queued", "jobs in the queued state", func() float64 {
		q, _ := s.jobStates()
		return float64(q)
	})
	r.GaugeFunc("swim_jobs_running", "jobs in the running state", func() float64 {
		_, run := s.jobStates()
		return float64(run)
	})
	r.GaugeFunc("swim_jobs_total", "jobs retained in the job table", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.jobs))
	})
	r.GaugeFunc("swim_jobs_inflight", "distinct canonical keys executing (single-flight primaries)", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.inflight))
	})
	r.GaugeFunc("swim_cache_entries", "entries in the canonical-key result cache", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.cache.len())
	})
	r.GaugeFunc("swim_shards_inflight", "shard executions currently running on this worker", func() float64 {
		s.shardMu.Lock()
		defer s.shardMu.Unlock()
		return float64(len(s.shardCalls))
	})
	r.GaugeFunc("swim_workers_total", "configured Monte-Carlo worker budget", func() float64 {
		return float64(s.cfg.TotalWorkers)
	})
	return m
}

// ObservePlan implements eval.PlanObserver: one compiled-plan batch
// execution, bucketed by kernel backend. Allocation-free once a backend's
// child histogram exists (backends are a small fixed set).
func (m *serverMetrics) ObservePlan(backend string, seconds float64) {
	m.planLatency.With(backend).Observe(seconds)
}

// jobStates counts queued and running jobs under the server mutex.
func (s *Server) jobStates() (queued, running int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		switch j.status {
		case serialize.JobQueued:
			queued++
		case serialize.JobRunning:
			running++
		}
	}
	return queued, running
}

// wantsPrometheus decides the /v1/metrics representation: the Prometheus
// text exposition when the client asks for it via ?format=prometheus or an
// Accept header preferring text/plain (or OpenMetrics), the original flat
// JSON snapshot otherwise — so pre-existing JSON clients keep working
// untouched while scrapers get histograms.
func wantsPrometheus(r *http.Request) bool {
	if r.URL.Query().Get("format") == "prometheus" {
		return true
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}
