package serve

import (
	"bytes"
	"net/http"
	"testing"

	"swim/internal/serialize"
)

// TestNormalizeKernelCanonical pins the kernel axis's cache contract: specs
// canonicalize ("scalar" and "" collapse to the default form), the axis is
// excluded from the canonical key, the daemon default fills empty requests,
// and a malformed spec is rejected at submission.
func TestNormalizeKernelCanonical(t *testing.T) {
	s, _ := newTestServer(t, Config{TotalWorkers: 1})
	norm := func(k string) *serialize.RequestRecord {
		t.Helper()
		n, err := s.normalize(&serialize.RequestRecord{Kind: serialize.KindSweep, Workload: "test", Kernel: k})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	key := func(k string) string {
		t.Helper()
		ck, err := norm(k).CanonicalKey()
		if err != nil {
			t.Fatal(err)
		}
		return ck
	}
	if got := norm("scalar").Kernel; got != "" {
		t.Errorf(`"scalar" normalized to %q, want the empty default form`, got)
	}
	if got := norm("parallel:workers=0").Kernel; got != "parallel" {
		t.Errorf(`"parallel:workers=0" normalized to %q, want "parallel"`, got)
	}
	if key("") != key("blocked") || key("blocked") != key("parallel:workers=3") {
		t.Error("kernel axis leaked into the canonical key")
	}
	if _, err := s.normalize(&serialize.RequestRecord{Kind: serialize.KindSweep, Workload: "test", Kernel: "simd9000"}); err == nil {
		t.Error("unknown kernel backend accepted")
	}
	if _, err := s.normalize(&serialize.RequestRecord{Kind: serialize.KindSweep, Workload: "test", Kernel: "parallel:workers=1.5"}); err == nil {
		t.Error("fractional worker count accepted")
	}

	// A daemon started with a default backend applies it to requests that
	// leave the axis empty — without touching their cache identity.
	d, _ := newTestServer(t, Config{TotalWorkers: 1, Kernel: "blocked"})
	dn, err := d.normalize(&serialize.RequestRecord{Kind: serialize.KindSweep, Workload: "test"})
	if err != nil {
		t.Fatal(err)
	}
	if dn.Kernel != "blocked" {
		t.Errorf("daemon default not applied: kernel = %q", dn.Kernel)
	}
	dk, err := dn.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	if dk != key("") {
		t.Error("daemon-default kernel changed the canonical key")
	}
}

// TestServeKernelAxisByteIdentity pins the determinism contract over HTTP: a
// request computed with the parallel backend returns an envelope
// byte-identical to the scalar CLI path, and a follow-up request differing
// only in kernel is answered from the cache (shared canonical key).
func TestServeKernelAxisByteIdentity(t *testing.T) {
	_, ts := newTestServer(t, Config{TotalWorkers: 2})
	req := testRequest(505, "")
	want := referenceEnvelope(t, req) // scalar, sequential

	req.Kernel = "parallel:workers=2"
	rec, code := submit(t, ts, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit code %d", code)
	}
	if done := await(t, ts, rec.ID); done.Status != serialize.JobDone {
		t.Fatalf("job %s (%s)", done.Status, done.Error)
	}
	if got := fetchResult(t, ts, rec.ID); !bytes.Equal(got, want) {
		t.Errorf("parallel-kernel result differs from the scalar CLI path:\nhttp: %s\ncli:  %s", got, want)
	}

	req.Kernel = "blocked"
	second, code := submit(t, ts, req)
	if code != http.StatusOK || !second.Cached {
		t.Fatalf("kernel-only change missed the cache: %d %+v", code, second)
	}
}
