package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"swim/internal/serialize"
)

// sseFrame is one parsed frame off an SSE stream; comment frames (heartbeats)
// carry only the comment flag.
type sseFrame struct {
	event   string
	id      string
	data    string
	comment bool
}

// sseStream wraps one open /v1/jobs/{id}/events connection with a background
// frame reader, so tests can wait for frames with a deadline.
type sseStream struct {
	cancel context.CancelFunc
	frames chan sseFrame
	errs   chan error
}

func openSSE(t *testing.T, baseURL, id string) *sseStream {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		cancel()
		t.Fatalf("events stream: http %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		resp.Body.Close()
		cancel()
		t.Fatalf("events Content-Type = %q, want text/event-stream", ct)
	}
	s := &sseStream{cancel: cancel, frames: make(chan sseFrame), errs: make(chan error, 1)}
	go func() {
		defer resp.Body.Close()
		r := bufio.NewReader(resp.Body)
		for {
			f, err := readSSEFrame(r)
			if err != nil {
				s.errs <- err
				return
			}
			s.frames <- *f
		}
	}()
	t.Cleanup(cancel)
	return s
}

// readSSEFrame reads one blank-line-terminated frame.
func readSSEFrame(r *bufio.Reader) (*sseFrame, error) {
	f := &sseFrame{}
	seen := false
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		line = strings.TrimRight(line, "\n")
		if line == "" {
			if seen {
				return f, nil
			}
			continue
		}
		seen = true
		switch {
		case strings.HasPrefix(line, "event: "):
			f.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "id: "):
			f.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "data: "):
			f.data = strings.TrimPrefix(line, "data: ")
		case strings.HasPrefix(line, ":"):
			f.comment = true
		}
	}
}

// next waits for the stream's next non-comment frame.
func (s *sseStream) next(t *testing.T) sseFrame {
	t.Helper()
	for {
		select {
		case f := <-s.frames:
			if f.comment {
				continue
			}
			return f
		case err := <-s.errs:
			t.Fatalf("stream ended early: %v", err)
		case <-time.After(10 * time.Second):
			t.Fatal("timed out waiting for SSE frame")
		}
	}
}

// expectEOF waits for the background reader to hit end-of-stream.
func (s *sseStream) expectEOF(t *testing.T) {
	t.Helper()
	for {
		select {
		case f := <-s.frames:
			if f.comment {
				continue
			}
			t.Fatalf("unexpected frame after terminal event: %+v", f)
		case <-s.errs:
			return // io.EOF or the connection closing both mean the stream ended
		case <-time.After(10 * time.Second):
			t.Fatal("stream did not close after terminal event")
		}
	}
}

func decodeEvent(t *testing.T, f sseFrame) serialize.ProgressEvent {
	t.Helper()
	var ev serialize.ProgressEvent
	if err := json.Unmarshal([]byte(f.data), &ev); err != nil {
		t.Fatalf("frame data %q: %v", f.data, err)
	}
	return ev
}

// insertFakeJob registers a hand-driven running job so SSE mechanics can be
// tested without executing a workload.
func insertFakeJob(s *Server, id string, feed *progressFeed) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextSeq++
	j := &job{
		id: id, seq: s.nextSeq, key: "fake-" + id,
		status: serialize.JobRunning, submitted: nowMS(), started: nowMS(),
		feed: feed, done: make(chan struct{}),
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	return j
}

func TestCellCount(t *testing.T) {
	req := testRequest(1, "")
	norm := &serialize.RequestRecord{
		Sigmas: req.Sigmas, Scenarios: "none", Times: req.Times, Policies: req.Policies,
	}
	if got := cellCount(norm); got != 2 { // 1 sigma × 1 scenario × 1 time × 2 policies
		t.Fatalf("cellCount = %d, want 2", got)
	}
	norm.Scenarios = "drift:tau=1;read_noise:sigma=0.1"
	norm.Sigmas = []float64{1, 2}
	if got := cellCount(norm); got != 8 {
		t.Fatalf("cellCount = %d, want 8", got)
	}
}

// TestSSELiveFollow subscribes before any event exists and follows granule
// advancement through the terminal done event.
func TestSSELiveFollow(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	feed := newProgressFeed(10, 2)
	insertFakeJob(s, "job-live", feed)

	st := openSSE(t, ts.URL, "job-live")
	feed.advance(5)
	f := st.next(t)
	if f.event != serialize.EventGranule || f.id != "0" {
		t.Fatalf("first frame = %+v, want granule seq 0", f)
	}
	ev := decodeEvent(t, f)
	if ev.TrialsDone != 5 || ev.TrialsTotal != 10 || ev.Granule != 1 || ev.GranulesTotal != 2 {
		t.Fatalf("event counters = %+v", ev)
	}
	feed.advance(5)
	ev = decodeEvent(t, st.next(t))
	if ev.TrialsDone != 10 || ev.Granule != 2 {
		t.Fatalf("second event counters = %+v", ev)
	}
	feed.finish(serialize.JobDone)
	f = st.next(t)
	if f.event != serialize.EventDone {
		t.Fatalf("terminal frame = %+v, want done", f)
	}
	if ev := decodeEvent(t, f); ev.Status != serialize.JobDone || ev.TrialsDone != 10 {
		t.Fatalf("terminal event = %+v", ev)
	}
	st.expectEOF(t)
}

// TestSSEReplayMidJob subscribes after events already accumulated: the full
// log replays from seq 0, then the stream follows live.
func TestSSEReplayMidJob(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	feed := newProgressFeed(6, 3)
	insertFakeJob(s, "job-replay", feed)
	feed.advance(2)
	feed.advance(2)

	st := openSSE(t, ts.URL, "job-replay")
	for i := 0; i < 2; i++ {
		ev := decodeEvent(t, st.next(t))
		if ev.Seq != i || ev.TrialsDone != 2*(i+1) {
			t.Fatalf("replayed event %d = %+v", i, ev)
		}
	}
	feed.advance(2)
	if ev := decodeEvent(t, st.next(t)); ev.Seq != 2 || ev.TrialsDone != 6 {
		t.Fatalf("live event = %+v", ev)
	}
	feed.finish(serialize.JobFailed)
	f := st.next(t)
	if f.event != serialize.EventDone {
		t.Fatalf("terminal frame = %+v", f)
	}
	if ev := decodeEvent(t, f); ev.Status != serialize.JobFailed || ev.TrialsDone != 6 {
		t.Fatalf("failed terminal event = %+v (failure must not snap counters)", ev)
	}
	st.expectEOF(t)
}

// TestSSEClientDisconnect drops the client mid-stream; the handler must
// notice and release its slot (the connected-streams gauge returns to zero).
func TestSSEClientDisconnect(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	feed := newProgressFeed(4, 1)
	insertFakeJob(s, "job-drop", feed)

	st := openSSE(t, ts.URL, "job-drop")
	feed.advance(2)
	st.next(t)
	if got := s.met.sseClients.Load(); got != 1 {
		t.Fatalf("sse_clients = %d with one open stream", got)
	}
	st.cancel()
	deadline := time.Now().Add(10 * time.Second)
	for s.met.sseClients.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("handler did not release the stream after client disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
	feed.finish(serialize.JobCancelled)
}

// TestSSEShutdownClosesStreams cancels the daemon lifecycle context (the
// hard-drain path): every open stream must end even though its job never
// reached a terminal event.
func TestSSEShutdownClosesStreams(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	feed := newProgressFeed(4, 1)
	insertFakeJob(s, "job-shutdown", feed)

	st := openSSE(t, ts.URL, "job-shutdown")
	feed.advance(1)
	st.next(t)
	s.cancelAll()
	st.expectEOF(t)
}

// TestSSEHeartbeat shrinks the heartbeat interval and asserts idle comment
// frames flow while no events fire.
func TestSSEHeartbeat(t *testing.T) {
	s, ts := newTestServer(t, Config{SSEHeartbeat: 20 * time.Millisecond})
	feed := newProgressFeed(4, 1)
	insertFakeJob(s, "job-idle", feed)

	st := openSSE(t, ts.URL, "job-idle")
	select {
	case f := <-st.frames:
		if !f.comment {
			t.Fatalf("expected heartbeat comment, got %+v", f)
		}
	case err := <-st.errs:
		t.Fatalf("stream ended: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("no heartbeat within deadline")
	}
	feed.finish(serialize.JobDone)
}

func TestSSEUnknownJob(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/jobs/nope/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job events: http %d, want 404", resp.StatusCode)
	}
}

// TestSSEJobIntegration runs a real job and checks the replayed stream and
// the job record's progress block agree with the request's trial space.
func TestSSEJobIntegration(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	rec, _ := submit(t, ts, testRequest(31, ""))
	final := await(t, ts, rec.ID)
	if final.Status != serialize.JobDone {
		t.Fatalf("job finished %s: %s", final.Status, final.Error)
	}
	// 5 trials × (1 sigma × 1 scenario × 1 time × 2 policies) = 10 units.
	if final.Progress == nil {
		t.Fatal("terminal job record carries no progress block")
	}
	if final.Progress.TrialsDone != 10 || final.Progress.TrialsTotal != 10 ||
		final.Progress.Granule != 2 || final.Progress.GranulesTotal != 2 {
		t.Fatalf("terminal progress = %+v", final.Progress)
	}

	st := openSSE(t, ts.URL, rec.ID)
	last, prev := serialize.ProgressEvent{}, -1
	seq := 0
	for {
		f := st.next(t)
		ev := decodeEvent(t, f)
		if ev.Seq != seq {
			t.Fatalf("replay gap: seq %d, want %d", ev.Seq, seq)
		}
		if ev.TrialsDone < prev {
			t.Fatalf("trials_done regressed: %d after %d", ev.TrialsDone, prev)
		}
		prev = ev.TrialsDone
		seq++
		last = ev
		if f.event == serialize.EventDone {
			break
		}
	}
	if last.Status != serialize.JobDone || last.TrialsDone != 10 || last.Granule != 2 {
		t.Fatalf("terminal replay event = %+v", last)
	}
	st.expectEOF(t)

	// A cache-hit resubmission replays a pre-sealed stream immediately.
	rec2, code := submit(t, ts, testRequest(31, ""))
	if code != http.StatusOK || !rec2.Cached {
		t.Fatalf("resubmit: code %d cached %v", code, rec2.Cached)
	}
	st2 := openSSE(t, ts.URL, rec2.ID)
	f := st2.next(t)
	if f.event != serialize.EventDone {
		t.Fatalf("cached job first frame = %+v, want done", f)
	}
	if ev := decodeEvent(t, f); ev.TrialsDone != 10 || ev.TrialsTotal != 10 {
		t.Fatalf("cached terminal event = %+v", ev)
	}
	st2.expectEOF(t)
}
