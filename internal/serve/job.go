package serve

import (
	"context"
	"time"

	"swim/internal/serialize"
)

// job is one submitted request's lifecycle. All state transitions happen
// under the server mutex; done is closed exactly once, when the job reaches
// a terminal status (done, failed or cancelled), and backs the ?wait=1
// long-poll.
type job struct {
	id        string
	seq       int64  // submission sequence (stable list order, page tokens)
	key       string // canonical request hash (the cache key)
	req       *serialize.RequestRecord
	status    string
	cached    bool
	coalesced bool
	errMsg    string

	submitted int64 // unix ms
	started   int64
	finished  int64

	cancel    context.CancelFunc // non-nil once running
	result    *serialize.ResultEnvelope
	followers []*job // coalesced jobs riding this job's execution
	feed      *progressFeed
	done      chan struct{}
}

func nowMS() int64 { return time.Now().UnixMilli() }

// terminal reports whether the job reached a final status. Call under the
// server mutex.
func (j *job) terminal() bool {
	switch j.status {
	case serialize.JobDone, serialize.JobFailed, serialize.JobCancelled:
		return true
	}
	return false
}

// finishLocked moves the job to a terminal status, seals its progress feed
// (ending any SSE streams with the terminal event) and wakes the ?wait=1
// long-polls. Call under the server mutex, at most once per job. Coalesced
// followers share their primary's feed; the first finisher seals it and the
// rest are no-ops (finish is idempotent).
func (j *job) finishLocked(status string, env *serialize.ResultEnvelope, errMsg string) {
	j.status = status
	j.result = env
	j.errMsg = errMsg
	j.finished = nowMS()
	j.feed.finish(status)
	close(j.done)
}

// record snapshots the job as its wire envelope. The result payload stays
// out — clients fetch it from the result endpoint, keeping job listings
// cheap — but the progress block rides along once the job has started, so
// polling clients track advancement without SSE. Call under the server
// mutex.
func (j *job) record() *serialize.JobRecord {
	rec := &serialize.JobRecord{
		ID:        j.id,
		Status:    j.status,
		Cached:    j.cached,
		Coalesced: j.coalesced,
		Request:   j.req,
		Error:     j.errMsg,
		Submitted: j.submitted,
		Started:   j.started,
		Finished:  j.finished,
	}
	if j.started > 0 {
		rec.Progress = j.feed.snapshot()
	}
	return rec
}

// dispatch is one job-runner goroutine: it drains the queue until the
// queue closes (drain) and runs each job under the fair-share budget.
func (s *Server) dispatch() {
	defer s.wg.Done()
	for j := range s.queued {
		s.runJob(j)
	}
}

// runJob executes one queued job through the experiments/program stack —
// or, in coordinator mode, through the distributed shard scheduler — with a
// request-scoped context (cancellable via the cancel endpoint and the
// server-wide abort) and a fair-share worker gate. Completion finishes the
// job's coalesced followers with the same outcome.
func (s *Server) runJob(j *job) {
	s.mu.Lock()
	if j.status != serialize.JobQueued { // cancelled while queued
		s.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	j.cancel = cancel
	j.status = serialize.JobRunning
	j.started = nowMS()
	s.mu.Unlock()
	defer cancel()

	var env *serialize.ResultEnvelope
	var err error
	sp := s.met.jobStage.Start()
	if s.coord != nil {
		env, err = s.coord.run(ctx, j.key, j.req, j.feed)
	} else {
		share := s.budget.acquire()
		env, err = s.execute(ctx, j.req, share, j.feed)
		share.release()
	}
	sp.End()

	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.inflight, j.key)
	status, errMsg := serialize.JobDone, ""
	if err != nil {
		env = nil
		errMsg = err.Error()
		if ctx.Err() != nil {
			status = serialize.JobCancelled
		} else {
			status = serialize.JobFailed
		}
	} else {
		s.met.executed.Inc()
		s.cache.put(j.key, env)
	}
	j.finishLocked(status, env, errMsg)
	for _, f := range j.followers {
		if f.status != serialize.JobQueued { // cancelled individually
			continue
		}
		f.started = j.started
		f.finishLocked(status, env, errMsg)
	}
}
