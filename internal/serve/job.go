package serve

import (
	"context"
	"time"

	"swim/internal/serialize"
)

// job is one submitted request's lifecycle. All state transitions happen
// under the server mutex; done is closed exactly once, when the job reaches
// a terminal status (done, failed or cancelled), and backs the ?wait=1
// long-poll.
type job struct {
	id     string
	key    string // canonical request hash (the cache key)
	req    *serialize.RequestRecord
	status string
	cached bool
	errMsg string

	submitted int64 // unix ms
	started   int64
	finished  int64

	cancel context.CancelFunc // non-nil once running
	result *serialize.ResultEnvelope
	done   chan struct{}
}

func nowMS() int64 { return time.Now().UnixMilli() }

// record snapshots the job as its wire envelope. The result payload stays
// out — clients fetch it from the result endpoint, keeping job listings
// cheap. Call under the server mutex.
func (j *job) record() *serialize.JobRecord {
	return &serialize.JobRecord{
		ID:        j.id,
		Status:    j.status,
		Cached:    j.cached,
		Request:   j.req,
		Error:     j.errMsg,
		Submitted: j.submitted,
		Started:   j.started,
		Finished:  j.finished,
	}
}

// dispatch is one job-runner goroutine: it drains the queue until the
// queue closes (drain) and runs each job under the fair-share budget.
func (s *Server) dispatch() {
	defer s.wg.Done()
	for j := range s.queued {
		s.runJob(j)
	}
}

// runJob executes one queued job through the experiments/program stack,
// with a request-scoped context (cancellable via the cancel endpoint and
// the server-wide abort) and a fair-share worker gate.
func (s *Server) runJob(j *job) {
	s.mu.Lock()
	if j.status != serialize.JobQueued { // cancelled while queued
		s.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	j.cancel = cancel
	j.status = serialize.JobRunning
	j.started = nowMS()
	s.mu.Unlock()
	defer cancel()

	share := s.budget.acquire()
	env, err := s.execute(ctx, j.req, share)
	share.release()

	s.mu.Lock()
	defer s.mu.Unlock()
	defer close(j.done)
	j.finished = nowMS()
	if err != nil {
		j.errMsg = err.Error()
		if ctx.Err() != nil {
			j.status = serialize.JobCancelled
		} else {
			j.status = serialize.JobFailed
		}
		return
	}
	s.executed.Add(1)
	j.status = serialize.JobDone
	j.result = env
	s.cache[j.key] = env
}
