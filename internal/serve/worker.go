package serve

// The shard-worker half of the distributed tier: POST /v1/shards computes
// trials [lo, hi) of a normalized request as raw per-trial observation rows
// (serialize.ShardRecord). Every swim-serve daemon speaks this endpoint —
// a worker is just a plain daemon a coordinator points at. Shard execution
// is single-flighted on the canonical shard key (a retrying coordinator or
// a second coordinator asking for the same range attaches to the running
// computation) and draws from the same fair-share worker budget as jobs.

import (
	"context"
	"net/http"

	"swim/internal/experiments"
	"swim/internal/mc"
	"swim/internal/program"
	"swim/internal/serialize"
)

// shardCall is one in-flight shard execution; concurrent requests for the
// same shard key wait on done and share the outcome.
type shardCall struct {
	done chan struct{}
	rec  *serialize.ShardRecord
	err  error
}

// handleShard computes one trial-range shard of a request. The embedded
// request is normalized exactly like a job submission, so the shard key is
// derived from the same canonical hash a coordinator computes.
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	sreq, err := serialize.DecodeShardRequest(http.MaxBytesReader(w, r.Body, 1<<22))
	if err != nil {
		writeError(w, http.StatusBadRequest, serialize.ErrBadRequest, "%v", err)
		return
	}
	if sreq.Version != 0 && sreq.Version != serialize.ShardVersion {
		writeError(w, http.StatusBadRequest, serialize.ErrBadRequest,
			"unsupported shard version %d (worker speaks %d)", sreq.Version, serialize.ShardVersion)
		return
	}
	if sreq.Request == nil {
		writeError(w, http.StatusBadRequest, serialize.ErrBadRequest, "shard request carries no request record")
		return
	}
	norm, err := s.normalize(sreq.Request)
	if err != nil {
		writeError(w, http.StatusBadRequest, serialize.ErrBadRequest, "%v", err)
		return
	}
	if sreq.Lo < 0 || sreq.Hi > norm.Trials || sreq.Lo >= sreq.Hi {
		writeError(w, http.StatusBadRequest, serialize.ErrBadRequest,
			"shard range [%d,%d) outside [0,%d)", sreq.Lo, sreq.Hi, norm.Trials)
		return
	}
	key, err := norm.CanonicalKey()
	if err != nil {
		writeError(w, http.StatusInternalServerError, serialize.ErrInternal, "%v", err)
		return
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeError(w, http.StatusServiceUnavailable, serialize.ErrUnavailable, "draining: no new shards accepted")
		return
	}

	shardKey := serialize.ShardKey(key, sreq.Lo, sreq.Hi)
	s.shardMu.Lock()
	if c, ok := s.shardCalls[shardKey]; ok {
		s.shardMu.Unlock()
		select {
		case <-c.done:
			writeShard(w, c.rec, c.err)
		case <-r.Context().Done():
		}
		return
	}
	c := &shardCall{done: make(chan struct{})}
	s.shardCalls[shardKey] = c
	s.shardMu.Unlock()

	// Run under the daemon lifecycle context, not the request's: if the
	// coordinator that asked gives up, the shard still completes and any
	// retry attaches to it through the single-flight map.
	share := s.budget.acquire()
	c.rec, c.err = s.executeShard(s.baseCtx, norm, shardKey, sreq.Lo, sreq.Hi, share)
	share.release()
	close(c.done)
	s.shardMu.Lock()
	delete(s.shardCalls, shardKey)
	s.shardMu.Unlock()
	writeShard(w, c.rec, c.err)
}

// writeShard renders a completed shard call: the record on success, the
// /v1 error envelope otherwise.
func writeShard(w http.ResponseWriter, rec *serialize.ShardRecord, err error) {
	if err != nil {
		writeError(w, http.StatusInternalServerError, serialize.ErrInternal, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// executeShard runs trials [lo, hi) of a normalized request through the
// same cell walk as execute — experiments.ScenarioShards shares its
// pipelines and seeds with ScenarioResults — and packages the raw rows as
// the shard wire record.
func (s *Server) executeShard(ctx context.Context, req *serialize.RequestRecord,
	shardKey string, lo, hi int, gate mc.Gate) (*serialize.ShardRecord, error) {

	w, err := s.workload(req.Workload)
	if err != nil {
		return nil, err
	}
	scenarios, err := experiments.ParseScenarios(req.Scenarios)
	if err != nil {
		return nil, err
	}
	cfg := experiments.ScenarioConfig{
		NWCs:      req.NWCs,
		Times:     req.Times,
		Policies:  req.Policies,
		Trials:    req.Trials,
		Seed:      req.Seed,
		EvalBatch: req.EvalBatch,
		Cost:      req.Cost,
		Calib:     req.Calib,
		Kernel:    req.Kernel,
	}
	rec := &serialize.ShardRecord{
		Version: serialize.ShardVersion,
		Key:     shardKey,
		Lo:      lo,
		Hi:      hi,
		Trials:  req.Trials,
	}
	for _, sigma := range req.Sigmas {
		shards, err := experiments.ScenarioShards(ctx, w, sigma, scenarios, cfg, lo, hi,
			program.WithWorkers(s.cfg.TotalWorkers),
			program.WithWorkerGate(gate))
		if err != nil {
			return nil, err
		}
		for _, ss := range shards {
			rec.Cells = append(rec.Cells, serialize.ShardCell{
				Workload:      req.Workload,
				Sigma:         sigma,
				Scenario:      ss.Scenario,
				ReadTime:      ss.Shard.ReadTime,
				Policy:        ss.Policy,
				Targets:       ss.Shard.Targets,
				Nonidealities: ss.Shard.Nonidealities,
				Cost:          ss.Shard.Cost,
				Geometry:      ss.Shard.Geom,
				Calib:         ss.Shard.Calib,
				Probes:        ss.Shard.Probes,
				Rows:          ss.Shard.Rows,
			})
		}
	}
	s.met.shards.Inc()
	return rec, nil
}
