package serve

import "testing"

func TestFairShareSplitsEvenly(t *testing.T) {
	fs := newFairShare(8, nil)
	a := fs.acquire()
	if limit, _ := a.Limit(); limit != 8 {
		t.Fatalf("lone job limit = %d, want 8", limit)
	}
	b := fs.acquire()
	la, _ := a.Limit()
	lb, _ := b.Limit()
	if la != 4 || lb != 4 {
		t.Fatalf("two-job limits = %d, %d, want 4, 4", la, lb)
	}
	c := fs.acquire()
	if lc, _ := c.Limit(); lc != 2 { // 8 / 3 = 2
		t.Fatalf("three-job limit = %d, want 2", lc)
	}
	c.release()
	b.release()
	if la, _ = a.Limit(); la != 8 {
		t.Fatalf("limit after releases = %d, want 8", la)
	}
	a.release()
}

func TestFairShareNeverBelowOne(t *testing.T) {
	fs := newFairShare(1, nil)
	a := fs.acquire()
	b := fs.acquire()
	defer a.release()
	defer b.release()
	if la, _ := a.Limit(); la != 1 {
		t.Fatalf("oversubscribed limit = %d, want 1", la)
	}
}

func TestFairShareChangeNotification(t *testing.T) {
	fs := newFairShare(4, nil)
	a := fs.acquire()
	_, changed := a.Limit()
	select {
	case <-changed:
		t.Fatal("change channel closed with no change")
	default:
	}
	b := fs.acquire()
	select {
	case <-changed:
	default:
		t.Fatal("acquire did not signal the change channel")
	}
	b.release()
	a.release()
}

func TestFairShareReleaseIdempotent(t *testing.T) {
	fs := newFairShare(4, nil)
	a := fs.acquire()
	b := fs.acquire()
	b.release()
	b.release() // double release must not free a second slot
	if la, _ := a.Limit(); la != 4 {
		t.Fatalf("limit = %d, want 4", la)
	}
	a.release()
}
