package serve

import (
	"encoding/json"
	"net/http"
	"testing"

	"swim/internal/serialize"
)

func cacheEnv(workload string) *serialize.ResultEnvelope {
	return &serialize.ResultEnvelope{
		Cells: []serialize.CellRecord{{Workload: workload}},
	}
}

func TestCacheEntryBound(t *testing.T) {
	c := newResultCache(2, 0, nil)
	c.put("a", cacheEnv("a"))
	c.put("b", cacheEnv("b"))
	c.put("c", cacheEnv("c"))
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	if _, ok := c.get("a"); ok {
		t.Fatal("oldest entry survived past the entry bound")
	}
	for _, k := range []string{"b", "c"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("entry %q evicted unexpectedly", k)
		}
	}
}

func TestCacheRecency(t *testing.T) {
	c := newResultCache(2, 0, nil)
	c.put("a", cacheEnv("a"))
	c.put("b", cacheEnv("b"))
	if _, ok := c.get("a"); !ok { // refresh a: b becomes LRU
		t.Fatal("get failed")
	}
	c.put("c", cacheEnv("c"))
	if _, ok := c.get("b"); ok {
		t.Fatal("least-recently-used entry b survived")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("recently-used entry a was evicted")
	}
}

func TestCacheByteBoundRetainsNewest(t *testing.T) {
	c := newResultCache(0, 1, nil) // 1 byte: every envelope exceeds it
	c.put("a", cacheEnv("a"))
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1 (newest entry must be retained over the byte cap)", c.len())
	}
	c.put("b", cacheEnv("b"))
	if c.len() != 1 {
		t.Fatalf("len = %d after second put, want 1", c.len())
	}
	if _, ok := c.get("b"); !ok {
		t.Fatal("newest entry missing")
	}
	if _, ok := c.get("a"); ok {
		t.Fatal("old entry survived the byte bound")
	}
}

func TestCacheSizeAccounting(t *testing.T) {
	c := newResultCache(0, 0, nil)
	env := cacheEnv("a")
	want := envelopeSize(env)
	if want <= 0 {
		t.Fatalf("envelopeSize = %d, want > 0", want)
	}
	c.put("a", env)
	if c.bytes != want {
		t.Fatalf("bytes = %d, want %d", c.bytes, want)
	}
	c.put("a", env) // refresh must not double-count
	if c.bytes != want {
		t.Fatalf("bytes after refresh = %d, want %d", c.bytes, want)
	}
}

// TestCacheBoundsEndToEnd runs two distinct jobs through a daemon capped at
// one cache entry: the first result is evicted, the eviction shows up in the
// JSON metrics, and resubmitting the first request recomputes (a miss).
func TestCacheBoundsEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheMaxEntries: 1})
	r1, r2 := testRequest(41, ""), testRequest(42, "")
	rec1, _ := submit(t, ts, r1)
	if got := await(t, ts, rec1.ID).Status; got != serialize.JobDone {
		t.Fatalf("job 1 finished %s", got)
	}
	rec2, _ := submit(t, ts, r2)
	if got := await(t, ts, rec2.ID).Status; got != serialize.JobDone {
		t.Fatalf("job 2 finished %s", got)
	}
	if got := s.met.cacheEvictions.Load(); got != 1 {
		t.Fatalf("cache_evictions = %d, want 1", got)
	}
	if got := s.met.cacheBytes.Load(); got <= 0 {
		t.Fatalf("cache_bytes gauge = %d, want > 0", got)
	}

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if got, ok := m["cache_evictions"].(float64); !ok || got != 1 {
		t.Fatalf("metrics cache_evictions = %v", m["cache_evictions"])
	}
	if got, ok := m["cache_entries"].(float64); !ok || got != 1 {
		t.Fatalf("metrics cache_entries = %v", m["cache_entries"])
	}

	// The evicted request recomputes: misses grow, hits stay.
	hits := s.met.cacheHits.Load()
	rec3, code := submit(t, ts, r1)
	if code != http.StatusAccepted || rec3.Cached {
		t.Fatalf("evicted request resubmit: code %d cached %v, want fresh job", code, rec3.Cached)
	}
	if got := await(t, ts, rec3.ID).Status; got != serialize.JobDone {
		t.Fatalf("job 3 finished %s", got)
	}
	if s.met.cacheHits.Load() != hits {
		t.Fatal("evicted request counted as a cache hit")
	}
}
