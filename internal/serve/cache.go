package serve

// resultCache is the canonical-key result cache with optional LRU bounds
// (ROADMAP: "size-bound the result cache"). Unbounded by default for
// back-compat; -cache-max-entries / -cache-max-bytes cap it, with evictions
// and held bytes reported through the metrics registry.

import (
	"container/list"
	"io"

	"swim/internal/serialize"
)

// cacheEntry is one cached result and its encoded size.
type cacheEntry struct {
	key  string
	env  *serialize.ResultEnvelope
	size int64
}

// resultCache is an LRU map from canonical request keys to result
// envelopes. It is NOT internally synchronized — every method must run
// under the server mutex, like the plain map it replaced.
type resultCache struct {
	maxEntries int
	maxBytes   int64
	bytes      int64
	ll         *list.List // front = most recently used; values are *cacheEntry
	items      map[string]*list.Element
	met        *serverMetrics
}

// newResultCache builds a cache bounded to maxEntries entries and maxBytes
// encoded bytes (either 0 disables that bound).
func newResultCache(maxEntries int, maxBytes int64, met *serverMetrics) *resultCache {
	return &resultCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
		met:        met,
	}
}

// get returns the cached envelope for key and refreshes its recency.
func (c *resultCache) get(key string) (*serialize.ResultEnvelope, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).env, true
}

// countingWriter measures an envelope's encoded size without materializing
// the bytes.
type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

var _ io.Writer = (*countingWriter)(nil)

// envelopeSize returns env's encoded JSON size in bytes (0 if encoding
// fails; the entry is then effectively unbounded by the byte cap, which only
// ever under-evicts).
func envelopeSize(env *serialize.ResultEnvelope) int64 {
	var w countingWriter
	if err := serialize.EncodeEnvelope(&w, env); err != nil {
		return 0
	}
	return w.n
}

// put inserts (or refreshes) key's envelope and evicts least-recently-used
// entries until the configured bounds hold. The newest entry is always
// retained, even when it alone exceeds maxBytes — evicting the result that
// was just computed would make the cache useless for exactly the requests
// big enough to be worth caching.
func (c *resultCache) put(key string, env *serialize.ResultEnvelope) {
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.bytes += -ent.size
		ent.env = env
		ent.size = envelopeSize(env)
		c.bytes += ent.size
		c.ll.MoveToFront(el)
		c.updateGauge()
		return
	}
	ent := &cacheEntry{key: key, env: env, size: envelopeSize(env)}
	c.items[key] = c.ll.PushFront(ent)
	c.bytes += ent.size
	for c.overLimit() && c.ll.Len() > 1 {
		oldest := c.ll.Back()
		old := oldest.Value.(*cacheEntry)
		c.ll.Remove(oldest)
		delete(c.items, old.key)
		c.bytes -= old.size
		if c.met != nil {
			c.met.cacheEvictions.Inc()
		}
	}
	c.updateGauge()
}

// overLimit reports whether either configured bound is exceeded.
func (c *resultCache) overLimit() bool {
	if c.maxEntries > 0 && c.ll.Len() > c.maxEntries {
		return true
	}
	if c.maxBytes > 0 && c.bytes > c.maxBytes {
		return true
	}
	return false
}

// updateGauge publishes the held-bytes gauge.
func (c *resultCache) updateGauge() {
	if c.met != nil {
		c.met.cacheBytes.Set(c.bytes)
	}
}

// len returns the entry count.
func (c *resultCache) len() int { return c.ll.Len() }
