package cost

import "testing"

// FuzzParse drives the cost-model spec grammar with arbitrary input: no
// input may panic, and every accepted spec must canonicalize — Spec() of
// the parsed model reparses to a byte-identical Spec(). Cache keys and
// shard-merge agreement checks compare these strings directly.
func FuzzParse(f *testing.F) {
	f.Add("rram")
	f.Add("rram:par=32")
	f.Add("rram:ewrite=12.5,eread=1.25,par=64")
	f.Add("rram:par=0")
	f.Add("rram:bogus=1")
	f.Add("rram:par")
	f.Add(":=")
	f.Add("rram:par=1e999")
	f.Fuzz(func(t *testing.T, spec string) {
		m, err := Parse(spec)
		if err != nil {
			return
		}
		canon := m.Spec()
		again, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q (of %q) rejected: %v", canon, spec, err)
		}
		if got := again.Spec(); got != canon {
			t.Fatalf("canonical form not a fixed point: %q reparsed to %q", canon, got)
		}
	})
}
