package cost

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Params carries the numeric parameters of one model spec (e.g.
// {"write_pj": 12} for "rram:write_pj=12"). Builders reject unknown keys so
// a mistyped parameter reads as a usage error, not a silent default.
type Params map[string]float64

// Builder constructs a configured Model from parameters. Missing keys take
// the preset's defaults; unknown keys are an error.
type Builder func(p Params) (Model, error)

var (
	regMu    sync.RWMutex
	registry = map[string]Builder{}
)

// Register adds a model builder under name. Registering a name twice is an
// error, mirroring the nonideal registry: silently replacing a preset would
// make cost specs depend on package-initialization order.
func Register(name string, b Builder) error {
	if b == nil {
		return fmt.Errorf("cost: register nil builder")
	}
	if name == "" {
		return fmt.Errorf("cost: register builder with empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("cost: model %q already registered", name)
	}
	registry[name] = b
	return nil
}

// MustRegister is Register for package-init use; it panics on error.
func MustRegister(name string, b Builder) {
	if err := Register(name, b); err != nil {
		panic(err)
	}
}

// Lookup resolves a model builder by name. Unknown names return an error
// listing what is registered, so a mistyped -cost flag reads as a usage
// hint.
func Lookup(name string) (Builder, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("cost: unknown model %q (registered: %v)", name, registeredLocked())
	}
	return b, nil
}

// Registered returns the registered model names, sorted.
func Registered() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return registeredLocked()
}

func registeredLocked() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Parse builds one model from a spec string: a registered preset name
// optionally followed by colon-separated parameters, e.g. "rram" or
// "rram:write_pj=12,par=64". Every model's Spec() round-trips through Parse
// to an identical model — the canonical spec spells out every resolved
// parameter, so two daemons that parse the same spec agree bit-for-bit.
func Parse(spec string) (Model, error) {
	name, rest, _ := strings.Cut(strings.TrimSpace(spec), ":")
	b, err := Lookup(name)
	if err != nil {
		return Model{}, err
	}
	p := Params{}
	if rest != "" {
		for _, kv := range strings.Split(rest, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return Model{}, fmt.Errorf("cost: bad parameter %q in spec %q (want key=value)", kv, spec)
			}
			f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			if err != nil {
				return Model{}, fmt.Errorf("cost: bad value for %q in spec %q: %v", k, spec, err)
			}
			p[strings.TrimSpace(k)] = f
		}
	}
	m, err := b(p)
	if err != nil {
		return Model{}, fmt.Errorf("cost: spec %q: %w", spec, err)
	}
	return m, nil
}

// FromFlag resolves the CLIs' shared -cost flag convention: the literal
// "list" requests the registered-preset listing (returned in listing, with
// no model); the empty string and the literal "none" disable cost
// accounting (ok reports false); anything else parses as a model spec.
func FromFlag(spec string) (m Model, ok bool, listing string, err error) {
	spec = strings.TrimSpace(spec)
	if spec == "list" {
		return Model{}, false, strings.Join(Registered(), "\n"), nil
	}
	if spec == "" || spec == "none" {
		return Model{}, false, "", nil
	}
	m, err = Parse(spec)
	if err != nil {
		return Model{}, false, "", err
	}
	return m, true, "", nil
}

// params tracks parameter resolution for one builder: explicit values win,
// defaults fill the rest, and every consumed key lands in resolved so the
// canonical spec can spell the whole model out.
type params struct {
	p        Params
	used     map[string]bool
	resolved map[string]float64
}

func newParams(p Params) *params {
	return &params{p: p, used: map[string]bool{}, resolved: map[string]float64{}}
}

func (ps *params) get(key string, def float64) float64 {
	ps.used[key] = true
	v := def
	if x, ok := ps.p[key]; ok {
		v = x
	}
	ps.resolved[key] = v
	return v
}

// leftover returns an error naming any parameter the builder did not
// consume.
func (ps *params) leftover(name string) error {
	for k := range ps.p {
		if !ps.used[k] {
			return fmt.Errorf("unknown parameter %q for model %q", k, name)
		}
	}
	return nil
}

// spec renders the canonical spec string: the preset name plus every
// resolved parameter in sorted key order. strconv's 'g' formatting emits
// the shortest digit string that round-trips exactly, so Parse(spec)
// rebuilds bit-identical values.
func (ps *params) spec(name string) string {
	keys := make([]string, 0, len(ps.resolved))
	for k := range ps.resolved {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString(name)
	for i, k := range keys {
		if i == 0 {
			sb.WriteByte(':')
		} else {
			sb.WriteByte(',')
		}
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(strconv.FormatFloat(ps.resolved[k], 'g', -1, 64))
	}
	return sb.String()
}

// componentModel assembles a Model from the flat parameter scheme every
// preset shares — write_/verify_/dac_/adc_/read_ energies and latencies,
// dac_/adc_/cell areas, and the programming parallelism — with per-preset
// defaults supplied by the caller (which may pre-resolve derived keys such
// as lightening's bits/fs_gsps before delegating here).
func componentModel(name string, ps *params, def map[string]float64) (Model, error) {
	d := func(key string) float64 { return ps.get(key, def[key]) }
	m := Model{
		Write:       Component{EnergyPJ: d("write_pj"), LatencyNS: d("write_ns")},
		Verify:      Component{EnergyPJ: d("verify_pj"), LatencyNS: d("verify_ns")},
		DAC:         Component{EnergyPJ: d("dac_pj"), LatencyNS: d("dac_ns"), AreaUM2: d("dac_um2")},
		ADC:         Component{EnergyPJ: d("adc_pj"), LatencyNS: d("adc_ns"), AreaUM2: d("adc_um2")},
		Read:        Component{EnergyPJ: d("read_pj"), LatencyNS: d("read_ns")},
		CellAreaUM2: d("cell_um2"),
	}
	par := ps.get("par", def["par"])
	if par < 1 || par != math.Trunc(par) {
		return Model{}, fmt.Errorf("model %q needs integer par >= 1 (got %g)", name, par)
	}
	m.Parallelism = int(par)
	if err := ps.leftover(name); err != nil {
		return Model{}, err
	}
	m.spec = ps.spec(name)
	if err := m.Validate(); err != nil {
		return Model{}, err
	}
	return m, nil
}

// fom is the DAC power figure of merit 2^N/(N+1) from the
// Lightening-Transformer cost tables: scaling a converter's resolution
// rescales its dynamic power by fom(N)/fom(N0) at fixed sample rate.
func fom(bits float64) float64 { return math.Exp2(bits) / (bits + 1) }

func init() {
	// rram: a write-verify RRAM tile whose programming numbers match
	// device.DefaultCost (100 ns / 10 pJ write pulse, 10 ns verify read,
	// serial programming), with mid-range 6-bit DAC / 8-bit SAR ADC
	// peripheral costs and a 4F² 0.04 µm² 1T1R cell.
	MustRegister("rram", func(p Params) (Model, error) {
		return componentModel("rram", newParams(p), map[string]float64{
			"write_pj": 10, "write_ns": 100,
			"verify_pj": 1, "verify_ns": 10,
			"dac_pj": 2, "dac_ns": 1, "dac_um2": 500,
			"adc_pj": 2, "adc_ns": 1, "adc_um2": 3000,
			"read_pj": 1, "read_ns": 10,
			"cell_um2": 0.04,
			"par":      1,
		})
	})
	// lightening: input converters from the Lightening-Transformer DAC
	// table — 8-bit 14 GS/s 50 mW in 11000 µm², so 50 mW ÷ 14 GS/s ≈
	// 3.57 pJ per conversion and 1/14 ns per sample — with the
	// bits/fs_gsps knobs rescaling power through the 2^N/(N+1) figure of
	// merit. The crossbar write path and ADC side keep the rram defaults.
	MustRegister("lightening", func(p Params) (Model, error) {
		ps := newParams(p)
		bits := ps.get("bits", 8)
		fs := ps.get("fs_gsps", 14)
		if bits < 1 || bits > 16 || bits != math.Trunc(bits) {
			return Model{}, fmt.Errorf("model %q needs integer bits in [1, 16] (got %g)", "lightening", bits)
		}
		if fs <= 0 {
			return Model{}, fmt.Errorf("model %q needs fs_gsps > 0 (got %g)", "lightening", fs)
		}
		dacMW := 50 * fom(bits) / fom(8) // FoM-scaled dynamic power at 50 mW for 8 bits
		return componentModel("lightening", ps, map[string]float64{
			"write_pj": 10, "write_ns": 100,
			"verify_pj": 1, "verify_ns": 10,
			"dac_pj": dacMW / fs, "dac_ns": 1 / fs, "dac_um2": 11000,
			"adc_pj": 2, "adc_ns": 1, "adc_um2": 3000,
			"read_pj": 1, "read_ns": 10,
			"cell_um2": 0.04,
			"par":      1,
		})
	})
	// ramwich: input converters from the RAMwich per-resolution DAC
	// config — 1-cycle (1 ns) latency, 3.50625 mW dynamic power (so
	// 3.50625 pJ per conversion) in 1.67e-7 mm² = 0.167 µm² — over the
	// same rram write path.
	MustRegister("ramwich", func(p Params) (Model, error) {
		return componentModel("ramwich", newParams(p), map[string]float64{
			"write_pj": 10, "write_ns": 100,
			"verify_pj": 1, "verify_ns": 10,
			"dac_pj": 3.50625, "dac_ns": 1, "dac_um2": 0.167,
			"adc_pj": 2, "adc_ns": 1, "adc_um2": 3000,
			"read_pj": 1, "read_ns": 10,
			"cell_um2": 0.04,
			"par":      1,
		})
	})
}
