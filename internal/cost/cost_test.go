package cost

import (
	"math"
	"strings"
	"testing"

	"swim/internal/stat"
)

func TestPresetsRegistered(t *testing.T) {
	got := Registered()
	for _, want := range []string{"lightening", "ramwich", "rram"} {
		found := false
		for _, name := range got {
			if name == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("preset %q not registered (got %v)", want, got)
		}
	}
}

func TestSpecRoundTrips(t *testing.T) {
	specs := []string{
		"rram",
		"rram:write_pj=12.5,par=64",
		"lightening",
		"lightening:bits=6",
		"lightening:bits=6,fs_gsps=10",
		"ramwich",
		"ramwich:dac_pj=1e-3",
	}
	for _, spec := range specs {
		m, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		canon := m.Spec()
		if !strings.Contains(canon, "=") {
			t.Fatalf("Spec(%q) = %q spells out no parameters", spec, canon)
		}
		again, err := Parse(canon)
		if err != nil {
			t.Fatalf("Parse(Spec(%q)) = Parse(%q): %v", spec, canon, err)
		}
		if again != m {
			t.Fatalf("spec %q does not round-trip:\n canon %q\n first %+v\n again %+v", spec, canon, m, again)
		}
	}
}

func TestSpecReflectsOverrides(t *testing.T) {
	m, err := Parse("rram:write_pj=12.5")
	if err != nil {
		t.Fatal(err)
	}
	if m.Write.EnergyPJ != 12.5 {
		t.Fatalf("write_pj override not applied: %+v", m.Write)
	}
	if !strings.Contains(m.Spec(), "write_pj=12.5") {
		t.Fatalf("Spec() = %q does not spell out the override", m.Spec())
	}
}

func TestLighteningFoMScaling(t *testing.T) {
	m8, err := Parse("lightening")
	if err != nil {
		t.Fatal(err)
	}
	m6, err := Parse("lightening:bits=6")
	if err != nil {
		t.Fatal(err)
	}
	// 8-bit default: 50 mW at 14 GS/s = 50/14 pJ per conversion.
	if got, want := m8.DAC.EnergyPJ, 50.0/14.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("8-bit DAC energy = %g, want %g", got, want)
	}
	// Dropping to 6 bits rescales power by fom(6)/fom(8) = (64/7)/(256/9).
	scale := (math.Exp2(6) / 7) / (math.Exp2(8) / 9)
	if got, want := m6.DAC.EnergyPJ, 50.0/14.0*scale; math.Abs(got-want) > 1e-12 {
		t.Fatalf("6-bit DAC energy = %g, want %g", got, want)
	}
	if m6.DAC.EnergyPJ >= m8.DAC.EnergyPJ {
		t.Fatalf("fewer bits must cost less power: %g >= %g", m6.DAC.EnergyPJ, m8.DAC.EnergyPJ)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"nosuch",
		"rram:write_pj",
		"rram:write_pj=abc",
		"rram:bogus=1",
		"rram:par=0",
		"rram:par=1.5",
		"rram:write_pj=-1",
		"lightening:bits=99",
		"lightening:fs_gsps=0",
	} {
		if _, err := Parse(spec); err == nil {
			t.Fatalf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestFromFlag(t *testing.T) {
	if _, ok, listing, err := FromFlag("list"); err != nil || ok || listing == "" {
		t.Fatalf("FromFlag(list) = ok=%v listing=%q err=%v", ok, listing, err)
	}
	for _, spec := range []string{"", "none", "  none  "} {
		if _, ok, _, err := FromFlag(spec); err != nil || ok {
			t.Fatalf("FromFlag(%q) = ok=%v err=%v, want disabled", spec, ok, err)
		}
	}
	m, ok, _, err := FromFlag("rram")
	if err != nil || !ok || m.Spec() == "" {
		t.Fatalf("FromFlag(rram) = %+v ok=%v err=%v", m, ok, err)
	}
	if _, _, _, err := FromFlag("nosuch"); err == nil {
		t.Fatal("FromFlag(nosuch) succeeded, want error")
	}
}

func TestDuplicateRegister(t *testing.T) {
	if err := Register("rram", func(Params) (Model, error) { return Model{}, nil }); err == nil {
		t.Fatal("duplicate Register succeeded, want error")
	}
	if err := Register("", func(Params) (Model, error) { return Model{}, nil }); err == nil {
		t.Fatal("empty-name Register succeeded, want error")
	}
	if err := Register("x", nil); err == nil {
		t.Fatal("nil-builder Register succeeded, want error")
	}
}

// TestReportScaling pins the unit math: programming energy is cycles × per
// cycle energy, time divides by parallelism, and the aggregates are the
// exact scaled moments of the cycle aggregates.
func TestReportScaling(t *testing.T) {
	m, err := Parse("rram:write_pj=10,write_ns=100,verify_pj=1,verify_ns=10,par=2")
	if err != nil {
		t.Fatal(err)
	}
	cycles := &stat.Welford{}
	for _, c := range []float64{1000, 2000, 3000} {
		cycles.Add(c)
	}
	g := Geometry{
		Weights: 100, Slices: 2,
		TileRows: 128, TileCols: 128,
		Tiles: 4, MatVecs: 8, DACs: 1024, ADCs: 512,
	}
	rep := m.Report(g, []float64{0.1}, []*stat.Welford{cycles})
	if rep.Model != m.Spec() {
		t.Fatalf("report model %q != spec %q", rep.Model, m.Spec())
	}
	if len(rep.Points) != 1 || rep.Points[0].Target != 0.1 {
		t.Fatalf("bad points: %+v", rep.Points)
	}
	p := rep.Points[0]
	// 2000 mean cycles × 11 pJ/cycle = 22000 pJ = 0.022 µJ.
	if got, want := p.EnergyUJ.Mean(), 2000*11e-6; math.Abs(got-want) > 1e-15 {
		t.Fatalf("energy mean = %g µJ, want %g", got, want)
	}
	// 2000 mean cycles × 110 ns ÷ par 2 = 110000 ns = 0.11 ms.
	if got, want := p.TimeMS.Mean(), 2000*110e-6/2; math.Abs(got-want) > 1e-15 {
		t.Fatalf("time mean = %g ms, want %g", got, want)
	}
	if p.EnergyUJ.N() != cycles.N() {
		t.Fatalf("energy N = %d, want %d", p.EnergyUJ.N(), cycles.N())
	}
	// Scaled std must equal k × std exactly up to float rounding.
	kE := 11e-6
	if got, want := p.EnergyUJ.Std(), kE*cycles.Std(); math.Abs(got-want) > 1e-18 {
		t.Fatalf("energy std = %g, want %g", got, want)
	}
	// Inference: DACs·2 + MatVecs·1 + ADCs·2 pJ = 2048+8+1024 = 3080 pJ = 3.08 nJ.
	if got, want := rep.InferenceEnergyNJ, 3.080; math.Abs(got-want) > 1e-12 {
		t.Fatalf("inference energy = %g nJ, want %g", got, want)
	}
	// Latency: 8 MatVecs × (1+10+1) ns = 96 ns = 0.096 µs.
	if got, want := rep.InferenceLatencyUS, 0.096; math.Abs(got-want) > 1e-12 {
		t.Fatalf("inference latency = %g µs, want %g", got, want)
	}
	// Area: 4 tiles × (128·500 + 128·3000 + 128·128·0.04) µm².
	wantArea := 4 * (128*500 + 128*3000 + 128*128*0.04) * 1e-6
	if got := rep.AreaMM2; math.Abs(got-wantArea) > 1e-12 {
		t.Fatalf("area = %g mm², want %g", got, wantArea)
	}
	if g.Devices() != 200 {
		t.Fatalf("devices = %d, want 200", g.Devices())
	}
}

// TestReportScaledMomentsExact verifies the moment transform is the exact
// float operation (n unchanged, mean×k, m2×k²) — the determinism hinge.
func TestReportScaledMomentsExact(t *testing.T) {
	w := &stat.Welford{}
	for i := 0; i < 97; i++ {
		w.Add(float64(i*i%311) + 0.25)
	}
	m, err := Parse("rram")
	if err != nil {
		t.Fatal(err)
	}
	rep := m.Report(Geometry{}, []float64{0}, []*stat.Welford{w})
	k := m.CycleEnergyPJ() * 1e-6
	e := rep.Points[0].EnergyUJ
	if e.N() != w.N() || e.Mean() != k*w.Mean() || e.M2() != k*k*w.M2() {
		t.Fatalf("scaled moments not exact: n %d/%d mean %v/%v m2 %v/%v",
			e.N(), w.N(), e.Mean(), k*w.Mean(), e.M2(), k*k*w.M2())
	}
}

// TestReportNilCycles covers grid points with no cycle aggregate (e.g. a
// restored legacy record): the point survives with nil aggregates.
func TestReportNilCycles(t *testing.T) {
	m, err := Parse("rram")
	if err != nil {
		t.Fatal(err)
	}
	rep := m.Report(Geometry{}, []float64{0, 0.1}, []*stat.Welford{nil})
	if len(rep.Points) != 2 {
		t.Fatalf("want 2 points, got %d", len(rep.Points))
	}
	for _, p := range rep.Points {
		if p.EnergyUJ != nil || p.TimeMS != nil {
			t.Fatalf("nil cycles must yield nil aggregates: %+v", p)
		}
	}
}
