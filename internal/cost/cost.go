// Package cost is the hardware cost tier: per-component energy/latency/area
// models for a crossbar accelerator, composed over the mapping geometry so
// every pipeline Result can report what a sweep actually costs in joules,
// seconds and silicon — the units behind the paper's motivation ("programming
// even a ResNet-18 ... can take more than one week"), which the accuracy-only
// reproduction never measured.
//
// The tier has three pieces:
//
//   - Component — one hardware block's per-operation cost (energy per
//     operation, latency per operation, area per instance). A Model bundles
//     the five components of a write-verify crossbar: the write pulse and the
//     verify read (programming), and the DAC, tile read pulse and ADC
//     (inference).
//
//   - Geometry — the static shape of a network mapped onto the fabric:
//     crossbar tiles, per-sample MatVec activations and converter operations,
//     derived once from the layer dimensions (package eval's MatVec op walk)
//     and the tile size. Geometry is pure data; it serializes into result
//     records so a merged shard run reports the same numbers as a local one.
//
//   - Report — the composition: programming energy/time per NWC grid point
//     (derived from the folded write-cycle aggregates — see below), static
//     per-sample inference energy/latency, and total array area.
//
// Models are registered by name (Register / Lookup / Parse, the same
// registry grammar as package nonideal), with built-in presets seeded from
// the cost tables of published accelerators; "rram" matches the programming
// numbers of device.DefaultCost.
//
// # Determinism
//
// A Report is a pure function of (model, geometry, folded cycle aggregates).
// The per-trial input — raw write-verify cycles — rides the Monte-Carlo
// engine's trial-order Welford reduction exactly like the accuracy series,
// and the energy/time aggregates are derived from those folded moments by
// exact scaling (a cycle count times a constant per-cycle cost), so cost
// blocks are bit-identical at any worker count and across trial-range shard
// merges wherever the cycle aggregates are.
package cost

import (
	"fmt"

	"swim/internal/stat"
)

// Component is one hardware block's per-operation cost.
type Component struct {
	// EnergyPJ is the energy of one operation, in picojoules.
	EnergyPJ float64
	// LatencyNS is the duration of one operation, in nanoseconds.
	LatencyNS float64
	// AreaUM2 is the silicon area of one instance, in square micrometres.
	AreaUM2 float64
}

// Model is a full per-component cost model for a write-verify crossbar
// accelerator. Build one with Parse (or a registered builder); the zero
// value is not meaningful.
type Model struct {
	// Write is one write (set/reset) pulse applied to one device.
	Write Component
	// Verify is one verify read of one device (the read-back of a
	// write-verify cycle).
	Verify Component
	// DAC is one word-line input conversion (per active row per MatVec).
	DAC Component
	// Read is one tile read pulse — a whole-tile analog MatVec activation.
	Read Component
	// ADC is one bit-line output conversion (per active column per MatVec).
	ADC Component
	// CellAreaUM2 is the area of one crossbar cell (device + selector).
	CellAreaUM2 float64
	// Parallelism is how many devices program concurrently (1 models the
	// paper's fully serial write-verify accounting).
	Parallelism int

	spec string // canonical registry spec, set by builders
}

// Spec returns the model's canonical spec string — the registry name with
// every parameter spelled out in sorted order. Parse(Spec()) rebuilds the
// identical model, which is what lets the spec act as a cache-key axis.
func (m Model) Spec() string { return m.spec }

// Validate checks the model parameters.
func (m Model) Validate() error {
	for _, c := range []struct {
		name string
		c    Component
	}{
		{"write", m.Write}, {"verify", m.Verify},
		{"dac", m.DAC}, {"read", m.Read}, {"adc", m.ADC},
	} {
		if c.c.EnergyPJ < 0 || c.c.LatencyNS < 0 || c.c.AreaUM2 < 0 {
			return fmt.Errorf("cost: %s component has negative cost (%+v)", c.name, c.c)
		}
	}
	if m.CellAreaUM2 < 0 {
		return fmt.Errorf("cost: negative cell area %g", m.CellAreaUM2)
	}
	if m.Parallelism < 1 {
		return fmt.Errorf("cost: parallelism %d < 1", m.Parallelism)
	}
	return nil
}

// Geometry is the static shape of one network mapped onto the crossbar
// fabric — everything a cost composition needs besides the per-trial cycle
// counts. It is derived once per run (deterministically, from the layer
// dimensions and tile size) and travels with shard records so distributed
// merges rebuild identical reports.
type Geometry struct {
	// Weights is the number of crossbar-mapped weights (conv/FC matrices).
	Weights int `json:"weights"`
	// Slices is the bit-slice device count per weight (device.NumDevices).
	Slices int `json:"slices"`
	// TileRows and TileCols are the physical array bounds (word lines ×
	// bit lines).
	TileRows int `json:"tile_rows"`
	TileCols int `json:"tile_cols"`
	// Tiles is the total tile count across all mapped layers.
	Tiles int `json:"tiles"`
	// MatVecs is the number of tile read activations per input sample.
	MatVecs int `json:"matvecs"`
	// DACs is the number of word-line input conversions per input sample.
	DACs int `json:"dacs"`
	// ADCs is the number of bit-line output conversions per input sample.
	ADCs int `json:"adcs"`
}

// Devices returns the total programmable device count (weights × slices).
func (g Geometry) Devices() int { return g.Weights * g.Slices }

// PointCost is the programming cost at one NWC grid target, aggregated over
// the Monte-Carlo trials. The aggregates are derived from the raw
// write-cycle Welford moments by exact scaling, so they carry the same trial
// count and fold identically everywhere the cycle aggregates do.
type PointCost struct {
	// Target is the grid's normalized-write-cycle budget.
	Target float64
	// EnergyUJ aggregates programming energy, in microjoules: cycles ×
	// (write pulse + verify read energy).
	EnergyUJ *stat.Welford
	// TimeMS aggregates programming wall-clock, in milliseconds: cycles ×
	// (write pulse + verify read latency) ÷ parallelism.
	TimeMS *stat.Welford
}

// Report is the composed hardware cost of one grid-budget run: per-point
// programming cost from the cycle aggregates, plus the static per-sample
// inference cost and total array area from the geometry.
type Report struct {
	// Model is the canonical cost-model spec that produced the report.
	Model string
	// Geometry is the static mapping geometry the report composed over.
	Geometry Geometry
	// Points is the per-grid-point programming cost, in target order.
	Points []PointCost
	// InferenceEnergyNJ is the energy of one input sample's forward pass,
	// in nanojoules: per-sample DAC + tile read + ADC operations.
	InferenceEnergyNJ float64
	// InferenceLatencyUS is the latency of one input sample's forward pass,
	// in microseconds, with tile activations fully serialized (each one DAC
	// phase + read pulse + ADC phase) — the conservative no-pipelining bound.
	InferenceLatencyUS float64
	// AreaMM2 is the total array area in square millimetres: per tile, a
	// full complement of row DACs and column ADCs plus the cell matrix.
	AreaMM2 float64
	// Calibration prices the run's calibration probe pass (package calib);
	// nil when the run had no calibration model.
	Calibration *CalibCost
}

// ProbeOps counts the hardware operations of one calibration probe pass over
// the mapped network: per matrix, each probe drives one word line (one DAC
// conversion), activates the tile band holding that input row, and converts
// every output bit line. Like Geometry it is pure data, derived
// deterministically from the network topology and the probe budget, and
// travels with shard records so distributed merges price calibration
// identically to local runs.
type ProbeOps struct {
	// MatVecs is the number of tile read activations in one probe pass.
	MatVecs int `json:"matvecs"`
	// DACs is the number of word-line input conversions in one probe pass.
	DACs int `json:"dacs"`
	// ADCs is the number of bit-line output conversions in one probe pass.
	ADCs int `json:"adcs"`
}

// CalibCost is the priced calibration block of a Report: the probe-read
// operations of one calibration pass and their energy/latency under the
// report's converter costs. One pass runs per trial (after programming), so
// the energy adds to each trial's programming energy when comparing total
// budgets — the accuracy-vs-total-energy frontier swim-pareto traces.
type CalibCost struct {
	// Model is the canonical calibration-model spec that was priced.
	Model string
	// Ops counts the probe pass's hardware operations.
	Ops ProbeOps
	// EnergyNJ is the energy of one calibration pass, in nanojoules:
	// per-probe DAC + tile read + ADC operations.
	EnergyNJ float64
	// LatencyUS is the latency of one calibration pass with serialized tile
	// activations, in microseconds.
	LatencyUS float64
}

// CycleEnergyPJ returns the energy of one write-verify cycle (one write
// pulse plus one verify read), in picojoules.
func (m Model) CycleEnergyPJ() float64 { return m.Write.EnergyPJ + m.Verify.EnergyPJ }

// CycleTimeNS returns the wall-clock of one write-verify cycle divided by
// the programming parallelism, in nanoseconds.
func (m Model) CycleTimeNS() float64 {
	return (m.Write.LatencyNS + m.Verify.LatencyNS) / float64(m.Parallelism)
}

// SampleEnergyPJ returns the inference energy of one input sample, in
// picojoules.
func (m Model) SampleEnergyPJ(g Geometry) float64 {
	return float64(g.DACs)*m.DAC.EnergyPJ +
		float64(g.MatVecs)*m.Read.EnergyPJ +
		float64(g.ADCs)*m.ADC.EnergyPJ
}

// SampleLatencyNS returns the inference latency of one input sample with
// serialized tile activations, in nanoseconds.
func (m Model) SampleLatencyNS(g Geometry) float64 {
	return float64(g.MatVecs) * (m.DAC.LatencyNS + m.Read.LatencyNS + m.ADC.LatencyNS)
}

// AreaUM2 returns the total array area, in square micrometres.
func (m Model) AreaUM2(g Geometry) float64 {
	perTile := float64(g.TileRows)*m.DAC.AreaUM2 +
		float64(g.TileCols)*m.ADC.AreaUM2 +
		float64(g.TileRows)*float64(g.TileCols)*m.CellAreaUM2
	return float64(g.Tiles) * perTile
}

// CalibrationCost prices one calibration probe pass under the model's
// converter and read costs: spec is the calibration model's canonical spec
// (recorded for observability), ops the pass's operation counts. Like
// Report, the call is a pure function of its inputs.
func (m Model) CalibrationCost(spec string, ops ProbeOps) *CalibCost {
	energyPJ := float64(ops.DACs)*m.DAC.EnergyPJ +
		float64(ops.MatVecs)*m.Read.EnergyPJ +
		float64(ops.ADCs)*m.ADC.EnergyPJ
	latencyNS := float64(ops.MatVecs) * (m.DAC.LatencyNS + m.Read.LatencyNS + m.ADC.LatencyNS)
	return &CalibCost{
		Model:     spec,
		Ops:       ops,
		EnergyNJ:  energyPJ * 1e-3,
		LatencyUS: latencyNS * 1e-3,
	}
}

// scaled derives the Welford moments of k·X from the folded moments of X —
// exact for a constant scale (n is unchanged, the mean scales by k, the
// second central moment by k²), so the result is a pure function of the
// input aggregate and bit-identical wherever that aggregate is.
func scaled(w *stat.Welford, k float64) *stat.Welford {
	if w == nil {
		return nil
	}
	return stat.FromMoments(w.N(), k*w.Mean(), k*k*w.M2())
}

// Report composes the model over a run's geometry and folded cycle
// aggregates: cycles[i] holds the raw write-verify cycle moments at
// targets[i] (program.Point.Cycles). The call is deterministic — no
// randomness, no iteration-order dependence — which is what extends the
// bit-identical contract from the cycle aggregates to the cost block.
func (m Model) Report(g Geometry, targets []float64, cycles []*stat.Welford) *Report {
	rep := &Report{
		Model:              m.spec,
		Geometry:           g,
		InferenceEnergyNJ:  m.SampleEnergyPJ(g) * 1e-3,
		InferenceLatencyUS: m.SampleLatencyNS(g) * 1e-3,
		AreaMM2:            m.AreaUM2(g) * 1e-6,
	}
	kE := m.CycleEnergyPJ() * 1e-6 // pJ per cycle → µJ
	kT := m.CycleTimeNS() * 1e-6   // ns per cycle → ms
	for i, target := range targets {
		var w *stat.Welford
		if i < len(cycles) {
			w = cycles[i]
		}
		rep.Points = append(rep.Points, PointCost{
			Target:   target,
			EnergyUJ: scaled(w, kE),
			TimeMS:   scaled(w, kT),
		})
	}
	return rep
}
