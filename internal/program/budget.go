package program

import (
	"errors"
	"fmt"
)

// Budget is what "enough programming" means for a pipeline run, carried as a
// value instead of encoded in which function gets called. The two kinds are
// NWCGrid (fixed write budgets — the Table 1 / Fig. 2 protocol) and
// DropTarget (a maximum acceptable accuracy drop — Algorithm 1). The
// interface is closed: its only implementations live in this package, so
// Pipeline.Run can switch exhaustively.
type Budget interface {
	validate() error
}

// NWCGrid spends fixed write budgets: each target is a normalized-write-cycle
// level, walked cumulatively on a single device instance per trial (the
// paper's protocol: one Monte-Carlo run programs one chip and measures the
// whole sweep on it). Targets must be non-negative and non-decreasing.
type NWCGrid struct {
	Targets []float64
}

// GridBudget builds a fixed-NWC budget over the given grid.
func GridBudget(targets ...float64) NWCGrid { return NWCGrid{Targets: targets} }

func (b NWCGrid) validate() error {
	if len(b.Targets) == 0 {
		return errors.New("empty NWC grid")
	}
	prev := 0.0
	for i, t := range b.Targets {
		if t < 0 {
			return fmt.Errorf("negative NWC target %g at grid point %d", t, i)
		}
		if t < prev {
			return fmt.Errorf("NWC grid must be non-decreasing (cumulative spend on one instance), got %g after %g", t, prev)
		}
		prev = t
	}
	return nil
}

// DropTarget stops programming as soon as the measured accuracy drop from
// BaseAccuracy is at most MaxDrop percentage points — the paper's
// Algorithm 1 stopping rule, evaluated once per granule (WithGranularity).
// MaxNWC, when positive, caps the spend for policies that never exhaust
// themselves (in-situ training can write forever); 0 means uncapped.
type DropTarget struct {
	BaseAccuracy float64
	MaxDrop      float64
	MaxNWC       float64
}

// DropBudget builds an accuracy-drop budget against the given baseline
// accuracy (%).
func DropBudget(baseAccuracy, maxDrop float64) DropTarget {
	return DropTarget{BaseAccuracy: baseAccuracy, MaxDrop: maxDrop}
}

func (b DropTarget) validate() error {
	if b.MaxNWC < 0 {
		return fmt.Errorf("negative MaxNWC %g", b.MaxNWC)
	}
	return nil
}
