package program

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"
)

// shardPipeline builds a small grid pipeline over the shared test workload,
// optionally restricted to a trial range.
func shardPipeline(t *testing.T, w *testWorkload, trials int, opts ...Option) *Pipeline {
	t.Helper()
	all := append(append(w.options(),
		WithSeed(404),
		WithTrials(trials),
		WithEvalBatch(64)), opts...)
	p, err := New(w.net, mustLookup(t, "swim"), GridBudget(0, 0.2), all...)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// resultKey fingerprints a Result exactly: hex float formatting (%x) is
// bit-faithful, so equal keys mean bit-identical aggregates. (The
// envelope-level byte comparison lives in the serve tests; program cannot
// import serialize without a cycle.)
func resultKey(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%d|%g|%v;", res.Policy, res.Trials, res.ReadTime, res.Nonidealities)
	for _, pt := range res.Points {
		fmt.Fprintf(&b, "%g:%x/%x/%d:%x/%x/%d:%x/%x/%d;", pt.Target,
			pt.Accuracy.Mean(), pt.Accuracy.Std(), pt.Accuracy.N(),
			pt.NWC.Mean(), pt.NWC.Std(), pt.NWC.N(),
			pt.Cycles.Mean(), pt.Cycles.Std(), pt.Cycles.N())
	}
	return b.String()
}

// The tentpole property: ANY contiguous partition of the trial space,
// executed shard by shard at mixed worker counts (1 and NumCPU) and merged
// in trial order, serializes bit-identically to the single-node run — even
// when a shard is recomputed, as a coordinator does after reassigning a
// failed worker's range.
func TestShardPartitionMergeBitIdentity(t *testing.T) {
	const trials = 7
	w := workload(t)
	full, err := shardPipeline(t, w, trials, WithWorkers(1)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := resultKey(full)

	r := rand.New(rand.NewSource(11))
	for round := 0; round < 3; round++ {
		// Random contiguous partition of [0, trials).
		bounds := []int{0, trials}
		for i := 0; i < r.Intn(trials); i++ {
			bounds = append(bounds, 1+r.Intn(trials-1))
		}
		for i := 1; i < len(bounds); i++ {
			for j := i; j > 0 && bounds[j] < bounds[j-1]; j-- {
				bounds[j], bounds[j-1] = bounds[j-1], bounds[j]
			}
		}
		var shards []*Shard
		for i := 1; i < len(bounds); i++ {
			lo, hi := bounds[i-1], bounds[i]
			if lo == hi {
				continue
			}
			workers := 1
			if len(shards)%2 == 1 {
				workers = runtime.NumCPU()
			}
			p := shardPipeline(t, w, trials, WithWorkers(workers), WithTrialRange(lo, hi))
			sh, err := p.RunShard(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if round == 0 && len(shards) == 0 {
				// Mid-run reassignment: recompute the first range at a
				// different worker count and merge the retry's copy.
				retry, err := shardPipeline(t, w, trials, WithWorkers(runtime.NumCPU()),
					WithTrialRange(lo, hi)).RunShard(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				sh = retry
			}
			shards = append(shards, sh)
		}
		// Shard arrival order must not matter.
		r.Shuffle(len(shards), func(i, j int) { shards[i], shards[j] = shards[j], shards[i] })
		merged, err := MergeShards(shards)
		if err != nil {
			t.Fatal(err)
		}
		if got := resultKey(merged); got != want {
			t.Fatalf("round %d (%d shards): merged result differs from single-node:\nmerged: %s\nsingle: %s",
				round, len(shards), got, want)
		}
	}
}

func TestMergeShardsValidation(t *testing.T) {
	w := workload(t)
	sh := func(lo, hi int) *Shard {
		t.Helper()
		s, err := shardPipeline(t, w, 4, WithTrialRange(lo, hi)).RunShard(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := sh(0, 2), sh(2, 4)

	if _, err := MergeShards(nil); err == nil {
		t.Error("empty shard list accepted")
	}
	if _, err := MergeShards([]*Shard{a}); err == nil || !strings.Contains(err.Error(), "cover") {
		t.Errorf("gap at the tail accepted: %v", err)
	}
	if _, err := MergeShards([]*Shard{a, a}); err == nil {
		t.Error("overlapping shards accepted")
	}
	foreign := *b
	foreign.Policy = "magnitude"
	if _, err := MergeShards([]*Shard{a, &foreign}); err == nil {
		t.Error("shards from different runs merged")
	}
	short := *b
	short.Rows = short.Rows[:1]
	if _, err := MergeShards([]*Shard{a, &short}); err == nil {
		t.Error("row-deficient shard accepted")
	}
}

func TestWithTrialRangeValidation(t *testing.T) {
	w := workload(t)
	if _, err := New(w.net, mustLookup(t, "swim"), GridBudget(0.1),
		append(w.options(), WithTrials(4), WithTrialRange(-1, 2))...); err == nil {
		t.Error("negative lo accepted")
	}
	if _, err := New(w.net, mustLookup(t, "swim"), GridBudget(0.1),
		append(w.options(), WithTrials(4), WithTrialRange(2, 2))...); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := New(w.net, mustLookup(t, "swim"), GridBudget(0.1),
		append(w.options(), WithTrials(4), WithTrialRange(0, 5))...); err == nil {
		t.Error("range past the trial space accepted")
	}
	// Drop budgets have no mergeable row form: RunShard must refuse.
	p, err := New(w.net, mustLookup(t, "swim"), DropBudget(90, 1),
		append(w.options(), WithTrials(2))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunShard(context.Background()); err == nil || !strings.Contains(err.Error(), "grid budget") {
		t.Errorf("RunShard on a drop budget: %v", err)
	}
}
