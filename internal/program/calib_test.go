package program

import (
	"context"
	"runtime"
	"strings"
	"testing"

	"swim/internal/calib"
	"swim/internal/nonideal"
)

func gainoffsetModel(t *testing.T, spec string) calib.Model {
	t.Helper()
	m, err := calib.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// calibPipeline builds a small grid pipeline with a drift scenario and the
// calibration tier attached — the configuration every property test here
// exercises.
func calibPipeline(t *testing.T, w *testWorkload, spec string, trials int, opts ...Option) *Pipeline {
	t.Helper()
	base := []Option{
		WithCalibrationModel(gainoffsetModel(t, spec)),
		WithNonidealities(scenarioStack(t)...),
		WithReadTime(86400),
	}
	return shardPipeline(t, w, trials, append(base, opts...)...)
}

// The acceptance bar for the calibration tier: results are bit-for-bit
// reproducible across worker counts, with the probe-budget RNG drawn from
// the per-trial stream.
func TestCalibrationWorkerInvariance(t *testing.T) {
	w := workload(t)
	for _, spec := range []string{"gainoffset:probes=4", "pertile:probes=4,tilerows=64,tilecols=64"} {
		run := func(workers int) *Result {
			res, err := calibPipeline(t, w, spec, 4, WithWorkers(workers)).Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		serial, parallel := run(1), run(runtime.NumCPU())
		if resultKey(serial) != resultKey(parallel) {
			t.Fatalf("spec %s: workers=1 and workers=%d results differ:\n%s\n%s",
				spec, runtime.NumCPU(), resultKey(serial), resultKey(parallel))
		}
		canon := gainoffsetModel(t, spec).Spec()
		if serial.Calibration != canon {
			t.Fatalf("Result.Calibration = %q, want %q", serial.Calibration, canon)
		}
	}
}

// Trial-range shards of a calibrated run must merge bit-identically to the
// single-node run: the probe choices derive from per-trial keys, never from
// the shard bounds.
func TestCalibrationShardMergeBitIdentity(t *testing.T) {
	const trials = 5
	w := workload(t)
	full, err := calibPipeline(t, w, "gainoffset:probes=4", trials, WithWorkers(1)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var shards []*Shard
	for _, r := range [][2]int{{0, 2}, {2, 3}, {3, 5}} {
		workers := 1 + len(shards)%runtime.NumCPU()
		p := calibPipeline(t, w, "gainoffset:probes=4", trials,
			WithWorkers(workers), WithTrialRange(r[0], r[1]))
		sh, err := p.RunShard(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if sh.Calib == "" {
			t.Fatal("shard does not carry the calibration spec")
		}
		shards = append(shards, sh)
	}
	merged, err := MergeShards(shards)
	if err != nil {
		t.Fatal(err)
	}
	if resultKey(merged) != resultKey(full) {
		t.Fatalf("calibrated shard merge differs from single-node:\nmerged: %s\nsingle: %s",
			resultKey(merged), resultKey(full))
	}
	if merged.Calibration != full.Calibration {
		t.Fatalf("merged Calibration %q != %q", merged.Calibration, full.Calibration)
	}
}

// Shards calibrated under different models are observations of different
// experiments; the merge must refuse to fold them.
func TestMergeShardsRejectsMixedCalib(t *testing.T) {
	w := workload(t)
	a, err := calibPipeline(t, w, "gainoffset:probes=4", 4, WithTrialRange(0, 2)).RunShard(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, err := calibPipeline(t, w, "gainoffset:probes=4", 4, WithTrialRange(2, 4)).RunShard(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	mixed := *b
	mixed.Calib = "gainoffset:probes=16"
	if _, err := MergeShards([]*Shard{a, &mixed}); err == nil || !strings.Contains(err.Error(), "calibration") {
		t.Fatalf("mixed calibration bases merged: %v", err)
	}
}

// With both a cost model and calibration configured, the Result's cost
// report must price the probe pass — nonzero operation counts and energy —
// and the shard path must reproduce the identical calibration block.
func TestCalibrationCostPriced(t *testing.T) {
	w := workload(t)
	p := calibPipeline(t, w, "gainoffset:probes=4", 2, WithCostModel(rramModel(t)))
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cc := res.Cost.Calibration
	if cc == nil {
		t.Fatal("cost report carries no calibration block")
	}
	if cc.Ops.MatVecs <= 0 || cc.Ops.DACs <= 0 || cc.Ops.ADCs <= 0 {
		t.Fatalf("degenerate probe ops %+v", cc.Ops)
	}
	if cc.EnergyNJ <= 0 || cc.LatencyUS <= 0 {
		t.Fatalf("degenerate probe cost %+v", cc)
	}

	sh, err := calibPipeline(t, w, "gainoffset:probes=4", 2, WithCostModel(rramModel(t))).RunShard(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sh.Probes == nil || *sh.Probes != cc.Ops {
		t.Fatalf("shard probe ops %+v != run's %+v", sh.Probes, cc.Ops)
	}
	merged, err := MergeShards([]*Shard{sh})
	if err != nil {
		t.Fatal(err)
	}
	mc := merged.Cost.Calibration
	if mc == nil || *mc != *cc {
		t.Fatalf("merged calibration cost %+v != single-node %+v", mc, cc)
	}
}

// Calibration must recover accuracy under a day of pure conductance drift
// at a fixed NWC budget — the systematic, affine-shaped degradation the
// gainoffset fit exists to undo. (Under non-affine damage like stuck
// devices the R²-shrunk fit approaches a no-op instead; that guarantee is
// pinned at the mapping layer.)
func TestCalibrationRecoversDriftAccuracy(t *testing.T) {
	w := workload(t)
	drift, err := nonideal.Parse("drift:nu=0.15,nustd=0.01")
	if err != nil {
		t.Fatal(err)
	}
	run := func(opts ...Option) *Result {
		all := append([]Option{
			WithNonidealities(drift),
			WithReadTime(86400),
		}, opts...)
		res, err := shardPipeline(t, w, 4, all...).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run()
	calibrated := run(WithCalibrationModel(gainoffsetModel(t, "gainoffset:probes=16")))
	last := len(plain.Points) - 1
	if got, want := calibrated.Points[last].Accuracy.Mean(), plain.Points[last].Accuracy.Mean(); got < want {
		t.Fatalf("gainoffset did not recover drift accuracy at fixed NWC: %.3f < %.3f", got, want)
	}
}

// swim+calib must resolve through the registry and run end to end under the
// calibrated drift scenario.
func TestResidualPolicyRuns(t *testing.T) {
	pol := mustLookup(t, "swim+calib")
	w := workload(t)
	all := append(w.options(),
		WithSeed(404),
		WithTrials(2),
		WithEvalBatch(64),
		WithCalibrationModel(gainoffsetModel(t, "gainoffset:probes=4")),
		WithNonidealities(scenarioStack(t)...),
		WithReadTime(86400))
	p, err := New(w.net, pol, GridBudget(0, 0.2), all...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "swim+calib" || len(res.Points) != 2 {
		t.Fatalf("unexpected result: policy %q, %d points", res.Policy, len(res.Points))
	}
	for _, pt := range res.Points {
		if pt.Accuracy.N() != 2 {
			t.Fatalf("point %g aggregated %d trials, want 2", pt.Target, pt.Accuracy.N())
		}
	}
}
