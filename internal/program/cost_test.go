package program

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"

	"swim/internal/cost"
	"swim/internal/eval"
)

// costPipeline builds a small grid pipeline with cost accounting attached.
func costPipeline(t *testing.T, w *testWorkload, m cost.Model, trials int, opts ...Option) *Pipeline {
	t.Helper()
	return shardPipeline(t, w, trials, append([]Option{WithCostModel(m)}, opts...)...)
}

// costKey fingerprints a Result's cycle aggregates and Cost report exactly
// (%x float formatting is bit-faithful): equal keys mean bit-identical cost
// accounting.
func costKey(res *Result) string {
	var b strings.Builder
	for _, pt := range res.Points {
		fmt.Fprintf(&b, "%g:%x/%x/%d;", pt.Target, pt.Cycles.Mean(), pt.Cycles.Std(), pt.Cycles.N())
	}
	rep := res.Cost
	if rep == nil {
		return b.String() + "|no-cost"
	}
	fmt.Fprintf(&b, "|%s|%+v|%x/%x/%x;", rep.Model, rep.Geometry,
		rep.InferenceEnergyNJ, rep.InferenceLatencyUS, rep.AreaMM2)
	for _, pc := range rep.Points {
		fmt.Fprintf(&b, "%g:%x/%x/%d:%x/%x/%d;", pc.Target,
			pc.EnergyUJ.Mean(), pc.EnergyUJ.Std(), pc.EnergyUJ.N(),
			pc.TimeMS.Mean(), pc.TimeMS.Std(), pc.TimeMS.N())
	}
	return b.String()
}

func rramModel(t *testing.T) cost.Model {
	t.Helper()
	m, err := cost.Parse("rram")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestCyclesSurfaced pins satellite #1: grid results carry the raw
// write-verify cycle aggregates NWC normalization used to discard, and the
// two series agree through the baseline (cycles = NWC × baseline cycles per
// trial, with a fixed network and cycle table, so the means stay exactly
// proportional).
func TestCyclesSurfaced(t *testing.T) {
	w := workload(t)
	res, err := shardPipeline(t, w, 3).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != nil {
		t.Fatal("cost report present without WithCostModel")
	}
	var baseline float64
	for i, pt := range res.Points {
		if pt.Cycles == nil || pt.Cycles.N() != res.Trials {
			t.Fatalf("point %d: missing cycle aggregate: %+v", i, pt.Cycles)
		}
		if pt.NWC.Mean() == 0 {
			if pt.Cycles.Mean() != 0 {
				t.Fatalf("point %d: zero NWC but %g cycles", i, pt.Cycles.Mean())
			}
			continue
		}
		ratio := pt.Cycles.Mean() / pt.NWC.Mean()
		if baseline == 0 {
			baseline = ratio
		} else if math.Abs(ratio-baseline) > 1e-6*baseline {
			t.Fatalf("point %d: cycles/NWC ratio %g drifts from baseline %g", i, ratio, baseline)
		}
	}
	if baseline <= 0 {
		t.Fatal("no point spent any cycles")
	}
}

// TestCostBitIdenticalAcrossWorkers is the satellite #3 property at the
// worker axis: the Cost block is bit-identical at 1 worker and NumCPU
// workers.
func TestCostBitIdenticalAcrossWorkers(t *testing.T) {
	w := workload(t)
	m := rramModel(t)
	const trials = 5
	seq, err := costPipeline(t, w, m, trials, WithWorkers(1)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if seq.Cost == nil || len(seq.Cost.Points) != len(seq.Points) {
		t.Fatalf("missing cost report: %+v", seq.Cost)
	}
	if seq.Cost.Model != m.Spec() {
		t.Fatalf("cost model %q, want %q", seq.Cost.Model, m.Spec())
	}
	par, err := costPipeline(t, w, m, trials, WithWorkers(runtime.NumCPU())).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := costKey(par), costKey(seq); got != want {
		t.Fatalf("cost diverges across worker counts:\n 1 worker: %s\n %d workers: %s",
			want, runtime.NumCPU(), got)
	}
	if got, want := resultKey(par), resultKey(seq); got != want {
		t.Fatalf("accuracy aggregates diverge across worker counts:\n%s\n%s", want, got)
	}
}

// TestCostShardMergeBitIdentity is the satellite #3 property at the
// sharding axis: a partition of the trial space computed at mixed worker
// counts and folded through MergeShards reproduces the single-node Cost
// block bit for bit.
func TestCostShardMergeBitIdentity(t *testing.T) {
	w := workload(t)
	m := rramModel(t)
	const trials = 6
	full, err := costPipeline(t, w, m, trials, WithWorkers(1)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var shards []*Shard
	for _, rg := range [][2]int{{0, 2}, {2, 3}, {3, 6}} {
		workers := 1
		if len(shards)%2 == 1 {
			workers = runtime.NumCPU()
		}
		p := costPipeline(t, w, m, trials, WithWorkers(workers), WithTrialRange(rg[0], rg[1]))
		sh, err := p.RunShard(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if sh.Cost != m.Spec() || sh.Geom == nil {
			t.Fatalf("shard [%d,%d) lost cost metadata: %q %v", rg[0], rg[1], sh.Cost, sh.Geom)
		}
		shards = append(shards, sh)
	}
	merged, err := MergeShards(shards)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := costKey(merged), costKey(full); got != want {
		t.Fatalf("merged cost diverges from single-node run:\n full:   %s\n merged: %s", want, got)
	}
	if got, want := resultKey(merged), resultKey(full); got != want {
		t.Fatalf("merged aggregates diverge from single-node run:\n%s\n%s", want, got)
	}
}

// TestMergeShardsRejectsCostMismatch covers the compatibility checks: a
// partition mixing cost-bearing and cost-free shards (or different models)
// must not merge.
func TestMergeShardsRejectsCostMismatch(t *testing.T) {
	w := workload(t)
	m := rramModel(t)
	const trials = 2
	withCost, err := costPipeline(t, w, m, trials, WithTrialRange(0, 1)).RunShard(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	without, err := shardPipeline(t, w, trials, WithTrialRange(1, 2)).RunShard(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeShards([]*Shard{withCost, without}); err == nil {
		t.Fatal("merged shards with mismatched cost models")
	}
}

// TestCostGeometryMatchesMapping cross-checks the derived geometry against
// the mapping and op-walk ground truth.
func TestCostGeometryMatchesMapping(t *testing.T) {
	w := workload(t)
	p := costPipeline(t, w, rramModel(t), 2)
	g := costGeometry(p.env.Net, p.env.Device)
	if g.Weights != w.net.NumMappedWeights() {
		t.Fatalf("geometry weights %d, mapping has %d", g.Weights, w.net.NumMappedWeights())
	}
	if g.Slices != p.env.Device.NumDevices() {
		t.Fatalf("geometry slices %d, device has %d", g.Slices, p.env.Device.NumDevices())
	}
	var matvecs, dacs, adcs int
	for _, op := range eval.MatVecOps(w.net) {
		tiles := ((op.Out + g.TileCols - 1) / g.TileCols) * ((op.In + g.TileRows - 1) / g.TileRows)
		matvecs += tiles * op.PerSample
		dacs += op.In * op.PerSample
		adcs += op.Out * op.PerSample
	}
	if g.MatVecs != matvecs || g.DACs != dacs || g.ADCs != adcs {
		t.Fatalf("geometry %+v disagrees with op walk (matvecs %d dacs %d adcs %d)", g, matvecs, dacs, adcs)
	}
	if g.Tiles < 1 || g.MatVecs < g.Tiles {
		t.Fatalf("degenerate geometry %+v", g)
	}
}

// TestWithCostModelValidates pins eager option validation.
func TestWithCostModelValidates(t *testing.T) {
	w := workload(t)
	_, err := New(w.net, mustLookup(t, "swim"), GridBudget(0, 0.1),
		append(w.options(), WithCostModel(cost.Model{}))...)
	if err == nil {
		t.Fatal("New accepted an invalid (zero) cost model")
	}
}
