package program

import (
	"swim/internal/cost"
	"swim/internal/stat"
)

// Result is the structured outcome of one Pipeline.Run.
//
// For NWCGrid budgets, Points holds one entry per grid target. For
// DropTarget budgets, Trace holds the per-granule accuracy trajectory and
// NWC / Evals / Achieved summarize where Algorithm 1 stopped.
type Result struct {
	// Policy is the name of the policy that produced this result.
	Policy string
	// Budget is the budget the run was configured with.
	Budget Budget
	// Trials is the Monte-Carlo trial count.
	Trials int
	// Nonidealities records the read-time device-nonideality specs the run
	// was configured with (WithNonidealities), in application order; empty
	// for an ideal-device run.
	Nonidealities []string
	// ReadTime is when accuracy was measured, in seconds after programming
	// (WithReadTime; 0 for an immediate read).
	ReadTime float64
	// Calibration records the canonical calibration-model spec the run was
	// configured with (WithCalibrationModel); empty for an uncalibrated run.
	Calibration string

	// Points is the per-grid-point outcome (NWCGrid budgets only).
	Points []Point

	// Cost is the hardware cost composition of the run (WithCostModel;
	// NWCGrid budgets only). It is derived deterministically from the
	// folded Point.Cycles aggregates and the mapping geometry, so it is
	// bit-identical at any worker count and across shard merges.
	Cost *cost.Report

	// Trace is the per-granule accuracy trajectory (DropTarget budgets
	// only). Step 0 is the accuracy right after the free parallel
	// programming pass. Later steps may aggregate fewer trials than
	// earlier ones: a trial stops contributing once it meets the target.
	Trace []TraceStep
	// NWC aggregates the normalized write cycles spent when each trial
	// stopped (DropTarget budgets only).
	NWC *stat.Welford
	// Evals aggregates the number of accuracy evaluations per trial — the
	// cost the granularity p trades off (DropTarget budgets only).
	Evals *stat.Welford
	// Achieved counts the trials that met the accuracy-drop target
	// (DropTarget budgets only).
	Achieved int
}

// Point is one fixed-NWC grid entry aggregated over all trials.
type Point struct {
	// Target is the grid's normalized-write-cycle budget.
	Target float64
	// Accuracy aggregates on-device accuracy (%) across trials.
	Accuracy *stat.Welford
	// NWC aggregates the write cycles actually spent, which can undershoot
	// the target when the policy ran out of weights to verify.
	NWC *stat.Welford
	// Cycles aggregates the RAW write-verify cycle count spent by this
	// point (mapping.Mapped.CyclesUsed) — the numerator NWC normalizes
	// away. Cost accounting and the Table 1 reproduction both read these
	// counts, so they agree by construction.
	Cycles *stat.Welford
}

// TraceStep is one granule of a drop-budget run aggregated over the trials
// that reached it.
type TraceStep struct {
	// FractionVerified is the fraction of the priority order covered after
	// this granule (0 for step 0). For policies without an order (in-situ)
	// it is the granule index times the granularity.
	FractionVerified float64
	// Accuracy aggregates on-device accuracy (%) at this step.
	Accuracy *stat.Welford
	// NWC aggregates normalized write cycles spent by this step.
	NWC *stat.Welford
}
