package program

// Hardware cost composition: an optional cost.Model threaded through the
// pipeline turns every grid-budget Result into a cost.Report — programming
// energy/time from the folded raw write-cycle aggregates, inference
// energy/latency from the network's MatVec workload, and array area from
// the crossbar tiling. Everything here is a deterministic post-pass over
// already-deterministic aggregates, so cost blocks inherit the engine's
// bit-identical-at-any-worker-count contract for free (shard merges run the
// exact same applyCost over the exact same folded moments).

import (
	"swim/internal/cost"
	"swim/internal/crossbar"
	"swim/internal/device"
	"swim/internal/eval"
	"swim/internal/nn"
	"swim/internal/stat"
)

// WithCostModel attaches a hardware cost model (package cost): grid-budget
// Results gain a Cost report composed over the run's mapping geometry and
// per-point write-cycle aggregates. Cost accounting is a pure post-pass —
// it reads the folded aggregates after the Monte-Carlo run and never
// touches the per-trial hot path, so accuracy bits and eval allocations are
// unchanged with or without it.
func WithCostModel(m cost.Model) Option {
	return func(p *Pipeline) error {
		if err := m.Validate(); err != nil {
			return err
		}
		p.costModel = &m
		return nil
	}
}

// costGeometry derives the static mapping geometry of a network on the
// device's default crossbar configuration: per mapped layer, the im2col
// matrix [Out, In] tiles onto TileCols×TileRows arrays, each tile fires
// once per MatVec application, and every application converts In word-line
// inputs and Out bit-line outputs. Deterministic in (network topology,
// device model) — both shard workers and the coordinator derive identical
// values, and the serialized form rides shard records as a cross-check.
func costGeometry(net *nn.Network, dev device.Model) cost.Geometry {
	cfg := crossbar.DefaultConfig(dev)
	g := cost.Geometry{
		Slices:   dev.NumDevices(),
		TileRows: cfg.TileRows,
		TileCols: cfg.TileCols,
	}
	for _, op := range eval.MatVecOps(net) {
		tiles := ((op.Out + cfg.TileCols - 1) / cfg.TileCols) *
			((op.In + cfg.TileRows - 1) / cfg.TileRows)
		g.Weights += op.In * op.Out
		g.Tiles += tiles
		g.MatVecs += tiles * op.PerSample
		g.DACs += op.In * op.PerSample
		g.ADCs += op.Out * op.PerSample
	}
	return g
}

// applyCost composes the model over a grid Result's folded cycle
// aggregates, pricing the calibration probe pass when one is configured
// (calibSpec and probes both set). Shared by runGrid and MergeShards so the
// local and the distributed path run the identical composition.
func applyCost(res *Result, m cost.Model, geom cost.Geometry, calibSpec string, probes *cost.ProbeOps) {
	targets := make([]float64, len(res.Points))
	cycles := make([]*stat.Welford, len(res.Points))
	for i, pt := range res.Points {
		targets[i] = pt.Target
		cycles[i] = pt.Cycles
	}
	res.Cost = m.Report(geom, targets, cycles)
	if calibSpec != "" && probes != nil {
		res.Cost.Calibration = m.CalibrationCost(calibSpec, *probes)
	}
}
