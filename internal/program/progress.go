package program

import (
	"sync/atomic"

	"swim/internal/mc"
)

// Progress is one out-of-band progress event emitted by a running Pipeline.
// Events carry run-relative trial counts: a serving layer that executes many
// pipeline runs per job (scenario grids, sigma sweeps) composes them into
// job-level granule accounting by counting Complete events.
type Progress struct {
	// TrialsDone is how many trials of this run have completed when the
	// event was emitted. Events from concurrent workers may be delivered out
	// of order; each value is a valid count, so consumers wanting a monotone
	// series keep the running maximum.
	TrialsDone int
	// TrialsTotal is the number of trials this run will execute (the shard
	// width for a ranged run, the full trial count otherwise).
	TrialsTotal int
	// TrialDone marks an event reporting one more completed trial.
	TrialDone bool
	// Complete marks the single final event of a run, emitted strictly after
	// every TrialDone event, once the Monte-Carlo engine has returned. It is
	// only emitted for runs that succeed.
	Complete bool
}

// ProgressFunc receives Progress events. It is called from Monte-Carlo
// worker goroutines and must be safe for concurrent use and cheap; it must
// not block. The contract is strictly observe-only: the pipeline ignores
// everything about the callback (it sees no return value and no RNG), so
// progress reporting can never alter trial order, streams, or results.
type ProgressFunc func(Progress)

// WithProgress installs fn as the pipeline's progress observer. One event is
// delivered per completed trial plus one final Complete event per successful
// run; see ProgressFunc for the threading and determinism contract.
func WithProgress(fn ProgressFunc) Option {
	return func(p *Pipeline) error {
		p.progress = fn
		return nil
	}
}

// progressState is the per-run counter behind a pipeline's ProgressFunc. A
// nil *progressState is inert, so call sites need no branching.
type progressState struct {
	fn    ProgressFunc
	total int
	done  atomic.Int64
}

// trialDone records one completed trial and emits its event.
func (ps *progressState) trialDone() {
	if ps == nil {
		return
	}
	d := ps.done.Add(1)
	ps.fn(Progress{TrialsDone: int(d), TrialsTotal: ps.total, TrialDone: true})
}

// complete emits the run's final event. Call after the engine has returned
// successfully — every trialDone has happened by then.
func (ps *progressState) complete() {
	if ps == nil {
		return
	}
	ps.fn(Progress{TrialsDone: int(ps.done.Load()), TrialsTotal: ps.total, Complete: true})
}

// progressGate adapts the run's worker gate so the mc engine's Observer
// events also feed the pipeline's progress counter. It forwards Limit (and
// any Observer the inner gate implements itself, e.g. the serving layer's
// fair-share budgeter) unchanged.
type progressGate struct {
	inner    mc.Gate
	innerObs mc.Observer
	ps       *progressState
}

// Limit delegates to the wrapped gate; with no inner gate it admits every
// worker and never signals a change.
func (g *progressGate) Limit() (int, <-chan struct{}) {
	if g.inner == nil {
		return int(^uint(0) >> 1), nil
	}
	return g.inner.Limit()
}

// TrialDone forwards the engine event to the inner observer and the
// progress counter.
func (g *progressGate) TrialDone(t int) {
	if g.innerObs != nil {
		g.innerObs.TrialDone(t)
	}
	g.ps.trialDone()
}

// WorkerParked forwards to the inner observer.
func (g *progressGate) WorkerParked() {
	if g.innerObs != nil {
		g.innerObs.WorkerParked()
	}
}

// WorkerWoke forwards to the inner observer.
func (g *progressGate) WorkerWoke() {
	if g.innerObs != nil {
		g.innerObs.WorkerWoke()
	}
}

// wrapGate returns the gate the engine should run behind plus the run's
// progress state. Without WithProgress it is the configured gate untouched
// (zero overhead); with it, a progressGate carrying a counter over total
// trials.
func (p *Pipeline) wrapGate(total int) (mc.Gate, *progressState) {
	if p.progress == nil {
		return p.gate, nil
	}
	ps := &progressState{fn: p.progress, total: total}
	innerObs, _ := p.gate.(mc.Observer)
	return &progressGate{inner: p.gate, innerObs: innerObs, ps: ps}, ps
}
