package program

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"

	"swim/internal/device"
	"swim/internal/mapping"
	"swim/internal/mc"
	"swim/internal/rng"
	"swim/internal/stat"
	"swim/internal/swim"
)

// These tests pin the redesign's hard guarantee: for a fixed seed, a
// Pipeline run reproduces the pre-redesign swim free-function results —
// swim.WriteVerifyToNWC for NWC grids, swim.Algorithm1 for drop budgets,
// swim.InSituToNWC for the in-situ baseline — bit for bit, at 1 worker and
// at runtime.NumCPU workers. The references below are verbatim ports of the
// legacy experiment glue, driving the (still exported) swim primitives.

const (
	eqSeed   = 41
	eqTrials = 3
	eqSigma  = 1.0
)

func eqDeviceAndTable(seed uint64) (device.Model, []float64) {
	dm := device.Default(4, eqSigma)
	// The pipeline's default table derivation, shared by the references.
	return dm, dm.CycleTable(300, rng.New(seed^0x5eed))
}

// legacySweep is the pre-redesign Sweep trial loop: selector order, then
// device programming, then cumulative WriteVerifyToNWC per grid point (or
// the in-situ write loop), aggregated with the mc engine.
func legacySweep(t *testing.T, w *testWorkload, method string, grid []float64, workers int) ([]*stat.Welford, []*stat.Welford) {
	t.Helper()
	dm, table := eqDeviceAndTable(eqSeed)
	points := len(grid)
	agg, err := mc.RunSeriesCtx(context.Background(), eqSeed, eqTrials, 2*points, workers,
		func(r *rng.Source) []float64 {
			out := make([]float64, 2*points)
			var order []int
			switch method {
			case "swim":
				order = swim.NewSWIMSelector(w.hess, w.weights).Order(r)
			case "magnitude":
				order = swim.NewMagnitudeSelector(w.weights).Order(r)
			case "random":
				order = swim.NewRandomSelector(w.net.NumMappedWeights()).Order(r)
			case "insitu":
				// order unused
			default:
				panic("unknown method " + method)
			}
			mp, err := mapping.New(w.net, dm, table, r)
			if err != nil {
				panic(err)
			}
			insituStart := 0
			for i, nwc := range grid {
				if method == "insitu" {
					budget := nwc * mp.BaselineCycles()
					for mp.CyclesUsed < budget {
						insituStart = swim.InSituStep(mp, w.ds.TrainX, w.ds.TrainY, insituStart, swim.DefaultInSitu(), r)
					}
				} else {
					swim.WriteVerifyToNWC(mp, order, nwc, r)
				}
				out[i] = mp.Accuracy(w.ds.TestX, w.ds.TestY, 64)
				out[points+i] = mp.NWC()
			}
			return out
		})
	if err != nil {
		t.Fatal(err)
	}
	return agg[:points], agg[points:]
}

func runPipelineGrid(t *testing.T, w *testWorkload, policy string, grid []float64, workers int) *Result {
	t.Helper()
	p, err := New(w.net, mustLookup(t, policy), GridBudget(grid...),
		append(w.options(),
			WithSeed(eqSeed), WithTrials(eqTrials), WithWorkers(workers))...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func sameWelford(a, b *stat.Welford) error {
	if a.N() != b.N() || a.Mean() != b.Mean() || a.Std() != b.Std() {
		return fmt.Errorf("welford mismatch: n %d/%d mean %v/%v std %v/%v",
			a.N(), b.N(), a.Mean(), b.Mean(), a.Std(), b.Std())
	}
	return nil
}

func TestGridEquivalenceWithLegacyPrimitives(t *testing.T) {
	w := workload(t)
	grid := []float64{0, 0.3, 1.0}
	for _, policy := range []string{"swim", "magnitude", "random"} {
		for _, workers := range []int{1, runtime.NumCPU()} {
			wantAcc, wantNWC := legacySweep(t, w, policy, grid, workers)
			res := runPipelineGrid(t, w, policy, grid, workers)
			for i := range grid {
				if err := sameWelford(res.Points[i].Accuracy, wantAcc[i]); err != nil {
					t.Errorf("%s workers=%d point %d accuracy: %v", policy, workers, i, err)
				}
				if err := sameWelford(res.Points[i].NWC, wantNWC[i]); err != nil {
					t.Errorf("%s workers=%d point %d NWC: %v", policy, workers, i, err)
				}
			}
		}
	}
}

func TestInSituEquivalenceWithInSituToNWC(t *testing.T) {
	w := workload(t)
	// Single grid point: SpendTo from a fresh instance is exactly
	// swim.InSituToNWC (same budget rule, same batch cursor start).
	const target = 0.2
	for _, workers := range []int{1, runtime.NumCPU()} {
		dm, table := eqDeviceAndTable(eqSeed)
		want, err := mc.RunSeriesCtx(context.Background(), eqSeed, eqTrials, 2, workers,
			func(r *rng.Source) []float64 {
				mp, err := mapping.New(w.net, dm, table, r)
				if err != nil {
					panic(err)
				}
				swim.InSituToNWC(mp, w.ds.TrainX, w.ds.TrainY, target, swim.DefaultInSitu(), r)
				return []float64{mp.Accuracy(w.ds.TestX, w.ds.TestY, 64), mp.NWC()}
			})
		if err != nil {
			t.Fatal(err)
		}
		res := runPipelineGrid(t, w, "insitu", []float64{target}, workers)
		if err := sameWelford(res.Points[0].Accuracy, want[0]); err != nil {
			t.Errorf("workers=%d accuracy: %v", workers, err)
		}
		if err := sameWelford(res.Points[0].NWC, want[1]); err != nil {
			t.Errorf("workers=%d NWC: %v", workers, err)
		}
	}
}

func TestDropEquivalenceWithAlgorithm1(t *testing.T) {
	w := workload(t)
	const (
		granularity = 0.25
		maxDrop     = 2.0
	)
	for _, policy := range []string{"swim", "magnitude"} {
		for _, workers := range []int{1, runtime.NumCPU()} {
			// Legacy reference: swim.Algorithm1 per pre-split trial stream,
			// folded in trial order exactly as the mc engine folds.
			dm, table := eqDeviceAndTable(eqSeed)
			var sel swim.Selector
			if policy == "swim" {
				sel = swim.NewSWIMSelector(w.hess, w.weights)
			} else {
				sel = swim.NewMagnitudeSelector(w.weights)
			}
			streams := rng.New(eqSeed).SplitN(eqTrials)
			wantNWC, wantEvals := &stat.Welford{}, &stat.Welford{}
			wantAchieved := 0
			var wantTrace []*stat.Welford
			var wantFrac []float64
			for _, r := range streams {
				mp, err := mapping.New(w.net, dm, table, r)
				if err != nil {
					t.Fatal(err)
				}
				legacy := swim.Algorithm1(mp, sel, granularity, w.clean, maxDrop,
					w.ds.TestX, w.ds.TestY, 64, r)
				for i, s := range legacy.Steps {
					if i == len(wantTrace) {
						wantTrace = append(wantTrace, &stat.Welford{})
						wantFrac = append(wantFrac, s.FractionVerified)
					}
					addObs(wantTrace[i], s.Accuracy)
				}
				last := legacy.Steps[len(legacy.Steps)-1]
				addObs(wantNWC, last.NWC)
				addObs(wantEvals, float64(len(legacy.Steps)))
				if legacy.Achieved {
					wantAchieved++
				}
			}

			p, err := New(w.net, mustLookup(t, policy), DropBudget(w.clean, maxDrop),
				append(w.options(),
					WithGranularity(granularity),
					WithSeed(eqSeed), WithTrials(eqTrials), WithWorkers(workers))...)
			if err != nil {
				t.Fatal(err)
			}
			res, err := p.Run(context.Background())
			if err != nil && !errors.Is(err, ErrBudgetExhausted) {
				t.Fatal(err)
			}
			if res.Achieved != wantAchieved {
				t.Errorf("%s workers=%d achieved %d, want %d", policy, workers, res.Achieved, wantAchieved)
			}
			if err := sameWelford(res.NWC, wantNWC); err != nil {
				t.Errorf("%s workers=%d NWC: %v", policy, workers, err)
			}
			if err := sameWelford(res.Evals, wantEvals); err != nil {
				t.Errorf("%s workers=%d evals: %v", policy, workers, err)
			}
			if len(res.Trace) != len(wantTrace) {
				t.Fatalf("%s workers=%d trace length %d, want %d", policy, workers, len(res.Trace), len(wantTrace))
			}
			for i := range wantTrace {
				if err := sameWelford(res.Trace[i].Accuracy, wantTrace[i]); err != nil {
					t.Errorf("%s workers=%d trace step %d: %v", policy, workers, i, err)
				}
				if res.Trace[i].FractionVerified != wantFrac[i] {
					t.Errorf("%s workers=%d step %d fraction %v, want %v",
						policy, workers, i, res.Trace[i].FractionVerified, wantFrac[i])
				}
			}
		}
	}
}

// TestGridWorkerInvariance pins the engine-level guarantee end to end
// through the pipeline: identical Results at every worker count.
func TestGridWorkerInvariance(t *testing.T) {
	w := workload(t)
	grid := []float64{0, 0.5}
	serial := runPipelineGrid(t, w, "swim", grid, 1)
	for _, workers := range []int{3, runtime.NumCPU()} {
		res := runPipelineGrid(t, w, "swim", grid, workers)
		for i := range grid {
			if err := sameWelford(res.Points[i].Accuracy, serial.Points[i].Accuracy); err != nil {
				t.Errorf("workers=%d point %d: %v", workers, i, err)
			}
		}
	}
}
