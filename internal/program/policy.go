package program

import (
	"errors"
	"fmt"
	"math"

	"swim/internal/device"
	"swim/internal/mapping"
	"swim/internal/nn"
	"swim/internal/rng"
	"swim/internal/swim"
	"swim/internal/tensor"
)

// Env is the workload context a Policy builds its per-trial state from. The
// Pipeline assembles it from the functional options; Hess and Weights are
// filled lazily (from WithSensitivity or the WithCalibration pass) before
// any trial runs.
type Env struct {
	Net     *nn.Network
	Device  device.Model
	Hess    []float64 // Hessian-diagonal sensitivities, flat mapped order
	Weights []float64 // |w| magnitudes, flat mapped order
	TrainX  *tensor.Tensor
	TrainY  []int
	InSitu  swim.InSituConfig
}

// Policy is a named strategy for spending a write budget on a mapped
// network. Policies are stateless and safe for concurrent use; all per-trial
// state lives in the Trial they mint.
type Policy interface {
	// Name identifies the policy in the registry and in Results.
	Name() string
	// NewTrial builds the per-trial programming state. r is the stream the
	// trial's stochastic choices (e.g. a random order) must come from; an
	// error means the Env lacks something the policy needs.
	NewTrial(env *Env, r *rng.Source) (Trial, error)
}

// Trial is one Monte-Carlo trial's programming strategy. A Trial is used
// with exactly one budget shape per run: SpendTo for NWC grids, Step for
// drop budgets.
type Trial interface {
	// SpendTo programs mp until its cumulative spend reaches nwc (normalized
	// write cycles), or the policy has nothing left to program.
	SpendTo(mp *mapping.Mapped, nwc float64, r *rng.Source)
	// Step advances the programming frontier by one granule of size
	// g ∈ (0, 1] — a fraction of the priority order for write-verify
	// policies, a fraction of the baseline write bill for in-situ — and
	// reports whether the policy is exhausted.
	Step(mp *mapping.Mapped, g float64, r *rng.Source) (exhausted bool)
}

// envValidator lets a policy check an Env without minting (and discarding)
// a full per-trial state — selector policies would otherwise pay a complete
// priority sort just for Run's preflight. Optional; policies without it are
// preflighted through NewTrial.
type envValidator interface {
	validateEnv(env *Env) error
}

// progresser reports how much of a trial's own programming frontier has been
// covered, for drop-budget traces. Optional; without it the pipeline
// approximates the fraction from granule counts over the full weight count,
// which over-reports for selectors whose order covers only a subset.
type progresser interface {
	progress() float64
}

// SelectorBacked is implemented by policies that rank weights with a
// swim.Selector (all built-ins except "insitu" and "noverify"). It lets
// callers that need a raw priority order — e.g. the Fig. 1 stratified
// sampler — reuse the registry instead of hard-coding a selector.
type SelectorBacked interface {
	Policy
	// Selector builds the policy's selector over env.
	Selector(env *Env) (swim.Selector, error)
}

// SelectorPolicy adapts a swim.Selector factory into a Policy, so custom
// rankings (tie-break ablations, Fisher sensitivities, ...) run on the same
// pipeline as the built-ins. The build function is called once per trial.
func SelectorPolicy(name string, build func(env *Env) (swim.Selector, error)) SelectorBacked {
	return &selectorPolicy{name: name, build: build}
}

type selectorPolicy struct {
	name  string
	build func(env *Env) (swim.Selector, error)
}

func (p *selectorPolicy) Name() string { return p.name }

func (p *selectorPolicy) Selector(env *Env) (swim.Selector, error) { return p.build(env) }

func (p *selectorPolicy) validateEnv(env *Env) error {
	_, err := p.build(env)
	return err
}

func (p *selectorPolicy) NewTrial(env *Env, r *rng.Source) (Trial, error) {
	sel, err := p.build(env)
	if err != nil {
		return nil, err
	}
	return &selectorTrial{order: sel.Order(r)}, nil
}

// selectorTrial spends budget by write-verifying along a fixed priority
// order, replicating swim.WriteVerifyToNWC (SpendTo) and the granule loop of
// swim.Algorithm1 (Step) exactly.
type selectorTrial struct {
	order    []int
	frontier int // weights advanced past by Step
}

func (t *selectorTrial) SpendTo(mp *mapping.Mapped, nwc float64, r *rng.Source) {
	swim.WriteVerifyToNWC(mp, t.order, nwc, r)
}

func (t *selectorTrial) Step(mp *mapping.Mapped, g float64, r *rng.Source) bool {
	n := len(t.order)
	end := t.frontier + granuleSize(g, n)
	if end > n {
		end = n
	}
	mp.WriteVerifyPrefix(t.order, end, r)
	t.frontier = end
	return end >= n
}

func (t *selectorTrial) progress() float64 {
	if len(t.order) == 0 {
		return 1
	}
	return float64(t.frontier) / float64(len(t.order))
}

// insituPolicy is the on-chip training baseline: unverified noisy writes,
// one cycle per weight per iteration, exactly swim.InSituToNWC's accounting.
type insituPolicy struct{}

func (insituPolicy) Name() string { return "insitu" }

func (insituPolicy) validateEnv(env *Env) error {
	if env.TrainX == nil || len(env.TrainY) == 0 {
		return errors.New("in-situ training needs a training set (use WithTraining)")
	}
	return nil
}

func (p insituPolicy) NewTrial(env *Env, r *rng.Source) (Trial, error) {
	if err := p.validateEnv(env); err != nil {
		return nil, err
	}
	return &insituTrial{x: env.TrainX, y: env.TrainY, cfg: env.InSitu}, nil
}

type insituTrial struct {
	x     *tensor.Tensor
	y     []int
	cfg   swim.InSituConfig
	start int // training-batch cursor, persisted across budget points
}

func (t *insituTrial) SpendTo(mp *mapping.Mapped, nwc float64, r *rng.Source) {
	budget := nwc * mp.BaselineCycles()
	for mp.CyclesUsed < budget {
		t.start = swim.InSituStep(mp, t.x, t.y, t.start, t.cfg, r)
	}
}

func (t *insituTrial) Step(mp *mapping.Mapped, g float64, r *rng.Source) bool {
	t.SpendTo(mp, mp.NWC()+g, r)
	return false // in-situ training never runs out of writes; cap with MaxNWC
}

// noverifyPolicy leaves every weight as the parallel programming pass landed
// it — the paper's NWC = 0 operating point as a first-class policy.
type noverifyPolicy struct{}

func (noverifyPolicy) Name() string { return "noverify" }

func (noverifyPolicy) NewTrial(*Env, *rng.Source) (Trial, error) { return noverifyTrial{}, nil }

type noverifyTrial struct{}

func (noverifyTrial) SpendTo(*mapping.Mapped, float64, *rng.Source) {}

func (noverifyTrial) Step(*mapping.Mapped, float64, *rng.Source) bool { return true }

func granuleSize(g float64, n int) int {
	size := int(math.Ceil(g * float64(n)))
	if size < 1 {
		size = 1
	}
	return size
}

func init() {
	MustRegister(SelectorPolicy("swim", func(env *Env) (swim.Selector, error) {
		if len(env.Hess) == 0 {
			return nil, errors.New("swim ranking needs sensitivities (use WithSensitivity or WithCalibration)")
		}
		if len(env.Hess) != len(env.Weights) {
			return nil, fmt.Errorf("sensitivity/weights length mismatch: %d vs %d", len(env.Hess), len(env.Weights))
		}
		return swim.NewSWIMSelector(env.Hess, env.Weights), nil
	}))
	MustRegister(SelectorPolicy("magnitude", func(env *Env) (swim.Selector, error) {
		if len(env.Weights) == 0 {
			return nil, errors.New("magnitude ranking needs weight magnitudes")
		}
		return swim.NewMagnitudeSelector(env.Weights), nil
	}))
	MustRegister(SelectorPolicy("random", func(env *Env) (swim.Selector, error) {
		return swim.NewRandomSelector(env.Net.NumMappedWeights()), nil
	}))
	MustRegister(insituPolicy{})
	MustRegister(noverifyPolicy{})
}
