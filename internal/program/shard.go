package program

// Trial-range sharding: a grid-budget run over trials [lo, hi) of the full
// (seed, trials) space, returned as raw per-trial observations instead of
// folded aggregates. Because every trial's RNG stream depends only on
// (seed, trials, trial index) and the engine's reduction is a singleton
// Welford merge in trial order, the rows of ANY partition of [0, trials) —
// computed on any mix of machines, in any order, at any worker counts —
// concatenate and fold back into the exact bits a single-node Run produces.
// This is the unit of work the distributed serving tier ships between a
// coordinator and its /v1/shards workers.

import (
	"context"
	"fmt"
	"sort"

	"swim/internal/cost"
	"swim/internal/mc"
	"swim/internal/nonideal"
	"swim/internal/stat"
)

// Shard is one trial range's partial grid-budget result: the raw per-trial
// series observations plus the run metadata needed to rebuild the full
// Result. Rows[t-Lo] holds trial t's values — accuracy at each target
// first, then NWC at each target, then raw write-verify cycles at each
// target (3×len(Targets) values). A Shard is the mergeable, serializable
// form of a partial fold: each row is a singleton's sufficient statistics,
// so MergeShards can replay the engine's trial-order reduction losslessly.
type Shard struct {
	// Policy is the registry name of the policy that produced the rows.
	Policy string
	// Targets is the cumulative NWC grid each trial walked.
	Targets []float64
	// Nonidealities are the configured read-time nonideality specs.
	Nonidealities []string
	// ReadTime is when accuracy was measured, seconds after programming.
	ReadTime float64
	// Trials is the FULL run's trial count (the stream-split space), not
	// the shard's share of it.
	Trials int
	// Lo and Hi bound the half-open trial range [Lo, Hi) this shard ran.
	Lo, Hi int
	// Rows are the per-trial observations in trial order (len Hi-Lo).
	Rows [][]float64
	// Cost is the canonical cost-model spec the run was configured with
	// (WithCostModel), empty when cost accounting is off. Carrying the spec
	// lets MergeShards rebuild the Cost report without re-deriving the
	// pipeline configuration.
	Cost string
	// Geom is the mapping geometry the cost report composes over; nil when
	// cost accounting is off.
	Geom *cost.Geometry
	// Calib is the canonical calibration-model spec the run was configured
	// with (WithCalibrationModel), empty when calibration is off. Shards of
	// one merge must agree on it — trials calibrated under different models
	// are observations of different experiments.
	Calib string
	// Probes is the probe-pass operation count calibration pricing composes
	// over; nil when calibration or cost accounting is off.
	Probes *cost.ProbeOps
}

// RunShard executes the pipeline's configured trial range (WithTrialRange;
// the full [0, trials) when none is set) and returns the raw per-trial
// observations. Grid budgets only — drop-budget traces are variable-length
// per trial and have no mergeable row form. A nil ctx falls back to
// WithContext, exactly like Run.
func (p *Pipeline) RunShard(ctx context.Context) (*Shard, error) {
	if ctx == nil {
		ctx = p.baseCtx
	}
	b, ok := p.budget.(NWCGrid)
	if !ok {
		return nil, fmt.Errorf("program: RunShard requires a grid budget, got %T", p.budget)
	}
	lo, hi := 0, p.trials
	if p.ranged {
		lo, hi = p.rangeLo, p.rangeHi
	}
	env := p.env // shallow copy: RunShard never mutates the Pipeline
	table, err := p.prepare(&env)
	if err != nil {
		return nil, err
	}
	points := len(b.Targets)
	gate, ps := p.wrapGate(hi - lo)
	rows, err := mc.RunSeriesShard(ctx, p.seed, p.trials, lo, hi, 3*points, p.workers, gate, p.gridTrial(&env, table, b))
	if err != nil {
		return nil, fmt.Errorf("program: policy %q: %w", p.policy.Name(), err)
	}
	ps.complete()
	sh := &Shard{
		Policy:        p.policy.Name(),
		Targets:       append([]float64(nil), b.Targets...),
		Nonidealities: nonideal.Names(p.nonideal),
		ReadTime:      p.readTime,
		Trials:        p.trials,
		Lo:            lo,
		Hi:            hi,
		Rows:          rows,
		Calib:         p.calibSpec(),
	}
	if p.costModel != nil {
		geom := costGeometry(env.Net, env.Device)
		sh.Cost, sh.Geom = p.costModel.Spec(), &geom
		sh.Probes = p.calibProbes(&env)
	}
	return sh, nil
}

// MergeShards folds a complete partition of [0, Trials) back into the
// Result a single-node Run of the same pipeline returns — bit for bit,
// because the rows are replayed through the engine's exact trial-order
// singleton reduction. Shards may arrive in any order; they must tile the
// trial space exactly (no gaps, no overlaps) and agree on every piece of
// run metadata.
func MergeShards(shards []*Shard) (*Result, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("program: no shards to merge")
	}
	sorted := append([]*Shard(nil), shards...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Lo < sorted[j].Lo })
	first := sorted[0]
	points := len(first.Targets)
	covered := 0
	for _, sh := range sorted {
		if err := compatibleShards(first, sh); err != nil {
			return nil, err
		}
		if sh.Lo != covered {
			return nil, fmt.Errorf("program: shard range [%d,%d) does not continue coverage at trial %d", sh.Lo, sh.Hi, covered)
		}
		if len(sh.Rows) != sh.Hi-sh.Lo {
			return nil, fmt.Errorf("program: shard [%d,%d) carries %d rows", sh.Lo, sh.Hi, len(sh.Rows))
		}
		covered = sh.Hi
	}
	if covered != first.Trials {
		return nil, fmt.Errorf("program: shards cover [0,%d) of %d trials", covered, first.Trials)
	}

	agg := make([]*stat.Welford, 3*points)
	for i := range agg {
		agg[i] = &stat.Welford{}
	}
	for _, sh := range sorted {
		for t, row := range sh.Rows {
			if len(row) != 3*points {
				return nil, fmt.Errorf("program: shard [%d,%d) row %d has %d values, want %d", sh.Lo, sh.Hi, t, len(row), 3*points)
			}
			for i, v := range row {
				agg[i].MergeObs(v)
			}
		}
	}
	res := &Result{
		Policy: first.Policy, Budget: GridBudget(first.Targets...), Trials: first.Trials,
		Nonidealities: append([]string(nil), first.Nonidealities...), ReadTime: first.ReadTime,
		Calibration: first.Calib,
	}
	for i, target := range first.Targets {
		res.Points = append(res.Points, Point{
			Target: target, Accuracy: agg[i], NWC: agg[points+i], Cycles: agg[2*points+i],
		})
	}
	if first.Cost != "" {
		m, err := cost.Parse(first.Cost)
		if err != nil {
			return nil, fmt.Errorf("program: shard cost model: %w", err)
		}
		if first.Geom == nil {
			return nil, fmt.Errorf("program: shard carries cost spec %q but no geometry", first.Cost)
		}
		applyCost(res, m, *first.Geom, first.Calib, first.Probes)
	}
	return res, nil
}

// compatibleShards reports whether two shards belong to the same run.
func compatibleShards(a, b *Shard) error {
	if a.Policy != b.Policy || a.Trials != b.Trials || a.ReadTime != b.ReadTime ||
		len(a.Targets) != len(b.Targets) || len(a.Nonidealities) != len(b.Nonidealities) {
		return fmt.Errorf("program: shards from different runs: (%s, %d trials) vs (%s, %d trials)",
			a.Policy, a.Trials, b.Policy, b.Trials)
	}
	if a.Cost != b.Cost {
		return fmt.Errorf("program: shards disagree on cost model: %q vs %q", a.Cost, b.Cost)
	}
	if (a.Geom == nil) != (b.Geom == nil) || (a.Geom != nil && *a.Geom != *b.Geom) {
		return fmt.Errorf("program: shards disagree on cost geometry")
	}
	if a.Calib != b.Calib {
		return fmt.Errorf("program: shards disagree on calibration model: %q vs %q", a.Calib, b.Calib)
	}
	if (a.Probes == nil) != (b.Probes == nil) || (a.Probes != nil && *a.Probes != *b.Probes) {
		return fmt.Errorf("program: shards disagree on calibration probe ops")
	}
	for i := range a.Targets {
		if a.Targets[i] != b.Targets[i] {
			return fmt.Errorf("program: shards disagree on target %d: %g vs %g", i, a.Targets[i], b.Targets[i])
		}
	}
	for i := range a.Nonidealities {
		if a.Nonidealities[i] != b.Nonidealities[i] {
			return fmt.Errorf("program: shards disagree on nonideality %d: %s vs %s", i, a.Nonidealities[i], b.Nonidealities[i])
		}
	}
	return nil
}
