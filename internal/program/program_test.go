package program

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"swim/internal/data"
	"swim/internal/device"
	"swim/internal/models"
	"swim/internal/nn"
	"swim/internal/rng"
	"swim/internal/swim"
	"swim/internal/train"
)

// testWorkload is a tiny trained LeNet shared by every test in the package
// (training dominates test time; the pipeline never mutates the master).
type testWorkload struct {
	net     *nn.Network
	ds      *data.Dataset
	hess    []float64
	weights []float64
	clean   float64
}

var (
	wlOnce sync.Once
	wl     testWorkload
)

func workload(t *testing.T) *testWorkload {
	t.Helper()
	wlOnce.Do(func() {
		ds := data.MNISTLike(300, 150, 1)
		r := rng.New(2)
		net := models.LeNet(10, 4, r)
		cfg := train.DefaultConfig()
		cfg.Epochs = 2
		cfg.QATBits = 4
		train.SGD(net, ds, cfg, r)
		cx, cy := data.Subset(ds.TrainX, ds.TrainY, 128)
		wl = testWorkload{
			net:     net,
			ds:      ds,
			hess:    swim.Sensitivity(net, cx, cy, 64),
			weights: swim.FlatWeights(net),
			clean:   train.Evaluate(net, ds.TestX, ds.TestY, 64),
		}
	})
	return &wl
}

func (w *testWorkload) options() []Option {
	return []Option{
		WithDevice(device.Default(4, 1.0)),
		WithEval(w.ds.TestX, w.ds.TestY),
		WithSensitivity(w.hess, w.weights),
		WithTraining(w.ds.TrainX, w.ds.TrainY),
	}
}

func mustLookup(t *testing.T, name string) Policy {
	t.Helper()
	p, err := Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// --- registry ---------------------------------------------------------------

func TestRegistryBuiltinsResolvable(t *testing.T) {
	for _, name := range []string{"swim", "magnitude", "random", "insitu", "noverify"} {
		p, err := Lookup(name)
		if err != nil {
			t.Fatalf("builtin %q: %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("builtin %q reports name %q", name, p.Name())
		}
	}
	names := Names()
	for _, want := range []string{"swim", "magnitude", "random", "insitu", "noverify"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("Names() = %v missing %q", names, want)
		}
	}
}

func TestRegistryUnknownName(t *testing.T) {
	_, err := Lookup("no-such-policy")
	if err == nil {
		t.Fatal("unknown policy resolved")
	}
	if !strings.Contains(err.Error(), "no-such-policy") || !strings.Contains(err.Error(), "swim") {
		t.Fatalf("error %q should name the miss and list registered policies", err)
	}
}

func TestRegistryDuplicateRegistration(t *testing.T) {
	p := SelectorPolicy("test-dup", func(env *Env) (swim.Selector, error) {
		return swim.NewMagnitudeSelector(env.Weights), nil
	})
	if err := Register(p); err != nil {
		t.Fatalf("first registration: %v", err)
	}
	if err := Register(p); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := Register(SelectorPolicy("swim", nil)); err == nil {
		t.Fatal("shadowing a builtin accepted")
	}
	if err := Register(nil); err == nil {
		t.Fatal("nil policy accepted")
	}
}

// --- option and budget validation -------------------------------------------

func TestOptionValidation(t *testing.T) {
	w := workload(t)
	pol := mustLookup(t, "swim")
	grid := GridBudget(0, 0.5)

	cases := []struct {
		name string
		opts []Option
	}{
		{"negative granularity", append(w.options(), WithGranularity(-0.1))},
		{"granularity above one", append(w.options(), WithGranularity(1.5))},
		{"nil calibration set", append(w.options(), WithCalibration(nil, nil))},
		{"empty calibration labels", append(w.options(), WithCalibration(w.ds.TrainX, nil))},
		{"zero workers", append(w.options(), WithWorkers(0))},
		{"negative workers", append(w.options(), WithWorkers(-4))},
		{"zero trials", append(w.options(), WithTrials(0))},
		{"zero eval batch", append(w.options(), WithEvalBatch(0))},
		{"nil eval set", []Option{WithDevice(device.Default(4, 1.0))}},
		{"no device", []Option{WithEval(w.ds.TestX, w.ds.TestY)}},
		{"nil context", append(w.options(), WithContext(nil))},
		{"nil worker gate", append(w.options(), WithWorkerGate(nil))},
		{"empty cycle table", append(w.options(), WithCycleTable(nil))},
		{"empty sensitivity", append(w.options(), WithSensitivity(nil, nil))},
	}
	for _, tc := range cases {
		if _, err := New(w.net, pol, grid, tc.opts...); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}

	if _, err := New(nil, pol, grid, w.options()...); err == nil {
		t.Error("nil network accepted")
	}
	if _, err := New(w.net, nil, grid, w.options()...); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := New(w.net, pol, nil, w.options()...); err == nil {
		t.Error("nil budget accepted")
	}
}

func TestBudgetValidation(t *testing.T) {
	w := workload(t)
	pol := mustLookup(t, "swim")
	for name, b := range map[string]Budget{
		"empty grid":      GridBudget(),
		"negative target": GridBudget(-0.1),
		"decreasing grid": GridBudget(0.5, 0.1),
		"negative MaxNWC": DropTarget{BaseAccuracy: 90, MaxDrop: 1, MaxNWC: -1},
	} {
		if _, err := New(w.net, pol, b, w.options()...); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRunSurfacesPolicyMisconfiguration(t *testing.T) {
	w := workload(t)
	// swim without sensitivities (no WithSensitivity, no WithCalibration)
	// must fail in Run with a descriptive error, not panic in a worker.
	p, err := New(w.net, mustLookup(t, "swim"), GridBudget(0.1),
		WithDevice(device.Default(4, 1.0)),
		WithEval(w.ds.TestX, w.ds.TestY),
		WithTrials(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(context.Background()); err == nil ||
		!strings.Contains(err.Error(), "sensitivities") {
		t.Fatalf("missing-sensitivity run error = %v", err)
	}

	// insitu without a training set likewise.
	p, err = New(w.net, mustLookup(t, "insitu"), GridBudget(0.1),
		WithDevice(device.Default(4, 1.0)),
		WithEval(w.ds.TestX, w.ds.TestY),
		WithTrials(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(context.Background()); err == nil ||
		!strings.Contains(err.Error(), "training set") {
		t.Fatalf("missing-training run error = %v", err)
	}
}

// --- budget-exhaustion sentinel ---------------------------------------------

func TestErrBudgetExhausted(t *testing.T) {
	w := workload(t)
	// An unreachable drop target (no accuracy can be within -1000 pp of
	// 200%) exhausts the order in every trial.
	p, err := New(w.net, mustLookup(t, "swim"), DropBudget(200, -1000),
		append(w.options(), WithGranularity(0.5), WithTrials(2), WithSeed(3))...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(context.Background())
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted via errors.Is", err)
	}
	if res == nil || res.Achieved != 0 {
		t.Fatalf("exhausted run should still return the Result (achieved=%v)", res)
	}
	if len(res.Trace) < 2 {
		t.Fatalf("exhausted run recorded %d trace steps", len(res.Trace))
	}
	last := res.Trace[len(res.Trace)-1]
	if last.FractionVerified != 1 {
		t.Fatalf("order not fully spent: fraction %v", last.FractionVerified)
	}
}

// --- calibration path and eval batch ----------------------------------------

func TestCalibrationComputesSensitivities(t *testing.T) {
	w := workload(t)
	cx, cy := data.Subset(w.ds.TrainX, w.ds.TrainY, 128)
	// Pipeline computes hess itself from the calibration split with the
	// configured eval batch; with the same split and batch as the cached
	// workload, results must match the injected-sensitivity run exactly.
	run := func(opts ...Option) *Result {
		p, err := New(w.net, mustLookup(t, "swim"), GridBudget(0, 0.2),
			append(opts,
				WithDevice(device.Default(4, 1.0)),
				WithEval(w.ds.TestX, w.ds.TestY),
				WithSeed(5), WithTrials(2))...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	calibrated := run(WithCalibration(cx, cy), WithEvalBatch(64))
	injected := run(WithSensitivity(w.hess, w.weights))
	for i := range injected.Points {
		if calibrated.Points[i].Accuracy.Mean() != injected.Points[i].Accuracy.Mean() {
			t.Fatalf("point %d: calibrated %.6f != injected %.6f", i,
				calibrated.Points[i].Accuracy.Mean(), injected.Points[i].Accuracy.Mean())
		}
	}
}

// --- selector seed split ----------------------------------------------------

func TestSelectorSeedSplitSharesDeviceNoise(t *testing.T) {
	w := workload(t)
	// With the split, policies differing only in selector see identical
	// device instances: at NWC = 0 (nothing verified yet) the "random"
	// policy — which consumes trial randomness for its order — must match
	// "noverify" exactly. Without the split it drifts.
	at0 := func(policy string, split bool) float64 {
		opts := append(w.options(), WithSeed(9), WithTrials(3))
		if split {
			opts = append(opts, WithSelectorSeedSplit())
		}
		p, err := New(w.net, mustLookup(t, policy), GridBudget(0), opts...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res.Points[0].Accuracy.Mean()
	}
	if got, want := at0("random", true), at0("noverify", true); got != want {
		t.Fatalf("with seed split, random (%.6f) and noverify (%.6f) saw different devices", got, want)
	}
}
