package program

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

var (
	regMu    sync.RWMutex
	registry = map[string]Policy{}
)

// Register adds a policy to the registry under its Name. Registering a name
// twice is an error: silently replacing a policy would make experiment
// results depend on package-initialization order.
func Register(p Policy) error {
	if p == nil {
		return fmt.Errorf("program: register nil policy")
	}
	name := p.Name()
	if name == "" {
		return fmt.Errorf("program: register policy with empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("program: policy %q already registered", name)
	}
	registry[name] = p
	return nil
}

// MustRegister is Register for package-init use; it panics on error.
func MustRegister(p Policy) {
	if err := Register(p); err != nil {
		panic(err)
	}
}

// Lookup resolves a policy by name. Unknown names return an error listing
// what is registered, so a mistyped -policy flag reads as a usage hint.
func Lookup(name string) (Policy, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	p, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("program: unknown policy %q (registered: %v)", name, namesLocked())
	}
	return p, nil
}

// ResolveNames parses a comma-separated policy list (the CLIs' -policies
// flag), validating every trimmed name through the registry. It returns the
// cleaned names in input order; an empty input yields nil.
func ResolveNames(csv string) ([]string, error) {
	if strings.TrimSpace(csv) == "" {
		return nil, nil
	}
	var out []string
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		if _, err := Lookup(name); err != nil {
			return nil, err
		}
		out = append(out, name)
	}
	return out, nil
}

// Names returns the registered policy names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
