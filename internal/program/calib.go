package program

// Closed-loop calibration threading: an optional calib.Model threaded
// through the pipeline mints one per-trial calibration instance alongside
// the nonideality instance, so every accuracy measurement sees the digitally
// corrected read-out (mapping.SetCalibration). The probe reads the fit spends
// are priced through the cost tier (cost.ProbeOps) so calibrated frontiers
// compare total energy, and the "swim+calib" policy ranks its write-verify
// budget by the residual error calibration cannot absorb.

import (
	"errors"
	"sort"

	"swim/internal/calib"
	"swim/internal/cost"
	"swim/internal/crossbar"
	"swim/internal/device"
	"swim/internal/eval"
	"swim/internal/mapping"
	"swim/internal/nn"
	"swim/internal/rng"
	"swim/internal/swim"
)

// WithCalibrationModel attaches a calibration model (package calib): every
// trial mints its own deterministic instance from the trial stream and every
// accuracy measurement observes the digitally corrected read-out — the
// model's per-column or per-tile affine fit, applied after nonideality
// degradation. The canonical spec is recorded in the Result, and with
// WithCostModel the probe-read budget is priced into the cost report
// (Report.Calibration). Calibration is bit-identical at any worker count and
// across trial-range shards: the fit's probe choices derive from the trial
// key by hashing, never from shared stream state.
func WithCalibrationModel(m calib.Model) Option {
	return func(p *Pipeline) error {
		if err := m.Validate(); err != nil {
			return err
		}
		p.calibModel = &m
		return nil
	}
}

// calibSpec returns the canonical calibration spec the pipeline was
// configured with, "" when calibration is off.
func (p *Pipeline) calibSpec() string {
	if p.calibModel == nil {
		return ""
	}
	return p.calibModel.Spec()
}

// calibProbeOps derives the operation counts of one calibration probe pass
// over the network's mapped matrices on the device's default crossbar
// configuration: per matrix, min(budget, inputs) one-hot probes, each
// driving one word line and reading the full output column range of its tile
// band. Deterministic in (network topology, device model, probe budget) —
// shard workers and the coordinator derive identical values.
func calibProbeOps(net *nn.Network, dev device.Model, probes int) cost.ProbeOps {
	cfg := crossbar.DefaultConfig(dev)
	var ops cost.ProbeOps
	for _, op := range eval.MatVecOps(net) {
		p := probes
		if op.In < p {
			p = op.In
		}
		outTiles := (op.Out + cfg.TileCols - 1) / cfg.TileCols
		ops.MatVecs += p * outTiles
		ops.DACs += p
		ops.ADCs += p * op.Out
	}
	return ops
}

// calibProbes returns the run's probe-pass pricing input, nil when
// calibration (or cost accounting) is off.
func (p *Pipeline) calibProbes(env *Env) *cost.ProbeOps {
	if p.calibModel == nil {
		return nil
	}
	ops := calibProbeOps(env.Net, env.Device, p.calibModel.Probes())
	return &ops
}

// residualPolicy is the compensation-aware "swim+calib" policy: it ranks
// weights by the sensitivity-weighted square of the RESIDUAL error — the
// deviation left after the active calibration (and nonideality) stage, read
// from the mapped state right before the first budget is spent — so the
// write-verify budget concentrates on the error the digital correction
// cannot absorb. Without a calibration model it degrades gracefully to
// ranking by the raw read-out error, and with neither calibration nor
// nonideality its residual is the programming noise itself.
type residualPolicy struct{}

func (residualPolicy) Name() string { return "swim+calib" }

func (residualPolicy) validateEnv(env *Env) error {
	if len(env.Hess) == 0 {
		return errors.New("swim+calib ranking needs sensitivities (use WithSensitivity or WithCalibration)")
	}
	return nil
}

func (p residualPolicy) NewTrial(env *Env, r *rng.Source) (Trial, error) {
	if err := p.validateEnv(env); err != nil {
		return nil, err
	}
	return &residualTrial{hess: env.Hess}, nil
}

// residualTrial defers its ranking to the first SpendTo/Step call, when the
// trial's device state (and fitted correction) exists: the order is the
// estimated loss impact hess[i]·residual[i]² descending, index-ascending on
// ties. Computing it consumes no randomness — the residual read-out is
// deterministic given the trial's programmed state — so the policy's stream
// consumption matches the other selector policies under
// WithSelectorSeedSplit-free operation.
type residualTrial struct {
	hess     []float64
	order    []int
	frontier int
}

func (t *residualTrial) ensureOrder(mp *mapping.Mapped) {
	if t.order != nil {
		return
	}
	mp.SyncRead()
	res := mp.ProgrammedError()
	n := len(res)
	if len(t.hess) != n {
		panic("program: swim+calib sensitivity length mismatch")
	}
	score := make([]float64, n)
	for i, e := range res {
		score[i] = t.hess[i] * e * e
	}
	t.order = make([]int, n)
	for i := range t.order {
		t.order[i] = i
	}
	sort.SliceStable(t.order, func(a, b int) bool {
		return score[t.order[a]] > score[t.order[b]]
	})
}

func (t *residualTrial) SpendTo(mp *mapping.Mapped, nwc float64, r *rng.Source) {
	t.ensureOrder(mp)
	swim.WriteVerifyToNWC(mp, t.order, nwc, r)
}

func (t *residualTrial) Step(mp *mapping.Mapped, g float64, r *rng.Source) bool {
	t.ensureOrder(mp)
	n := len(t.order)
	end := t.frontier + granuleSize(g, n)
	if end > n {
		end = n
	}
	mp.WriteVerifyPrefix(t.order, end, r)
	t.frontier = end
	return end >= n
}

func (t *residualTrial) progress() float64 {
	if len(t.order) == 0 {
		return 1
	}
	return float64(t.frontier) / float64(len(t.order))
}

func init() {
	MustRegister(residualPolicy{})
}
