// Package program is the unified pipeline API for the paper's core loop:
// sensitivity → selection → write-verify programming → on-device evaluation.
//
// It replaces the per-experiment glue that used to stitch the swim
// primitives (swim.Algorithm1, swim.WriteVerifyToNWC, swim.InSituToNWC)
// together by hand. The API has three small pieces:
//
//   - Policy — a named programming strategy (how the write budget is spent).
//     The built-ins "swim", "magnitude", "random", "insitu" and "noverify"
//     are registered in a string registry (Register / Lookup), so new device
//     models and selectors plug in by name; SelectorPolicy adapts any
//     swim.Selector into a Policy.
//
//   - Budget — what "enough programming" means, as a value rather than a
//     separate function entry point: GridBudget fixes a (cumulative) grid of
//     normalized-write-cycle targets, DropBudget fixes a maximum acceptable
//     accuracy drop (the paper's Algorithm 1 stopping rule).
//
//   - Pipeline — built with functional options (WithDevice, WithEval,
//     WithCalibration, WithGranularity, WithWorkers, ...) whose single
//     Run(ctx) drives the parallel Monte-Carlo engine (package mc) and
//     returns a structured Result: per-point accuracy mean/std via
//     stat.Welford, NWC spent, the per-granule accuracy trace, and the
//     policy name.
//
// # Determinism
//
// Run is bit-for-bit reproducible in (seed, trials) and independent of the
// worker count, because every trial owns a pre-split RNG stream and the
// aggregation order is fixed (see package mc). The per-trial stream is
// consumed in exactly the order the legacy free-function glue consumed it —
// selector order first, then device programming, then budget spending — so
// for a fixed seed the pipeline reproduces swim.Algorithm1,
// swim.WriteVerifyToNWC and swim.InSituToNWC results bit-for-bit
// (equivalence_test.go pins this).
//
// # Migration from the swim.* entry points
//
//	swim.WriteVerifyToNWC(mp, sel.Order(r), nwc, r)   →  GridBudget(nwc...)
//	swim.Algorithm1(mp, sel, p, base, drop, ...)      →  DropBudget(base, drop) + WithGranularity(p)
//	swim.InSituToNWC(mp, x, y, nwc, cfg, r)           →  Lookup("insitu") + GridBudget(nwc...)
//
// The swim primitives remain available for single-instance, caller-managed
// use; the pipeline is the supported entry point for experiments.
package program

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"swim/internal/calib"
	"swim/internal/cost"
	"swim/internal/device"
	"swim/internal/kernel"
	"swim/internal/mapping"
	"swim/internal/mc"
	"swim/internal/nn"
	"swim/internal/nonideal"
	"swim/internal/rng"
	"swim/internal/stat"
	"swim/internal/swim"
	"swim/internal/tensor"
)

// ErrBudgetExhausted reports that a drop-budget run spent everything a
// policy had to offer (or hit its MaxNWC cap) without any trial reaching the
// accuracy target. The Result returned alongside it is still valid; test
// with errors.Is.
var ErrBudgetExhausted = errors.New("program: budget exhausted before the accuracy target was met")

// Pipeline is a configured programming/evaluation run. Build one with New
// and the With... functional options, then call Run. A Pipeline is immutable
// after New and safe to Run multiple times (each Run re-derives everything
// from the seed).
type Pipeline struct {
	policy Policy
	budget Budget
	env    Env

	evalX     *tensor.Tensor
	evalY     []int
	evalBatch int
	calX      *tensor.Tensor
	calY      []int

	granularity   float64
	seed          uint64
	trials        int
	rangeLo       int
	rangeHi       int
	ranged        bool
	workers       int
	gate          mc.Gate
	progress      ProgressFunc
	cycleTable    []float64
	spatial       *device.SpatialConfig
	nonideal      []nonideal.Nonideality
	readTime      float64
	selectorSplit bool
	costModel     *cost.Model
	calibModel    *calib.Model
	kern          kernel.Backend
	baseCtx       context.Context

	deviceSet bool

	// arenas pools the compiled-evaluation scratch arenas: each trial
	// borrows one for the duration of its accuracy measurements, so the
	// steady state is one arena per Monte-Carlo worker and trial N+1 reuses
	// the memory trial N grew (see package eval).
	arenas sync.Pool
}

// Option configures a Pipeline. Options validate eagerly: New returns the
// first option error instead of deferring misconfiguration into a worker.
type Option func(*Pipeline) error

// WithDevice sets the device/programming model (required).
func WithDevice(m device.Model) Option {
	return func(p *Pipeline) error {
		p.env.Device = m
		p.deviceSet = true
		return nil
	}
}

// WithKernelBackend selects the kernel backend executing the dense forward
// primitives (matmul, fused bias+matmul, convolution) of every compiled
// evaluation plan the pipeline's trials run. All registered backends are
// bit-identical to the scalar default, so this is purely a throughput knob:
// accuracy bits, Monte-Carlo streams and cache keys are unchanged. nil
// restores the default.
func WithKernelBackend(k kernel.Backend) Option {
	return func(p *Pipeline) error {
		p.kern = k
		return nil
	}
}

// WithEval sets the evaluation split accuracy is measured on (required).
func WithEval(x *tensor.Tensor, y []int) Option {
	return func(p *Pipeline) error {
		if x == nil || len(y) == 0 {
			return errors.New("nil or empty evaluation set")
		}
		if x.Shape[0] != len(y) {
			return fmt.Errorf("evaluation set mismatch: %d samples vs %d labels", x.Shape[0], len(y))
		}
		p.evalX, p.evalY = x, y
		return nil
	}
}

// WithEvalBatch sets the batch size used for every accuracy measurement
// (and for the calibration sensitivity pass). Default 64.
func WithEvalBatch(n int) Option {
	return func(p *Pipeline) error {
		if n < 1 {
			return fmt.Errorf("evaluation batch must be positive, got %d", n)
		}
		p.evalBatch = n
		return nil
	}
}

// WithCalibration sets the calibration split the pipeline computes
// second-derivative sensitivities from (one forward + one second-derivative
// backward pass) when none are injected via WithSensitivity. Policies that
// rank by sensitivity ("swim") need one or the other.
func WithCalibration(x *tensor.Tensor, y []int) Option {
	return func(p *Pipeline) error {
		if x == nil || len(y) == 0 {
			return errors.New("nil or empty calibration set")
		}
		if x.Shape[0] != len(y) {
			return fmt.Errorf("calibration set mismatch: %d samples vs %d labels", x.Shape[0], len(y))
		}
		p.calX, p.calY = x, y
		return nil
	}
}

// WithSensitivity injects precomputed Hessian-diagonal sensitivities (and
// optionally weight magnitudes; nil recomputes them from the network),
// skipping the calibration pass. Workload caches use this to share one
// sensitivity computation across many runs.
func WithSensitivity(hess, weights []float64) Option {
	return func(p *Pipeline) error {
		if len(hess) == 0 {
			return errors.New("empty sensitivity vector")
		}
		if weights != nil && len(weights) != len(hess) {
			return fmt.Errorf("sensitivity/weights length mismatch: %d vs %d", len(hess), len(weights))
		}
		p.env.Hess, p.env.Weights = hess, weights
		return nil
	}
}

// WithTraining sets the training split in-situ policies iterate on.
func WithTraining(x *tensor.Tensor, y []int) Option {
	return func(p *Pipeline) error {
		if x == nil || len(y) == 0 {
			return errors.New("nil or empty training set")
		}
		if x.Shape[0] != len(y) {
			return fmt.Errorf("training set mismatch: %d samples vs %d labels", x.Shape[0], len(y))
		}
		p.env.TrainX, p.env.TrainY = x, y
		return nil
	}
}

// WithInSitu overrides the in-situ training configuration (default
// swim.DefaultInSitu).
func WithInSitu(cfg swim.InSituConfig) Option {
	return func(p *Pipeline) error {
		if cfg.LR <= 0 || cfg.Batch < 1 {
			return fmt.Errorf("invalid in-situ config: lr=%g batch=%d", cfg.LR, cfg.Batch)
		}
		p.env.InSitu = cfg
		return nil
	}
}

// WithGranularity sets the Algorithm-1 granule size p ∈ (0, 1] used by
// drop-budget runs (the paper uses 5%). Default 0.05.
func WithGranularity(g float64) Option {
	return func(p *Pipeline) error {
		if g <= 0 || g > 1 {
			return fmt.Errorf("granularity must be in (0, 1], got %g", g)
		}
		p.granularity = g
		return nil
	}
}

// WithSeed sets the Monte-Carlo master seed. Default 1.
func WithSeed(seed uint64) Option {
	return func(p *Pipeline) error {
		p.seed = seed
		return nil
	}
}

// WithTrials sets the Monte-Carlo trial count. Default mc.Trials(8), i.e. 8
// unless the SWIM_MC environment variable overrides it.
func WithTrials(n int) Option {
	return func(p *Pipeline) error {
		if n < 1 {
			return fmt.Errorf("trial count must be positive, got %d", n)
		}
		p.trials = n
		return nil
	}
}

// WithTrialRange restricts execution to the trial range [lo, hi) of the
// full WithTrials space — the distributed-sharding entry point. Trial
// streams depend only on (seed, trials, trial index), so a range's results
// are the same bits whether it runs alone on a remote worker or as part of
// a full local run. Run then returns a Result whose aggregates fold only
// the range's trials; RunShard returns the raw mergeable observations
// (MergeShards folds a complete partition back into the full-run Result,
// bit for bit). Grid budgets only; New rejects a range outside
// [0, trials).
func WithTrialRange(lo, hi int) Option {
	return func(p *Pipeline) error {
		if lo < 0 || hi <= lo {
			return fmt.Errorf("trial range [%d,%d) is empty or negative", lo, hi)
		}
		p.rangeLo, p.rangeHi, p.ranged = lo, hi, true
		return nil
	}
}

// WithWorkers pins the worker-goroutine count for this pipeline. Results are
// bit-identical for every worker count; without this option the mc default
// (SWIM_WORKERS / runtime.NumCPU) applies.
func WithWorkers(n int) Option {
	return func(p *Pipeline) error {
		if n < 1 {
			return fmt.Errorf("worker count must be positive, got %d (omit the option for the default)", n)
		}
		p.workers = n
		return nil
	}
}

// WithWorkerGate attaches a cooperative worker cap (mc.Gate) to the run:
// WithWorkers (or the mc default) remains the ceiling, but between trials
// only Gate.Limit() workers stay active. A serving layer hands each
// concurrent job a fair-share gate so jobs split the machine instead of each
// claiming every CPU. Results are bit-identical with or without a gate.
func WithWorkerGate(g mc.Gate) Option {
	return func(p *Pipeline) error {
		if g == nil {
			return errors.New("nil worker gate")
		}
		p.gate = g
		return nil
	}
}

// WithContext sets the context used when Run is called with a nil context.
func WithContext(ctx context.Context) Option {
	return func(p *Pipeline) error {
		if ctx == nil {
			return errors.New("nil context")
		}
		p.baseCtx = ctx
		return nil
	}
}

// WithCycleTable injects a precomputed expected-write-cycles-per-magnitude
// table (device.Model.CycleTable). Without it the pipeline derives one from
// the seed, so runs sharing a table across policies must pass it explicitly.
func WithCycleTable(table []float64) Option {
	return func(p *Pipeline) error {
		if len(table) == 0 {
			return errors.New("empty cycle table")
		}
		p.cycleTable = table
		return nil
	}
}

// WithSpatial adds a per-trial spatial variation field (the §2.1 extension):
// after the parallel programming pass, every trial draws a fresh correlated
// field and re-programs under temporal + spatial error.
func WithSpatial(cfg device.SpatialConfig) Option {
	return func(p *Pipeline) error {
		if cfg.Rows < 1 || cfg.Cols < 1 {
			return fmt.Errorf("invalid spatial field geometry %dx%d", cfg.Rows, cfg.Cols)
		}
		p.spatial = &cfg
		return nil
	}
}

// WithNonidealities applies a stack of read-time device-nonideality models
// (package nonideal: drift, retention, stuck-at faults, ...): every trial
// mints its own deterministic instance from the trial stream and every
// accuracy measurement observes the degraded device state at the configured
// read time (WithReadTime) instead of the ideal time-0 conductances.
// Write-verify still corrects the true (time-0) device state; every device
// then degrades for the full read time, verified or not, so a verified
// weight's advantage under degradation is the smaller programming error it
// starts from — the interaction scenario sweeps study. Models apply in the
// given order. The configured specs are recorded in the Result.
func WithNonidealities(models ...nonideal.Nonideality) Option {
	return func(p *Pipeline) error {
		for i, n := range models {
			if n == nil {
				return fmt.Errorf("nil nonideality at position %d", i)
			}
		}
		p.nonideal = append(p.nonideal, models...)
		return nil
	}
}

// WithReadTime sets when accuracy is measured, in seconds after the
// programming pass — the time axis nonideality models degrade along.
// Without WithNonidealities it has no effect. Default 0 (read immediately
// after programming).
func WithReadTime(seconds float64) Option {
	return func(p *Pipeline) error {
		if seconds < 0 || math.IsNaN(seconds) {
			return fmt.Errorf("read time must be non-negative, got %g", seconds)
		}
		p.readTime = seconds
		return nil
	}
}

// WithSelectorSeedSplit draws each trial's selector order from a dedicated
// child stream split off the trial stream, instead of the trial stream
// itself. The device-programming noise then no longer depends on how much
// randomness the selector consumed, so policies differing only in selector
// see identical device instances (common random numbers across policies).
// Off by default: the default consumption order is bit-compatible with the
// legacy swim.* glue.
func WithSelectorSeedSplit() Option {
	return func(p *Pipeline) error {
		p.selectorSplit = true
		return nil
	}
}

// New validates the configuration and returns a runnable Pipeline. master is
// the trained network to program (never mutated: every trial clones it).
func New(master *nn.Network, pol Policy, b Budget, opts ...Option) (*Pipeline, error) {
	if master == nil {
		return nil, errors.New("program: nil network")
	}
	if pol == nil {
		return nil, errors.New("program: nil policy")
	}
	if b == nil {
		return nil, errors.New("program: nil budget")
	}
	p := &Pipeline{
		policy:      pol,
		budget:      b,
		evalBatch:   64,
		granularity: 0.05,
		seed:        1,
		trials:      mc.Trials(8),
		baseCtx:     context.Background(),
	}
	p.env.Net = master
	p.env.InSitu = swim.DefaultInSitu()
	for _, o := range opts {
		if err := o(p); err != nil {
			return nil, fmt.Errorf("program: %w", err)
		}
	}
	if !p.deviceSet {
		return nil, errors.New("program: no device model (use WithDevice)")
	}
	if err := p.env.Device.Validate(); err != nil {
		return nil, fmt.Errorf("program: invalid device model: %w", err)
	}
	if p.evalX == nil {
		return nil, errors.New("program: no evaluation set (use WithEval)")
	}
	if err := b.validate(); err != nil {
		return nil, fmt.Errorf("program: %w", err)
	}
	if p.ranged {
		if p.rangeHi > p.trials {
			return nil, fmt.Errorf("program: trial range [%d,%d) outside [0,%d)", p.rangeLo, p.rangeHi, p.trials)
		}
		if _, ok := b.(NWCGrid); !ok {
			return nil, fmt.Errorf("program: trial ranges require a grid budget, got %T", b)
		}
	}
	return p, nil
}

// Run executes the configured Monte-Carlo programming run. A nil ctx falls
// back to WithContext (default context.Background). The returned Result is
// valid even when err is ErrBudgetExhausted (drop budgets only); any other
// error leaves the Result nil.
func (p *Pipeline) Run(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = p.baseCtx
	}
	env := p.env // shallow copy: Run never mutates the Pipeline
	table, err := p.prepare(&env)
	if err != nil {
		return nil, err
	}
	switch b := p.budget.(type) {
	case NWCGrid:
		return p.runGrid(ctx, &env, table, b)
	case DropTarget:
		return p.runDrop(ctx, &env, table, b)
	}
	return nil, fmt.Errorf("program: unsupported budget type %T", p.budget)
}

// prepare derives the run environment shared by Run and RunShard: fill in
// weights/sensitivities, preflight the policy, and resolve the cycle table.
// Everything here is deterministic in the pipeline's configuration, so the
// full run and every trial-range shard of it derive identical state.
func (p *Pipeline) prepare(env *Env) ([]float64, error) {
	if env.Weights == nil {
		env.Weights = swim.FlatWeights(env.Net)
	}
	if env.Hess == nil && p.calX != nil {
		// Sensitivity mutates the network's Hessian buffers, so run it on a
		// clone; the values are deterministic in (weights, calibration set).
		env.Hess = swim.Sensitivity(env.Net.Clone(), p.calX, p.calY, p.evalBatch)
	}
	// Preflight the policy against the environment so a misconfiguration
	// (missing sensitivities, missing training data) surfaces here as a
	// typed error rather than as a wrapped panic from inside a worker.
	// Policies implementing envValidator are checked without paying for a
	// throwaway trial (the built-ins all do); others mint and discard one.
	if v, ok := p.policy.(envValidator); ok {
		if err := v.validateEnv(env); err != nil {
			return nil, fmt.Errorf("program: policy %q: %w", p.policy.Name(), err)
		}
	} else if _, err := p.policy.NewTrial(env, rng.New(p.seed^0x9a11e7)); err != nil {
		return nil, fmt.Errorf("program: policy %q: %w", p.policy.Name(), err)
	}
	table := p.cycleTable
	if table == nil {
		table = env.Device.CycleTable(300, rng.New(p.seed^0x5eed))
	}
	return table, nil
}

// setupTrial builds one Monte-Carlo trial: the policy's per-trial state
// (selector order) first, then the programmed device instance — exactly the
// stream-consumption order of the legacy experiment glue, which the
// bit-for-bit equivalence guarantee depends on. Errors panic; the mc engine
// converts worker panics into run errors, and Run preflights the policy so
// the only reachable panics are programming bugs.
//
// The trial's accuracy evaluations run through a compiled plan backed by a
// pooled scratch arena; release returns the arena to the pool and must be
// called when the trial body finishes.
func (p *Pipeline) setupTrial(env *Env, table []float64, r *rng.Source) (mp *mapping.Mapped, trial Trial, release func()) {
	selR := r
	if p.selectorSplit {
		selR = r.Split()
	}
	trial, err := p.policy.NewTrial(env, selR)
	if err != nil {
		panic(err)
	}
	mp, err = mapping.New(env.Net, env.Device, table, r)
	if err != nil {
		panic(err)
	}
	if p.spatial != nil {
		mp.ProgramAllSpatial(r, device.NewSpatialField(*p.spatial, r))
	}
	if len(p.nonideal) > 0 {
		// One split keeps the trial stream's consumption fixed no matter
		// how many models are stacked, so adding a nonideality never shifts
		// the device-programming randomness of a later trial phase.
		mp.SetNonideal(nonideal.NewTrials(p.nonideal, env.Device, r.Split()), p.readTime)
	}
	if p.calibModel != nil {
		// The calibration split comes after the nonideality split and is
		// consumed only when a model is configured, so calibration-off runs
		// keep the legacy trial-stream consumption bit for bit.
		mp.SetCalibration(p.calibModel.NewTrial(r.Split()))
	}
	arena, _ := p.arenas.Get().(*tensor.Arena)
	if arena == nil {
		arena = tensor.NewArena()
	}
	mp.SetEvalArena(arena)
	if p.kern != nil {
		mp.SetKernel(p.kern)
	}
	return mp, trial, func() { p.arenas.Put(arena) }
}

// gridTrial returns the per-trial body of a grid-budget run: walk the
// cumulative NWC targets on one device instance and report accuracy, NWC
// and raw write-verify cycles per target — the paper's Table 1 / Fig. 2
// protocol plus the cycle counts cost accounting is derived from. Shared by
// the full run and the trial-range shard path so both execute identical
// bits.
func (p *Pipeline) gridTrial(env *Env, table []float64, b NWCGrid) func(r *rng.Source) []float64 {
	points := len(b.Targets)
	return func(r *rng.Source) []float64 {
		out := make([]float64, 3*points)
		mp, trial, release := p.setupTrial(env, table, r)
		defer release()
		for i, nwc := range b.Targets {
			trial.SpendTo(mp, nwc, r)
			out[i] = mp.Accuracy(p.evalX, p.evalY, p.evalBatch)
			out[points+i] = mp.NWC()
			out[2*points+i] = mp.CyclesUsed
		}
		return out
	}
}

// runGrid walks the cumulative NWC grid on one device instance per trial.
// With a trial range configured it executes (and folds) only that range.
func (p *Pipeline) runGrid(ctx context.Context, env *Env, table []float64, b NWCGrid) (*Result, error) {
	points := len(b.Targets)
	var agg []*stat.Welford
	var err error
	trials := p.trials
	if p.ranged {
		trials = p.rangeHi - p.rangeLo
	}
	gate, ps := p.wrapGate(trials)
	if p.ranged {
		var rows [][]float64
		rows, err = mc.RunSeriesShard(ctx, p.seed, p.trials, p.rangeLo, p.rangeHi, 3*points, p.workers, gate, p.gridTrial(env, table, b))
		if err == nil {
			agg, err = mc.FoldSeriesRows(3*points, rows)
		}
	} else {
		agg, err = mc.RunSeriesGate(ctx, p.seed, p.trials, 3*points, p.workers, gate, p.gridTrial(env, table, b))
	}
	if err != nil {
		return nil, fmt.Errorf("program: policy %q: %w", p.policy.Name(), err)
	}
	ps.complete()
	res := &Result{
		Policy: p.policy.Name(), Budget: p.budget, Trials: trials,
		Nonidealities: nonideal.Names(p.nonideal), ReadTime: p.readTime,
		Calibration: p.calibSpec(),
	}
	for i, target := range b.Targets {
		res.Points = append(res.Points, Point{
			Target: target, Accuracy: agg[i], NWC: agg[points+i], Cycles: agg[2*points+i],
		})
	}
	if p.costModel != nil {
		applyCost(res, *p.costModel, costGeometry(env.Net, env.Device), p.calibSpec(), p.calibProbes(env))
	}
	return res, nil
}

// dropOut is one trial's outcome under a drop budget.
type dropOut struct {
	accs     []float64 // accuracy after each granule, including step 0
	nwcs     []float64 // NWC after each granule
	fracs    []float64 // fraction of the priority order verified
	achieved bool
}

// runDrop runs the paper's Algorithm 1 under the configured policy: verify
// one granule at a time, re-evaluating after each, until the accuracy drop
// from the budget's base is within MaxDrop, the policy is exhausted, or the
// MaxNWC cap is hit.
func (p *Pipeline) runDrop(ctx context.Context, env *Env, table []float64, b DropTarget) (*Result, error) {
	gate, ps := p.wrapGate(p.trials)
	outs, err := mc.MapGate(ctx, p.seed, p.trials, p.workers, gate, func(_ int, r *rng.Source) dropOut {
		mp, trial, release := p.setupTrial(env, table, r)
		defer release()
		n := mp.TotalWeights()
		granule := granuleSize(p.granularity, n)
		var o dropOut
		record := func(frac float64) float64 {
			acc := mp.Accuracy(p.evalX, p.evalY, p.evalBatch)
			o.accs = append(o.accs, acc)
			o.nwcs = append(o.nwcs, mp.NWC())
			o.fracs = append(o.fracs, frac)
			return acc
		}
		// FractionVerified mirrors Algorithm 1's bookkeeping over the full
		// weight count; trials that know their real order coverage
		// (selector policies, whose order may be a subset) report it
		// themselves via progresser.
		fraction := func(done int) float64 {
			if pr, ok := trial.(progresser); ok {
				return pr.progress()
			}
			return float64(done) / float64(n)
		}
		// Step 0: accuracy right after the parallel (unverified) programming.
		if acc := record(0); b.BaseAccuracy-acc <= b.MaxDrop {
			o.achieved = true
			return o
		}
		for done := 0; ; {
			// A policy that never exhausts itself (in-situ) under an
			// unreachable target with no MaxNWC cap would loop forever;
			// honour cancellation per granule so Run(ctx) stays killable
			// mid-trial (the engine surfaces ctx.Err for the whole run).
			if ctx.Err() != nil {
				break
			}
			exhausted := trial.Step(mp, p.granularity, r)
			if done += granule; done > n {
				done = n
			}
			acc := record(fraction(done))
			if b.BaseAccuracy-acc <= b.MaxDrop {
				o.achieved = true
				break
			}
			if exhausted || (b.MaxNWC > 0 && mp.NWC() >= b.MaxNWC) {
				break
			}
		}
		return o
	})
	if err != nil {
		return nil, fmt.Errorf("program: policy %q: %w", p.policy.Name(), err)
	}
	ps.complete()

	res := &Result{
		Policy: p.policy.Name(), Budget: p.budget, Trials: p.trials,
		Nonidealities: nonideal.Names(p.nonideal), ReadTime: p.readTime,
		Calibration: p.calibSpec(),
		NWC:         &stat.Welford{}, Evals: &stat.Welford{},
	}
	// Fold per-trial singleton accumulators in trial order — the same
	// schedule-independent reduction the mc engine uses, so aggregates are
	// bit-identical for any worker count.
	for _, o := range outs {
		for i := range o.accs {
			if i == len(res.Trace) {
				res.Trace = append(res.Trace, TraceStep{
					FractionVerified: o.fracs[i],
					Accuracy:         &stat.Welford{},
					NWC:              &stat.Welford{},
				})
			}
			addObs(res.Trace[i].Accuracy, o.accs[i])
			addObs(res.Trace[i].NWC, o.nwcs[i])
		}
		addObs(res.NWC, o.nwcs[len(o.nwcs)-1])
		addObs(res.Evals, float64(len(o.accs)))
		if o.achieved {
			res.Achieved++
		}
	}
	if res.Achieved == 0 {
		return res, fmt.Errorf("program: policy %q: no trial reached drop <= %g pp: %w",
			p.policy.Name(), b.MaxDrop, ErrBudgetExhausted)
	}
	return res, nil
}

// addObs folds one observation into w as a singleton merge, mirroring the mc
// engine's per-trial-accumulator reduction bit for bit.
func addObs(w *stat.Welford, v float64) { w.MergeObs(v) }
