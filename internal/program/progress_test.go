package program

import (
	"context"
	"sort"
	"sync"
	"testing"
)

// collectProgress is a concurrency-safe ProgressFunc recorder.
type collectProgress struct {
	mu     sync.Mutex
	events []Progress
}

func (c *collectProgress) fn(p Progress) {
	c.mu.Lock()
	c.events = append(c.events, p)
	c.mu.Unlock()
}

func (c *collectProgress) snapshot() []Progress {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Progress(nil), c.events...)
}

func runGridPipeline(t *testing.T, w *testWorkload, workers int, extra ...Option) *Result {
	t.Helper()
	opts := append(w.options(),
		WithTrials(4), WithSeed(9), WithWorkers(workers))
	opts = append(opts, extra...)
	p, err := New(w.net, mustLookup(t, "swim"), GridBudget(0.1, 0.3), opts...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func requireSameResult(t *testing.T, a, b *Result) {
	t.Helper()
	if len(a.Points) != len(b.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		pa, pb := a.Points[i], b.Points[i]
		if pa.Accuracy.Mean() != pb.Accuracy.Mean() || pa.Accuracy.Std() != pb.Accuracy.Std() ||
			pa.NWC.Mean() != pb.NWC.Mean() {
			t.Fatalf("point %d diverged with progress enabled", i)
		}
	}
}

// TestProgressObserveOnly pins the WithProgress determinism contract: the
// instrumented run's aggregates are bit-identical to the plain run, across
// worker counts.
func TestProgressObserveOnly(t *testing.T) {
	w := workload(t)
	plain := runGridPipeline(t, w, 1)
	rec := &collectProgress{}
	observed := runGridPipeline(t, w, 4, WithProgress(rec.fn))
	requireSameResult(t, plain, observed)
}

// TestProgressEventStream checks the event contract on a grid run: exactly
// one TrialDone per trial carrying counter values {1..trials}, then a single
// final Complete event after all of them.
func TestProgressEventStream(t *testing.T) {
	w := workload(t)
	rec := &collectProgress{}
	runGridPipeline(t, w, 4, WithProgress(rec.fn))
	events := rec.snapshot()
	if len(events) != 5 { // 4 trials + 1 complete
		t.Fatalf("got %d events, want 5: %+v", len(events), events)
	}
	last := events[len(events)-1]
	if !last.Complete || last.TrialDone {
		t.Fatalf("final event is not the Complete marker: %+v", last)
	}
	if last.TrialsDone != 4 || last.TrialsTotal != 4 {
		t.Fatalf("Complete event counters = %d/%d, want 4/4", last.TrialsDone, last.TrialsTotal)
	}
	var counts []int
	for _, e := range events[:len(events)-1] {
		if !e.TrialDone || e.Complete {
			t.Fatalf("non-terminal event is not a TrialDone: %+v", e)
		}
		if e.TrialsTotal != 4 {
			t.Fatalf("TrialsTotal = %d, want 4", e.TrialsTotal)
		}
		counts = append(counts, e.TrialsDone)
	}
	sort.Ints(counts)
	for i, c := range counts {
		if c != i+1 {
			t.Fatalf("TrialDone counter values %v, want 1..4", counts)
		}
	}
}

// TestProgressDropBudget: drop-budget runs emit the same event shape.
func TestProgressDropBudget(t *testing.T) {
	w := workload(t)
	rec := &collectProgress{}
	p, err := New(w.net, mustLookup(t, "swim"), DropBudget(w.clean, 50),
		append(w.options(), WithGranularity(0.5), WithTrials(3), WithSeed(5),
			WithProgress(rec.fn))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	events := rec.snapshot()
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4 (3 trials + complete)", len(events))
	}
	if !events[len(events)-1].Complete {
		t.Fatalf("drop run did not end with Complete: %+v", events)
	}
}

// TestProgressShard: RunShard reports shard-relative totals (hi-lo), so a
// coordinator worker's progress weights match its share of the trial space.
func TestProgressShard(t *testing.T) {
	w := workload(t)
	rec := &collectProgress{}
	p, err := New(w.net, mustLookup(t, "swim"), GridBudget(0.2),
		append(w.options(), WithTrials(6), WithSeed(4), WithTrialRange(2, 5),
			WithProgress(rec.fn))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunShard(context.Background()); err != nil {
		t.Fatal(err)
	}
	events := rec.snapshot()
	if len(events) != 4 { // 3 shard trials + complete
		t.Fatalf("got %d events, want 4: %+v", len(events), events)
	}
	for _, e := range events {
		if e.TrialsTotal != 3 {
			t.Fatalf("shard TrialsTotal = %d, want 3 (hi-lo)", e.TrialsTotal)
		}
	}
}
