package program

import (
	"context"
	"strings"
	"testing"

	"swim/internal/nonideal"
)

func scenarioStack(t *testing.T) []nonideal.Nonideality {
	t.Helper()
	models, err := nonideal.ParseStack("drift:nu=0.08,nustd=0.02+stuckat:p=0.02")
	if err != nil {
		t.Fatal(err)
	}
	return models
}

// The acceptance bar for the nonideality subsystem: results are bit-for-bit
// reproducible across worker counts, crossing two nonidealities with two
// policies.
func TestNonidealWorkerInvariance(t *testing.T) {
	w := workload(t)
	models := scenarioStack(t)
	for _, policy := range []string{"swim", "magnitude"} {
		run := func(workers int) *Result {
			p, err := New(w.net, mustLookup(t, policy), GridBudget(0, 0.2),
				append(w.options(),
					WithNonidealities(models...),
					WithReadTime(3600),
					WithSeed(99),
					WithTrials(4),
					WithWorkers(workers))...)
			if err != nil {
				t.Fatal(err)
			}
			res, err := p.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		serial, parallel := run(1), run(4)
		for i := range serial.Points {
			s, q := serial.Points[i], parallel.Points[i]
			if s.Accuracy.Mean() != q.Accuracy.Mean() || s.Accuracy.Std() != q.Accuracy.Std() ||
				s.NWC.Mean() != q.NWC.Mean() || s.NWC.Std() != q.NWC.Std() {
				t.Fatalf("policy %s point %d: workers=1 (%v ± %v) != workers=4 (%v ± %v)",
					policy, i, s.Accuracy.Mean(), s.Accuracy.Std(), q.Accuracy.Mean(), q.Accuracy.Std())
			}
		}
	}
}

// The configured scenario must be recorded in the Result, and a severe
// fault scenario must actually degrade measured accuracy relative to the
// ideal-device run with the same seed.
func TestNonidealRecordedAndEffective(t *testing.T) {
	w := workload(t)
	run := func(opts ...Option) *Result {
		p, err := New(w.net, mustLookup(t, "noverify"), GridBudget(0),
			append(append(w.options(), WithSeed(7), WithTrials(3)), opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ideal := run()
	if len(ideal.Nonidealities) != 0 || ideal.ReadTime != 0 {
		t.Fatalf("ideal run carries nonideality metadata: %v @ %v", ideal.Nonidealities, ideal.ReadTime)
	}
	stuck, err := nonideal.ParseStack("stuckat:p=0.4")
	if err != nil {
		t.Fatal(err)
	}
	faulty := run(WithNonidealities(stuck...), WithReadTime(86400))
	if len(faulty.Nonidealities) != 1 || !strings.HasPrefix(faulty.Nonidealities[0], "stuckat:") {
		t.Fatalf("Nonidealities = %v", faulty.Nonidealities)
	}
	if faulty.ReadTime != 86400 {
		t.Fatalf("ReadTime = %v", faulty.ReadTime)
	}
	if faulty.Points[0].Accuracy.Mean() >= ideal.Points[0].Accuracy.Mean() {
		t.Fatalf("40%% stuck devices did not degrade accuracy: %v >= %v",
			faulty.Points[0].Accuracy.Mean(), ideal.Points[0].Accuracy.Mean())
	}
}

func TestNonidealOptionValidation(t *testing.T) {
	w := workload(t)
	if _, err := New(w.net, mustLookup(t, "noverify"), GridBudget(0),
		append(w.options(), WithNonidealities(nil))...); err == nil {
		t.Fatal("nil nonideality accepted")
	}
	if _, err := New(w.net, mustLookup(t, "noverify"), GridBudget(0),
		append(w.options(), WithReadTime(-1))...); err == nil {
		t.Fatal("negative read time accepted")
	}
}
