package eval

import (
	"fmt"
	"sync/atomic"
	"time"

	"swim/internal/kernel"
	"swim/internal/nn"
	"swim/internal/tensor"
)

// PlanObserver receives the wall-clock latency of each compiled-plan batch
// execution, labeled with the kernel backend that ran it. Implementations
// must be safe for concurrent use (evaluators run on many Monte-Carlo
// workers) and allocation-free — the observation happens inside the
// evaluation hot path that the repo's benchmarks pin at 0 allocs/op.
type PlanObserver interface {
	// ObservePlan records one plan execution of the named backend taking the
	// given wall-clock seconds.
	ObservePlan(backend string, seconds float64)
}

// planObsBox wraps the observer interface so the package-global hook is a
// single atomic pointer load on the hot path (no interface-header tearing,
// no lock).
type planObsBox struct{ o PlanObserver }

var planObs atomic.Pointer[planObsBox]

// SetPlanObserver installs o as the process-global plan-execution observer
// (nil uninstalls). Uninstrumented processes never pay more than one atomic
// load and nil check per batch. The hook is process-global because
// evaluators are created deep inside worker loops where threading a handle
// through would touch every layer for a strictly observe-only concern.
func SetPlanObserver(o PlanObserver) {
	if o == nil {
		planObs.Store(nil)
		return
	}
	planObs.Store(&planObsBox{o: o})
}

// Evaluator measures dataset-level accuracy through compiled plans. It owns
// (or shares) one scratch arena and caches one Plan per batch size — for the
// usual "full batches plus one tail batch" split that means at most two
// compilations per evaluation-set geometry, after which every accuracy
// measurement is allocation-free. Like the plans it holds, an Evaluator is
// not safe for concurrent use: keep one per Monte-Carlo worker.
type Evaluator struct {
	net     *nn.Network
	scratch *tensor.Arena
	plans   map[int]*Plan
	kern    kernel.Backend
	backend string        // precomputed backend label for PlanObserver reports
	view    tensor.Tensor // reusable batch-view header over the eval set
}

// NewEvaluator builds an evaluator for net. arena supplies the execution
// scratch shared by all of the evaluator's plans; pass nil for a private
// arena (the pipeline passes its per-worker arena so successive trials reuse
// the same memory).
func NewEvaluator(net *nn.Network, arena *tensor.Arena) *Evaluator {
	return NewEvaluatorKernel(net, arena, nil)
}

// NewEvaluatorKernel is NewEvaluator with an explicit kernel backend for the
// dense primitives of every plan the evaluator compiles; nil selects the
// scalar default. Backends are bit-identical, so accuracy results never
// depend on the choice.
func NewEvaluatorKernel(net *nn.Network, arena *tensor.Arena, k kernel.Backend) *Evaluator {
	if arena == nil {
		arena = tensor.NewArena()
	}
	backend := "scalar"
	if k != nil {
		backend = k.Name()
	}
	return &Evaluator{net: net, scratch: arena, plans: make(map[int]*Plan), kern: k, backend: backend}
}

// Plan returns the compiled plan for the given batched input shape,
// compiling and caching it on first use.
func (e *Evaluator) Plan(inShape []int) (*Plan, error) {
	if len(inShape) < 2 {
		return nil, fmt.Errorf("eval: need a batched input shape, got %v", inShape)
	}
	if pl, ok := e.plans[inShape[0]]; ok && tensor.ShapeEq(pl.InShape(), inShape) {
		return pl, nil
	}
	pl, err := CompileKernel(e.net, inShape, e.scratch, e.kern)
	if err != nil {
		return nil, err
	}
	e.plans[inShape[0]] = pl
	return pl, nil
}

// CountCorrect runs the whole evaluation set (x, y) through compiled plans
// in consecutive batches of at most the given size and returns the number of
// correctly classified samples.
func (e *Evaluator) CountCorrect(x *tensor.Tensor, y []int, batch int) (int, error) {
	if batch < 1 {
		return 0, fmt.Errorf("eval: non-positive batch size %d", batch)
	}
	n := x.Shape[0]
	if n != len(y) {
		return 0, fmt.Errorf("eval: %d samples vs %d labels", n, len(y))
	}
	if n == 0 {
		return 0, fmt.Errorf("eval: empty evaluation set")
	}
	sample := x.Size() / n
	correct := 0
	// Load the observer hook once per evaluation: one atomic load, then a nil
	// check per batch. With no observer installed this path is exactly as
	// allocation-free as before (pinned by BenchmarkEvalPlan*).
	box := planObs.Load()
	for start := 0; start < n; start += batch {
		end := start + batch
		if end > n {
			end = n
		}
		e.view.Shape = append(e.view.Shape[:0], end-start)
		e.view.Shape = append(e.view.Shape, x.Shape[1:]...)
		e.view.Data = x.Data[start*sample : end*sample]
		pl, err := e.Plan(e.view.Shape)
		if err != nil {
			return 0, err
		}
		if box == nil {
			correct += pl.CountCorrect(&e.view, y[start:end])
			continue
		}
		t0 := time.Now()
		correct += pl.CountCorrect(&e.view, y[start:end])
		box.o.ObservePlan(e.backend, time.Since(t0).Seconds())
	}
	return correct, nil
}

// Accuracy returns the top-1 accuracy (%) of the network over (x, y),
// evaluated in batches of the given size. Steady-state calls (both plans
// already compiled) perform zero heap allocations.
func (e *Evaluator) Accuracy(x *tensor.Tensor, y []int, batch int) (float64, error) {
	correct, err := e.CountCorrect(x, y, batch)
	if err != nil {
		return 0, err
	}
	return 100 * float64(correct) / float64(len(y)), nil
}
