package eval

import (
	"fmt"

	"swim/internal/kernel"
	"swim/internal/nn"
	"swim/internal/tensor"
)

// Evaluator measures dataset-level accuracy through compiled plans. It owns
// (or shares) one scratch arena and caches one Plan per batch size — for the
// usual "full batches plus one tail batch" split that means at most two
// compilations per evaluation-set geometry, after which every accuracy
// measurement is allocation-free. Like the plans it holds, an Evaluator is
// not safe for concurrent use: keep one per Monte-Carlo worker.
type Evaluator struct {
	net     *nn.Network
	scratch *tensor.Arena
	plans   map[int]*Plan
	kern    kernel.Backend
	view    tensor.Tensor // reusable batch-view header over the eval set
}

// NewEvaluator builds an evaluator for net. arena supplies the execution
// scratch shared by all of the evaluator's plans; pass nil for a private
// arena (the pipeline passes its per-worker arena so successive trials reuse
// the same memory).
func NewEvaluator(net *nn.Network, arena *tensor.Arena) *Evaluator {
	return NewEvaluatorKernel(net, arena, nil)
}

// NewEvaluatorKernel is NewEvaluator with an explicit kernel backend for the
// dense primitives of every plan the evaluator compiles; nil selects the
// scalar default. Backends are bit-identical, so accuracy results never
// depend on the choice.
func NewEvaluatorKernel(net *nn.Network, arena *tensor.Arena, k kernel.Backend) *Evaluator {
	if arena == nil {
		arena = tensor.NewArena()
	}
	return &Evaluator{net: net, scratch: arena, plans: make(map[int]*Plan), kern: k}
}

// Plan returns the compiled plan for the given batched input shape,
// compiling and caching it on first use.
func (e *Evaluator) Plan(inShape []int) (*Plan, error) {
	if len(inShape) < 2 {
		return nil, fmt.Errorf("eval: need a batched input shape, got %v", inShape)
	}
	if pl, ok := e.plans[inShape[0]]; ok && tensor.ShapeEq(pl.InShape(), inShape) {
		return pl, nil
	}
	pl, err := CompileKernel(e.net, inShape, e.scratch, e.kern)
	if err != nil {
		return nil, err
	}
	e.plans[inShape[0]] = pl
	return pl, nil
}

// CountCorrect runs the whole evaluation set (x, y) through compiled plans
// in consecutive batches of at most the given size and returns the number of
// correctly classified samples.
func (e *Evaluator) CountCorrect(x *tensor.Tensor, y []int, batch int) (int, error) {
	if batch < 1 {
		return 0, fmt.Errorf("eval: non-positive batch size %d", batch)
	}
	n := x.Shape[0]
	if n != len(y) {
		return 0, fmt.Errorf("eval: %d samples vs %d labels", n, len(y))
	}
	if n == 0 {
		return 0, fmt.Errorf("eval: empty evaluation set")
	}
	sample := x.Size() / n
	correct := 0
	for start := 0; start < n; start += batch {
		end := start + batch
		if end > n {
			end = n
		}
		e.view.Shape = append(e.view.Shape[:0], end-start)
		e.view.Shape = append(e.view.Shape, x.Shape[1:]...)
		e.view.Data = x.Data[start*sample : end*sample]
		pl, err := e.Plan(e.view.Shape)
		if err != nil {
			return 0, err
		}
		correct += pl.CountCorrect(&e.view, y[start:end])
	}
	return correct, nil
}

// Accuracy returns the top-1 accuracy (%) of the network over (x, y),
// evaluated in batches of the given size. Steady-state calls (both plans
// already compiled) perform zero heap allocations.
func (e *Evaluator) Accuracy(x *tensor.Tensor, y []int, batch int) (float64, error) {
	correct, err := e.CountCorrect(x, y, batch)
	if err != nil {
		return 0, err
	}
	return 100 * float64(correct) / float64(len(y)), nil
}
