package eval_test

import (
	"errors"
	"fmt"
	"testing"

	"swim/internal/eval"
	"swim/internal/models"
	"swim/internal/nn"
	"swim/internal/rng"
	"swim/internal/tensor"
)

// builders enumerates every registered model in internal/models (widths
// slimmed for test runtime; the topology — and therefore every layer kind
// and backprop rule — is identical to the paper-scale models).
var builders = []struct {
	name   string
	sample []int
	build  func(r *rng.Source) *nn.Network
}{
	{"lenet", []int{1, 28, 28}, func(r *rng.Source) *nn.Network { return models.LeNet(10, 4, r) }},
	{"convnet", []int{3, 32, 32}, func(r *rng.Source) *nn.Network { return models.ConvNet(10, 4, 6, r) }},
	{"resnet18", []int{3, 32, 32}, func(r *rng.Source) *nn.Network { return models.ResNet18(10, 4, 6, r) }},
}

func randomInput(batch int, sample []int, r *rng.Source) *tensor.Tensor {
	shape := append([]int{batch}, sample...)
	x := tensor.New(shape...)
	for i := range x.Data {
		x.Data[i] = r.Gauss(0, 1)
	}
	return x
}

// TestPlanMatchesLegacyForward pins the compiled plan bit-for-bit against
// the legacy evaluation-mode Network.Forward for every registered model at
// batch sizes 1, 7 and 64 (the odd batch catches stride/offset bugs). This
// is the guarantee that Table 1 / Fig. 1 / Fig. 2 numbers cannot drift when
// evaluation routes through plans.
func TestPlanMatchesLegacyForward(t *testing.T) {
	for _, b := range builders {
		for _, batch := range []int{1, 7, 64} {
			t.Run(fmt.Sprintf("%s/batch=%d", b.name, batch), func(t *testing.T) {
				r := rng.New(7)
				net := b.build(r)
				x := randomInput(batch, b.sample, r)

				plan, err := eval.Compile(net, x.Shape, nil)
				if err != nil {
					t.Fatalf("Compile: %v", err)
				}
				want := net.Forward(x, false)
				got := plan.Forward(x)

				if len(got.Data) != len(want.Data) {
					t.Fatalf("logits size %d, want %d", len(got.Data), len(want.Data))
				}
				for i := range want.Data {
					if got.Data[i] != want.Data[i] {
						t.Fatalf("logit [%d] = %v, legacy %v (plan is not bit-identical)",
							i, got.Data[i], want.Data[i])
					}
				}
				// A second pass over the same plan (arena reset + re-carve)
				// must reproduce the result exactly.
				again := plan.Forward(x)
				for i := range want.Data {
					if again.Data[i] != want.Data[i] {
						t.Fatalf("second pass drifted at [%d]: %v vs %v", i, again.Data[i], want.Data[i])
					}
				}
			})
		}
	}
}

// TestEvaluatorMatchesLegacyAccuracy checks the batched dataset walk
// (including the tail batch) against the legacy per-batch CountCorrect.
func TestEvaluatorMatchesLegacyAccuracy(t *testing.T) {
	r := rng.New(11)
	net := models.LeNet(10, 4, r)
	const n = 50 // batch 16 -> three full batches + tail of 2
	x := randomInput(n, []int{1, 28, 28}, r)
	y := make([]int, n)
	for i := range y {
		y[i] = r.Intn(10)
	}

	legacy := 0
	for start := 0; start < n; start += 16 {
		end := start + 16
		if end > n {
			end = n
		}
		sample := x.Size() / n
		xb := tensor.FromSlice(x.Data[start*sample:end*sample], end-start, 1, 28, 28)
		legacy += net.CountCorrect(xb, y[start:end])
	}

	ev := eval.NewEvaluator(net, nil)
	got, err := ev.CountCorrect(x, y, 16)
	if err != nil {
		t.Fatalf("CountCorrect: %v", err)
	}
	if got != legacy {
		t.Fatalf("evaluator counted %d correct, legacy %d", got, legacy)
	}
	acc, err := ev.Accuracy(x, y, 16)
	if err != nil {
		t.Fatalf("Accuracy: %v", err)
	}
	if want := 100 * float64(legacy) / n; acc != want {
		t.Fatalf("accuracy %v, want %v", acc, want)
	}
}

// TestPlanForwardZeroAlloc pins the tentpole claim: once compiled, a plan's
// Forward (and the evaluator's full-dataset Accuracy walk) performs zero
// heap allocations.
func TestPlanForwardZeroAlloc(t *testing.T) {
	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			r := rng.New(3)
			net := b.build(r)
			x := randomInput(8, b.sample, r)
			plan, err := eval.Compile(net, x.Shape, nil)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			if allocs := testing.AllocsPerRun(10, func() { plan.Forward(x) }); allocs != 0 {
				t.Fatalf("Plan.Forward allocates %v times per call, want 0", allocs)
			}
		})
	}
}

// TestEvaluatorAccuracyZeroAlloc covers the dataset-level walk: after the
// full-batch and tail-batch plans are compiled, Accuracy is allocation-free.
func TestEvaluatorAccuracyZeroAlloc(t *testing.T) {
	r := rng.New(5)
	net := models.LeNet(10, 4, r)
	const n = 20
	x := randomInput(n, []int{1, 28, 28}, r)
	y := make([]int, n)
	for i := range y {
		y[i] = r.Intn(10)
	}
	ev := eval.NewEvaluator(net, nil)
	if _, err := ev.Accuracy(x, y, 8); err != nil { // compiles batch 8 + tail 4
		t.Fatalf("warm-up Accuracy: %v", err)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		if _, err := ev.Accuracy(x, y, 8); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("Evaluator.Accuracy allocates %v times per call, want 0", allocs)
	}
}

// TestPlanWeightMutationVisible checks that a plan reads live weights:
// re-programming a parameter between Forward calls (the write-verify loop's
// pattern) must change the logits without recompilation.
func TestPlanWeightMutationVisible(t *testing.T) {
	r := rng.New(9)
	net := models.LeNet(10, 4, r)
	x := randomInput(4, []int{1, 28, 28}, r)
	plan, err := eval.Compile(net, x.Shape, nil)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	before := append([]float64(nil), plan.Forward(x).Data...)

	p := net.MappedParams()[0]
	for i := range p.Data.Data {
		p.Data.Data[i] *= 1.5
	}
	after := plan.Forward(x)
	want := net.Forward(x, false)
	changed := false
	for i := range want.Data {
		if after.Data[i] != want.Data[i] {
			t.Fatalf("mutated-weight logit [%d] = %v, legacy %v", i, after.Data[i], want.Data[i])
		}
		if after.Data[i] != before[i] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("weight mutation did not affect plan output")
	}
}

// TestCompileRejectsBadInput covers the compiler's error paths.
func TestCompileRejectsBadInput(t *testing.T) {
	r := rng.New(1)
	net := models.LeNet(10, 4, r)
	if _, err := eval.Compile(nil, []int{1, 1, 28, 28}, nil); err == nil {
		t.Fatal("nil network accepted")
	}
	if _, err := eval.Compile(net, []int{4}, nil); err == nil {
		t.Fatal("unbatched input shape accepted")
	}
	if _, err := eval.Compile(net, []int{4, 3, 32, 32}, nil); err == nil {
		t.Fatal("mismatched input geometry accepted")
	}
}

// TestPlanSteps sanity-checks the compiled step introspection: the flattened
// ResNet plan must contain residual branch-sum steps and end at the
// classifier's [B, classes] logits.
func TestPlanSteps(t *testing.T) {
	r := rng.New(2)
	net := models.ResNet18(10, 4, 6, r)
	plan, err := eval.Compile(net, []int{7, 3, 32, 32}, nil)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	adds := 0
	for _, s := range plan.Steps() {
		if s.Name == "+" {
			adds++
		}
	}
	if adds != 8 { // four stages x two blocks
		t.Fatalf("ResNet-18 plan has %d branch sums, want 8", adds)
	}
	if out := plan.OutShape(); len(out) != 2 || out[0] != 7 || out[1] != 10 {
		t.Fatalf("plan output shape %v, want [7 10]", out)
	}
	if plan.Footprint() == 0 {
		t.Fatal("plan reports zero footprint")
	}
}

// legacyOnly is an nn.Layer that deliberately does not implement PlanLayer.
type legacyOnly struct{ nn.Layer }

func (l legacyOnly) Name() string { return "legacy-only" }

// TestCompileUnsupportedLayer pins the typed error contract: a network with
// a non-PlanLayer layer fails compilation with eval.ErrUnsupported, which is
// what callers (mapping.Mapped.Accuracy) use to pin the legacy fallback.
func TestCompileUnsupportedLayer(t *testing.T) {
	r := rng.New(4)
	trunk := nn.NewSequential("t",
		nn.NewLinear("fc", 4, 2, r),
		legacyOnly{nn.NewReLU()},
	)
	net := nn.NewNetwork("stub", trunk, nn.NewSoftmaxCrossEntropy())
	_, err := eval.Compile(net, []int{3, 4}, nil)
	if err == nil {
		t.Fatal("compile of a non-PlanLayer network succeeded")
	}
	if !errors.Is(err, eval.ErrUnsupported) {
		t.Fatalf("error %v is not eval.ErrUnsupported", err)
	}
	// The evaluator surfaces the same sentinel.
	x := tensor.New(3, 4)
	if _, err := eval.NewEvaluator(net, nil).Accuracy(x, []int{0, 1, 0}, 2); !errors.Is(err, eval.ErrUnsupported) {
		t.Fatalf("evaluator error %v is not eval.ErrUnsupported", err)
	}
}

// TestEvaluatorRejectsEmptySet guards the empty-evaluation-set edge (the
// legacy loop divided 0/0 into NaN; the evaluator reports an error instead
// of panicking on the integer division).
func TestEvaluatorRejectsEmptySet(t *testing.T) {
	r := rng.New(4)
	net := models.LeNet(10, 4, r)
	empty := &tensor.Tensor{Shape: []int{0, 1, 28, 28}, Data: nil}
	if _, err := eval.NewEvaluator(net, nil).Accuracy(empty, nil, 8); err == nil {
		t.Fatal("empty evaluation set accepted")
	}
}
