package eval_test

import (
	"reflect"
	"testing"

	"swim/internal/eval"
	"swim/internal/models"
	"swim/internal/nn"
	"swim/internal/rng"
)

// TestMatVecOpsMatchMappedWeights checks the op walk against the mapping
// ground truth: summing In×Out over all ops must equal the network's
// crossbar-mapped weight count, for every model in the zoo.
func TestMatVecOpsMatchMappedWeights(t *testing.T) {
	for _, tc := range builders {
		t.Run(tc.name, func(t *testing.T) {
			net := tc.build(rng.New(7))
			ops := eval.MatVecOps(net)
			if len(ops) == 0 {
				t.Fatal("no MatVec ops found")
			}
			total := 0
			for _, op := range ops {
				if op.In <= 0 || op.Out <= 0 || op.PerSample <= 0 {
					t.Fatalf("degenerate op %+v", op)
				}
				total += op.In * op.Out
			}
			if want := net.NumMappedWeights(); total != want {
				t.Fatalf("ops cover %d weights, mapping has %d", total, want)
			}
		})
	}
}

// TestPlanMatVecOpsMatchTreeWalk pins that the compiled plan reports the
// identical op sequence as the source-network walk — the cost tier must not
// care which one it composes over.
func TestPlanMatVecOpsMatchTreeWalk(t *testing.T) {
	for _, tc := range builders {
		t.Run(tc.name, func(t *testing.T) {
			net := tc.build(rng.New(7))
			plan, err := eval.Compile(net, append([]int{2}, tc.sample...), nil)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			if got, want := plan.MatVecOps(), eval.MatVecOps(net); !reflect.DeepEqual(got, want) {
				t.Fatalf("plan ops != tree ops:\n plan %+v\n tree %+v", got, want)
			}
		})
	}
}

func TestMatVecOpsPerSample(t *testing.T) {
	net := models.LeNet(10, 4, rng.New(7))
	for _, op := range eval.MatVecOps(net) {
		mapped := findMapped(t, net, op.Layer)
		switch v := mapped.(type) {
		case *nn.Linear:
			if op.PerSample != 1 || op.In != v.In || op.Out != v.Out {
				t.Fatalf("linear op mismatch: %+v vs In=%d Out=%d", op, v.In, v.Out)
			}
		case *nn.Conv2D:
			if op.PerSample != v.Geom.ColCols() || op.In != v.Geom.ColRows() || op.Out != v.OutC {
				t.Fatalf("conv op mismatch: %+v vs geom %+v", op, v.Geom)
			}
		}
	}
	if eval.MatVecOps(nil) != nil {
		t.Fatal("nil network must yield nil ops")
	}
}

// findMapped locates the layer a MatVecOp came from by name.
func findMapped(t *testing.T, net *nn.Network, name string) nn.Layer {
	t.Helper()
	var found nn.Layer
	var walk func(l nn.Layer)
	walk = func(l nn.Layer) {
		switch v := l.(type) {
		case *nn.Sequential:
			for _, inner := range v.Layers {
				walk(inner)
			}
		case *nn.Residual:
			walk(v.Body)
			if v.Shortcut != nil {
				walk(v.Shortcut)
			}
		default:
			if l != nil && l.Name() == name {
				found = l
			}
		}
	}
	walk(net.Trunk)
	if found == nil {
		t.Fatalf("layer %q not found", name)
	}
	return found
}
