package eval

import "swim/internal/nn"

// MatVecOp describes one crossbar matrix-vector workload in a network: a
// weight matrix of shape [Out, In] activated PerSample times per input
// sample. Linear layers contribute one activation per sample; convolutions
// lowered to im2col + matmul contribute one per output spatial position.
// The cost tier composes these counts with a tile size to derive per-sample
// DAC/ADC conversion counts and tile-activation totals.
type MatVecOp struct {
	// Layer is the contributing layer's name, for reporting.
	Layer string
	// In and Out are the weight-matrix dimensions ([Out, In] row-major,
	// matching the mapped parameter layout).
	In, Out int
	// PerSample is how many times the matrix is applied per input sample.
	PerSample int
}

// MatVecOps walks a network's layer tree in forward order and returns the
// crossbar MatVec workload of every mapped layer. The walk mirrors the plan
// compiler's flattening (Sequential in order, Residual body before
// shortcut), so Plan.MatVecOps returns the same slice for a compiled plan.
func MatVecOps(net *nn.Network) []MatVecOp {
	if net == nil || net.Trunk == nil {
		return nil
	}
	return appendLayerOps(nil, net.Trunk)
}

// appendLayerOps accumulates MatVec ops from one layer subtree, in the same
// order as Plan compilation.
func appendLayerOps(ops []MatVecOp, l nn.Layer) []MatVecOp {
	switch v := l.(type) {
	case nil:
		return ops
	case *nn.Sequential:
		for _, inner := range v.Layers {
			ops = appendLayerOps(ops, inner)
		}
		return ops
	case *nn.Residual:
		ops = appendLayerOps(ops, v.Body)
		return appendLayerOps(ops, v.Shortcut)
	case *nn.Linear:
		return append(ops, MatVecOp{Layer: v.Name(), In: v.In, Out: v.Out, PerSample: 1})
	case *nn.Conv2D:
		return append(ops, MatVecOp{
			Layer:     v.Name(),
			In:        v.Geom.ColRows(),
			Out:       v.OutC,
			PerSample: v.Geom.ColCols(),
		})
	default:
		return ops
	}
}

// MatVecOps returns the crossbar MatVec workload of the plan's forward
// steps, in execution order. It matches the free-function walk over the
// source network — the compiler flattens the same tree the walk descends —
// and is the hook the cost tier uses when only the compiled plan is in
// hand.
func (p *Plan) MatVecOps() []MatVecOp {
	var ops []MatVecOp
	for _, s := range p.steps {
		if s.kind != opForward {
			continue
		}
		ops = appendLayerOps(ops, s.layer)
	}
	return ops
}
