package eval_test

import (
	"sync"
	"testing"

	"swim/internal/eval"
	"swim/internal/models"
	"swim/internal/obs"
	"swim/internal/rng"
)

// recordingObserver collects ObservePlan calls for assertions.
type recordingObserver struct {
	mu       sync.Mutex
	backends []string
	seconds  []float64
}

func (o *recordingObserver) ObservePlan(backend string, seconds float64) {
	o.mu.Lock()
	o.backends = append(o.backends, backend)
	o.seconds = append(o.seconds, seconds)
	o.mu.Unlock()
}

// TestPlanObserverReportsBatches: with an observer installed, CountCorrect
// reports one latency sample per executed batch labeled with the backend,
// and the count itself is unchanged by instrumentation.
func TestPlanObserverReportsBatches(t *testing.T) {
	r := rng.New(17)
	net := models.LeNet(10, 4, r)
	const n = 20
	x := randomInput(n, []int{1, 28, 28}, r)
	y := make([]int, n)
	for i := range y {
		y[i] = r.Intn(10)
	}
	ev := eval.NewEvaluator(net, nil)
	plain, err := ev.CountCorrect(x, y, 8)
	if err != nil {
		t.Fatal(err)
	}

	rec := &recordingObserver{}
	eval.SetPlanObserver(rec)
	defer eval.SetPlanObserver(nil)
	observed, err := ev.CountCorrect(x, y, 8)
	if err != nil {
		t.Fatal(err)
	}
	if observed != plain {
		t.Fatalf("observed count %d != uninstrumented count %d", observed, plain)
	}
	if len(rec.backends) != 3 { // batches of 8, 8, 4
		t.Fatalf("observer saw %d batches, want 3", len(rec.backends))
	}
	for i, b := range rec.backends {
		if b != "scalar" {
			t.Fatalf("batch %d labeled backend %q, want scalar", i, b)
		}
		if rec.seconds[i] < 0 {
			t.Fatalf("batch %d has negative latency %v", i, rec.seconds[i])
		}
	}
}

// histObserver is the production-shaped observer: an obs.HistogramVec keyed
// by backend, exactly as internal/serve wires it.
type histObserver struct{ vec *obs.HistogramVec }

func (o histObserver) ObservePlan(backend string, seconds float64) {
	o.vec.With(backend).Observe(seconds)
}

// TestPlanObserverZeroAlloc pins the acceptance criterion: the instrumented
// eval hot path stays at 0 allocs/op with an obs-backed observer installed.
func TestPlanObserverZeroAlloc(t *testing.T) {
	r := rng.New(5)
	net := models.LeNet(10, 4, r)
	const n = 20
	x := randomInput(n, []int{1, 28, 28}, r)
	y := make([]int, n)
	for i := range y {
		y[i] = r.Intn(10)
	}
	reg := obs.NewRegistry()
	eval.SetPlanObserver(histObserver{vec: reg.HistogramVec("swim_eval_plan_seconds", "", "backend", nil)})
	defer eval.SetPlanObserver(nil)

	ev := eval.NewEvaluator(net, nil)
	if _, err := ev.Accuracy(x, y, 8); err != nil { // warm plans + vec child
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		if _, err := ev.Accuracy(x, y, 8); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("instrumented Accuracy allocates %v times per call, want 0", allocs)
	}
}
