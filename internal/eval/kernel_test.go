package eval_test

import (
	"fmt"
	"runtime"
	"testing"

	"swim/internal/device"
	"swim/internal/eval"
	"swim/internal/kernel"
	"swim/internal/mapping"
	"swim/internal/models"
	"swim/internal/rng"
)

// kernelVariants enumerates every non-default backend pinned bit-for-bit
// against scalar, covering the parallel pool at one worker and at the full
// CPU count (the two ends of its partitioning space).
func kernelVariants(t testing.TB) []kernel.Backend {
	t.Helper()
	specs := []string{
		"blocked",
		"parallel:workers=1",
		fmt.Sprintf("parallel:workers=%d", runtime.NumCPU()),
	}
	out := make([]kernel.Backend, 0, len(specs))
	for _, s := range specs {
		k, err := kernel.Parse(s)
		if err != nil {
			t.Fatalf("kernel.Parse(%q): %v", s, err)
		}
		out = append(out, k)
	}
	return out
}

// TestPlanKernelBackendsBitIdentical pins the registry's determinism
// contract at the plan level: for every registered model and every batch
// size (1 exercises single-row paths, 7 the tile tails, 64 the steady
// state), a plan compiled with blocked or parallel produces logits
// bit-identical to the scalar default.
func TestPlanKernelBackendsBitIdentical(t *testing.T) {
	for _, b := range builders {
		for _, batch := range []int{1, 7, 64} {
			t.Run(fmt.Sprintf("%s/batch=%d", b.name, batch), func(t *testing.T) {
				r := rng.New(21)
				net := b.build(r)
				x := randomInput(batch, b.sample, r)

				ref, err := eval.Compile(net, x.Shape, nil)
				if err != nil {
					t.Fatalf("Compile: %v", err)
				}
				want := append([]float64(nil), ref.Forward(x).Data...)

				for _, k := range kernelVariants(t) {
					pl, err := eval.CompileKernel(net, x.Shape, nil, k)
					if err != nil {
						t.Fatalf("CompileKernel(%s): %v", k.Spec(), err)
					}
					got := pl.Forward(x)
					for i := range want {
						if got.Data[i] != want[i] {
							t.Fatalf("backend %s: logit [%d] = %v, scalar %v (not bit-identical)",
								k.Spec(), i, got.Data[i], want[i])
						}
					}
				}
			})
		}
	}
}

// TestPlanKernelBackendsAnalogTwin runs the same pin on the crossbar-mapped
// (analog) twin of each model: its MatVec-backed layers bypass the kernel
// tier entirely, so every backend must leave the mapped network's logits
// untouched — compiling with a non-default backend is always safe, digital
// or analog.
func TestPlanKernelBackendsAnalogTwin(t *testing.T) {
	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			r := rng.New(23)
			net := b.build(r)
			dm := device.Default(4, 0.5)
			table := dm.CycleTable(50, rng.New(29))
			mp, err := mapping.New(net, dm, table, rng.New(31))
			if err != nil {
				t.Fatalf("mapping.New: %v", err)
			}
			x := randomInput(7, b.sample, r)

			ref, err := eval.Compile(mp.Net, x.Shape, nil)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			want := append([]float64(nil), ref.Forward(x).Data...)

			for _, k := range kernelVariants(t) {
				pl, err := eval.CompileKernel(mp.Net, x.Shape, nil, k)
				if err != nil {
					t.Fatalf("CompileKernel(%s): %v", k.Spec(), err)
				}
				got := pl.Forward(x)
				for i := range want {
					if got.Data[i] != want[i] {
						t.Fatalf("backend %s: analog logit [%d] = %v, scalar %v",
							k.Spec(), i, got.Data[i], want[i])
					}
				}
			}
		})
	}
}

// TestEvaluatorKernelCountsMatch pins the dataset-level walk (full batches
// plus tail batch) across backends: CountCorrect, being a function of
// bit-identical logits, must agree exactly.
func TestEvaluatorKernelCountsMatch(t *testing.T) {
	r := rng.New(37)
	net := models.LeNet(10, 4, r)
	const n = 50 // batch 16 -> three full batches + tail of 2
	x := randomInput(n, []int{1, 28, 28}, r)
	y := make([]int, n)
	for i := range y {
		y[i] = r.Intn(10)
	}
	want, err := eval.NewEvaluator(net, nil).CountCorrect(x, y, 16)
	if err != nil {
		t.Fatalf("scalar CountCorrect: %v", err)
	}
	for _, k := range kernelVariants(t) {
		got, err := eval.NewEvaluatorKernel(net, nil, k).CountCorrect(x, y, 16)
		if err != nil {
			t.Fatalf("CountCorrect(%s): %v", k.Spec(), err)
		}
		if got != want {
			t.Fatalf("backend %s counted %d correct, scalar %d", k.Spec(), got, want)
		}
	}
}

// TestPlanKernelZeroAlloc extends the zero-allocation pin to every backend:
// blocked re-tiles with stack-resident accumulators and parallel dispatches
// through the persistent shared pool, so neither may allocate in steady
// state.
func TestPlanKernelZeroAlloc(t *testing.T) {
	for _, b := range builders {
		for _, k := range kernelVariants(t) {
			t.Run(b.name+"/"+k.Spec(), func(t *testing.T) {
				r := rng.New(41)
				net := b.build(r)
				x := randomInput(8, b.sample, r)
				pl, err := eval.CompileKernel(net, x.Shape, nil, k)
				if err != nil {
					t.Fatalf("CompileKernel: %v", err)
				}
				pl.Forward(x) // grow the arena to its fixed point
				if allocs := testing.AllocsPerRun(10, func() { pl.Forward(x) }); allocs != 0 {
					t.Fatalf("Plan.Forward with %s allocates %v times per call, want 0", k.Spec(), allocs)
				}
			})
		}
	}
}
