// Package eval implements the compiled, zero-allocation evaluation engine
// behind every accuracy measurement in the repository. The Monte-Carlo loops
// of the SWIM reproduction re-run the full network forward pass over the
// evaluation set after every programming granule; with the legacy
// Layer.Forward path each of those passes allocates fresh output tensors,
// im2col scratch and residual clones, so the hot loop is dominated by GC
// pressure rather than arithmetic.
//
// A Plan fixes that: Compile walks a nn.Network once for a fixed batch
// shape, infers every intermediate shape via nn.PlanLayer.OutShape, flattens
// the Sequential/Residual structure into a linear step program, and binds
// one persistent activation buffer per step. Executing the plan then runs
// each layer's ForwardInto kernel into its pre-bound buffer, drawing
// per-call temporaries (im2col columns, DAC scratch) from a bump-allocator
// Arena that is reset at the start of every forward pass. The first Forward
// grows the arena to its fixed point; every subsequent pass performs zero
// heap allocations (pinned by BenchmarkEvalPlan and the
// allocation-regression CI step).
//
// Plans are bit-for-bit equivalent to the legacy evaluation-mode
// Network.Forward — the same kernels run in the same order — so Table 1 /
// Fig. 1 / Fig. 2 numbers cannot drift (pinned by the equivalence tests in
// this package for every model in internal/models, digital and analog).
//
// A Plan is bound to the layer instances of one network clone and reads the
// current weights at execution time: re-programming weights (write-verify,
// in-situ updates) never requires recompilation. Recompilation is needed
// only when the batch shape changes (Evaluator caches one plan per batch
// size) or when the network's layer graph itself is rebuilt. Plans are not
// goroutine-safe — the pipeline compiles one per Monte-Carlo worker, each
// with its own arena.
package eval

import (
	"errors"
	"fmt"

	"swim/internal/kernel"
	"swim/internal/nn"
	"swim/internal/tensor"
)

// ErrUnsupported reports that a network contains a layer outside the
// nn.PlanLayer contract and therefore cannot be compiled. Callers use it
// (via errors.Is) to distinguish "this network can never compile — pin the
// legacy path" from transient input errors.
var ErrUnsupported = errors.New("eval: layer does not support compiled evaluation")

type opKind uint8

const (
	// opForward runs step.layer.ForwardInto(buf[dst], buf[src], scratch).
	opForward opKind = iota
	// opAdd accumulates buf[operand] into buf[dst] (residual branch sum).
	opAdd
)

// step is one instruction of the compiled plan.
type step struct {
	kind    opKind
	layer   nn.PlanLayer   // opForward only
	klayer  nn.KernelLayer // opForward, non-nil when layer routes through a kernel backend
	src     int            // input buffer index (opForward)
	dst     int            // output buffer index
	operand int            // opAdd: buffer accumulated into dst
}

// StepInfo describes one compiled step for diagnostics and tests.
type StepInfo struct {
	// Name is the layer name, or "+" for a residual branch sum.
	Name string
	// OutShape is the full (batched) output shape of the step.
	OutShape []int
}

// Plan is a compiled evaluation program for one network at one fixed batch
// shape. It is not safe for concurrent use.
type Plan struct {
	net     *nn.Network
	inShape []int
	steps   []step
	infos   []StepInfo
	// bufs[0] is rebound to the caller's input every Forward; bufs[1:] are
	// plan-owned persistent activation buffers, one per step output.
	bufs    []*tensor.Tensor
	out     int // buffer index of the logits
	scratch *tensor.Arena
	kern    kernel.Backend
}

// Compile builds a plan for net at the given batched input shape (axis 0 is
// the batch size). scratch supplies execution temporaries; pass nil to give
// the plan its own arena, or share one arena across the plans of a worker.
// The first Forward call grows the arena to its fixed point (warm-up); every
// later call with the same plan set is allocation-free.
func Compile(net *nn.Network, inShape []int, scratch *tensor.Arena) (*Plan, error) {
	return CompileKernel(net, inShape, scratch, nil)
}

// CompileKernel is Compile with an explicit kernel backend executing the
// dense primitives (matmul, fused bias+matmul, convolution) of the layers
// that support one; nil selects the scalar default. Every registered backend
// is bit-identical to scalar, so the backend never changes plan results —
// only how fast the steps run.
func CompileKernel(net *nn.Network, inShape []int, scratch *tensor.Arena, k kernel.Backend) (*Plan, error) {
	if net == nil {
		return nil, errors.New("eval: nil network")
	}
	if len(inShape) < 2 || inShape[0] < 1 {
		return nil, fmt.Errorf("eval: need a batched input shape, got %v", inShape)
	}
	if scratch == nil {
		scratch = tensor.NewArena()
	}
	if k == nil {
		k = kernel.Default()
	}
	p := &Plan{
		net:     net,
		inShape: append([]int(nil), inShape...),
		scratch: scratch,
		kern:    k,
	}
	// Buffer 0 is the input slot, rebound on every Forward call.
	p.bufs = append(p.bufs, nil)
	out, err := p.compile(net.Trunk, 0, p.inShape)
	if err != nil {
		return nil, fmt.Errorf("eval: compiling %s: %w", net.Name, err)
	}
	p.out = out
	return p, nil
}

// compile flattens the layer tree rooted at l, reading from buffer src, and
// returns the buffer index holding l's output. Sequential and Residual are
// decomposed into leaf steps; every other PlanLayer becomes one opForward.
func (p *Plan) compile(l nn.Layer, src int, srcShape []int) (int, error) {
	pl, ok := l.(nn.PlanLayer)
	if !ok {
		return 0, fmt.Errorf("layer %s (%T): %w", l.Name(), l, ErrUnsupported)
	}
	switch v := l.(type) {
	case *nn.Sequential:
		cur, curShape := src, srcShape
		for _, child := range v.Layers {
			next, err := p.compile(child, cur, curShape)
			if err != nil {
				return 0, err
			}
			cur, curShape = next, p.shapeOf(next, curShape)
		}
		return cur, nil
	case *nn.Residual:
		// Body first, then the shortcut, then the branch sum — the exact
		// execution order (and floating-point result) of the legacy Forward.
		dst, err := p.compile(v.Body, src, srcShape)
		if err != nil {
			return 0, err
		}
		if dst == src {
			// An empty body would make the branch sum alias (and mutate) the
			// residual input buffer.
			return 0, fmt.Errorf("residual %s: empty body", v.Name())
		}
		operand := src // identity skip adds the residual input
		if v.Shortcut != nil {
			if operand, err = p.compile(v.Shortcut, src, srcShape); err != nil {
				return 0, err
			}
		}
		dstShape := p.shapeOf(dst, srcShape)
		opShape := p.shapeOf(operand, srcShape)
		if !tensor.ShapeEq(dstShape, opShape) {
			return 0, fmt.Errorf("residual %s: body shape %v != skip shape %v", v.Name(), dstShape, opShape)
		}
		p.steps = append(p.steps, step{kind: opAdd, dst: dst, operand: operand})
		p.infos = append(p.infos, StepInfo{Name: "+", OutShape: dstShape})
		return dst, nil
	default:
		outShape, err := pl.OutShape(srcShape)
		if err != nil {
			return 0, err
		}
		p.bufs = append(p.bufs, tensor.New(outShape...))
		dst := len(p.bufs) - 1
		kl, _ := l.(nn.KernelLayer)
		p.steps = append(p.steps, step{kind: opForward, layer: pl, klayer: kl, src: src, dst: dst})
		p.infos = append(p.infos, StepInfo{Name: pl.Name(), OutShape: append([]int(nil), outShape...)})
		return dst, nil
	}
}

// shapeOf returns the shape of buffer i (fallback covers buffer 0, the input).
func (p *Plan) shapeOf(i int, inShape []int) []int {
	if i == 0 {
		return inShape
	}
	return p.bufs[i].Shape
}

// InShape returns the batched input shape the plan was compiled for.
func (p *Plan) InShape() []int { return p.inShape }

// Batch returns the compiled batch size.
func (p *Plan) Batch() int { return p.inShape[0] }

// OutShape returns the batched logits shape.
func (p *Plan) OutShape() []int { return p.bufs[p.out].Shape }

// Steps returns the compiled step list (layer name + output shape per step)
// for diagnostics.
func (p *Plan) Steps() []StepInfo { return p.infos }

// Footprint returns the total float64 count held by the plan's persistent
// activation buffers plus its scratch arena.
func (p *Plan) Footprint() int {
	total := p.scratch.Footprint()
	for _, b := range p.bufs[1:] {
		total += len(b.Data)
	}
	return total
}

// Forward runs inference on x (which must match the compiled input shape)
// and returns the logits. The returned tensor is plan-owned and valid until
// the next Forward call. Steady-state calls perform zero heap allocations.
func (p *Plan) Forward(x *tensor.Tensor) *tensor.Tensor {
	if !tensor.ShapeEq(x.Shape, p.inShape) {
		panic(fmt.Sprintf("eval: plan compiled for shape %v, got %v", p.inShape, x.Shape))
	}
	p.scratch.Reset()
	p.bufs[0] = x
	for _, st := range p.steps {
		switch st.kind {
		case opForward:
			if st.klayer != nil {
				st.klayer.ForwardIntoKernel(p.bufs[st.dst], p.bufs[st.src], p.scratch, p.kern)
			} else {
				st.layer.ForwardInto(p.bufs[st.dst], p.bufs[st.src], p.scratch)
			}
		case opAdd:
			p.bufs[st.dst].Add(p.bufs[st.operand])
		}
	}
	return p.bufs[p.out]
}

// CountCorrect runs inference and returns how many samples are classified
// correctly, sharing the top-1 argmax (and its tie-breaking) with the legacy
// Network.CountCorrect.
func (p *Plan) CountCorrect(x *tensor.Tensor, labels []int) int {
	return nn.CountCorrectLogits(p.Forward(x), labels)
}
