package mapping

import (
	"math"
	"testing"

	"swim/internal/data"
	"swim/internal/device"
	"swim/internal/models"
	"swim/internal/nn"
	"swim/internal/rng"
)

func mustNew(t *testing.T, net *nn.Network, dm device.Model, table []float64, r *rng.Source) *Mapped {
	t.Helper()
	mp, err := New(net, dm, table, r)
	if err != nil {
		t.Fatal(err)
	}
	return mp
}

func testNetAndDevice(t *testing.T) (*Mapped, device.Model) {
	t.Helper()
	r := rng.New(1)
	net := models.LeNet(10, 4, r)
	dm := device.Default(4, 0.5)
	table := dm.CycleTable(50, rng.New(2))
	return mustNew(t, net, dm, table, rng.New(3)), dm
}

func TestNewPreservesMaster(t *testing.T) {
	r := rng.New(1)
	net := models.LeNet(10, 4, r)
	before := net.MappedParams()[0].Data.Clone()
	dm := device.Default(4, 0.5)
	mustNew(t, net, dm, dm.CycleTable(50, rng.New(2)), rng.New(3))
	after := net.MappedParams()[0].Data
	for i := range before.Data {
		if before.Data[i] != after.Data[i] {
			t.Fatal("mapping mutated the master network")
		}
	}
}

func TestProgrammedNoiseMatchesModel(t *testing.T) {
	mp, dm := testNetAndDevice(t)
	errs := mp.ProgrammedError()
	// Per-param scale differs; check aggregate spread is sane: most weights
	// deviate, none by more than ~6σ in LSB units.
	nonzero := 0
	for i, e := range errs {
		_, _, scale := mp.locate(i)
		lsb := math.Abs(e) / scale
		if lsb > 6*dm.NoiseStd() {
			t.Fatalf("weight %d error %.2f LSB exceeds 6 sigma", i, lsb)
		}
		if e != 0 {
			nonzero++
		}
	}
	if float64(nonzero) < 0.95*float64(len(errs)) {
		t.Fatalf("only %d/%d weights got programming noise", nonzero, len(errs))
	}
}

func TestWriteVerifyTightensWeight(t *testing.T) {
	mp, dm := testNetAndDevice(t)
	r := rng.New(7)
	for _, i := range []int{0, 100, 5000, mp.TotalWeights() - 1} {
		cycles := mp.WriteVerifyAt(i, r)
		if cycles < 0 {
			t.Fatal("negative cycles")
		}
		_, _, scale := mp.locate(i)
		errLSB := math.Abs(mp.ProgrammedError()[i]) / scale
		if errLSB > dm.Tolerance+1e-9 {
			t.Fatalf("weight %d residual %.4f LSB exceeds tolerance", i, errLSB)
		}
		if !mp.Verified[i] {
			t.Fatal("weight not marked verified")
		}
	}
	if mp.CyclesUsed <= 0 {
		t.Fatal("cycles not billed")
	}
}

func TestNWCAccounting(t *testing.T) {
	mp, _ := testNetAndDevice(t)
	if mp.NWC() != 0 {
		t.Fatalf("initial NWC = %v, want 0 (parallel programming is free)", mp.NWC())
	}
	r := rng.New(8)
	order := r.Perm(mp.TotalWeights())
	mp.WriteVerifyPrefix(order, mp.TotalWeights(), r)
	nwc := mp.NWC()
	// Verifying everything should cost about the baseline: within 5%.
	if nwc < 0.95 || nwc > 1.05 {
		t.Fatalf("full write-verify NWC = %.3f, want ~1.0", nwc)
	}
}

func TestWriteVerifyPrefixSkipsVerified(t *testing.T) {
	mp, _ := testNetAndDevice(t)
	r := rng.New(9)
	order := r.Perm(mp.TotalWeights())
	mp.WriteVerifyPrefix(order, 100, r)
	bill := mp.CyclesUsed
	mp.WriteVerifyPrefix(order, 100, r) // same prefix: all verified already
	if mp.CyclesUsed != bill {
		t.Fatal("re-verifying an already verified prefix double-billed")
	}
	mp.WriteVerifyPrefix(order, 200, r)
	if mp.CyclesUsed <= bill {
		t.Fatal("extending the prefix should bill more cycles")
	}
}

func TestIncrementAtMovesWeightAndBillsOneCycle(t *testing.T) {
	mp, _ := testNetAndDevice(t)
	r := rng.New(10)
	p, off, scale := mp.locate(42)
	before := p.Data.Data[off]
	bill := mp.CyclesUsed
	mp.IncrementAt(42, 0.5*scale, r)
	if mp.CyclesUsed != bill+1 {
		t.Fatalf("increment billed %v cycles, want 1", mp.CyclesUsed-bill)
	}
	after := p.Data.Data[off]
	if after == before {
		t.Fatal("increment did not move the weight")
	}
	// Landed change should be near the request (within jitter + noise).
	if math.Abs((after-before)-0.5*scale) > 0.5*scale {
		t.Fatalf("landed change %.4f far from request %.4f", after-before, 0.5*scale)
	}
}

func TestIncrementClampsAtFullScale(t *testing.T) {
	mp, dm := testNetAndDevice(t)
	r := rng.New(11)
	p, off, scale := mp.locate(7)
	levels := float64(int(1)<<dm.WeightBits - 1)
	for k := 0; k < 50; k++ {
		mp.IncrementAt(7, levels*scale, r)
	}
	if p.Data.Data[off] > levels*scale+1e-9 {
		t.Fatalf("weight exceeded full scale: %v > %v", p.Data.Data[off], levels*scale)
	}
}

func TestNoisyWriteAtReprograms(t *testing.T) {
	mp, _ := testNetAndDevice(t)
	r := rng.New(12)
	_, _, scale := mp.locate(3)
	bill := mp.CyclesUsed
	mp.NoisyWriteAt(3, -2*scale, r)
	if mp.CyclesUsed != bill+1 {
		t.Fatal("noisy write should bill one cycle")
	}
	if mp.Desired()[3] != -2*scale {
		t.Fatalf("desired = %v, want %v", mp.Desired()[3], -2*scale)
	}
	if mp.Verified[3] {
		t.Fatal("noisy write must clear the verified mark")
	}
}

func TestAccuracyRunsOnProgrammedWeights(t *testing.T) {
	r := rng.New(1)
	net := models.LeNet(10, 4, r)
	ds := data.MNISTLike(60, 60, 5)
	dm := device.Default(4, 0.0) // zero noise: programmed == desired
	mp := mustNew(t, net, dm, dm.CycleTable(10, rng.New(2)), rng.New(3))
	got := mp.Accuracy(ds.TestX, ds.TestY, 32)
	if got < 0 || got > 100 {
		t.Fatalf("accuracy out of range: %v", got)
	}
	// With zero noise the programmed network equals the quantized master.
	errs := mp.ProgrammedError()
	for i, e := range errs {
		if e != 0 {
			t.Fatalf("zero-noise mapping should be exact, weight %d off by %v", i, e)
		}
	}
}

func TestLocatePanicsOutOfRange(t *testing.T) {
	mp, _ := testNetAndDevice(t)
	defer func() {
		if recover() == nil {
			t.Fatal("locate accepted an out-of-range index")
		}
	}()
	mp.WriteVerifyAt(mp.TotalWeights(), rng.New(1))
}
