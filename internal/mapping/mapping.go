// Package mapping manages the state of a DNN programmed onto an nvCiM
// platform: the desired (quantized) weight values, the values actually
// sitting on the devices after noisy programming, which weights have been
// write-verified, and the running write-cycle bill that the paper's NWC
// (normalized write cycles) metric is computed from.
//
// One Mapped instance is one Monte-Carlo trial: it owns a clone of the
// trained master network whose mapped weights are perturbed per the device
// model, and re-programs individual weights on demand (write-verify for the
// selective schemes, noisy unverified writes for in-situ training).
package mapping

import (
	"errors"
	"fmt"
	"math"

	"swim/internal/calib"
	"swim/internal/data"
	"swim/internal/device"
	"swim/internal/eval"
	"swim/internal/kernel"
	"swim/internal/nn"
	"swim/internal/nonideal"
	"swim/internal/quant"
	"swim/internal/rng"
	"swim/internal/tensor"
)

// Mapped is a network programmed onto simulated NVM devices.
type Mapped struct {
	// Net is the working clone whose mapped parameters hold programmed
	// (noisy) values; evaluating it measures on-device accuracy.
	Net *nn.Network
	// Model is the device/programming model in force.
	Model device.Model

	loc    *Locator  // O(1) flat index -> (param, offset) resolution
	scales []float64 // per-param quantization step
	total  int

	desired []float64 // flat desired float weights (on the quantized grid)
	mags    []int     // flat integer magnitudes
	signs   []float64 // flat signs (+1/−1)
	// Verified marks weights that have been write-verified in this trial.
	Verified []bool

	// CyclesUsed accumulates write cycles spent by write-verify and in-situ
	// writes. The initial parallel programming pass is free (paper: NWC = 0
	// means "no write-verify or in-situ training").
	CyclesUsed float64

	cycleTable []float64 // expected WV cycles per magnitude

	// Per-device conductance tracking for read-time nonidealities: cond
	// holds every bit-slice device's programmed conductance (signed by the
	// differential pair, device-level units), laid out weight-major
	// (cond[i*nd+d]). It is maintained by every programming operation so
	// that SetNonideal can derive the degraded read-time weights from the
	// true time-0 device state; the mapped weight in Net stays the exact
	// aggregate value the legacy (nonideality-free) path produces.
	cond       []float64
	devScratch []float64 // NumDevices scratch for per-device errors
	pow2       []float64 // 2^(d·K) significance per bit-slice
	inst       nonideal.Instance
	readTime   float64
	// dirty lists the weights reprogrammed since the last SyncRead;
	// needFull forces the next sync to recompute every weight (scenario
	// installed or whole-network reprogram). Because Instance.Apply is
	// pure in (device, conductance, time), a weight whose conductances
	// did not change re-syncs to the identical value, so incremental
	// syncing is bit-identical to a full recompute at a fraction of the
	// cost — Algorithm 1 re-measures accuracy after every granule.
	dirty    []int
	needFull bool

	// Calibration state (SetCalibration): when cal is set, SyncRead lands
	// the raw (uncorrected) read-out of every weight in rawRead instead of
	// the network, refits one correction per mapped parameter from the
	// calibrator's probe budget, and writes the corrected values into the
	// network — the digital gain/offset stage sitting after the analog
	// nonideality and before evaluation.
	cal     *calib.Calibrator
	rawRead []float64
	corr    []calib.Correction

	// Compiled-evaluation state: Accuracy routes through an eval.Evaluator
	// (zero steady-state allocations; see package eval) compiled lazily on
	// first use. evalArena optionally shares one scratch arena across the
	// trials a Monte-Carlo worker runs; evalLegacy records that compilation
	// failed (a layer outside the PlanLayer contract) and pins the legacy
	// Forward path for the rest of the trial.
	ev         *eval.Evaluator
	evalArena  *tensor.Arena
	evalKern   kernel.Backend
	evalLegacy bool
}

// New quantizes the master network's mapped weights onto the device grid,
// programs every weight with unverified noise (Eq. 16), and returns the
// trial state. The master network is not modified.
//
// An invalid device model or a network with no mapped parameters is reported
// as an error rather than a panic: New is the API boundary every Monte-Carlo
// worker crosses, and a panic there would kill the whole trial pool instead
// of surfacing through the experiment's error path.
func New(master *nn.Network, m device.Model, cycleTable []float64, r *rng.Source) (*Mapped, error) {
	if master == nil {
		return nil, fmt.Errorf("mapping: nil master network")
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("mapping: invalid device model: %w", err)
	}
	net := master.Clone()
	params := net.MappedParams()
	if len(params) == 0 {
		return nil, fmt.Errorf("mapping: network %q has no mapped parameters", master.Name)
	}
	mp := &Mapped{Net: net, Model: m, cycleTable: cycleTable}
	for _, p := range params {
		scale := quant.ScaleFor(p.Data, m.WeightBits)
		mp.scales = append(mp.scales, scale)
		mags, signs := quant.QuantizeInt(p.Data, scale, m.WeightBits)
		des := quant.Dequantize(mags, signs, scale)
		mp.mags = append(mp.mags, mags...)
		mp.signs = append(mp.signs, signs...)
		mp.desired = append(mp.desired, des...)
		mp.total += p.Size()
	}
	mp.loc = NewLocator(params)
	mp.Verified = make([]bool, mp.total)
	nd := m.NumDevices()
	mp.cond = make([]float64, mp.total*nd)
	mp.devScratch = make([]float64, nd)
	mp.pow2 = make([]float64, nd)
	for d := range mp.pow2 {
		mp.pow2[d] = math.Pow(2, float64(d*m.DeviceBits))
	}
	if mp.cycleTable == nil {
		mp.cycleTable = m.CycleTable(200, r.Split())
	}
	mp.ProgramAll(r)
	return mp, nil
}

// TotalWeights returns |W0|, the number of mapped scalar weights.
func (mp *Mapped) TotalWeights() int { return mp.total }

// locate maps a flat weight index to its parameter and in-parameter offset.
func (mp *Mapped) locate(i int) (*nn.Param, int, float64) {
	pi, off := mp.loc.Locate(i)
	return mp.loc.params[pi], off, mp.scales[pi]
}

// Desired returns the flat desired (quantized) weight values.
func (mp *Mapped) Desired() []float64 { return mp.desired }

// ProgramAll performs the initial massively parallel unverified programming
// pass: every weight lands at desired + noise per Eq. 16. It costs zero NWC
// and resets all verification marks.
func (mp *Mapped) ProgramAll(r *rng.Source) {
	for i := 0; i < mp.total; i++ {
		p, off, scale := mp.locate(i)
		e := mp.Model.ProgramNoVerifyDevices(r, mp.devScratch)
		p.Data.Data[off] = mp.desired[i] + mp.signs[i]*e*scale
		mp.Verified[i] = false
		mp.trackCond(i, 0)
	}
	mp.needFull = mp.tracking()
}

// tracking reports whether read-out must be recomputed from the tracked
// conductances — because a nonideality degrades it, a calibration corrects
// it, or both.
func (mp *Mapped) tracking() bool { return mp.inst != nil || mp.cal != nil }

// trackCond records weight i's per-device conductances after a programming
// operation: bit-slice target plus the per-device error just written to
// devScratch (plus extra, the spatial-field component, added to every
// slice), signed by the weight's differential pair.
func (mp *Mapped) trackCond(i int, extra float64) {
	nd := len(mp.devScratch)
	mag, sign := mp.mags[i], mp.signs[i]
	mask := int(1)<<mp.Model.DeviceBits - 1
	for d := 0; d < nd; d++ {
		target := float64((mag >> (d * mp.Model.DeviceBits)) & mask)
		mp.cond[i*nd+d] = sign * (target + mp.devScratch[d] + extra)
	}
}

// ProgramAllSpatial is ProgramAll with an additional per-chip spatial
// variation field (the §2.1 extension): every device's error gains the field
// value at its crossbar coordinates, scaled through each constituent
// device's significance like the temporal term. Write-verify later removes
// both components because it corrects the read-back error, whatever its
// source.
func (mp *Mapped) ProgramAllSpatial(r *rng.Source, field *device.SpatialField) {
	amp := 0.0
	for d := 0; d < mp.Model.NumDevices(); d++ {
		amp += math.Pow(2, float64(d*mp.Model.DeviceBits))
	}
	for i := 0; i < mp.total; i++ {
		p, off, scale := mp.locate(i)
		f := field.AtFlat(i)
		e := mp.Model.ProgramNoVerifyDevices(r, mp.devScratch) + amp*f
		p.Data.Data[off] = mp.desired[i] + mp.signs[i]*e*scale
		mp.Verified[i] = false
		mp.trackCond(i, f)
	}
	mp.needFull = mp.tracking()
}

// markDirty queues weight i for the next incremental SyncRead. A no-op
// without an active nonideality or calibration, or when a full sync is
// already pending.
func (mp *Mapped) markDirty(i int) {
	if mp.tracking() && !mp.needFull {
		mp.dirty = append(mp.dirty, i)
	}
}

// WriteVerifyAt write-verifies weight i, charging its cycles to the bill and
// leaving the programmed value within tolerance of the desired value.
func (mp *Mapped) WriteVerifyAt(i int, r *rng.Source) int {
	p, off, scale := mp.locate(i)
	res, cycles := mp.Model.WriteVerifyDevices(mp.mags[i], r, mp.devScratch)
	p.Data.Data[off] = mp.desired[i] + mp.signs[i]*res*scale
	mp.Verified[i] = true
	mp.CyclesUsed += float64(cycles)
	mp.trackCond(i, 0)
	mp.markDirty(i)
	return cycles
}

// WriteVerifyPrefix write-verifies the first n entries of order (skipping
// already-verified weights) — one granule of the paper's Algorithm 1 loop.
func (mp *Mapped) WriteVerifyPrefix(order []int, n int, r *rng.Source) {
	if n > len(order) {
		n = len(order)
	}
	for _, idx := range order[:n] {
		if !mp.Verified[idx] {
			mp.WriteVerifyAt(idx, r)
		}
	}
}

// NoisyWriteAt re-programs weight i to a new desired float value without
// verification (the in-situ training write): the value is quantized to the
// device grid and lands with fresh Eq. 16 noise. Costs exactly one write
// cycle, matching the paper's in-situ accounting ("the number of writes in
// each iteration ... is equal to the number of weights ... selected for
// update ... as no write-verify is done").
func (mp *Mapped) NoisyWriteAt(i int, value float64, r *rng.Source) {
	p, off, scale := mp.locate(i)
	levels := int(1)<<mp.Model.WeightBits - 1
	sign := 1.0
	if value < 0 {
		sign = -1
	}
	mag := int(abs(value)/scale + 0.5)
	if mag > levels {
		mag = levels
	}
	mp.mags[i] = mag
	mp.signs[i] = sign
	mp.desired[i] = sign * float64(mag) * scale
	e := mp.Model.ProgramNoVerifyDevices(r, mp.devScratch)
	p.Data.Data[off] = mp.desired[i] + sign*e*scale
	mp.Verified[i] = false
	mp.CyclesUsed++
	mp.trackCond(i, 0)
	mp.markDirty(i)
}

// IncrementAt applies one unverified incremental update pulse to weight i,
// requesting a change of delta (float weight units). The landed change
// carries the device's incremental-pulse noise and the conductance clamps to
// the representable magnitude range. Costs one write cycle — the in-situ
// training write (paper §4.2: one write per weight updated, no verify).
//
// Under an active nonideality scenario the pulse is applied to the TRUE
// stored conductances, not to the degraded read-out SyncRead last wrote
// into the network: programming acts on the device, while the nonideal
// view only changes what evaluation sees. Without this distinction each
// accuracy sync would be baked into the device state and the degradation
// would compound once per measurement.
func (mp *Mapped) IncrementAt(i int, delta float64, r *rng.Source) {
	p, off, scale := mp.locate(i)
	levels := float64(int(1)<<mp.Model.WeightBits - 1)
	cur := p.Data.Data[off]
	if mp.tracking() {
		cur = 0
		base := i * len(mp.pow2)
		for d := range mp.pow2 {
			cur += mp.pow2[d] * mp.cond[base+d]
		}
		cur *= scale
	}
	landed := mp.Model.Increment(delta/scale, r) * scale
	next := cur + landed
	// The differential pair saturates at ±full-scale.
	if next > levels*scale {
		next = levels * scale
	} else if next < -levels*scale {
		next = -levels * scale
	}
	p.Data.Data[off] = next
	mp.Verified[i] = false
	mp.CyclesUsed++
	// Track the per-device conductances implied by the incremented value:
	// the integer part bit-slices exactly; the fractional remainder sits on
	// the least-significant device (significance 2^0).
	asign := 1.0
	if next < 0 {
		asign = -1
	}
	magf := abs(next) / scale
	intMag := int(magf)
	mask := int(1)<<mp.Model.DeviceBits - 1
	nd := len(mp.devScratch)
	for d := 0; d < nd; d++ {
		target := float64((intMag >> (d * mp.Model.DeviceBits)) & mask)
		if d == 0 {
			target += magf - float64(intMag)
		}
		mp.cond[i*nd+d] = asign * target
	}
	mp.markDirty(i)
}

// BaselineCycles returns the expected cost of write-verifying every weight —
// the denominator of NWC.
func (mp *Mapped) BaselineCycles() float64 {
	total := 0.0
	for _, mag := range mp.mags {
		total += mp.cycleTable[mag]
	}
	return total
}

// NWC returns the normalized write cycles spent so far: CyclesUsed divided
// by the cost of write-verifying all the weights under the same model.
func (mp *Mapped) NWC() float64 {
	return mp.CyclesUsed / mp.BaselineCycles()
}

// SetNonideal installs a read-time nonideality instance: from now on every
// Accuracy measurement (and this call itself) recomputes the network's
// mapped weights as the degraded read-out of the tracked per-device
// conductances at readTime seconds after programming, instead of the ideal
// time-0 values. Programming operations (write-verify, in-situ writes)
// still act on the true device state: the whole programming pass happens
// at t = 0 and every device — verified or not — degrades for the full
// read time, so write-verify's benefit under degradation is the smaller
// time-0 error it leaves behind, the interaction the scenario sweeps
// study. A nil inst clears the hook; the weights keep their last-synced
// values until the next programming operation rewrites them.
func (mp *Mapped) SetNonideal(inst nonideal.Instance, readTime float64) {
	mp.inst, mp.readTime = inst, readTime
	mp.dirty = mp.dirty[:0]
	if mp.tracking() {
		mp.needFull = true
		mp.SyncRead()
	}
}

// SetCalibration installs a per-trial calibration instance (package calib):
// from now on every SyncRead recomputes the raw read-out of the tracked
// conductances — degraded by the active nonideality when one is installed,
// the true stored values otherwise — refits the calibrator's per-parameter
// correction from its probe budget, and writes the corrected weights into
// the network. Calibration sits strictly after nonideality application:
// the fit sees exactly what a probe read at the configured read time would
// measure. A nil c removes the stage; the weights keep their last-synced
// values until the next programming operation or SetNonideal rewrites them.
func (mp *Mapped) SetCalibration(c *calib.Calibrator) {
	mp.cal = c
	mp.dirty = mp.dirty[:0]
	if c == nil {
		mp.rawRead, mp.corr = nil, nil
		return
	}
	if mp.rawRead == nil {
		mp.rawRead = make([]float64, mp.total)
		mp.corr = make([]calib.Correction, len(mp.loc.params))
	}
	mp.needFull = true
	mp.SyncRead()
}

// SyncRead recomputes mapped weights as the nonideal read-out of their
// per-device conductances at the configured read time. It is a no-op
// without SetNonideal; Accuracy calls it automatically, so explicit calls
// are only needed by callers that evaluate the network outside Accuracy
// (e.g. the Fig. 1 perturbation study). Only weights reprogrammed since
// the previous sync are recomputed (Instance.Apply is pure, so untouched
// weights re-sync to identical values); the first sync after SetNonideal
// or a whole-network reprogram covers everything.
func (mp *Mapped) SyncRead() {
	if !mp.tracking() {
		return
	}
	changed := mp.needFull || len(mp.dirty) > 0
	if mp.needFull {
		for i := 0; i < mp.total; i++ {
			mp.syncWeight(i)
		}
		mp.needFull = false
	} else {
		for _, i := range mp.dirty {
			mp.syncWeight(i)
		}
	}
	mp.dirty = mp.dirty[:0]
	if mp.cal != nil && changed {
		mp.recalibrate()
	}
}

// syncWeight recomputes weight i's read-out from its tracked conductances —
// degraded through the nonideality instance when one is installed — and
// lands it in the network, or in the raw buffer when a calibration stage
// will correct it first.
func (mp *Mapped) syncWeight(i int) {
	p, off, scale := mp.locate(i)
	nd := len(mp.pow2)
	base := i * nd
	eff := 0.0
	if mp.inst == nil {
		for d := 0; d < nd; d++ {
			eff += mp.pow2[d] * mp.cond[base+d]
		}
	} else {
		for d := 0; d < nd; d++ {
			g, sign := mp.cond[base+d], 1.0
			if g < 0 {
				sign, g = -1, -g
			}
			eff += mp.pow2[d] * sign * mp.inst.Apply(base+d, g, mp.readTime)
		}
	}
	v := eff * scale
	if mp.cal != nil {
		mp.rawRead[i] = v
		return
	}
	p.Data.Data[off] = v
}

// recalibrate refits every mapped parameter's correction from the current
// raw read-out and writes the corrected weights into the network. The fit
// treats each parameter as a [rows × cols] matrix with rows = Shape[0] (the
// output dimension — the crossbar's bit lines), matching the im2col mapping
// the cost tier's geometry uses. Fit is pure in (trial key, parameter,
// data), so recalibrating after every programming change keeps results
// independent of how the trial's budget walk is scheduled.
func (mp *Mapped) recalibrate() {
	for pi, p := range mp.loc.params {
		base := mp.loc.offsets[pi]
		n := p.Size()
		rows := p.Data.Shape[0]
		cols := n / rows
		mp.corr[pi] = mp.cal.Fit(pi, mp.desired[base:base+n], mp.rawRead[base:base+n], rows, cols)
		c := &mp.corr[pi]
		out := p.Data.Data
		for j, v := range mp.rawRead[base : base+n] {
			out[j] = c.Apply(j, v)
		}
	}
}

// Corrections returns the last fitted per-parameter corrections (nil without
// SetCalibration), for diagnostics and tests.
func (mp *Mapped) Corrections() []calib.Correction { return mp.corr }

// SetEvalArena shares a scratch arena with the compiled evaluation engine,
// so successive trials handled by the same Monte-Carlo worker reuse one
// arena instead of growing a fresh one each. Call it before the first
// Accuracy measurement; the arena must not be used concurrently.
func (mp *Mapped) SetEvalArena(a *tensor.Arena) { mp.evalArena = a }

// SetKernel selects the kernel backend the compiled evaluation plans route
// their dense primitives through (nil keeps the scalar default). Backends
// are bit-identical, so this changes evaluation speed, never results. Call
// it before the first Accuracy measurement, alongside SetEvalArena.
func (mp *Mapped) SetKernel(k kernel.Backend) { mp.evalKern = k }

// Accuracy evaluates the programmed network's top-1 accuracy (%) over the
// given evaluation set. It runs through a compiled evaluation plan (package
// eval) — bit-for-bit identical to the legacy Forward path but with zero
// steady-state allocations. The legacy per-layer Forward remains the
// fallback: pinned for the rest of the trial when the network contains a
// layer outside the PlanLayer contract (eval.ErrUnsupported), or used for
// just this call on any other evaluator error, reproducing the legacy
// behaviour for malformed inputs.
func (mp *Mapped) Accuracy(x *tensor.Tensor, y []int, batch int) float64 {
	mp.SyncRead()
	if !mp.evalLegacy {
		if mp.ev == nil {
			mp.ev = eval.NewEvaluatorKernel(mp.Net, mp.evalArena, mp.evalKern)
		}
		acc, err := mp.ev.Accuracy(x, y, batch)
		if err == nil {
			return acc
		}
		if errors.Is(err, eval.ErrUnsupported) {
			mp.evalLegacy = true
		}
	}
	correct := 0
	for _, b := range data.Batches(x, y, batch) {
		correct += mp.Net.CountCorrect(b.X, b.Y)
	}
	return 100 * float64(correct) / float64(len(y))
}

// ProgrammedError returns the current per-weight deviation (programmed −
// desired) in float weight units, for diagnostics and tests.
func (mp *Mapped) ProgrammedError() []float64 {
	out := make([]float64, mp.total)
	for i := 0; i < mp.total; i++ {
		p, off, _ := mp.locate(i)
		out[i] = p.Data.Data[off] - mp.desired[i]
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
