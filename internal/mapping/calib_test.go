package mapping

import (
	"math"
	"testing"

	"swim/internal/calib"
	"swim/internal/device"
	"swim/internal/models"
	"swim/internal/nonideal"
	"swim/internal/rng"
)

// gainInstance scales every conductance by a fixed factor — a purely
// systematic multiplicative degradation an affine fit can undo exactly.
type gainInstance struct{ g float64 }

func (gi gainInstance) Apply(_ int, g float64, _ float64) float64 { return gi.g * g }

func mustCalibrator(t *testing.T, spec string, seed uint64) *calib.Calibrator {
	t.Helper()
	m, err := calib.Parse(spec)
	if err != nil {
		t.Fatalf("calib.Parse(%q): %v", spec, err)
	}
	return m.NewTrial(rng.New(seed))
}

// A noiseless device programs conductances exactly, so a pure-gain read-out
// degradation is exactly affine in the desired weights and the fitted
// correction must recover them to rounding.
func TestCalibrationRecoversGainDegradation(t *testing.T) {
	r := rng.New(1)
	net := models.LeNet(10, 4, r)
	dm := device.Default(4, 0) // sigma 0: programming lands exactly on target
	mp := mustNew(t, net, dm, dm.CycleTable(50, rng.New(2)), rng.New(3))

	mp.SetNonideal(gainInstance{g: 0.8}, 0)
	degraded := 0.0
	for _, e := range mp.ProgrammedError() {
		degraded += math.Abs(e)
	}
	if degraded == 0 {
		t.Fatal("gain degradation left read-out exact — test is vacuous")
	}

	// A large budget probes every column, so the fit sees the full matrix.
	mp.SetCalibration(mustCalibrator(t, "gainoffset:probes=4096", 5))
	for i, e := range mp.ProgrammedError() {
		if math.Abs(e) > 1e-9 {
			t.Fatalf("weight %d: calibrated error %g, want ~0", i, e)
		}
	}

	// Removing the stage keeps the last corrected values but the next full
	// sync reverts to the raw degraded read-out.
	mp.SetCalibration(nil)
	mp.needFull = true
	mp.SyncRead()
	raw := 0.0
	for _, e := range mp.ProgrammedError() {
		raw += math.Abs(e)
	}
	if math.Abs(raw-degraded) > 1e-9*(1+degraded) {
		t.Fatalf("after clearing calibration, residual %g != uncalibrated %g", raw, degraded)
	}
}

// A bounded probe budget cannot see the whole matrix, but the correction
// must still strictly reduce the aggregate drift error — the tier's whole
// reason to exist — and never depend on sync increments.
func TestCalibrationReducesDriftError(t *testing.T) {
	mp, dm := testNetAndDevice(t)
	inst := nonideal.Drift{Nu: 0.1, NuStd: 0.02, T0: 1}.NewTrial(dm, rng.New(11))
	mp.SetNonideal(inst, 86400)
	before := 0.0
	for _, e := range mp.ProgrammedError() {
		before += math.Abs(e)
	}
	mp.SetCalibration(mustCalibrator(t, "gainoffset:probes=8", 7))
	after := 0.0
	for _, e := range mp.ProgrammedError() {
		after += math.Abs(e)
	}
	if after >= before {
		t.Fatalf("calibration did not reduce drift error: %g -> %g", before, after)
	}
}

// Incremental syncing under calibration must be bit-identical to a full
// recompute: the raw read-out is maintained incrementally but the refit
// always covers the whole matrix.
func TestCalibrationIncrementalMatchesFull(t *testing.T) {
	mp, dm := testNetAndDevice(t)
	inst := nonideal.Drift{Nu: 0.05, NuStd: 0.01, T0: 1}.NewTrial(dm, rng.New(31))
	mp.SetNonideal(inst, 3600)
	mp.SetCalibration(mustCalibrator(t, "pertile:probes=4,tilerows=32,tilecols=32", 33))
	r := rng.New(32)
	for i := 100; i < 300; i++ {
		mp.WriteVerifyAt(i, r)
	}
	mp.IncrementAt(5, 0.01, r)
	mp.SyncRead() // incremental: only the dirty weights re-read, then refit
	incremental := make([]float64, mp.total)
	for i := range incremental {
		p, off, _ := mp.locate(i)
		incremental[i] = p.Data.Data[off]
	}
	mp.needFull = true
	mp.SyncRead() // full recompute of every weight
	for i := range incremental {
		p, off, _ := mp.locate(i)
		if p.Data.Data[off] != incremental[i] {
			t.Fatalf("weight %d: incremental calibrated sync %v != full %v", i, incremental[i], p.Data.Data[off])
		}
	}
}

// Calibration without a nonideality must fit against the device's stored
// conductances (programming noise only) and keep SyncRead well-defined.
func TestCalibrationWithoutNonideality(t *testing.T) {
	mp, _ := testNetAndDevice(t)
	before := 0.0
	for _, e := range mp.ProgrammedError() {
		before += math.Abs(e)
	}
	mp.SetCalibration(mustCalibrator(t, "gainoffset:probes=8", 21))
	after := 0.0
	for _, e := range mp.ProgrammedError() {
		after += math.Abs(e)
	}
	// Programming noise is zero-mean and column-independent, so a bounded
	// probe fit may not help much — but it must not blow the error up.
	if after > 2*before {
		t.Fatalf("calibration amplified programming error: %g -> %g", before, after)
	}
}
