package mapping

import (
	"testing"

	"swim/internal/device"
	"swim/internal/models"
	"swim/internal/nn"
	"swim/internal/rng"
)

func TestLocatorAgreesWithLinearScan(t *testing.T) {
	net := models.LeNet(10, 4, rng.New(1))
	params := net.MappedParams()
	loc := NewLocator(params)
	if loc.Total() != net.NumMappedWeights() {
		t.Fatalf("Total = %d, want %d", loc.Total(), net.NumMappedWeights())
	}
	// Reference: the O(params) scan the locator replaces.
	scan := func(flat int) (int, int) {
		for i, p := range params {
			if flat < p.Size() {
				return i, flat
			}
			flat -= p.Size()
		}
		t.Fatalf("flat index %d out of range", flat)
		return 0, 0
	}
	for _, flat := range []int{0, 1, 149, 150, 151, loc.Total() / 2, loc.Total() - 1} {
		wantPi, wantOff := scan(flat)
		pi, off := loc.Locate(flat)
		if pi != wantPi || off != wantOff {
			t.Fatalf("Locate(%d) = (%d,%d), want (%d,%d)", flat, pi, off, wantPi, wantOff)
		}
		p, off2 := loc.Param(flat)
		if p != params[wantPi] || off2 != wantOff {
			t.Fatalf("Param(%d) returned wrong param/offset", flat)
		}
	}
}

func TestLocatorPanicsOutOfRange(t *testing.T) {
	loc := NewLocator(models.LeNet(10, 4, rng.New(1)).MappedParams())
	for _, bad := range []int{-1, loc.Total()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Locate(%d) did not panic", bad)
				}
			}()
			loc.Locate(bad)
		}()
	}
}

func TestNewRejectsInvalidInputs(t *testing.T) {
	net := models.LeNet(10, 4, rng.New(1))
	good := device.Default(4, 0.5)

	if _, err := New(nil, good, nil, rng.New(2)); err == nil {
		t.Fatal("nil master accepted")
	}
	bad := good
	bad.WeightBits = 0
	if _, err := New(net, bad, nil, rng.New(2)); err == nil {
		t.Fatal("invalid device model accepted")
	}
	// A network with no mapped parameters cannot be programmed.
	empty := nn.NewNetwork("empty", nn.NewSequential("trunk", nn.NewFlatten()),
		nn.NewSoftmaxCrossEntropy())
	if _, err := New(empty, good, nil, rng.New(2)); err == nil {
		t.Fatal("unmappable network accepted")
	}
}
