package mapping

import (
	"math"
	"testing"

	"swim/internal/nonideal"
	"swim/internal/rng"
)

// identityInstance leaves conductances untouched — SyncRead through it must
// reproduce the programmed weights up to the reconstruction rounding of the
// per-device decomposition.
type identityInstance struct{}

func (identityInstance) Apply(_ int, g float64, _ float64) float64 { return g }

func TestCondTrackingReconstructsWeights(t *testing.T) {
	mp, _ := testNetAndDevice(t)
	before := make([]float64, mp.total)
	for i := range before {
		p, off, _ := mp.locate(i)
		before[i] = p.Data.Data[off]
	}
	mp.SetNonideal(identityInstance{}, 0)
	for i := range before {
		p, off, scale := mp.locate(i)
		if d := math.Abs(p.Data.Data[off] - before[i]); d > 1e-9*scale {
			t.Fatalf("weight %d: identity read-out %v != programmed %v", i, p.Data.Data[off], before[i])
		}
	}
}

// Write-verify must reset a weight's tracked device state, so a verified
// weight read through an identity instance lands within tolerance again.
func TestWriteVerifyResetsTrackedState(t *testing.T) {
	mp, dm := testNetAndDevice(t)
	mp.SetNonideal(identityInstance{}, 0)
	r := rng.New(9)
	for i := 0; i < 50; i++ {
		mp.WriteVerifyAt(i, r)
	}
	mp.SyncRead()
	for i := 0; i < 50; i++ {
		p, off, scale := mp.locate(i)
		// Aggregate residual of verified slices is bounded by the per-slice
		// tolerance times the total slice significance.
		bound := dm.Tolerance * scale * math.Pow(2, float64(dm.NumDevices()*dm.DeviceBits))
		if d := math.Abs(p.Data.Data[off] - mp.desired[i]); d > bound {
			t.Fatalf("verified weight %d off by %v (> %v)", i, d, bound)
		}
	}
}

// Drift must lower accuracy-relevant conductance magnitudes over time, and
// re-verifying must not undo the read-time degradation (the device still
// drifts after being re-programmed).
func TestDriftDegradesReadout(t *testing.T) {
	mp, dm := testNetAndDevice(t)
	drift := nonideal.Drift{Nu: 0.1, NuStd: 0, T0: 1}
	inst := drift.NewTrial(dm, rng.New(11))

	mp.SetNonideal(inst, 0)
	at0 := mp.ProgrammedError()
	mp.SetNonideal(inst, 86400)
	day := 0
	for i := range at0 {
		p, off, _ := mp.locate(i)
		if math.Abs(p.Data.Data[off]) < math.Abs(mp.desired[i]+at0[i]) {
			day++
		}
	}
	if day < mp.total/2 {
		t.Fatalf("only %d/%d weights shrank after a day of drift", day, mp.total)
	}
}

// Incremental syncing (only reprogrammed weights recomputed) must be
// bit-identical to a full recompute of every weight.
func TestIncrementalSyncMatchesFull(t *testing.T) {
	mp, dm := testNetAndDevice(t)
	inst := nonideal.Drift{Nu: 0.05, NuStd: 0.01, T0: 1}.NewTrial(dm, rng.New(31))
	mp.SetNonideal(inst, 3600)
	r := rng.New(32)
	for i := 100; i < 300; i++ {
		mp.WriteVerifyAt(i, r)
	}
	mp.IncrementAt(5, 0.01, r)
	mp.SyncRead() // incremental: only the dirty weights above
	incremental := make([]float64, mp.total)
	for i := range incremental {
		p, off, _ := mp.locate(i)
		incremental[i] = p.Data.Data[off]
	}
	mp.needFull = true
	mp.SyncRead() // full recompute of every weight
	for i := range incremental {
		p, off, _ := mp.locate(i)
		if p.Data.Data[off] != incremental[i] {
			t.Fatalf("weight %d: incremental sync %v != full sync %v", i, incremental[i], p.Data.Data[off])
		}
	}
}

// In-situ increments must act on the TRUE device state, not the degraded
// read-out SyncRead wrote into the network — otherwise every accuracy sync
// would be baked into the conductances and degradation would compound.
func TestIncrementActsOnTrueState(t *testing.T) {
	mp, dm := testNetAndDevice(t)
	// Pick a weight with a solid magnitude so the degradation is visible.
	pick := -1
	for i := 0; i < mp.total; i++ {
		if math.Abs(mp.desired[i]) > 0 {
			_, _, scale := mp.locate(i)
			if math.Abs(mp.desired[i])/scale > 3 {
				pick = i
				break
			}
		}
	}
	if pick < 0 {
		t.Fatal("no suitable weight")
	}
	stored := func() float64 { // true stored value reconstructed from cond
		_, _, scale := mp.locate(pick)
		nd := dm.NumDevices()
		v := 0.0
		for d := 0; d < nd; d++ {
			v += math.Pow(2, float64(d*dm.DeviceBits)) * mp.cond[pick*nd+d]
		}
		return v * scale
	}
	before := stored()
	// Heavy drift: after a day the read-out is ~3% of the stored value.
	mp.SetNonideal(nonideal.Drift{Nu: 0.3, NuStd: 0, T0: 1}.NewTrial(dm, rng.New(13)), 86400)
	mp.IncrementAt(pick, 0, rng.New(14)) // zero-delta pulse: only small write noise lands
	after := stored()
	if math.Abs(after-before) > 0.5*math.Abs(before) {
		t.Fatalf("increment compounded the degraded read-out into the device state: %v -> %v", before, after)
	}
}

// The nonideality hook must not consume or disturb any RNG stream: two
// identically-seeded mappings, one with a nonideality applied and cleared,
// must program identical values for the rest of the trial.
func TestNonidealDoesNotPerturbStreams(t *testing.T) {
	mpA, _ := testNetAndDevice(t)
	mpB, _ := testNetAndDevice(t)
	mpB.SetNonideal(nonideal.Drift{Nu: 0.05, NuStd: 0.01, T0: 1}.NewTrial(mpB.Model, rng.New(5)), 3600)
	rA, rB := rng.New(21), rng.New(21)
	for i := 0; i < 20; i++ {
		if mpA.WriteVerifyAt(i, rA) != mpB.WriteVerifyAt(i, rB) {
			t.Fatalf("weight %d: cycle counts diverged under nonideality", i)
		}
	}
	if mpA.NWC() != mpB.NWC() {
		t.Fatalf("NWC diverged: %v vs %v", mpA.NWC(), mpB.NWC())
	}
}
