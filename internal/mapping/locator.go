package mapping

import (
	"fmt"

	"swim/internal/nn"
)

// Locator resolves flat mapped-weight indices — the ordering every selector,
// sensitivity vector and Monte-Carlo trial shares — to their (parameter,
// offset) location in O(1) via a dense index table. One Locator serves any
// number of lookups over the same parameter list; Mapped keeps one
// internally, and experiment code that works on raw networks (e.g. the
// Fig. 1 perturbation study) builds its own instead of re-scanning the
// parameter list per lookup.
type Locator struct {
	params  []*nn.Param
	paramOf []int32 // flat index -> parameter index
	offsets []int   // parameter index -> flat start index
}

// NewLocator builds the index table for params in MappedParams order.
func NewLocator(params []*nn.Param) *Locator {
	l := &Locator{params: params}
	total := 0
	for _, p := range params {
		total += p.Size()
	}
	l.paramOf = make([]int32, total)
	l.offsets = make([]int, len(params))
	flat := 0
	for pi, p := range params {
		l.offsets[pi] = flat
		for k := 0; k < p.Size(); k++ {
			l.paramOf[flat] = int32(pi)
			flat++
		}
	}
	return l
}

// Total returns the number of flat weights covered.
func (l *Locator) Total() int { return len(l.paramOf) }

// Locate returns the parameter index and in-parameter offset of flat weight
// i. It panics on an out-of-range index: flat indices are produced by the
// same code that sizes the table, so a bad one is a programming error, not a
// recoverable condition.
func (l *Locator) Locate(i int) (param, offset int) {
	if i < 0 || i >= len(l.paramOf) {
		panic(fmt.Sprintf("mapping: weight index %d out of range [0,%d)", i, len(l.paramOf)))
	}
	pi := int(l.paramOf[i])
	return pi, i - l.offsets[pi]
}

// Param returns the parameter holding flat weight i and the offset within it.
func (l *Locator) Param(i int) (*nn.Param, int) {
	pi, off := l.Locate(i)
	return l.params[pi], off
}
