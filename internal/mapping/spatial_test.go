package mapping

import (
	"math"
	"testing"

	"swim/internal/device"
	"swim/internal/models"
	"swim/internal/rng"
	"swim/internal/stat"
)

func TestProgramAllSpatialAddsCorrelatedError(t *testing.T) {
	r := rng.New(1)
	net := models.LeNet(10, 4, r)
	dm := device.Default(4, 0.0) // isolate the spatial component
	mp := mustNew(t, net, dm, dm.CycleTable(20, rng.New(2)), rng.New(3))

	side := 256
	cfg := device.SpatialConfig{GlobalStd: 0, LocalStd: 0.3, CorrLength: 32, Rows: side, Cols: side}
	field := device.NewSpatialField(cfg, rng.New(4))
	mp.ProgramAllSpatial(rng.New(5), field)

	errs := mp.ProgrammedError()
	// Errors of adjacent weights should correlate strongly (same field
	// region); distant weights should not. Compare |e_i - e_{i+1}| against
	// |e_i - e_{i+half}| in LSB units.
	var near, far stat.Welford
	half := mp.TotalWeights() / 2
	for i := 0; i+1 < 4000; i++ {
		_, _, s1 := mp.locate(i)
		_, _, s2 := mp.locate(i + 1)
		_, _, s3 := mp.locate(i + half)
		a, b, c := errs[i]/s1, errs[i+1]/s2, errs[i+half]/s3
		near.Add(math.Abs(math.Abs(a) - math.Abs(b)))
		far.Add(math.Abs(math.Abs(a) - math.Abs(c)))
	}
	if near.Mean() >= far.Mean() {
		t.Fatalf("spatial errors not locally correlated: near %.4f vs far %.4f",
			near.Mean(), far.Mean())
	}
}

func TestWriteVerifyRemovesSpatialError(t *testing.T) {
	r := rng.New(1)
	net := models.LeNet(10, 4, r)
	dm := device.Default(4, 0.1)
	mp := mustNew(t, net, dm, dm.CycleTable(20, rng.New(2)), rng.New(3))
	field := device.NewSpatialField(device.DefaultSpatial(256, 256), rng.New(4))
	mp.ProgramAllSpatial(rng.New(5), field)

	wr := rng.New(6)
	for i := 0; i < 200; i++ {
		mp.WriteVerifyAt(i, wr)
	}
	errs := mp.ProgrammedError()
	for i := 0; i < 200; i++ {
		_, _, scale := mp.locate(i)
		if math.Abs(errs[i])/scale > dm.Tolerance+1e-9 {
			t.Fatalf("weight %d still carries spatial error %.4f LSB after write-verify",
				i, math.Abs(errs[i])/scale)
		}
	}
}
