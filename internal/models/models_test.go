package models

import (
	"testing"

	"swim/internal/rng"
	"swim/internal/tensor"
)

func randBatch(r *rng.Source, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	for i := range t.Data {
		t.Data[i] = r.Gauss(0, 1)
	}
	return t
}

func TestLeNetShapesAndSize(t *testing.T) {
	r := rng.New(1)
	net := LeNet(10, 4, r)
	out := net.Forward(randBatch(r, 2, 1, 28, 28), false)
	if out.Shape[0] != 2 || out.Shape[1] != 10 {
		t.Fatalf("lenet output shape %v", out.Shape)
	}
	// Classic LeNet-5 weight count (conv 150+2400, fc 48000+10080+840).
	if got := net.NumMappedWeights(); got != 61470 {
		t.Fatalf("lenet mapped weights = %d, want 61470", got)
	}
}

func TestConvNetShapes(t *testing.T) {
	r := rng.New(2)
	net := ConvNet(10, 4, 6, r)
	out := net.Forward(randBatch(r, 2, 3, 32, 32), false)
	if out.Shape[0] != 2 || out.Shape[1] != 10 {
		t.Fatalf("convnet output shape %v", out.Shape)
	}
}

func TestResNet18ShapesAndBlocks(t *testing.T) {
	r := rng.New(3)
	net := ResNet18(40, 4, 6, r)
	out := net.Forward(randBatch(r, 2, 3, 32, 32), false)
	if out.Shape[0] != 2 || out.Shape[1] != 40 {
		t.Fatalf("resnet output shape %v", out.Shape)
	}
	// 17 mapped conv weights (stem + 16 block convs + 3 projections) + fc.
	mapped := net.MappedParams()
	if len(mapped) != 1+16+3+1 {
		t.Fatalf("resnet mapped param tensors = %d, want 21", len(mapped))
	}
}

func TestResNetWidthScalesParams(t *testing.T) {
	r := rng.New(4)
	small := ResNet18(10, 4, 6, r).NumMappedWeights()
	big := ResNet18(10, 8, 6, rng.New(4)).NumMappedWeights()
	if big <= small*3 { // conv params scale ~quadratically in width
		t.Fatalf("width scaling looks wrong: w4=%d w8=%d", small, big)
	}
}

func TestLeNetFullPasses(t *testing.T) {
	// The architecture must run a full forward+backward+second-backward
	// without shape errors and with a positive initial loss.
	r := rng.New(5)
	net := LeNet(10, 4, rng.New(6))
	x := randBatch(r, 2, 1, 28, 28)
	net.ZeroGrad()
	if loss := net.LossGrad(x, []int{0, 1}, true); loss <= 0 {
		t.Fatalf("lenet loss = %v", loss)
	}
	net.ZeroHess()
	net.AccumulateHessian(x, []int{0, 1})
}

func TestConvNetAndResNetFullPasses(t *testing.T) {
	r := rng.New(7)
	cn := ConvNet(10, 4, 6, rng.New(8))
	x := randBatch(r, 2, 3, 32, 32)
	cn.ZeroGrad()
	cn.LossGrad(x, []int{0, 1}, true)
	cn.ZeroHess()
	cn.AccumulateHessian(x, []int{0, 1})

	rn := ResNet18(10, 4, 6, rng.New(9))
	rn.ZeroGrad()
	rn.LossGrad(x, []int{0, 1}, true)
	rn.ZeroHess()
	rn.AccumulateHessian(x, []int{0, 1})
	for _, p := range rn.Params() {
		for _, v := range p.Hess.Data {
			if v < 0 {
				t.Fatalf("resnet %s has negative hessian entry", p.Name)
			}
		}
	}
}
