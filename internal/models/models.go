// Package models builds the three network architectures the paper evaluates:
// LeNet (MNIST, Table 1 / Fig. 1), ConvNet (CIFAR-10, Fig. 2a — the
// DNN+NeuroSim VGG-style network) and ResNet-18 (CIFAR-10 and Tiny ImageNet,
// Fig. 2b/2c). ConvNet and ResNet-18 are width-slimmed for the single-core
// simulation budget (DESIGN.md §3): the topology — depth, skip connections,
// batch-norm placement, pooling, quantization points — is preserved exactly,
// only channel counts shrink, so every backpropagation rule of paper §3.3 is
// exercised.
//
// Activations are fake-quantized after every ReLU (paper §4.3/4.4: "both the
// weights and activation are quantized", 4-bit for LeNet, 6-bit for the
// CIFAR/TinyImageNet models).
package models

import (
	"fmt"

	"swim/internal/nn"
	"swim/internal/rng"
)

// LeNet builds the classic LeNet-5 topology for 1×28×28 inputs (62k weights;
// the paper's LeNet variant reports 1.05e5 — same architecture family, the
// counts differ only in the FC head sizing).
func LeNet(classes, actBits int, r *rng.Source) *nn.Network {
	trunk := nn.NewSequential("lenet",
		nn.NewConv2D("conv1", 1, 28, 28, 6, 5, 5, 1, 2, r), // 6×28×28
		nn.NewReLU(),
		nn.NewQuantAct("q1", actBits, 1),
		nn.NewMaxPool2D("pool1", 2, 2),                      // 6×14×14
		nn.NewConv2D("conv2", 6, 14, 14, 16, 5, 5, 1, 0, r), // 16×10×10
		nn.NewReLU(),
		nn.NewQuantAct("q2", actBits, 1),
		nn.NewMaxPool2D("pool2", 2, 2), // 16×5×5
		nn.NewFlatten(),
		nn.NewLinear("fc1", 16*5*5, 120, r),
		nn.NewReLU(),
		nn.NewQuantAct("q3", actBits, 1),
		nn.NewLinear("fc2", 120, 84, r),
		nn.NewReLU(),
		nn.NewQuantAct("q4", actBits, 1),
		nn.NewLinear("fc3", 84, classes, r),
	)
	return nn.NewNetwork("lenet", trunk, nn.NewSoftmaxCrossEntropy())
}

// ConvNet builds the VGG-style ConvNet of DNN+NeuroSim (paper ref. [6]) for
// 3×32×32 inputs: two conv-conv-pool stages followed by an FC head. width is
// the first-stage channel count (the paper-scale model corresponds to
// width 128).
func ConvNet(classes, width, actBits int, r *rng.Source) *nn.Network {
	c1, c2 := width, 2*width
	trunk := nn.NewSequential("convnet",
		nn.NewConv2D("conv1", 3, 32, 32, c1, 3, 3, 1, 1, r),
		nn.NewReLU(),
		nn.NewQuantAct("q1", actBits, 1),
		nn.NewConv2D("conv2", c1, 32, 32, c1, 3, 3, 1, 1, r),
		nn.NewReLU(),
		nn.NewQuantAct("q2", actBits, 1),
		nn.NewMaxPool2D("pool1", 2, 2), // c1×16×16
		nn.NewConv2D("conv3", c1, 16, 16, c2, 3, 3, 1, 1, r),
		nn.NewReLU(),
		nn.NewQuantAct("q3", actBits, 1),
		nn.NewConv2D("conv4", c2, 16, 16, c2, 3, 3, 1, 1, r),
		nn.NewReLU(),
		nn.NewQuantAct("q4", actBits, 1),
		nn.NewMaxPool2D("pool2", 2, 2), // c2×8×8
		nn.NewFlatten(),
		nn.NewLinear("fc1", c2*8*8, 8*width, r),
		nn.NewReLU(),
		nn.NewQuantAct("q5", actBits, 1),
		nn.NewLinear("fc2", 8*width, classes, r),
	)
	return nn.NewNetwork("convnet", trunk, nn.NewSoftmaxCrossEntropy())
}

// basicBlock builds one ResNet basic block (conv-bn-relu-conv-bn + skip).
// The projection shortcut (1×1 conv + BN) appears exactly when stride ≠ 1 or
// the channel count changes, as in He et al.
func basicBlock(name string, inC, outC, h, w, stride, actBits int, r *rng.Source) (nn.Layer, int, int) {
	oh, ow := (h+2-3)/stride+1, (w+2-3)/stride+1
	body := nn.NewSequential(name+".body",
		nn.NewConv2D(name+".conv1", inC, h, w, outC, 3, 3, stride, 1, r),
		nn.NewBatchNorm2D(name+".bn1", outC),
		nn.NewReLU(),
		nn.NewQuantAct(name+".q1", actBits, 1),
		nn.NewConv2D(name+".conv2", outC, oh, ow, outC, 3, 3, 1, 1, r),
		nn.NewBatchNorm2D(name+".bn2", outC),
	)
	var shortcut nn.Layer
	if stride != 1 || inC != outC {
		shortcut = nn.NewSequential(name+".short",
			nn.NewConv2D(name+".proj", inC, h, w, outC, 1, 1, stride, 0, r),
			nn.NewBatchNorm2D(name+".bnp", outC),
		)
	}
	return nn.NewResidual(name, body, shortcut), oh, ow
}

// ResNet18 builds the CIFAR-style ResNet-18 (3×3 stem, four 2-block stages,
// global average pool) for 3×32×32 inputs. width is the stem channel count;
// the paper-scale model corresponds to width 64.
func ResNet18(classes, width, actBits int, r *rng.Source) *nn.Network {
	if width < 1 {
		panic(fmt.Sprintf("models: bad width %d", width))
	}
	layers := []nn.Layer{
		nn.NewConv2D("stem", 3, 32, 32, width, 3, 3, 1, 1, r),
		nn.NewBatchNorm2D("stem.bn", width),
		nn.NewReLU(),
		nn.NewQuantAct("stem.q", actBits, 1),
	}
	h, w := 32, 32
	inC := width
	stages := []struct {
		c      int
		stride int
	}{
		{width, 1}, {2 * width, 2}, {4 * width, 2}, {8 * width, 2},
	}
	for si, st := range stages {
		for bi := 0; bi < 2; bi++ {
			stride := 1
			if bi == 0 {
				stride = st.stride
			}
			name := fmt.Sprintf("layer%d.%d", si+1, bi)
			var block nn.Layer
			block, h, w = basicBlock(name, inC, st.c, h, w, stride, actBits, r)
			layers = append(layers, block,
				nn.NewReLU(),
				nn.NewQuantAct(name+".qout", actBits, 1))
			inC = st.c
		}
	}
	layers = append(layers,
		nn.NewGlobalAvgPool("gap", h),
		nn.NewFlatten(),
		nn.NewLinear("fc", inC, classes, r),
	)
	return nn.NewNetwork("resnet18", nn.NewSequential("resnet18", layers...), nn.NewSoftmaxCrossEntropy())
}
