package experiments

import (
	"context"
	"fmt"
	"io"

	"swim/internal/data"
	"swim/internal/device"
	"swim/internal/eval"
	"swim/internal/kernel"
	"swim/internal/mapping"
	"swim/internal/mc"
	"swim/internal/nn"
	"swim/internal/nonideal"
	"swim/internal/plot"
	"swim/internal/program"
	"swim/internal/quant"
	"swim/internal/rng"
	"swim/internal/stat"
	"swim/internal/train"
)

// Fig1Config parameterizes the Fig. 1 correlation study.
type Fig1Config struct {
	// NumWeights is how many randomly sampled weights to perturb.
	NumWeights int
	// Repeats is the Monte-Carlo repeats per weight (paper: 100).
	Repeats int
	// SigmaPerturb is the std of the additive perturbation in weight-LSB
	// units. The paper perturbs "with the same additive Gaussian noise based
	// on [13]" — large enough that single weights measurably move accuracy.
	SigmaPerturb float64
	// EvalN caps the evaluation subset (accuracy must be re-measured per
	// perturbation, which dominates the cost).
	EvalN int
	// EvalBatch is the accuracy-measurement batch size (0 = 64).
	EvalBatch int
	// Rank names the selector-backed registry policy whose ordering
	// stratifies half the sample across the sensitivity range ("" = swim).
	Rank string
	Seed uint64
	// Nonideal, when non-empty, maps every trial clone onto ideal
	// (noise-free) devices degraded by this read-time scenario before
	// perturbing — does the sensitivity ranking still predict accuracy
	// drops on drifted or faulty hardware? ReadTime is the scenario's
	// evaluation instant in seconds.
	Nonideal []nonideal.Nonideality
	ReadTime float64
	// Kernel is a kernel-backend spec for the per-clone compiled
	// evaluators; "" = scalar. Bit-identical across backends.
	Kernel string
}

// DefaultFig1 returns the Fig. 1 configuration.
func DefaultFig1() Fig1Config {
	return Fig1Config{NumWeights: 100, Repeats: 6, SigmaPerturb: 3.0, EvalN: 300,
		EvalBatch: 64, Rank: "swim", Seed: 77}
}

// Fig1Result holds the per-weight scatter data of Fig. 1 and the correlation
// coefficients the paper quotes (|r| low for magnitude, ≈0.83 for the second
// derivative).
type Fig1Result struct {
	Magnitude []float64 // |w| of each sampled weight
	Hess      []float64 // second derivative of each sampled weight
	Drop      []float64 // mean accuracy drop (percentage points)

	PearsonMagnitude float64
	PearsonHess      float64
	SpearmanHess     float64
}

// Fig1 reproduces the paper's Fig. 1 experiment: perturb individual weights
// with value-independent Gaussian noise, record the mean accuracy drop over
// repeats, and correlate the drop against weight magnitude (Fig. 1a — weak)
// and against the second derivative (Fig. 1b — strong). The sampled weights
// are measured in parallel via mc.Map: every weight perturbs its own clone
// of the master network, so the drops are deterministic in the seed and
// independent of the worker count.
func Fig1(w *Workload, cfg Fig1Config) (Fig1Result, error) {
	batch := cfg.EvalBatch
	if batch <= 0 {
		batch = 64
	}
	var kern kernel.Backend
	if cfg.Kernel != "" {
		k, err := kernel.Parse(cfg.Kernel)
		if err != nil {
			return Fig1Result{}, fmt.Errorf("fig1 on %s: %w", w.Name, err)
		}
		kern = k
	}
	r := rng.New(cfg.Seed)
	evalX, evalY := data.Subset(w.DS.TestX, w.DS.TestY, cfg.EvalN)
	baseAcc := train.Evaluate(w.TrialNet(), evalX, evalY, batch)

	// Per-parameter quantization scales convert LSB-unit perturbations to
	// float weight units, exactly as the mapping path does.
	masterParams := w.Net.MappedParams()
	scales := make([]float64, len(masterParams))
	for i, p := range masterParams {
		scales[i] = quant.ScaleFor(p.Data, w.WeightBits)
	}
	total := len(w.Weights)

	// Sample half the weights uniformly and half stratified across the
	// ranking of the configured selector policy. Pure uniform sampling lands
	// almost entirely on zero-sensitivity weights (the tie-break ablation
	// shows they are the majority), which pins most drops at exactly zero
	// and attenuates the correlations; the paper's scatter visibly spans the
	// sensitivity range.
	rankName := cfg.Rank
	if rankName == "" {
		rankName = "swim"
	}
	pol, err := program.Lookup(rankName)
	if err != nil {
		return Fig1Result{}, fmt.Errorf("fig1 on %s: %w", w.Name, err)
	}
	ranked, ok := pol.(program.SelectorBacked)
	if !ok {
		return Fig1Result{}, fmt.Errorf("fig1 on %s: policy %q has no weight ranking", w.Name, rankName)
	}
	sel, err := ranked.Selector(&program.Env{Net: w.Net, Hess: w.Hess, Weights: w.Weights})
	if err != nil {
		return Fig1Result{}, fmt.Errorf("fig1 on %s: %w", w.Name, err)
	}
	order := sel.Order(rng.New(cfg.Seed ^ 0x0a9de9))
	span := len(order) / 2
	picks := make([]int, 0, cfg.NumWeights)
	for k := 0; k < cfg.NumWeights/2; k++ {
		picks = append(picks, order[k*span/(cfg.NumWeights/2)])
	}
	for len(picks) < cfg.NumWeights {
		picks = append(picks, r.Intn(total))
	}

	// Resolve every pick to (param index, offset) once on the master — the
	// clone layout is identical — instead of building a locator per trial.
	loc := mapping.NewLocator(masterParams)
	pis := make([]int, len(picks))
	offs := make([]int, len(picks))
	for k, flat := range picks {
		pis[k], offs[k] = loc.Locate(flat)
	}

	// Under a -nonideal scenario each trial clone is first mapped onto
	// ideal (σ = 0) devices and degraded at the configured read time, so
	// the study measures whether the ranking survives realistic hardware.
	// The device model and cycle table are built once; per-trial instances
	// come from the trial stream.
	var degradeDM device.Model
	var degradeTable []float64
	degrade := func(r *rng.Source) (*nn.Network, error) { return w.TrialNet(), nil }
	if len(cfg.Nonideal) > 0 {
		degradeDM = device.Default(w.WeightBits, 0)
		degradeTable = degradeDM.CycleTable(10, rng.New(cfg.Seed^0xdeb))
		degrade = func(r *rng.Source) (*nn.Network, error) {
			mp, err := mapping.New(w.Net, degradeDM, degradeTable, r.Split())
			if err != nil {
				return nil, err
			}
			mp.SetNonideal(nonideal.NewTrials(cfg.Nonideal, degradeDM, r.Split()), cfg.ReadTime)
			return mp.Net, nil
		}
	}

	// Per-trial failures flow back through the error return rather than
	// panicking a worker (mc.Map would re-panic the converted error).
	type fig1Out struct {
		drop float64
		err  error
	}
	outs, mapErr := mc.MapCtx(context.Background(), cfg.Seed^0xf161, len(picks), 0, func(k int, r *rng.Source) fig1Out {
		net, err := degrade(r)
		if err != nil {
			return fig1Out{err: err}
		}
		pi, off := pis[k], offs[k]
		p := net.MappedParams()[pi]
		orig := p.Data.Data[off]
		base := baseAcc
		if len(cfg.Nonideal) > 0 {
			// The degraded clone's baseline differs per trial (its faults
			// and drift are trial-specific), so measure it in place.
			base = train.Evaluate(net, evalX, evalY, batch)
		}
		// One compiled evaluator per clone: plans read live weights, so the
		// per-repeat perturbations are visible without recompiling. If the
		// compiled path ever fails (it cannot for the internal/models
		// networks), pin the legacy path for the remaining repeats instead of
		// re-attempting a doomed compile per repeat.
		ev := eval.NewEvaluatorKernel(net, nil, kern)
		useEval := true
		var acc stat.Welford
		for rep := 0; rep < cfg.Repeats; rep++ {
			p.Data.Data[off] = orig + r.Gauss(0, cfg.SigmaPerturb*scales[pi])
			if useEval {
				if a, err := ev.Accuracy(evalX, evalY, batch); err == nil {
					acc.Add(a)
					continue
				}
				useEval = false
			}
			acc.Add(train.Evaluate(net, evalX, evalY, batch))
		}
		return fig1Out{drop: base - acc.Mean()}
	})
	if mapErr != nil {
		return Fig1Result{}, fmt.Errorf("fig1 on %s: %w", w.Name, mapErr)
	}
	for _, o := range outs {
		if o.err != nil {
			return Fig1Result{}, fmt.Errorf("fig1 on %s: %w", w.Name, o.err)
		}
	}

	var res Fig1Result
	for k, flat := range picks {
		res.Magnitude = append(res.Magnitude, w.Weights[flat])
		res.Hess = append(res.Hess, w.Hess[flat])
		res.Drop = append(res.Drop, outs[k].drop)
	}
	res.PearsonMagnitude = stat.Pearson(res.Magnitude, res.Drop)
	res.PearsonHess = stat.Pearson(res.Hess, res.Drop)
	res.SpearmanHess = stat.Spearman(res.Hess, res.Drop)
	return res, nil
}

// PrintFig1 renders the correlation summary.
func PrintFig1(out io.Writer, w *Workload, cfg Fig1Config, res Fig1Result) {
	fmt.Fprintf(out, "Fig. 1: per-weight perturbation study on %s (%d weights, %d repeats, sigma=%.1f LSB)\n",
		w.Name, cfg.NumWeights, cfg.Repeats, cfg.SigmaPerturb)
	if len(cfg.Nonideal) > 0 {
		fmt.Fprintf(out, "  device scenario: %s read at t=%s\n",
			nonideal.StackString(cfg.Nonideal), FormatDuration(cfg.ReadTime))
	}
	fmt.Fprintf(out, "  Pearson(|w|,  accuracy drop)       = %+.3f   (paper Fig. 1a: little correlation)\n", res.PearsonMagnitude)
	fmt.Fprintf(out, "  Pearson(d2f/dw2, accuracy drop)    = %+.3f   (paper Fig. 1b: strong, 0.83)\n", res.PearsonHess)
	fmt.Fprintf(out, "  Spearman(d2f/dw2, accuracy drop)   = %+.3f\n", res.SpearmanHess)
	fmt.Fprintln(out, "  scatter (weight magnitude, second derivative, drop pp):")
	for i := range res.Drop {
		fmt.Fprintf(out, "    %8.4f %12.6g %8.3f\n", res.Magnitude[i], res.Hess[i], res.Drop[i])
	}
	fmt.Fprintln(out)
	fmt.Fprintln(out, plot.Scatter("Fig. 1a: drop vs weight magnitude",
		"|w|", "accuracy drop (pp)", res.Magnitude, res.Drop, 56, 14))
	fmt.Fprintln(out, plot.Scatter("Fig. 1b: drop vs second derivative",
		"d2f/dw2", "accuracy drop (pp)", res.Hess, res.Drop, 56, 14))
}
