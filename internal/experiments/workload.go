// Package experiments contains the drivers that regenerate every table and
// figure of the paper's evaluation (§4), plus the ablations DESIGN.md calls
// out. Each experiment is exposed both as a function (used by the cmd/
// binaries and by bench_test.go) and prints in a layout mirroring the paper.
//
// Sigma rescaling: the synthetic datasets (see package data) yield networks
// that are more robust to weight noise than their real-data counterparts, so
// the device-σ grid is scaled ×5 relative to the paper (σ_paper {0.1, 0.15,
// 0.2} → σ_here {0.5, 0.75, 1.0}) to land the NWC = 0 accuracy drops in the
// same range the paper reports. EXPERIMENTS.md discusses the substitution.
package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"swim/internal/data"
	"swim/internal/device"
	"swim/internal/mc"
	"swim/internal/models"
	"swim/internal/nn"
	"swim/internal/program"
	"swim/internal/rng"
	"swim/internal/serialize"
	"swim/internal/swim"
	"swim/internal/train"
)

// Workload bundles a trained quantized model, its dataset, and the
// precomputed SWIM sensitivity data — everything the experiment drivers
// consume. Workloads are built once per process and cached.
//
// A built Workload is immutable: Monte-Carlo trial bodies running on the
// parallel mc engine may read it concurrently (Net only through TrialNet or
// mapping.New, which clone), but must never write to Net, Hess or Weights.
type Workload struct {
	Name       string
	Net        *nn.Network
	DS         *data.Dataset
	WeightBits int
	CleanAcc   float64 // accuracy without device variation (%)
	Hess       []float64
	Weights    []float64
	// FromState reports that the learned state was restored from the
	// configured state directory (SetStateDir) instead of trained in this
	// process — the train-once, serve-many path.
	FromState bool
}

// Sigma values used throughout (×5 the paper's grid; see package comment).
const (
	SigmaTypical = 0.5  // paper's σ = 0.1
	SigmaMid     = 0.75 // paper's σ = 0.15
	SigmaHigh    = 1.0  // paper's σ = 0.2
)

// SigmaGrid is the Table 1 σ sweep.
func SigmaGrid() []float64 { return []float64{SigmaTypical, SigmaMid, SigmaHigh} }

var (
	registryMu sync.Mutex
	registry   = map[string]*Workload{}
)

func getOrBuild(name string, build func() *Workload) *Workload {
	registryMu.Lock()
	defer registryMu.Unlock()
	if w, ok := registry[name]; ok {
		return w
	}
	w := build()
	registry[name] = w
	return w
}

// buildWorkload trains a model and computes its sensitivity data. When a
// state directory is configured (SetStateDir) and holds a state dict for
// name, the learned state is restored instead of trained — and a freshly
// trained state is persisted there for the next process.
func buildWorkload(name string, ds *data.Dataset, net *nn.Network, weightBits int,
	cfg train.Config, calN int, seed uint64) *Workload {

	r := rng.New(seed)
	cfg.QATBits = weightBits
	fromState := false
	if restored := restoreState(name, net); restored != nil {
		net, fromState = restored, true
	} else {
		train.SGD(net, ds, cfg, r)
		persistState(name, net)
	}
	clean := train.Evaluate(net, ds.TestX, ds.TestY, 64)
	cx, cy := data.Subset(ds.TrainX, ds.TrainY, calN)
	hess := swim.Sensitivity(net, cx, cy, 64)
	return &Workload{
		Name: name, Net: net, DS: ds, WeightBits: weightBits,
		CleanAcc: clean, Hess: hess, Weights: swim.FlatWeights(net),
		FromState: fromState,
	}
}

// LeNetMNIST returns the Table 1 / Fig. 1 workload: 4-bit LeNet on the
// MNIST-like task.
func LeNetMNIST() *Workload {
	return getOrBuild("lenet-mnist", func() *Workload {
		trainN, testN, epochs := 2000, 1000, 8
		if mc.Fast() {
			trainN, testN, epochs = 600, 300, 3
		}
		ds := data.MNISTLike(trainN, testN, 1)
		r := rng.New(2)
		net := models.LeNet(10, 4, r)
		cfg := train.DefaultConfig()
		cfg.Epochs = epochs
		cfg.LRDecayEvery = epochs / 2
		return buildWorkload("lenet-mnist", ds, net, 4, cfg, 512, 3)
	})
}

// ConvNetCIFAR returns the Fig. 2a workload: 6-bit ConvNet on the CIFAR-like
// task (width-slimmed; see DESIGN.md §3).
func ConvNetCIFAR() *Workload {
	return getOrBuild("convnet-cifar", func() *Workload {
		trainN, testN, epochs, width := 1500, 600, 8, 8
		if mc.Fast() {
			trainN, testN, epochs, width = 400, 200, 3, 4
		}
		ds := data.CIFARLike(trainN, testN, 11)
		r := rng.New(12)
		net := models.ConvNet(10, width, 6, r)
		cfg := train.DefaultConfig()
		cfg.Epochs = epochs
		cfg.LRDecayEvery = epochs / 2
		return buildWorkload("convnet-cifar", ds, net, 6, cfg, 384, 13)
	})
}

// ResNetCIFAR returns the Fig. 2b workload: 6-bit ResNet-18 on the
// CIFAR-like task.
func ResNetCIFAR() *Workload {
	return getOrBuild("resnet-cifar", func() *Workload {
		trainN, testN, epochs, width := 1200, 500, 8, 8
		if mc.Fast() {
			trainN, testN, epochs, width = 300, 150, 3, 4
		}
		ds := data.CIFARLike(trainN, testN, 21)
		r := rng.New(22)
		net := models.ResNet18(10, width, 6, r)
		cfg := train.DefaultConfig()
		cfg.Epochs = epochs
		cfg.LRDecayEvery = epochs / 2
		return buildWorkload("resnet-cifar", ds, net, 6, cfg, 320, 23)
	})
}

// ResNetTiny returns the Fig. 2c workload: 6-bit ResNet-18 on the
// TinyImageNet-like task (40 classes). The panel's point is task hardness
// (4× the classes of panel b), not model bulk, so the width stays modest to
// keep the single-core sweep tractable.
func ResNetTiny() *Workload {
	return getOrBuild("resnet-tiny", func() *Workload {
		trainN, testN, epochs, width := 1200, 480, 7, 6
		if mc.Fast() {
			trainN, testN, epochs, width = 400, 200, 3, 4
		}
		ds := data.TinyImageNetLike(trainN, testN, 31)
		r := rng.New(32)
		net := models.ResNet18(40, width, 6, r)
		cfg := train.DefaultConfig()
		cfg.Epochs = epochs
		cfg.LRDecayEvery = epochs / 2
		return buildWorkload("resnet-tiny", ds, net, 6, cfg, 320, 33)
	})
}

// Workload persistence: train-once, serve-many. A configured state
// directory backs the registry with serialized state dictionaries
// (package serialize), so daemons and CLIs stop retraining per process.

var (
	stateMu  sync.RWMutex
	stateDir string
)

// SetStateDir points the workload registry at a directory of serialized
// state dictionaries: building workload <name> first tries to restore
// <dir>/<StateFile(name)>, and a freshly trained state is written back
// there. Intended for process startup (the -state CLI flag); "" disables
// persistence. States written by `swim-train -state` interoperate — the
// architecture and shapes must match (a mismatched file is skipped with a
// warning and the workload retrains), and SWIM_FAST runs use separate
// .fast.state files so CI-scale models never leak into full-scale runs.
func SetStateDir(dir string) {
	stateMu.Lock()
	defer stateMu.Unlock()
	stateDir = dir
}

// StateFile returns the state-dict filename for a registry workload name,
// scoped by the process's SWIM_FAST mode (<name>.fast.state vs
// <name>.state): the fast builders train slimmed models at reduced scale,
// and for the equal-shape workloads (LeNet) a silent cross-mode restore
// would feed full-scale experiments an under-trained CI model. Save
// full-scale states (swim-train -state) without SWIM_FAST set.
func StateFile(name string) string {
	if mc.Fast() {
		return name + ".fast.state"
	}
	return name + ".state"
}

func statePath(name string) string {
	stateMu.RLock()
	defer stateMu.RUnlock()
	if stateDir == "" {
		return ""
	}
	return filepath.Join(stateDir, StateFile(name))
}

// restoreState loads the persisted state for name into a clone of net,
// returning nil when no usable state exists. Loading into a clone keeps the
// caller's network pristine on a corrupt or mismatched file, so the
// fall-back training run starts from the untouched initialization.
func restoreState(name string, net *nn.Network) *nn.Network {
	path := statePath(name)
	if path == "" {
		return nil
	}
	f, err := os.Open(path)
	if err != nil {
		if !os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "experiments: ignoring workload state %s: %v\n", path, err)
		}
		return nil
	}
	defer f.Close()
	clone := net.Clone()
	if err := serialize.Load(f, clone); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: ignoring workload state %s: %v\n", path, err)
		return nil
	}
	return clone
}

// persistState writes net's learned state for name into the state directory
// (atomic rename), best-effort: persistence failures only warn — the
// in-process workload is unaffected.
func persistState(name string, net *nn.Network) {
	path := statePath(name)
	if path == "" {
		return
	}
	if err := SaveState(name, net); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
	}
}

// SaveState serializes net as workload name's registry state dict under the
// configured state directory. It errors without one; CLIs that want
// explicit control (swim-train -state) call it directly.
func SaveState(name string, net *nn.Network) error {
	path := statePath(name)
	if path == "" {
		return fmt.Errorf("experiments: no state directory configured (SetStateDir)")
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("experiments: persist workload state: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), StateFile(name)+".tmp*")
	if err != nil {
		return fmt.Errorf("experiments: persist workload state: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := serialize.Save(tmp, net); err != nil {
		tmp.Close()
		return fmt.Errorf("experiments: persist workload state %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("experiments: persist workload state %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("experiments: persist workload state %s: %w", path, err)
	}
	return nil
}

// TrialNet returns a fresh deep clone of the trained master network for one
// Monte-Carlo trial. Cloning only reads the master, so concurrent trials may
// call TrialNet freely — the contract the parallel mc engine relies on.
func (w *Workload) TrialNet() *nn.Network { return w.Net.Clone() }

// DeviceFor returns the calibrated device model for the workload's weight
// precision at the given σ.
func (w *Workload) DeviceFor(sigma float64) device.Model {
	return device.Default(w.WeightBits, sigma)
}

// Options returns the pipeline options every experiment on this workload
// shares: the device model at σ, full test-split evaluation, the cached
// sensitivity data (so pipelines skip the calibration pass), and the
// training split for in-situ policies. Callers append overrides — options
// apply in order, so a later WithEval narrows the evaluation subset.
// Read-time nonideality scenarios are threaded explicitly (ReadScenario,
// SweepConfig.Scenario, ScenarioResults) — never through process state.
func (w *Workload) Options(sigma float64) []program.Option {
	return []program.Option{
		program.WithDevice(w.DeviceFor(sigma)),
		program.WithEval(w.DS.TestX, w.DS.TestY),
		program.WithSensitivity(w.Hess, w.Weights),
		program.WithTraining(w.DS.TrainX, w.DS.TrainY),
	}
}
