package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"

	"swim/internal/calib"
	"swim/internal/cost"
	"swim/internal/data"
	"swim/internal/kernel"
	"swim/internal/mc"
	"swim/internal/nonideal"
	"swim/internal/program"
	"swim/internal/rng"
	"swim/internal/serialize"
)

// ReadScenario bundles a read-time nonideality stack with the time accuracy
// is read at — the explicit argument that replaced the former process-global
// SetScenario (an ambient-state data-race hazard for any concurrent server).
// The zero value is the ideal-device baseline. CLIs build one from their
// -nonideal / -readtime flags and thread it through the experiment configs.
type ReadScenario struct {
	// Models is the nonideality stack, applied in order at read time.
	Models []nonideal.Nonideality
	// ReadTime is when accuracy is measured, in seconds after programming.
	ReadTime float64
	// Kernel optionally overrides the kernel backend executing the dense
	// primitives of the scenario's compiled evaluation plans (nil = scalar
	// default). Backends are bit-identical, so this never changes results;
	// it rides here so every pipeline-backed experiment and ablation that
	// threads a ReadScenario picks the backend up without signature churn.
	Kernel kernel.Backend
}

// Options returns the pipeline options implementing the scenario (nil for
// the ideal baseline with the default kernel).
func (s ReadScenario) Options() []program.Option {
	var opts []program.Option
	if len(s.Models) > 0 {
		opts = append(opts,
			program.WithNonidealities(s.Models...),
			program.WithReadTime(s.ReadTime))
	}
	if s.Kernel != nil {
		opts = append(opts, program.WithKernelBackend(s.Kernel))
	}
	return opts
}

// Scenario is one named stack of device-nonideality models a robustness
// sweep evaluates under. Parse one from a spec string with ParseScenario.
type Scenario struct {
	// Spec is the display / round-trip form ("none" for the ideal
	// baseline).
	Spec string
	// Models is the parsed stack, applied in order at read time.
	Models []nonideal.Nonideality
}

// ParseScenario builds a Scenario from a '+'-joined nonideality spec (see
// nonideal.ParseStack); "" and "none" denote the ideal-device baseline.
func ParseScenario(spec string) (Scenario, error) {
	models, err := nonideal.ParseStack(spec)
	if err != nil {
		return Scenario{}, err
	}
	return Scenario{Spec: nonideal.StackString(models), Models: models}, nil
}

// ParseScenarios parses a ';'-separated list of scenario specs (the
// swim-scenario -nonideal grammar: models within a scenario join with '+',
// scenarios separate with ';'). An empty list yields nil.
func ParseScenarios(list string) ([]Scenario, error) {
	if strings.TrimSpace(list) == "" {
		return nil, nil
	}
	var out []Scenario
	for _, spec := range strings.Split(list, ";") {
		sc, err := ParseScenario(spec)
		if err != nil {
			return nil, err
		}
		out = append(out, sc)
	}
	return out, nil
}

// ScenarioConfig parameterizes a scenario sweep: the cross product of
// registry policies × nonideality scenarios × read times, each cell an
// accuracy-vs-NWC series.
type ScenarioConfig struct {
	// NWCs is the write-budget grid every cell walks (default
	// DefaultNWCs' first three points: 0, 0.1, 0.3).
	NWCs []float64
	// Times are the read times in seconds after programming (default
	// {0, 3600, 86400}: immediate, one hour, one day).
	Times []float64
	// Policies are registry policy names (default swim, magnitude,
	// noverify — the write-verify extremes plus the paper's method).
	Policies []string
	// Trials is the Monte-Carlo trial count (0 = SWIM_MC / 8).
	Trials int
	// Seed is the Monte-Carlo master seed shared by every cell, so
	// policies face common device instances within a scenario.
	Seed uint64
	// EvalBatch is the accuracy-measurement batch size (0 = 64).
	EvalBatch int
	// Cost is a hardware cost-model spec (package cost grammar); every
	// cell's Result then carries a Cost report. Empty disables cost
	// accounting (the default — cost is an opt-in axis so legacy requests
	// hash and serialize unchanged).
	Cost string
	// Calib is a calibration-model spec (package calib grammar); every
	// cell's pipeline then fits a digital read-out correction from a probe
	// pass and applies it before accuracy evaluation. Empty disables
	// calibration (the default). Unlike Kernel, calibration changes
	// results — corrected read-outs are a different computation — so the
	// serving tier includes it in cache keys like the cost axis.
	Calib string
	// Kernel is a kernel-backend spec (package kernel grammar) selecting
	// how every cell's compiled evaluation plans execute their dense
	// primitives. Empty selects the scalar default. Backends are
	// bit-identical, so this never changes results — it is a throughput
	// knob only, and the serving tier excludes it from cache keys.
	Kernel string
}

// DefaultScenarioConfig returns the scenario-sweep defaults, honouring
// SWIM_MC / SWIM_FAST like DefaultSweep.
func DefaultScenarioConfig() ScenarioConfig {
	trials := mc.Trials(8)
	if mc.Fast() {
		trials = mc.Trials(3)
	}
	return ScenarioConfig{
		NWCs:      []float64{0, 0.1, 0.3},
		Times:     []float64{0, 3600, 86400},
		Policies:  []string{"swim", "magnitude", "noverify"},
		Trials:    trials,
		Seed:      4000,
		EvalBatch: 64,
	}
}

// normalized fills config gaps from DefaultScenarioConfig, so every caller
// (CLI, daemon, tests) resolves an underspecified request the same way —
// the canonical request hash of the serving tier depends on this.
func (cfg ScenarioConfig) normalized() ScenarioConfig {
	def := DefaultScenarioConfig()
	if len(cfg.NWCs) == 0 {
		cfg.NWCs = def.NWCs
	}
	if len(cfg.Times) == 0 {
		cfg.Times = def.Times
	}
	if len(cfg.Policies) == 0 {
		cfg.Policies = def.Policies
	}
	if cfg.Trials <= 0 {
		cfg.Trials = def.Trials
	}
	if cfg.EvalBatch <= 0 {
		cfg.EvalBatch = def.EvalBatch
	}
	return cfg
}

// ScenarioRow is one cell of the sweep: a (scenario, read time, policy)
// combination's accuracy over the NWC grid.
type ScenarioRow struct {
	Scenario string
	Time     float64
	Policy   string
	Cells    []Cell
}

// ScenarioResult is one cell of the cross product with its full pipeline
// Result — the serving tier's unit of work (serialize.CaptureResult turns
// the Result into the wire record).
type ScenarioResult struct {
	Scenario string
	Time     float64
	Policy   string
	Result   *program.Result
}

// ScenarioResults runs the full cross product of scenarios × read times ×
// policies on one workload at device σ, one program.Pipeline per cell, all
// sharing a common cycle table and seed so cells are comparable. Cells come
// back in (scenario, time, policy) order with their complete pipeline
// Results. extra options are appended to every cell's pipeline — the serving
// daemon threads its fair-share worker gate through here.
func ScenarioResults(ctx context.Context, w *Workload, sigma float64, scenarios []Scenario,
	cfg ScenarioConfig, extra ...program.Option) ([]ScenarioResult, error) {

	var out []ScenarioResult
	err := scenarioCells(w, sigma, scenarios, cfg, extra, func(sc Scenario, tRead float64, name string, p *program.Pipeline) error {
		res, err := p.Run(ctx)
		if err != nil {
			return err
		}
		out = append(out, ScenarioResult{Scenario: sc.Spec, Time: tRead, Policy: name, Result: res})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ScenarioShard is one cell of the cross product restricted to a trial
// range: the mergeable partial result a distributed worker computes
// (program.Shard carries the raw per-trial observations).
type ScenarioShard struct {
	// Scenario is the cell's canonical nonideality spec.
	Scenario string
	// Time is the cell's read time in seconds after programming.
	Time float64
	// Policy is the cell's registry policy name.
	Policy string
	// Shard holds the trial range's per-trial observations and metadata.
	Shard *program.Shard
}

// ScenarioShards runs only trials [lo, hi) of every cell of the cross
// product — the same cells, pipelines and seeds as ScenarioResults, through
// the identical grid-trial bodies, so the rows of a complete trial-range
// partition merge (program.MergeShards) into results bit-identical to a
// single ScenarioResults call. This is the serving tier's /v1/shards
// execution path.
func ScenarioShards(ctx context.Context, w *Workload, sigma float64, scenarios []Scenario,
	cfg ScenarioConfig, lo, hi int, extra ...program.Option) ([]ScenarioShard, error) {

	ranged := append(append([]program.Option(nil), extra...), program.WithTrialRange(lo, hi))
	var out []ScenarioShard
	err := scenarioCells(w, sigma, scenarios, cfg, ranged, func(sc Scenario, tRead float64, name string, p *program.Pipeline) error {
		sh, err := p.RunShard(ctx)
		if err != nil {
			return err
		}
		out = append(out, ScenarioShard{Scenario: sc.Spec, Time: tRead, Policy: name, Shard: sh})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// scenarioCells walks the scenarios × read times × policies cross product
// in canonical cell order, building each cell's fully configured pipeline
// (shared cycle table and seed, workload options, extra options appended)
// and handing it to fn. Both the full-run and the trial-range shard paths
// iterate through here, which is what keeps their cells aligned.
func scenarioCells(w *Workload, sigma float64, scenarios []Scenario, cfg ScenarioConfig,
	extra []program.Option, fn func(sc Scenario, tRead float64, name string, p *program.Pipeline) error) error {

	if len(scenarios) == 0 {
		scenarios = []Scenario{{Spec: "none"}}
	}
	cfg = cfg.normalized()
	var costOpts []program.Option
	if cfg.Cost != "" {
		m, err := cost.Parse(cfg.Cost)
		if err != nil {
			return err
		}
		costOpts = []program.Option{program.WithCostModel(m)}
	}
	if cfg.Calib != "" {
		cm, err := calib.Parse(cfg.Calib)
		if err != nil {
			return err
		}
		costOpts = append(costOpts, program.WithCalibrationModel(cm))
	}
	if cfg.Kernel != "" {
		k, err := kernel.Parse(cfg.Kernel)
		if err != nil {
			return err
		}
		costOpts = append(costOpts, program.WithKernelBackend(k))
	}
	dm := w.DeviceFor(sigma)
	table := dm.CycleTable(300, rng.New(cfg.Seed^0x5ce11a))
	evalX, evalY := data.Subset(w.DS.TestX, w.DS.TestY, mc.EvalSize(len(w.DS.TestY)))
	for _, sc := range scenarios {
		for _, tRead := range cfg.Times {
			for _, name := range cfg.Policies {
				pol, err := program.Lookup(name)
				if err != nil {
					return fmt.Errorf("scenario %s: %w", sc.Spec, err)
				}
				opts := append(w.Options(sigma),
					program.WithEval(evalX, evalY),
					program.WithEvalBatch(cfg.EvalBatch),
					program.WithCycleTable(table),
					program.WithNonidealities(sc.Models...),
					program.WithReadTime(tRead),
					program.WithSeed(cfg.Seed),
					program.WithTrials(cfg.Trials))
				opts = append(opts, costOpts...)
				p, err := program.New(w.Net, pol, program.GridBudget(cfg.NWCs...),
					append(opts, extra...)...)
				if err != nil {
					return fmt.Errorf("scenario %s/%s at t=%gs: %w", sc.Spec, name, tRead, err)
				}
				if err := fn(sc, tRead, name, p); err != nil {
					return fmt.Errorf("scenario %s/%s at t=%gs: %w", sc.Spec, name, tRead, err)
				}
			}
		}
	}
	return nil
}

// EnvelopeCells converts one σ-slice of scenario results into wire cells
// (package serialize). The serving daemon and the swim-scenario -json path
// both build their envelopes through here, so a request answered over HTTP
// and the equivalent CLI invocation serialize bit-identically.
func EnvelopeCells(workload string, sigma float64, results []ScenarioResult) []serialize.CellRecord {
	cells := make([]serialize.CellRecord, 0, len(results))
	for _, sr := range results {
		cells = append(cells, serialize.CellRecord{
			Workload: workload,
			Sigma:    sigma,
			Scenario: sr.Scenario,
			ReadTime: sr.Time,
			Policy:   sr.Policy,
			Result:   serialize.CaptureResult(sr.Result),
		})
	}
	return cells
}

// SweepRows reduces scenario results to display rows (accuracy cells over
// the NWC grid, in the same (scenario, time, policy) order).
func SweepRows(results []ScenarioResult) []ScenarioRow {
	rows := make([]ScenarioRow, 0, len(results))
	for _, sr := range results {
		row := ScenarioRow{Scenario: sr.Scenario, Time: sr.Time, Policy: sr.Policy}
		for _, pt := range sr.Result.Points {
			row.Cells = append(row.Cells, cellOf(pt.Accuracy))
		}
		rows = append(rows, row)
	}
	return rows
}

// ScenarioSweep is ScenarioResults reduced to display rows.
func ScenarioSweep(w *Workload, sigma float64, scenarios []Scenario, cfg ScenarioConfig) ([]ScenarioRow, error) {
	results, err := ScenarioResults(context.Background(), w, sigma, scenarios, cfg)
	if err != nil {
		return nil, err
	}
	return SweepRows(results), nil
}

// FormatDuration renders a read time compactly (0, 1h, 1d, 90s, ...).
func FormatDuration(seconds float64) string {
	switch {
	case seconds == 0:
		return "0"
	case seconds >= 86400 && seconds == float64(int(seconds/86400))*86400:
		return fmt.Sprintf("%gd", seconds/86400)
	case seconds >= 3600 && seconds == float64(int(seconds/3600))*3600:
		return fmt.Sprintf("%gh", seconds/3600)
	default:
		return fmt.Sprintf("%gs", seconds)
	}
}

// PrintScenarioSweep renders the sweep grouped by scenario, one row per
// (read time, policy).
func PrintScenarioSweep(out io.Writer, w *Workload, sigma float64, cfg ScenarioConfig, rows []ScenarioRow) {
	fmt.Fprintf(out, "Scenario sweep: accuracy (%%) vs NWC on %s (clean %.2f%%, sigma=%.2f, %d MC trials)\n",
		w.Name, w.CleanAcc, sigma, cfg.Trials)
	prev := ""
	for _, row := range rows {
		if row.Scenario != prev {
			fmt.Fprintf(out, "\nscenario: %s\n", row.Scenario)
			fmt.Fprintf(out, "%-6s %-10s", "t", "policy")
			for _, nwc := range cfg.NWCs {
				fmt.Fprintf(out, " %13.1f", nwc)
			}
			fmt.Fprintln(out)
			prev = row.Scenario
		}
		fmt.Fprintf(out, "%-6s %-10s", FormatDuration(row.Time), row.Policy)
		for _, c := range row.Cells {
			fmt.Fprintf(out, " %6.2f ± %4.2f", c.Mean, c.Std)
		}
		fmt.Fprintln(out)
	}
}
