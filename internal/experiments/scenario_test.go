package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseScenarios(t *testing.T) {
	scs, err := ParseScenarios("none;drift;drift:nu=0.05+stuckat:p=0.01")
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 3 {
		t.Fatalf("scenarios = %d", len(scs))
	}
	if scs[0].Spec != "none" || len(scs[0].Models) != 0 {
		t.Fatalf("baseline scenario parsed as %+v", scs[0])
	}
	if len(scs[2].Models) != 2 {
		t.Fatalf("stacked scenario has %d models", len(scs[2].Models))
	}
	if _, err := ParseScenarios("drift;warp"); err == nil {
		t.Fatal("unknown model accepted")
	}
	if scs, err := ParseScenarios("  "); err != nil || scs != nil {
		t.Fatalf("blank list: %v, %v", scs, err)
	}
}

func TestScenarioSweepShapesAndDegradation(t *testing.T) {
	w := LeNetMNIST()
	scs, err := ParseScenarios("none;stuckat:p=0.3")
	if err != nil {
		t.Fatal(err)
	}
	cfg := ScenarioConfig{
		NWCs:     []float64{0},
		Times:    []float64{0},
		Policies: []string{"noverify", "swim"},
		Trials:   2,
		Seed:     17,
	}
	rows, err := ScenarioSweep(w, SigmaHigh, scs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 2 scenarios × 1 time × 2 policies
		t.Fatalf("rows = %d", len(rows))
	}
	cell := func(scenario, policy string) Cell {
		for _, row := range rows {
			if row.Scenario == scenario && row.Policy == policy {
				return row.Cells[0]
			}
		}
		t.Fatalf("missing row %s/%s", scenario, policy)
		return Cell{}
	}
	ideal := cell("none", "noverify")
	faulty := cell("stuckat:p=0.3,high=0.5", "noverify")
	if faulty.Mean >= ideal.Mean {
		t.Fatalf("30%% stuck devices did not degrade accuracy: %v >= %v", faulty.Mean, ideal.Mean)
	}

	var buf bytes.Buffer
	PrintScenarioSweep(&buf, w, SigmaHigh, cfg, rows)
	out := buf.String()
	for _, want := range []string{"scenario: none", "scenario: stuckat:p=0.3,high=0.5", "noverify", "swim"} {
		if !strings.Contains(out, want) {
			t.Fatalf("sweep output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatDuration(t *testing.T) {
	for in, want := range map[float64]string{0: "0", 90: "90s", 3600: "1h", 7200: "2h", 86400: "1d", 172800: "2d"} {
		if got := FormatDuration(in); got != want {
			t.Fatalf("FormatDuration(%v) = %q, want %q", in, got, want)
		}
	}
}

// The explicit SweepConfig scenario (the replacement for the removed
// process-global SetScenario) must reach every pipeline the sweep builds.
func TestSweepConfigScenario(t *testing.T) {
	w := LeNetMNIST()
	stuck, err := ParseScenario("stuckat:p=0.3")
	if err != nil {
		t.Fatal(err)
	}
	cfg := SweepConfig{NWCs: []float64{0}, Trials: 2, Seed: 18}
	clean, err := Sweep(w, SigmaHigh, "noverify", cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scenario = ReadScenario{Models: stuck.Models}
	degraded, err := Sweep(w, SigmaHigh, "noverify", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if degraded[0].Mean >= clean[0].Mean {
		t.Fatalf("config scenario had no effect: %v >= %v", degraded[0].Mean, clean[0].Mean)
	}
}
