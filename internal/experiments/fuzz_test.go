package experiments

import (
	"strings"
	"testing"
)

// FuzzParseScenarios drives the swim-scenario list grammar (models join
// with '+', scenarios separate with ';') with arbitrary input: no input
// may panic, and any accepted list must canonicalize — rejoining the
// parsed Specs with ';' reparses to the identical Spec sequence.
func FuzzParseScenarios(f *testing.F) {
	f.Add("")
	f.Add("none")
	f.Add("none;drift")
	f.Add("drift:nu=0.05,nustd=0.005;drift:nu=0.05+stuckat:p=0.01")
	f.Add("quantlevels+d2d:spread=0.1;retention:t0=10")
	f.Add(";")
	f.Add("drift;;stuckat")
	f.Add("drift:nu=abc")
	f.Fuzz(func(t *testing.T, list string) {
		scenarios, err := ParseScenarios(list)
		if err != nil {
			return
		}
		specs := make([]string, len(scenarios))
		for i, sc := range scenarios {
			specs[i] = sc.Spec
		}
		again, err := ParseScenarios(strings.Join(specs, ";"))
		if err != nil {
			t.Fatalf("canonical list %q (of %q) rejected: %v", strings.Join(specs, ";"), list, err)
		}
		if len(again) != len(scenarios) {
			t.Fatalf("canonical list reparsed to %d scenarios, want %d", len(again), len(scenarios))
		}
		for i, sc := range again {
			if sc.Spec != specs[i] {
				t.Fatalf("scenario %d not a fixed point: %q reparsed to %q", i, specs[i], sc.Spec)
			}
		}
	})
}
