package experiments

import "fmt"

// ShapeCheck is one qualitative property of the paper's results that the
// reproduction is expected to preserve (absolute numbers are substrate-
// dependent; shapes are not — see EXPERIMENTS.md).
type ShapeCheck struct {
	Name string
	Pass bool
	Note string
}

// CheckTable1Shapes verifies the qualitative structure of a Table 1 /
// Fig. 2 style result set for one σ:
//
//  1. all write-verify methods converge to (nearly) the same accuracy at
//     NWC = 1.0;
//  2. SWIM is at least as accurate as magnitude and random selection at the
//     low-budget operating point (NWC = 0.1);
//  3. SWIM's trial-to-trial std at that point is not larger than the
//     baselines' (the robustness claim);
//  4. every method's accuracy does not decrease from NWC = 0 to NWC = 1.
//
// tol is the accuracy slack in percentage points used for (1), (2) and (4)
// to absorb Monte-Carlo noise.
func CheckTable1Shapes(res map[string][]Cell, nwcs []float64, tol float64) []ShapeCheck {
	idxAt := func(target float64) int {
		for i, n := range nwcs {
			if n == target {
				return i
			}
		}
		return -1
	}
	i0, i01, i1 := idxAt(0), idxAt(0.1), idxAt(1.0)
	var out []ShapeCheck
	add := func(name string, pass bool, note string) {
		out = append(out, ShapeCheck{Name: name, Pass: pass, Note: note})
	}

	if i1 >= 0 {
		lo, hi := 200.0, -1.0
		for _, m := range []string{"swim", "magnitude", "random"} {
			v := res[m][i1].Mean
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		add("write-verify methods converge at NWC=1", hi-lo <= tol,
			fmt.Sprintf("spread %.2f pp", hi-lo))
	}
	if i01 >= 0 {
		s := res["swim"][i01]
		for _, m := range []string{"magnitude", "random"} {
			b := res[m][i01]
			add("swim >= "+m+" at NWC=0.1", s.Mean >= b.Mean-tol,
				fmt.Sprintf("swim %.2f vs %s %.2f", s.Mean, m, b.Mean))
			add("swim std <= "+m+" std at NWC=0.1", s.Std <= b.Std+tol,
				fmt.Sprintf("swim %.2f vs %s %.2f", s.Std, m, b.Std))
		}
	}
	if i0 >= 0 && i1 >= 0 {
		for _, m := range []string{"swim", "magnitude", "random", "insitu"} {
			cells, ok := res[m]
			if !ok {
				continue
			}
			add(m+" improves from NWC=0 to NWC=1", cells[i1].Mean >= cells[i0].Mean-tol,
				fmt.Sprintf("%.2f -> %.2f", cells[i0].Mean, cells[i1].Mean))
		}
	}
	return out
}

// AllPass reports whether every check passed.
func AllPass(checks []ShapeCheck) bool {
	for _, c := range checks {
		if !c.Pass {
			return false
		}
	}
	return true
}
