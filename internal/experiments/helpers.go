package experiments

import (
	"swim/internal/data"
	"swim/internal/nn"
	"swim/internal/quant"
	"swim/internal/tensor"
)

// accuracyOf evaluates top-1 accuracy (%) in batches of 64.
func accuracyOf(net *nn.Network, x *tensor.Tensor, y []int) float64 {
	correct := 0
	for _, b := range data.Batches(x, y, 64) {
		correct += net.CountCorrect(b.X, b.Y)
	}
	return 100 * float64(correct) / float64(len(y))
}

// scaleOf returns the quantization step the mapping layer would use for p.
func scaleOf(p *nn.Param, bits int) float64 {
	return quant.ScaleFor(p.Data, bits)
}

// locateFlat maps a flat mapped-weight index to (param index, offset),
// mirroring package mapping's ordering.
func locateFlat(params []*nn.Param, flat int) (int, int) {
	for i, p := range params {
		if flat < p.Size() {
			return i, flat
		}
		flat -= p.Size()
	}
	panic("experiments: flat index out of range")
}
