package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"swim/internal/data"
	"swim/internal/models"
	"swim/internal/rng"
	"swim/internal/serialize"
	"swim/internal/train"
)

// tinyBuild runs buildWorkload on a deliberately small model so persistence
// tests stay fast. Each call constructs a fresh untrained network, exactly
// like the registry builders do.
func tinyBuild(name string) *Workload {
	ds := data.MNISTLike(80, 40, 7)
	net := models.LeNet(10, 4, rng.New(7))
	cfg := train.DefaultConfig()
	cfg.Epochs = 1
	cfg.LRDecayEvery = 1
	return buildWorkload(name, ds, net, 4, cfg, 64, 7)
}

func TestWorkloadStatePersistence(t *testing.T) {
	dir := t.TempDir()
	SetStateDir(dir)
	defer SetStateDir("")

	first := tinyBuild("tiny-test")
	if first.FromState {
		t.Fatal("first build claims to be restored from state")
	}
	if _, err := os.Stat(filepath.Join(dir, StateFile("tiny-test"))); err != nil {
		t.Fatalf("trained state not persisted: %v", err)
	}

	second := tinyBuild("tiny-test")
	if !second.FromState {
		t.Fatal("second build retrained despite a persisted state")
	}
	if second.CleanAcc != first.CleanAcc {
		t.Fatalf("restored accuracy %v != trained %v", second.CleanAcc, first.CleanAcc)
	}
	fw, sw := first.Weights, second.Weights
	if len(fw) != len(sw) {
		t.Fatalf("weight count changed across restore: %d vs %d", len(fw), len(sw))
	}
	for i := range fw {
		if fw[i] != sw[i] {
			t.Fatalf("weight %d changed across restore: %v vs %v", i, fw[i], sw[i])
		}
	}
}

func TestWorkloadStateCorruptFallsBackToTraining(t *testing.T) {
	dir := t.TempDir()
	SetStateDir(dir)
	defer SetStateDir("")

	if err := os.WriteFile(filepath.Join(dir, StateFile("tiny-corrupt")), []byte("not a gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	w := tinyBuild("tiny-corrupt")
	if w.FromState {
		t.Fatal("corrupt state was accepted")
	}
	if w.CleanAcc <= 0 {
		t.Fatalf("fallback training produced no model (clean %.2f%%)", w.CleanAcc)
	}
}

// A state written through the plain serialize.Save path (what swim-train
// -save / -state produces) must restore through the registry.
func TestWorkloadStateInteropWithSerializeSave(t *testing.T) {
	dir := t.TempDir()
	SetStateDir(dir)
	defer SetStateDir("")

	trained := tinyBuild("tiny-interop")
	f, err := os.Create(filepath.Join(dir, StateFile("tiny-interop2")))
	if err != nil {
		t.Fatal(err)
	}
	if err := serialize.Save(f, trained.Net); err != nil {
		t.Fatal(err)
	}
	f.Close()

	restored := tinyBuild("tiny-interop2")
	if !restored.FromState {
		t.Fatal("externally saved state not restored by the registry")
	}
}
