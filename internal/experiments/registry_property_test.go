package experiments

// Cross-registry property test. The nonideality, cost, kernel and
// calibration registries were built to the same contract — spec strings
// canonicalize through Parse, unknown names fail with a usage hint listing
// what IS registered — but each package only tests its own corner. This
// file pins the shared contract in one place, so a new registry (or a
// refactor of an old one) that drifts from the conventions fails loudly.

import (
	"strings"
	"testing"

	"swim/internal/calib"
	"swim/internal/cost"
	"swim/internal/kernel"
	"swim/internal/nonideal"
)

// registryContract adapts one registry to the shared shape: its registered
// names, a parse returning the canonical spec, and the error for an
// unknown lookup.
type registryContract struct {
	pkg        string
	registered []string
	canonical  func(spec string) (string, error)
	lookupErr  func(name string) error
}

func contracts() []registryContract {
	return []registryContract{
		{
			pkg:        "nonideal",
			registered: nonideal.Registered(),
			canonical: func(spec string) (string, error) {
				n, err := nonideal.Parse(spec)
				if err != nil {
					return "", err
				}
				return n.String(), nil
			},
			lookupErr: func(name string) error { _, err := nonideal.Lookup(name); return err },
		},
		{
			pkg:        "cost",
			registered: cost.Registered(),
			canonical: func(spec string) (string, error) {
				m, err := cost.Parse(spec)
				if err != nil {
					return "", err
				}
				return m.Spec(), nil
			},
			lookupErr: func(name string) error { _, err := cost.Lookup(name); return err },
		},
		{
			pkg:        "kernel",
			registered: kernel.Registered(),
			canonical: func(spec string) (string, error) {
				k, err := kernel.Parse(spec)
				if err != nil {
					return "", err
				}
				return k.Spec(), nil
			},
			lookupErr: func(name string) error { _, err := kernel.Lookup(name); return err },
		},
		{
			pkg:        "calib",
			registered: calib.Registered(),
			canonical: func(spec string) (string, error) {
				m, err := calib.Parse(spec)
				if err != nil {
					return "", err
				}
				return m.Spec(), nil
			},
			lookupErr: func(name string) error { _, err := calib.Lookup(name); return err },
		},
	}
}

// Every registry has at least one built-in, and every built-in's bare name
// parses with defaults to a canonical spec that is a Parse fixed point:
// Parse(Parse(name).Spec()).Spec() == Parse(name).Spec(). Cache keys,
// shard-merge agreement checks and journal resume all compare these
// strings byte for byte, so "canonical" has to mean exactly one spelling.
func TestRegistriesCanonicalizeBuiltins(t *testing.T) {
	for _, c := range contracts() {
		if len(c.registered) == 0 {
			t.Errorf("%s: no built-ins registered", c.pkg)
			continue
		}
		for _, name := range c.registered {
			canon, err := c.canonical(name)
			if err != nil {
				t.Errorf("%s: built-in %q does not parse bare: %v", c.pkg, name, err)
				continue
			}
			if !strings.HasPrefix(canon, name) {
				t.Errorf("%s: canonical spec %q does not lead with the name %q", c.pkg, canon, name)
			}
			again, err := c.canonical(canon)
			if err != nil {
				t.Errorf("%s: canonical spec %q rejected on reparse: %v", c.pkg, canon, err)
				continue
			}
			if again != canon {
				t.Errorf("%s: canonical spec not a fixed point: %q -> %q", c.pkg, canon, again)
			}
			// Whitespace around the spec must not change the parse.
			padded, err := c.canonical("  " + canon + " ")
			if err != nil || padded != canon {
				t.Errorf("%s: padded spec %q -> (%q, %v), want %q", c.pkg, "  "+canon+" ", padded, err, canon)
			}
		}
	}
}

// Unknown names fail the same way everywhere: a non-nil error that names
// the package, echoes the offending name, and lists every registered
// built-in as a usage hint. CLIs print these errors verbatim.
func TestRegistriesRejectUnknownNames(t *testing.T) {
	const bogus = "no-such-model-xyz"
	for _, c := range contracts() {
		err := c.lookupErr(bogus)
		if err == nil {
			t.Errorf("%s: unknown name %q looked up", c.pkg, bogus)
			continue
		}
		msg := err.Error()
		if !strings.HasPrefix(msg, c.pkg+":") {
			t.Errorf("%s: error not package-prefixed: %q", c.pkg, msg)
		}
		if !strings.Contains(msg, bogus) {
			t.Errorf("%s: error does not echo the unknown name: %q", c.pkg, msg)
		}
		for _, name := range c.registered {
			if !strings.Contains(msg, name) {
				t.Errorf("%s: usage hint omits built-in %q: %q", c.pkg, name, msg)
			}
		}
		// Parse goes through Lookup, so a bogus spec fails identically.
		if _, err := c.canonical(bogus + ":x=1"); err == nil {
			t.Errorf("%s: spec with unknown name parsed", c.pkg)
		}
	}
}
