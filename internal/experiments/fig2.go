package experiments

import (
	"fmt"
	"io"

	"swim/internal/plot"
)

// Fig2 runs one accuracy-vs-NWC curve set (all configured policies) for a
// workload at the Fig. 2 operating point σ = SigmaHigh. The paper's Fig. 2
// panels are exactly this on ConvNet/CIFAR-10 (a), ResNet-18/CIFAR-10 (b)
// and ResNet-18/Tiny ImageNet (c).
func Fig2(w *Workload, cfg SweepConfig) (map[string][]Cell, error) {
	return Fig2At(w, SigmaHigh, cfg)
}

// Fig2At is Fig2 at an explicit device σ. Depth amplifies weight variation
// (each noisy layer compounds), so deeper models reach the paper's NWC = 0
// accuracy-drop regime at a smaller σ than LeNet; cmd/swim-fig2 exposes the
// knob per panel.
func Fig2At(w *Workload, sigma float64, cfg SweepConfig) (map[string][]Cell, error) {
	policies := cfg.policies()
	out := make(map[string][]Cell, len(policies))
	for _, m := range policies {
		cells, err := Sweep(w, sigma, m, cfg)
		if err != nil {
			return nil, err
		}
		out[m] = cells
	}
	return out, nil
}

// PrintFig2 renders one panel's series, one row per policy.
func PrintFig2(out io.Writer, w *Workload, cfg SweepConfig, res map[string][]Cell) {
	PrintFig2At(out, w, SigmaHigh, cfg, res)
}

// PrintFig2At renders one panel's series at an explicit σ.
func PrintFig2At(out io.Writer, w *Workload, sigma float64, cfg SweepConfig, res map[string][]Cell) {
	fmt.Fprintf(out, "Fig. 2 panel: %s (clean %.2f%%, sigma=%.2f, %d MC trials)\n",
		w.Name, w.CleanAcc, sigma, cfg.Trials)
	fmt.Fprintf(out, "%-10s", "policy")
	for _, nwc := range cfg.NWCs {
		fmt.Fprintf(out, " %13.1f", nwc)
	}
	fmt.Fprintln(out)
	for _, m := range cfg.policies() {
		fmt.Fprintf(out, "%-10s", m)
		for _, c := range res[m] {
			fmt.Fprintf(out, " %6.2f ± %4.2f", c.Mean, c.Std)
		}
		fmt.Fprintln(out)
	}
	chart := plot.Chart{
		Title:  fmt.Sprintf("accuracy (%%) vs NWC — %s", w.Name),
		XLabel: "normalized write cycles", YLabel: "accuracy %",
	}
	for _, m := range cfg.policies() {
		s := plot.Series{Name: m, X: cfg.NWCs}
		for _, c := range res[m] {
			s.Y = append(s.Y, c.Mean)
			s.Err = append(s.Err, c.Std)
		}
		chart.Series = append(chart.Series, s)
	}
	fmt.Fprintln(out, chart.Render())
}
