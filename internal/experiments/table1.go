package experiments

import (
	"fmt"
	"io"

	"swim/internal/calib"
	"swim/internal/data"
	"swim/internal/kernel"
	"swim/internal/mc"
	"swim/internal/program"
	"swim/internal/stat"
)

// Methods is the default policy set, in the order the paper's Table 1 lists
// them. Every name resolves through the program registry.
var Methods = []string{"swim", "magnitude", "random", "insitu"}

// Cell is one mean ± std entry.
type Cell struct {
	Mean, Std float64
}

// String renders the cell in the tables' "mean ± std" form.
func (c Cell) String() string { return fmt.Sprintf("%.2f ± %.2f", c.Mean, c.Std) }

// cellOf converts a Welford aggregate into a table cell.
func cellOf(w *stat.Welford) Cell { return Cell{Mean: w.Mean(), Std: w.Std()} }

// SweepConfig parameterizes an accuracy-vs-NWC sweep (Table 1 rows and the
// Fig. 2 curves share it).
type SweepConfig struct {
	NWCs   []float64
	Trials int
	Seed   uint64
	// EvalBatch is the accuracy-measurement batch size (0 = 64).
	EvalBatch int
	// Policies overrides the policy set (nil = Methods). Names resolve
	// through the program registry.
	Policies []string
	// Scenario applies a read-time nonideality stack to every cell of the
	// sweep (the explicit replacement for the removed process-global
	// SetScenario). Zero value = ideal devices.
	Scenario ReadScenario
	// Kernel is a kernel-backend spec (package kernel grammar) for the
	// sweep's compiled evaluation plans; "" = scalar. Bit-identical across
	// backends — a throughput knob, never a results axis.
	Kernel string
	// Calib is a calibration-model spec (package calib grammar); every cell
	// then fits a digital read-out correction from a probe pass and applies
	// it before accuracy evaluation. "" = no calibration. Unlike Kernel this
	// IS a results axis — corrected read-outs are a different computation.
	Calib string
}

// DefaultNWCs is the paper's Table 1 NWC grid.
func DefaultNWCs() []float64 { return []float64{0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0} }

// DefaultSweep returns the sweep configuration, honouring SWIM_MC.
func DefaultSweep() SweepConfig {
	trials := mc.Trials(8)
	if mc.Fast() {
		trials = mc.Trials(3)
	}
	return SweepConfig{NWCs: DefaultNWCs(), Trials: trials, Seed: 1000, EvalBatch: 64}
}

func (cfg SweepConfig) policies() []string {
	if len(cfg.Policies) > 0 {
		return cfg.Policies
	}
	return Methods
}

func (cfg SweepConfig) evalBatch() int {
	if cfg.EvalBatch > 0 {
		return cfg.EvalBatch
	}
	return 64
}

// Sweep measures accuracy (mean ± std over Monte-Carlo trials) for one
// workload, device σ and registry policy name at every NWC point, by running
// one program.Pipeline over the fixed-NWC grid.
func Sweep(w *Workload, sigma float64, method string, cfg SweepConfig) ([]Cell, error) {
	pol, err := program.Lookup(method)
	if err != nil {
		return nil, fmt.Errorf("sweep %s at sigma=%.2f: %w", w.Name, sigma, err)
	}
	return SweepPolicy(w, sigma, pol, cfg)
}

// SweepPolicy is Sweep for a policy value (registered or not): each trial
// programs a fresh device instance, walks the write-budget grid cumulatively
// per the policy, and evaluates on the test split — the paper's protocol.
// Trials run in parallel on mc.Workers() goroutines and the aggregates are
// bit-identical for any worker count.
func SweepPolicy(w *Workload, sigma float64, pol program.Policy, cfg SweepConfig) ([]Cell, error) {
	evalX, evalY := data.Subset(w.DS.TestX, w.DS.TestY, mc.EvalSize(len(w.DS.TestY)))
	opts := append(w.Options(sigma), cfg.Scenario.Options()...)
	if cfg.Kernel != "" {
		k, err := kernel.Parse(cfg.Kernel)
		if err != nil {
			return nil, fmt.Errorf("sweep %s/%s at sigma=%.2f: %w", w.Name, pol.Name(), sigma, err)
		}
		opts = append(opts, program.WithKernelBackend(k))
	}
	if cfg.Calib != "" {
		cm, err := calib.Parse(cfg.Calib)
		if err != nil {
			return nil, fmt.Errorf("sweep %s/%s at sigma=%.2f: %w", w.Name, pol.Name(), sigma, err)
		}
		opts = append(opts, program.WithCalibrationModel(cm))
	}
	p, err := program.New(w.Net, pol, program.GridBudget(cfg.NWCs...),
		append(opts,
			program.WithEval(evalX, evalY),
			program.WithEvalBatch(cfg.evalBatch()),
			program.WithSeed(cfg.Seed),
			program.WithTrials(cfg.Trials))...)
	if err != nil {
		return nil, fmt.Errorf("sweep %s/%s at sigma=%.2f: %w", w.Name, pol.Name(), sigma, err)
	}
	res, err := p.Run(nil)
	if err != nil {
		return nil, fmt.Errorf("sweep %s/%s at sigma=%.2f: %w", w.Name, pol.Name(), sigma, err)
	}
	cells := make([]Cell, len(res.Points))
	for i, pt := range res.Points {
		cells[i] = cellOf(pt.Accuracy)
	}
	return cells, nil
}

// Table1 runs the full Table 1 grid: σ × policy × NWC on the LeNet/MNIST
// workload (or any other workload, for ablations).
func Table1(w *Workload, sigmas []float64, cfg SweepConfig) (map[float64]map[string][]Cell, error) {
	out := make(map[float64]map[string][]Cell)
	for _, sigma := range sigmas {
		out[sigma] = make(map[string][]Cell)
		for _, m := range cfg.policies() {
			cells, err := Sweep(w, sigma, m, cfg)
			if err != nil {
				return nil, err
			}
			out[sigma][m] = cells
		}
	}
	return out, nil
}

// PrintTable1 renders the grid in the paper's Table 1 layout.
func PrintTable1(out io.Writer, w *Workload, sigmas []float64, cfg SweepConfig, res map[float64]map[string][]Cell) {
	fmt.Fprintf(out, "Table 1: accuracy (%%) vs NWC on %s (clean accuracy %.2f%%, %d weights, %d MC trials)\n",
		w.Name, w.CleanAcc, w.Net.NumMappedWeights(), cfg.Trials)
	fmt.Fprintf(out, "%-6s %-10s", "sigma", "policy")
	for _, nwc := range cfg.NWCs {
		fmt.Fprintf(out, " %13.1f", nwc)
	}
	fmt.Fprintln(out)
	for _, sigma := range sigmas {
		for _, m := range cfg.policies() {
			fmt.Fprintf(out, "%-6.2f %-10s", sigma, m)
			for _, c := range res[sigma][m] {
				fmt.Fprintf(out, " %6.2f ± %4.2f", c.Mean, c.Std)
			}
			fmt.Fprintln(out)
		}
	}
}

// SpeedupAt reports the write-cycle speedup of the first method over the
// second for reaching the accuracy that `method` attains at targetNWC —
// the headline "up to 10x" style numbers of the paper. It interpolates on
// the rival's curve.
func SpeedupAt(cells, rival []Cell, nwcs []float64, targetNWC float64) float64 {
	// Accuracy the method reaches at targetNWC.
	var acc float64
	for i, n := range nwcs {
		if n >= targetNWC {
			acc = cells[i].Mean
			break
		}
	}
	// First grid point where the rival matches it.
	for i, c := range rival {
		if c.Mean >= acc-1e-9 {
			if nwcs[i] == 0 {
				return 1
			}
			return nwcs[i] / targetNWC
		}
	}
	// Rival never reaches it within the grid.
	last := nwcs[len(nwcs)-1]
	return last / targetNWC
}

// WelfordCells converts raw Welford aggregates to cells (helper shared by
// other experiment files).
func WelfordCells(ws []*stat.Welford) []Cell {
	out := make([]Cell, len(ws))
	for i, w := range ws {
		out[i] = cellOf(w)
	}
	return out
}
