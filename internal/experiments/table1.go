package experiments

import (
	"fmt"
	"io"

	"swim/internal/data"
	"swim/internal/mapping"
	"swim/internal/mc"
	"swim/internal/rng"
	"swim/internal/stat"
	"swim/internal/swim"
)

// Methods in the order the paper's Table 1 lists them.
var Methods = []string{"swim", "magnitude", "random", "insitu"}

// Cell is one mean ± std entry.
type Cell struct {
	Mean, Std float64
}

func (c Cell) String() string { return fmt.Sprintf("%.2f ± %.2f", c.Mean, c.Std) }

// SweepConfig parameterizes an accuracy-vs-NWC sweep (Table 1 rows and the
// Fig. 2 curves share it).
type SweepConfig struct {
	NWCs   []float64
	Trials int
	Seed   uint64
}

// DefaultNWCs is the paper's Table 1 NWC grid.
func DefaultNWCs() []float64 { return []float64{0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0} }

// DefaultSweep returns the sweep configuration, honouring SWIM_MC.
func DefaultSweep() SweepConfig {
	trials := mc.Trials(8)
	if mc.Fast() {
		trials = mc.Trials(3)
	}
	return SweepConfig{NWCs: DefaultNWCs(), Trials: trials, Seed: 1000}
}

// Sweep measures accuracy (mean ± std over Monte-Carlo trials) for one
// workload, device σ and method at every NWC point. Each trial programs a
// fresh device instance, spends the write budget per the method, and
// evaluates on the test split — the paper's protocol. Trials run in parallel
// on mc.Workers() goroutines; every trial owns its device instance and
// network clone, and the aggregates are bit-identical for any worker count.
func Sweep(w *Workload, sigma float64, method string, cfg SweepConfig) ([]Cell, error) {
	dm := w.DeviceFor(sigma)
	table := dm.CycleTable(300, rng.New(cfg.Seed^0x5eed))
	points := len(cfg.NWCs)
	evalX, evalY := data.Subset(w.DS.TestX, w.DS.TestY, mc.EvalSize(len(w.DS.TestY)))

	agg, err := mc.RunSeries(cfg.Seed, cfg.Trials, points, func(r *rng.Source) []float64 {
		out := make([]float64, points)
		var sel swim.Selector
		var order []int
		if method != "insitu" {
			sel = w.Selector(method)
			order = sel.Order(r)
		}
		// One trial walks the NWC grid incrementally on a single device
		// instance: write budgets are cumulative, matching how a sweep
		// would run on one physical chip.
		mp := mapping.New(w.Net, dm, table, r)
		insituStart := 0
		for i, nwc := range cfg.NWCs {
			switch {
			case method == "insitu":
				budget := nwc * mp.BaselineCycles()
				for mp.CyclesUsed < budget {
					insituStart = swim.InSituStep(mp, w.DS.TrainX, w.DS.TrainY, insituStart, swim.DefaultInSitu(), r)
				}
			default:
				swim.WriteVerifyToNWC(mp, order, nwc, r)
			}
			out[i] = mp.Accuracy(evalX, evalY, 64)
		}
		return out
	})
	if err != nil {
		return nil, fmt.Errorf("sweep %s/%s at sigma=%.2f: %w", w.Name, method, sigma, err)
	}

	cells := make([]Cell, points)
	for i, a := range agg {
		cells[i] = Cell{Mean: a.Mean(), Std: a.Std()}
	}
	return cells, nil
}

// Table1 runs the full Table 1 grid: σ × method × NWC on the LeNet/MNIST
// workload (or any other workload, for ablations).
func Table1(w *Workload, sigmas []float64, cfg SweepConfig) (map[float64]map[string][]Cell, error) {
	out := make(map[float64]map[string][]Cell)
	for _, sigma := range sigmas {
		out[sigma] = make(map[string][]Cell)
		for _, m := range Methods {
			cells, err := Sweep(w, sigma, m, cfg)
			if err != nil {
				return nil, err
			}
			out[sigma][m] = cells
		}
	}
	return out, nil
}

// PrintTable1 renders the grid in the paper's Table 1 layout.
func PrintTable1(out io.Writer, w *Workload, sigmas []float64, cfg SweepConfig, res map[float64]map[string][]Cell) {
	fmt.Fprintf(out, "Table 1: accuracy (%%) vs NWC on %s (clean accuracy %.2f%%, %d weights, %d MC trials)\n",
		w.Name, w.CleanAcc, w.Net.NumMappedWeights(), cfg.Trials)
	fmt.Fprintf(out, "%-6s %-10s", "sigma", "method")
	for _, nwc := range cfg.NWCs {
		fmt.Fprintf(out, " %13.1f", nwc)
	}
	fmt.Fprintln(out)
	for _, sigma := range sigmas {
		for _, m := range Methods {
			fmt.Fprintf(out, "%-6.2f %-10s", sigma, m)
			for _, c := range res[sigma][m] {
				fmt.Fprintf(out, " %6.2f ± %4.2f", c.Mean, c.Std)
			}
			fmt.Fprintln(out)
		}
	}
}

// SpeedupAt reports the write-cycle speedup of the first method over the
// second for reaching the accuracy that `method` attains at targetNWC —
// the headline "up to 10x" style numbers of the paper. It interpolates on
// the rival's curve.
func SpeedupAt(cells, rival []Cell, nwcs []float64, targetNWC float64) float64 {
	// Accuracy the method reaches at targetNWC.
	var acc float64
	for i, n := range nwcs {
		if n >= targetNWC {
			acc = cells[i].Mean
			break
		}
	}
	// First grid point where the rival matches it.
	for i, c := range rival {
		if c.Mean >= acc-1e-9 {
			if nwcs[i] == 0 {
				return 1
			}
			return nwcs[i] / targetNWC
		}
	}
	// Rival never reaches it within the grid.
	last := nwcs[len(nwcs)-1]
	return last / targetNWC
}

// WelfordCells converts raw Welford aggregates to cells (helper shared by
// other experiment files).
func WelfordCells(ws []*stat.Welford) []Cell {
	out := make([]Cell, len(ws))
	for i, w := range ws {
		out[i] = Cell{Mean: w.Mean(), Std: w.Std()}
	}
	return out
}
