package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"swim/internal/data"
	"swim/internal/device"
	"swim/internal/mapping"
	"swim/internal/mc"
	"swim/internal/nn"
	"swim/internal/rng"
	"swim/internal/stat"
	"swim/internal/swim"
)

// GranularityResult is one row of the Algorithm-1 granularity ablation.
type GranularityResult struct {
	Granularity float64
	NWC         Cell // NWC spent when the accuracy target was met
	Evals       Cell // accuracy evaluations performed (the cost p trades off)
	Achieved    int  // trials that met the target
	Trials      int
}

// AblateGranularity justifies the paper's p = 5% choice (§3.1): finer
// granules stop write-verifying sooner (lower NWC) but cost more accuracy
// evaluations of the mapped network; coarser granules overshoot the write
// budget. The ablation runs Algorithm 1 with the SWIM selector at several p
// and a fixed accuracy-drop target.
func AblateGranularity(w *Workload, sigma, maxDrop float64, ps []float64, trials int, seed uint64) ([]GranularityResult, error) {
	dm := w.DeviceFor(sigma)
	table := dm.CycleTable(300, rng.New(seed^0xab1a7e))
	var out []GranularityResult
	for _, p := range ps {
		// Per trial: NWC at stop and accuracy evaluations. The achieved count
		// is exact, so it bypasses the float aggregates.
		var achieved atomic.Int64
		agg, err := mc.RunSeries(seed, trials, 2, func(r *rng.Source) []float64 {
			mp := mapping.New(w.Net, dm, table, r)
			res := swim.Algorithm1(mp, w.Selector("swim"), p, w.CleanAcc, maxDrop,
				w.DS.TestX, w.DS.TestY, 64, r)
			if res.Achieved {
				achieved.Add(1)
			}
			return []float64{mp.NWC(), float64(len(res.Steps))}
		})
		if err != nil {
			return nil, fmt.Errorf("granularity ablation at p=%.3f: %w", p, err)
		}
		nwc, evals := agg[0], agg[1]
		out = append(out, GranularityResult{
			Granularity: p,
			NWC:         Cell{nwc.Mean(), nwc.Std()},
			Evals:       Cell{evals.Mean(), evals.Std()},
			Achieved:    int(achieved.Load()),
			Trials:      trials,
		})
	}
	return out, nil
}

// PrintGranularity renders the granularity ablation.
func PrintGranularity(out io.Writer, w *Workload, maxDrop float64, rows []GranularityResult) {
	fmt.Fprintf(out, "Ablation: Algorithm 1 granularity p on %s (target drop <= %.2f pp)\n", w.Name, maxDrop)
	fmt.Fprintf(out, "%-8s %-16s %-16s %s\n", "p", "NWC at stop", "accuracy evals", "achieved")
	for _, row := range rows {
		fmt.Fprintf(out, "%-8.3f %-16s %-16s %d/%d\n",
			row.Granularity, row.NWC, row.Evals, row.Achieved, row.Trials)
	}
}

// TieBreakResult compares SWIM with and without the magnitude tie-breaker.
type TieBreakResult struct {
	NWC          float64
	WithTie      Cell
	WithoutTie   Cell
	TiedFraction float64 // fraction of weights sharing a second derivative with another weight
}

// noTieSelector orders purely by Hessian value, ties left in index order.
type noTieSelector struct{ hess []float64 }

func (s *noTieSelector) Name() string { return "swim-no-tiebreak" }
func (s *noTieSelector) Order(*rng.Source) []int {
	idx := make([]int, len(s.hess))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return s.hess[idx[a]] > s.hess[idx[b]] })
	return idx
}

// AblateTieBreak measures whether the paper's magnitude tie-breaker (§3.2)
// matters at a given write budget. Ties are common in ReLU networks: weights
// behind dead activations share an exactly-zero second derivative.
func AblateTieBreak(w *Workload, sigma, nwc float64, trials int, seed uint64) TieBreakResult {
	dm := w.DeviceFor(sigma)
	table := dm.CycleTable(300, rng.New(seed^0x7eb4))

	counts := map[float64]int{}
	for _, h := range w.Hess {
		counts[h]++
	}
	tied := 0
	for _, h := range w.Hess {
		if counts[h] > 1 {
			tied++
		}
	}

	run := func(sel swim.Selector, seed uint64) Cell {
		agg := mc.Run(seed, trials, func(r *rng.Source) float64 {
			mp := mapping.New(w.Net, dm, table, r)
			swim.WriteVerifyToNWC(mp, sel.Order(r), nwc, r)
			return mp.Accuracy(w.DS.TestX, w.DS.TestY, 64)
		})
		return Cell{agg.Mean(), agg.Std()}
	}
	return TieBreakResult{
		NWC:          nwc,
		WithTie:      run(w.Selector("swim"), seed),
		WithoutTie:   run(&noTieSelector{hess: w.Hess}, seed),
		TiedFraction: float64(tied) / float64(len(w.Hess)),
	}
}

// KBitsResult is one row of the device bit-width ablation.
type KBitsResult struct {
	K        int
	Devices  int
	NoiseStd float64 // unverified weight-level noise (LSB units, Eq. 16)
	NoVerify Cell    // accuracy with no write-verify
	AtNWC    Cell    // accuracy with SWIM at the probe NWC
}

// AblateDeviceBits sweeps K, the bits per device (Eq. 15). Fewer bits per
// device means more devices per weight, which changes both the Eq. 16 noise
// amplification and the write-verify cost structure.
func AblateDeviceBits(w *Workload, sigma, nwc float64, ks []int, trials int, seed uint64) []KBitsResult {
	var out []KBitsResult
	for _, k := range ks {
		dm := w.DeviceFor(sigma)
		dm.DeviceBits = k
		table := dm.CycleTable(300, rng.New(seed^uint64(k)))
		sel := w.Selector("swim")

		noVer := mc.Run(seed+uint64(k), trials, func(r *rng.Source) float64 {
			mp := mapping.New(w.Net, dm, table, r)
			return mp.Accuracy(w.DS.TestX, w.DS.TestY, 64)
		})
		at := mc.Run(seed+uint64(k)+999, trials, func(r *rng.Source) float64 {
			mp := mapping.New(w.Net, dm, table, r)
			swim.WriteVerifyToNWC(mp, sel.Order(r), nwc, r)
			return mp.Accuracy(w.DS.TestX, w.DS.TestY, 64)
		})
		out = append(out, KBitsResult{
			K: k, Devices: dm.NumDevices(), NoiseStd: dm.NoiseStd(),
			NoVerify: Cell{noVer.Mean(), noVer.Std()},
			AtNWC:    Cell{at.Mean(), at.Std()},
		})
	}
	return out
}

// PrintKBits renders the device bit-width ablation.
func PrintKBits(out io.Writer, w *Workload, sigma, nwc float64, rows []KBitsResult) {
	fmt.Fprintf(out, "Ablation: device bits K on %s (sigma=%.2f, SWIM at NWC=%.1f)\n", w.Name, sigma, nwc)
	fmt.Fprintf(out, "%-4s %-8s %-12s %-16s %s\n", "K", "devices", "noise(LSB)", "no write-verify", "SWIM")
	for _, row := range rows {
		fmt.Fprintf(out, "%-4d %-8d %-12.3f %-16s %s\n",
			row.K, row.Devices, row.NoiseStd, row.NoVerify, row.AtNWC)
	}
}

// SpatialResult is one row of the spatial-variation extension experiment.
type SpatialResult struct {
	Label    string
	NoVerify Cell
	SWIMAt   Cell
}

// AblateSpatial exercises the §2.1 extension: programming under combined
// temporal + spatial (globally and locally correlated) variation, with and
// without SWIM write-verify at the probe budget. Write-verify corrects the
// read-back error whatever its source, so SWIM's recovery should survive the
// extra variation — the claim the paper defers to future work.
func AblateSpatial(w *Workload, sigma, nwc float64, trials int, seed uint64) ([]SpatialResult, error) {
	dm := w.DeviceFor(sigma)
	table := dm.CycleTable(300, rng.New(seed^0x59a7))
	sel := w.Selector("swim")
	side := 1
	for side*side < w.Net.NumMappedWeights() {
		side *= 2
	}
	scfg := device.DefaultSpatial(side, side)

	run := func(spatial bool, seed uint64) (SpatialResult, error) {
		label := "temporal only"
		if spatial {
			label = "temporal + spatial"
		}
		// Per trial: accuracy before and after write-verify on one instance.
		agg, err := mc.RunSeries(seed, trials, 2, func(r *rng.Source) []float64 {
			mp := mapping.New(w.Net, dm, table, r)
			if spatial {
				mp.ProgramAllSpatial(r, device.NewSpatialField(scfg, r))
			}
			noV := mp.Accuracy(w.DS.TestX, w.DS.TestY, 64)
			swim.WriteVerifyToNWC(mp, sel.Order(r), nwc, r)
			return []float64{noV, mp.Accuracy(w.DS.TestX, w.DS.TestY, 64)}
		})
		if err != nil {
			return SpatialResult{}, fmt.Errorf("spatial ablation (%s): %w", label, err)
		}
		return SpatialResult{Label: label,
			NoVerify: Cell{agg[0].Mean(), agg[0].Std()},
			SWIMAt:   Cell{agg[1].Mean(), agg[1].Std()}}, nil
	}
	temporal, err := run(false, seed)
	if err != nil {
		return nil, err
	}
	both, err := run(true, seed+1)
	if err != nil {
		return nil, err
	}
	return []SpatialResult{temporal, both}, nil
}

// PrintSpatial renders the spatial-extension experiment.
func PrintSpatial(out io.Writer, w *Workload, nwc float64, rows []SpatialResult) {
	fmt.Fprintf(out, "Extension: spatial variation (sec 2.1) on %s, SWIM at NWC=%.1f\n", w.Name, nwc)
	fmt.Fprintf(out, "%-22s %-16s %s\n", "variation", "no write-verify", "SWIM")
	for _, r := range rows {
		fmt.Fprintf(out, "%-22s %-16s %s\n", r.Label, r.NoVerify, r.SWIMAt)
	}
}

// CompareFisher pits SWIM's Hessian-diagonal ranking against the
// empirical-Fisher (squared gradient) alternative at the probe budget.
func CompareFisher(w *Workload, sigma, nwc float64, trials int, seed uint64) (swimCell, fisherCell Cell) {
	dm := w.DeviceFor(sigma)
	table := dm.CycleTable(300, rng.New(seed^0xf15e))
	cx, cy := data.Subset(w.DS.TrainX, w.DS.TrainY, 384)
	fisher := swim.FisherSensitivity(w.Net, cx, cy, 64)
	run := func(sel swim.Selector, seed uint64) Cell {
		agg := mc.Run(seed, trials, func(r *rng.Source) float64 {
			mp := mapping.New(w.Net, dm, table, r)
			swim.WriteVerifyToNWC(mp, sel.Order(r), nwc, r)
			return mp.Accuracy(w.DS.TestX, w.DS.TestY, 64)
		})
		return Cell{agg.Mean(), agg.Std()}
	}
	return run(w.Selector("swim"), seed), run(swim.NewFisherSelector(fisher, w.Weights), seed)
}

// HessianQuality compares the analytic second derivatives against central
// finite differences of the true loss on a weight sample (the Eq. 4→5
// diagonal-approximation ablation). It returns the Spearman rank correlation
// — ranking quality is what selection actually consumes.
func HessianQuality(w *Workload, sample int, seed uint64) float64 {
	// Finite differences need the smooth underlying network: the activation
	// quantizers make the loss a staircase whose jumps (≈ one activation
	// LSB) swamp the O(eps²) curvature signal. Disable them on a clone and
	// recompute the analytic diagonal on that same smooth network so the two
	// sides of the comparison see the identical function.
	net := w.Net.Clone()
	nn.Walk(net.Trunk, func(l nn.Layer) {
		if q, ok := l.(*nn.QuantAct); ok {
			q.Disabled = true
		}
	})
	params := net.MappedParams()
	evalX, evalY := data.Subset(w.DS.TrainX, w.DS.TrainY, 256)

	net.ZeroHess()
	for _, b := range data.Batches(evalX, evalY, 64) {
		net.AccumulateHessian(b.X, b.Y)
	}
	var hess []float64
	for _, p := range params {
		hess = append(hess, p.Hess.Data...)
	}

	lossAt := func() float64 {
		total, batches := 0.0, 0
		for _, b := range data.Batches(evalX, evalY, 64) {
			total += net.EvalLoss(b.X, b.Y)
			batches++
		}
		return total / float64(batches)
	}

	// Random sampling would land mostly on zero-sensitivity weights (dead
	// ReLU paths; the tie-break ablation shows they are the majority), where
	// both the analytic and FD values are zero and rank correlation
	// degenerates. Stratify instead: walk the sensitivity ordering at even
	// strides so the sample spans the full dynamic range the selector
	// actually discriminates over.
	order := swim.NewSWIMSelector(hess, swim.FlatWeights(net)).Order(rng.New(seed))
	span := len(order) / 2 // top half: where selection decisions happen
	if sample > span {
		sample = span
	}
	var analytic, fd []float64
	const eps = 1e-3
	f0 := lossAt()
	for k := 0; k < sample; k++ {
		flat := order[k*span/sample]
		pi, off := locateFlat(params, flat)
		p := params[pi]
		orig := p.Data.Data[off]
		p.Data.Data[off] = orig + eps
		fp := lossAt()
		p.Data.Data[off] = orig - eps
		fm := lossAt()
		p.Data.Data[off] = orig
		analytic = append(analytic, hess[flat])
		fd = append(fd, (fp-2*f0+fm)/(eps*eps))
	}
	return stat.Spearman(analytic, fd)
}
