package experiments

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"swim/internal/data"
	"swim/internal/device"
	"swim/internal/mapping"
	"swim/internal/nn"
	"swim/internal/program"
	"swim/internal/rng"
	"swim/internal/stat"
	"swim/internal/swim"
)

// pointCell runs one policy at a single write budget through the pipeline
// and returns the accuracy cell — the primitive every probe-budget ablation
// shares. It evaluates on the full test split with the workload's cached
// sensitivity data.
func pointCell(w *Workload, pol program.Policy, sigma float64, table []float64,
	nwc float64, scn ReadScenario, trials int, seed uint64) (Cell, error) {

	p, err := program.New(w.Net, pol, program.GridBudget(nwc),
		append(append(w.Options(sigma), scn.Options()...),
			program.WithCycleTable(table),
			program.WithSeed(seed),
			program.WithTrials(trials))...)
	if err != nil {
		return Cell{}, err
	}
	res, err := p.Run(nil)
	if err != nil {
		return Cell{}, err
	}
	return cellOf(res.Points[0].Accuracy), nil
}

// GranularityResult is one row of the Algorithm-1 granularity ablation.
type GranularityResult struct {
	Granularity float64
	NWC         Cell // NWC spent when the accuracy target was met
	Evals       Cell // accuracy evaluations performed (the cost p trades off)
	Achieved    int  // trials that met the target
	Trials      int
}

// AblateGranularity justifies the paper's p = 5% choice (§3.1): finer
// granules stop write-verifying sooner (lower NWC) but cost more accuracy
// evaluations of the mapped network; coarser granules overshoot the write
// budget. The ablation runs a drop-budget pipeline with the given policy at
// several granularities and a fixed accuracy-drop target. A run in which no
// trial meets the target is still a valid row (Achieved = 0), so the
// pipeline's ErrBudgetExhausted is tolerated rather than propagated.
func AblateGranularity(w *Workload, pol program.Policy, sigma, maxDrop float64,
	ps []float64, scn ReadScenario, trials int, seed uint64) ([]GranularityResult, error) {

	dm := w.DeviceFor(sigma)
	table := dm.CycleTable(300, rng.New(seed^0xab1a7e))
	budget := program.DropBudget(w.CleanAcc, maxDrop)
	// Policies that never exhaust themselves (in-situ) need a spend cap;
	// 8× the full write-verify bill is far beyond any selector policy.
	budget.MaxNWC = 8
	var out []GranularityResult
	for _, gp := range ps {
		p, err := program.New(w.Net, pol, budget,
			append(append(w.Options(sigma), scn.Options()...),
				program.WithCycleTable(table),
				program.WithGranularity(gp),
				program.WithSeed(seed),
				program.WithTrials(trials))...)
		if err != nil {
			return nil, fmt.Errorf("granularity ablation at p=%.3f: %w", gp, err)
		}
		res, err := p.Run(nil)
		if err != nil && !errors.Is(err, program.ErrBudgetExhausted) {
			return nil, fmt.Errorf("granularity ablation at p=%.3f: %w", gp, err)
		}
		out = append(out, GranularityResult{
			Granularity: gp,
			NWC:         cellOf(res.NWC),
			Evals:       cellOf(res.Evals),
			Achieved:    res.Achieved,
			Trials:      trials,
		})
	}
	return out, nil
}

// PrintGranularity renders the granularity ablation.
func PrintGranularity(out io.Writer, w *Workload, maxDrop float64, rows []GranularityResult) {
	fmt.Fprintf(out, "Ablation: Algorithm 1 granularity p on %s (target drop <= %.2f pp)\n", w.Name, maxDrop)
	fmt.Fprintf(out, "%-8s %-16s %-16s %s\n", "p", "NWC at stop", "accuracy evals", "achieved")
	for _, row := range rows {
		fmt.Fprintf(out, "%-8.3f %-16s %-16s %d/%d\n",
			row.Granularity, row.NWC, row.Evals, row.Achieved, row.Trials)
	}
}

// TieBreakResult compares SWIM with and without the magnitude tie-breaker.
type TieBreakResult struct {
	NWC          float64
	WithTie      Cell
	WithoutTie   Cell
	TiedFraction float64 // fraction of weights sharing a second derivative with another weight
}

// noTieSelector orders purely by Hessian value, ties left in index order.
type noTieSelector struct{ hess []float64 }

func (s *noTieSelector) Name() string { return "swim-no-tiebreak" }
func (s *noTieSelector) Order(*rng.Source) []int {
	idx := make([]int, len(s.hess))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return s.hess[idx[a]] > s.hess[idx[b]] })
	return idx
}

// AblateTieBreak measures whether the paper's magnitude tie-breaker (§3.2)
// matters at a given write budget. Ties are common in ReLU networks: weights
// behind dead activations share an exactly-zero second derivative. The
// no-tiebreak variant runs as an unregistered SelectorPolicy on the same
// pipeline as the built-in.
func AblateTieBreak(w *Workload, sigma, nwc float64, scn ReadScenario, trials int, seed uint64) (TieBreakResult, error) {
	dm := w.DeviceFor(sigma)
	table := dm.CycleTable(300, rng.New(seed^0x7eb4))

	counts := map[float64]int{}
	for _, h := range w.Hess {
		counts[h]++
	}
	tied := 0
	for _, h := range w.Hess {
		if counts[h] > 1 {
			tied++
		}
	}

	swimPol, err := program.Lookup("swim")
	if err != nil {
		return TieBreakResult{}, err
	}
	noTie := program.SelectorPolicy("swim-no-tiebreak", func(env *program.Env) (swim.Selector, error) {
		return &noTieSelector{hess: env.Hess}, nil
	})
	withTie, err := pointCell(w, swimPol, sigma, table, nwc, scn, trials, seed)
	if err != nil {
		return TieBreakResult{}, fmt.Errorf("tie-break ablation: %w", err)
	}
	withoutTie, err := pointCell(w, noTie, sigma, table, nwc, scn, trials, seed)
	if err != nil {
		return TieBreakResult{}, fmt.Errorf("tie-break ablation: %w", err)
	}
	return TieBreakResult{
		NWC:          nwc,
		WithTie:      withTie,
		WithoutTie:   withoutTie,
		TiedFraction: float64(tied) / float64(len(w.Hess)),
	}, nil
}

// KBitsResult is one row of the device bit-width ablation.
type KBitsResult struct {
	K        int
	Devices  int
	NoiseStd float64 // unverified weight-level noise (LSB units, Eq. 16)
	NoVerify Cell    // accuracy with no write-verify
	AtNWC    Cell    // accuracy with the policy at the probe NWC
}

// AblateDeviceBits sweeps K, the bits per device (Eq. 15). Fewer bits per
// device means more devices per weight, which changes both the Eq. 16 noise
// amplification and the write-verify cost structure. The no-verify rows run
// the registered "noverify" policy; the probe rows run pol.
func AblateDeviceBits(w *Workload, pol program.Policy, sigma, nwc float64,
	ks []int, scn ReadScenario, trials int, seed uint64) ([]KBitsResult, error) {

	noVerify, err := program.Lookup("noverify")
	if err != nil {
		return nil, err
	}
	var out []KBitsResult
	for _, k := range ks {
		dm := w.DeviceFor(sigma)
		dm.DeviceBits = k
		table := dm.CycleTable(300, rng.New(seed^uint64(k)))
		run := func(p program.Policy, target float64, seed uint64) (Cell, error) {
			// The workload's standard options, then the K-modified device
			// on top (options apply in order, so the later WithDevice
			// wins) — keeping the training split available for -policy
			// insitu runs.
			pl, err := program.New(w.Net, p, program.GridBudget(target),
				append(append(w.Options(sigma), scn.Options()...),
					program.WithDevice(dm),
					program.WithCycleTable(table),
					program.WithSeed(seed),
					program.WithTrials(trials))...)
			if err != nil {
				return Cell{}, fmt.Errorf("kbits ablation at K=%d: %w", k, err)
			}
			res, err := pl.Run(nil)
			if err != nil {
				return Cell{}, fmt.Errorf("kbits ablation at K=%d: %w", k, err)
			}
			return cellOf(res.Points[0].Accuracy), nil
		}
		noVer, err := run(noVerify, 0, seed+uint64(k))
		if err != nil {
			return nil, err
		}
		at, err := run(pol, nwc, seed+uint64(k)+999)
		if err != nil {
			return nil, err
		}
		out = append(out, KBitsResult{
			K: k, Devices: dm.NumDevices(), NoiseStd: dm.NoiseStd(),
			NoVerify: noVer,
			AtNWC:    at,
		})
	}
	return out, nil
}

// PrintKBits renders the device bit-width ablation for the named policy.
func PrintKBits(out io.Writer, w *Workload, policy string, sigma, nwc float64, rows []KBitsResult) {
	fmt.Fprintf(out, "Ablation: device bits K on %s (sigma=%.2f, %s at NWC=%.1f)\n", w.Name, sigma, policy, nwc)
	fmt.Fprintf(out, "%-4s %-8s %-12s %-16s %s\n", "K", "devices", "noise(LSB)", "no write-verify", policy)
	for _, row := range rows {
		fmt.Fprintf(out, "%-4d %-8d %-12.3f %-16s %s\n",
			row.K, row.Devices, row.NoiseStd, row.NoVerify, row.AtNWC)
	}
}

// SpatialResult is one row of the spatial-variation extension experiment.
type SpatialResult struct {
	Label    string
	NoVerify Cell
	SWIMAt   Cell
}

// AblateSpatial exercises the §2.1 extension: programming under combined
// temporal + spatial (globally and locally correlated) variation, with and
// without write-verify at the probe budget. One pipeline run covers both
// cells of a row: the NWC grid {0, nwc} measures the unverified accuracy and
// the post-verify accuracy on the same device instance per trial.
// Write-verify corrects the read-back error whatever its source, so the
// policy's recovery should survive the extra variation — the claim the paper
// defers to future work.
func AblateSpatial(w *Workload, pol program.Policy, sigma, nwc float64,
	scn ReadScenario, trials int, seed uint64) ([]SpatialResult, error) {

	dm := w.DeviceFor(sigma)
	table := dm.CycleTable(300, rng.New(seed^0x59a7))
	side := 1
	for side*side < w.Net.NumMappedWeights() {
		side *= 2
	}
	scfg := device.DefaultSpatial(side, side)

	run := func(spatial bool, seed uint64) (SpatialResult, error) {
		label := "temporal only"
		opts := append(append(w.Options(sigma), scn.Options()...),
			program.WithCycleTable(table),
			program.WithSeed(seed),
			program.WithTrials(trials))
		if spatial {
			label = "temporal + spatial"
			opts = append(opts, program.WithSpatial(scfg))
		}
		p, err := program.New(w.Net, pol, program.GridBudget(0, nwc), opts...)
		if err != nil {
			return SpatialResult{}, fmt.Errorf("spatial ablation (%s): %w", label, err)
		}
		res, err := p.Run(nil)
		if err != nil {
			return SpatialResult{}, fmt.Errorf("spatial ablation (%s): %w", label, err)
		}
		return SpatialResult{Label: label,
			NoVerify: cellOf(res.Points[0].Accuracy),
			SWIMAt:   cellOf(res.Points[1].Accuracy)}, nil
	}
	temporal, err := run(false, seed)
	if err != nil {
		return nil, err
	}
	both, err := run(true, seed+1)
	if err != nil {
		return nil, err
	}
	return []SpatialResult{temporal, both}, nil
}

// PrintSpatial renders the spatial-extension experiment for the named policy.
func PrintSpatial(out io.Writer, w *Workload, policy string, nwc float64, rows []SpatialResult) {
	fmt.Fprintf(out, "Extension: spatial variation (sec 2.1) on %s, %s at NWC=%.1f\n", w.Name, policy, nwc)
	fmt.Fprintf(out, "%-22s %-16s %s\n", "variation", "no write-verify", policy)
	for _, r := range rows {
		fmt.Fprintf(out, "%-22s %-16s %s\n", r.Label, r.NoVerify, r.SWIMAt)
	}
}

// CompareFisher pits SWIM's Hessian-diagonal ranking against the
// empirical-Fisher (squared gradient) alternative at the probe budget, both
// running as policies on the same pipeline.
func CompareFisher(w *Workload, sigma, nwc float64, scn ReadScenario, trials int, seed uint64) (swimCell, fisherCell Cell, err error) {
	dm := w.DeviceFor(sigma)
	table := dm.CycleTable(300, rng.New(seed^0xf15e))
	cx, cy := data.Subset(w.DS.TrainX, w.DS.TrainY, 384)
	fisher := swim.FisherSensitivity(w.Net, cx, cy, 64)
	swimPol, err := program.Lookup("swim")
	if err != nil {
		return Cell{}, Cell{}, err
	}
	fisherPol := program.SelectorPolicy("fisher", func(env *program.Env) (swim.Selector, error) {
		return swim.NewFisherSelector(fisher, env.Weights), nil
	})
	if swimCell, err = pointCell(w, swimPol, sigma, table, nwc, scn, trials, seed); err != nil {
		return Cell{}, Cell{}, fmt.Errorf("fisher comparison: %w", err)
	}
	if fisherCell, err = pointCell(w, fisherPol, sigma, table, nwc, scn, trials, seed); err != nil {
		return Cell{}, Cell{}, fmt.Errorf("fisher comparison: %w", err)
	}
	return swimCell, fisherCell, nil
}

// HessianQuality compares the analytic second derivatives against central
// finite differences of the true loss on a weight sample (the Eq. 4→5
// diagonal-approximation ablation). It returns the Spearman rank correlation
// — ranking quality is what selection actually consumes.
func HessianQuality(w *Workload, sample int, seed uint64) float64 {
	// Finite differences need the smooth underlying network: the activation
	// quantizers make the loss a staircase whose jumps (≈ one activation
	// LSB) swamp the O(eps²) curvature signal. Disable them on a clone and
	// recompute the analytic diagonal on that same smooth network so the two
	// sides of the comparison see the identical function.
	net := w.Net.Clone()
	nn.Walk(net.Trunk, func(l nn.Layer) {
		if q, ok := l.(*nn.QuantAct); ok {
			q.Disabled = true
		}
	})
	params := net.MappedParams()
	loc := mapping.NewLocator(params)
	evalX, evalY := data.Subset(w.DS.TrainX, w.DS.TrainY, 256)

	net.ZeroHess()
	for _, b := range data.Batches(evalX, evalY, 64) {
		net.AccumulateHessian(b.X, b.Y)
	}
	var hess []float64
	for _, p := range params {
		hess = append(hess, p.Hess.Data...)
	}

	lossAt := func() float64 {
		total, batches := 0.0, 0
		for _, b := range data.Batches(evalX, evalY, 64) {
			total += net.EvalLoss(b.X, b.Y)
			batches++
		}
		return total / float64(batches)
	}

	// Random sampling would land mostly on zero-sensitivity weights (dead
	// ReLU paths; the tie-break ablation shows they are the majority), where
	// both the analytic and FD values are zero and rank correlation
	// degenerates. Stratify instead: walk the sensitivity ordering at even
	// strides so the sample spans the full dynamic range the selector
	// actually discriminates over.
	order := swim.NewSWIMSelector(hess, swim.FlatWeights(net)).Order(rng.New(seed))
	span := len(order) / 2 // top half: where selection decisions happen
	if sample > span {
		sample = span
	}
	var analytic, fd []float64
	const eps = 1e-3
	f0 := lossAt()
	for k := 0; k < sample; k++ {
		flat := order[k*span/sample]
		p, off := loc.Param(flat)
		orig := p.Data.Data[off]
		p.Data.Data[off] = orig + eps
		fp := lossAt()
		p.Data.Data[off] = orig - eps
		fm := lossAt()
		p.Data.Data[off] = orig
		analytic = append(analytic, hess[flat])
		fd = append(fd, (fp-2*f0+fm)/(eps*eps))
	}
	return stat.Spearman(analytic, fd)
}
