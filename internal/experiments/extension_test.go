package experiments

import (
	"bytes"
	"testing"

	"swim/internal/program"
)

func TestAblateSpatial(t *testing.T) {
	w := LeNetMNIST()
	pol, err := program.Lookup("swim")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := AblateSpatial(w, pol, SigmaTypical, 0.2, ReadScenario{}, 2, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Label == rows[1].Label {
		t.Fatal("labels not distinct")
	}
	for _, r := range rows {
		// SWIM write-verify should never make things worse than unverified
		// programming (allowing CI-scale Monte-Carlo slack).
		if r.SWIMAt.Mean < r.NoVerify.Mean-3 {
			t.Fatalf("%s: SWIM %.2f below unverified %.2f", r.Label, r.SWIMAt.Mean, r.NoVerify.Mean)
		}
	}
	var buf bytes.Buffer
	PrintSpatial(&buf, w, "swim", 0.2, rows)
	if !bytes.Contains(buf.Bytes(), []byte("spatial")) {
		t.Fatal("print missing content")
	}
}

func TestCompareFisher(t *testing.T) {
	w := LeNetMNIST()
	sw, fi, err := CompareFisher(w, SigmaHigh, 0.1, ReadScenario{}, 2, 61)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []Cell{sw, fi} {
		if c.Mean < 0 || c.Mean > 100 {
			t.Fatalf("bad cell %+v", c)
		}
	}
}
