package experiments

import "testing"

func syntheticRes(swimAt01, magAt01, swimStd, magStd float64) map[string][]Cell {
	return map[string][]Cell{
		"swim":      {{90, 3}, {swimAt01, swimStd}, {97, 0.2}},
		"magnitude": {{90, 3}, {magAt01, magStd}, {97.1, 0.3}},
		"random":    {{90, 3}, {93, 1.5}, {96.9, 0.3}},
		"insitu":    {{90, 3}, {94, 1.0}, {95.5, 0.5}},
	}
}

func TestShapeChecksPassOnPaperLikeData(t *testing.T) {
	nwcs := []float64{0, 0.1, 1.0}
	checks := CheckTable1Shapes(syntheticRes(96.8, 94.5, 0.3, 1.2), nwcs, 0.5)
	if !AllPass(checks) {
		for _, c := range checks {
			if !c.Pass {
				t.Errorf("unexpected failure: %s (%s)", c.Name, c.Note)
			}
		}
	}
	if len(checks) != 1+4+4 {
		t.Fatalf("expected 9 checks, got %d", len(checks))
	}
}

func TestShapeChecksCatchInvertedResult(t *testing.T) {
	nwcs := []float64{0, 0.1, 1.0}
	// Magnitude beating SWIM by a wide margin should fail a check.
	checks := CheckTable1Shapes(syntheticRes(92.0, 96.5, 2.0, 0.2), nwcs, 0.5)
	if AllPass(checks) {
		t.Fatal("inverted result passed the shape checks")
	}
}

func TestShapeChecksOnRealFastSweep(t *testing.T) {
	w := LeNetMNIST()
	cfg := SweepConfig{NWCs: []float64{0, 0.1, 1.0}, Trials: 4, Seed: 50}
	res := map[string][]Cell{}
	for _, m := range Methods {
		cells, err := Sweep(w, SigmaHigh, m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res[m] = cells
	}
	// CI scale runs a 300-sample eval over 4 trials: binomial noise alone is
	// ~1.7 pp per trial, so the slack must be generous. The full-scale shape
	// verification lives in EXPERIMENTS.md (10 trials, 1000-sample eval).
	checks := CheckTable1Shapes(res, cfg.NWCs, 5.0)
	for _, c := range checks {
		if !c.Pass {
			t.Errorf("shape check failed at CI scale: %s (%s)", c.Name, c.Note)
		}
	}
}
