package experiments

import (
	"bytes"
	"os"
	"runtime"
	"testing"

	"swim/internal/mc"
	"swim/internal/program"
)

func TestMain(m *testing.M) {
	// Experiments tests exercise the full pipeline at CI scale.
	os.Setenv("SWIM_FAST", "1")
	os.Setenv("SWIM_MC", "3")
	os.Exit(m.Run())
}

func TestLeNetWorkloadBuildsOnceAndTrains(t *testing.T) {
	w1 := LeNetMNIST()
	w2 := LeNetMNIST()
	if w1 != w2 {
		t.Fatal("workload registry did not cache")
	}
	if w1.CleanAcc < 50 {
		t.Fatalf("fast LeNet clean accuracy %.1f%% too low to be a trained model", w1.CleanAcc)
	}
	if len(w1.Hess) != w1.Net.NumMappedWeights() {
		t.Fatal("sensitivity length mismatch")
	}
}

func TestSweepRejectsUnknownPolicy(t *testing.T) {
	w := LeNetMNIST()
	cfg := SweepConfig{NWCs: []float64{0}, Trials: 2, Seed: 8}
	if _, err := Sweep(w, SigmaHigh, "bogus", cfg); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestSweepShapesAndMonotoneTrend(t *testing.T) {
	w := LeNetMNIST()
	cfg := SweepConfig{NWCs: []float64{0, 0.3, 1.0}, Trials: 3, Seed: 9}
	cells, err := Sweep(w, SigmaHigh, "swim", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("cells = %d", len(cells))
	}
	// Write-verifying more weights must not make things dramatically worse:
	// final point should be at least the unverified point.
	if cells[2].Mean < cells[0].Mean-1.0 {
		t.Fatalf("NWC=1 accuracy (%.2f) far below NWC=0 (%.2f)", cells[2].Mean, cells[0].Mean)
	}
	for _, c := range cells {
		if c.Mean < 0 || c.Mean > 100 || c.Std < 0 {
			t.Fatalf("bad cell %+v", c)
		}
	}
}

func TestSweepInSitu(t *testing.T) {
	w := LeNetMNIST()
	cfg := SweepConfig{NWCs: []float64{0, 0.2}, Trials: 2, Seed: 10}
	cells, err := Sweep(w, SigmaHigh, "insitu", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d", len(cells))
	}
}

// TestSweepWorkerInvariance pins the end-to-end determinism guarantee: a
// full device-programming sweep yields bit-identical cells whatever the
// worker count.
func TestSweepWorkerInvariance(t *testing.T) {
	w := LeNetMNIST()
	cfg := SweepConfig{NWCs: []float64{0, 0.5}, Trials: 4, Seed: 90}
	defer mc.SetWorkers(0)
	mc.SetWorkers(1)
	serial, err := Sweep(w, SigmaHigh, "swim", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{3, runtime.NumCPU()} {
		mc.SetWorkers(workers)
		cells, err := Sweep(w, SigmaHigh, "swim", cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range cells {
			if cells[i] != serial[i] {
				t.Fatalf("workers=%d cell %d: %+v != serial %+v", workers, i, cells[i], serial[i])
			}
		}
	}
}

func TestTable1AndPrint(t *testing.T) {
	w := LeNetMNIST()
	cfg := SweepConfig{NWCs: []float64{0, 1.0}, Trials: 2, Seed: 11}
	res, err := Table1(w, []float64{SigmaTypical}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || len(res[SigmaTypical]) != len(Methods) {
		t.Fatal("table shape wrong")
	}
	var buf bytes.Buffer
	PrintTable1(&buf, w, []float64{SigmaTypical}, cfg, res)
	if buf.Len() == 0 || !bytes.Contains(buf.Bytes(), []byte("swim")) {
		t.Fatal("print produced nothing useful")
	}
}

func TestFig1Correlations(t *testing.T) {
	w := LeNetMNIST()
	cfg := Fig1Config{NumWeights: 24, Repeats: 3, SigmaPerturb: 3, EvalN: 120, Seed: 12}
	res, err := Fig1(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Drop) != 24 {
		t.Fatalf("drops = %d", len(res.Drop))
	}
	if res.PearsonHess < -1 || res.PearsonHess > 1 {
		t.Fatalf("pearson out of range: %v", res.PearsonHess)
	}
	var buf bytes.Buffer
	PrintFig1(&buf, w, cfg, res)
	if !bytes.Contains(buf.Bytes(), []byte("Pearson")) {
		t.Fatal("fig1 print missing correlations")
	}
}

func TestFig2Panel(t *testing.T) {
	w := ConvNetCIFAR()
	cfg := SweepConfig{NWCs: []float64{0, 1.0}, Trials: 2, Seed: 13}
	res, err := Fig2(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(Methods) {
		t.Fatal("missing methods")
	}
	var buf bytes.Buffer
	PrintFig2(&buf, w, cfg, res)
	if !bytes.Contains(buf.Bytes(), []byte("insitu")) {
		t.Fatal("fig2 print missing methods")
	}
}

func TestSpeedupAt(t *testing.T) {
	nwcs := []float64{0, 0.1, 0.5, 1.0}
	swimC := []Cell{{90, 0}, {97, 0}, {98, 0}, {98, 0}}
	rival := []Cell{{90, 0}, {92, 0}, {96, 0}, {97.5, 0}}
	// SWIM reaches 97 at NWC 0.1; rival never reaches 97 within grid -> 10x.
	if s := SpeedupAt(swimC, rival, nwcs, 0.1); s != 10 {
		t.Fatalf("speedup = %v, want 10", s)
	}
	rival2 := []Cell{{90, 0}, {92, 0}, {97.2, 0}, {98, 0}}
	if s := SpeedupAt(swimC, rival2, nwcs, 0.1); s != 5 {
		t.Fatalf("speedup = %v, want 5", s)
	}
}

func TestAblateGranularity(t *testing.T) {
	w := LeNetMNIST()
	pol, err := program.Lookup("swim")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := AblateGranularity(w, pol, SigmaHigh, 5.0, []float64{0.05, 0.25}, ReadScenario{}, 2, 14)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatal("rows missing")
	}
	var buf bytes.Buffer
	PrintGranularity(&buf, w, 5.0, rows)
	if buf.Len() == 0 {
		t.Fatal("granularity print empty")
	}
}

func TestAblateTieBreak(t *testing.T) {
	w := LeNetMNIST()
	res, err := AblateTieBreak(w, SigmaHigh, 0.1, ReadScenario{}, 2, 15)
	if err != nil {
		t.Fatal(err)
	}
	if res.TiedFraction < 0 || res.TiedFraction > 1 {
		t.Fatalf("tied fraction %v", res.TiedFraction)
	}
}

func TestAblateDeviceBits(t *testing.T) {
	w := LeNetMNIST()
	pol, err := program.Lookup("swim")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := AblateDeviceBits(w, pol, SigmaTypical, 0.1, []int{2, 4}, ReadScenario{}, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatal("rows missing")
	}
	if rows[0].Devices <= rows[1].Devices {
		t.Fatalf("K=2 should need more devices than K=4: %+v", rows)
	}
	var buf bytes.Buffer
	PrintKBits(&buf, w, "swim", SigmaTypical, 0.1, rows)
	if buf.Len() == 0 {
		t.Fatal("kbits print empty")
	}
}

func TestHessianQuality(t *testing.T) {
	w := LeNetMNIST()
	rho := HessianQuality(w, 12, 17)
	if rho < -1 || rho > 1 {
		t.Fatalf("spearman %v out of range", rho)
	}
}
