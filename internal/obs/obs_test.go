package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("c_total", "a counter"); again != c {
		t.Fatal("re-registration did not return the existing counter")
	}
	g := r.Gauge("g", "a gauge")
	g.Set(7)
	g.Add(-2)
	if got := g.Load(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m", "")
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); got != 106.5 {
		t.Fatalf("sum = %g, want 106.5", got)
	}
	// Median rank 2.5 lands in the (1,2] bucket (cumulative 1 → 3).
	q := h.Quantile(0.5)
	if q < 1 || q > 2 {
		t.Fatalf("median = %g, want within (1,2]", q)
	}
	// The +Inf bucket clamps to the largest finite bound.
	if got := h.Quantile(1); got != 4 {
		t.Fatalf("q1 = %g, want 4 (clamped)", got)
	}
	if got := NewHistogram(nil).Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram([]float64{0.5})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
	if got := h.Sum(); got != 2000 {
		t.Fatalf("sum = %g, want 2000", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("swim_jobs_total", "jobs").Add(3)
	r.Gauge("swim_depth", "depth").Set(2)
	r.GaugeFunc("swim_live", "live", func() float64 { return 1.5 })
	h := r.Histogram("swim_lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(5)
	v := r.HistogramVec("swim_plan_seconds", "plan latency", "backend", []float64{1})
	v.With(`sca"lar`).Observe(0.5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wants := []string{
		"# HELP swim_jobs_total jobs",
		"# TYPE swim_jobs_total counter",
		"swim_jobs_total 3",
		"# TYPE swim_depth gauge",
		"swim_depth 2",
		"swim_live 1.5",
		"# TYPE swim_lat_seconds histogram",
		`swim_lat_seconds_bucket{le="0.1"} 1`,
		`swim_lat_seconds_bucket{le="1"} 1`,
		`swim_lat_seconds_bucket{le="+Inf"} 2`,
		"swim_lat_seconds_sum 5.05",
		"swim_lat_seconds_count 2",
		`swim_plan_seconds_bucket{backend="sca\"lar",le="1"} 1`,
		`swim_plan_seconds_count{backend="sca\"lar"} 1`,
	}
	for _, want := range wants {
		if !strings.Contains(out, want) {
			t.Errorf("exposition lacks %q:\n%s", want, out)
		}
	}
	// Counters must precede their TYPE line's next family — spot-check order
	// stability: registration order is exposition order.
	if strings.Index(out, "swim_jobs_total 3") > strings.Index(out, "swim_depth 2") {
		t.Error("exposition does not follow registration order")
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(2)
	h := r.Histogram("h_seconds", "", []float64{1})
	h.Observe(0.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if got := snap["c_total"].(float64); got != 2 {
		t.Fatalf("snapshot counter = %v, want 2", got)
	}
	hist := snap["h_seconds"].(map[string]any)
	if got := hist["count"].(float64); got != 1 {
		t.Fatalf("snapshot histogram count = %v, want 1", got)
	}
}

func TestStageSpanNoOp(t *testing.T) {
	var nilStage *Stage
	nilStage.Start().End() // must not panic
	(&Stage{}).Start().End()
	Span{}.End()

	h := NewHistogram(nil)
	st := &Stage{H: h}
	st.Start().End()
	if got := h.Count(); got != 1 {
		t.Fatalf("stage recorded %d spans, want 1", got)
	}
}

func TestZeroAllocInstruments(t *testing.T) {
	var c Counter
	var g Gauge
	h := NewHistogram(nil)
	vec := &HistogramVec{label: "l", bounds: []float64{1}, children: map[string]*Histogram{}}
	vec.With("x") // create the child outside the measured loop
	st := &Stage{H: h}
	var nilStage *Stage

	checks := []struct {
		name string
		fn   func()
	}{
		{"counter-inc", func() { c.Inc() }},
		{"gauge-set", func() { g.Set(1) }},
		{"histogram-observe", func() { h.Observe(0.1) }},
		{"vec-with-observe", func() { vec.With("x").Observe(0.1) }},
		{"stage-span", func() { st.Start().End() }},
		{"nil-stage", func() { nilStage.Start().End() }},
	}
	for _, chk := range checks {
		if allocs := testing.AllocsPerRun(200, chk.fn); allocs != 0 {
			t.Errorf("%s: %g allocs/op, want 0", chk.name, allocs)
		}
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.001)
	}
}
