// Package obs is the zero-dependency observability core of the swim stack:
// atomic counters, gauges and fixed-bucket latency histograms behind a
// Registry with Prometheus-text and JSON exposition, plus a lightweight
// Span/Stage timing API whose no-op default costs one nil check and zero
// allocations on uninstrumented paths.
//
// Design constraints, in order:
//
//   - Observe-only. Nothing in this package may influence the computation it
//     watches: no locks on hot paths, no RNG, no scheduling effects. The
//     engine's bit-identical determinism contract (package mc) must hold with
//     instrumentation on or off, which is why every instrument is a plain
//     atomic update.
//
//   - Zero allocations once created. Counter.Inc, Gauge.Set,
//     Histogram.Observe, HistogramVec.With and Span.End allocate nothing in
//     steady state, so the instrumented evaluation hot path stays under the
//     repo's 0 allocs/op benchmark gate (BenchmarkEvalPlan*).
//
//   - Zero dependencies. Standard library only — the package must be
//     importable from the innermost layers (mc, eval) without dragging a
//     metrics ecosystem into the build.
//
// The serving daemon (internal/serve) owns the canonical Registry and
// exposes it on GET /v1/metrics in Prometheus text or JSON via content
// negotiation; see docs/ARCHITECTURE.md, "Observability tier".
package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n to the counter. Negative deltas are a programming error but are
// not rejected — counters are observe-only and must never panic a hot path.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an instantaneous atomic value that may go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// DefaultLatencyBuckets returns the fixed upper bounds (seconds) used for
// latency histograms when the caller does not supply its own: roughly
// exponential from 500µs to 60s, sized for everything from a single
// compiled-plan batch execution to a multi-second shard round trip.
func DefaultLatencyBuckets() []float64 {
	return []float64{
		0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
		0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
	}
}

// Histogram is a fixed-bucket histogram with atomic per-bucket counts, an
// atomic sum and a running count. Observe is lock-free and allocation-free;
// Quantile interpolates a running quantile from the bucket counts, which is
// what the coordinator's shard-size autotuner consumes.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; the +Inf bucket is implicit
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, updated via CAS
}

// NewHistogram builds a histogram over the given sorted upper bounds
// (nil/empty selects DefaultLatencyBuckets). An implicit +Inf bucket catches
// overflow observations.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets()
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value. Allocation-free and safe for concurrent use.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns how many values have been observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile returns the running q-quantile (0 ≤ q ≤ 1) estimated by linear
// interpolation within the bucket containing the target rank — the usual
// Prometheus histogram_quantile estimate, computed locally. Observations in
// the +Inf bucket clamp to the largest finite bound. Returns 0 when nothing
// has been observed.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := 0.0
	for i := range h.buckets {
		n := float64(h.buckets[i].Load())
		if cum+n < rank || n == 0 {
			cum += n
			continue
		}
		if i >= len(h.bounds) {
			// +Inf bucket: clamp to the largest finite bound.
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		return lo + (hi-lo)*((rank-cum)/n)
	}
	return h.bounds[len(h.bounds)-1]
}

// snapshotBuckets returns a point-in-time copy of the cumulative bucket
// counts (len(bounds)+1 entries; the last is the +Inf bucket's), plus the
// matching count and sum.
func (h *Histogram) snapshotBuckets() (counts []int64, count int64, sum float64) {
	counts = make([]int64, len(h.buckets))
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	return counts, h.count.Load(), h.Sum()
}

// Stage names one instrumented code region backed by a Histogram. The zero
// value and the nil *Stage are inert: Start then costs a single nil check
// and Span.End does nothing, so uninstrumented call sites pay nothing.
type Stage struct {
	// H receives one observation (seconds) per completed Span.
	H *Histogram
}

// Start opens a timing span for the stage. Safe on a nil or zero Stage.
func (s *Stage) Start() Span {
	if s == nil || s.H == nil {
		return Span{}
	}
	return Span{h: s.H, start: time.Now()}
}

// Span is one in-flight timing measurement created by Stage.Start. The zero
// Span is inert. Span is a value type: it lives on the caller's stack and
// End performs no allocations.
type Span struct {
	h     *Histogram
	start time.Time
}

// End closes the span, recording the elapsed wall-clock seconds into the
// stage's histogram. Safe on the zero Span.
func (sp Span) End() {
	if sp.h == nil {
		return
	}
	sp.h.Observe(time.Since(sp.start).Seconds())
}
