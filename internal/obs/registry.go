package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Metric kinds tracked by the registry (internal; exposition branches on
// them).
const (
	kindCounter = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
	kindHistogramVec
)

// family is one registered metric name: exactly one instrument (or one
// labeled vector of instruments) per name.
type family struct {
	name, help string
	kind       int

	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
	vec     *HistogramVec
}

// Registry is a named collection of instruments with Prometheus-text and
// JSON exposition. Registration is idempotent per (name, kind): asking for
// an existing name returns the existing instrument, so package-level wiring
// and tests can re-register freely. Registering a name under a different
// kind panics — that is a programming error, caught at wiring time, never
// on an observation path.
type Registry struct {
	mu       sync.Mutex
	families []*family // registration order, for stable exposition
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// lookup returns the family registered under name after checking its kind,
// or registers a new one built by mk. Call under no lock.
func (r *Registry) lookup(name, help string, kind int, mk func(*family)) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind}
	mk(f)
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// Counter registers (or returns) the counter named name.
func (r *Registry) Counter(name, help string) *Counter {
	return r.lookup(name, help, kindCounter, func(f *family) { f.counter = &Counter{} }).counter
}

// Gauge registers (or returns) the gauge named name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.lookup(name, help, kindGauge, func(f *family) { f.gauge = &Gauge{} }).gauge
}

// GaugeFunc registers a live gauge whose value is computed by fn at
// exposition time — for values the owner already maintains (queue depth,
// table sizes) where mirroring into a stored Gauge would just drift. fn runs
// outside the registry lock's critical path but during exposition; it must
// not call back into this registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.lookup(name, help, kindGaugeFunc, func(f *family) { f.gaugeFn = fn })
}

// Histogram registers (or returns) the histogram named name over the given
// bucket bounds (nil selects DefaultLatencyBuckets). Bounds are fixed at
// first registration.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.lookup(name, help, kindHistogram, func(f *family) { f.hist = NewHistogram(bounds) }).hist
}

// HistogramVec registers (or returns) a histogram family keyed by one label
// (e.g. per-backend plan latency, per-worker shard latency). Children are
// created lazily by With.
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets()
	}
	return r.lookup(name, help, kindHistogramVec, func(f *family) {
		f.vec = &HistogramVec{label: label, bounds: append([]float64(nil), bounds...), children: make(map[string]*Histogram)}
	}).vec
}

// HistogramVec is a set of histograms sharing one name and bucket layout,
// distinguished by a single label value. With is allocation-free once a
// child exists, so vectors are safe on hot paths keyed by a small stable
// set of values (kernel backend names, worker URLs).
type HistogramVec struct {
	label  string
	bounds []float64

	mu       sync.RWMutex
	children map[string]*Histogram
}

// With returns the child histogram for the given label value, creating it on
// first use. The fast path (existing child) is a read-locked map lookup.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.RLock()
	h, ok := v.children[value]
	v.mu.RUnlock()
	if ok {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok := v.children[value]; ok {
		return h
	}
	h = NewHistogram(v.bounds)
	v.children[value] = h
	return h
}

// snapshot returns the children sorted by label value for stable exposition.
func (v *HistogramVec) snapshot() (values []string, hists []*Histogram) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	values = make([]string, 0, len(v.children))
	for val := range v.children {
		values = append(values, val)
	}
	sort.Strings(values)
	hists = make([]*Histogram, len(values))
	for i, val := range values {
		hists[i] = v.children[val]
	}
	return values, hists
}

// --- exposition ----------------------------------------------------------

// formatFloat renders a float the way Prometheus text exposition expects.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// escapeLabel escapes a label value for the text exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// writeHistogram emits one histogram's _bucket/_sum/_count series. labels is
// the pre-rendered label prefix ("" or `worker="..."`).
func writeHistogram(w io.Writer, name, labels string, h *Histogram) error {
	counts, count, sum := h.snapshotBuckets()
	sep := ""
	if labels != "" {
		sep = ","
	}
	cum := int64(0)
	for i, n := range counts {
		cum += n
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum{%s} %s\n", name, labels, formatFloat(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, count)
	return err
}

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format (version 0.0.4), in registration order, with families
// annotated by # HELP and # TYPE lines.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		typ := "counter"
		switch f.kind {
		case kindGauge, kindGaugeFunc:
			typ = "gauge"
		case kindHistogram, kindHistogramVec:
			typ = "histogram"
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, typ); err != nil {
			return err
		}
		var err error
		switch f.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s %d\n", f.name, f.counter.Load())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s %d\n", f.name, f.gauge.Load())
		case kindGaugeFunc:
			_, err = fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(f.gaugeFn()))
		case kindHistogram:
			err = writeHistogramClean(w, f.name, f.hist)
		case kindHistogramVec:
			values, hists := f.vec.snapshot()
			for i, val := range values {
				labels := f.vec.label + `="` + escapeLabel(val) + `"`
				if err = writeHistogram(w, f.name, labels, hists[i]); err != nil {
					break
				}
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writeHistogramClean is writeHistogram for the unlabeled case, emitting
// `name_sum 0.1` instead of `name_sum{} 0.1`.
func writeHistogramClean(w io.Writer, name string, h *Histogram) error {
	counts, count, sum := h.snapshotBuckets()
	cum := int64(0)
	for i, n := range counts {
		cum += n
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, count)
	return err
}

// histogramJSON renders one histogram for Snapshot.
func histogramJSON(h *Histogram) map[string]any {
	counts, count, sum := h.snapshotBuckets()
	buckets := make(map[string]int64, len(counts))
	cum := int64(0)
	for i, n := range counts {
		cum += n
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		buckets[le] = cum
	}
	return map[string]any{"count": count, "sum": sum, "buckets": buckets}
}

// Snapshot returns a point-in-time JSON-marshalable view of every metric:
// counters and gauges as integers, live gauges as floats, histograms as
// {count, sum, buckets} objects (vectors as label-keyed maps of those).
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	out := make(map[string]any, len(fams))
	for _, f := range fams {
		switch f.kind {
		case kindCounter:
			out[f.name] = f.counter.Load()
		case kindGauge:
			out[f.name] = f.gauge.Load()
		case kindGaugeFunc:
			out[f.name] = f.gaugeFn()
		case kindHistogram:
			out[f.name] = histogramJSON(f.hist)
		case kindHistogramVec:
			values, hists := f.vec.snapshot()
			m := make(map[string]any, len(values))
			for i, val := range values {
				m[val] = histogramJSON(hists[i])
			}
			out[f.name] = m
		}
	}
	return out
}

// WriteJSON writes the Snapshot as an indented JSON document.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
