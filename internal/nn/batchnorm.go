package nn

import (
	"fmt"
	"math"

	"swim/internal/tensor"
)

// BatchNorm2D normalizes per channel over [B, C, H, W] activations.
//
// Training mode uses batch statistics and the full batch-norm gradient;
// evaluation mode uses running statistics, making the layer an affine map
// y = (γ/σ)·x + const per channel. SWIM's sensitivity pass always runs in
// evaluation mode (the network is converged and frozen while being mapped),
// where the paper's FC-layer rule applies exactly: the second derivative
// propagates through the squared coefficient (γ/σ)².
//
// γ and β live in digital peripheral registers on a CiM accelerator, not in
// NVM crossbars, so they are not Mapped and never write-verified.
type BatchNorm2D struct {
	name string
	C    int
	// Momentum is the running-statistics update rate (typical 0.1).
	Momentum float64
	// Eps stabilizes 1/sqrt(var).
	Eps float64

	Gamma, Beta *Param
	RunMean     *tensor.Tensor
	RunVar      *tensor.Tensor

	// caches from Forward
	trainMode bool
	xhat      *tensor.Tensor // normalized input
	invStd    []float64      // per-channel 1/sqrt(var+eps) actually used
	inShape   []int
}

// NewBatchNorm2D builds a batch-norm layer for c channels.
func NewBatchNorm2D(name string, c int) *BatchNorm2D {
	bn := &BatchNorm2D{
		name: name, C: c, Momentum: 0.1, Eps: 1e-5,
		Gamma: newParam(name+".gamma", c), Beta: newParam(name+".beta", c),
		RunMean: tensor.New(c), RunVar: tensor.New(c),
	}
	bn.Gamma.Data.Fill(1)
	bn.RunVar.Fill(1)
	return bn
}

// Name implements Layer.
func (bn *BatchNorm2D) Name() string { return bn.name }

// Forward implements Layer.
func (bn *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkBatched(x, 4, bn.name)
	b, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if c != bn.C {
		panic("nn: BatchNorm2D channel mismatch")
	}
	bn.trainMode = train
	bn.inShape = append(bn.inShape[:0], x.Shape...)
	hw := h * w
	n := float64(b * hw)

	mean := make([]float64, c)
	variance := make([]float64, c)
	if train {
		for ci := 0; ci < c; ci++ {
			s := 0.0
			for bi := 0; bi < b; bi++ {
				seg := x.Data[(bi*c+ci)*hw : (bi*c+ci+1)*hw]
				for _, v := range seg {
					s += v
				}
			}
			mean[ci] = s / n
		}
		for ci := 0; ci < c; ci++ {
			s := 0.0
			for bi := 0; bi < b; bi++ {
				seg := x.Data[(bi*c+ci)*hw : (bi*c+ci+1)*hw]
				for _, v := range seg {
					d := v - mean[ci]
					s += d * d
				}
			}
			variance[ci] = s / n
			bn.RunMean.Data[ci] = (1-bn.Momentum)*bn.RunMean.Data[ci] + bn.Momentum*mean[ci]
			bn.RunVar.Data[ci] = (1-bn.Momentum)*bn.RunVar.Data[ci] + bn.Momentum*variance[ci]
		}
	} else {
		copy(mean, bn.RunMean.Data)
		copy(variance, bn.RunVar.Data)
	}

	if bn.invStd == nil || len(bn.invStd) != c {
		bn.invStd = make([]float64, c)
	}
	for ci := 0; ci < c; ci++ {
		bn.invStd[ci] = 1.0 / math.Sqrt(variance[ci]+bn.Eps)
	}

	out := tensor.New(x.Shape...)
	bn.xhat = tensor.New(x.Shape...)
	for bi := 0; bi < b; bi++ {
		for ci := 0; ci < c; ci++ {
			base := (bi*c + ci) * hw
			g, bta, m, is := bn.Gamma.Data.Data[ci], bn.Beta.Data.Data[ci], mean[ci], bn.invStd[ci]
			for i := base; i < base+hw; i++ {
				xh := (x.Data[i] - m) * is
				bn.xhat.Data[i] = xh
				out.Data[i] = g*xh + bta
			}
		}
	}
	return out
}

// OutShape implements PlanLayer.
func (bn *BatchNorm2D) OutShape(in []int) ([]int, error) {
	if len(in) != 4 || in[1] != bn.C {
		return nil, fmt.Errorf("%s: want input shape [B %d H W], got %v", bn.name, bn.C, in)
	}
	return in, nil
}

// ForwardInto implements PlanLayer: the frozen-statistics affine map
// y = γ·(x − μ)/σ + β per channel, computed with exactly the expressions the
// evaluation-mode Forward uses (no x̂ caching — inference only).
func (bn *BatchNorm2D) ForwardInto(dst, x *tensor.Tensor, _ *tensor.Arena) {
	b, c := x.Shape[0], x.Shape[1]
	hw := x.Shape[2] * x.Shape[3]
	for bi := 0; bi < b; bi++ {
		for ci := 0; ci < c; ci++ {
			base := (bi*c + ci) * hw
			g, bta := bn.Gamma.Data.Data[ci], bn.Beta.Data.Data[ci]
			m := bn.RunMean.Data[ci]
			is := 1.0 / math.Sqrt(bn.RunVar.Data[ci]+bn.Eps)
			for i := base; i < base+hw; i++ {
				xh := (x.Data[i] - m) * is
				dst.Data[i] = g*xh + bta
			}
		}
	}
}

// Backward implements Layer.
func (bn *BatchNorm2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	b, c := bn.inShape[0], bn.inShape[1]
	hw := bn.inShape[2] * bn.inShape[3]
	n := float64(b * hw)
	gradIn := tensor.New(bn.inShape...)

	for ci := 0; ci < c; ci++ {
		// Per-channel reductions.
		var sumDy, sumDyXhat float64
		for bi := 0; bi < b; bi++ {
			base := (bi*c + ci) * hw
			for i := base; i < base+hw; i++ {
				dy := gradOut.Data[i]
				sumDy += dy
				sumDyXhat += dy * bn.xhat.Data[i]
			}
		}
		bn.Beta.Grad.Data[ci] += sumDy
		bn.Gamma.Grad.Data[ci] += sumDyXhat

		g, is := bn.Gamma.Data.Data[ci], bn.invStd[ci]
		if bn.trainMode {
			// Full batch-norm gradient: dx = (γ/σ)(dy − mean(dy) − x̂·mean(dy·x̂)).
			mDy, mDyXhat := sumDy/n, sumDyXhat/n
			for bi := 0; bi < b; bi++ {
				base := (bi*c + ci) * hw
				for i := base; i < base+hw; i++ {
					gradIn.Data[i] = g * is * (gradOut.Data[i] - mDy - bn.xhat.Data[i]*mDyXhat)
				}
			}
		} else {
			// Frozen statistics: plain affine map.
			for bi := 0; bi < b; bi++ {
				base := (bi*c + ci) * hw
				for i := base; i < base+hw; i++ {
					gradIn.Data[i] = g * is * gradOut.Data[i]
				}
			}
		}
	}
	return gradIn
}

// BackwardSecond implements Layer.
func (bn *BatchNorm2D) BackwardSecond(hessOut *tensor.Tensor) *tensor.Tensor {
	b, c := bn.inShape[0], bn.inShape[1]
	hw := bn.inShape[2] * bn.inShape[3]
	hessIn := tensor.New(bn.inShape...)
	for ci := 0; ci < c; ci++ {
		g, is := bn.Gamma.Data.Data[ci], bn.invStd[ci]
		coeff := g * is * g * is
		var sumH, sumHXhat2 float64
		for bi := 0; bi < b; bi++ {
			base := (bi*c + ci) * hw
			for i := base; i < base+hw; i++ {
				hv := hessOut.Data[i]
				hessIn.Data[i] = coeff * hv
				sumH += hv
				xh := bn.xhat.Data[i]
				sumHXhat2 += hv * xh * xh
			}
		}
		// d²f/dβ² = Σ d²f/dy²; d²f/dγ² = Σ d²f/dy² · x̂² (dy/dγ = x̂, linear).
		bn.Beta.Hess.Data[ci] += sumH
		bn.Gamma.Hess.Data[ci] += sumHXhat2
	}
	return hessIn
}

// Params implements Layer.
func (bn *BatchNorm2D) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }

// Clone implements Layer.
func (bn *BatchNorm2D) Clone() Layer {
	return &BatchNorm2D{
		name: bn.name, C: bn.C, Momentum: bn.Momentum, Eps: bn.Eps,
		Gamma: bn.Gamma.clone(), Beta: bn.Beta.clone(),
		RunMean: bn.RunMean.Clone(), RunVar: bn.RunVar.Clone(),
	}
}
