package nn

import (
	"fmt"
	"math"

	"swim/internal/kernel"
	"swim/internal/rng"
	"swim/internal/tensor"
)

// Conv2D is a 2-D convolution lowered to im2col + matmul. As the paper notes,
// convolution "can be cast in the same form as FC layers", so its first- and
// second-derivative backprop reuse the linear-layer rules with the im2col
// adjoint (Col2ImAdd) scattering input derivatives back; overlapping
// receptive fields sum, exactly like the skip-connection rule.
type Conv2D struct {
	name string
	OutC int
	Geom tensor.Conv2DGeom
	W, B *Param // W is [outC, inC*kh*kw]

	x    *tensor.Tensor // cached input [B, inC, inH, inW]
	cols *tensor.Tensor // scratch im2col buffer, reused across calls
}

// NewConv2D builds a convolution for a fixed input geometry (channels ×
// height × width), kernel, stride and padding. Fixing the geometry at
// construction keeps forward hot paths allocation-free; the models in this
// repo all run fixed input sizes, as crossbar-mapped accelerators do.
func NewConv2D(name string, inC, inH, inW, outC, kh, kw, stride, pad int, r *rng.Source) *Conv2D {
	g := tensor.NewConv2DGeom(inC, inH, inW, kh, kw, stride, pad)
	c := &Conv2D{name: name, OutC: outC, Geom: g,
		W: newParam(name+".W", outC, g.ColRows()),
		B: newParam(name+".B", outC),
	}
	c.W.Mapped = true
	std := math.Sqrt(2.0 / float64(g.ColRows()))
	for i := range c.W.Data.Data {
		c.W.Data.Data[i] = r.Gauss(0, std)
	}
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

// OutShape implements PlanLayer.
func (c *Conv2D) OutShape(in []int) ([]int, error) {
	g := c.Geom
	if len(in) != 4 || in[1] != g.InC || in[2] != g.InH || in[3] != g.InW {
		return nil, fmt.Errorf("%s: want input shape [B %d %d %d], got %v", c.name, g.InC, g.InH, g.InW, in)
	}
	return []int{in[0], c.OutC, g.OutH, g.OutW}, nil
}

func (c *Conv2D) scratch() *tensor.Tensor {
	if c.cols == nil {
		c.cols = tensor.New(c.Geom.ColRows(), c.Geom.ColCols())
	}
	return c.cols
}

// Forward implements Layer as a thin wrapper over ForwardInto that
// additionally caches the input for the backward passes.
func (c *Conv2D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	checkBatched(x, 4, c.name)
	c.x = x
	out := tensor.New(x.Shape[0], c.OutC, c.Geom.OutH, c.Geom.OutW)
	c.ForwardInto(out, x, nil)
	return out
}

// ForwardInto implements PlanLayer through the default (scalar) backend.
func (c *Conv2D) ForwardInto(dst, x *tensor.Tensor, s *tensor.Arena) {
	c.ForwardIntoKernel(dst, x, s, kernel.Default())
}

// ForwardIntoKernel implements KernelLayer: the batched convolution
// primitive dst = conv(x, W) + b. For backends that lower through im2col the
// workspace comes from scratch when provided (nil scratch falls back to the
// layer-owned buffer, as the legacy path always did); im2col-free backends
// get no workspace at all.
func (c *Conv2D) ForwardIntoKernel(dst, x *tensor.Tensor, s *tensor.Arena, k kernel.Backend) {
	g := c.Geom
	var cols *tensor.Tensor
	if k.UsesIm2Col() {
		if s != nil {
			cols = s.Alloc(g.ColRows(), g.ColCols())
		} else {
			cols = c.scratch()
		}
	}
	k.Conv2D(g, c.OutC, dst, x, c.W.Data, c.B.Data.Data, cols)
}

// Backward implements Layer.
func (c *Conv2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	b := gradOut.Shape[0]
	g := c.Geom
	gradIn := tensor.New(b, g.InC, g.InH, g.InW)
	cols := c.scratch()
	colGrad := tensor.New(g.ColRows(), g.ColCols())
	sampleIn := g.InC * g.InH * g.InW
	sampleOut := c.OutC * g.OutH * g.OutW
	hw := g.OutH * g.OutW
	for bi := 0; bi < b; bi++ {
		gm := tensor.FromSlice(gradOut.Data[bi*sampleOut:(bi+1)*sampleOut], c.OutC, g.ColCols())
		// dW += gm · colsᵀ (recompute im2col; cheaper than caching per-sample)
		g.Im2ColInto(cols, c.x.Data[bi*sampleIn:(bi+1)*sampleIn])
		tensor.MatMulTransBInto(c.W.Grad, gm, cols, true)
		// db += spatial sums
		for oc := 0; oc < c.OutC; oc++ {
			s := 0.0
			seg := gm.Data[oc*hw : (oc+1)*hw]
			for _, v := range seg {
				s += v
			}
			c.B.Grad.Data[oc] += s
		}
		// dI = col2im(Wᵀ · gm)
		tensor.MatMulTransAInto(colGrad, c.W.Data, gm, false)
		g.Col2ImAdd(gradIn.Data[bi*sampleIn:(bi+1)*sampleIn], colGrad)
	}
	return gradIn
}

// BackwardSecond implements Layer.
func (c *Conv2D) BackwardSecond(hessOut *tensor.Tensor) *tensor.Tensor {
	b := hessOut.Shape[0]
	g := c.Geom
	hessIn := tensor.New(b, g.InC, g.InH, g.InW)
	cols := c.scratch()
	colHess := tensor.New(g.ColRows(), g.ColCols())
	w2 := c.W.Data.Clone()
	for i, v := range w2.Data {
		w2.Data[i] = v * v
	}
	sampleIn := g.InC * g.InH * g.InW
	sampleOut := c.OutC * g.OutH * g.OutW
	hw := g.OutH * g.OutW
	for bi := 0; bi < b; bi++ {
		hm := tensor.FromSlice(hessOut.Data[bi*sampleOut:(bi+1)*sampleOut], c.OutC, g.ColCols())
		// HessW += hm · (cols²)ᵀ — Eq. 8 with the shared-weight positions
		// summed, the convolutional analogue of summing over the batch.
		g.Im2ColInto(cols, c.x.Data[bi*sampleIn:(bi+1)*sampleIn])
		for i, v := range cols.Data {
			cols.Data[i] = v * v
		}
		tensor.MatMulTransBInto(c.W.Hess, hm, cols, true)
		for oc := 0; oc < c.OutC; oc++ {
			s := 0.0
			seg := hm.Data[oc*hw : (oc+1)*hw]
			for _, v := range seg {
				s += v
			}
			c.B.Hess.Data[oc] += s
		}
		// HessI = col2im(W²ᵀ · hm) — Eq. 10 core.
		tensor.MatMulTransAInto(colHess, w2, hm, false)
		g.Col2ImAdd(hessIn.Data[bi*sampleIn:(bi+1)*sampleIn], colHess)
	}
	return hessIn
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }

// Clone implements Layer.
func (c *Conv2D) Clone() Layer {
	return &Conv2D{name: c.name, OutC: c.OutC, Geom: c.Geom, W: c.W.clone(), B: c.B.clone()}
}
