package nn

import (
	"fmt"

	"swim/internal/tensor"
)

// Layer is the common contract of every network building block. A layer owns
// whatever activations it must cache between the forward and the two backward
// passes, so a single layer instance must not be shared between concurrently
// evaluated networks — use Clone for per-trial copies.
type Layer interface {
	// Name returns a short human-readable identifier.
	Name() string
	// Forward computes the layer output for a batch (axis 0 is the batch).
	// train selects training behaviour (batch-norm batch statistics). The
	// returned tensor may be a layer-owned buffer that the next Forward call
	// overwrites (Residual does this); callers holding outputs across calls
	// must Clone them.
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward consumes df/dOutput and returns df/dInput, accumulating
	// parameter gradients. It must follow a Forward call.
	Backward(gradOut *tensor.Tensor) *tensor.Tensor
	// BackwardSecond consumes d²f/dOutput² and returns d²f/dInput²,
	// accumulating parameter Hessian diagonals per the paper's Eq. 8–10.
	// It must follow a Forward call (Backward is not required first).
	BackwardSecond(hessOut *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's parameters (empty for stateless layers).
	Params() []*Param
	// Clone returns a deep copy with independent parameters and caches.
	Clone() Layer
}

// Sequential chains layers, feeding each output into the next.
type Sequential struct {
	name   string
	Layers []Layer
}

// NewSequential builds a named layer chain.
func NewSequential(name string, layers ...Layer) *Sequential {
	return &Sequential{name: name, Layers: layers}
}

// Name implements Layer.
func (s *Sequential) Name() string { return s.name }

// Forward implements Layer.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward implements Layer.
func (s *Sequential) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		gradOut = s.Layers[i].Backward(gradOut)
	}
	return gradOut
}

// BackwardSecond implements Layer.
func (s *Sequential) BackwardSecond(hessOut *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		hessOut = s.Layers[i].BackwardSecond(hessOut)
	}
	return hessOut
}

// Params implements Layer.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Clone implements Layer.
func (s *Sequential) Clone() Layer {
	ls := make([]Layer, len(s.Layers))
	for i, l := range s.Layers {
		ls[i] = l.Clone()
	}
	return &Sequential{name: s.name, Layers: ls}
}

// Residual implements a skip connection: out = Body(x) + Shortcut(x).
// Shortcut may be nil for an identity skip. During both backward passes the
// contributions of the two branches are summed, matching the paper's rule
// that "the second derivatives of different branches are summed up".
type Residual struct {
	name     string
	Body     Layer
	Shortcut Layer // nil means identity

	// out is the cached forward output buffer, reused across calls when the
	// batch shape is unchanged so the legacy path stops paying a Clone per
	// Forward. The buffer is owned by this layer and overwritten by the next
	// Forward call with a matching shape.
	out *tensor.Tensor
}

// NewResidual builds a residual block from a body and optional projection
// shortcut (pass nil for identity).
func NewResidual(name string, body, shortcut Layer) *Residual {
	return &Residual{name: name, Body: body, Shortcut: shortcut}
}

// Name implements Layer.
func (r *Residual) Name() string { return r.name }

// Forward implements Layer. Unlike most layers, the returned tensor is a
// layer-owned buffer that the next same-shape Forward call overwrites in
// place: callers that need the output across two forward passes must Clone
// it. (Training loops never do — each Forward is consumed by its backward
// pass before the next call — and the compiled evaluation path documents the
// same valid-until-next-Forward semantics.)
func (r *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	body := r.Body.Forward(x, train)
	if r.out == nil || !r.out.SameShape(body) {
		r.out = tensor.New(body.Shape...)
	}
	copy(r.out.Data, body.Data)
	if r.Shortcut != nil {
		r.out.Add(r.Shortcut.Forward(x, train))
	} else {
		r.out.Add(x)
	}
	return r.out
}

// Backward implements Layer.
func (r *Residual) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	gradIn := r.Body.Backward(gradOut).Clone()
	if r.Shortcut != nil {
		gradIn.Add(r.Shortcut.Backward(gradOut))
	} else {
		gradIn.Add(gradOut)
	}
	return gradIn
}

// BackwardSecond implements Layer.
func (r *Residual) BackwardSecond(hessOut *tensor.Tensor) *tensor.Tensor {
	hessIn := r.Body.BackwardSecond(hessOut).Clone()
	if r.Shortcut != nil {
		hessIn.Add(r.Shortcut.BackwardSecond(hessOut))
	} else {
		hessIn.Add(hessOut)
	}
	return hessIn
}

// Params implements Layer.
func (r *Residual) Params() []*Param {
	ps := r.Body.Params()
	if r.Shortcut != nil {
		ps = append(ps, r.Shortcut.Params()...)
	}
	return ps
}

// Clone implements Layer.
func (r *Residual) Clone() Layer {
	c := &Residual{name: r.name, Body: r.Body.Clone()}
	if r.Shortcut != nil {
		c.Shortcut = r.Shortcut.Clone()
	}
	return c
}

// Flatten reshapes [B, ...] activations to [B, features].
type Flatten struct {
	inShape []int
}

// NewFlatten returns a flattening layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Name implements Layer.
func (f *Flatten) Name() string { return "flatten" }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	f.inShape = append(f.inShape[:0], x.Shape...)
	b := x.Shape[0]
	return x.Reshape(b, x.Size()/b)
}

// Backward implements Layer.
func (f *Flatten) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	return gradOut.Reshape(f.inShape...)
}

// BackwardSecond implements Layer.
func (f *Flatten) BackwardSecond(hessOut *tensor.Tensor) *tensor.Tensor {
	return hessOut.Reshape(f.inShape...)
}

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// Clone implements Layer.
func (f *Flatten) Clone() Layer { return &Flatten{} }

// Walk visits every layer in the tree rooted at l (depth-first, pre-order),
// descending into Sequential and Residual containers. It is the traversal
// hook used by serialization and diagnostics.
func Walk(l Layer, visit func(Layer)) {
	visit(l)
	switch v := l.(type) {
	case *Sequential:
		for _, child := range v.Layers {
			Walk(child, visit)
		}
	case *Residual:
		Walk(v.Body, visit)
		if v.Shortcut != nil {
			Walk(v.Shortcut, visit)
		}
	}
}

func checkBatched(x *tensor.Tensor, wantRank int, who string) {
	if len(x.Shape) != wantRank {
		panic(fmt.Sprintf("nn: %s expects rank-%d input, got shape %v", who, wantRank, x.Shape))
	}
}
