package nn

import (
	"math"
	"testing"

	"swim/internal/rng"
	"swim/internal/stat"
	"swim/internal/tensor"
)

// lossAt evaluates the network loss for the current parameter values.
func lossAt(n *Network, x *tensor.Tensor, labels []int, train bool) float64 {
	logits := n.Forward(x, train)
	return n.Loss.Forward(logits, labels)
}

// fdGrad computes a central-difference gradient for one scalar parameter.
func fdGrad(n *Network, p *Param, i int, x *tensor.Tensor, labels []int, train bool, eps float64) float64 {
	orig := p.Data.Data[i]
	p.Data.Data[i] = orig + eps
	fp := lossAt(n, x, labels, train)
	p.Data.Data[i] = orig - eps
	fm := lossAt(n, x, labels, train)
	p.Data.Data[i] = orig
	return (fp - fm) / (2 * eps)
}

// fdHess computes a central-difference second derivative for one scalar.
func fdHess(n *Network, p *Param, i int, x *tensor.Tensor, labels []int, eps float64) float64 {
	orig := p.Data.Data[i]
	f0 := lossAt(n, x, labels, false)
	p.Data.Data[i] = orig + eps
	fp := lossAt(n, x, labels, false)
	p.Data.Data[i] = orig - eps
	fm := lossAt(n, x, labels, false)
	p.Data.Data[i] = orig
	return (fp - 2*f0 + fm) / (eps * eps)
}

func randInput(r *rng.Source, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	for i := range t.Data {
		t.Data[i] = r.Gauss(0, 1)
	}
	return t
}

func checkGrads(t *testing.T, n *Network, x *tensor.Tensor, labels []int, train bool, tol float64) {
	t.Helper()
	n.ZeroGrad()
	n.LossGrad(x, labels, train)
	for _, p := range n.Params() {
		for i := range p.Data.Data {
			got := p.Grad.Data[i]
			want := fdGrad(n, p, i, x, labels, train, 1e-5)
			if math.Abs(got-want) > tol*(1+math.Abs(want)) {
				t.Fatalf("%s[%d]: analytic grad %.8g vs FD %.8g", p.Name, i, got, want)
			}
		}
	}
}

// --- gradient correctness -------------------------------------------------

func TestLinearGradFD(t *testing.T) {
	r := rng.New(1)
	net := NewNetwork("mlp", NewSequential("trunk",
		NewLinear("fc1", 6, 5, r), NewReLU(), NewLinear("fc2", 5, 3, r),
	), NewSoftmaxCrossEntropy())
	x := randInput(r, 4, 6)
	checkGrads(t, net, x, []int{0, 2, 1, 1}, false, 1e-5)
}

func TestConvPoolGradFD(t *testing.T) {
	r := rng.New(2)
	net := NewNetwork("cnn", NewSequential("trunk",
		NewConv2D("c1", 2, 8, 8, 3, 3, 3, 1, 1, r),
		NewReLU(),
		NewMaxPool2D("p1", 2, 2),
		NewFlatten(),
		NewLinear("fc", 3*4*4, 3, r),
	), NewSoftmaxCrossEntropy())
	x := randInput(r, 2, 2, 8, 8)
	checkGrads(t, net, x, []int{1, 2}, false, 1e-5)
}

func TestAvgPoolStridedConvGradFD(t *testing.T) {
	r := rng.New(3)
	net := NewNetwork("cnn", NewSequential("trunk",
		NewConv2D("c1", 1, 9, 9, 2, 3, 3, 2, 1, r),
		NewReLU(),
		NewAvgPool2D("p1", 2, 2),
		NewFlatten(),
		NewLinear("fc", 2*2*2, 4, r),
	), NewSoftmaxCrossEntropy())
	x := randInput(r, 3, 1, 9, 9)
	checkGrads(t, net, x, []int{0, 3, 2}, false, 1e-5)
}

func TestBatchNormGradFDTrainAndEval(t *testing.T) {
	r := rng.New(4)
	build := func() *Network {
		rr := rng.New(4)
		return NewNetwork("bn", NewSequential("trunk",
			NewConv2D("c1", 1, 6, 6, 2, 3, 3, 1, 1, rr),
			NewBatchNorm2D("bn1", 2),
			NewReLU(),
			NewFlatten(),
			NewLinear("fc", 2*6*6, 3, rr),
		), NewSoftmaxCrossEntropy())
	}
	x := randInput(r, 4, 1, 6, 6)
	labels := []int{0, 1, 2, 0}

	// Training mode: batch statistics (running-stat side effects do not alter
	// the train-mode forward output, so FD remains valid).
	checkGrads(t, build(), x, labels, true, 1e-4)

	// Eval mode with non-trivial running statistics.
	net := build()
	for _, l := range net.Trunk.Layers {
		if bn, ok := l.(*BatchNorm2D); ok {
			bn.RunMean.Data[0], bn.RunMean.Data[1] = 0.3, -0.2
			bn.RunVar.Data[0], bn.RunVar.Data[1] = 1.5, 0.7
		}
	}
	checkGrads(t, net, x, labels, false, 1e-5)
}

func TestResidualGradFD(t *testing.T) {
	r := rng.New(5)
	body := NewSequential("body",
		NewConv2D("b.c1", 2, 5, 5, 2, 3, 3, 1, 1, r),
		NewReLU(),
		NewConv2D("b.c2", 2, 5, 5, 2, 3, 3, 1, 1, r),
	)
	net := NewNetwork("res", NewSequential("trunk",
		NewConv2D("stem", 1, 5, 5, 2, 3, 3, 1, 1, r),
		NewResidual("res1", body, nil),
		NewReLU(),
		NewFlatten(),
		NewLinear("fc", 2*5*5, 3, r),
	), NewSoftmaxCrossEntropy())
	x := randInput(r, 2, 1, 5, 5)
	checkGrads(t, net, x, []int{2, 0}, false, 1e-5)
}

func TestResidualProjectionGradFD(t *testing.T) {
	r := rng.New(6)
	body := NewSequential("body",
		NewConv2D("b.c1", 2, 6, 6, 4, 3, 3, 2, 1, r),
		NewReLU(),
		NewConv2D("b.c2", 4, 3, 3, 4, 3, 3, 1, 1, r),
	)
	short := NewSequential("short",
		NewConv2D("s.c1", 2, 6, 6, 4, 1, 1, 2, 0, r),
	)
	net := NewNetwork("res", NewSequential("trunk",
		NewConv2D("stem", 1, 6, 6, 2, 3, 3, 1, 1, r),
		NewResidual("res1", body, short),
		NewReLU(),
		NewFlatten(),
		NewLinear("fc", 4*3*3, 3, r),
	), NewSoftmaxCrossEntropy())
	x := randInput(r, 2, 1, 6, 6)
	checkGrads(t, net, x, []int{1, 2}, false, 1e-5)
}

// --- second-derivative correctness ----------------------------------------

// With an L2 loss (diagonal logit Hessian), a piecewise-linear two-layer MLP
// makes the paper's recursion (Eq. 8–10) exact for every weight: fc2 weights
// each touch a single logit, and fc1 weights see a truly diagonal downstream
// Hessian (the only intermediate Hessian needed is w.r.t. fc2's input, which
// is exact when the logit Hessian is diagonal). One layer deeper the diagonal
// approximation starts dropping genuine cross terms — covered by the rank-
// correlation test below instead.
func TestHessianExactMLPWithL2(t *testing.T) {
	r := rng.New(7)
	net := NewNetwork("mlp", NewSequential("trunk",
		NewLinear("fc1", 5, 7, r), NewReLU(),
		NewLinear("fc2", 7, 3, r),
	), NewL2Loss())
	x := randInput(r, 3, 5)
	labels := []int{0, 2, 1}
	net.ZeroHess()
	net.AccumulateHessian(x, labels)
	for _, p := range net.Params() {
		for i := range p.Data.Data {
			got := p.Hess.Data[i]
			want := fdHess(net, p, i, x, labels, 1e-4)
			if math.Abs(got-want) > 1e-3*(1+math.Abs(want)) {
				t.Fatalf("%s[%d]: analytic hess %.8g vs FD %.8g", p.Name, i, got, want)
			}
		}
	}
}

// A convolution followed directly by the L2 loss also makes Eq. 8 exact,
// including the summation over weight-sharing positions.
func TestHessianExactConvWithL2(t *testing.T) {
	r := rng.New(8)
	net := NewNetwork("cnn", NewSequential("trunk",
		NewConv2D("c1", 1, 4, 4, 2, 3, 3, 1, 1, r),
		NewFlatten(),
	), NewL2Loss())
	x := randInput(r, 2, 1, 4, 4)
	labels := []int{3, 8}
	net.ZeroHess()
	net.AccumulateHessian(x, labels)
	for _, p := range net.Params() {
		for i := range p.Data.Data {
			got := p.Hess.Data[i]
			want := fdHess(net, p, i, x, labels, 1e-4)
			if math.Abs(got-want) > 1e-3*(1+math.Abs(want)) {
				t.Fatalf("%s[%d]: analytic hess %.8g vs FD %.8g", p.Name, i, got, want)
			}
		}
	}
}

// For softmax cross-entropy the output-layer weight Hessian diagonal is exact
// (each weight reaches exactly one logit), even though deeper layers are the
// paper's diagonal approximation.
func TestHessianLastLayerExactWithCE(t *testing.T) {
	r := rng.New(9)
	last := NewLinear("fc2", 6, 4, r)
	net := NewNetwork("mlp", NewSequential("trunk",
		NewLinear("fc1", 5, 6, r), NewReLU(), last,
	), NewSoftmaxCrossEntropy())
	x := randInput(r, 3, 5)
	labels := []int{0, 1, 3}
	net.ZeroHess()
	net.AccumulateHessian(x, labels)
	for i := range last.W.Data.Data {
		got := last.W.Hess.Data[i]
		want := fdHess(net, last.W, i, x, labels, 1e-4)
		if math.Abs(got-want) > 1e-3*(1+math.Abs(want)) {
			t.Fatalf("fc2.W[%d]: analytic hess %.8g vs FD %.8g", i, got, want)
		}
	}
}

// Deeper layers under CE are approximate; the paper's claim is that the
// metric *ranks* weights well at a converged optimum (Eq. 3 assumes df/dw≈0).
// Train the toy model to convergence first, then verify a strong rank
// correlation between the analytic diagonal and true (FD) second derivatives.
func TestHessianRankCorrelationDeepCE(t *testing.T) {
	r := rng.New(10)
	fc1 := NewLinear("fc1", 6, 8, r)
	net := NewNetwork("mlp", NewSequential("trunk",
		fc1, NewReLU(), NewLinear("fc2", 8, 4, r),
	), NewSoftmaxCrossEntropy())
	x := randInput(r, 8, 6)
	labels := []int{0, 1, 3, 2, 0, 1, 2, 3}
	for step := 0; step < 400; step++ {
		net.ZeroGrad()
		net.LossGrad(x, labels, true)
		for _, p := range net.Params() {
			p.Data.AddScaled(-0.2, p.Grad)
		}
	}
	net.ZeroHess()
	net.AccumulateHessian(x, labels)
	var analytic, fd []float64
	for i := range fc1.W.Data.Data {
		analytic = append(analytic, fc1.W.Hess.Data[i])
		fd = append(fd, fdHess(net, fc1.W, i, x, labels, 1e-3))
	}
	if rho := stat.Spearman(analytic, fd); rho < 0.7 {
		t.Fatalf("Spearman(analytic, FD) = %.3f, want >= 0.7", rho)
	}
}

// Second derivatives must flow through residual sums and max pooling. With an
// L2 loss directly above, the residual *body* weights are exact (their only
// path to the loss is through the body; the skip adds no W-dependent path).
// The stem below the residual sees two interfering paths (skip + body) whose
// cross term the paper's branch-sum rule deliberately drops, so the stem is
// checked for the structural invariants (non-negative, non-trivial) instead.
func TestHessianResidualMaxPoolL2(t *testing.T) {
	r := rng.New(11)
	bodyConv := NewConv2D("b.c1", 2, 4, 4, 2, 3, 3, 1, 1, r)
	body := NewSequential("body", bodyConv)
	stem := NewConv2D("stem", 1, 4, 4, 2, 3, 3, 1, 1, r)
	net := NewNetwork("res", NewSequential("trunk",
		stem,
		NewResidual("res", body, nil),
		NewMaxPool2D("pool", 2, 2),
		NewFlatten(),
	), NewL2Loss())
	x := randInput(r, 2, 1, 4, 4)
	labels := []int{1, 5}
	net.ZeroHess()
	net.AccumulateHessian(x, labels)
	for i := range bodyConv.W.Data.Data {
		got := bodyConv.W.Hess.Data[i]
		want := fdHess(net, bodyConv.W, i, x, labels, 1e-4)
		if math.Abs(got-want) > 1e-3*(1+math.Abs(want)) {
			t.Fatalf("b.c1.W[%d]: analytic hess %.8g vs FD %.8g", i, got, want)
		}
	}
	sum := 0.0
	for _, v := range stem.W.Hess.Data {
		if v < 0 {
			t.Fatalf("stem hessian has negative entry %v", v)
		}
		sum += v
	}
	if sum == 0 {
		t.Fatal("stem hessian did not accumulate through the residual block")
	}
}

// --- loss functions ---------------------------------------------------------

func TestSoftmaxCEMatchesManual(t *testing.T) {
	l := NewSoftmaxCrossEntropy()
	logits := tensor.FromSlice([]float64{1, 2, 3, 0, 0, 0}, 2, 3)
	loss := l.Forward(logits, []int{2, 0})
	want := (-math.Log(math.Exp(3)/(math.Exp(1)+math.Exp(2)+math.Exp(3))) - math.Log(1.0/3.0)) / 2
	if math.Abs(loss-want) > 1e-12 {
		t.Fatalf("loss = %v, want %v", loss, want)
	}
}

func TestSoftmaxCEGradRowsSumToZero(t *testing.T) {
	r := rng.New(12)
	l := NewSoftmaxCrossEntropy()
	logits := randInput(r, 4, 5)
	l.Forward(logits, []int{0, 1, 2, 3})
	g := l.Backward()
	for bi := 0; bi < 4; bi++ {
		s := 0.0
		for j := 0; j < 5; j++ {
			s += g.At(bi, j)
		}
		if math.Abs(s) > 1e-12 {
			t.Fatalf("row %d grad sum = %v", bi, s)
		}
	}
}

func TestSoftmaxCEHessIsPOneMinusP(t *testing.T) {
	r := rng.New(13)
	l := NewSoftmaxCrossEntropy()
	logits := randInput(r, 2, 4)
	l.Forward(logits, []int{0, 1})
	h := l.BackwardSecond()
	for i, p := range l.probs.Data {
		want := p * (1 - p) / 2
		if math.Abs(h.Data[i]-want) > 1e-12 {
			t.Fatalf("hess[%d] = %v, want %v", i, h.Data[i], want)
		}
		if h.Data[i] < 0 {
			t.Fatal("CE logit Hessian diagonal must be non-negative")
		}
	}
}

func TestL2LossValueAndDerivs(t *testing.T) {
	l := NewL2Loss()
	logits := tensor.FromSlice([]float64{0.5, 0.5}, 1, 2)
	loss := l.Forward(logits, []int{0})
	if math.Abs(loss-0.5) > 1e-12 { // (0.5-1)^2 + 0.5^2
		t.Fatalf("loss = %v", loss)
	}
	g := l.Backward()
	if math.Abs(g.Data[0]+1) > 1e-12 || math.Abs(g.Data[1]-1) > 1e-12 {
		t.Fatalf("grad = %v", g.Data)
	}
	h := l.BackwardSecond()
	for _, v := range h.Data {
		if v != 2 {
			t.Fatalf("hess = %v, want all 2", h.Data)
		}
	}
}

// --- layer behaviour --------------------------------------------------------

func TestReLUForward(t *testing.T) {
	x := tensor.FromSlice([]float64{-1, 0, 2}, 1, 3)
	y := NewReLU().Forward(x, false)
	if y.Data[0] != 0 || y.Data[1] != 0 || y.Data[2] != 2 {
		t.Fatalf("relu = %v", y.Data)
	}
}

func TestMaxPoolForwardAndRouting(t *testing.T) {
	p := NewMaxPool2D("p", 2, 2)
	x := tensor.FromSlice([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	y := p.Forward(x, false)
	want := []float64{6, 8, 14, 16}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("maxpool out = %v", y.Data)
		}
	}
	g := tensor.FromSlice([]float64{1, 2, 3, 4}, 1, 1, 2, 2)
	gi := p.Backward(g)
	if gi.Data[5] != 1 || gi.Data[7] != 2 || gi.Data[13] != 3 || gi.Data[15] != 4 {
		t.Fatalf("maxpool routing wrong: %v", gi.Data)
	}
	s := 0.0
	for _, v := range gi.Data {
		s += v
	}
	if s != 10 {
		t.Fatal("maxpool backward must conserve gradient mass")
	}
}

func TestAvgPoolSecondUsesSquaredCoeff(t *testing.T) {
	p := NewAvgPool2D("p", 2, 2)
	x := tensor.New(1, 1, 2, 2)
	p.Forward(x, false)
	h := tensor.FromSlice([]float64{8}, 1, 1, 1, 1)
	hi := p.BackwardSecond(h)
	for _, v := range hi.Data {
		if v != 0.5 { // 8 * (1/4)^2
			t.Fatalf("avgpool hess scatter = %v, want 0.5", hi.Data)
		}
	}
}

func TestGlobalAvgPool(t *testing.T) {
	p := NewGlobalAvgPool("gap", 4)
	x := tensor.New(1, 2, 4, 4)
	for i := 0; i < 16; i++ {
		x.Data[i] = 2 // channel 0
		x.Data[16+i] = 4
	}
	y := p.Forward(x, false)
	if y.Shape[2] != 1 || y.Shape[3] != 1 || y.Data[0] != 2 || y.Data[1] != 4 {
		t.Fatalf("gap = %+v %v", y.Shape, y.Data)
	}
}

func TestQuantActQuantizesAndClips(t *testing.T) {
	q := NewQuantAct("q", 2, 3.0) // levels = 3, step = 1
	q.Calibrate = false
	x := tensor.FromSlice([]float64{-0.4, 0.4, 1.6, 5.0}, 1, 4)
	y := q.Forward(x, false)
	want := []float64{0, 0, 2, 3}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("quant = %v, want %v", y.Data, want)
		}
	}
	// STE: out-of-range elements block both derivative passes.
	g := tensor.FromSlice([]float64{1, 1, 1, 1}, 1, 4)
	gi := q.Backward(g)
	if gi.Data[0] != 0 || gi.Data[1] != 1 || gi.Data[2] != 1 || gi.Data[3] != 0 {
		t.Fatalf("STE mask = %v", gi.Data)
	}
	hi := q.BackwardSecond(g)
	if hi.Data[0] != 0 || hi.Data[3] != 0 || hi.Data[1] != 1 {
		t.Fatalf("hess STE mask = %v", hi.Data)
	}
}

func TestQuantActCalibration(t *testing.T) {
	q := NewQuantAct("q", 4, 0.1)
	x := tensor.FromSlice([]float64{0, 2.5}, 1, 2)
	q.Forward(x, true)
	if q.Max != 2.5 {
		t.Fatalf("calibrated max = %v", q.Max)
	}
	q.Forward(x, false) // eval must not widen further
	q2 := tensor.FromSlice([]float64{0, 9.9}, 1, 2)
	q.Forward(q2, false)
	if q.Max != 2.5 {
		t.Fatal("eval mode must not recalibrate")
	}
}

func TestBatchNormNormalizesTrainBatch(t *testing.T) {
	r := rng.New(14)
	bn := NewBatchNorm2D("bn", 3)
	x := randInput(r, 8, 3, 4, 4)
	y := bn.Forward(x, true)
	for c := 0; c < 3; c++ {
		var w stat.Welford
		for bi := 0; bi < 8; bi++ {
			base := (bi*3 + c) * 16
			for i := base; i < base+16; i++ {
				w.Add(y.Data[i])
			}
		}
		if math.Abs(w.Mean()) > 1e-9 {
			t.Fatalf("channel %d mean = %v", c, w.Mean())
		}
		if math.Abs(w.Std()-1) > 0.01 {
			t.Fatalf("channel %d std = %v", c, w.Std())
		}
	}
}

func TestBatchNormRunningStatsConverge(t *testing.T) {
	r := rng.New(15)
	bn := NewBatchNorm2D("bn", 1)
	for i := 0; i < 200; i++ {
		x := tensor.New(16, 1, 2, 2)
		for j := range x.Data {
			x.Data[j] = r.Gauss(3, 2)
		}
		bn.Forward(x, true)
	}
	if math.Abs(bn.RunMean.Data[0]-3) > 0.2 {
		t.Fatalf("running mean = %v, want ~3", bn.RunMean.Data[0])
	}
	if math.Abs(bn.RunVar.Data[0]-4) > 0.5 {
		t.Fatalf("running var = %v, want ~4", bn.RunVar.Data[0])
	}
}

// --- network-level ----------------------------------------------------------

func TestNetworkCloneIsIndependent(t *testing.T) {
	r := rng.New(16)
	net := NewNetwork("mlp", NewSequential("trunk",
		NewLinear("fc1", 4, 8, r), NewReLU(), NewLinear("fc2", 8, 2, r),
	), NewSoftmaxCrossEntropy())
	clone := net.Clone()
	clone.Params()[0].Data.Data[0] += 100
	if net.Params()[0].Data.Data[0] == clone.Params()[0].Data.Data[0] {
		t.Fatal("clone shares parameter storage")
	}
	x := randInput(r, 2, 4)
	a := net.Forward(x, false).Clone()
	clone.Forward(x, false)
	b := net.Forward(x, false)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("evaluating a clone perturbed the original network")
		}
	}
}

func TestMappedParamsAreConvAndLinearWeightsOnly(t *testing.T) {
	r := rng.New(17)
	net := NewNetwork("cnn", NewSequential("trunk",
		NewConv2D("c1", 1, 6, 6, 2, 3, 3, 1, 1, r),
		NewBatchNorm2D("bn", 2),
		NewReLU(),
		NewFlatten(),
		NewLinear("fc", 2*6*6, 3, r),
	), NewSoftmaxCrossEntropy())
	mapped := net.MappedParams()
	if len(mapped) != 2 {
		t.Fatalf("mapped params = %d, want 2 (conv W, fc W)", len(mapped))
	}
	for _, p := range mapped {
		if p.Name != "c1.W" && p.Name != "fc.W" {
			t.Fatalf("unexpected mapped param %s", p.Name)
		}
	}
	want := 2*1*3*3 + 3*2*6*6
	if net.NumMappedWeights() != want {
		t.Fatalf("NumMappedWeights = %d, want %d", net.NumMappedWeights(), want)
	}
}

func TestCountCorrect(t *testing.T) {
	r := rng.New(18)
	net := NewNetwork("mlp", NewSequential("trunk", NewLinear("fc", 3, 3, r)), NewSoftmaxCrossEntropy())
	// Identity-ish weights make argmax track the largest input.
	fc := net.Trunk.Layers[0].(*Linear)
	fc.W.Data.Zero()
	for i := 0; i < 3; i++ {
		fc.W.Data.Set(1, i, i)
	}
	x := tensor.FromSlice([]float64{5, 0, 0, 0, 0, 7}, 2, 3)
	if got := net.CountCorrect(x, []int{0, 2}); got != 2 {
		t.Fatalf("correct = %d", got)
	}
	if got := net.CountCorrect(x, []int{1, 2}); got != 1 {
		t.Fatalf("correct = %d", got)
	}
}

func TestHessianIsNonNegativeForCE(t *testing.T) {
	// Every term propagated by Eq. 8/10 from a non-negative seed stays
	// non-negative (squares times non-negative), a structural invariant of
	// the method worth pinning down.
	r := rng.New(19)
	net := NewNetwork("cnn", NewSequential("trunk",
		NewConv2D("c1", 1, 8, 8, 4, 3, 3, 1, 1, r),
		NewBatchNorm2D("bn", 4),
		NewReLU(),
		NewMaxPool2D("p", 2, 2),
		NewFlatten(),
		NewLinear("fc", 4*4*4, 5, r),
	), NewSoftmaxCrossEntropy())
	x := randInput(r, 4, 1, 8, 8)
	net.ZeroHess()
	net.AccumulateHessian(x, []int{0, 1, 2, 3})
	for _, p := range net.Params() {
		for i, v := range p.Hess.Data {
			if v < 0 {
				t.Fatalf("%s[%d] hessian diagonal %v < 0", p.Name, i, v)
			}
		}
	}
}
