package nn

import (
	"math"

	"swim/internal/tensor"
)

// smoothAct is an elementwise activation with non-zero curvature. Unlike
// ReLU, the paper's Eq. 9 keeps both terms here:
//
//	d²f/dI² = g′(I)² · d²f/dP²  −  g″(I) · df/dI ... (sign per Eq. 9)
//
// which, written against the upstream quantities this layer receives, is
//
//	hessIn = g′(I)²·hessOut + g″(I)·gradOut
//
// (the chain rule for second derivatives of a composition; Eq. 9's form has
// the first-derivative term folded through df/dI = g′·df/dP). Because the
// curvature term consumes df/dP, Backward must run before BackwardSecond for
// these layers; the implementation caches gradOut and enforces the order.
type smoothAct struct {
	name string
	fn   func(float64) float64
	d1   func(y float64) float64 // g′ expressed in terms of the output y
	d2   func(y float64) float64 // g″ expressed in terms of the output y

	out     *tensor.Tensor
	gradOut *tensor.Tensor
}

// Name implements Layer.
func (s *smoothAct) Name() string { return s.name }

// Forward implements Layer as a thin wrapper over ForwardInto that
// additionally caches the output for the backward passes.
func (s *smoothAct) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	out := tensor.New(x.Shape...)
	s.ForwardInto(out, x, nil)
	s.out = out
	s.gradOut = nil
	return out
}

// OutShape implements PlanLayer.
func (s *smoothAct) OutShape(in []int) ([]int, error) { return in, nil }

// ForwardInto implements PlanLayer.
func (s *smoothAct) ForwardInto(dst, x *tensor.Tensor, _ *tensor.Arena) {
	for i, v := range x.Data {
		dst.Data[i] = s.fn(v)
	}
}

// Backward implements Layer.
func (s *smoothAct) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	s.gradOut = gradOut
	gradIn := gradOut.Clone()
	for i := range gradIn.Data {
		gradIn.Data[i] *= s.d1(s.out.Data[i])
	}
	return gradIn
}

// BackwardSecond implements Layer. It requires a preceding Backward call on
// the same forward pass (the curvature term needs df/dP).
func (s *smoothAct) BackwardSecond(hessOut *tensor.Tensor) *tensor.Tensor {
	if s.gradOut == nil {
		panic("nn: " + s.name + " BackwardSecond requires Backward first (curvature term needs df/dP)")
	}
	hessIn := hessOut.Clone()
	for i := range hessIn.Data {
		y := s.out.Data[i]
		g1 := s.d1(y)
		hessIn.Data[i] = g1*g1*hessOut.Data[i] + s.d2(y)*s.gradOut.Data[i]
	}
	return hessIn
}

// Params implements Layer.
func (s *smoothAct) Params() []*Param { return nil }

// Sigmoid is the logistic activation with the full curvature-aware second
// derivative backprop (Eq. 9 with g″ ≠ 0).
type Sigmoid struct{ smoothAct }

// NewSigmoid returns a sigmoid activation layer.
func NewSigmoid() *Sigmoid {
	s := &Sigmoid{}
	s.name = "sigmoid"
	s.fn = func(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
	s.d1 = func(y float64) float64 { return y * (1 - y) }
	s.d2 = func(y float64) float64 { return y * (1 - y) * (1 - 2*y) }
	return s
}

// Clone implements Layer.
func (s *Sigmoid) Clone() Layer { return NewSigmoid() }

// Tanh is the hyperbolic-tangent activation with the full curvature-aware
// second derivative backprop.
type Tanh struct{ smoothAct }

// NewTanh returns a tanh activation layer.
func NewTanh() *Tanh {
	t := &Tanh{}
	t.name = "tanh"
	t.fn = math.Tanh
	t.d1 = func(y float64) float64 { return 1 - y*y }
	t.d2 = func(y float64) float64 { return -2 * y * (1 - y*y) }
	return t
}

// Clone implements Layer.
func (t *Tanh) Clone() Layer { return NewTanh() }
