package nn

import (
	"fmt"

	"swim/internal/tensor"
)

// Network couples a layer trunk with a loss function and exposes the
// whole-model operations the rest of the repository builds on: evaluation,
// gradient accumulation, and the single-pass Hessian-diagonal accumulation
// at the heart of SWIM.
type Network struct {
	Name  string
	Trunk *Sequential
	Loss  Loss
}

// NewNetwork assembles a network.
func NewNetwork(name string, trunk *Sequential, loss Loss) *Network {
	return &Network{Name: name, Trunk: trunk, Loss: loss}
}

// Forward runs inference and returns logits ([B, classes]).
func (n *Network) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	return n.Trunk.Forward(x, train)
}

// Params returns every parameter in layer order.
func (n *Network) Params() []*Param { return n.Trunk.Params() }

// MappedParams returns only the crossbar-mapped parameters (conv/FC weight
// matrices) — the weights subject to device variation and write-verify.
func (n *Network) MappedParams() []*Param {
	var out []*Param
	for _, p := range n.Params() {
		if p.Mapped {
			out = append(out, p)
		}
	}
	return out
}

// NumMappedWeights returns the total count of crossbar-mapped scalar weights
// (the |W0| of the paper's Algorithm 1).
func (n *Network) NumMappedWeights() int {
	total := 0
	for _, p := range n.MappedParams() {
		total += p.Size()
	}
	return total
}

// ZeroGrad clears all gradient accumulators.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		p.ZeroGrad()
	}
}

// ZeroHess clears all Hessian-diagonal accumulators.
func (n *Network) ZeroHess() {
	for _, p := range n.Params() {
		p.ZeroHess()
	}
}

// LossGrad runs forward + first-derivative backward on one batch,
// accumulating parameter gradients, and returns the batch loss.
func (n *Network) LossGrad(x *tensor.Tensor, labels []int, train bool) float64 {
	logits := n.Forward(x, train)
	loss := n.Loss.Forward(logits, labels)
	n.Trunk.Backward(n.Loss.Backward())
	return loss
}

// LossGradCount is LossGrad that additionally reports the number of
// correctly classified samples in the batch, reusing the same forward pass
// (training loops want both without paying for a second inference).
func (n *Network) LossGradCount(x *tensor.Tensor, labels []int, train bool) (float64, int) {
	logits := n.Forward(x, train)
	loss := n.Loss.Forward(logits, labels)
	n.Trunk.Backward(n.Loss.Backward())
	return loss, CountCorrectLogits(logits, labels)
}

// CountCorrectLogits returns how many rows of logits ([B, classes]) argmax
// to their label (top-1, first-max tie-breaking). It is the single argmax
// used by every accuracy measurement — legacy and compiled-plan paths share
// it, which the bit-identical evaluation guarantee depends on.
func CountCorrectLogits(logits *tensor.Tensor, labels []int) int {
	b, c := logits.Shape[0], logits.Shape[1]
	correct := 0
	for bi := 0; bi < b; bi++ {
		row := logits.Data[bi*c : (bi+1)*c]
		best, bj := row[0], 0
		for j, v := range row {
			if v > best {
				best, bj = v, j
			}
		}
		if bj == labels[bi] {
			correct++
		}
	}
	return correct
}

// AccumulateHessian runs forward + second-derivative backward on one batch,
// accumulating per-weight sensitivities into Param.Hess. Per the paper this
// is a single extra pass with the cost profile of a gradient computation; it
// runs in evaluation mode because the model is frozen while being mapped.
func (n *Network) AccumulateHessian(x *tensor.Tensor, labels []int) float64 {
	logits := n.Forward(x, false)
	loss := n.Loss.Forward(logits, labels)
	n.Trunk.BackwardSecond(n.Loss.BackwardSecond())
	return loss
}

// AccumulateHessianFull is AccumulateHessian preceded by a gradient backward
// pass on the same forward computation. Networks containing
// curvature-carrying activations (Sigmoid, Tanh) need the first derivatives
// for Eq. 9's g″ term; ReLU networks can use the cheaper AccumulateHessian.
// Parameter gradients accumulated by the embedded backward pass are left in
// place (callers that care should ZeroGrad afterwards).
func (n *Network) AccumulateHessianFull(x *tensor.Tensor, labels []int) float64 {
	logits := n.Forward(x, false)
	loss := n.Loss.Forward(logits, labels)
	n.Trunk.Backward(n.Loss.Backward())
	n.Trunk.BackwardSecond(n.Loss.BackwardSecond())
	return loss
}

// EvalLoss runs forward only and returns the mean batch loss.
func (n *Network) EvalLoss(x *tensor.Tensor, labels []int) float64 {
	logits := n.Forward(x, false)
	return n.Loss.Forward(logits, labels)
}

// CountCorrect returns how many samples in the batch are classified
// correctly (top-1).
func (n *Network) CountCorrect(x *tensor.Tensor, labels []int) int {
	return CountCorrectLogits(n.Forward(x, false), labels)
}

// Clone deep-copies the network (parameters, running statistics, caches
// excluded). Monte-Carlo trials clone the master network once per trial so
// that device-noise injection never corrupts the trained weights.
func (n *Network) Clone() *Network {
	return &Network{Name: n.Name, Trunk: n.Trunk.Clone().(*Sequential), Loss: cloneLoss(n.Loss)}
}

func cloneLoss(l Loss) Loss {
	switch l.(type) {
	case *SoftmaxCrossEntropy:
		return NewSoftmaxCrossEntropy()
	case *L2Loss:
		return NewL2Loss()
	default:
		panic(fmt.Sprintf("nn: cannot clone loss %T", l))
	}
}
