// Package nn implements the neural-network substrate for the SWIM
// reproduction: layers with three passes each —
//
//   - Forward: standard inference/training forward pass;
//   - Backward: first-derivative (gradient) backprop;
//   - BackwardSecond: the paper's Eq. 8–10 diagonal second-derivative
//     backprop, which propagates d²f/dI² through squared weights and
//     accumulates the per-weight sensitivities d²f/dW² that SWIM ranks.
//
// The second pass mirrors gradient backprop structurally (an extra elementwise
// square per layer), which is how the paper achieves single-pass Hessian
// diagonals: cost and memory are within a constant factor of an ordinary
// gradient computation.
package nn

import "swim/internal/tensor"

// Param is a learnable (and possibly device-mapped) parameter tensor with its
// gradient and diagonal-Hessian accumulators.
type Param struct {
	// Name identifies the parameter for reports, e.g. "conv1.W".
	Name string
	// Data holds the parameter values (for mapped params these are the
	// *desired* values; programmed values live in the mapping package).
	Data *tensor.Tensor
	// Grad accumulates df/dw during Backward.
	Grad *tensor.Tensor
	// Hess accumulates the Hessian diagonal d²f/dw² during BackwardSecond.
	Hess *tensor.Tensor
	// Mapped marks parameters that are programmed onto NVM crossbar devices
	// (convolution and fully-connected weight matrices). Biases and
	// batch-norm affine parameters stay in digital peripherals and are never
	// write-verified.
	Mapped bool
}

func newParam(name string, shape ...int) *Param {
	return &Param{
		Name: name,
		Data: tensor.New(shape...),
		Grad: tensor.New(shape...),
		Hess: tensor.New(shape...),
	}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// ZeroHess clears the Hessian-diagonal accumulator.
func (p *Param) ZeroHess() { p.Hess.Zero() }

// Size returns the number of scalar weights in the parameter.
func (p *Param) Size() int { return p.Data.Size() }

func (p *Param) clone() *Param {
	return &Param{
		Name:   p.Name,
		Data:   p.Data.Clone(),
		Grad:   p.Grad.Clone(),
		Hess:   p.Hess.Clone(),
		Mapped: p.Mapped,
	}
}
