package nn

import (
	"math"

	"swim/internal/tensor"
)

// Loss scores a batch of logits against integer class labels and provides
// the first and second derivatives with respect to the logits, which seed
// the two backward passes.
type Loss interface {
	// Forward returns the mean loss over the batch and caches what the
	// derivative calls need.
	Forward(logits *tensor.Tensor, labels []int) float64
	// Backward returns df/dO ([B, classes], averaged over the batch).
	Backward() *tensor.Tensor
	// BackwardSecond returns d²f/dO² ([B, classes], averaged over the
	// batch) — Eq. 11 for softmax cross-entropy, the constant 2 for L2.
	BackwardSecond() *tensor.Tensor
}

// SoftmaxCrossEntropy is the standard classification loss. Its logit-space
// second derivative diagonal is p_j(1−p_j) (paper Eq. 11).
type SoftmaxCrossEntropy struct {
	probs  *tensor.Tensor
	labels []int
}

// NewSoftmaxCrossEntropy returns the classification loss used by every model
// in the paper.
func NewSoftmaxCrossEntropy() *SoftmaxCrossEntropy { return &SoftmaxCrossEntropy{} }

// Forward implements Loss.
func (s *SoftmaxCrossEntropy) Forward(logits *tensor.Tensor, labels []int) float64 {
	b, c := logits.Shape[0], logits.Shape[1]
	if len(labels) != b {
		panic("nn: label count does not match batch size")
	}
	s.labels = labels
	s.probs = tensor.New(b, c)
	loss := 0.0
	for bi := 0; bi < b; bi++ {
		row := logits.Data[bi*c : (bi+1)*c]
		prow := s.probs.Data[bi*c : (bi+1)*c]
		m := row[0]
		for _, v := range row {
			if v > m {
				m = v
			}
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v - m)
			prow[j] = e
			sum += e
		}
		inv := 1.0 / sum
		for j := range prow {
			prow[j] *= inv
		}
		p := prow[labels[bi]]
		if p < 1e-300 {
			p = 1e-300
		}
		loss -= math.Log(p)
	}
	return loss / float64(b)
}

// Backward implements Loss.
func (s *SoftmaxCrossEntropy) Backward() *tensor.Tensor {
	b, c := s.probs.Shape[0], s.probs.Shape[1]
	grad := s.probs.Clone()
	inv := 1.0 / float64(b)
	for bi := 0; bi < b; bi++ {
		grad.Data[bi*c+s.labels[bi]] -= 1
	}
	grad.Scale(inv)
	return grad
}

// BackwardSecond implements Loss.
func (s *SoftmaxCrossEntropy) BackwardSecond() *tensor.Tensor {
	b, c := s.probs.Shape[0], s.probs.Shape[1]
	hess := tensor.New(b, c)
	inv := 1.0 / float64(b)
	for i, p := range s.probs.Data {
		hess.Data[i] = p * (1 - p) * inv
	}
	_ = c
	return hess
}

// L2Loss is the squared-error loss against one-hot targets:
// f = (1/B)·Σ_b Σ_j (O_bj − Y_bj)². Its logit-space second derivative is the
// constant 2 (paper §3.3: "For L2 loss, ∂²f/∂O² = 2").
type L2Loss struct {
	diff *tensor.Tensor
}

// NewL2Loss returns an L2 training loss against one-hot targets.
func NewL2Loss() *L2Loss { return &L2Loss{} }

// Forward implements Loss.
func (l *L2Loss) Forward(logits *tensor.Tensor, labels []int) float64 {
	b, c := logits.Shape[0], logits.Shape[1]
	if len(labels) != b {
		panic("nn: label count does not match batch size")
	}
	l.diff = logits.Clone()
	for bi := 0; bi < b; bi++ {
		l.diff.Data[bi*c+labels[bi]] -= 1
	}
	return l.diff.SumSquares() / float64(b)
}

// Backward implements Loss.
func (l *L2Loss) Backward() *tensor.Tensor {
	grad := l.diff.Clone()
	grad.Scale(2.0 / float64(l.diff.Shape[0]))
	return grad
}

// BackwardSecond implements Loss.
func (l *L2Loss) BackwardSecond() *tensor.Tensor {
	hess := tensor.New(l.diff.Shape...)
	hess.Fill(2.0 / float64(l.diff.Shape[0]))
	return hess
}
