package nn

import (
	"fmt"
	"math"

	"swim/internal/tensor"
)

// MaxPool2D is a max-pooling layer. Backprop "cancels derivatives of the
// deactivated inputs" (paper §3.3): both the gradient and the second
// derivative route to the argmax element of each window only.
type MaxPool2D struct {
	name      string
	K, Stride int
	inShape   []int
	argmax    []int // flat input index feeding each output element
}

// NewMaxPool2D builds a max-pool with a square window and the given stride.
func NewMaxPool2D(name string, k, stride int) *MaxPool2D {
	if k <= 0 || stride <= 0 {
		panic("nn: MaxPool2D requires positive window and stride")
	}
	return &MaxPool2D{name: name, K: k, Stride: stride}
}

// Name implements Layer.
func (m *MaxPool2D) Name() string { return m.name }

func poolOut(in, k, stride int) int { return (in-k)/stride + 1 }

// Forward implements Layer.
func (m *MaxPool2D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	checkBatched(x, 4, m.name)
	m.inShape = append(m.inShape[:0], x.Shape...)
	b, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := poolOut(h, m.K, m.Stride), poolOut(w, m.K, m.Stride)
	out := tensor.New(b, c, oh, ow)
	if cap(m.argmax) < out.Size() {
		m.argmax = make([]int, out.Size())
	}
	m.argmax = m.argmax[:out.Size()]
	o := 0
	for bi := 0; bi < b; bi++ {
		for ci := 0; ci < c; ci++ {
			plane := (bi*c + ci) * h * w
			for oi := 0; oi < oh; oi++ {
				for oj := 0; oj < ow; oj++ {
					best, bestIdx := math.Inf(-1), -1
					for ki := 0; ki < m.K; ki++ {
						ii := oi*m.Stride + ki
						rowBase := plane + ii*w
						for kj := 0; kj < m.K; kj++ {
							idx := rowBase + oj*m.Stride + kj
							if v := x.Data[idx]; v > best {
								best, bestIdx = v, idx
							}
						}
					}
					out.Data[o] = best
					m.argmax[o] = bestIdx
					o++
				}
			}
		}
	}
	return out
}

// OutShape implements PlanLayer.
func (m *MaxPool2D) OutShape(in []int) ([]int, error) {
	if len(in) != 4 {
		return nil, fmt.Errorf("%s: want rank-4 input, got %v", m.name, in)
	}
	oh, ow := poolOut(in[2], m.K, m.Stride), poolOut(in[3], m.K, m.Stride)
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("%s: window %d stride %d collapses input %v", m.name, m.K, m.Stride, in)
	}
	return []int{in[0], in[1], oh, ow}, nil
}

// ForwardInto implements PlanLayer (no argmax bookkeeping — inference only).
// The window scan order matches Forward exactly, including tie-breaking.
func (m *MaxPool2D) ForwardInto(dst, x *tensor.Tensor, _ *tensor.Arena) {
	b, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := poolOut(h, m.K, m.Stride), poolOut(w, m.K, m.Stride)
	o := 0
	for bi := 0; bi < b; bi++ {
		for ci := 0; ci < c; ci++ {
			plane := (bi*c + ci) * h * w
			for oi := 0; oi < oh; oi++ {
				for oj := 0; oj < ow; oj++ {
					best := math.Inf(-1)
					for ki := 0; ki < m.K; ki++ {
						rowBase := plane + (oi*m.Stride+ki)*w
						for kj := 0; kj < m.K; kj++ {
							if v := x.Data[rowBase+oj*m.Stride+kj]; v > best {
								best = v
							}
						}
					}
					dst.Data[o] = best
					o++
				}
			}
		}
	}
}

// Backward implements Layer.
func (m *MaxPool2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	gradIn := tensor.New(m.inShape...)
	for o, idx := range m.argmax {
		gradIn.Data[idx] += gradOut.Data[o]
	}
	return gradIn
}

// BackwardSecond implements Layer.
func (m *MaxPool2D) BackwardSecond(hessOut *tensor.Tensor) *tensor.Tensor {
	hessIn := tensor.New(m.inShape...)
	for o, idx := range m.argmax {
		hessIn.Data[idx] += hessOut.Data[o]
	}
	return hessIn
}

// Params implements Layer.
func (m *MaxPool2D) Params() []*Param { return nil }

// Clone implements Layer.
func (m *MaxPool2D) Clone() Layer { return NewMaxPool2D(m.name, m.K, m.Stride) }

// AvgPool2D averages over square windows. With output O = (1/n)ΣI the
// gradient scatters 1/n and, since the map is linear with coefficient 1/n,
// the second derivative scatters (1/n)² (paper: average pooling is "cast in
// the same form as FC layers", i.e. a constant-weight linear layer).
type AvgPool2D struct {
	name      string
	K, Stride int
	inShape   []int
}

// NewAvgPool2D builds an average pool with a square window and stride.
func NewAvgPool2D(name string, k, stride int) *AvgPool2D {
	if k <= 0 || stride <= 0 {
		panic("nn: AvgPool2D requires positive window and stride")
	}
	return &AvgPool2D{name: name, K: k, Stride: stride}
}

// NewGlobalAvgPool builds an average pool that collapses the full spatial
// extent (the classifier head pooling in ResNet).
func NewGlobalAvgPool(name string, spatial int) *AvgPool2D {
	return NewAvgPool2D(name, spatial, spatial)
}

// Name implements Layer.
func (a *AvgPool2D) Name() string { return a.name }

// Forward implements Layer as a thin wrapper over ForwardInto that
// additionally records the input shape for the backward passes.
func (a *AvgPool2D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	checkBatched(x, 4, a.name)
	a.inShape = append(a.inShape[:0], x.Shape...)
	b, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	out := tensor.New(b, c, poolOut(h, a.K, a.Stride), poolOut(w, a.K, a.Stride))
	a.ForwardInto(out, x, nil)
	return out
}

// OutShape implements PlanLayer.
func (a *AvgPool2D) OutShape(in []int) ([]int, error) {
	if len(in) != 4 {
		return nil, fmt.Errorf("%s: want rank-4 input, got %v", a.name, in)
	}
	oh, ow := poolOut(in[2], a.K, a.Stride), poolOut(in[3], a.K, a.Stride)
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("%s: window %d stride %d collapses input %v", a.name, a.K, a.Stride, in)
	}
	return []int{in[0], in[1], oh, ow}, nil
}

// ForwardInto implements PlanLayer.
func (a *AvgPool2D) ForwardInto(dst, x *tensor.Tensor, _ *tensor.Arena) {
	b, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := poolOut(h, a.K, a.Stride), poolOut(w, a.K, a.Stride)
	inv := 1.0 / float64(a.K*a.K)
	o := 0
	for bi := 0; bi < b; bi++ {
		for ci := 0; ci < c; ci++ {
			plane := (bi*c + ci) * h * w
			for oi := 0; oi < oh; oi++ {
				for oj := 0; oj < ow; oj++ {
					s := 0.0
					for ki := 0; ki < a.K; ki++ {
						rowBase := plane + (oi*a.Stride+ki)*w + oj*a.Stride
						for kj := 0; kj < a.K; kj++ {
							s += x.Data[rowBase+kj]
						}
					}
					dst.Data[o] = s * inv
					o++
				}
			}
		}
	}
}

func (a *AvgPool2D) scatter(dOut *tensor.Tensor, coeff float64) *tensor.Tensor {
	dIn := tensor.New(a.inShape...)
	b, c, h, w := a.inShape[0], a.inShape[1], a.inShape[2], a.inShape[3]
	oh, ow := poolOut(h, a.K, a.Stride), poolOut(w, a.K, a.Stride)
	o := 0
	for bi := 0; bi < b; bi++ {
		for ci := 0; ci < c; ci++ {
			plane := (bi*c + ci) * h * w
			for oi := 0; oi < oh; oi++ {
				for oj := 0; oj < ow; oj++ {
					v := dOut.Data[o] * coeff
					for ki := 0; ki < a.K; ki++ {
						rowBase := plane + (oi*a.Stride+ki)*w + oj*a.Stride
						for kj := 0; kj < a.K; kj++ {
							dIn.Data[rowBase+kj] += v
						}
					}
					o++
				}
			}
		}
	}
	return dIn
}

// Backward implements Layer.
func (a *AvgPool2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	return a.scatter(gradOut, 1.0/float64(a.K*a.K))
}

// BackwardSecond implements Layer.
func (a *AvgPool2D) BackwardSecond(hessOut *tensor.Tensor) *tensor.Tensor {
	n := float64(a.K * a.K)
	return a.scatter(hessOut, 1.0/(n*n))
}

// Params implements Layer.
func (a *AvgPool2D) Params() []*Param { return nil }

// Clone implements Layer.
func (a *AvgPool2D) Clone() Layer { return NewAvgPool2D(a.name, a.K, a.Stride) }
