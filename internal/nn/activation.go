package nn

import (
	"math"

	"swim/internal/tensor"
)

// ReLU is the rectified linear activation. Per the paper's Eq. 10 the second
// derivative passes through the same 0/1 mask as the gradient (g′ ∈ {0,1},
// g″ = 0), so BackwardSecond is structurally identical to Backward.
type ReLU struct {
	mask []bool
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Name implements Layer.
func (r *ReLU) Name() string { return "relu" }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	out := x.Clone()
	if cap(r.mask) < len(out.Data) {
		r.mask = make([]bool, len(out.Data))
	}
	r.mask = r.mask[:len(out.Data)]
	for i, v := range out.Data {
		if v > 0 {
			r.mask[i] = true
		} else {
			r.mask[i] = false
			out.Data[i] = 0
		}
	}
	return out
}

// OutShape implements PlanLayer.
func (r *ReLU) OutShape(in []int) ([]int, error) { return in, nil }

// ForwardInto implements PlanLayer (no mask bookkeeping — inference only).
func (r *ReLU) ForwardInto(dst, x *tensor.Tensor, _ *tensor.Arena) {
	for i, v := range x.Data {
		if v > 0 {
			dst.Data[i] = v
		} else {
			dst.Data[i] = 0
		}
	}
}

// Backward implements Layer.
func (r *ReLU) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	gradIn := gradOut.Clone()
	for i := range gradIn.Data {
		if !r.mask[i] {
			gradIn.Data[i] = 0
		}
	}
	return gradIn
}

// BackwardSecond implements Layer.
func (r *ReLU) BackwardSecond(hessOut *tensor.Tensor) *tensor.Tensor {
	hessIn := hessOut.Clone()
	for i := range hessIn.Data {
		if !r.mask[i] {
			hessIn.Data[i] = 0
		}
	}
	return hessIn
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Clone implements Layer.
func (r *ReLU) Clone() Layer { return &ReLU{} }

// QuantAct fake-quantizes activations to Bits bits over [0, Max] (activations
// in this repo follow ReLU, so they are non-negative). Training uses the
// straight-through estimator: within range the derivative is treated as 1, so
// both backward passes apply the same in-range mask (g″ = 0 almost
// everywhere). This reproduces the paper's setting where "both the weights
// and activation are quantized".
type QuantAct struct {
	name string
	Bits int
	Max  float64
	// Calibrate widens Max to the observed maximum while training, emulating
	// a calibration pass; frozen during evaluation.
	Calibrate bool
	// Disabled turns the layer into a pass-through. Diagnostics that need
	// the smooth underlying network (e.g. finite-difference curvature
	// checks, where the rounding staircase would swamp the signal) disable
	// quantizers on a cloned network.
	Disabled bool

	inRange []bool
}

// NewQuantAct builds an activation quantizer with an initial range estimate.
func NewQuantAct(name string, bits int, maxAbs float64) *QuantAct {
	return &QuantAct{name: name, Bits: bits, Max: maxAbs, Calibrate: true}
}

// Levels returns the number of quantization steps.
func (q *QuantAct) Levels() int { return (1 << q.Bits) - 1 }

// Name implements Layer.
func (q *QuantAct) Name() string { return q.name }

// Forward implements Layer.
func (q *QuantAct) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if q.Disabled {
		if cap(q.inRange) < len(x.Data) {
			q.inRange = make([]bool, len(x.Data))
		}
		q.inRange = q.inRange[:len(x.Data)]
		for i := range q.inRange {
			q.inRange[i] = true
		}
		return x
	}
	if train && q.Calibrate {
		if m := x.AbsMax(); m > q.Max {
			q.Max = m
		}
	}
	out := x.Clone()
	if cap(q.inRange) < len(out.Data) {
		q.inRange = make([]bool, len(out.Data))
	}
	q.inRange = q.inRange[:len(out.Data)]
	step := q.Max / float64(q.Levels())
	if step == 0 {
		for i := range q.inRange {
			q.inRange[i] = true
		}
		return out
	}
	for i, v := range out.Data {
		q.inRange[i] = v >= 0 && v <= q.Max
		if v < 0 {
			out.Data[i] = 0
		} else if v > q.Max {
			out.Data[i] = q.Max
		} else {
			out.Data[i] = math.Round(v/step) * step
		}
	}
	return out
}

// OutShape implements PlanLayer.
func (q *QuantAct) OutShape(in []int) ([]int, error) { return in, nil }

// ForwardInto implements PlanLayer: the evaluation-mode quantization (no
// range calibration, no straight-through mask bookkeeping). The arithmetic
// matches Forward(x, false) bit for bit.
func (q *QuantAct) ForwardInto(dst, x *tensor.Tensor, _ *tensor.Arena) {
	if q.Disabled {
		copy(dst.Data, x.Data)
		return
	}
	step := q.Max / float64(q.Levels())
	if step == 0 {
		copy(dst.Data, x.Data)
		return
	}
	for i, v := range x.Data {
		if v < 0 {
			dst.Data[i] = 0
		} else if v > q.Max {
			dst.Data[i] = q.Max
		} else {
			dst.Data[i] = math.Round(v/step) * step
		}
	}
}

// Backward implements Layer.
func (q *QuantAct) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	gradIn := gradOut.Clone()
	for i := range gradIn.Data {
		if !q.inRange[i] {
			gradIn.Data[i] = 0
		}
	}
	return gradIn
}

// BackwardSecond implements Layer.
func (q *QuantAct) BackwardSecond(hessOut *tensor.Tensor) *tensor.Tensor {
	hessIn := hessOut.Clone()
	for i := range hessIn.Data {
		if !q.inRange[i] {
			hessIn.Data[i] = 0
		}
	}
	return hessIn
}

// Params implements Layer.
func (q *QuantAct) Params() []*Param { return nil }

// Clone implements Layer.
func (q *QuantAct) Clone() Layer {
	return &QuantAct{name: q.name, Bits: q.Bits, Max: q.Max, Calibrate: q.Calibrate, Disabled: q.Disabled}
}
