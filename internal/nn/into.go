package nn

import (
	"fmt"

	"swim/internal/kernel"
	"swim/internal/tensor"
)

// PlanLayer is the compiled-evaluation contract every layer in this
// repository implements on top of Layer. A layer that satisfies PlanLayer can
// be compiled into an allocation-free evaluation plan (package eval): OutShape
// lets the compiler infer every intermediate shape for a fixed batch size up
// front, and ForwardInto executes the inference-mode forward pass into a
// caller-owned destination, drawing any temporary buffers from the scratch
// arena instead of the heap.
//
// ForwardInto contracts:
//
//   - it computes the evaluation-mode (train=false) forward pass only;
//   - dst is fully overwritten (it may hold garbage on entry) and must not
//     alias x;
//   - no state needed by Backward/BackwardSecond is updated — the legacy
//     Forward path remains the entry point for training and sensitivity
//     passes;
//   - scratch may be nil, in which case temporaries fall back to the layer's
//     own cached buffers or the heap;
//   - buffers carved from scratch are released by the caller's next
//     Arena.Reset, so implementations must not retain them across calls.
//
// The arithmetic of ForwardInto is bit-for-bit identical to the
// evaluation-mode Forward: the same kernels run in the same order, so a
// compiled plan reproduces legacy results exactly (pinned by the equivalence
// tests in package eval).
type PlanLayer interface {
	Layer
	// OutShape returns the output shape produced for a batched input of the
	// given shape (axis 0 is the batch), or an error when the input shape is
	// incompatible with the layer.
	OutShape(in []int) ([]int, error)
	// ForwardInto computes the evaluation-mode forward pass into dst.
	ForwardInto(dst, x *tensor.Tensor, scratch *tensor.Arena)
}

// KernelLayer is implemented by the layers whose ForwardInto is built from
// the dense primitives of a kernel.Backend (matmul, fused bias+matmul,
// convolution). ForwardIntoKernel is ForwardInto with an explicit backend:
// compiled plans route these layers through the plan's selected backend,
// while ForwardInto itself always runs the scalar default. Because every
// registered backend is bit-identical to scalar (the package kernel
// determinism contract), the two entry points produce the same bits for any
// backend choice — backend selection is an execution hint, never a
// computation axis.
//
// Layers whose forward pass has no dense primitive (activations, pooling,
// normalization) and the analog crossbar layers (whose arithmetic is the
// device model's, not a dense matmul) do not implement KernelLayer; plans
// fall back to their plain ForwardInto.
type KernelLayer interface {
	PlanLayer
	// ForwardIntoKernel computes the evaluation-mode forward pass into dst
	// through the given kernel backend, under the same contracts as
	// ForwardInto.
	ForwardIntoKernel(dst, x *tensor.Tensor, scratch *tensor.Arena, k kernel.Backend)
}

// Compile-time checks: every layer in the package satisfies PlanLayer.
var (
	_ PlanLayer = (*Linear)(nil)
	_ PlanLayer = (*Conv2D)(nil)
	_ PlanLayer = (*BatchNorm2D)(nil)
	_ PlanLayer = (*ReLU)(nil)
	_ PlanLayer = (*QuantAct)(nil)
	_ PlanLayer = (*MaxPool2D)(nil)
	_ PlanLayer = (*AvgPool2D)(nil)
	_ PlanLayer = (*Flatten)(nil)
	_ PlanLayer = (*Sequential)(nil)
	_ PlanLayer = (*Residual)(nil)
	_ PlanLayer = (*Sigmoid)(nil)
	_ PlanLayer = (*Tanh)(nil)

	_ KernelLayer = (*Linear)(nil)
	_ KernelLayer = (*Conv2D)(nil)
)

// planChild asserts that a container child implements PlanLayer.
func planChild(l Layer) (PlanLayer, error) {
	pl, ok := l.(PlanLayer)
	if !ok {
		return nil, fmt.Errorf("nn: layer %s (%T) does not support compiled evaluation", l.Name(), l)
	}
	return pl, nil
}

// OutShape implements PlanLayer by folding the children's shape inference.
func (s *Sequential) OutShape(in []int) ([]int, error) {
	cur := in
	for _, l := range s.Layers {
		pl, err := planChild(l)
		if err != nil {
			return nil, err
		}
		if cur, err = pl.OutShape(cur); err != nil {
			return nil, fmt.Errorf("%s: %w", s.name, err)
		}
	}
	return cur, nil
}

// ForwardInto implements PlanLayer: each child's output is carved from the
// scratch arena, with the final child writing directly into dst. Compiled
// plans flatten Sequential instead of calling this (the per-call shape
// inference here allocates); it exists for the contract and the legacy
// wrapper paths.
func (s *Sequential) ForwardInto(dst, x *tensor.Tensor, scratch *tensor.Arena) {
	cur := x
	for i, l := range s.Layers {
		pl, err := planChild(l)
		if err != nil {
			panic(err)
		}
		if i == len(s.Layers)-1 {
			pl.ForwardInto(dst, cur, scratch)
			return
		}
		shape, err := pl.OutShape(cur.Shape)
		if err != nil {
			panic(fmt.Sprintf("nn: %s: %v", s.name, err))
		}
		var out *tensor.Tensor
		if scratch != nil {
			out = scratch.Alloc(shape...)
		} else {
			out = tensor.New(shape...)
		}
		pl.ForwardInto(out, cur, scratch)
		cur = out
	}
	// Empty Sequential: identity.
	copy(dst.Data, x.Data)
}

// OutShape implements PlanLayer. The body defines the output shape; a
// projection shortcut must produce the same shape (an identity skip requires
// the body to preserve the input shape).
func (r *Residual) OutShape(in []int) ([]int, error) {
	body, err := planChild(r.Body)
	if err != nil {
		return nil, err
	}
	out, err := body.OutShape(in)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", r.name, err)
	}
	if r.Shortcut != nil {
		short, err := planChild(r.Shortcut)
		if err != nil {
			return nil, err
		}
		sout, err := short.OutShape(in)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", r.name, err)
		}
		if !tensor.ShapeEq(out, sout) {
			return nil, fmt.Errorf("%s: body shape %v != shortcut shape %v", r.name, out, sout)
		}
	} else if !tensor.ShapeEq(out, in) {
		return nil, fmt.Errorf("%s: identity skip needs body to preserve shape, got %v -> %v", r.name, in, out)
	}
	return out, nil
}

// ForwardInto implements PlanLayer: body into dst, shortcut into a scratch
// temporary, then the branch sum — the same order (and therefore the same
// floating-point results) as the legacy Forward.
func (r *Residual) ForwardInto(dst, x *tensor.Tensor, scratch *tensor.Arena) {
	body, err := planChild(r.Body)
	if err != nil {
		panic(err)
	}
	body.ForwardInto(dst, x, scratch)
	if r.Shortcut == nil {
		dst.Add(x)
		return
	}
	short, err := planChild(r.Shortcut)
	if err != nil {
		panic(err)
	}
	var tmp *tensor.Tensor
	if scratch != nil {
		tmp = scratch.Alloc(dst.Shape...)
	} else {
		tmp = tensor.New(dst.Shape...)
	}
	short.ForwardInto(tmp, x, scratch)
	dst.Add(tmp)
}

// OutShape implements PlanLayer.
func (f *Flatten) OutShape(in []int) ([]int, error) {
	if len(in) < 2 {
		return nil, fmt.Errorf("flatten: need a batched input, got shape %v", in)
	}
	n := 1
	for _, d := range in[1:] {
		n *= d
	}
	return []int{in[0], n}, nil
}

// ForwardInto implements PlanLayer. Unlike the legacy Forward, which returns
// an aliasing reshape view, the plan path copies into the destination buffer
// (same values, no aliasing between plan buffers).
func (f *Flatten) ForwardInto(dst, x *tensor.Tensor, _ *tensor.Arena) {
	copy(dst.Data, x.Data)
}
