package nn

import (
	"fmt"
	"math"

	"swim/internal/kernel"
	"swim/internal/rng"
	"swim/internal/tensor"
)

// Linear is a fully connected layer: O = P·Wᵀ + b for a batch of row
// vectors P ([B, in]). W is [out, in] so that row j holds the fan-in of
// output j — the same orientation a crossbar column uses.
//
// Backward passes (paper Eq. 8, 10, 12, 13, batched over samples):
//
//	df/dW_ji   = Σ_b  df/dO_bj · P_bi          (Eq. 12)
//	df/dI_bi   = Σ_j  W_ji · df/dO_bj          (Eq. 13)
//	d²f/dW²_ji = Σ_b  d²f/dO²_bj · P_bi²       (Eq. 8)
//	d²f/dI²_bi = Σ_j  W_ji² · d²f/dO²_bj       (Eq. 10; the activation-
//	             derivative factors live in the activation layers)
type Linear struct {
	name    string
	In, Out int
	W, B    *Param

	x *tensor.Tensor // cached input [B, in]
}

// NewLinear builds a fully connected layer with Kaiming-uniform-ish
// initialization from r.
func NewLinear(name string, in, out int, r *rng.Source) *Linear {
	l := &Linear{name: name, In: in, Out: out,
		W: newParam(name+".W", out, in),
		B: newParam(name+".B", out),
	}
	l.W.Mapped = true
	std := 1.0 / float64(in)
	for i := range l.W.Data.Data {
		l.W.Data.Data[i] = r.Gauss(0, 1) * stdScale(std)
	}
	return l
}

// stdScale converts a fan-in variance target to a std (sqrt(2/fanIn) Kaiming
// for ReLU networks, expressed via the 1/fanIn variance argument).
func stdScale(invFan float64) float64 {
	return math.Sqrt(2 * invFan)
}

// Name implements Layer.
func (l *Linear) Name() string { return l.name }

// Forward implements Layer as a thin wrapper over ForwardInto that
// additionally caches the input for the backward passes.
func (l *Linear) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	checkBatched(x, 2, l.name)
	l.x = x
	out := tensor.New(x.Shape[0], l.Out)
	l.ForwardInto(out, x, nil)
	return out
}

// OutShape implements PlanLayer.
func (l *Linear) OutShape(in []int) ([]int, error) {
	if len(in) != 2 || in[1] != l.In {
		return nil, fmt.Errorf("%s: want input shape [B %d], got %v", l.name, l.In, in)
	}
	return []int{in[0], l.Out}, nil
}

// ForwardInto implements PlanLayer through the default (scalar) backend.
func (l *Linear) ForwardInto(dst, x *tensor.Tensor, s *tensor.Arena) {
	l.ForwardIntoKernel(dst, x, s, kernel.Default())
}

// ForwardIntoKernel implements KernelLayer: the fused bias+matmul primitive
// dst = x·Wᵀ + b, which every backend computes bit-identically to the
// historical separate matmul and bias passes.
func (l *Linear) ForwardIntoKernel(dst, x *tensor.Tensor, _ *tensor.Arena, k kernel.Backend) {
	k.Linear(dst, x, l.W.Data, l.B.Data.Data)
}

// Backward implements Layer.
func (l *Linear) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	b := gradOut.Shape[0]
	// dW += gradOutᵀ · x   ([out, in])
	tensor.MatMulTransAInto(l.W.Grad, gradOut, l.x, true)
	// db += column sums of gradOut
	for bi := 0; bi < b; bi++ {
		row := gradOut.Data[bi*l.Out : (bi+1)*l.Out]
		for j, v := range row {
			l.B.Grad.Data[j] += v
		}
	}
	// dx = gradOut · W   ([B, in])
	gradIn := tensor.New(b, l.In)
	tensor.MatMulInto(gradIn, gradOut, l.W.Data, false)
	return gradIn
}

// BackwardSecond implements Layer.
func (l *Linear) BackwardSecond(hessOut *tensor.Tensor) *tensor.Tensor {
	b := hessOut.Shape[0]
	// Squared input and squared weights drive both accumulations.
	x2 := l.x.Clone()
	for i, v := range x2.Data {
		x2.Data[i] = v * v
	}
	// HessW += hessOutᵀ · x²   (Eq. 8 summed over the batch)
	tensor.MatMulTransAInto(l.W.Hess, hessOut, x2, true)
	// Hess b += column sums (d²O/db² = 0, dO/db = 1)
	for bi := 0; bi < b; bi++ {
		row := hessOut.Data[bi*l.Out : (bi+1)*l.Out]
		for j, v := range row {
			l.B.Hess.Data[j] += v
		}
	}
	// hessIn = hessOut · W²   (Eq. 10 core; activation factor handled by the
	// activation layer that precedes this one)
	w2 := l.W.Data.Clone()
	for i, v := range w2.Data {
		w2.Data[i] = v * v
	}
	hessIn := tensor.New(b, l.In)
	tensor.MatMulInto(hessIn, hessOut, w2, false)
	return hessIn
}

// Params implements Layer.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// Clone implements Layer.
func (l *Linear) Clone() Layer {
	return &Linear{name: l.name, In: l.In, Out: l.Out, W: l.W.clone(), B: l.B.clone()}
}
