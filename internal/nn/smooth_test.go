package nn

import (
	"math"
	"testing"

	"swim/internal/rng"
	"swim/internal/tensor"
)

func TestSigmoidForwardValues(t *testing.T) {
	s := NewSigmoid()
	x := tensor.FromSlice([]float64{0, 100, -100}, 1, 3)
	y := s.Forward(x, false)
	if math.Abs(y.Data[0]-0.5) > 1e-12 || y.Data[1] < 0.999 || y.Data[2] > 0.001 {
		t.Fatalf("sigmoid = %v", y.Data)
	}
}

func TestTanhForwardValues(t *testing.T) {
	y := NewTanh().Forward(tensor.FromSlice([]float64{0, 5, -5}, 1, 3), false)
	if y.Data[0] != 0 || y.Data[1] < 0.999 || y.Data[2] > -0.999 {
		t.Fatalf("tanh = %v", y.Data)
	}
}

func smoothGradCheck(t *testing.T, act Layer, seed uint64) {
	t.Helper()
	r := rng.New(seed)
	net := NewNetwork("smooth", NewSequential("trunk",
		NewLinear("fc1", 4, 6, r), act, NewLinear("fc2", 6, 3, r),
	), NewSoftmaxCrossEntropy())
	x := randInput(r, 3, 4)
	checkGrads(t, net, x, []int{0, 1, 2}, false, 1e-5)
}

func TestSigmoidGradFD(t *testing.T) { smoothGradCheck(t, NewSigmoid(), 31) }
func TestTanhGradFD(t *testing.T)    { smoothGradCheck(t, NewTanh(), 32) }

// With the L2 loss directly above an elementwise smooth activation, the
// curvature-aware rule is exact: d²f/dI² = g′²·d²f/dP² + g″·df/dP has no
// dropped cross terms for a single linear layer below.
func smoothHessCheck(t *testing.T, act Layer, seed uint64) {
	t.Helper()
	r := rng.New(seed)
	net := NewNetwork("smooth", NewSequential("trunk",
		NewLinear("fc", 4, 5, r), act,
	), NewL2Loss())
	x := randInput(r, 3, 4)
	labels := []int{0, 2, 4}
	net.ZeroHess()
	net.AccumulateHessianFull(x, labels)
	for _, p := range net.Params() {
		for i := range p.Data.Data {
			got := p.Hess.Data[i]
			want := fdHess(net, p, i, x, labels, 1e-4)
			if math.Abs(got-want) > 2e-3*(1+math.Abs(want)) {
				t.Fatalf("%s %s[%d]: analytic %.8g vs FD %.8g", act.Name(), p.Name, i, got, want)
			}
		}
	}
}

func TestSigmoidHessianExactWithL2(t *testing.T) { smoothHessCheck(t, NewSigmoid(), 33) }
func TestTanhHessianExactWithL2(t *testing.T)    { smoothHessCheck(t, NewTanh(), 34) }

func TestSmoothActRequiresBackwardFirst(t *testing.T) {
	s := NewSigmoid()
	x := tensor.FromSlice([]float64{1, 2}, 1, 2)
	s.Forward(x, false)
	defer func() {
		if recover() == nil {
			t.Fatal("BackwardSecond without Backward should panic for curved activations")
		}
	}()
	s.BackwardSecond(tensor.FromSlice([]float64{1, 1}, 1, 2))
}

func TestSmoothCloneIndependent(t *testing.T) {
	s := NewTanh()
	x := tensor.FromSlice([]float64{1}, 1, 1)
	s.Forward(x, false)
	c := s.Clone().(*Tanh)
	if c.out != nil {
		t.Fatal("clone inherited caches")
	}
}

// The ReLU shortcut (AccumulateHessian without a gradient pass) and the full
// pass must agree on ReLU-only networks, confirming the g″ term is the only
// difference.
func TestFullAndFastHessianAgreeOnReLU(t *testing.T) {
	r := rng.New(35)
	build := func() *Network {
		rr := rng.New(36)
		return NewNetwork("mlp", NewSequential("trunk",
			NewLinear("fc1", 5, 7, rr), NewReLU(), NewLinear("fc2", 7, 3, rr),
		), NewSoftmaxCrossEntropy())
	}
	x := randInput(r, 4, 5)
	labels := []int{0, 1, 2, 0}
	a, b := build(), build()
	a.ZeroHess()
	a.AccumulateHessian(x, labels)
	b.ZeroHess()
	b.AccumulateHessianFull(x, labels)
	pa, pb := a.Params(), b.Params()
	for k := range pa {
		for i := range pa[k].Hess.Data {
			if math.Abs(pa[k].Hess.Data[i]-pb[k].Hess.Data[i]) > 1e-12 {
				t.Fatal("fast and full Hessian passes disagree on a ReLU network")
			}
		}
	}
}
