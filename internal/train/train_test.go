package train

import (
	"math"
	"testing"

	"swim/internal/data"
	"swim/internal/models"
	"swim/internal/nn"
	"swim/internal/quant"
	"swim/internal/rng"
)

func tinyMLP(seed uint64) *nn.Network {
	r := rng.New(seed)
	return nn.NewNetwork("mlp", nn.NewSequential("trunk",
		nn.NewFlatten(),
		nn.NewLinear("fc1", 28*28, 32, r),
		nn.NewReLU(),
		nn.NewLinear("fc2", 32, 10, r),
	), nn.NewSoftmaxCrossEntropy())
}

func TestSGDReducesLoss(t *testing.T) {
	ds := data.MNISTLike(300, 100, 1)
	net := tinyMLP(2)
	cfg := DefaultConfig()
	cfg.Epochs = 3
	stats := SGD(net, ds, cfg, rng.New(3))
	if len(stats) != 3 {
		t.Fatalf("epochs recorded = %d", len(stats))
	}
	if stats[2].Loss >= stats[0].Loss {
		t.Fatalf("loss did not decrease: %v -> %v", stats[0].Loss, stats[2].Loss)
	}
	if stats[2].TrainAcc <= stats[0].TrainAcc-5 {
		t.Fatalf("train accuracy collapsed: %v -> %v", stats[0].TrainAcc, stats[2].TrainAcc)
	}
}

func TestSGDDeterministic(t *testing.T) {
	ds := data.MNISTLike(200, 50, 1)
	a, b := tinyMLP(2), tinyMLP(2)
	cfg := DefaultConfig()
	cfg.Epochs = 2
	SGD(a, ds, cfg, rng.New(5))
	SGD(b, ds, cfg, rng.New(5))
	pa, pb := a.Params()[0].Data, b.Params()[0].Data
	for i := range pa.Data {
		if pa.Data[i] != pb.Data[i] {
			t.Fatal("same seed produced different trained weights")
		}
	}
}

func TestLRDecay(t *testing.T) {
	ds := data.MNISTLike(100, 50, 1)
	net := tinyMLP(2)
	cfg := DefaultConfig()
	cfg.Epochs = 4
	cfg.LRDecayEvery = 2
	cfg.LRDecayBy = 0.1
	stats := SGD(net, ds, cfg, rng.New(5))
	if stats[3].LR >= stats[0].LR {
		t.Fatalf("lr did not decay: %v -> %v", stats[0].LR, stats[3].LR)
	}
	if math.Abs(stats[3].LR-cfg.LR*0.1) > 1e-12 {
		t.Fatalf("lr after one decay = %v, want %v", stats[3].LR, cfg.LR*0.1)
	}
}

func TestQATLeavesWeightsOnGrid(t *testing.T) {
	ds := data.MNISTLike(200, 50, 1)
	r := rng.New(2)
	net := models.LeNet(10, 4, r)
	cfg := DefaultConfig()
	cfg.Epochs = 1
	cfg.QATBits = 4
	SGD(net, ds, cfg, r)
	for _, p := range net.MappedParams() {
		before := p.Data.Clone()
		quant.FakeQuantize(p.Data, 4)
		for i := range before.Data {
			if math.Abs(before.Data[i]-p.Data.Data[i]) > 1e-12 {
				t.Fatalf("%s not on the 4-bit grid after QAT", p.Name)
			}
		}
	}
}

func TestEvaluateBounds(t *testing.T) {
	ds := data.MNISTLike(100, 60, 1)
	net := tinyMLP(2)
	acc := Evaluate(net, ds.TestX, ds.TestY, 32)
	if acc < 0 || acc > 100 {
		t.Fatalf("accuracy out of range: %v", acc)
	}
}

func TestTrainingImprovesTestAccuracy(t *testing.T) {
	ds := data.MNISTLike(600, 200, 1)
	net := tinyMLP(2)
	before := Evaluate(net, ds.TestX, ds.TestY, 64)
	cfg := DefaultConfig()
	cfg.Epochs = 4
	SGD(net, ds, cfg, rng.New(3))
	after := Evaluate(net, ds.TestX, ds.TestY, 64)
	if after <= before+10 {
		t.Fatalf("test accuracy barely moved: %.1f -> %.1f", before, after)
	}
}
