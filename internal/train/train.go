// Package train implements the SGD trainer that produces the converged,
// quantization-aware models the paper assumes as its starting point (§4.2:
// "All models presented are quantized to the proper data precision and
// trained to converge ... This training process is quantization-aware ...
// but does not take device variations into considerations").
package train

import (
	"fmt"
	"io"

	"swim/internal/data"
	"swim/internal/eval"
	"swim/internal/nn"
	"swim/internal/quant"
	"swim/internal/rng"
	"swim/internal/tensor"
)

// Config controls an SGD run.
type Config struct {
	Epochs       int
	Batch        int
	LR           float64
	Momentum     float64
	WeightDecay  float64
	LRDecayEvery int     // epochs between LR decays (0 = never)
	LRDecayBy    float64 // multiplicative decay factor
	// QATBits > 0 enables quantization-aware training: each step runs the
	// forward/backward pass on fake-quantized mapped weights while the
	// latent float weights receive the (straight-through) update.
	QATBits int
	// Log, when non-nil, receives one line per epoch.
	Log io.Writer
}

// DefaultConfig returns a sensible baseline configuration.
func DefaultConfig() Config {
	return Config{
		Epochs: 6, Batch: 32, LR: 0.01, Momentum: 0.9, WeightDecay: 1e-4,
		LRDecayEvery: 3, LRDecayBy: 0.3,
	}
}

// EpochStats reports one epoch of training.
type EpochStats struct {
	Epoch    int
	Loss     float64
	TrainAcc float64
	LR       float64
}

// SGD trains net on the dataset's training split and returns per-epoch
// statistics. The run is deterministic given r.
func SGD(net *nn.Network, ds *data.Dataset, cfg Config, r *rng.Source) []EpochStats {
	vel := make(map[*nn.Param]*tensor.Tensor)
	params := net.Params()
	for _, p := range params {
		vel[p] = tensor.New(p.Data.Shape...)
	}
	mapped := net.MappedParams()
	latent := make(map[*nn.Param]*tensor.Tensor)

	lr := cfg.LR
	var stats []EpochStats
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if cfg.LRDecayEvery > 0 && epoch > 0 && epoch%cfg.LRDecayEvery == 0 {
			lr *= cfg.LRDecayBy
		}
		x, y := data.Shuffled(ds.TrainX, ds.TrainY, r.Split())
		var lossSum float64
		var correct, seen int
		for _, b := range data.Batches(x, y, cfg.Batch) {
			if cfg.QATBits > 0 {
				// Stash latent weights, run the pass on the quantized grid.
				for _, p := range mapped {
					latent[p] = p.Data.Clone()
					quant.FakeQuantize(p.Data, cfg.QATBits)
				}
			}
			net.ZeroGrad()
			loss, ok := net.LossGradCount(b.X, b.Y, true)
			lossSum += loss * float64(len(b.Y))
			correct += ok
			seen += len(b.Y)
			if cfg.QATBits > 0 {
				for _, p := range mapped {
					p.Data = latent[p] // restore latent weights for the update
				}
			}
			for _, p := range params {
				v := vel[p]
				for i := range v.Data {
					g := p.Grad.Data[i] + cfg.WeightDecay*p.Data.Data[i]
					v.Data[i] = cfg.Momentum*v.Data[i] - lr*g
					p.Data.Data[i] += v.Data[i]
				}
			}
		}
		st := EpochStats{
			Epoch:    epoch,
			Loss:     lossSum / float64(seen),
			TrainAcc: 100 * float64(correct) / float64(seen),
			LR:       lr,
		}
		stats = append(stats, st)
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "epoch %2d  loss %.4f  train acc %.2f%%  lr %.4f\n",
				st.Epoch, st.Loss, st.TrainAcc, st.LR)
		}
	}
	if cfg.QATBits > 0 {
		// Commit the quantized grid: from here on the network weights are
		// exactly the values that will be programmed onto devices.
		for _, p := range mapped {
			quant.FakeQuantize(p.Data, cfg.QATBits)
		}
	}
	return stats
}

// Evaluate returns the top-1 accuracy (%) of net on (x, y), evaluated in
// batches of the given size. It routes through the compiled evaluation
// engine (package eval; bit-identical to the legacy Forward), falling back
// to the per-layer Forward path whenever compiled evaluation is unavailable
// or errors. Hot loops that evaluate the same network repeatedly should
// hold an eval.Evaluator instead of calling this in a loop — Evaluate
// compiles (and discards) fresh plans every call.
func Evaluate(net *nn.Network, x *tensor.Tensor, y []int, batch int) float64 {
	if acc, err := eval.NewEvaluator(net, nil).Accuracy(x, y, batch); err == nil {
		return acc
	}
	correct := 0
	for _, b := range data.Batches(x, y, batch) {
		correct += net.CountCorrect(b.X, b.Y)
	}
	return 100 * float64(correct) / float64(len(y))
}
