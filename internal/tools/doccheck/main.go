// Command doccheck enforces the repository's documentation tier in CI:
//
//  1. Every exported identifier in the given packages must carry a doc
//     comment — top-level functions, types, consts and vars (a group doc
//     or per-line comment covers a grouped spec), and exported methods on
//     exported types.
//  2. Every fenced ```go code block in the given markdown files must be a
//     self-contained Go file that parses AND compiles against the current
//     module, so README/docs snippets cannot silently rot when an API
//     changes. Illustrative fragments that are not meant to compile must
//     use a different fence language (```text).
//
// Usage:
//
//	go run ./internal/tools/doccheck [-md README.md -md docs/ARCHITECTURE.md] ./internal/...
//
// Package patterns are directories, with the "/..." suffix walking
// recursively. Test files (*_test.go) are exempt. Exit status 1 if any
// violation is found.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }

func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	var mds stringList
	flag.Var(&mds, "md", "markdown file whose ```go blocks must compile (repeatable)")
	flag.Parse()

	var violations []string
	for _, pattern := range flag.Args() {
		dirs, err := expand(pattern)
		if err != nil {
			fatal(err)
		}
		for _, dir := range dirs {
			v, err := checkPackage(dir)
			if err != nil {
				fatal(err)
			}
			violations = append(violations, v...)
		}
	}
	for _, md := range mds {
		v, err := checkMarkdown(md)
		if err != nil {
			fatal(err)
		}
		violations = append(violations, v...)
	}
	if len(violations) > 0 {
		sort.Strings(violations)
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, v)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d violation(s)\n", len(violations))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "doccheck:", err)
	os.Exit(2)
}

// expand resolves a package pattern to directories containing Go files.
func expand(pattern string) ([]string, error) {
	root, recursive := strings.CutSuffix(pattern, "/...")
	if !recursive {
		return []string{pattern}, nil
	}
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}

// checkPackage reports every exported identifier in dir lacking a doc
// comment.
func checkPackage(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", dir, err)
	}
	var out []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: %s %s has no doc comment", p.Filename, p.Line, what, name))
	}
	for _, pkg := range pkgs {
		exportedTypes := map[string]bool{}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if gd, ok := decl.(*ast.GenDecl); ok && gd.Tok == token.TYPE {
					for _, spec := range gd.Specs {
						ts := spec.(*ast.TypeSpec)
						if ts.Name.IsExported() {
							exportedTypes[ts.Name.Name] = true
						}
					}
				}
			}
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || d.Doc != nil {
						continue
					}
					if d.Recv != nil {
						recv := receiverType(d.Recv)
						if !exportedTypes[recv] {
							continue // method on an unexported type
						}
						report(d.Name.Pos(), "method", recv+"."+d.Name.Name)
						continue
					}
					report(d.Name.Pos(), "function", d.Name.Name)
				case *ast.GenDecl:
					checkGenDecl(d, report)
				}
			}
		}
	}
	return out, nil
}

// receiverType extracts the receiver's type name (pointer stripped).
func receiverType(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		if id, ok := idx.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}

// checkGenDecl reports undocumented exported specs of a type/const/var
// declaration. A doc on the grouped declaration covers every member; a
// per-spec doc or trailing line comment also counts.
func checkGenDecl(d *ast.GenDecl, report func(pos token.Pos, what, name string)) {
	if d.Tok == token.IMPORT {
		return
	}
	what := map[token.Token]string{token.TYPE: "type", token.CONST: "const", token.VAR: "var"}[d.Tok]
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
				report(s.Name.Pos(), what, s.Name.Name)
			}
		case *ast.ValueSpec:
			if d.Doc != nil || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(name.Pos(), what, name.Name)
				}
			}
		}
	}
}

// checkMarkdown extracts every fenced ```go block from path and verifies it
// parses as a complete Go file and compiles inside the current module.
func checkMarkdown(path string) ([]string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []string
	blocks, lines, berr := goBlocks(string(raw))
	if berr != "" {
		out = append(out, fmt.Sprintf("%s: %s", path, berr))
	}
	if len(blocks) == 0 {
		return out, nil
	}
	tmp, err := os.MkdirTemp(".", ".doccheck-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)
	for i, block := range blocks {
		loc := fmt.Sprintf("%s:%d: go snippet", path, lines[i])
		fset := token.NewFileSet()
		if _, err := parser.ParseFile(fset, "snippet.go", block, 0); err != nil {
			out = append(out, fmt.Sprintf("%s does not parse as a Go file: %v", loc, firstLine(err)))
			continue
		}
		dir := filepath.Join(tmp, fmt.Sprintf("s%d", i))
		if err := os.Mkdir(dir, 0o755); err != nil {
			return nil, err
		}
		if err := os.WriteFile(filepath.Join(dir, "snippet.go"), []byte(block), 0o644); err != nil {
			return nil, err
		}
		cmd := exec.Command("go", "build", "./"+dir)
		cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
		if msg, err := cmd.CombinedOutput(); err != nil {
			out = append(out, fmt.Sprintf("%s does not compile: %s", loc, firstLine(fmt.Errorf("%s", msg))))
		}
	}
	return out, nil
}

// goBlocks returns the contents and starting line numbers of ```go fences.
// The opening fence may carry an info-string suffix ("```go title=x"); any
// line whose trimmed form starts with ``` closes an open block (so a fence
// language typo cannot swallow the rest of the document). An unclosed
// fence at EOF is reported through errMsg rather than silently dropped.
func goBlocks(doc string) (blocks []string, startLines []int, errMsg string) {
	lines := strings.Split(doc, "\n")
	inBlock := false
	var cur []string
	start := 0
	for i, line := range lines {
		trimmed := strings.TrimSpace(line)
		switch {
		case !inBlock && (trimmed == "```go" || strings.HasPrefix(trimmed, "```go ")):
			inBlock, cur, start = true, nil, i+2
		case inBlock && strings.HasPrefix(trimmed, "```"):
			blocks = append(blocks, strings.Join(cur, "\n")+"\n")
			startLines = append(startLines, start)
			inBlock = false
		case inBlock:
			cur = append(cur, line)
		}
	}
	if inBlock {
		errMsg = fmt.Sprintf("line %d: unclosed ```go fence", start-1)
	}
	return blocks, startLines, errMsg
}

func firstLine(err error) string {
	s := strings.TrimSpace(err.Error())
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	return s
}
