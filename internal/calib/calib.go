// Package calib is the closed-loop calibration tier: fitted digital
// correction of the analog read-out, sitting between the nonideality models
// (package nonideal, which only degrade) and accuracy evaluation. Real nvCiM
// flows do not read degraded weights raw — they probe the array with known
// inputs, fit a cheap parametric error model, and undo the systematic
// component of the error digitally at the ADC output. This package provides
// that stage as a registry of calibration models (Register / Lookup / Parse,
// the same spec grammar as packages nonideal, cost and kernel).
//
// # Fit contract
//
// A calibration model observes the array exactly the way hardware can: a
// bounded budget of probe reads. One probe drives a single word line with a
// unit input (a one-hot MatVec), which reveals the degraded value of one
// weight column across every output row. From the probed (degraded, ideal)
// pairs the model estimates the degradation itself per group — per bit-line
// column for "gainoffset", per crossbar tile for "pertile" — by least
// squares of degraded on desired, and applies the inverse:
//
//	degraded ≈ A·desired + B   ⇒   corrected = (degraded − B̂) / Â
//
// Fitting in that direction keeps Â unbiased under unsystematic read noise
// (the noise lives in the response, so there is no attenuation bias pulling
// the slope down), and each coefficient is shrunk toward its identity value
// by a positive-part rule against its own estimation variance — a
// coefficient within one standard error of the identity is dropped. A
// systematic, genuinely affine degradation (conductance drift) therefore
// keeps its full inverse, while noise-dominated data collapses to a no-op
// instead of injecting coherent per-group estimation error. Groups with
// fewer than two usable samples fall back to a pure mean-error offset, a
// group whose probed targets are one constant maps every read to that
// constant, and a group with no samples at all falls back to the identity.
// The correction is a pure function of the probed values, so applying it
// never consumes randomness.
//
// # Probe-budget determinism
//
// Which columns are probed is drawn from a hash-derived stream keyed by
// (trial key, matrix index), exactly like package nonideal keys per-device
// randomness: the trial key is the single Uint64 NewTrial consumes from the
// trial stream, and every matrix mixes it with its index through a SplitMix64
// finalizer. Fit is therefore pure in (trial key, matrix, data) — it can run
// any number of times, on any worker, in any shard of the trial space, and
// produce identical bits.
package calib

import (
	"fmt"
	"sort"

	"swim/internal/rng"
)

// Model is a configured calibration model. Build one with Parse or a
// registered builder; the zero value is invalid (Validate rejects it).
type Model struct {
	name   string
	spec   string
	probes int
	// tileRows/tileCols bound one correction group for tile-granular
	// models; both zero means per-column grouping.
	tileRows, tileCols int
}

// Name returns the registry name the model was built under.
func (m Model) Name() string { return m.name }

// Spec returns the model's canonical spec string — the registry name with
// every parameter spelled out in sorted order. Parse(Spec()) rebuilds the
// identical model, which is what lets the spec act as a cache-key axis.
func (m Model) Spec() string { return m.spec }

// Probes returns the per-matrix probe-read budget: how many weight columns
// the fit may observe per mapped matrix.
func (m Model) Probes() int { return m.probes }

// Validate checks the model. The zero Model (not built through the registry)
// is invalid.
func (m Model) Validate() error {
	if m.name == "" || m.spec == "" {
		return fmt.Errorf("calib: zero model (build one with calib.Parse)")
	}
	if m.probes < 2 {
		return fmt.Errorf("calib: model %q needs probes >= 2, got %d", m.name, m.probes)
	}
	if (m.tileRows != 0) != (m.tileCols != 0) || m.tileRows < 0 || m.tileCols < 0 {
		return fmt.Errorf("calib: model %q has bad tile geometry %dx%d", m.name, m.tileRows, m.tileCols)
	}
	return nil
}

// NewTrial mints the per-trial calibration instance. It consumes exactly one
// Uint64 from r — the trial key every probe choice derives from — so adding
// calibration to a pipeline shifts the trial stream by a fixed amount
// regardless of network size or probe budget.
func (m Model) NewTrial(r *rng.Source) *Calibrator {
	return &Calibrator{m: m, key: r.Uint64()}
}

// Calibrator is one Monte-Carlo trial's calibration instance: the model plus
// the trial key its probe choices derive from. Fit is pure — safe to call
// repeatedly and from any worker with identical results.
type Calibrator struct {
	m   Model
	key uint64
}

// Probes returns the per-matrix probe-read budget.
func (c *Calibrator) Probes() int { return c.m.probes }

// Spec returns the canonical spec of the model that minted this instance.
func (c *Calibrator) Spec() string { return c.m.spec }

// Fit fits the correction for one mapped weight matrix. desired and degraded
// are the ideal (quantized target) and read-out values, flat row-major over
// [rows × cols] where rows is the output dimension (bit-line columns of the
// crossbar) and cols the input dimension (word lines); param is the matrix's
// stable index within the network, mixed into the probe-choice key. Only the
// probed columns influence the fit — the rest of degraded is read but never
// enters the least squares — mirroring what a bounded probe budget can see.
func (c *Calibrator) Fit(param int, desired, degraded []float64, rows, cols int) Correction {
	if rows < 1 || cols < 1 || rows*cols != len(desired) || len(desired) != len(degraded) {
		panic(fmt.Sprintf("calib: Fit on %d/%d values for %dx%d matrix", len(desired), len(degraded), rows, cols))
	}
	probes := probeColumns(probeKey(c.key, param), cols, c.m.probes)
	corr := Correction{cols: cols, tileRows: c.m.tileRows, tileCols: c.m.tileCols}
	groups := corr.groups(rows)
	// Per-group accumulators for the least squares over (degraded → desired):
	// count, Σx, Σy, Σx², Σxy with x = degraded, y = desired.
	n := make([]float64, groups)
	sx := make([]float64, groups)
	sy := make([]float64, groups)
	sxx := make([]float64, groups)
	sxy := make([]float64, groups)
	syy := make([]float64, groups)
	// Fixed iteration order (rows outer, probed columns ascending) keeps the
	// floating-point accumulation deterministic.
	for o := 0; o < rows; o++ {
		base := o * cols
		for _, i := range probes {
			x, y := degraded[base+i], desired[base+i]
			g := corr.group(base + i)
			n[g]++
			sx[g] += x
			sy[g] += y
			sxx[g] += x * x
			sxy[g] += x * y
			syy[g] += y * y
		}
	}
	corr.gain = make([]float64, groups)
	corr.offset = make([]float64, groups)
	for g := 0; g < groups; g++ {
		corr.gain[g], corr.offset[g] = solveAffine(n[g], sx[g], sy[g], sxx[g], sxy[g], syy[g])
	}
	return corr
}

// solveAffine solves one group's least squares. Degenerate groups (fewer
// than two samples, or no spread in the degraded values) fall back to a pure
// mean-error offset; an empty group is the identity.
//
// The estimation direction matters. Regressing desired on degraded suffers
// attenuation bias: read noise in the regressor drags the slope below 1 even
// when nothing systematic is wrong, and "correcting" by that slope
// compresses every weight in the group coherently — an error amplified by
// the neuron fan-in, unlike the independent noise it replaces. solveAffine
// therefore fits the degradation itself, degraded = A·desired + B + noise
// (noise in the response, so Â is unbiased), and inverts it:
//
//	corrected = (degraded − B̂) / Â
//
// Each estimated coefficient is then shrunk toward the identity (A = 1,
// B = 0) by the positive-part rule λ = max(0, 1 − Var̂/signal²): a
// coefficient indistinguishable from its identity value at one standard
// error is dropped entirely, so under unsystematic degradation the
// correction approaches a no-op instead of injecting coherent
// estimation noise, while a genuinely affine degradation (conductance
// drift) keeps its full inverse.
func solveAffine(n, sx, sy, sxx, sxy, syy float64) (gain, offset float64) {
	if n == 0 {
		return 1, 0
	}
	meanOff := (sy - sx) / n
	if n < 2 {
		return 1, meanOff
	}
	sxxC := sxx - sx*sx/n
	syyC := syy - sy*sy/n
	sxyC := sxy - sx*sy/n
	// No spread in the desired values: the group's targets are one constant
	// (e.g. a fully pruned tile), the gain is unidentifiable, and the exact
	// flat fit maps every read to that constant. The guard is relative to
	// the data scale so equal values separated by rounding noise qualify.
	if syyC <= 1e-12*(syy+1e-300) {
		return 0, sy / n
	}
	a := sxyC / syyC
	var s2 float64
	if n > 2 {
		s2 = (sxxC - a*a*syyC) / (n - 2)
		if s2 < 0 {
			s2 = 0
		}
	}
	// shrinkK gates each coefficient at two standard errors (the variance
	// ratio compares against k·Var̂). One standard error is too permissive
	// here: a network maps hundreds of groups, so 1σ flukes are expected in
	// every fit and each one lands a coherent per-neuron error.
	const shrinkK = 4
	if da := a - 1; da != 0 {
		lam := 1 - shrinkK*s2/syyC/(da*da)
		if lam < 0 {
			lam = 0
		}
		a = 1 + da*lam
	}
	b := (sx - a*sy) / n
	if b != 0 {
		ym := sy / n
		lam := 1 - shrinkK*s2*(1/n+ym*ym/syyC)/(b*b)
		if lam < 0 {
			lam = 0
		}
		b *= lam
	}
	// A fitted gain this close to zero means the read-out barely tracks the
	// targets; inverting it would explode. Fall back to the mean-error
	// offset.
	if a < 1e-3 && a > -1e-3 {
		return 1, meanOff
	}
	gain = 1 / a
	offset = -b / a
	if !finite(gain) || !finite(offset) {
		return 1, 0
	}
	return gain, offset
}

func finite(x float64) bool { return x == x && x < 1e300 && x > -1e300 }

// Correction is a fitted affine correction over one matrix: per group g,
// corrected = gain[g]·w + offset[g]. Apply is pure; the zero value is the
// identity over zero groups and must not be applied.
type Correction struct {
	cols               int
	tileRows, tileCols int
	gain, offset       []float64
}

// groups returns the group count for a matrix with the given row count.
func (c *Correction) groups(rows int) int {
	if c.tileRows == 0 {
		return rows
	}
	return ((rows + c.tileCols - 1) / c.tileCols) * ((c.cols + c.tileRows - 1) / c.tileRows)
}

// group maps a flat row-major offset to its correction group: the output row
// for per-column models, the crossbar tile for tile-granular ones (outputs
// bound by tileCols — bit lines — and inputs by tileRows — word lines,
// matching the crossbar partition).
func (c *Correction) group(off int) int {
	o, i := off/c.cols, off%c.cols
	if c.tileRows == 0 {
		return o
	}
	inTiles := (c.cols + c.tileRows - 1) / c.tileRows
	return (o/c.tileCols)*inTiles + i/c.tileRows
}

// Apply returns the corrected value of the weight at flat row-major offset
// off whose degraded read-out is w.
func (c *Correction) Apply(off int, w float64) float64 {
	g := c.group(off)
	return c.gain[g]*w + c.offset[g]
}

// probeKey derives the per-matrix probe-choice seed from the trial key: one
// SplitMix64 finalizer over key + param so adjacent matrices decorrelate —
// the same construction package nonideal uses for per-device keys.
func probeKey(key uint64, param int) uint64 {
	z := key + 0x9e3779b97f4a7c15*uint64(param+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// probeColumns draws min(budget, cols) distinct column indices from the
// hash-derived stream, returned ascending (the accumulation order). Floyd's
// sampling algorithm draws exactly min(budget, cols) values, so the stream
// consumption is bounded and deterministic.
func probeColumns(seed uint64, cols, budget int) []int {
	if budget >= cols {
		out := make([]int, cols)
		for i := range out {
			out[i] = i
		}
		return out
	}
	r := rng.NewLocal(seed)
	seen := make(map[int]bool, budget)
	out := make([]int, 0, budget)
	for j := cols - budget; j < cols; j++ {
		t := r.Intn(j + 1)
		if seen[t] {
			t = j
		}
		seen[t] = true
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}
