package calib

import (
	"math"
	"strings"
	"testing"

	"swim/internal/rng"
)

func mustParse(t *testing.T, spec string) Model {
	t.Helper()
	m, err := Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	return m
}

func TestModelsRegistered(t *testing.T) {
	got := Registered()
	for _, want := range []string{"gainoffset", "pertile"} {
		found := false
		for _, name := range got {
			if name == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("model %q not registered (got %v)", want, got)
		}
	}
}

func TestSpecRoundTrips(t *testing.T) {
	specs := []string{
		"gainoffset",
		"gainoffset:probes=16",
		"pertile",
		"pertile:probes=4",
		"pertile:probes=4,tilerows=64,tilecols=32",
	}
	for _, spec := range specs {
		m := mustParse(t, spec)
		canon := m.Spec()
		if !strings.Contains(canon, "=") {
			t.Fatalf("Spec(%q) = %q spells out no parameters", spec, canon)
		}
		again, err := Parse(canon)
		if err != nil {
			t.Fatalf("Parse(Spec(%q)) = Parse(%q): %v", spec, canon, err)
		}
		if again != m {
			t.Fatalf("spec %q does not round-trip:\n canon %q\n first %+v\n again %+v", spec, canon, m, again)
		}
		if again.Spec() != canon {
			t.Fatalf("Spec not idempotent for %q: %q vs %q", spec, canon, again.Spec())
		}
	}
}

func TestParseRejects(t *testing.T) {
	for _, spec := range []string{
		"",                      // empty
		"nope",                  // unknown model
		"gainoffset:probes=1",   // below minimum
		"gainoffset:probes=-3",  // negative
		"gainoffset:probes=2.5", // non-integer
		"gainoffset:frobs=3",    // unknown parameter
		"pertile:tilerows=0",    // below minimum
		"gainoffset:probes",     // malformed pair
	} {
		if _, err := Parse(spec); err == nil {
			t.Fatalf("Parse(%q) accepted", spec)
		}
	}
}

func TestValidate(t *testing.T) {
	var zero Model
	if err := zero.Validate(); err == nil {
		t.Fatal("zero Model validated")
	}
	if err := mustParse(t, "gainoffset").Validate(); err != nil {
		t.Fatalf("parsed model invalid: %v", err)
	}
}

func TestNewTrialConsumesOneUint64(t *testing.T) {
	m := mustParse(t, "gainoffset")
	a, b := rng.New(42), rng.New(42)
	m.NewTrial(a)
	b.Uint64()
	if a.Uint64() != b.Uint64() {
		t.Fatal("NewTrial consumed more (or less) than one Uint64")
	}
}

// TestFitRecoversAffine is the core contract: a purely systematic affine
// degradation (per-column gain and offset) is undone exactly, because the
// least squares sees noiseless affine data.
func TestFitRecoversAffine(t *testing.T) {
	const rows, cols = 6, 9
	m := mustParse(t, "gainoffset:probes=4")
	c := m.NewTrial(rng.New(7))
	desired := make([]float64, rows*cols)
	degraded := make([]float64, rows*cols)
	for o := 0; o < rows; o++ {
		gain := 1 + 0.05*float64(o)
		off := 0.01 * float64(o)
		for i := 0; i < cols; i++ {
			w := math.Sin(float64(o*cols + i)) // varied, nonzero spread per row
			desired[o*cols+i] = w
			degraded[o*cols+i] = gain*w + off
		}
	}
	corr := c.Fit(0, desired, degraded, rows, cols)
	for off := range desired {
		got := corr.Apply(off, degraded[off])
		if math.Abs(got-desired[off]) > 1e-9 {
			t.Fatalf("offset %d: Apply = %g, want %g", off, got, desired[off])
		}
	}
}

// TestFitPertileRecoversAffine is the same contract at tile granularity: a
// degradation constant within each tile is undone exactly.
func TestFitPertileRecoversAffine(t *testing.T) {
	const rows, cols = 8, 10
	m := mustParse(t, "pertile:probes=5,tilerows=4,tilecols=4")
	c := m.NewTrial(rng.New(11))
	desired := make([]float64, rows*cols)
	degraded := make([]float64, rows*cols)
	var probe Correction
	probe = Correction{cols: cols, tileRows: 4, tileCols: 4}
	for off := range desired {
		g := probe.group(off)
		gain := 1 + 0.1*float64(g)
		bias := 0.02 * float64(g)
		w := math.Cos(float64(3 * off))
		desired[off] = w
		degraded[off] = gain*w + bias
	}
	corr := c.Fit(0, desired, degraded, rows, cols)
	for off := range desired {
		got := corr.Apply(off, degraded[off])
		if math.Abs(got-desired[off]) > 1e-9 {
			t.Fatalf("offset %d: Apply = %g, want %g", off, got, desired[off])
		}
	}
}

// TestFitPure pins determinism: the same (trial key, param, data) fit twice
// gives bit-identical corrections, and a different param probes differently.
func TestFitPure(t *testing.T) {
	const rows, cols = 4, 32
	m := mustParse(t, "gainoffset:probes=3")
	c := m.NewTrial(rng.New(99))
	desired := make([]float64, rows*cols)
	degraded := make([]float64, rows*cols)
	for i := range desired {
		desired[i] = math.Sin(float64(i))
		degraded[i] = 1.1*desired[i] + 0.02 + 0.3*math.Sin(float64(7*i)) // non-affine residual
	}
	a := c.Fit(3, desired, degraded, rows, cols)
	b := c.Fit(3, desired, degraded, rows, cols)
	for off := range desired {
		if a.Apply(off, degraded[off]) != b.Apply(off, degraded[off]) {
			t.Fatalf("Fit not pure at offset %d", off)
		}
	}
	pa := probeColumns(probeKey(42, 0), cols, 3)
	pb := probeColumns(probeKey(42, 1), cols, 3)
	same := len(pa) == len(pb)
	if same {
		for i := range pa {
			if pa[i] != pb[i] {
				same = false
			}
		}
	}
	if same {
		t.Fatalf("params 0 and 1 probe identical columns %v — key mixing is broken", pa)
	}
}

func TestFitShapePanics(t *testing.T) {
	m := mustParse(t, "gainoffset")
	c := m.NewTrial(rng.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("Fit accepted mismatched shapes")
		}
	}()
	c.Fit(0, make([]float64, 6), make([]float64, 4), 2, 3)
}

func TestProbeColumns(t *testing.T) {
	for _, tc := range []struct{ cols, budget int }{
		{10, 3}, {10, 10}, {10, 99}, {1, 8}, {257, 8},
	} {
		got := probeColumns(probeKey(5, 0), tc.cols, tc.budget)
		want := tc.budget
		if want > tc.cols {
			want = tc.cols
		}
		if len(got) != want {
			t.Fatalf("probeColumns(%d, %d) returned %d columns", tc.cols, tc.budget, len(got))
		}
		for i, col := range got {
			if col < 0 || col >= tc.cols {
				t.Fatalf("probe column %d out of range [0,%d)", col, tc.cols)
			}
			if i > 0 && got[i-1] >= col {
				t.Fatalf("probe columns not strictly ascending: %v", got)
			}
		}
	}
}

func TestSolveAffineDegenerate(t *testing.T) {
	// Empty group → identity.
	if g, o := solveAffine(0, 0, 0, 0, 0, 0); g != 1 || o != 0 {
		t.Fatalf("empty group solved to (%g, %g), want identity", g, o)
	}
	// Single sample → pure offset (mean error).
	if g, o := solveAffine(1, 2, 3, 4, 6, 9); g != 1 || o != 1 {
		t.Fatalf("single sample solved to (%g, %g), want (1, 1)", g, o)
	}
	// No spread (two equal x) → pure offset.
	// x = {2, 2}, y = {3, 5}: sy-sx = 4, n = 2 → offset 2.
	if g, o := solveAffine(2, 4, 8, 8, 16, 34); g != 1 || o != 2 {
		t.Fatalf("no-spread group solved to (%g, %g), want (1, 2)", g, o)
	}
}

// An exactly affine degradation keeps its full inverse (zero residual, no
// shrinkage); a statistically insignificant fit must collapse to the
// identity rather than inject coherent estimation noise; and a strongly
// systematic degradation survives the shrinkage nearly intact.
func TestSolveAffineShrinkage(t *testing.T) {
	// desired = 2·degraded + 1, i.e. degraded = 0.5·desired − 0.5, exactly:
	// the full inverse (gain 2, offset 1) survives.
	g, o := solveAffine(3, 6, 15, 14, 34, 83)
	if math.Abs(g-2) > 1e-12 || math.Abs(o-1) > 1e-12 {
		t.Fatalf("exact affine solved to (%g, %g), want (2, 1)", g, o)
	}
	// degraded = {-1, 0, 1}, desired = {5, 5, 5}: zero spread in the
	// targets — the exact flat fit maps every read to the constant.
	g, o = solveAffine(3, 0, 15, 2, 0, 75)
	if g != 0 || o != 5 {
		t.Fatalf("flat relation solved to (%g, %g), want (0, 5)", g, o)
	}
	// degraded = {0, 1, 2, 3}, desired = {1, 3, 1, 3}: the in-sample fit
	// (Â = 0.5) is within one standard error of the identity, so the
	// positive-part shrinkage must drop the correction entirely.
	g, o = solveAffine(4, 6, 8, 14, 14, 20)
	if g != 1 || o != 0 {
		t.Fatalf("insignificant relation solved to (%g, %g), want identity", g, o)
	}
	// degraded ≈ 0.5·desired with small residuals (desired {0, 2, 4, 6},
	// degraded {0.1, 0.9, 2.1, 2.9}): the attenuation is many standard
	// errors from 1, so the inverse gain ≈ 2 survives; the small fitted
	// offset is insignificant and must vanish.
	g, o = solveAffine(4, 6, 12, 13.64, 27.6, 56)
	if g < 1.9 || g > 2.2 {
		t.Fatalf("systematic attenuation gain %g, want ≈ 2", g)
	}
	if o != 0 {
		t.Fatalf("insignificant offset %g survived shrinkage", o)
	}
}

func TestFromFlagConventions(t *testing.T) {
	if _, ok, _, err := FromFlag(""); err != nil || ok {
		t.Fatalf("FromFlag(\"\") = ok %v err %v, want disabled", ok, err)
	}
	if _, ok, _, err := FromFlag("none"); err != nil || ok {
		t.Fatalf("FromFlag(\"none\") = ok %v err %v, want disabled", ok, err)
	}
	_, _, listing, err := FromFlag("list")
	if err != nil || listing == "" {
		t.Fatalf("FromFlag(\"list\") = listing %q err %v", listing, err)
	}
	for _, want := range []string{"gainoffset", "pertile"} {
		if !strings.Contains(listing, want) {
			t.Fatalf("listing %q misses %q", listing, want)
		}
	}
	m, ok, _, err := FromFlag("gainoffset:probes=16")
	if err != nil || !ok {
		t.Fatalf("FromFlag(spec) = ok %v err %v", ok, err)
	}
	if m.Probes() != 16 {
		t.Fatalf("Probes() = %d, want 16", m.Probes())
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("definitely-not-registered"); err == nil {
		t.Fatal("Lookup of unknown model succeeded")
	} else if !strings.Contains(err.Error(), "definitely-not-registered") {
		t.Fatalf("error %v does not name the model", err)
	}
}
