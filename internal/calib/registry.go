package calib

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Params carries the numeric parameters of one model spec (e.g.
// {"probes": 16} for "gainoffset:probes=16"). Builders reject unknown keys so
// a mistyped parameter reads as a usage error, not a silent default.
type Params map[string]float64

// Builder constructs a configured Model from parameters. Missing keys take
// the preset's defaults; unknown keys are an error.
type Builder func(p Params) (Model, error)

var (
	regMu    sync.RWMutex
	registry = map[string]Builder{}
)

// Register adds a model builder under name. Registering a name twice is an
// error, mirroring the nonideal/cost/kernel registries: silently replacing a
// model would make calibration specs depend on package-initialization order.
func Register(name string, b Builder) error {
	if b == nil {
		return fmt.Errorf("calib: register nil builder")
	}
	if name == "" {
		return fmt.Errorf("calib: register builder with empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("calib: model %q already registered", name)
	}
	registry[name] = b
	return nil
}

// MustRegister is Register for package-init use; it panics on error.
func MustRegister(name string, b Builder) {
	if err := Register(name, b); err != nil {
		panic(err)
	}
}

// Lookup resolves a model builder by name. Unknown names return an error
// listing what is registered, so a mistyped -calib flag reads as a usage
// hint.
func Lookup(name string) (Builder, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("calib: unknown model %q (registered: %v)", name, registeredLocked())
	}
	return b, nil
}

// Registered returns the registered model names, sorted.
func Registered() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return registeredLocked()
}

func registeredLocked() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Parse builds one model from a spec string: a registered name optionally
// followed by colon-separated parameters, e.g. "gainoffset" or
// "pertile:probes=16,tilerows=64". Every model's Spec() round-trips through
// Parse to an identical model — the canonical spec spells out every resolved
// parameter, so two daemons that parse the same spec agree bit-for-bit.
func Parse(spec string) (Model, error) {
	name, rest, _ := strings.Cut(strings.TrimSpace(spec), ":")
	b, err := Lookup(name)
	if err != nil {
		return Model{}, err
	}
	p := Params{}
	if rest != "" {
		for _, kv := range strings.Split(rest, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return Model{}, fmt.Errorf("calib: bad parameter %q in spec %q (want key=value)", kv, spec)
			}
			f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			if err != nil {
				return Model{}, fmt.Errorf("calib: bad value for %q in spec %q: %v", k, spec, err)
			}
			p[strings.TrimSpace(k)] = f
		}
	}
	m, err := b(p)
	if err != nil {
		return Model{}, fmt.Errorf("calib: spec %q: %w", spec, err)
	}
	return m, nil
}

// FromFlag resolves the CLIs' shared -calib flag convention: the literal
// "list" requests the registered-model listing (returned in listing, with no
// model); the empty string and the literal "none" disable calibration (ok
// reports false); anything else parses as a model spec.
func FromFlag(spec string) (m Model, ok bool, listing string, err error) {
	spec = strings.TrimSpace(spec)
	if spec == "list" {
		return Model{}, false, strings.Join(Registered(), "\n"), nil
	}
	if spec == "" || spec == "none" {
		return Model{}, false, "", nil
	}
	m, err = Parse(spec)
	if err != nil {
		return Model{}, false, "", err
	}
	return m, true, "", nil
}

// params tracks parameter resolution for one builder: explicit values win,
// defaults fill the rest, and every consumed key lands in resolved so the
// canonical spec can spell the whole model out.
type params struct {
	p        Params
	used     map[string]bool
	resolved map[string]float64
}

func newParams(p Params) *params {
	return &params{p: p, used: map[string]bool{}, resolved: map[string]float64{}}
}

func (ps *params) get(key string, def float64) float64 {
	ps.used[key] = true
	v := def
	if x, ok := ps.p[key]; ok {
		v = x
	}
	ps.resolved[key] = v
	return v
}

// leftover returns an error naming any parameter the builder did not
// consume.
func (ps *params) leftover(name string) error {
	for k := range ps.p {
		if !ps.used[k] {
			return fmt.Errorf("unknown parameter %q for model %q", k, name)
		}
	}
	return nil
}

// spec renders the canonical spec string: the model name plus every resolved
// parameter in sorted key order. strconv's 'g' formatting emits the shortest
// digit string that round-trips exactly, so Parse(spec) rebuilds bit-identical
// values.
func (ps *params) spec(name string) string {
	keys := make([]string, 0, len(ps.resolved))
	for k := range ps.resolved {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString(name)
	for i, k := range keys {
		if i == 0 {
			sb.WriteByte(':')
		} else {
			sb.WriteByte(',')
		}
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(strconv.FormatFloat(ps.resolved[k], 'g', -1, 64))
	}
	return sb.String()
}

// probeBudget validates the shared probes parameter.
func probeBudget(name string, ps *params) (int, error) {
	probes := ps.get("probes", 8)
	if probes < 2 || probes != math.Trunc(probes) || probes > 1<<20 {
		return 0, fmt.Errorf("model %q needs integer probes >= 2 (got %g)", name, probes)
	}
	return int(probes), nil
}

func init() {
	// gainoffset: one least-squares gain+offset per bit-line column (output
	// row of the mapped matrix), fitted from `probes` one-hot probe reads
	// per matrix. The default budget of 8 probes matches a sub-percent
	// read overhead on every built-in workload.
	MustRegister("gainoffset", func(p Params) (Model, error) {
		ps := newParams(p)
		probes, err := probeBudget("gainoffset", ps)
		if err != nil {
			return Model{}, err
		}
		if err := ps.leftover("gainoffset"); err != nil {
			return Model{}, err
		}
		m := Model{name: "gainoffset", probes: probes}
		m.spec = ps.spec("gainoffset")
		return m, m.Validate()
	})
	// pertile: the same affine fit at crossbar-tile granularity — one
	// (gain, offset) per tilerows×tilecols tile of the mapped matrix
	// (word lines × bit lines, defaulting to the 128×128 fabric of
	// crossbar.DefaultConfig). Coarser groups pool more probe samples per
	// fit, trading spatial resolution for estimator variance.
	MustRegister("pertile", func(p Params) (Model, error) {
		ps := newParams(p)
		probes, err := probeBudget("pertile", ps)
		if err != nil {
			return Model{}, err
		}
		tr := ps.get("tilerows", 128)
		tc := ps.get("tilecols", 128)
		if tr < 1 || tr != math.Trunc(tr) || tc < 1 || tc != math.Trunc(tc) {
			return Model{}, fmt.Errorf("model %q needs integer tilerows/tilecols >= 1 (got %gx%g)", "pertile", tr, tc)
		}
		if err := ps.leftover("pertile"); err != nil {
			return Model{}, err
		}
		m := Model{name: "pertile", probes: probes, tileRows: int(tr), tileCols: int(tc)}
		m.spec = ps.spec("pertile")
		return m, m.Validate()
	})
}
