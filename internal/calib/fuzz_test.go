package calib

import "testing"

// FuzzParse drives the calibration-model spec grammar with arbitrary
// input: no input may panic, and every accepted spec must canonicalize —
// Spec() of the parsed model reparses to a byte-identical Spec(). The
// serve tier's cache keys and the shard merge's agreement check both
// compare these strings, so the fixed point is load-bearing.
func FuzzParse(f *testing.F) {
	f.Add("gainoffset")
	f.Add("gainoffset:probes=16")
	f.Add("pertile")
	f.Add("pertile:probes=8,tilerows=32,tilecols=16")
	f.Add("gainoffset:probes=1")
	f.Add("gainoffset:tilerows=8")
	f.Add("pertile:tilerows=8")
	f.Add("gainoffset:probes=2.5")
	f.Add("gainoffset:probes=")
	f.Fuzz(func(t *testing.T, spec string) {
		m, err := Parse(spec)
		if err != nil {
			return
		}
		canon := m.Spec()
		again, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q (of %q) rejected: %v", canon, spec, err)
		}
		if got := again.Spec(); got != canon {
			t.Fatalf("canonical form not a fixed point: %q reparsed to %q", canon, got)
		}
	})
}
