// Package data synthesizes the image-classification datasets used by the
// experiment harnesses. The paper evaluates on MNIST, CIFAR-10 and Tiny
// ImageNet; none of those can be downloaded in this offline reproduction, so
// each is substituted by a procedurally generated task of matching geometry
// (see DESIGN.md §3): every class owns a smooth random prototype built from
// Gaussian blobs, and samples are random translations, contrast jitter and
// pixel noise around the prototype. The tasks are learnable by the same
// architectures, non-trivially hard (translation variance + noise), and —
// crucially for SWIM — produce converged loss surfaces with the df/dw ≈ 0
// property Eq. 3 relies on, exercising the identical code paths as the
// paper's datasets.
package data

import (
	"fmt"
	"math"

	"swim/internal/rng"
	"swim/internal/tensor"
)

// Dataset is an in-memory image-classification dataset.
type Dataset struct {
	Name    string
	C, H, W int
	Classes int
	TrainX  *tensor.Tensor // [Ntrain, C, H, W]
	TrainY  []int
	TestX   *tensor.Tensor // [Ntest, C, H, W]
	TestY   []int
}

// Config parameterizes the synthetic generator.
type Config struct {
	Name    string
	C, H, W int
	Classes int
	Train   int
	Test    int
	Blobs   int // Gaussian blobs per class prototype
	// SharedBlobs is the number of blobs of a background pattern common to
	// every class. Together with ClassSep it controls task difficulty: each
	// prototype is shared + ClassSep·classSpecific, so a small ClassSep
	// leaves classes distinguishable only by a subtle signal buried in the
	// common background and pixel noise — mimicking the tight decision
	// margins of real image tasks, which is what makes the mapped network
	// sensitive to weight perturbations in the first place.
	SharedBlobs int
	ClassSep    float64
	Shift       int     // max |translation| in pixels
	NoiseStd    float64 // additive pixel noise
	ContrastLo  float64
	ContrastHi  float64
	// HardFraction of samples receive HardNoiseMult× pixel noise. A mostly
	// clean task with a hard minority reproduces the margin structure of
	// real benchmarks: clean accuracy is high, yet a band of borderline
	// samples sits near the decision boundary, so weight perturbations
	// translate into first-order accuracy loss — the regime in which the
	// paper's experiments operate (LeNet at 98.7% dropping ~4% under
	// σ = 0.2 without write-verify).
	HardFraction  float64
	HardNoiseMult float64
	Seed          uint64
}

// MNISTLike mirrors the MNIST geometry (1×28×28, 10 classes) used for the
// paper's LeNet experiments (Table 1, Fig. 1). The preset was tuned so that
// a converged 4-bit LeNet lands in the mid-90s with a hard-sample band,
// putting device-noise degradation in the same first-order regime as the
// paper's MNIST results.
func MNISTLike(train, test int, seed uint64) *Dataset {
	return Generate(Config{
		Name: "mnist-like", C: 1, H: 28, W: 28, Classes: 10,
		Train: train, Test: test,
		Blobs: 6, SharedBlobs: 8, ClassSep: 0.8,
		Shift: 2, NoiseStd: 0.4, ContrastLo: 0.8, ContrastHi: 1.2,
		HardFraction: 0.3, HardNoiseMult: 3.0,
		Seed: seed,
	})
}

// CIFARLike mirrors the CIFAR-10 geometry (3×32×32, 10 classes) used for the
// ConvNet and ResNet-18 experiments (Fig. 2a, 2b).
func CIFARLike(train, test int, seed uint64) *Dataset {
	return Generate(Config{
		Name: "cifar-like", C: 3, H: 32, W: 32, Classes: 10,
		Train: train, Test: test,
		Blobs: 8, SharedBlobs: 10, ClassSep: 0.8,
		Shift: 3, NoiseStd: 0.4, ContrastLo: 0.7, ContrastHi: 1.3,
		HardFraction: 0.3, HardNoiseMult: 3.0,
		Seed: seed,
	})
}

// TinyImageNetLike substitutes the Tiny ImageNet task (Fig. 2c). The paper's
// 200-class 64×64 problem is scaled to 40 classes at 3×32×32 — still markedly
// harder than the CIFAR-like task (4× the classes at equal resolution), which
// preserves the qualitative property Fig. 2c illustrates: all methods degrade
// more, and the gap between SWIM and the baselines widens.
func TinyImageNetLike(train, test int, seed uint64) *Dataset {
	return Generate(Config{
		Name: "tinyimagenet-like", C: 3, H: 32, W: 32, Classes: 40,
		Train: train, Test: test,
		Blobs: 8, SharedBlobs: 10, ClassSep: 0.7,
		Shift: 3, NoiseStd: 0.4, ContrastLo: 0.7, ContrastHi: 1.3,
		HardFraction: 0.3, HardNoiseMult: 3.0,
		Seed: seed,
	})
}

type blob struct {
	cy, cx, sigma float64
	amp           [8]float64 // per-channel amplitude (up to 8 channels)
}

// Generate builds a dataset from the configuration.
func Generate(cfg Config) *Dataset {
	if cfg.Classes < 2 || cfg.Train < cfg.Classes || cfg.Test < cfg.Classes {
		panic(fmt.Sprintf("data: degenerate config %+v", cfg))
	}
	r := rng.New(cfg.Seed)
	sep := cfg.ClassSep
	if sep <= 0 {
		sep = 1
	}

	makeBlobs := func(n int) []blob {
		bs := make([]blob, n)
		for i := range bs {
			b := blob{
				cy:    r.Float64() * float64(cfg.H),
				cx:    r.Float64() * float64(cfg.W),
				sigma: 1.5 + r.Float64()*float64(cfg.H)/6,
			}
			for c := 0; c < cfg.C; c++ {
				b.amp[c] = r.Gauss(0, 1)
			}
			bs[i] = b
		}
		return bs
	}
	shared := makeBlobs(cfg.SharedBlobs)
	protos := make([][]blob, cfg.Classes)
	for k := range protos {
		protos[k] = makeBlobs(cfg.Blobs)
	}

	// Pre-render each prototype once; samples shift/scale/noise it.
	sharedImg := tensor.New(cfg.C, cfg.H, cfg.W)
	renderBlobs(sharedImg, shared, 0, 0)
	rendered := make([]*tensor.Tensor, cfg.Classes)
	for k := range rendered {
		img := tensor.New(cfg.C, cfg.H, cfg.W)
		renderBlobs(img, protos[k], 0, 0)
		img.Scale(sep)
		img.Add(sharedImg)
		normalize(img)
		rendered[k] = img
	}

	d := &Dataset{
		Name: cfg.Name, C: cfg.C, H: cfg.H, W: cfg.W, Classes: cfg.Classes,
		TrainX: tensor.New(cfg.Train, cfg.C, cfg.H, cfg.W),
		TrainY: make([]int, cfg.Train),
		TestX:  tensor.New(cfg.Test, cfg.C, cfg.H, cfg.W),
		TestY:  make([]int, cfg.Test),
	}
	fill := func(x *tensor.Tensor, y []int, rr *rng.Source) {
		n := len(y)
		sample := cfg.C * cfg.H * cfg.W
		for i := 0; i < n; i++ {
			k := i % cfg.Classes // balanced classes
			y[i] = k
			dst := x.Data[i*sample : (i+1)*sample]
			dy := rr.Intn(2*cfg.Shift+1) - cfg.Shift
			dx := rr.Intn(2*cfg.Shift+1) - cfg.Shift
			contrast := cfg.ContrastLo + rr.Float64()*(cfg.ContrastHi-cfg.ContrastLo)
			noise := cfg.NoiseStd
			if cfg.HardFraction > 0 && rr.Float64() < cfg.HardFraction {
				noise *= cfg.HardNoiseMult
			}
			shiftInto(dst, rendered[k], cfg.C, cfg.H, cfg.W, dy, dx)
			for j := range dst {
				dst[j] = dst[j]*contrast + rr.Gauss(0, noise)
			}
		}
	}
	fill(d.TrainX, d.TrainY, r.Split())
	fill(d.TestX, d.TestY, r.Split())
	return d
}

func renderBlobs(img *tensor.Tensor, bs []blob, dy, dx float64) {
	c, h, w := img.Shape[0], img.Shape[1], img.Shape[2]
	for _, b := range bs {
		cy, cx := b.cy+dy, b.cx+dx
		inv := 1.0 / (2 * b.sigma * b.sigma)
		for i := 0; i < h; i++ {
			dyy := float64(i) - cy
			for j := 0; j < w; j++ {
				dxx := float64(j) - cx
				g := math.Exp(-(dyy*dyy + dxx*dxx) * inv)
				if g < 1e-4 {
					continue
				}
				for ch := 0; ch < c; ch++ {
					img.Data[(ch*h+i)*w+j] += b.amp[ch] * g
				}
			}
		}
	}
}

// shiftInto copies src translated by (dy, dx) with zero padding at borders.
func shiftInto(dst []float64, src *tensor.Tensor, c, h, w, dy, dx int) {
	for ch := 0; ch < c; ch++ {
		for i := 0; i < h; i++ {
			si := i - dy
			for j := 0; j < w; j++ {
				sj := j - dx
				idx := (ch*h+i)*w + j
				if si < 0 || si >= h || sj < 0 || sj >= w {
					dst[idx] = 0
				} else {
					dst[idx] = src.Data[(ch*h+si)*w+sj]
				}
			}
		}
	}
}

func normalize(img *tensor.Tensor) {
	var mean float64
	for _, v := range img.Data {
		mean += v
	}
	mean /= float64(len(img.Data))
	var ss float64
	for i := range img.Data {
		img.Data[i] -= mean
		ss += img.Data[i] * img.Data[i]
	}
	std := math.Sqrt(ss / float64(len(img.Data)))
	if std < 1e-9 {
		return
	}
	inv := 1.0 / std
	for i := range img.Data {
		img.Data[i] *= inv
	}
}

// Batch is a contiguous mini-batch view of a dataset split.
type Batch struct {
	X *tensor.Tensor
	Y []int
}

// Batches splits (x, y) into consecutive batches of at most size samples.
// Views share backing storage with x — do not mutate them.
func Batches(x *tensor.Tensor, y []int, size int) []Batch {
	if size <= 0 {
		panic("data: non-positive batch size")
	}
	n := x.Shape[0]
	sample := x.Size() / n
	var out []Batch
	for start := 0; start < n; start += size {
		end := start + size
		if end > n {
			end = n
		}
		shape := append([]int{end - start}, x.Shape[1:]...)
		out = append(out, Batch{
			X: tensor.FromSlice(x.Data[start*sample:end*sample], shape...),
			Y: y[start:end],
		})
	}
	return out
}

// Shuffled returns a shuffled copy of the split (x, y). The copy keeps the
// original untouched so epochs can reshuffle independently.
func Shuffled(x *tensor.Tensor, y []int, r *rng.Source) (*tensor.Tensor, []int) {
	n := x.Shape[0]
	sample := x.Size() / n
	perm := r.Perm(n)
	nx := tensor.New(x.Shape...)
	ny := make([]int, n)
	for i, p := range perm {
		copy(nx.Data[i*sample:(i+1)*sample], x.Data[p*sample:(p+1)*sample])
		ny[i] = y[p]
	}
	return nx, ny
}

// Subset returns the first n samples of the split as a view.
func Subset(x *tensor.Tensor, y []int, n int) (*tensor.Tensor, []int) {
	if n > x.Shape[0] {
		n = x.Shape[0]
	}
	sample := x.Size() / x.Shape[0]
	shape := append([]int{n}, x.Shape[1:]...)
	return tensor.FromSlice(x.Data[:n*sample], shape...), y[:n]
}
