package data

import (
	"math"
	"testing"

	"swim/internal/rng"
	"swim/internal/tensor"
)

func TestGenerateShapesAndBalance(t *testing.T) {
	d := MNISTLike(100, 50, 1)
	if d.TrainX.Shape[0] != 100 || d.TestX.Shape[0] != 50 {
		t.Fatalf("split sizes wrong: %v / %v", d.TrainX.Shape, d.TestX.Shape)
	}
	if d.C != 1 || d.H != 28 || d.W != 28 || d.Classes != 10 {
		t.Fatalf("geometry wrong: %+v", d)
	}
	counts := make([]int, d.Classes)
	for _, y := range d.TrainY {
		if y < 0 || y >= d.Classes {
			t.Fatalf("label out of range: %d", y)
		}
		counts[y]++
	}
	for k, c := range counts {
		if c != 10 {
			t.Fatalf("class %d has %d samples, want balanced 10", k, c)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := CIFARLike(20, 10, 7)
	b := CIFARLike(20, 10, 7)
	for i := range a.TrainX.Data {
		if a.TrainX.Data[i] != b.TrainX.Data[i] {
			t.Fatal("same seed produced different data")
		}
	}
	c := CIFARLike(20, 10, 8)
	same := true
	for i := range a.TrainX.Data {
		if a.TrainX.Data[i] != c.TrainX.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestClassesAreSeparable(t *testing.T) {
	// A nearest-class-prototype classifier on the clean prototypes should
	// beat chance by a wide margin — otherwise the task is pure noise and
	// accuracy-drop experiments would be meaningless.
	d := MNISTLike(200, 200, 3)
	sample := d.C * d.H * d.W
	protos := make([][]float64, d.Classes)
	counts := make([]int, d.Classes)
	for i, y := range d.TrainY {
		if protos[y] == nil {
			protos[y] = make([]float64, sample)
		}
		for j := 0; j < sample; j++ {
			protos[y][j] += d.TrainX.Data[i*sample+j]
		}
		counts[y]++
	}
	for k := range protos {
		for j := range protos[k] {
			protos[k][j] /= float64(counts[k])
		}
	}
	correct := 0
	for i, y := range d.TestY {
		best, bestK := math.Inf(1), -1
		for k := range protos {
			s := 0.0
			for j := 0; j < sample; j++ {
				diff := d.TestX.Data[i*sample+j] - protos[k][j]
				s += diff * diff
			}
			if s < best {
				best, bestK = s, k
			}
		}
		if bestK == y {
			correct++
		}
	}
	acc := float64(correct) / float64(len(d.TestY))
	if acc < 0.5 {
		t.Fatalf("nearest-prototype accuracy %.2f; task not separable (chance = 0.1)", acc)
	}
}

func TestTinyImageNetLikeIsHarder(t *testing.T) {
	d := TinyImageNetLike(80, 80, 2)
	if d.Classes != 40 {
		t.Fatalf("classes = %d, want 40", d.Classes)
	}
}

func TestBatches(t *testing.T) {
	x := tensor.New(10, 2)
	for i := range x.Data {
		x.Data[i] = float64(i)
	}
	y := make([]int, 10)
	for i := range y {
		y[i] = i
	}
	bs := Batches(x, y, 4)
	if len(bs) != 3 {
		t.Fatalf("batch count = %d", len(bs))
	}
	if bs[0].X.Shape[0] != 4 || bs[2].X.Shape[0] != 2 {
		t.Fatalf("batch shapes wrong")
	}
	if bs[1].X.Data[0] != 8 { // sample 4 starts at flat index 8
		t.Fatalf("batch view misaligned: %v", bs[1].X.Data[0])
	}
	if bs[2].Y[1] != 9 {
		t.Fatal("labels misaligned")
	}
}

func TestShuffledPreservesPairs(t *testing.T) {
	x := tensor.New(8, 1)
	y := make([]int, 8)
	for i := 0; i < 8; i++ {
		x.Data[i] = float64(i) * 10
		y[i] = i
	}
	sx, sy := Shuffled(x, y, rng.New(5))
	for i := 0; i < 8; i++ {
		if sx.Data[i] != float64(sy[i])*10 {
			t.Fatal("shuffle broke sample-label pairing")
		}
	}
	sum := 0
	for _, v := range sy {
		sum += v
	}
	if sum != 28 {
		t.Fatal("shuffle lost labels")
	}
}

func TestSubset(t *testing.T) {
	x := tensor.New(10, 3)
	y := make([]int, 10)
	sx, sy := Subset(x, y, 4)
	if sx.Shape[0] != 4 || len(sy) != 4 {
		t.Fatal("subset size wrong")
	}
	sx2, _ := Subset(x, y, 99)
	if sx2.Shape[0] != 10 {
		t.Fatal("oversized subset must clamp")
	}
}

func TestNormalizedPrototypes(t *testing.T) {
	d := CIFARLike(30, 10, 9)
	// Samples should have roughly zero mean / unit-ish std before jitter;
	// after contrast and noise they stay bounded.
	if m := d.TrainX.AbsMax(); m > 10 {
		t.Fatalf("sample values unreasonably large: %v", m)
	}
}
