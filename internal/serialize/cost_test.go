package serialize

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"swim/internal/cost"
	"swim/internal/program"
	"swim/internal/stat"
)

func costResult(t *testing.T) *program.Result {
	t.Helper()
	m, err := cost.Parse("rram")
	if err != nil {
		t.Fatal(err)
	}
	cyc := &stat.Welford{}
	for _, v := range []float64{1200, 1800, 2400} {
		cyc.Add(v)
	}
	res := &program.Result{
		Policy: "swim", Budget: program.GridBudget(0, 0.1), Trials: 3,
		Points: []program.Point{
			{Target: 0, Accuracy: &stat.Welford{}, NWC: &stat.Welford{}, Cycles: &stat.Welford{}},
			{Target: 0.1, Accuracy: &stat.Welford{}, NWC: &stat.Welford{}, Cycles: cyc},
		},
	}
	res.Cost = m.Report(
		cost.Geometry{Weights: 10, Slices: 2, TileRows: 128, TileCols: 128, Tiles: 1, MatVecs: 1, DACs: 10, ADCs: 4},
		[]float64{0, 0.1},
		[]*stat.Welford{res.Points[0].Cycles, cyc},
	)
	return res
}

// TestCostRoundTrip pins the versioned cost block: capture → encode →
// decode → restore reproduces the cycle aggregates and the full report,
// losslessly (sufficient statistics, not formatted floats).
func TestCostRoundTrip(t *testing.T) {
	res := costResult(t)
	var buf bytes.Buffer
	if err := EncodeResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	raw := buf.String()
	for _, want := range []string{`"cost"`, `"cycles"`, `"energy_uj"`, `"time_ms"`, `"geometry"`, `"area_mm2"`} {
		if !strings.Contains(raw, want) {
			t.Fatalf("encoded record lacks %s:\n%s", want, raw)
		}
	}
	back, rec, err := DecodeResult(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Cost == nil || rec.Cost.Version != CostVersion {
		t.Fatalf("cost record version: %+v", rec.Cost)
	}
	if back.Cost == nil || back.Cost.Model != res.Cost.Model || back.Cost.Geometry != res.Cost.Geometry {
		t.Fatalf("restored cost header diverges: %+v vs %+v", back.Cost, res.Cost)
	}
	if back.Cost.AreaMM2 != res.Cost.AreaMM2 ||
		back.Cost.InferenceEnergyNJ != res.Cost.InferenceEnergyNJ ||
		back.Cost.InferenceLatencyUS != res.Cost.InferenceLatencyUS {
		t.Fatalf("restored cost statics diverge: %+v vs %+v", back.Cost, res.Cost)
	}
	for i, p := range back.Cost.Points {
		want := res.Cost.Points[i]
		if p.EnergyUJ.Mean() != want.EnergyUJ.Mean() || p.EnergyUJ.M2() != want.EnergyUJ.M2() ||
			p.TimeMS.Mean() != want.TimeMS.Mean() || p.EnergyUJ.N() != want.EnergyUJ.N() {
			t.Fatalf("point %d diverges: %+v vs %+v", i, p, want)
		}
	}
	for i, p := range back.Points {
		if p.Cycles.Mean() != res.Points[i].Cycles.Mean() || p.Cycles.N() != res.Points[i].Cycles.N() {
			t.Fatalf("cycles %d diverge", i)
		}
	}
}

// TestCostForwardCompatibility: a cost block written by a newer version
// (with fields this binary does not know) survives decode → encode.
func TestCostForwardCompatibility(t *testing.T) {
	res := costResult(t)
	rec := CaptureResult(res)
	raw, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	var costMap map[string]json.RawMessage
	if err := json.Unmarshal(m["cost"], &costMap); err != nil {
		t.Fatal(err)
	}
	costMap["thermal_w"] = json.RawMessage(`{"tdp": 5.5}`)
	m["cost"], _ = json.Marshal(costMap)
	future, _ := json.Marshal(m)

	var back ResultRecord
	if err := json.Unmarshal(future, &back); err != nil {
		t.Fatal(err)
	}
	if back.Cost == nil || back.Cost.Extra == nil || string(back.Cost.Extra["thermal_w"]) != `{"tdp":5.5}` {
		t.Fatalf("future cost field not preserved: %+v", back.Cost)
	}
	again, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(again), `"thermal_w"`) {
		t.Fatalf("future cost field dropped on re-encode:\n%s", again)
	}
}

// TestCostBackwardCompatibility: records written before the cost tier
// (no cycles, no cost) decode cleanly.
func TestCostBackwardCompatibility(t *testing.T) {
	legacy := `{"version":1,"policy":"swim","trials":2,"points":[{"target":0.1,"accuracy":{"n":2,"mean":90,"m2":1},"nwc":{"n":2,"mean":0.1,"m2":0}}]}`
	res, rec, err := DecodeResult(strings.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != nil || rec.Cost != nil {
		t.Fatalf("legacy record grew a cost block: %+v", rec.Cost)
	}
	if res.Points[0].Cycles != nil {
		t.Fatalf("legacy record grew cycle aggregates: %+v", res.Points[0])
	}
	var buf bytes.Buffer
	if err := EncodeResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"cost"`) || strings.Contains(buf.String(), `"cycles"`) {
		t.Fatalf("re-encoded legacy record emits empty cost fields:\n%s", buf.String())
	}
}

// TestRequestCostAxisParticipatesInKey pins cache-key participation: two
// requests differing only in cost model hash to different canonical keys,
// while omitting the field entirely keeps legacy keys stable.
func TestRequestCostAxisParticipatesInKey(t *testing.T) {
	base := &RequestRecord{Version: 1, Kind: KindSweep, Workload: "lenet", Trials: 3}
	withCost := &RequestRecord{Version: 1, Kind: KindSweep, Workload: "lenet", Trials: 3, Cost: "rram"}
	otherCost := &RequestRecord{Version: 1, Kind: KindSweep, Workload: "lenet", Trials: 3, Cost: "ramwich"}
	k0, err := base.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	k1, err := withCost.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := otherCost.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	if k0 == k1 || k1 == k2 || k0 == k2 {
		t.Fatalf("cost axis does not participate in the canonical key: %s %s %s", k0, k1, k2)
	}
	raw, _ := json.Marshal(base)
	if strings.Contains(string(raw), `"cost"`) {
		t.Fatalf("empty cost axis serialized (legacy keys would shift): %s", raw)
	}
}
