package serialize

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestJobRecordProgressRoundTrip(t *testing.T) {
	rec := JobRecord{
		ID: "j1", Status: "running",
		Progress: &ProgressRecord{TrialsDone: 7, TrialsTotal: 24, Granule: 1, GranulesTotal: 4},
	}
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"trials_done":7`, `"trials_total":24`, `"granule":1`, `"granules_total":4`} {
		if !strings.Contains(string(b), key) {
			t.Fatalf("encoded job record lacks %s: %s", key, b)
		}
	}
	var back JobRecord
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Progress == nil || *back.Progress != *rec.Progress {
		t.Fatalf("progress round trip: got %+v", back.Progress)
	}

	// Progress is omitted entirely until a job starts.
	b, err = json.Marshal(JobRecord{ID: "j2", Status: "queued"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "progress") {
		t.Fatalf("queued job record should omit progress: %s", b)
	}
}

func TestProgressEventEncoding(t *testing.T) {
	ev := ProgressEvent{Seq: 3, Type: EventDone, Status: "done", TrialsDone: 24, TrialsTotal: 24, Granule: 4, GranulesTotal: 4}
	b, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"seq":3`, `"type":"done"`, `"status":"done"`, `"trials_done":24`} {
		if !strings.Contains(string(b), key) {
			t.Fatalf("encoded event lacks %s: %s", key, b)
		}
	}
	// Non-terminal events omit status.
	b, _ = json.Marshal(ProgressEvent{Seq: 0, Type: EventProgress})
	if strings.Contains(string(b), "status") {
		t.Fatalf("progress event should omit status: %s", b)
	}
}
