package serialize

import (
	"bytes"
	"io"
	"testing"

	"swim/internal/program"
)

// fuzzSeedShard renders a well-formed shard record to bytes for the fuzz
// seed corpus, so the fuzzer starts from the accepted grammar rather than
// discovering JSON from scratch.
func fuzzSeedShard(f *testing.F) []byte {
	f.Helper()
	var buf bytes.Buffer
	if err := EncodeShard(&buf, testShard("seed", 0, 3, 8)); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzDecodeShard feeds arbitrary bytes to the shard decoder: no input may
// panic, and any record that decodes must survive an encode/decode round
// trip with its identity fields (key, range, trial space) intact.
func FuzzDecodeShard(f *testing.F) {
	f.Add(fuzzSeedShard(f))
	f.Add([]byte(""))
	f.Add([]byte("{}"))
	f.Add([]byte(`{"version":1,"key":"`))
	f.Add([]byte(`{"version":99,"lo":-1,"hi":-2}`))
	f.Add([]byte(`{"cells":[{"rows":[[1e999]]}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeShard(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := EncodeShard(&buf, rec); err != nil {
			// Decoded records can hold values JSON cannot re-emit
			// (e.g. NaN smuggled through a string field is impossible,
			// but infinities from 1e999 are not) — rejecting them at
			// encode time is fine; panicking is not.
			return
		}
		back, err := DecodeShard(&buf)
		if err != nil {
			t.Fatalf("re-encoded shard rejected: %v", err)
		}
		if back.Key != rec.Key || back.Lo != rec.Lo || back.Hi != rec.Hi || back.Trials != rec.Trials {
			t.Fatalf("round trip lost identity: %+v -> %+v", rec, back)
		}
	})
}

// FuzzDecodeResult feeds arbitrary bytes to the result decoder: no input
// may panic, and any accepted record must rebuild into a Result the
// encoder can process without panicking.
func FuzzDecodeResult(f *testing.F) {
	res := &program.Result{
		Policy:        "swim",
		Trials:        2,
		Budget:        program.GridBudget(0, 0.1),
		Nonidealities: []string{"drift:nu=0.02,nustd=0.005,t0=1"},
		ReadTime:      3600,
		Calibration:   "gainoffset:probes=16",
	}
	var buf bytes.Buffer
	if err := EncodeResult(&buf, res); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(""))
	f.Add([]byte("{}"))
	f.Add([]byte(`{"version":1,"budget":{"kind":"drop"}}`))
	f.Add([]byte(`{"points":[{"accuracy":{"n":-1}}]}`))
	f.Add([]byte(`{"trace":[{}],"cost":{"calibration":{}}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		restored, rec, err := DecodeResult(bytes.NewReader(data))
		if err != nil {
			return
		}
		if rec == nil || restored == nil {
			t.Fatal("accepted input yielded nil record or result")
		}
		// Re-encoding may legitimately fail (infinities decode but do
		// not re-marshal); it must not panic.
		_ = EncodeResult(io.Discard, restored)
	})
}
