package serialize

// This file implements result records: a versioned JSON encoding of
// program.Result, so sweeps can persist their outcomes (nonideality
// metadata included) and reload them across binary versions.
//
// Compatibility contract:
//
//   - Backward: a record written by an older version (missing fields this
//     version knows) decodes cleanly; absent fields take zero values.
//   - Forward: a record written by a newer version (carrying fields this
//     version does not know) decodes cleanly AND round-trips — unknown
//     top-level fields are preserved verbatim through decode → encode, so
//     passing a record through an old tool never strips information.
//
// Welford aggregates are serialized as their sufficient statistics
// (N, Mean, M2) and rebuilt with stat.FromMoments, which is lossless.

import (
	"encoding/json"
	"fmt"
	"io"

	"swim/internal/program"
	"swim/internal/stat"
)

// ResultVersion is the record version written by EncodeResult.
const ResultVersion = 1

// WelfordRecord is a serialized stat.Welford: its sufficient statistics.
type WelfordRecord struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
}

func welfordRecord(w *stat.Welford) *WelfordRecord {
	if w == nil {
		return nil
	}
	return &WelfordRecord{N: w.N(), Mean: w.Mean(), M2: w.M2()}
}

func (r *WelfordRecord) welford() *stat.Welford {
	if r == nil {
		return nil
	}
	return stat.FromMoments(r.N, r.Mean, r.M2)
}

// BudgetRecord serializes a program.Budget value: Kind "grid" carries
// Targets, kind "drop" the Algorithm-1 stopping parameters.
type BudgetRecord struct {
	Kind         string    `json:"kind"`
	Targets      []float64 `json:"targets,omitempty"`
	BaseAccuracy float64   `json:"base_accuracy,omitempty"`
	MaxDrop      float64   `json:"max_drop,omitempty"`
	MaxNWC       float64   `json:"max_nwc,omitempty"`
}

// PointRecord serializes one fixed-NWC grid point.
type PointRecord struct {
	Target   float64        `json:"target"`
	Accuracy *WelfordRecord `json:"accuracy"`
	NWC      *WelfordRecord `json:"nwc"`
}

// TraceRecord serializes one granule of a drop-budget trace.
type TraceRecord struct {
	FractionVerified float64        `json:"fraction_verified"`
	Accuracy         *WelfordRecord `json:"accuracy"`
	NWC              *WelfordRecord `json:"nwc"`
}

// ResultRecord is the top-level serialized form of a program.Result.
// Unknown JSON fields encountered on decode are retained in Extra and
// re-emitted on encode (forward compatibility).
type ResultRecord struct {
	Version       int            `json:"version"`
	Policy        string         `json:"policy"`
	Trials        int            `json:"trials"`
	Budget        *BudgetRecord  `json:"budget,omitempty"`
	Nonidealities []string       `json:"nonidealities,omitempty"`
	ReadTime      float64        `json:"read_time,omitempty"`
	Points        []PointRecord  `json:"points,omitempty"`
	Trace         []TraceRecord  `json:"trace,omitempty"`
	NWC           *WelfordRecord `json:"nwc,omitempty"`
	Evals         *WelfordRecord `json:"evals,omitempty"`
	Achieved      int            `json:"achieved,omitempty"`

	// Extra holds top-level fields written by a newer version, preserved
	// verbatim across a decode → encode round trip.
	Extra map[string]json.RawMessage `json:"-"`
}

// knownResultFields mirrors the json tags above; keep in sync when adding
// fields (the compat test round-trips a synthetic future record).
var knownResultFields = []string{
	"version", "policy", "trials", "budget", "nonidealities", "read_time",
	"points", "trace", "nwc", "evals", "achieved",
}

// MarshalJSON emits the known fields plus any preserved unknown ones.
func (r ResultRecord) MarshalJSON() ([]byte, error) {
	type bare ResultRecord // strip methods to avoid recursion
	return marshalWithExtra(bare(r), r.Extra)
}

// UnmarshalJSON decodes the known fields and stashes unknown top-level
// fields in Extra.
func (r *ResultRecord) UnmarshalJSON(data []byte) error {
	type bare ResultRecord
	var b bare
	if err := json.Unmarshal(data, &b); err != nil {
		return err
	}
	*r = ResultRecord(b)
	extra, err := splitExtra(data, knownResultFields)
	if err != nil {
		return err
	}
	r.Extra = extra
	return nil
}

// CaptureResult converts a program.Result into its serialized record.
func CaptureResult(res *program.Result) *ResultRecord {
	rec := &ResultRecord{
		Version:       ResultVersion,
		Policy:        res.Policy,
		Trials:        res.Trials,
		Nonidealities: append([]string(nil), res.Nonidealities...),
		ReadTime:      res.ReadTime,
		NWC:           welfordRecord(res.NWC),
		Evals:         welfordRecord(res.Evals),
		Achieved:      res.Achieved,
	}
	switch b := res.Budget.(type) {
	case program.NWCGrid:
		rec.Budget = &BudgetRecord{Kind: "grid", Targets: append([]float64(nil), b.Targets...)}
	case program.DropTarget:
		rec.Budget = &BudgetRecord{Kind: "drop", BaseAccuracy: b.BaseAccuracy, MaxDrop: b.MaxDrop, MaxNWC: b.MaxNWC}
	}
	for _, p := range res.Points {
		rec.Points = append(rec.Points, PointRecord{
			Target: p.Target, Accuracy: welfordRecord(p.Accuracy), NWC: welfordRecord(p.NWC),
		})
	}
	for _, s := range res.Trace {
		rec.Trace = append(rec.Trace, TraceRecord{
			FractionVerified: s.FractionVerified, Accuracy: welfordRecord(s.Accuracy), NWC: welfordRecord(s.NWC),
		})
	}
	return rec
}

// RestoreResult rebuilds a program.Result from a record. Unknown budget
// kinds (written by a newer version) leave Budget nil rather than failing:
// the numeric payload is still usable.
func RestoreResult(rec *ResultRecord) *program.Result {
	res := &program.Result{
		Policy:        rec.Policy,
		Trials:        rec.Trials,
		Nonidealities: append([]string(nil), rec.Nonidealities...),
		ReadTime:      rec.ReadTime,
		NWC:           rec.NWC.welford(),
		Evals:         rec.Evals.welford(),
		Achieved:      rec.Achieved,
	}
	if rec.Budget != nil {
		switch rec.Budget.Kind {
		case "grid":
			res.Budget = program.GridBudget(rec.Budget.Targets...)
		case "drop":
			b := program.DropBudget(rec.Budget.BaseAccuracy, rec.Budget.MaxDrop)
			b.MaxNWC = rec.Budget.MaxNWC
			res.Budget = b
		}
	}
	for _, p := range rec.Points {
		res.Points = append(res.Points, program.Point{
			Target: p.Target, Accuracy: p.Accuracy.welford(), NWC: p.NWC.welford(),
		})
	}
	for _, s := range rec.Trace {
		res.Trace = append(res.Trace, program.TraceStep{
			FractionVerified: s.FractionVerified, Accuracy: s.Accuracy.welford(), NWC: s.NWC.welford(),
		})
	}
	return res
}

// EncodeResult writes res to w as an indented JSON record.
func EncodeResult(w io.Writer, res *program.Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(CaptureResult(res))
}

// DecodeResult reads a JSON record from r and rebuilds the result. The
// record (with any preserved unknown fields) is returned alongside, for
// tools that re-emit what they read.
func DecodeResult(r io.Reader) (*program.Result, *ResultRecord, error) {
	var rec ResultRecord
	if err := json.NewDecoder(r).Decode(&rec); err != nil {
		return nil, nil, fmt.Errorf("serialize: decode result: %w", err)
	}
	return RestoreResult(&rec), &rec, nil
}
