package serialize

// This file implements result records: a versioned JSON encoding of
// program.Result, so sweeps can persist their outcomes (nonideality
// metadata included) and reload them across binary versions.
//
// Compatibility contract:
//
//   - Backward: a record written by an older version (missing fields this
//     version knows) decodes cleanly; absent fields take zero values.
//   - Forward: a record written by a newer version (carrying fields this
//     version does not know) decodes cleanly AND round-trips — unknown
//     top-level fields are preserved verbatim through decode → encode, so
//     passing a record through an old tool never strips information.
//
// Welford aggregates are serialized as their sufficient statistics
// (N, Mean, M2) and rebuilt with stat.FromMoments, which is lossless.

import (
	"encoding/json"
	"fmt"
	"io"

	"swim/internal/cost"
	"swim/internal/program"
	"swim/internal/stat"
)

// ResultVersion is the record version written by EncodeResult.
const ResultVersion = 1

// WelfordRecord is a serialized stat.Welford: its sufficient statistics.
type WelfordRecord struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
}

func welfordRecord(w *stat.Welford) *WelfordRecord {
	if w == nil {
		return nil
	}
	return &WelfordRecord{N: w.N(), Mean: w.Mean(), M2: w.M2()}
}

func (r *WelfordRecord) welford() *stat.Welford {
	if r == nil {
		return nil
	}
	return stat.FromMoments(r.N, r.Mean, r.M2)
}

// BudgetRecord serializes a program.Budget value: Kind "grid" carries
// Targets, kind "drop" the Algorithm-1 stopping parameters.
type BudgetRecord struct {
	Kind         string    `json:"kind"`
	Targets      []float64 `json:"targets,omitempty"`
	BaseAccuracy float64   `json:"base_accuracy,omitempty"`
	MaxDrop      float64   `json:"max_drop,omitempty"`
	MaxNWC       float64   `json:"max_nwc,omitempty"`
}

// PointRecord serializes one fixed-NWC grid point. Cycles (the raw
// write-verify cycle aggregate behind the normalized NWC) is omitted when
// absent, so records written before the cost tier existed decode and
// re-encode unchanged.
type PointRecord struct {
	Target   float64        `json:"target"`
	Accuracy *WelfordRecord `json:"accuracy"`
	NWC      *WelfordRecord `json:"nwc"`
	Cycles   *WelfordRecord `json:"cycles,omitempty"`
}

// TraceRecord serializes one granule of a drop-budget trace.
type TraceRecord struct {
	FractionVerified float64        `json:"fraction_verified"`
	Accuracy         *WelfordRecord `json:"accuracy"`
	NWC              *WelfordRecord `json:"nwc"`
}

// CostVersion is the cost-block version written inside result records.
const CostVersion = 1

// CostPointRecord serializes the programming cost at one grid target.
type CostPointRecord struct {
	Target   float64        `json:"target"`
	EnergyUJ *WelfordRecord `json:"energy_uj"`
	TimeMS   *WelfordRecord `json:"time_ms"`
}

// CalibCostRecord serializes the priced calibration block of a cost report.
type CalibCostRecord struct {
	Model     string        `json:"model"`
	Ops       cost.ProbeOps `json:"ops"`
	EnergyNJ  float64       `json:"energy_nj"`
	LatencyUS float64       `json:"latency_us"`
}

// CostRecord is the versioned serialized form of a cost.Report. Like the
// enclosing ResultRecord it preserves unknown fields across a decode →
// encode round trip, so cost blocks written by a newer version survive
// older tools.
type CostRecord struct {
	Version            int               `json:"version"`
	Model              string            `json:"model"`
	Geometry           cost.Geometry     `json:"geometry"`
	Points             []CostPointRecord `json:"points,omitempty"`
	InferenceEnergyNJ  float64           `json:"inference_energy_nj"`
	InferenceLatencyUS float64           `json:"inference_latency_us"`
	AreaMM2            float64           `json:"area_mm2"`
	Calibration        *CalibCostRecord  `json:"calibration,omitempty"`

	// Extra holds fields written by a newer version, preserved verbatim.
	Extra map[string]json.RawMessage `json:"-"`
}

// knownCostFields mirrors the json tags above; keep in sync when adding
// fields.
var knownCostFields = []string{
	"version", "model", "geometry", "points",
	"inference_energy_nj", "inference_latency_us", "area_mm2", "calibration",
}

// MarshalJSON emits the known fields plus any preserved unknown ones.
func (r CostRecord) MarshalJSON() ([]byte, error) {
	type bare CostRecord // strip methods to avoid recursion
	return marshalWithExtra(bare(r), r.Extra)
}

// UnmarshalJSON decodes the known fields and stashes unknown top-level
// fields in Extra.
func (r *CostRecord) UnmarshalJSON(data []byte) error {
	type bare CostRecord
	var b bare
	if err := json.Unmarshal(data, &b); err != nil {
		return err
	}
	*r = CostRecord(b)
	extra, err := splitExtra(data, knownCostFields)
	if err != nil {
		return err
	}
	r.Extra = extra
	return nil
}

// captureCost converts a cost.Report into its serialized record.
func captureCost(rep *cost.Report) *CostRecord {
	if rep == nil {
		return nil
	}
	rec := &CostRecord{
		Version:            CostVersion,
		Model:              rep.Model,
		Geometry:           rep.Geometry,
		InferenceEnergyNJ:  rep.InferenceEnergyNJ,
		InferenceLatencyUS: rep.InferenceLatencyUS,
		AreaMM2:            rep.AreaMM2,
	}
	for _, p := range rep.Points {
		rec.Points = append(rec.Points, CostPointRecord{
			Target: p.Target, EnergyUJ: welfordRecord(p.EnergyUJ), TimeMS: welfordRecord(p.TimeMS),
		})
	}
	if c := rep.Calibration; c != nil {
		rec.Calibration = &CalibCostRecord{
			Model: c.Model, Ops: c.Ops, EnergyNJ: c.EnergyNJ, LatencyUS: c.LatencyUS,
		}
	}
	return rec
}

// restoreCost rebuilds a cost.Report from a record.
func restoreCost(rec *CostRecord) *cost.Report {
	if rec == nil {
		return nil
	}
	rep := &cost.Report{
		Model:              rec.Model,
		Geometry:           rec.Geometry,
		InferenceEnergyNJ:  rec.InferenceEnergyNJ,
		InferenceLatencyUS: rec.InferenceLatencyUS,
		AreaMM2:            rec.AreaMM2,
	}
	for _, p := range rec.Points {
		rep.Points = append(rep.Points, cost.PointCost{
			Target: p.Target, EnergyUJ: p.EnergyUJ.welford(), TimeMS: p.TimeMS.welford(),
		})
	}
	if c := rec.Calibration; c != nil {
		rep.Calibration = &cost.CalibCost{
			Model: c.Model, Ops: c.Ops, EnergyNJ: c.EnergyNJ, LatencyUS: c.LatencyUS,
		}
	}
	return rep
}

// ResultRecord is the top-level serialized form of a program.Result.
// Unknown JSON fields encountered on decode are retained in Extra and
// re-emitted on encode (forward compatibility).
type ResultRecord struct {
	Version       int            `json:"version"`
	Policy        string         `json:"policy"`
	Trials        int            `json:"trials"`
	Budget        *BudgetRecord  `json:"budget,omitempty"`
	Nonidealities []string       `json:"nonidealities,omitempty"`
	ReadTime      float64        `json:"read_time,omitempty"`
	Calibration   string         `json:"calibration,omitempty"`
	Points        []PointRecord  `json:"points,omitempty"`
	Cost          *CostRecord    `json:"cost,omitempty"`
	Trace         []TraceRecord  `json:"trace,omitempty"`
	NWC           *WelfordRecord `json:"nwc,omitempty"`
	Evals         *WelfordRecord `json:"evals,omitempty"`
	Achieved      int            `json:"achieved,omitempty"`

	// Extra holds top-level fields written by a newer version, preserved
	// verbatim across a decode → encode round trip.
	Extra map[string]json.RawMessage `json:"-"`
}

// knownResultFields mirrors the json tags above; keep in sync when adding
// fields (the compat test round-trips a synthetic future record).
var knownResultFields = []string{
	"version", "policy", "trials", "budget", "nonidealities", "read_time",
	"calibration", "points", "cost", "trace", "nwc", "evals", "achieved",
}

// MarshalJSON emits the known fields plus any preserved unknown ones.
func (r ResultRecord) MarshalJSON() ([]byte, error) {
	type bare ResultRecord // strip methods to avoid recursion
	return marshalWithExtra(bare(r), r.Extra)
}

// UnmarshalJSON decodes the known fields and stashes unknown top-level
// fields in Extra.
func (r *ResultRecord) UnmarshalJSON(data []byte) error {
	type bare ResultRecord
	var b bare
	if err := json.Unmarshal(data, &b); err != nil {
		return err
	}
	*r = ResultRecord(b)
	extra, err := splitExtra(data, knownResultFields)
	if err != nil {
		return err
	}
	r.Extra = extra
	return nil
}

// CaptureResult converts a program.Result into its serialized record.
func CaptureResult(res *program.Result) *ResultRecord {
	rec := &ResultRecord{
		Version:       ResultVersion,
		Policy:        res.Policy,
		Trials:        res.Trials,
		Nonidealities: append([]string(nil), res.Nonidealities...),
		ReadTime:      res.ReadTime,
		Calibration:   res.Calibration,
		NWC:           welfordRecord(res.NWC),
		Evals:         welfordRecord(res.Evals),
		Achieved:      res.Achieved,
	}
	switch b := res.Budget.(type) {
	case program.NWCGrid:
		rec.Budget = &BudgetRecord{Kind: "grid", Targets: append([]float64(nil), b.Targets...)}
	case program.DropTarget:
		rec.Budget = &BudgetRecord{Kind: "drop", BaseAccuracy: b.BaseAccuracy, MaxDrop: b.MaxDrop, MaxNWC: b.MaxNWC}
	}
	for _, p := range res.Points {
		rec.Points = append(rec.Points, PointRecord{
			Target: p.Target, Accuracy: welfordRecord(p.Accuracy), NWC: welfordRecord(p.NWC),
			Cycles: welfordRecord(p.Cycles),
		})
	}
	rec.Cost = captureCost(res.Cost)
	for _, s := range res.Trace {
		rec.Trace = append(rec.Trace, TraceRecord{
			FractionVerified: s.FractionVerified, Accuracy: welfordRecord(s.Accuracy), NWC: welfordRecord(s.NWC),
		})
	}
	return rec
}

// RestoreResult rebuilds a program.Result from a record. Unknown budget
// kinds (written by a newer version) leave Budget nil rather than failing:
// the numeric payload is still usable.
func RestoreResult(rec *ResultRecord) *program.Result {
	res := &program.Result{
		Policy:        rec.Policy,
		Trials:        rec.Trials,
		Nonidealities: append([]string(nil), rec.Nonidealities...),
		ReadTime:      rec.ReadTime,
		Calibration:   rec.Calibration,
		NWC:           rec.NWC.welford(),
		Evals:         rec.Evals.welford(),
		Achieved:      rec.Achieved,
	}
	if rec.Budget != nil {
		switch rec.Budget.Kind {
		case "grid":
			res.Budget = program.GridBudget(rec.Budget.Targets...)
		case "drop":
			b := program.DropBudget(rec.Budget.BaseAccuracy, rec.Budget.MaxDrop)
			b.MaxNWC = rec.Budget.MaxNWC
			res.Budget = b
		}
	}
	for _, p := range rec.Points {
		res.Points = append(res.Points, program.Point{
			Target: p.Target, Accuracy: p.Accuracy.welford(), NWC: p.NWC.welford(),
			Cycles: p.Cycles.welford(),
		})
	}
	res.Cost = restoreCost(rec.Cost)
	for _, s := range rec.Trace {
		res.Trace = append(res.Trace, program.TraceStep{
			FractionVerified: s.FractionVerified, Accuracy: s.Accuracy.welford(), NWC: s.NWC.welford(),
		})
	}
	return res
}

// EncodeResult writes res to w as an indented JSON record.
func EncodeResult(w io.Writer, res *program.Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(CaptureResult(res))
}

// DecodeResult reads a JSON record from r and rebuilds the result. The
// record (with any preserved unknown fields) is returned alongside, for
// tools that re-emit what they read.
func DecodeResult(r io.Reader) (*program.Result, *ResultRecord, error) {
	var rec ResultRecord
	if err := json.NewDecoder(r).Decode(&rec); err != nil {
		return nil, nil, fmt.Errorf("serialize: decode result: %w", err)
	}
	return RestoreResult(&rec), &rec, nil
}
