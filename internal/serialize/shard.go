package serialize

// This file implements the distributed-execution wire format of the /v1
// API: shard requests (a trial range of a normalized sweep request), shard
// records (the range's raw per-trial observations per grid cell), canonical
// shard keys, and the coordinator-side merge that folds a complete shard
// partition back into the single-node ResultEnvelope — bit for bit, because
// each row is one trial's singleton Welford moments and the merge replays
// the mc engine's exact trial-order reduction.

import (
	"encoding/json"
	"fmt"
	"io"

	"swim/internal/cost"
	"swim/internal/program"
)

// ShardVersion is the record version written for shard requests/records.
const ShardVersion = 1

// ShardRequest is the body of a POST /v1/shards call: compute trials
// [Lo, Hi) of the request's full trial space. The embedded request follows
// the same normalization contract as job submissions — the worker fills
// defaults and rejects what it cannot faithfully execute.
type ShardRequest struct {
	// Version is the shard wire-format version ("" the worker speaks).
	Version int `json:"version"`
	// Request is the sweep request the trial range belongs to. Trials is
	// the FULL trial count; the shard computes only [Lo, Hi) of it.
	Request *RequestRecord `json:"request"`
	// Lo and Hi bound the half-open trial range to compute.
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// DecodeShardRequest reads one JSON shard request from rd.
func DecodeShardRequest(rd io.Reader) (*ShardRequest, error) {
	var req ShardRequest
	if err := json.NewDecoder(rd).Decode(&req); err != nil {
		return nil, fmt.Errorf("serialize: decode shard request: %w", err)
	}
	return &req, nil
}

// ShardCell is one grid cell's slice of a shard: the cell coordinates plus
// the raw per-trial observations of the shard's trial range. Rows[t-lo]
// holds trial t's series values — accuracy at each NWC target first, then
// NWC spent at each target, then raw write-verify cycles at each target
// (3×len(Targets) values per row). Rows are singleton Welford moments, so
// folding them in trial order reproduces the single-node aggregates
// losslessly (stat.Welford.MergeObs).
type ShardCell struct {
	// Workload, Sigma, Scenario, ReadTime and Policy locate the cell in
	// the request grid, exactly as CellRecord spells them.
	Workload string  `json:"workload"`
	Sigma    float64 `json:"sigma"`
	Scenario string  `json:"scenario"`
	ReadTime float64 `json:"read_time"`
	Policy   string  `json:"policy"`
	// Targets is the cumulative NWC grid each trial walked.
	Targets []float64 `json:"targets"`
	// Nonidealities are the cell's read-time nonideality specs.
	Nonidealities []string `json:"nonidealities,omitempty"`
	// Cost is the canonical cost-model spec the cell ran under ("" when
	// cost accounting is off), and Geometry the mapping geometry the cost
	// report composes over. Workers derive both deterministically; the
	// merge checks agreement so a heterogeneous fleet cannot silently mix
	// cost bases.
	Cost     string         `json:"cost,omitempty"`
	Geometry *cost.Geometry `json:"geometry,omitempty"`
	// Calib is the canonical calibration-model spec the cell ran under (""
	// when calibration is off), and Probes the probe-pass operation counts
	// its cost pricing composes over. The merge checks agreement exactly
	// like the cost base — trial rows calibrated under different models are
	// observations of different experiments and must never fold together.
	Calib  string         `json:"calib,omitempty"`
	Probes *cost.ProbeOps `json:"probes,omitempty"`
	// Rows are the per-trial observations in trial order.
	Rows [][]float64 `json:"rows"`
}

// ShardRecord is a worker's reply to a shard request: every cell of the
// request grid, in canonical grid order, restricted to trials [Lo, Hi).
// It is also the coordinator's journal entry — a persisted partial fold of
// completed trial ranges IS a shard result, which is what makes
// checkpoint/resume free.
type ShardRecord struct {
	// Version is the shard wire-format version.
	Version int `json:"version"`
	// Key is the canonical shard key: ShardKey(request key, Lo, Hi).
	Key string `json:"key"`
	// Lo and Hi bound the computed trial range; Trials is the full space.
	Lo     int `json:"lo"`
	Hi     int `json:"hi"`
	Trials int `json:"trials"`
	// Cells are the per-cell trial-range slices in grid order.
	Cells []ShardCell `json:"cells"`
}

// DecodeShard reads one JSON shard record from rd.
func DecodeShard(rd io.Reader) (*ShardRecord, error) {
	var rec ShardRecord
	if err := json.NewDecoder(rd).Decode(&rec); err != nil {
		return nil, fmt.Errorf("serialize: decode shard: %w", err)
	}
	return &rec, nil
}

// EncodeShard writes rec to w as an indented JSON document.
func EncodeShard(w io.Writer, rec *ShardRecord) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rec)
}

// ShardKey derives the canonical key of one trial-range shard from its
// request's canonical key. Equal shard keys mean the same computation with
// bit-identical rows (the determinism contract extended to ranges), so the
// key serves as the worker's single-flight handle and the coordinator's
// journal filename.
func ShardKey(requestKey string, lo, hi int) string {
	return fmt.Sprintf("%s-%06d-%06d", requestKey, lo, hi)
}

// Validate checks a shard record's internal consistency against the
// request key and trial space it is supposed to belong to — the gate both
// the coordinator's HTTP path and its journal loader run every record
// through before merging.
func (r *ShardRecord) Validate(requestKey string, trials int) error {
	if r.Version != ShardVersion {
		return fmt.Errorf("serialize: shard version %d (want %d)", r.Version, ShardVersion)
	}
	if r.Lo < 0 || r.Hi > trials || r.Lo >= r.Hi {
		return fmt.Errorf("serialize: shard range [%d,%d) outside [0,%d)", r.Lo, r.Hi, trials)
	}
	if r.Trials != trials {
		return fmt.Errorf("serialize: shard trial space %d, want %d", r.Trials, trials)
	}
	if want := ShardKey(requestKey, r.Lo, r.Hi); r.Key != want {
		return fmt.Errorf("serialize: shard key %q, want %q", r.Key, want)
	}
	if len(r.Cells) == 0 {
		return fmt.Errorf("serialize: shard [%d,%d) has no cells", r.Lo, r.Hi)
	}
	for i, c := range r.Cells {
		if len(c.Rows) != r.Hi-r.Lo {
			return fmt.Errorf("serialize: shard cell %d carries %d rows for range [%d,%d)", i, len(c.Rows), r.Lo, r.Hi)
		}
	}
	return nil
}

// MergeShards folds a complete shard partition of [0, trials) into the
// ResultEnvelope single-node execution of the same request produces —
// byte-identical, because each cell's rows route through
// program.MergeShards (the engine's exact trial-order reduction) and the
// record construction mirrors CaptureResult. Shards may arrive in any
// order and with heterogeneous range sizes; they must tile the trial space
// exactly and agree on the cell grid.
func MergeShards(trials int, shards []*ShardRecord) (*ResultEnvelope, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("serialize: no shards to merge")
	}
	cells := len(shards[0].Cells)
	for _, sh := range shards {
		if len(sh.Cells) != cells {
			return nil, fmt.Errorf("serialize: shard [%d,%d) has %d cells, want %d", sh.Lo, sh.Hi, len(sh.Cells), cells)
		}
	}
	env := &ResultEnvelope{}
	for c := 0; c < cells; c++ {
		parts := make([]*program.Shard, 0, len(shards))
		first := shards[0].Cells[c]
		for _, sh := range shards {
			cell := sh.Cells[c]
			if cell.Workload != first.Workload || cell.Sigma != first.Sigma ||
				cell.Scenario != first.Scenario || cell.ReadTime != first.ReadTime || cell.Policy != first.Policy {
				return nil, fmt.Errorf("serialize: shard [%d,%d) cell %d is (%s σ=%g %s t=%g %s), want (%s σ=%g %s t=%g %s)",
					sh.Lo, sh.Hi, c, cell.Workload, cell.Sigma, cell.Scenario, cell.ReadTime, cell.Policy,
					first.Workload, first.Sigma, first.Scenario, first.ReadTime, first.Policy)
			}
			if cell.Cost != first.Cost {
				return nil, fmt.Errorf("serialize: shard [%d,%d) cell %d ran cost model %q, want %q",
					sh.Lo, sh.Hi, c, cell.Cost, first.Cost)
			}
			if cell.Calib != first.Calib {
				return nil, fmt.Errorf("serialize: shard [%d,%d) cell %d ran calibration model %q, want %q",
					sh.Lo, sh.Hi, c, cell.Calib, first.Calib)
			}
			parts = append(parts, &program.Shard{
				Policy:        cell.Policy,
				Targets:       cell.Targets,
				Nonidealities: cell.Nonidealities,
				ReadTime:      cell.ReadTime,
				Trials:        trials,
				Lo:            sh.Lo,
				Hi:            sh.Hi,
				Rows:          cell.Rows,
				Cost:          cell.Cost,
				Geom:          cell.Geometry,
				Calib:         cell.Calib,
				Probes:        cell.Probes,
			})
		}
		res, err := program.MergeShards(parts)
		if err != nil {
			return nil, fmt.Errorf("serialize: cell %d: %w", c, err)
		}
		env.Cells = append(env.Cells, CellRecord{
			Workload: first.Workload,
			Sigma:    first.Sigma,
			Scenario: first.Scenario,
			ReadTime: first.ReadTime,
			Policy:   first.Policy,
			Result:   CaptureResult(res),
		})
	}
	return env, nil
}
