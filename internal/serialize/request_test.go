package serialize

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	req := &RequestRecord{
		Version: RequestVersion, Kind: KindScenario, Workload: "lenet",
		Sigmas: []float64{1.0}, Policies: []string{"swim", "noverify"},
		NWCs: []float64{0, 0.1}, Scenarios: "none;drift", Times: []float64{0, 3600},
		Seed: 4000, Trials: 8, EvalBatch: 64,
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(req); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRequest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != req.Kind || got.Workload != req.Workload || got.Seed != req.Seed ||
		got.Scenarios != req.Scenarios || len(got.Policies) != 2 || got.Trials != 8 {
		t.Fatalf("round trip mangled the request: %+v", got)
	}
}

// Forward compatibility: unknown top-level fields written by a newer
// version survive decode → encode.
func TestRequestPreservesUnknownFields(t *testing.T) {
	future := `{"version": 9, "kind": "sweep", "workload": "lenet",
		"priority": "high", "tenant": {"org": 42}}`
	req, err := DecodeRequest(strings.NewReader(future))
	if err != nil {
		t.Fatal(err)
	}
	if len(req.Extra) != 2 {
		t.Fatalf("unknown fields not preserved: %v", req.Extra)
	}
	out, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"priority":"high"`, `"org":42`, `"kind":"sweep"`} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("re-encoded request missing %s: %s", want, out)
		}
	}
}

func TestCanonicalKey(t *testing.T) {
	a := &RequestRecord{Version: 1, Kind: KindSweep, Workload: "lenet", Seed: 5, Trials: 4}
	b := &RequestRecord{Version: 1, Kind: KindSweep, Workload: "lenet", Seed: 5, Trials: 4}
	ka, err := a.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	kb, err := b.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Fatalf("equal requests hash differently: %s vs %s", ka, kb)
	}
	b.Seed = 6
	if kb, _ = b.CanonicalKey(); ka == kb {
		t.Fatal("different seeds share a canonical key")
	}
	// Unknown (future) fields must influence the key: a request this
	// version cannot fully interpret is not the same computation.
	c, err := DecodeRequest(strings.NewReader(`{"version":1,"kind":"sweep","workload":"lenet","seed":5,"trials":4,"future_knob":1}`))
	if err != nil {
		t.Fatal(err)
	}
	kc, err := c.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	if kc == ka {
		t.Fatal("unknown field did not change the canonical key")
	}
}

// TestCanonicalKeyIgnoresKernel pins the one deliberate exception to
// "every field hashes": backends are bit-identical, so the kernel axis is
// recorded in the request yet excluded from the cache key — a request served
// with "blocked" hits the entry a "scalar" request populated.
func TestCanonicalKeyIgnoresKernel(t *testing.T) {
	a := &RequestRecord{Version: 1, Kind: KindSweep, Workload: "lenet", Seed: 5, Trials: 4}
	b := &RequestRecord{Version: 1, Kind: KindSweep, Workload: "lenet", Seed: 5, Trials: 4,
		Kernel: "parallel:workers=4"}
	ka, err := a.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	kb, err := b.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Fatalf("kernel axis changed the canonical key: %s vs %s", ka, kb)
	}
	// The axis still round-trips on the wire: excluded from the hash, not
	// from the record.
	raw, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"kernel":"parallel:workers=4"`) {
		t.Fatalf("kernel axis missing from the encoded request: %s", raw)
	}
	got, err := DecodeRequest(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got.Kernel != b.Kernel {
		t.Fatalf("kernel axis mangled in round trip: %q", got.Kernel)
	}
	if len(got.Extra) != 0 {
		t.Fatalf("kernel treated as an unknown field: %v", got.Extra)
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	env := &ResultEnvelope{Cells: []CellRecord{{
		Workload: "lenet", Sigma: 1, Scenario: "none", Policy: "swim",
		Result: &ResultRecord{Version: ResultVersion, Policy: "swim", Trials: 2},
	}}}
	var buf bytes.Buffer
	if err := EncodeEnvelope(&buf, env); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEnvelope(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cells) != 1 || got.Cells[0].Result.Policy != "swim" {
		t.Fatalf("envelope round trip mangled cells: %+v", got)
	}
}
