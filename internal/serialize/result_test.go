package serialize

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"swim/internal/program"
	"swim/internal/stat"
)

func acc(vals ...float64) *stat.Welford {
	w := &stat.Welford{}
	for _, v := range vals {
		w.Add(v)
	}
	return w
}

func sameWelford(t *testing.T, what string, a, b *stat.Welford) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatalf("%s: nil mismatch", what)
	}
	if a == nil {
		return
	}
	if a.N() != b.N() || a.Mean() != b.Mean() || a.M2() != b.M2() || a.Std() != b.Std() {
		t.Fatalf("%s: (%d, %v, %v) != (%d, %v, %v)", what, a.N(), a.Mean(), a.M2(), b.N(), b.Mean(), b.M2())
	}
}

// A grid-budget result carrying nonideality metadata must round-trip
// losslessly, aggregates included.
func TestResultRoundTripWithNonidealities(t *testing.T) {
	res := &program.Result{
		Policy:        "swim",
		Trials:        3,
		Budget:        program.GridBudget(0, 0.1, 0.3),
		Nonidealities: []string{"drift:nu=0.02,nustd=0.005,t0=1", "stuckat:p=0.001,high=0.5"},
		ReadTime:      86400,
		Points: []program.Point{
			{Target: 0, Accuracy: acc(49, 51, 53), NWC: acc(0, 0, 0)},
			{Target: 0.1, Accuracy: acc(60, 62, 61), NWC: acc(0.1, 0.11, 0.09)},
			{Target: 0.3, Accuracy: acc(65, 66, 64), NWC: acc(0.3, 0.29, 0.31)},
		},
	}
	var buf bytes.Buffer
	if err := EncodeResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	got, rec, err := DecodeResult(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Version != ResultVersion {
		t.Fatalf("version = %d", rec.Version)
	}
	if got.Policy != res.Policy || got.Trials != res.Trials || got.ReadTime != res.ReadTime {
		t.Fatalf("scalars corrupted: %+v", got)
	}
	if len(got.Nonidealities) != 2 || got.Nonidealities[0] != res.Nonidealities[0] || got.Nonidealities[1] != res.Nonidealities[1] {
		t.Fatalf("nonidealities corrupted: %v", got.Nonidealities)
	}
	grid, ok := got.Budget.(program.NWCGrid)
	if !ok || len(grid.Targets) != 3 || grid.Targets[2] != 0.3 {
		t.Fatalf("budget corrupted: %#v", got.Budget)
	}
	if len(got.Points) != len(res.Points) {
		t.Fatalf("points = %d", len(got.Points))
	}
	for i := range res.Points {
		if got.Points[i].Target != res.Points[i].Target {
			t.Fatalf("point %d target %v", i, got.Points[i].Target)
		}
		sameWelford(t, "accuracy", res.Points[i].Accuracy, got.Points[i].Accuracy)
		sameWelford(t, "nwc", res.Points[i].NWC, got.Points[i].NWC)
	}
}

func TestResultRoundTripDropBudget(t *testing.T) {
	b := program.DropBudget(67.5, 1.0)
	b.MaxNWC = 8
	res := &program.Result{
		Policy: "insitu", Trials: 2, Budget: b,
		Trace: []program.TraceStep{
			{FractionVerified: 0, Accuracy: acc(50, 52), NWC: acc(0, 0)},
			{FractionVerified: 0.05, Accuracy: acc(60, 59), NWC: acc(0.05, 0.06)},
		},
		NWC: acc(0.05, 0.06), Evals: acc(2, 2), Achieved: 1,
	}
	var buf bytes.Buffer
	if err := EncodeResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeResult(&buf)
	if err != nil {
		t.Fatal(err)
	}
	drop, ok := got.Budget.(program.DropTarget)
	if !ok || drop != b {
		t.Fatalf("drop budget corrupted: %#v", got.Budget)
	}
	if len(got.Trace) != 2 || got.Trace[1].FractionVerified != 0.05 {
		t.Fatalf("trace corrupted: %+v", got.Trace)
	}
	sameWelford(t, "NWC", res.NWC, got.NWC)
	sameWelford(t, "Evals", res.Evals, got.Evals)
	if got.Achieved != 1 {
		t.Fatalf("achieved = %d", got.Achieved)
	}
}

// Forward compatibility: a record from a future version — unknown
// top-level fields, an unknown budget kind — must decode cleanly and
// preserve the unknown fields verbatim through a re-encode.
func TestResultForwardCompatibility(t *testing.T) {
	future := `{
		"version": 9,
		"policy": "swim",
		"trials": 5,
		"read_time": 60,
		"nonidealities": ["warpfield:q=2"],
		"budget": {"kind": "entropy", "bits": 3},
		"points": [{"target": 0, "accuracy": {"n": 5, "mean": 50, "m2": 10}, "nwc": {"n": 5, "mean": 0, "m2": 0}}],
		"energy_model": {"pulse_pj": 10.5},
		"comment": "written by v9"
	}`
	res, rec, err := DecodeResult(strings.NewReader(future))
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "swim" || res.Trials != 5 || res.ReadTime != 60 {
		t.Fatalf("known fields corrupted: %+v", res)
	}
	if res.Budget != nil {
		t.Fatalf("unknown budget kind should leave Budget nil, got %#v", res.Budget)
	}
	if res.Points[0].Accuracy.N() != 5 || res.Points[0].Accuracy.Mean() != 50 {
		t.Fatalf("aggregates corrupted: %+v", res.Points[0].Accuracy)
	}
	if len(rec.Extra) != 2 {
		t.Fatalf("unknown fields not preserved: %v", rec.Extra)
	}
	out, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var echoed map[string]json.RawMessage
	if err := json.Unmarshal(out, &echoed); err != nil {
		t.Fatal(err)
	}
	if string(echoed["comment"]) != `"written by v9"` {
		t.Fatalf("comment not re-emitted: %s", echoed["comment"])
	}
	if !bytes.Contains(echoed["energy_model"], []byte("10.5")) {
		t.Fatalf("energy_model not re-emitted: %s", echoed["energy_model"])
	}
	// The unknown budget kind must also survive the round trip.
	if !bytes.Contains(out, []byte(`"entropy"`)) {
		t.Fatalf("unknown budget kind dropped: %s", out)
	}
}

// Backward compatibility: a minimal record from before the nonideality
// fields existed decodes with zero defaults.
func TestResultBackwardCompatibility(t *testing.T) {
	old := `{"version": 1, "policy": "magnitude", "trials": 8,
		"budget": {"kind": "grid", "targets": [0, 1]},
		"points": [
			{"target": 0, "accuracy": {"n": 8, "mean": 42, "m2": 4}, "nwc": {"n": 8, "mean": 0, "m2": 0}},
			{"target": 1, "accuracy": {"n": 8, "mean": 60, "m2": 2}, "nwc": {"n": 8, "mean": 1, "m2": 0}}
		]}`
	res, rec, err := DecodeResult(strings.NewReader(old))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nonidealities) != 0 || res.ReadTime != 0 {
		t.Fatalf("missing fields should default to zero: %v @ %v", res.Nonidealities, res.ReadTime)
	}
	if len(rec.Extra) != 0 {
		t.Fatalf("spurious unknown fields: %v", rec.Extra)
	}
	if len(res.Points) != 2 || res.Points[1].Accuracy.Mean() != 60 {
		t.Fatalf("points corrupted: %+v", res.Points)
	}
	// Budget round-trips back into a validatable pipeline value.
	if _, ok := res.Budget.(program.NWCGrid); !ok {
		t.Fatalf("budget = %#v", res.Budget)
	}
}

// A result produced by serialization must keep behaving like a live one:
// merging a restored Welford continues the stream exactly.
func TestRestoredWelfordKeepsAccumulating(t *testing.T) {
	orig := acc(1, 2, 3)
	rt := welfordRecord(orig).welford()
	orig.Add(4)
	rt.Add(4)
	if orig.Mean() != rt.Mean() || orig.Std() != rt.Std() || orig.N() != rt.N() {
		t.Fatalf("restored accumulator diverged: %v/%v vs %v/%v", orig.Mean(), orig.Std(), rt.Mean(), rt.Std())
	}
}
