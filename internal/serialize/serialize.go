// Package serialize persists experiment state in portable formats: trained
// network state as a gob state dictionary (parameter tensors keyed by name
// plus the non-parameter state inference depends on — batch-norm running
// statistics and activation-quantizer ranges; architectures are rebuilt
// from code and populated with Restore, PyTorch-state-dict style), and
// pipeline outcomes as versioned, forward/backward-compatible JSON result
// records (EncodeResult / DecodeResult, see result.go).
package serialize

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"swim/internal/nn"
)

// State is the serialized form of a network's learned state.
type State struct {
	// Name is the network name, checked on load.
	Name string
	// Params maps parameter name to flat values.
	Params map[string][]float64
	// BNMean and BNVar hold batch-norm running statistics keyed by layer
	// name; QuantMax holds activation-quantizer calibrated ranges.
	BNMean   map[string][]float64
	BNVar    map[string][]float64
	QuantMax map[string]float64
	// QuantCal holds each activation quantizer's calibration flag, so a
	// restored network is bit-identical to the captured one even under
	// further (in-situ) training, where a calibrating quantizer keeps
	// widening its range. States saved before this field existed decode
	// with a nil map and restore frozen (the old behavior).
	QuantCal map[string]bool
}

// Capture extracts the network's learned state.
func Capture(net *nn.Network) *State {
	s := &State{
		Name:     net.Name,
		Params:   map[string][]float64{},
		BNMean:   map[string][]float64{},
		BNVar:    map[string][]float64{},
		QuantMax: map[string]float64{},
		QuantCal: map[string]bool{},
	}
	for _, p := range net.Params() {
		s.Params[p.Name] = append([]float64(nil), p.Data.Data...)
	}
	nn.Walk(net.Trunk, func(l nn.Layer) {
		switch v := l.(type) {
		case *nn.BatchNorm2D:
			s.BNMean[v.Name()] = append([]float64(nil), v.RunMean.Data...)
			s.BNVar[v.Name()] = append([]float64(nil), v.RunVar.Data...)
		case *nn.QuantAct:
			s.QuantMax[v.Name()] = v.Max
			s.QuantCal[v.Name()] = v.Calibrate
		}
	})
	return s
}

// Restore loads a captured state into a freshly built network of the same
// architecture. Every entry in the state must find its counterpart, and
// every parameter in the network must be covered, or an error is returned.
func Restore(net *nn.Network, s *State) error {
	if net.Name != s.Name {
		return fmt.Errorf("serialize: state is for %q, network is %q", s.Name, net.Name)
	}
	seen := 0
	for _, p := range net.Params() {
		vals, ok := s.Params[p.Name]
		if !ok {
			return fmt.Errorf("serialize: state missing parameter %q", p.Name)
		}
		if len(vals) != len(p.Data.Data) {
			return fmt.Errorf("serialize: parameter %q has %d values, want %d", p.Name, len(vals), len(p.Data.Data))
		}
		copy(p.Data.Data, vals)
		seen++
	}
	if seen != len(s.Params) {
		return fmt.Errorf("serialize: state has %d parameters, network consumed %d", len(s.Params), seen)
	}
	var err error
	nn.Walk(net.Trunk, func(l nn.Layer) {
		if err != nil {
			return
		}
		switch v := l.(type) {
		case *nn.BatchNorm2D:
			mean, okM := s.BNMean[v.Name()]
			variance, okV := s.BNVar[v.Name()]
			if !okM || !okV || len(mean) != len(v.RunMean.Data) {
				err = fmt.Errorf("serialize: bad batch-norm state for %q", v.Name())
				return
			}
			copy(v.RunMean.Data, mean)
			copy(v.RunVar.Data, variance)
		case *nn.QuantAct:
			m, ok := s.QuantMax[v.Name()]
			if !ok {
				err = fmt.Errorf("serialize: missing quantizer range for %q", v.Name())
				return
			}
			v.Max = m
			// Nil map = pre-QuantCal state file: restore frozen.
			v.Calibrate = s.QuantCal[v.Name()]
		}
	})
	return err
}

// Save writes the network state to w in gob encoding.
func Save(w io.Writer, net *nn.Network) error {
	return gob.NewEncoder(w).Encode(Capture(net))
}

// Load reads a state from r into the network.
func Load(r io.Reader, net *nn.Network) error {
	var s State
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return fmt.Errorf("serialize: decode: %w", err)
	}
	return Restore(net, &s)
}

// Bytes round-trips the state through memory (convenience for tests and
// in-process snapshots).
func Bytes(net *nn.Network) ([]byte, error) {
	var buf bytes.Buffer
	if err := Save(&buf, net); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
