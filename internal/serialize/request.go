package serialize

// This file implements the serving tier's wire format: request records (what
// a client asks the swim-serve daemon to compute), job envelopes (the
// daemon's bookkeeping around one request), and result envelopes (the cells
// a completed job produced). Requests follow the same forward-compatibility
// contract as result records — unknown top-level fields survive a
// decode → encode round trip — and carry a canonical content hash
// (CanonicalKey) the daemon caches results under: two requests with equal
// keys are the same computation, and the determinism contract makes their
// results bit-identical.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
)

// RequestVersion is the record version written for serving requests.
const RequestVersion = 1

// Request kinds accepted by the serving tier. Every kind expands to the
// same cell grid — sigmas × scenarios × read times × policies, each cell a
// fixed-NWC accuracy sweep — differing only in defaults: "sweep" is a
// single cell, "scenario" a robustness cross product, "table1" the paper's
// σ-grid protocol, "fig2" one figure panel at the high-variation point.
const (
	KindSweep    = "sweep"
	KindScenario = "scenario"
	KindTable1   = "table1"
	KindFig2     = "fig2"
)

// RequestRecord is the serialized form of one serving request. Zero-valued
// fields take kind- and workload-appropriate defaults at validation time
// (the daemon normalizes before hashing, so a request and its explicit
// normalization share a canonical key). Unknown JSON fields encountered on
// decode are retained in Extra and re-emitted on encode.
type RequestRecord struct {
	Version int `json:"version"`
	// Kind is one of the Kind* constants ("" defaults to "sweep").
	Kind string `json:"kind,omitempty"`
	// Workload names a registry workload (lenet | convnet | resnet | tiny).
	Workload string `json:"workload,omitempty"`
	// Sigmas is the device-variation grid (kind table1 defaults to the
	// paper's three-σ grid, others to a single high-variation point).
	Sigmas []float64 `json:"sigmas,omitempty"`
	// Policies are registry policy names.
	Policies []string `json:"policies,omitempty"`
	// NWCs is the write-budget grid every cell walks.
	NWCs []float64 `json:"nwcs,omitempty"`
	// Scenarios is a ';'-separated nonideality scenario list, models
	// stacked with '+' — the swim-scenario grammar ("" = ideal baseline).
	Scenarios string `json:"scenarios,omitempty"`
	// Times are the read times in seconds after programming.
	Times []float64 `json:"times,omitempty"`
	// Cost names a hardware cost model spec (package cost grammar, e.g.
	// "rram" or "rram:write_pj=12"); "" and "none" disable cost accounting.
	// The daemon canonicalizes the spec before hashing, so "rram" and its
	// spelled-out form share a cache key, while different models never do —
	// the cost axis participates in the canonical key like every other
	// field.
	Cost string `json:"cost,omitempty"`
	// Calib names a calibration-model spec (package calib grammar, e.g.
	// "gainoffset" or "pertile:probes=16"); "" and "none" disable the
	// calibration stage. The daemon canonicalizes the spec before hashing.
	// Unlike the kernel axis, Calib changes results — corrected read-outs
	// are a different computation — so it participates in the canonical key
	// like the cost axis does.
	Calib string `json:"calib,omitempty"`
	// Kernel names a kernel-backend spec (package kernel grammar, e.g.
	// "blocked" or "parallel:workers=4") selecting how the daemon executes
	// the dense primitives of the request's evaluation plans. "" selects
	// the scalar default. The daemon canonicalizes the spec before
	// recording it, but — unlike every other axis — Kernel is EXCLUDED from
	// the canonical key: backends are bit-identical by contract, so two
	// requests differing only in kernel are the same computation and share
	// a cache entry.
	Kernel string `json:"kernel,omitempty"`
	// Seed is the Monte-Carlo master seed shared by every cell.
	Seed uint64 `json:"seed,omitempty"`
	// Trials is the Monte-Carlo trial count per cell.
	Trials int `json:"trials,omitempty"`
	// EvalBatch is the accuracy-measurement batch size.
	EvalBatch int `json:"eval_batch,omitempty"`

	// Extra holds top-level fields written by a newer version, preserved
	// verbatim across a decode → encode round trip.
	Extra map[string]json.RawMessage `json:"-"`
}

// knownRequestFields mirrors the json tags above; keep in sync when adding
// fields.
var knownRequestFields = []string{
	"version", "kind", "workload", "sigmas", "policies", "nwcs",
	"scenarios", "cost", "calib", "kernel", "times", "seed", "trials", "eval_batch",
}

// MarshalJSON emits the known fields plus any preserved unknown ones.
func (r RequestRecord) MarshalJSON() ([]byte, error) {
	type bare RequestRecord // strip methods to avoid recursion
	return marshalWithExtra(bare(r), r.Extra)
}

// UnmarshalJSON decodes the known fields and stashes unknown top-level
// fields in Extra.
func (r *RequestRecord) UnmarshalJSON(data []byte) error {
	type bare RequestRecord
	var b bare
	if err := json.Unmarshal(data, &b); err != nil {
		return err
	}
	*r = RequestRecord(b)
	extra, err := splitExtra(data, knownRequestFields)
	if err != nil {
		return err
	}
	r.Extra = extra
	return nil
}

// CanonicalKey returns a stable content hash of the record: every top-level
// field (preserved unknown fields included) serialized in sorted-key order
// and hashed with SHA-256. Together with the determinism contract this is a
// result-cache key — equal keys mean bit-identical results. Hash the
// normalized request, not the raw client payload, so a request and its
// filled-in-defaults form share a key.
func (r *RequestRecord) CanonicalKey() (string, error) {
	raw, err := json.Marshal(r)
	if err != nil {
		return "", fmt.Errorf("serialize: canonical key: %w", err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		return "", fmt.Errorf("serialize: canonical key: %w", err)
	}
	// The kernel backend never changes results (bit-identical contract), so
	// it is excluded from the key: a request served with "blocked" hits the
	// cache entry a "scalar" request populated, and vice versa.
	delete(m, "kernel")
	// encoding/json marshals maps in sorted-key order, which canonicalizes
	// the top level; array order below it is semantic and kept as-is.
	canon, err := json.Marshal(m)
	if err != nil {
		return "", fmt.Errorf("serialize: canonical key: %w", err)
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:]), nil
}

// DecodeRequest reads one JSON request record from rd.
func DecodeRequest(rd io.Reader) (*RequestRecord, error) {
	var rec RequestRecord
	if err := json.NewDecoder(rd).Decode(&rec); err != nil {
		return nil, fmt.Errorf("serialize: decode request: %w", err)
	}
	return &rec, nil
}

// Job statuses reported by the serving tier.
const (
	JobQueued    = "queued"
	JobRunning   = "running"
	JobDone      = "done"
	JobFailed    = "failed"
	JobCancelled = "cancelled"
)

// CellRecord ties one pipeline result to its position in the request grid.
type CellRecord struct {
	Workload string        `json:"workload"`
	Sigma    float64       `json:"sigma"`
	Scenario string        `json:"scenario"`
	ReadTime float64       `json:"read_time"`
	Policy   string        `json:"policy"`
	Result   *ResultRecord `json:"result"`
}

// ResultEnvelope is the payload of a completed job: one cell per
// (sigma, scenario, read time, policy) combination, in grid order. The
// swim-scenario CLI's -json output and the daemon's result endpoint emit
// the identical envelope, which is what the end-to-end smoke test diffs.
type ResultEnvelope struct {
	Cells []CellRecord `json:"cells"`
}

// EncodeEnvelope writes env to w as an indented JSON document (the same
// layout EncodeResult uses, so CLI and daemon output diff cleanly).
func EncodeEnvelope(w io.Writer, env *ResultEnvelope) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(env)
}

// DecodeEnvelope reads one JSON result envelope from rd.
func DecodeEnvelope(rd io.Reader) (*ResultEnvelope, error) {
	var env ResultEnvelope
	if err := json.NewDecoder(rd).Decode(&env); err != nil {
		return nil, fmt.Errorf("serialize: decode envelope: %w", err)
	}
	return &env, nil
}

// JobRecord is the serving daemon's job envelope: the submitted (and
// normalized) request plus its lifecycle status. Result payloads are not
// embedded — clients fetch them from the job's result endpoint once Status
// is "done". Timestamps are Unix milliseconds (0 = not reached).
type JobRecord struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	// Cached reports that the result was served from the canonical-key
	// cache instead of recomputed.
	Cached bool `json:"cached,omitempty"`
	// Coalesced reports that the job attached to an identical in-flight
	// job's execution (single-flight) instead of starting its own.
	Coalesced bool           `json:"coalesced,omitempty"`
	Request   *RequestRecord `json:"request,omitempty"`
	Error     string         `json:"error,omitempty"`
	Submitted int64          `json:"submitted_ms,omitempty"`
	Started   int64          `json:"started_ms,omitempty"`
	Finished  int64          `json:"finished_ms,omitempty"`
	// Progress reports how far a running job has advanced (omitted until the
	// job starts executing); see ProgressRecord.
	Progress *ProgressRecord `json:"progress,omitempty"`
}
