package serialize

// ProgressRecord is a point-in-time view of a running job's advancement, in
// trial-execution units: TrialsTotal counts every trial the job will run
// across all of its cells (scenario × time × policy × sigma combinations,
// each multiplying the request's trial count), and Granule counts completed
// cells in standalone mode or completed shards under a coordinator. It
// appears in JobRecord and is the payload of every SSE progress event.
type ProgressRecord struct {
	// TrialsDone is how many trial executions have completed job-wide.
	TrialsDone int `json:"trials_done"`
	// TrialsTotal is how many trial executions the whole job comprises.
	TrialsTotal int `json:"trials_total"`
	// Granule is the number of completed granules (cells or shards).
	Granule int `json:"granule"`
	// GranulesTotal is the job's total granule count.
	GranulesTotal int `json:"granules_total"`
}

// Event types carried by ProgressEvent and the SSE job-event stream.
const (
	// EventProgress reports trial-level advancement within the current
	// granule.
	EventProgress = "progress"
	// EventGranule reports the completion of one granule (cell or shard).
	EventGranule = "granule"
	// EventDone is the stream's single terminal event; Status carries the
	// job's final state ("done", "failed", or "cancelled").
	EventDone = "done"
)

// ProgressEvent is one entry in a job's event log, streamed over SSE by
// GET /v1/jobs/{id}/events. Seq numbers events from 0 within one job so late
// subscribers can confirm a full replay; counters snapshot the job-wide
// ProgressRecord state at emission time.
type ProgressEvent struct {
	// Seq is the event's position in the job's event log, starting at 0.
	Seq int `json:"seq"`
	// Type is one of EventProgress, EventGranule, EventDone.
	Type string `json:"type"`
	// Status is the job's terminal status; set only on EventDone.
	Status string `json:"status,omitempty"`
	// TrialsDone mirrors ProgressRecord.TrialsDone at emission time.
	TrialsDone int `json:"trials_done"`
	// TrialsTotal mirrors ProgressRecord.TrialsTotal.
	TrialsTotal int `json:"trials_total"`
	// Granule mirrors ProgressRecord.Granule.
	Granule int `json:"granule"`
	// GranulesTotal mirrors ProgressRecord.GranulesTotal.
	GranulesTotal int `json:"granules_total"`
}
