package serialize

import (
	"bytes"
	"testing"

	"swim/internal/data"
	"swim/internal/models"
	"swim/internal/nn"
	"swim/internal/rng"
	"swim/internal/train"
)

func TestRoundTripPreservesOutputs(t *testing.T) {
	ds := data.MNISTLike(200, 80, 1)
	r := rng.New(2)
	net := models.LeNet(10, 4, r)
	cfg := train.DefaultConfig()
	cfg.Epochs = 1
	train.SGD(net, ds, cfg, r)
	want := train.Evaluate(net, ds.TestX, ds.TestY, 64)

	blob, err := Bytes(net)
	if err != nil {
		t.Fatal(err)
	}
	fresh := models.LeNet(10, 4, rng.New(99)) // different init
	if err := Load(bytes.NewReader(blob), fresh); err != nil {
		t.Fatal(err)
	}
	got := train.Evaluate(fresh, ds.TestX, ds.TestY, 64)
	if got != want {
		t.Fatalf("restored accuracy %.2f != original %.2f", got, want)
	}
	// Exact logits, not just accuracy.
	x, y := data.Subset(ds.TestX, ds.TestY, 8)
	_ = y
	a := net.Forward(x, false)
	b := fresh.Forward(x, false)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("restored network produces different logits")
		}
	}
}

func TestRoundTripResNetWithBNAndQuant(t *testing.T) {
	ds := data.CIFARLike(100, 40, 2)
	r := rng.New(3)
	net := models.ResNet18(10, 4, 6, r)
	cfg := train.DefaultConfig()
	cfg.Epochs = 1
	train.SGD(net, ds, cfg, r) // populates BN running stats + quant ranges

	blob, err := Bytes(net)
	if err != nil {
		t.Fatal(err)
	}
	fresh := models.ResNet18(10, 4, 6, rng.New(77))
	if err := Load(bytes.NewReader(blob), fresh); err != nil {
		t.Fatal(err)
	}
	x, _ := data.Subset(ds.TestX, ds.TestY, 4)
	a := net.Forward(x, false)
	b := fresh.Forward(x, false)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("restored ResNet differs (BN stats or quant ranges lost)")
		}
	}
}

func TestRestoreRejectsWrongArchitecture(t *testing.T) {
	lenet := models.LeNet(10, 4, rng.New(1))
	blob, err := Bytes(lenet)
	if err != nil {
		t.Fatal(err)
	}
	conv := models.ConvNet(10, 4, 6, rng.New(2))
	if err := Load(bytes.NewReader(blob), conv); err == nil {
		t.Fatal("loading LeNet state into ConvNet should fail")
	}
}

func TestRestoreRejectsTamperedState(t *testing.T) {
	net := models.LeNet(10, 4, rng.New(1))
	s := Capture(net)
	s.Params["conv1.W"] = s.Params["conv1.W"][:10] // wrong length
	if err := Restore(models.LeNet(10, 4, rng.New(2)), s); err == nil {
		t.Fatal("length mismatch not detected")
	}
	s2 := Capture(net)
	delete(s2.Params, "fc3.B")
	if err := Restore(models.LeNet(10, 4, rng.New(3)), s2); err == nil {
		t.Fatal("missing parameter not detected")
	}
}

// A restored network must be bit-identical to the captured one even for
// further training: the activation quantizers' calibration flags round-trip
// (a restored-frozen quantizer would diverge under in-situ training — the
// train-once, serve-many workload path depends on this).
func TestRoundTripPreservesQuantCalibration(t *testing.T) {
	r := rng.New(3)
	net := models.LeNet(10, 4, r)
	var calibrating int
	nn.Walk(net.Trunk, func(l nn.Layer) {
		if q, ok := l.(*nn.QuantAct); ok && q.Calibrate {
			calibrating++
		}
	})
	if calibrating == 0 {
		t.Fatal("fresh LeNet has no calibrating quantizers; test is vacuous")
	}
	blob, err := Bytes(net)
	if err != nil {
		t.Fatal(err)
	}
	restored := models.LeNet(10, 4, rng.New(3))
	if err := Load(bytes.NewReader(blob), restored); err != nil {
		t.Fatal(err)
	}
	var after int
	nn.Walk(restored.Trunk, func(l nn.Layer) {
		if q, ok := l.(*nn.QuantAct); ok && q.Calibrate {
			after++
		}
	})
	if after != calibrating {
		t.Fatalf("calibration flags not restored: %d before, %d after", calibrating, after)
	}
}
