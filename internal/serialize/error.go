package serialize

// The /v1 error wire format: every non-2xx response from swim-serve carries
// a single JSON shape, {"error":{"code":..., "message":...}}, with a typed
// machine-readable code. Clients switch on Code; Message is for humans.

import (
	"encoding/json"
	"fmt"
	"io"
)

// Error codes emitted by the /v1 API. The set is closed per version: adding
// a code is a compatible change, changing one is not.
const (
	// ErrBadRequest marks a malformed or unnormalizable request payload.
	ErrBadRequest = "bad_request"
	// ErrNotFound marks an unknown resource (job ID, route).
	ErrNotFound = "not_found"
	// ErrMethodNotAllowed marks a known route hit with the wrong verb.
	ErrMethodNotAllowed = "method_not_allowed"
	// ErrConflict marks a state conflict (e.g. cancelling a finished job).
	ErrConflict = "conflict"
	// ErrUnavailable marks a draining or overloaded daemon; retry later.
	ErrUnavailable = "unavailable"
	// ErrInternal marks a daemon-side failure executing the request.
	ErrInternal = "internal"
)

// ErrorRecord is the body of the "error" field: a typed code plus a
// human-readable message.
type ErrorRecord struct {
	// Code is one of the Err* constants.
	Code string `json:"code"`
	// Message explains the failure for humans; not machine-parseable.
	Message string `json:"message"`
}

// ErrorEnvelope is the uniform body of every non-2xx /v1 response.
type ErrorEnvelope struct {
	Error ErrorRecord `json:"error"`
}

// EncodeError writes the uniform error envelope for (code, message) to w.
func EncodeError(w io.Writer, code, message string) error {
	return json.NewEncoder(w).Encode(&ErrorEnvelope{Error: ErrorRecord{Code: code, Message: message}})
}

// DecodeError reads one JSON error envelope from rd and rejects bodies
// missing the typed code — the signal that a peer is not speaking /v1.
func DecodeError(rd io.Reader) (*ErrorEnvelope, error) {
	var env ErrorEnvelope
	if err := json.NewDecoder(rd).Decode(&env); err != nil {
		return nil, fmt.Errorf("serialize: decode error envelope: %w", err)
	}
	if env.Error.Code == "" {
		return nil, fmt.Errorf("serialize: error envelope without code")
	}
	return &env, nil
}
