package serialize

import "encoding/json"

// Forward-compatibility plumbing shared by the record types: unknown
// top-level JSON fields are carried in an Extra map across a
// decode → encode round trip, so passing a record through an old tool never
// strips information a newer version wrote.

// marshalWithExtra marshals v and merges in the preserved unknown fields
// (known fields win on collision).
func marshalWithExtra(v any, extra map[string]json.RawMessage) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	if len(extra) == 0 {
		return raw, nil
	}
	var merged map[string]json.RawMessage
	if err := json.Unmarshal(raw, &merged); err != nil {
		return nil, err
	}
	for k, val := range extra {
		if _, known := merged[k]; !known {
			merged[k] = val
		}
	}
	return json.Marshal(merged)
}

// splitExtra returns the top-level fields of data that are not in known
// (nil when there are none).
func splitExtra(data []byte, known []string) (map[string]json.RawMessage, error) {
	var all map[string]json.RawMessage
	if err := json.Unmarshal(data, &all); err != nil {
		return nil, err
	}
	for _, k := range known {
		delete(all, k)
	}
	if len(all) == 0 {
		return nil, nil
	}
	return all, nil
}
