package serialize

import (
	"bytes"
	"strings"
	"testing"
)

func testShard(key string, lo, hi, trials int) *ShardRecord {
	rows := make([][]float64, hi-lo)
	for i := range rows {
		rows[i] = []float64{float64(lo + i), float64(lo+i) * 0.5, float64(lo+i) * 100}
	}
	return &ShardRecord{
		Version: ShardVersion,
		Key:     ShardKey(key, lo, hi),
		Lo:      lo,
		Hi:      hi,
		Trials:  trials,
		Cells: []ShardCell{{
			Workload: "test", Sigma: 1, Scenario: "none", ReadTime: 0,
			Policy: "swim", Targets: []float64{0.1}, Rows: rows,
		}},
	}
}

func TestShardRoundTrip(t *testing.T) {
	rec := testShard("k", 2, 5, 8)
	var buf bytes.Buffer
	if err := EncodeShard(&buf, rec); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeShard(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Key != rec.Key || back.Lo != 2 || back.Hi != 5 || back.Trials != 8 {
		t.Fatalf("round trip lost metadata: %+v", back)
	}
	if len(back.Cells) != 1 || len(back.Cells[0].Rows) != 3 || back.Cells[0].Rows[2][0] != 4 {
		t.Fatalf("round trip lost rows: %+v", back.Cells)
	}
	if err := back.Validate("k", 8); err != nil {
		t.Fatalf("round-tripped shard invalid: %v", err)
	}
}

func TestShardKeyCanonical(t *testing.T) {
	if ShardKey("abc", 0, 10) == ShardKey("abc", 0, 11) {
		t.Fatal("different ranges share a key")
	}
	if ShardKey("abc", 0, 10) == ShardKey("abd", 0, 10) {
		t.Fatal("different requests share a key")
	}
	if ShardKey("abc", 3, 7) != ShardKey("abc", 3, 7) {
		t.Fatal("key not deterministic")
	}
}

func TestShardValidate(t *testing.T) {
	cases := []struct {
		name string
		warp func(*ShardRecord)
		want string
	}{
		{"wrong version", func(r *ShardRecord) { r.Version = 99 }, "version"},
		{"range past space", func(r *ShardRecord) { r.Hi = 20 }, "outside"},
		{"inverted range", func(r *ShardRecord) { r.Lo = 6 }, "outside"},
		{"wrong trial space", func(r *ShardRecord) { r.Trials = 9 }, "trial space"},
		{"foreign key", func(r *ShardRecord) { r.Key = "nope" }, "key"},
		{"no cells", func(r *ShardRecord) { r.Cells = nil }, "no cells"},
		{"row deficit", func(r *ShardRecord) { r.Cells[0].Rows = r.Cells[0].Rows[:1] }, "rows"},
	}
	for _, tc := range cases {
		rec := testShard("k", 2, 5, 8)
		tc.warp(rec)
		err := rec.Validate("k", 8)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v (want substring %q)", tc.name, err, tc.want)
		}
	}
	if err := testShard("k", 2, 5, 8).Validate("k", 8); err != nil {
		t.Errorf("valid shard rejected: %v", err)
	}
}

func TestMergeShardsRejectsBadPartitions(t *testing.T) {
	if _, err := MergeShards(6, nil); err == nil {
		t.Error("empty shard set merged")
	}
	// Gap: [0,2) + [4,6) leaves trials 2..3 uncovered.
	gap := []*ShardRecord{testShard("k", 0, 2, 6), testShard("k", 4, 6, 6)}
	if _, err := MergeShards(6, gap); err == nil {
		t.Error("gapped partition merged")
	}
	// Mismatched cell grids.
	a, b := testShard("k", 0, 3, 6), testShard("k", 3, 6, 6)
	b.Cells[0].Policy = "magnitude"
	if _, err := MergeShards(6, []*ShardRecord{a, b}); err == nil {
		t.Error("mismatched cell grids merged")
	}
	b.Cells[0].Policy = "swim"
	b.Cells = append(b.Cells, b.Cells[0])
	if _, err := MergeShards(6, []*ShardRecord{a, b}); err == nil {
		t.Error("mismatched cell counts merged")
	}
}

// A heterogeneous fleet must never fold trial rows computed under different
// cost or calibration bases — both axes change what the rows mean.
func TestMergeShardsRejectsMixedBases(t *testing.T) {
	mk := func() (*ShardRecord, *ShardRecord) {
		return testShard("k", 0, 3, 6), testShard("k", 3, 6, 6)
	}
	a, b := mk()
	b.Cells[0].Cost = "rram:par=32"
	if _, err := MergeShards(6, []*ShardRecord{a, b}); err == nil || !strings.Contains(err.Error(), "cost") {
		t.Errorf("mixed cost bases merged: %v", err)
	}
	a, b = mk()
	b.Cells[0].Calib = "gainoffset:probes=8"
	if _, err := MergeShards(6, []*ShardRecord{a, b}); err == nil || !strings.Contains(err.Error(), "calibration") {
		t.Errorf("mixed calibration bases merged: %v", err)
	}
	a, b = mk()
	a.Cells[0].Calib, b.Cells[0].Calib = "gainoffset:probes=8", "gainoffset:probes=8"
	if _, err := MergeShards(6, []*ShardRecord{a, b}); err != nil {
		t.Errorf("agreeing calibration bases rejected: %v", err)
	}
}

func TestMergeShardsFoldsCompletePartition(t *testing.T) {
	env, err := MergeShards(6, []*ShardRecord{testShard("k", 3, 6, 6), testShard("k", 0, 3, 6)})
	if err != nil {
		t.Fatal(err)
	}
	if len(env.Cells) != 1 {
		t.Fatalf("cells = %d", len(env.Cells))
	}
	cell := env.Cells[0]
	if cell.Policy != "swim" || cell.Workload != "test" || cell.Sigma != 1 {
		t.Fatalf("cell metadata: %+v", cell)
	}
	if cell.Result == nil || cell.Result.Trials != 6 {
		t.Fatalf("merged result: %+v", cell.Result)
	}
}

func TestErrorEnvelopeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeError(&buf, ErrNotFound, "no such job"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"error"`) || !strings.Contains(buf.String(), `"code"`) {
		t.Fatalf("envelope shape: %s", buf.String())
	}
	env, err := DecodeError(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != ErrNotFound || env.Error.Message != "no such job" {
		t.Fatalf("round trip: %+v", env)
	}
	if _, err := DecodeError(strings.NewReader(`{"error":{"message":"untyped"}}`)); err == nil {
		t.Fatal("code-less envelope accepted")
	}
}
