package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"swim/internal/rng"
)

func TestNewAndSize(t *testing.T) {
	a := New(2, 3, 4)
	if a.Size() != 24 || len(a.Data) != 24 {
		t.Fatalf("size = %d", a.Size())
	}
	if a.Dim(1) != 3 {
		t.Fatalf("dim = %d", a.Dim(1))
	}
}

func TestAtSetOffset(t *testing.T) {
	a := New(2, 3)
	a.Set(7, 1, 2)
	if a.At(1, 2) != 7 || a.Data[5] != 7 {
		t.Fatal("row-major At/Set broken")
	}
}

func TestReshapeSharesData(t *testing.T) {
	a := New(2, 3)
	b := a.Reshape(3, 2)
	b.Data[0] = 9
	if a.Data[0] != 9 {
		t.Fatal("reshape must share backing data")
	}
}

// TestReshapeRejectsMismatch is the regression test for the silent-aliasing
// bug: Reshape must refuse any shape whose element product differs from the
// tensor's, and any non-positive dimension (two negative dims can otherwise
// multiply to a "matching" product and alias the data under a bogus shape).
func TestReshapeRejectsMismatch(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	a := New(2, 2)
	mustPanic("size change", func() { a.Reshape(2, 3) })
	mustPanic("negative dims with matching product", func() { a.Reshape(-2, -2) })
	mustPanic("zero dim", func() { a.Reshape(0, 4) })
}

func TestCloneIsDeep(t *testing.T) {
	a := New(4)
	a.Fill(1)
	b := a.Clone()
	b.Data[0] = 5
	if a.Data[0] != 1 {
		t.Fatal("clone must not share data")
	}
}

func TestElementwise(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	a.Add(b)
	if a.Data[2] != 9 {
		t.Fatal("Add")
	}
	a.Sub(b)
	if a.Data[0] != 1 {
		t.Fatal("Sub")
	}
	a.Mul(b)
	if a.Data[1] != 10 {
		t.Fatal("Mul")
	}
	a.Scale(0.5)
	if a.Data[1] != 5 {
		t.Fatal("Scale")
	}
	a.AddScaled(2, b)
	if a.Data[0] != 2+8 {
		t.Fatal("AddScaled")
	}
}

func TestDotSumSquaresAbsMaxArgmax(t *testing.T) {
	a := FromSlice([]float64{1, -4, 3}, 3)
	b := FromSlice([]float64{2, 1, 1}, 3)
	if a.Dot(b) != 1 {
		t.Fatalf("dot = %v", a.Dot(b))
	}
	if a.SumSquares() != 26 {
		t.Fatalf("ss = %v", a.SumSquares())
	}
	if a.AbsMax() != 4 {
		t.Fatalf("absmax = %v", a.AbsMax())
	}
	if a.Argmax() != 2 {
		t.Fatalf("argmax = %d", a.Argmax())
	}
}

func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			c.Set(s, i, j)
		}
	}
	return c
}

func randT(r *rng.Source, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = r.Gauss(0, 1)
	}
	return t
}

func tensorsClose(a, b *Tensor, tol float64) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

func TestMatMulAgainstNaive(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+r.Intn(12), 1+r.Intn(12), 1+r.Intn(12)
		a, b := randT(r, m, k), randT(r, k, n)
		if !tensorsClose(MatMul(a, b), naiveMatMul(a, b), 1e-10) {
			t.Fatalf("MatMul mismatch for %dx%dx%d", m, k, n)
		}
	}
}

func TestMatMulAccumulate(t *testing.T) {
	r := rng.New(2)
	a, b := randT(r, 3, 4), randT(r, 4, 5)
	c := New(3, 5)
	c.Fill(1)
	MatMulInto(c, a, b, true)
	want := naiveMatMul(a, b)
	for i := range want.Data {
		want.Data[i]++
	}
	if !tensorsClose(c, want, 1e-10) {
		t.Fatal("accumulate mode broken")
	}
}

func TestMatMulTransA(t *testing.T) {
	r := rng.New(3)
	a, b := randT(r, 6, 3), randT(r, 6, 4) // C = A^T B is 3x4
	c := New(3, 4)
	MatMulTransAInto(c, a, b, false)
	at := New(3, 6)
	for i := 0; i < 6; i++ {
		for j := 0; j < 3; j++ {
			at.Set(a.At(i, j), j, i)
		}
	}
	if !tensorsClose(c, naiveMatMul(at, b), 1e-10) {
		t.Fatal("MatMulTransA mismatch")
	}
}

func TestMatMulTransB(t *testing.T) {
	r := rng.New(4)
	a, b := randT(r, 3, 6), randT(r, 4, 6) // C = A B^T is 3x4
	c := New(3, 4)
	MatMulTransBInto(c, a, b, false)
	bt := New(6, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 6; j++ {
			bt.Set(b.At(i, j), j, i)
		}
	}
	if !tensorsClose(c, naiveMatMul(a, bt), 1e-10) {
		t.Fatal("MatMulTransB mismatch")
	}
}

func TestMatMulAssociativityProperty(t *testing.T) {
	// (A·B)·C == A·(B·C) within fp tolerance — a structural property check.
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		a, b, c := randT(r, 4, 3), randT(r, 3, 5), randT(r, 5, 2)
		left := MatMul(MatMul(a, b), c)
		right := MatMul(a, MatMul(b, c))
		return tensorsClose(left, right, 1e-9)
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestConvGeom(t *testing.T) {
	g := NewConv2DGeom(3, 32, 32, 3, 3, 1, 1)
	if g.OutH != 32 || g.OutW != 32 {
		t.Fatalf("same-pad geometry wrong: %+v", g)
	}
	g2 := NewConv2DGeom(1, 28, 28, 5, 5, 1, 0)
	if g2.OutH != 24 || g2.OutW != 24 {
		t.Fatalf("valid geometry wrong: %+v", g2)
	}
	g3 := NewConv2DGeom(8, 16, 16, 3, 3, 2, 1)
	if g3.OutH != 8 || g3.OutW != 8 {
		t.Fatalf("strided geometry wrong: %+v", g3)
	}
}

// naiveConv computes a direct convolution for cross-checking im2col+matmul.
func naiveConv(x *Tensor, w *Tensor, g Conv2DGeom) *Tensor {
	outC := w.Shape[0]
	out := New(outC, g.OutH, g.OutW)
	for oc := 0; oc < outC; oc++ {
		for oi := 0; oi < g.OutH; oi++ {
			for oj := 0; oj < g.OutW; oj++ {
				s := 0.0
				for c := 0; c < g.InC; c++ {
					for ki := 0; ki < g.KH; ki++ {
						for kj := 0; kj < g.KW; kj++ {
							ii := oi*g.Stride - g.Pad + ki
							jj := oj*g.Stride - g.Pad + kj
							if ii < 0 || ii >= g.InH || jj < 0 || jj >= g.InW {
								continue
							}
							s += x.At(c, ii, jj) * w.At(oc, c, ki, kj)
						}
					}
				}
				out.Set(s, oc, oi, oj)
			}
		}
	}
	return out
}

func TestIm2ColMatchesDirectConv(t *testing.T) {
	r := rng.New(5)
	cases := []Conv2DGeom{
		NewConv2DGeom(2, 8, 8, 3, 3, 1, 1),
		NewConv2DGeom(1, 10, 10, 5, 5, 1, 0),
		NewConv2DGeom(3, 9, 9, 3, 3, 2, 1),
		NewConv2DGeom(4, 7, 5, 3, 3, 1, 1), // non-square input
	}
	for _, g := range cases {
		x := randT(r, g.InC, g.InH, g.InW)
		outC := 3
		w := randT(r, outC, g.InC, g.KH, g.KW)
		cols := New(g.ColRows(), g.ColCols())
		g.Im2ColInto(cols, x.Data)
		wm := w.Reshape(outC, g.ColRows())
		got := MatMul(wm, cols).Reshape(outC, g.OutH, g.OutW)
		if !tensorsClose(got, naiveConv(x, w, g), 1e-10) {
			t.Fatalf("im2col conv mismatch for %+v", g)
		}
	}
}

func TestCol2ImIsAdjointOfIm2Col(t *testing.T) {
	// <im2col(x), y> == <x, col2im(y)> for all x, y: the defining property of
	// an adjoint pair, which is exactly what backprop correctness requires.
	r := rng.New(6)
	g := NewConv2DGeom(2, 6, 6, 3, 3, 2, 1)
	x := randT(r, g.InC*g.InH*g.InW)
	y := randT(r, g.ColRows(), g.ColCols())
	cols := New(g.ColRows(), g.ColCols())
	g.Im2ColInto(cols, x.Data)
	lhs := cols.Dot(y)
	back := make([]float64, g.InC*g.InH*g.InW)
	g.Col2ImAdd(back, y)
	rhs := 0.0
	for i, v := range back {
		rhs += v * x.Data[i]
	}
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Fatalf("adjoint identity violated: %v vs %v", lhs, rhs)
	}
}

func TestPanicsOnShapeMismatch(t *testing.T) {
	for name, fn := range map[string]func(){
		"Add":       func() { New(2).Add(New(3)) },
		"MatMul":    func() { MatMul(New(2, 3), New(4, 5)) },
		"Reshape":   func() { New(2, 3).Reshape(7) },
		"FromSlice": func() { FromSlice(make([]float64, 5), 2, 3) },
		"BadIndex":  func() { New(2, 2).At(2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic on mismatch", name)
				}
			}()
			fn()
		}()
	}
}
