package tensor

import "testing"

func TestArenaAllocCarvesAndResets(t *testing.T) {
	a := NewArena()
	x := a.Alloc(2, 3)
	if x.Size() != 6 || len(x.Data) != 6 {
		t.Fatalf("alloc shape wrong: %v / %d", x.Shape, len(x.Data))
	}
	x.Fill(7)
	y := a.Alloc(4)
	y.Fill(1)
	if x.Data[0] != 7 {
		t.Fatal("second alloc overlapped the first before Reset")
	}

	a.Reset()
	x2 := a.Alloc(2, 3)
	if &x2.Data[0] != &x.Data[0] {
		t.Fatal("post-Reset alloc must re-carve the same memory")
	}
	if x2 != x {
		t.Fatal("post-Reset alloc must reuse the same tensor header")
	}
}

func TestArenaZeroSteadyStateAllocs(t *testing.T) {
	a := NewArena()
	pass := func() {
		a.Reset()
		t1 := a.Alloc(8, 8)
		t2 := a.Alloc(3, 5, 7)
		f := a.AllocFloats(100)
		t1.Data[0], t2.Data[0], f[0] = 1, 2, 3
	}
	pass() // warm-up grows chunks and headers
	if allocs := testing.AllocsPerRun(10, pass); allocs != 0 {
		t.Fatalf("steady-state arena pass allocates %v times, want 0", allocs)
	}
}

func TestArenaGrowsBeyondChunk(t *testing.T) {
	a := NewArena()
	big := a.AllocFloats(defaultChunk + 1)
	if len(big) != defaultChunk+1 {
		t.Fatalf("oversized alloc length %d", len(big))
	}
	small := a.AllocFloats(4)
	small[0] = 1
	big[len(big)-1] = 2
	if a.Footprint() < defaultChunk+1 {
		t.Fatalf("footprint %d too small", a.Footprint())
	}
}

func TestArenaAllocRejectsBadShape(t *testing.T) {
	a := NewArena()
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive dim must panic")
		}
	}()
	a.Alloc(2, 0)
}
