package tensor

// Arena is a bump allocator for the evaluation hot path. It hands out
// tensors and float slices carved from large reusable chunks; Reset rewinds
// the arena so the next execution pass re-carves the exact same sequence of
// buffers from the same memory. Because the allocation sequence of a compiled
// evaluation plan is deterministic for a fixed batch shape, an arena reaches
// a fixed point after one warm-up pass and every subsequent pass performs
// zero heap allocations: chunks, tensor headers and shape slices are all
// reused in place.
//
// An Arena is not safe for concurrent use; the evaluation engine keeps one
// arena per Monte-Carlo worker. Buffers returned by Alloc/AllocFloats are
// valid only until the next Reset and are NOT zeroed — callers must fully
// define every element they read back.
type Arena struct {
	chunks [][]float64
	ci     int // current chunk index
	off    int // carve offset within chunks[ci]

	headers []*Tensor
	hi      int // next header to hand out

	chunkSize int
}

// defaultChunk is the minimum chunk size in float64s (512 KiB).
const defaultChunk = 1 << 16

// NewArena returns an empty arena. Chunks are allocated on demand and kept
// across Reset.
func NewArena() *Arena { return &Arena{chunkSize: defaultChunk} }

// Reset rewinds the arena: every buffer previously handed out is invalidated
// and the backing memory becomes available for re-carving. No memory is
// released.
func (a *Arena) Reset() {
	a.ci, a.off, a.hi = 0, 0, 0
}

// AllocFloats carves a float64 slice of length n. The slice is not zeroed.
func (a *Arena) AllocFloats(n int) []float64 {
	if n < 0 {
		panic("tensor: negative arena allocation")
	}
	for a.ci < len(a.chunks) && a.off+n > len(a.chunks[a.ci]) {
		a.ci++
		a.off = 0
	}
	if a.ci == len(a.chunks) {
		size := a.chunkSize
		if n > size {
			size = n
		}
		a.chunks = append(a.chunks, make([]float64, size))
	}
	s := a.chunks[a.ci][a.off : a.off+n : a.off+n]
	a.off += n
	return s
}

// Alloc carves a tensor with the given shape. The tensor header, its shape
// slice and its data all come from arena-owned memory reused across Reset;
// the data is not zeroed.
func (a *Arena) Alloc(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic("tensor: non-positive dim in arena allocation")
		}
		n *= d
	}
	var t *Tensor
	if a.hi < len(a.headers) {
		t = a.headers[a.hi]
	} else {
		t = &Tensor{}
		a.headers = append(a.headers, t)
	}
	a.hi++
	t.Shape = append(t.Shape[:0], shape...)
	t.Data = a.AllocFloats(n)
	return t
}

// ScratchFloats carves n float64s from a, falling back to the heap when a is
// nil — the shared arena-or-heap pattern of the ForwardInto implementations
// (a nil arena is the legacy, non-plan path).
func ScratchFloats(a *Arena, n int) []float64 {
	if a == nil {
		return make([]float64, n)
	}
	return a.AllocFloats(n)
}

// Footprint returns the total float64 capacity currently held by the arena,
// for diagnostics and memory accounting.
func (a *Arena) Footprint() int {
	total := 0
	for _, c := range a.chunks {
		total += len(c)
	}
	return total
}
